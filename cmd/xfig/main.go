// Command xfig regenerates the scenarios behind the paper's
// methodology figures as SVG files plus printed metrics:
//
//	Fig. 2 — ring waveguide quality on 16 regularly-aligned nodes:
//	         (a) the optimal minimum-length crossing-free tour,
//	         (b) a sub-optimal tour with a long detour,
//	         (c) a sub-optimal tour with a waveguide crossing;
//	Fig. 7 — two crossing shortcuts merged with CSEs;
//	Fig. 8 — ring waveguide openings at least-passed nodes;
//	Fig. 9 — the binary splitter-tree PDN of one ring waveguide.
//
// Usage:
//
//	xfig [-outdir figures]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xring"
	"xring/internal/geom"
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/viz"
)

func main() {
	outdir := flag.String("outdir", "figures", "directory for the SVG files")
	flag.Parse()
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	fig2(*outdir)
	fig7(*outdir)
	fig8()
	fig9()
}

func write(outdir, name, svg string) {
	path := filepath.Join(outdir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

// fig2 contrasts the optimal tour with a detouring and a crossing tour
// on the 16-node grid (the paper's Fig. 2 uses 16 regularly aligned
// nodes).
func fig2(outdir string) {
	fmt.Println("Fig. 2 — ring waveguide construction quality (16 aligned nodes)")
	net := noc.Floorplan16()
	opt, err := ring.Construct(net, ring.Options{})
	if err != nil {
		fatal(err)
	}
	dOpt, err := router.NewDesign(net, phys.Default(), opt.Tour, opt.Orders)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  (a) optimal tour: %.1f mm, crossing-free: %v\n",
		opt.Length, dOpt.Validate() == nil)
	write(outdir, "fig2a_optimal.svg", viz.SVG(dOpt))

	// (b) long detour: swap two distant tour positions. The tour stays
	// planar on this grid but gains length.
	base := append([]int(nil), opt.Tour...)
	best := -1.0
	var bestTour []int
	var bestOrders []geom.LOrder
	for i := 0; i < len(base); i++ {
		// Remove node base[i] and reinsert it elsewhere: the Fig. 2(b)
		// shape, where one node is visited out of order.
		rest := append(append([]int(nil), base[:i]...), base[i+1:]...)
		for j := 0; j <= len(rest); j++ {
			t2 := append([]int(nil), rest[:j]...)
			t2 = append(t2, base[i])
			t2 = append(t2, rest[j:]...)
			orders, err := ring.OrdersFor(net, t2)
			if err != nil {
				continue // no planar embedding: that is case (c)
			}
			d2, err := router.NewDesign(net, phys.Default(), t2, orders)
			if err != nil || d2.Validate() != nil {
				continue
			}
			l := d2.Perimeter()
			if l > best {
				best = l
				bestTour = t2
				bestOrders = orders
			}
		}
	}
	if bestTour != nil {
		d2, _ := router.NewDesign(net, phys.Default(), bestTour, bestOrders)
		fmt.Printf("  (b) detoured tour: %.1f mm (+%.0f%%), still crossing-free\n",
			best, (best/opt.Length-1)*100)
		write(outdir, "fig2b_detour.svg", viz.SVG(d2))
	}

	// (c) crossing: swap adjacent tour positions so two edges must
	// cross; the validator rejects it, demonstrating Eq. (3)'s purpose.
	for i := 0; i < len(opt.Tour); i++ {
		t3 := append([]int(nil), opt.Tour...)
		j := (i + 1) % len(t3)
		t3[i], t3[j] = t3[j], t3[i]
		d3, err := router.NewDesign(net, phys.Default(), t3, nil)
		if err != nil {
			continue
		}
		if verr := d3.Validate(); verr != nil {
			fmt.Printf("  (c) crossing tour: %.1f mm, rejected by the validator:\n      %v\n",
				d3.Perimeter(), verr)
			write(outdir, "fig2c_crossing.svg", viz.SVG(d3))
			break
		}
	}
}

// fig7 renders a CSE-merged crossing shortcut pair.
func fig7(outdir string) {
	fmt.Println("Fig. 7 — crossing shortcuts merged with CSEs")
	net := xring.Irregular(10, 30, 30, 3, 8)
	res, err := xring.Synthesize(net, xring.Options{MaxWL: 10, WithPDN: true})
	if err != nil {
		fatal(err)
	}
	for i, s := range res.Design.Shortcuts {
		if s.Partner > i {
			p := res.Design.Shortcuts[s.Partner]
			fmt.Printf("  shortcuts %d<->%d and %d<->%d cross and are CSE-merged\n",
				s.A, s.B, p.A, p.B)
			for _, c := range s.Channels {
				if c.ViaCSE {
					fmt.Printf("    CSE-routed signal %v on λ%d\n", c.Sig, c.WL)
				}
			}
		}
	}
	write(outdir, "fig7_cse.svg", xring.RenderSVG(res.Design))
}

// fig8 prints the openings Step 3 chose and verifies no signal passes
// them.
func fig8() {
	fmt.Println("Fig. 8 — ring waveguide openings")
	net := noc.Floorplan8()
	res, err := xring.Synthesize(net, xring.Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		fatal(err)
	}
	for _, w := range res.Design.Waveguides {
		passing := 0
		for _, c := range w.Channels {
			if res.Design.PassesNode(c.Sig.Src, c.Sig.Dst, w.Opening, w.Dir) {
				passing++
			}
		}
		fmt.Printf("  waveguide %d (%s): opening at node %d, %d signals pass it (must be 0)\n",
			w.ID, w.Dir, w.Opening, passing)
		if passing != 0 {
			fatal(fmt.Errorf("opening invariant violated"))
		}
	}
}

// fig9 prints the splitter tree of the busiest ring waveguide.
func fig9() {
	fmt.Println("Fig. 9 — binary splitter-tree PDN")
	net := noc.Floorplan8()
	res, err := xring.Synthesize(net, xring.Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		fatal(err)
	}
	var busiest *router.Waveguide
	for _, w := range res.Design.Waveguides {
		if busiest == nil || len(res.Design.SendersOn(w)) > len(res.Design.SendersOn(busiest)) {
			busiest = w
		}
	}
	senders := res.Design.SendersOn(busiest)
	fmt.Printf("  waveguide %d: %d senders as leaves, opened at node %d\n",
		busiest.ID, len(senders), busiest.Opening)
	for _, s := range senders {
		f := res.Plan.Feeds[pdn.FeedKey{Index: busiest.ID, Node: s}]
		loss, err := res.Plan.SenderLossDB(res.Design.Par, f.Key)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("    sender %d: %d splitter stages, %.2f mm of PDN waveguide, %.2f dB laser-to-sender\n",
			s, f.Splitters, f.PathLen, loss)
	}
	fmt.Printf("  total PDN wire: %.1f mm, crossings: %d (crossing-free by construction)\n",
		res.Plan.WireLength, res.Plan.CrossingsAdded)
	_ = mapping.WaveguideCap(net, phys.Default())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfig:", err)
	os.Exit(1)
}
