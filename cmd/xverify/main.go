// Command xverify runs the DRC-style signoff suite on a design: either
// a freshly synthesized standard router, or a design reloaded from
// cmd/xring's -design output.
//
// Usage:
//
//	xverify -nodes 16                # synthesize + audit
//	xverify -design d.json           # audit a saved design
//	xverify -nodes 16 -ring-um 30    # include the FSR capacity check
//
// Exit status 1 when any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"xring"
	"xring/internal/designio"
	"xring/internal/loss"
	"xring/internal/pdn"
	"xring/internal/report"
	"xring/internal/verify"
)

func main() {
	nodes := flag.Int("nodes", 16, "standard floorplan size (8, 16 or 32)")
	wl := flag.Int("wl", 0, "per-ring wavelength budget (0 = N-2)")
	designPath := flag.String("design", "", "audit a saved design instead of synthesizing")
	ringUM := flag.Float64("ring-um", 0, "ring circumference in µm for the FSR check (0 = skip)")
	flag.Parse()

	var (
		d    *xring.Design
		plan *pdn.Plan
		lrep *loss.Report
	)
	if *designPath != "" {
		blob, err := os.ReadFile(*designPath)
		if err != nil {
			fatal(err)
		}
		d, err = designio.Load(blob)
		if err != nil {
			fatal(err)
		}
		// Re-derive the PDN when the design has openings (tree) or
		// pre-registered crossings (comb).
		hasOpenings := false
		for _, w := range d.Waveguides {
			if w.Opening >= 0 {
				hasOpenings = true
			}
		}
		if hasOpenings {
			plan, err = pdn.BuildTree(d)
			if err != nil {
				fatal(err)
			}
		}
	} else {
		var net *xring.Network
		switch *nodes {
		case 8:
			net = xring.Floorplan8()
		case 16:
			net = xring.Floorplan16()
		case 32:
			net = xring.Floorplan32()
		default:
			fatal(fmt.Errorf("no standard floorplan for %d nodes", *nodes))
		}
		budget := *wl
		if budget == 0 {
			budget = *nodes - 2
		}
		res, err := xring.Synthesize(net, xring.Options{MaxWL: budget, WithPDN: true})
		if err != nil {
			fatal(err)
		}
		d, plan, lrep = res.Design, res.Plan, res.Loss
	}

	rep, err := verify.Run(d, plan, lrep, verify.Options{
		RingCircumferenceUM: *ringUM,
		GroupIndex:          4.2,
	})
	if err != nil {
		fatal(err)
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("signoff: %d nodes, %d waveguides", d.N(), len(d.Waveguides)),
		Header: []string{"check", "result", "detail"},
	}
	for _, c := range rep.Checks {
		status := "PASS"
		if c.Skipped {
			status = "skip"
		} else if !c.Passed {
			status = "FAIL"
		}
		tb.AddRow(c.Name, status, c.Detail)
	}
	fmt.Print(tb.String())
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "%d checks failed\n", rep.Failed)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xverify:", err)
	os.Exit(1)
}
