package main

// Fault-replay benchmark (-whatif): a k=1 fault-tolerant 16-node
// design is replayed under its exhaustive single-fault universe (MRR,
// segment and detune faults), serial and parallel. Two properties are
// pinned:
//
//   - Survivability: the k=1 synthesis must survive every single-MRR
//     scenario with zero lost signals — the same acceptance property
//     the faults package tests, re-checked here on the larger design.
//   - Replay throughput: the delta replay must beat re-running the full
//     nominal loss+crosstalk analysis per scenario. The amplification
//     ratio (scenarios x nominal analysis time / replay wall-clock) is
//     machine-independent and is what -check gates, mirroring the
//     explore bench.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"xring/internal/core"
	"xring/internal/faults"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/xtalk"
)

// whatifReport is the BENCH_whatif.json schema.
type whatifReport struct {
	GoVersion string `json:"goVersion"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	Cores     int    `json:"cores"`

	Signals   int `json:"signals"`
	Universe  int `json:"universe"`
	Scenarios int `json:"scenarios"`

	FullSetSurvivesMRR bool `json:"fullSetSurvivesMRR"`
	MaxLost            int  `json:"maxLost"`
	Promotions         int  `json:"promotions"`

	NominalMS  float64 `json:"nominalMS"`
	SerialMS   float64 `json:"serialMS"`
	ParallelMS float64 `json:"parallelMS"`
	// ReplaysPerSec is parallel replay throughput (machine-dependent,
	// informational); Amplification is scenarios*nominalMS/parallelMS —
	// how much cheaper delta replay is than naive full re-analysis per
	// scenario (machine-independent, gated by -check).
	ReplaysPerSec float64 `json:"replaysPerSec"`
	Amplification float64 `json:"amplification"`

	Timestamp string `json:"timestampUTC,omitempty"`
}

// whatifTimingReps: best-of reps damp scheduler noise, like the other
// benches.
const whatifTimingReps = 3

func runWhatifBench(out string, checkPath string) error {
	res, err := core.Synthesize(noc.Floorplan16(), core.Options{
		MaxWL: 12, WithPDN: true, FaultTolerance: 1,
	})
	if err != nil {
		return fmt.Errorf("whatif bench: synthesize: %w", err)
	}
	d, plan := res.Design, res.Plan
	ctx := context.Background()

	// The full mixed universe is the timed workload.
	universe := faults.Universe(d, []faults.Kind{faults.KindMRR, faults.KindSegment, faults.KindDetune}, 0)
	scenarios, err := faults.EnumerateK(universe, 1)
	if err != nil {
		return fmt.Errorf("whatif bench: %w", err)
	}

	// Baseline: one full nominal loss+crosstalk analysis (what each
	// scenario would cost without delta replay).
	nominalMS := 0.0
	for rep := 0; rep < whatifTimingReps; rep++ {
		t0 := time.Now()
		lrep, err := loss.AnalyzeCtx(ctx, d, plan)
		if err != nil {
			return fmt.Errorf("whatif bench: nominal loss: %w", err)
		}
		if _, err := xtalk.AnalyzeCtx(ctx, d, plan, lrep); err != nil {
			return fmt.Errorf("whatif bench: nominal xtalk: %w", err)
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if rep == 0 || ms < nominalMS {
			nominalMS = ms
		}
	}

	timeReplay := func(serial bool) (*faults.Report, float64, error) {
		var best float64
		var rep *faults.Report
		for i := 0; i < whatifTimingReps; i++ {
			t0 := time.Now()
			r, err := faults.Analyze(ctx, d, plan, scenarios, faults.Options{Serial: serial})
			ms := float64(time.Since(t0).Microseconds()) / 1000
			if err != nil {
				return nil, 0, err
			}
			if i == 0 || ms < best {
				best = ms
			}
			rep = r
		}
		return rep, best, nil
	}
	_, serialMS, err := timeReplay(true)
	if err != nil {
		return fmt.Errorf("whatif bench: serial replay: %w", err)
	}
	full, parallelMS, err := timeReplay(false)
	if err != nil {
		return fmt.Errorf("whatif bench: parallel replay: %w", err)
	}

	// Survivability acceptance on the MRR-only universe.
	mrrScs, err := faults.EnumerateK(faults.Universe(d, []faults.Kind{faults.KindMRR}, 0), 1)
	if err != nil {
		return fmt.Errorf("whatif bench: %w", err)
	}
	mrr, err := faults.Analyze(ctx, d, plan, mrrScs, faults.Options{})
	if err != nil {
		return fmt.Errorf("whatif bench: MRR replay: %w", err)
	}
	promotions := 0
	for _, o := range mrr.Outcomes {
		promotions += len(o.Promoted)
	}

	rep := whatifReport{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),

		Signals:   full.Signals,
		Universe:  len(universe),
		Scenarios: len(scenarios),

		FullSetSurvivesMRR: mrr.FullSetSurvives,
		MaxLost:            mrr.MaxLost,
		Promotions:         promotions,

		NominalMS:  nominalMS,
		SerialMS:   serialMS,
		ParallelMS: parallelMS,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if parallelMS > 0 {
		rep.ReplaysPerSec = float64(len(scenarios)) / (parallelMS / 1000)
		rep.Amplification = float64(len(scenarios)) * nominalMS / parallelMS
	}
	fmt.Fprintf(os.Stderr,
		"whatif replay %d scenarios over %d signals: parallel %.1f ms (serial %.1f, nominal analysis %.2f) | %.0f replays/s | %.1fx vs naive | MRR survival %v (%d promotions)\n",
		rep.Scenarios, rep.Signals, rep.ParallelMS, rep.SerialMS, rep.NominalMS,
		rep.ReplaysPerSec, rep.Amplification, rep.FullSetSurvivesMRR, rep.Promotions)

	// Acceptance floors, independent of any committed report.
	if !mrr.FullSetSurvives || mrr.MaxLost != 0 {
		return fmt.Errorf("whatif bench: k=1 design lost %d signals under single-MRR replay", mrr.MaxLost)
	}
	if promotions == 0 {
		return fmt.Errorf("whatif bench: no fault ever promoted a spare")
	}
	if rep.Amplification <= 1.0 {
		return fmt.Errorf("whatif bench: delta replay (%.2fx) was not faster than naive per-scenario re-analysis", rep.Amplification)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if checkPath != "" {
		return checkWhatifReport(rep, checkPath)
	}
	return nil
}

// checkWhatifReport compares a fresh run against the committed
// BENCH_whatif.json: universe shape and survivability are deterministic
// (exact match); the replay amplification ratio is machine-independent
// (25% slack).
func checkWhatifReport(got whatifReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("whatif check: %w", err)
	}
	var want whatifReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("whatif check: parse %s: %w", path, err)
	}
	var failures []string
	if got.Signals != want.Signals || got.Universe != want.Universe || got.Scenarios != want.Scenarios {
		failures = append(failures, fmt.Sprintf(
			"universe shape changed: %d signals/%d faults/%d scenarios -> %d/%d/%d (regenerate %s)",
			want.Signals, want.Universe, want.Scenarios,
			got.Signals, got.Universe, got.Scenarios, path))
	}
	if !got.FullSetSurvivesMRR || got.MaxLost != 0 {
		failures = append(failures, fmt.Sprintf(
			"single-MRR survivability lost: survives=%v maxLost=%d", got.FullSetSurvivesMRR, got.MaxLost))
	}
	if got.Promotions < want.Promotions {
		failures = append(failures, fmt.Sprintf(
			"spare promotions fell %d -> %d on a deterministic universe", want.Promotions, got.Promotions))
	}
	const slack = 1.25 // 25%
	if want.Amplification > 0 && got.Amplification < want.Amplification/slack {
		failures = append(failures, fmt.Sprintf(
			"replay amplification fell %.2fx -> %.2fx (>25%%)", want.Amplification, got.Amplification))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "whatif check FAIL:", f)
		}
		return fmt.Errorf("whatif check: %d regression(s) against %s", len(failures), path)
	}
	fmt.Fprintln(os.Stderr, "whatif check OK against", path)
	return nil
}
