package main

// Solver micro-benchmark (-solver): the Step-1 ring-construction MILP
// models, solved four ways — the pre-overhaul DFS (milp.SolveBaseline),
// the propagating solver serial and parallel, and the propagating
// solver warm-started from the construction heuristic. All four must
// agree on the optimum (the run aborts otherwise); the report records
// node counts and wall-clock so CI can catch solver regressions.
//
// Node counts for the baseline and the serial propagating solver are
// deterministic (fixed models, fixed branching), so -check compares
// them against the committed report with a small slack and fails on
// growth. Wall-clock is machine-dependent; -check therefore compares
// the serial-vs-baseline *ratio*, which normalizes the machine away.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/ring"
)

// solverInstance is one seeded ring-construction model.
type solverInstance struct {
	name string
	net  *noc.Network
}

// solverInstances are ordered smallest to largest; the last one is the
// headline case the node-reduction acceptance bar applies to.
func solverInstances() []solverInstance {
	return []solverInstance{
		{"grid8", noc.Floorplan8()},
		{"irregular10", noc.Irregular(10, 12, 12, 2.0, 3)},
		{"irregular12", noc.Irregular(12, 14, 14, 2.0, 2)},
	}
}

// solverCase is the per-instance record of the -solver report.
type solverCase struct {
	Name string `json:"name"`
	Vars int    `json:"vars"`
	Cons int    `json:"cons"`

	Objective float64 `json:"objective"`

	BaselineNodes int64   `json:"baselineNodes"`
	SerialNodes   int64   `json:"serialNodes"`
	WarmNodes     int64   `json:"warmNodes"`
	NodeReduction float64 `json:"nodeReduction"` // baseline / serial

	BaselineMS float64 `json:"baselineMS"`
	SerialMS   float64 `json:"serialMS"`
	ParallelMS float64 `json:"parallelMS"`
	WarmMS     float64 `json:"warmMS"`
	// SerialSpeedup is baselineMS / serialMS: how much faster the
	// propagating solver proves the same optimum on this machine.
	SerialSpeedup float64 `json:"serialSpeedup"`
}

// solverReport is the BENCH_solver.json schema.
type solverReport struct {
	GoVersion  string       `json:"goVersion"`
	GoOS       string       `json:"goos"`
	GoArch     string       `json:"goarch"`
	Cores      int          `json:"cores"`
	MaxNodes   int          `json:"maxNodes"`
	Cases      []solverCase `json:"cases"`
	Timestamp  string       `json:"timestampUTC,omitempty"`
	FastestRep int          `json:"timingReps"`
}

// solverMaxNodes is generous: every mode must complete, or the bench
// aborts — a budget hit would make node counts meaningless.
const solverMaxNodes = 50_000_000

// solverTimingReps re-runs each timed solve and keeps the fastest
// wall-clock, damping scheduler noise without touching the (single-run,
// deterministic) node counts.
const solverTimingReps = 3

func timeFastest(reps int, run func() error) (float64, error) {
	best := 0.0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if r == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

func runSolverBench(out string, checkPath string) error {
	rep := solverReport{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Cores:      runtime.NumCPU(),
		MaxNodes:   solverMaxNodes,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		FastestRep: solverTimingReps,
	}

	for _, si := range solverInstances() {
		inst, err := ring.NewMILPInstance(si.net, ring.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", si.name, err)
		}
		c := solverCase{
			Name: si.name,
			Vars: inst.Model.NumVars(),
			Cons: inst.Model.NumConstraints(),
		}

		var base, serial, par, warm *milp.Solution
		// One rep for the baseline: it runs seconds, so scheduler noise
		// is negligible, and three reps would dominate the bench.
		c.BaselineMS, err = timeFastest(1, func() error {
			base, err = milp.SolveBaseline(inst.Model, milp.Options{MaxNodes: solverMaxNodes})
			return err
		})
		if err != nil {
			return fmt.Errorf("%s baseline: %w", si.name, err)
		}
		c.SerialMS, err = timeFastest(solverTimingReps, func() error {
			serial, err = milp.Solve(inst.Model, milp.Options{MaxNodes: solverMaxNodes})
			return err
		})
		if err != nil {
			return fmt.Errorf("%s serial: %w", si.name, err)
		}
		c.ParallelMS, err = timeFastest(solverTimingReps, func() error {
			par, err = milp.Solve(inst.Model, milp.Options{MaxNodes: solverMaxNodes, Parallel: true})
			return err
		})
		if err != nil {
			return fmt.Errorf("%s parallel: %w", si.name, err)
		}
		c.WarmMS, err = timeFastest(solverTimingReps, func() error {
			warm, err = milp.Solve(inst.Model, milp.Options{MaxNodes: solverMaxNodes, IncumbentHint: inst.Hint})
			return err
		})
		if err != nil {
			return fmt.Errorf("%s warm: %w", si.name, err)
		}

		// Exactness cross-check: all four modes prove the same optimum.
		for _, m := range []struct {
			mode string
			sol  *milp.Solution
		}{{"serial", serial}, {"parallel", par}, {"warm", warm}} {
			if d := m.sol.Objective - base.Objective; d > milp.Eps || d < -milp.Eps {
				return fmt.Errorf("%s: %s objective %v != baseline %v — solver is NOT exact",
					si.name, m.mode, m.sol.Objective, base.Objective)
			}
			if !m.sol.Optimal {
				return fmt.Errorf("%s: %s solve did not prove optimality", si.name, m.mode)
			}
		}

		c.Objective = base.Objective
		c.BaselineNodes = int64(base.Nodes)
		c.SerialNodes = int64(serial.Nodes)
		c.WarmNodes = int64(warm.Nodes)
		if serial.Nodes > 0 {
			c.NodeReduction = float64(base.Nodes) / float64(serial.Nodes)
		}
		if c.SerialMS > 0 {
			c.SerialSpeedup = c.BaselineMS / c.SerialMS
		}
		rep.Cases = append(rep.Cases, c)
		fmt.Fprintf(os.Stderr,
			"%-12s vars=%-4d baseline %8d nodes %8.1f ms | serial %7d nodes %7.1f ms (%.1fx nodes, %.1fx time) | parallel %6.1f ms | warm %7d nodes\n",
			c.Name, c.Vars, c.BaselineNodes, c.BaselineMS,
			c.SerialNodes, c.SerialMS, c.NodeReduction, c.SerialSpeedup,
			c.ParallelMS, c.WarmNodes)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if checkPath != "" {
		return checkSolverReport(rep, checkPath)
	}
	return nil
}

// checkSolverReport compares a fresh run against the committed
// BENCH_solver.json. Node counts are deterministic, so any growth
// beyond the slack is a real search regression; wall-clock is compared
// through the serial-vs-baseline ratio to stay machine-independent.
func checkSolverReport(got solverReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("solver check: %w", err)
	}
	var want solverReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("solver check: parse %s: %w", path, err)
	}
	wantCases := map[string]solverCase{}
	for _, c := range want.Cases {
		wantCases[c.Name] = c
	}
	const slack = 1.25 // 25%
	var failures []string
	for _, c := range got.Cases {
		w, ok := wantCases[c.Name]
		if !ok {
			continue // new instance, no baseline yet
		}
		if float64(c.SerialNodes) > float64(w.SerialNodes)*slack {
			failures = append(failures, fmt.Sprintf(
				"%s: serial nodes grew %d -> %d (>25%%)", c.Name, w.SerialNodes, c.SerialNodes))
		}
		// The committed ratio already proved achievable on some machine;
		// regressing it by >25% on the same models means the solver (not
		// the machine) got slower relative to its own baseline. Sub-
		// millisecond solves are all timer noise, so the ratio is only
		// meaningful on instances the propagating solver itself takes
		// >=1 ms on.
		if w.SerialSpeedup > 0 && w.SerialMS >= 1 && c.SerialSpeedup < w.SerialSpeedup/slack {
			failures = append(failures, fmt.Sprintf(
				"%s: serial speedup vs baseline fell %.2fx -> %.2fx (>25%%)",
				c.Name, w.SerialSpeedup, c.SerialSpeedup))
		}
	}
	// Acceptance floor: the largest instance must keep a >=5x node
	// reduction over the pre-overhaul DFS.
	if n := len(got.Cases); n > 0 {
		last := got.Cases[n-1]
		if last.NodeReduction < 5 {
			failures = append(failures, fmt.Sprintf(
				"%s: node reduction %.2fx below the 5x floor", last.Name, last.NodeReduction))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "solver check FAIL:", f)
		}
		return fmt.Errorf("solver check: %d regression(s) against %s", len(failures), path)
	}
	fmt.Fprintln(os.Stderr, "solver check OK against", path)
	return nil
}
