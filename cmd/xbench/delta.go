package main

// Placement hot-loop micro-benchmark (-delta): the cost of scoring one
// placement proposal on the 16-node seeded floorplan, evaluated two
// ways — a full re-synthesis of the whole XRing flow (what the
// placement optimizer did before the incremental engine existed) and a
// delta evaluation against an attached evaluator (internal/delta).
// Every delta-scored proposal is also cross-checked bit-for-bit against
// a full analysis recompute, so the speedup number is only reported for
// an engine that is provably equivalent.
//
// Wall-clock is machine-dependent; -check therefore compares the
// delta-vs-full *ratio* against the committed BENCH_delta.json and
// fails on >25% regression. The >=5x acceptance floor is enforced on
// every run, with or without -check.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"xring/internal/core"
	"xring/internal/delta"
	"xring/internal/geom"
	"xring/internal/noc"
)

// deltaReport is the BENCH_delta.json schema.
type deltaReport struct {
	GoVersion string `json:"goVersion"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	Cores     int    `json:"cores"`
	Nodes     int    `json:"nodes"`
	// FullProposals / DeltaProposals are the proposal counts each pass
	// scored (full re-synthesis is orders of magnitude slower, so the
	// full pass samples fewer).
	FullProposals  int `json:"fullProposals"`
	DeltaProposals int `json:"deltaProposals"`
	// Per-proposal evaluation cost and throughput for each mode.
	FullMSPerProposal  float64 `json:"fullMSPerProposal"`
	DeltaMSPerProposal float64 `json:"deltaMSPerProposal"`
	FullPerSec         float64 `json:"fullPerSec"`
	DeltaPerSec        float64 `json:"deltaPerSec"`
	// Speedup is fullMSPerProposal / deltaMSPerProposal.
	Speedup float64 `json:"speedup"`
	// EquivalenceChecked counts proposals whose delta reports were
	// verified bit-identical to a full analysis recompute.
	EquivalenceChecked int    `json:"equivalenceChecked"`
	Timestamp          string `json:"timestampUTC,omitempty"`
	TimingReps         int    `json:"timingReps"`
}

const (
	// deltaBenchProposals is the delta-pass proposal count; the full
	// pass scores deltaBenchFullProposals of the same sequence.
	deltaBenchProposals     = 64
	deltaBenchFullProposals = 6
	deltaBenchTimingReps    = 5
	// deltaSpeedupFloor is the acceptance bar: delta evaluation must be
	// at least this much faster per proposal than full re-synthesis.
	deltaSpeedupFloor = 5.0
)

// deltaBenchNet is the 16-node seeded floorplan the placement16 stage
// of the -json benchmark searches.
func deltaBenchNet() *noc.Network { return noc.Irregular(16, 16, 16, 2.5, 5) }

// drawProposals generates spacing-valid single-node moves against the
// base placement, the way a placement round does.
func drawProposals(net *noc.Network, count int, seed int64) []struct {
	node int
	to   geom.Point
} {
	rng := rand.New(rand.NewSource(seed))
	props := make([]struct {
		node int
		to   geom.Point
	}, 0, count)
	for len(props) < count {
		node := rng.Intn(net.N())
		p := net.Nodes[node].Pos
		p.X += (rng.Float64()*2 - 1) * 1.5
		p.Y += (rng.Float64()*2 - 1) * 1.5
		ok := true
		for i, other := range net.Nodes {
			if i != node && geom.Manhattan(p, other.Pos) < 1 {
				ok = false
				break
			}
		}
		if ok {
			props = append(props, struct {
				node int
				to   geom.Point
			}{node, p})
		}
	}
	return props
}

func runDeltaBench(out string, checkPath string) error {
	net := deltaBenchNet()
	opt := core.Options{MaxWL: 16, WithPDN: true}
	res, err := core.Synthesize(net, opt)
	if err != nil {
		return fmt.Errorf("delta bench: base synthesis: %w", err)
	}
	props := drawProposals(net, deltaBenchProposals, 1)

	rep := deltaReport{
		GoVersion:      runtime.Version(),
		GoOS:           runtime.GOOS,
		GoArch:         runtime.GOARCH,
		Cores:          runtime.NumCPU(),
		Nodes:          net.N(),
		FullProposals:  deltaBenchFullProposals,
		DeltaProposals: len(props),
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		TimingReps:     deltaBenchTimingReps,
	}

	// Full pass: clone + complete re-synthesis per proposal, exactly
	// what the pre-delta placement hot loop paid. The Step-1 cache is
	// dropped each rep — it is keyed by geometry, so a repeat rep over
	// the same proposals would otherwise skip the ring search entirely.
	fullMS, err := timeFastest(2, func() error {
		core.ResetRingCache()
		for _, pr := range props[:deltaBenchFullProposals] {
			cand := &noc.Network{DieW: net.DieW, DieH: net.DieH}
			cand.Nodes = append([]noc.Node(nil), net.Nodes...)
			cand.Nodes[pr.node].Pos = pr.to
			if _, err := core.Synthesize(cand, opt); err != nil {
				return fmt.Errorf("full synthesis of proposal: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("delta bench: %w", err)
	}
	rep.FullMSPerProposal = fullMS / float64(deltaBenchFullProposals)

	// Delta pass: attach once, score every proposal incrementally.
	// Periodic cross-checking is disabled inside the timed loop (it
	// would bill full recomputes to the delta engine); equivalence is
	// verified separately below.
	ev, err := delta.Attach(res, delta.Options{CrossCheckEvery: -1})
	if err != nil {
		return fmt.Errorf("delta bench: attach: %w", err)
	}
	deltaMS, err := timeFastest(deltaBenchTimingReps, func() error {
		for _, pr := range props {
			if _, err := ev.EvalMove(pr.node, pr.to); err != nil {
				return fmt.Errorf("delta eval of proposal: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("delta bench: %w", err)
	}
	rep.DeltaMSPerProposal = deltaMS / float64(len(props))

	// Equivalence: every proposal's delta reports must be bit-identical
	// to a full analysis recompute at the same geometry, and a committed
	// walk with per-commit cross-checks must hold as well.
	for i, pr := range props {
		if _, err := ev.CheckMove(pr.node, pr.to); err != nil {
			return fmt.Errorf("delta bench: proposal %d NOT equivalent to full recompute: %w", i, err)
		}
	}
	walker, err := delta.Attach(res, delta.Options{CrossCheckEvery: 1})
	if err != nil {
		return fmt.Errorf("delta bench: attach walker: %w", err)
	}
	for i, pr := range props[:8] {
		if _, err := walker.Commit(pr.node, pr.to); err != nil {
			return fmt.Errorf("delta bench: committed walk diverged at move %d: %w", i, err)
		}
	}
	rep.EquivalenceChecked = len(props) + 8

	if rep.FullMSPerProposal > 0 {
		rep.FullPerSec = 1000 / rep.FullMSPerProposal
	}
	if rep.DeltaMSPerProposal > 0 {
		rep.DeltaPerSec = 1000 / rep.DeltaMSPerProposal
		rep.Speedup = rep.FullMSPerProposal / rep.DeltaMSPerProposal
	}
	fmt.Fprintf(os.Stderr,
		"delta bench: full %.2f ms/proposal (%.1f/s) | delta %.4f ms/proposal (%.0f/s) | speedup %.0fx | %d equivalence checks OK\n",
		rep.FullMSPerProposal, rep.FullPerSec,
		rep.DeltaMSPerProposal, rep.DeltaPerSec,
		rep.Speedup, rep.EquivalenceChecked)

	// Acceptance floor, enforced on every run.
	if rep.Speedup < deltaSpeedupFloor {
		return fmt.Errorf("delta bench: speedup %.2fx below the %.0fx floor", rep.Speedup, deltaSpeedupFloor)
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if checkPath != "" {
		return checkDeltaReport(rep, checkPath)
	}
	return nil
}

// checkDeltaReport compares a fresh run against the committed
// BENCH_delta.json: the delta-vs-full speedup ratio normalizes the
// machine away, so losing more than 25% of it means the engine (not the
// hardware) got slower relative to full synthesis.
func checkDeltaReport(got deltaReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("delta check: %w", err)
	}
	var want deltaReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("delta check: parse %s: %w", path, err)
	}
	const slack = 1.25 // 25%
	if want.Speedup > 0 && got.Speedup < want.Speedup/slack {
		fmt.Fprintf(os.Stderr, "delta check FAIL: speedup fell %.0fx -> %.0fx (>25%%)\n",
			want.Speedup, got.Speedup)
		return fmt.Errorf("delta check: regression against %s", path)
	}
	fmt.Fprintln(os.Stderr, "delta check OK against", path)
	return nil
}
