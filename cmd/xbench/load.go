package main

// Load mode: drive a running xringd instance with a concurrent mixed
// workload through the service client, then report client-side latency
// percentiles next to the server's own admission/cache counters. This
// is the ops-facing complement of the synthesis tables: it answers
// "what does this daemon do under N concurrent requests" — how much
// load the content-addressed cache and singleflight dedup absorb, and
// how often admission control pushed back.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"xring/internal/obs"
	"xring/internal/service"
	"xring/internal/service/client"
)

// loadConfig is the -load* flag bundle.
type loadConfig struct {
	base  string // xringd base URL
	total int    // requests to send
	conc  int    // concurrent senders
	nodes int    // floorplan size (standard grids)
}

// loadVariants builds the mixed request set: four distinct #wl budgets
// on the standard n-node floorplan, so concurrent senders collide on
// identical requests often enough to exercise dedup and caching.
func loadVariants(n int) []*service.Request {
	budgets := []int{n / 2, n/2 + 1, n - 2, n - 1}
	var reqs []*service.Request
	seen := map[int]bool{}
	for _, wl := range budgets {
		if wl < 1 || wl > n || seen[wl] {
			continue
		}
		seen[wl] = true
		reqs = append(reqs, &service.Request{
			Network: service.NetworkSpec{Standard: n},
			Options: service.OptionsSpec{MaxWL: wl},
		})
	}
	return reqs
}

func runLoad(w io.Writer, cfg loadConfig) error {
	ctx := context.Background()
	c := client.New(cfg.base, nil)
	if err := c.Ready(ctx); err != nil {
		return fmt.Errorf("xringd at %s is not ready: %w", cfg.base, err)
	}
	before, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	variants := loadVariants(cfg.nodes)

	type sample struct {
		lat      time.Duration
		source   string
		traceID  string
		echoed   bool // server echoed our trace ID back
		degraded bool
		err      error
	}
	samples := make([]sample, cfg.total)
	sem := make(chan struct{}, cfg.conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < cfg.total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Per-request trace ID: the client propagates it as a
			// traceparent header, so every server-side record of this
			// request is greppable by it.
			tid := obs.NewTraceID()
			rctx := obs.WithTraceID(ctx, tid)
			start := time.Now()
			resp, err := c.Synthesize(rctx, variants[i%len(variants)])
			s := sample{lat: time.Since(start), traceID: string(tid), err: err}
			if err == nil {
				s.source = resp.Source
				s.echoed = resp.TraceID == string(tid)
				s.degraded = resp.Summary != nil && resp.Summary.Degraded
			}
			samples[i] = s
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)
	after, err := c.Stats(ctx)
	if err != nil {
		return err
	}

	var lats []time.Duration
	sources := map[string]int{}
	failures, degraded, traceMismatches := 0, 0, 0
	var failureSamples []string
	for _, s := range samples {
		if s.err != nil {
			failures++
			if len(failureSamples) < 3 {
				failureSamples = append(failureSamples,
					fmt.Sprintf("%s (trace %s)", s.err.Error(), s.traceID))
			}
			continue
		}
		if !s.echoed {
			traceMismatches++
		}
		if s.degraded {
			degraded++
		}
		lats = append(lats, s.lat)
		sources[s.source]++
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}

	fmt.Fprintf(w, "xringd load: %d requests x %d concurrent against %s (%d-node floorplans, %d variants)\n",
		cfg.total, cfg.conc, cfg.base, cfg.nodes, len(variants))
	fmt.Fprintf(w, "  wall time        %v\n", wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  ok / failed      %d / %d\n", len(lats), failures)
	fmt.Fprintf(w, "  latency p50/p95/p99  %v / %v / %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Fprintf(w, "  sources          synthesized %d, dedup %d, cache %d\n",
		sources["synthesized"], sources["dedup"], sources["cache"])
	if degraded > 0 {
		fmt.Fprintf(w, "  degraded         %d responses used the heuristic fallback\n", degraded)
	}
	fmt.Fprintf(w, "  server counters  +%d requests, +%d synthesized, +%d cache hits, +%d dedup hits, +%d rejected, +%d degraded\n",
		after.Requests-before.Requests, after.Synthesized-before.Synthesized,
		after.CacheHits-before.CacheHits, after.DedupHits-before.DedupHits,
		after.Rejected-before.Rejected, after.Degraded-before.Degraded)
	for _, msg := range failureSamples {
		fmt.Fprintf(w, "  failure          %s\n", msg)
	}
	if traceMismatches > 0 {
		fmt.Fprintf(w, "  trace mismatch   %d responses did not echo the request's trace ID\n", traceMismatches)
	}
	// A load run that lost requests is a failed run: the caller (xbench
	// main, CI) must exit nonzero, not just print a sad number. Broken
	// trace propagation likewise — it is the contract this mode verifies.
	if failures > 0 {
		return fmt.Errorf("%d/%d load requests ultimately failed", failures, cfg.total)
	}
	if traceMismatches > 0 {
		return fmt.Errorf("%d/%d responses did not echo the request trace ID", traceMismatches, cfg.total)
	}
	return nil
}
