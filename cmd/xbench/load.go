package main

// Load mode: drive one running xringd — or a whole fleet — with a
// concurrent mixed workload through the service client, then report
// client-side latency percentiles next to the servers' own
// admission/cache counters. This is the ops-facing complement of the
// synthesis tables: it answers "what does this daemon (or cluster
// front) do under N concurrent requests" — how much load the
// content-addressed cache and singleflight dedup absorb, and how often
// admission control pushed back.
//
// With -endpoints a,b,c the workload round-robins across the fleet and
// the report adds a per-endpoint breakdown. All endpoint clients share
// one BreakerGroup, so a dead endpoint trips only its own circuit: the
// rest of the fleet keeps being measured.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"xring/internal/obs"
	"xring/internal/service"
	"xring/internal/service/client"
)

// loadConfig is the -load* flag bundle.
type loadConfig struct {
	endpoints []string // xringd base URLs (round-robin when several)
	total     int      // requests to send
	conc      int      // concurrent senders
	nodes     int      // floorplan size (standard grids)
}

// splitEndpoints parses the -endpoints list, dropping empties.
func splitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

// loadVariants builds the mixed request set: four distinct #wl budgets
// on the standard n-node floorplan, so concurrent senders collide on
// identical requests often enough to exercise dedup and caching.
func loadVariants(n int) []*service.Request {
	budgets := []int{n / 2, n/2 + 1, n - 2, n - 1}
	var reqs []*service.Request
	seen := map[int]bool{}
	for _, wl := range budgets {
		if wl < 1 || wl > n || seen[wl] {
			continue
		}
		seen[wl] = true
		reqs = append(reqs, &service.Request{
			Network: service.NetworkSpec{Standard: n},
			Options: service.OptionsSpec{MaxWL: wl},
		})
	}
	return reqs
}

// pctOf returns the p-quantile of a sorted latency slice.
func pctOf(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(p * float64(len(lats)-1))
	return lats[i]
}

func runLoad(w io.Writer, cfg loadConfig) error {
	ctx := context.Background()
	// One breaker group for the whole fleet: per-endpoint circuits, so
	// one bad endpoint cannot stop the workload against the others.
	group := client.NewBreakerGroup()
	clients := make([]*client.Client, len(cfg.endpoints))
	befores := make([]*service.Stats, len(cfg.endpoints))
	for i, ep := range cfg.endpoints {
		clients[i] = client.NewWithBreakers(ep, nil, group)
		if err := clients[i].Ready(ctx); err != nil {
			return fmt.Errorf("xringd at %s is not ready: %w", ep, err)
		}
		st, err := clients[i].Stats(ctx)
		if err != nil {
			return err
		}
		befores[i] = st
	}
	variants := loadVariants(cfg.nodes)

	type sample struct {
		lat      time.Duration
		endpoint int
		source   string
		traceID  string
		echoed   bool // server echoed our trace ID back
		degraded bool
		err      error
	}
	samples := make([]sample, cfg.total)
	sem := make(chan struct{}, cfg.conc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < cfg.total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Per-request trace ID: the client propagates it as a
			// traceparent header, so every server-side record of this
			// request is greppable by it.
			tid := obs.NewTraceID()
			rctx := obs.WithTraceID(ctx, tid)
			ep := i % len(clients)
			start := time.Now()
			resp, err := clients[ep].Synthesize(rctx, variants[i%len(variants)])
			s := sample{lat: time.Since(start), endpoint: ep, traceID: string(tid), err: err}
			if err == nil {
				s.source = resp.Source
				s.echoed = resp.TraceID == string(tid)
				s.degraded = resp.Summary != nil && resp.Summary.Degraded
			}
			samples[i] = s
		}(i)
	}
	wg.Wait()
	wall := time.Since(t0)

	var lats []time.Duration
	perEP := make([][]time.Duration, len(clients))
	perEPSources := make([]map[string]int, len(clients))
	for i := range perEPSources {
		perEPSources[i] = map[string]int{}
	}
	sources := map[string]int{}
	failures, degraded, traceMismatches := 0, 0, 0
	var failureSamples []string
	for _, s := range samples {
		if s.err != nil {
			failures++
			if len(failureSamples) < 3 {
				failureSamples = append(failureSamples,
					fmt.Sprintf("%s (trace %s)", s.err.Error(), s.traceID))
			}
			continue
		}
		if !s.echoed {
			traceMismatches++
		}
		if s.degraded {
			degraded++
		}
		lats = append(lats, s.lat)
		perEP[s.endpoint] = append(perEP[s.endpoint], s.lat)
		perEPSources[s.endpoint][s.source]++
		sources[s.source]++
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	for _, l := range perEP {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}

	fmt.Fprintf(w, "xringd load: %d requests x %d concurrent against %d endpoint(s) (%d-node floorplans, %d variants)\n",
		cfg.total, cfg.conc, len(cfg.endpoints), cfg.nodes, len(variants))
	fmt.Fprintf(w, "  wall time        %v\n", wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  ok / failed      %d / %d\n", len(lats), failures)
	fmt.Fprintf(w, "  latency p50/p95/p99/p999  %v / %v / %v / %v\n",
		pctOf(lats, 0.50).Round(time.Microsecond), pctOf(lats, 0.95).Round(time.Microsecond),
		pctOf(lats, 0.99).Round(time.Microsecond), pctOf(lats, 0.999).Round(time.Microsecond))
	fmt.Fprintf(w, "  sources          synthesized %d, dedup %d, cache %d, peerfill %d\n",
		sources["synthesized"], sources["dedup"], sources["cache"], sources["peerfill"])
	if degraded > 0 {
		fmt.Fprintf(w, "  degraded         %d responses used the heuristic fallback\n", degraded)
	}
	if len(cfg.endpoints) > 1 {
		fmt.Fprintf(w, "  per endpoint     %-28s %6s %10s %10s %10s  %s\n",
			"url", "ok", "p50", "p99", "p999", "sources (synth/dedup/cache/peerfill)")
		for i, ep := range cfg.endpoints {
			l := perEP[i]
			src := perEPSources[i]
			fmt.Fprintf(w, "                   %-28s %6d %10v %10v %10v  %d/%d/%d/%d\n",
				ep, len(l),
				pctOf(l, 0.50).Round(time.Microsecond), pctOf(l, 0.99).Round(time.Microsecond),
				pctOf(l, 0.999).Round(time.Microsecond),
				src["synthesized"], src["dedup"], src["cache"], src["peerfill"])
		}
	}
	for i, c := range clients {
		after, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		before := befores[i]
		fmt.Fprintf(w, "  server counters  %s: +%d requests, +%d synthesized, +%d cache hits, +%d dedup hits, +%d peer fills, +%d rejected, +%d degraded\n",
			cfg.endpoints[i],
			after.Requests-before.Requests, after.Synthesized-before.Synthesized,
			after.CacheHits-before.CacheHits, after.DedupHits-before.DedupHits,
			after.PeerFills-before.PeerFills,
			after.Rejected-before.Rejected, after.Degraded-before.Degraded)
	}
	for _, msg := range failureSamples {
		fmt.Fprintf(w, "  failure          %s\n", msg)
	}
	if traceMismatches > 0 {
		fmt.Fprintf(w, "  trace mismatch   %d responses did not echo the request's trace ID\n", traceMismatches)
	}
	// A load run that lost requests is a failed run: the caller (xbench
	// main, CI) must exit nonzero, not just print a sad number. Broken
	// trace propagation likewise — it is the contract this mode verifies.
	if failures > 0 {
		return fmt.Errorf("%d/%d load requests ultimately failed", failures, cfg.total)
	}
	if traceMismatches > 0 {
		return fmt.Errorf("%d/%d responses did not echo the request trace ID", traceMismatches, cfg.total)
	}
	return nil
}
