package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xring/internal/service"
)

func TestRunLoadAgainstInProcessService(t *testing.T) {
	s, err := service.New(service.Config{QueueDepth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	var out strings.Builder
	if err := runLoad(&out, loadConfig{base: ts.URL, total: 12, conc: 4, nodes: 8}); err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"ok / failed      12 / 0", "latency p50/p95/p99", "server counters"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "trace mismatch") {
		t.Errorf("load run reported trace-ID mismatches:\n%s", report)
	}
	if st := s.Stats(); st.CacheHits+st.DedupHits == 0 {
		t.Error("mixed load produced no cache or dedup hits")
	}
}

func TestLoadVariantsFeasibleBudgets(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		vs := loadVariants(n)
		if len(vs) == 0 {
			t.Fatalf("no variants for %d nodes", n)
		}
		seen := map[int]bool{}
		for _, v := range vs {
			wl := v.Options.MaxWL
			if wl < 1 || wl > n {
				t.Errorf("n=%d: budget %d out of range", n, wl)
			}
			if seen[wl] {
				t.Errorf("n=%d: duplicate budget %d", n, wl)
			}
			seen[wl] = true
		}
	}
}
