package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xring/internal/service"
)

func TestRunLoadAgainstInProcessService(t *testing.T) {
	s, err := service.New(service.Config{QueueDepth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	var out strings.Builder
	if err := runLoad(&out, loadConfig{endpoints: []string{ts.URL}, total: 12, conc: 4, nodes: 8}); err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"ok / failed      12 / 0", "latency p50/p95/p99/p999", "server counters"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "trace mismatch") {
		t.Errorf("load run reported trace-ID mismatches:\n%s", report)
	}
	if st := s.Stats(); st.CacheHits+st.DedupHits == 0 {
		t.Error("mixed load produced no cache or dedup hits")
	}
}

func TestLoadVariantsFeasibleBudgets(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		vs := loadVariants(n)
		if len(vs) == 0 {
			t.Fatalf("no variants for %d nodes", n)
		}
		seen := map[int]bool{}
		for _, v := range vs {
			wl := v.Options.MaxWL
			if wl < 1 || wl > n {
				t.Errorf("n=%d: budget %d out of range", n, wl)
			}
			if seen[wl] {
				t.Errorf("n=%d: duplicate budget %d", n, wl)
			}
			seen[wl] = true
		}
	}
}

func TestRunLoadAcrossEndpoints(t *testing.T) {
	var urls []string
	var servers []*service.Server
	for i := 0; i < 2; i++ {
		s, err := service.New(service.Config{QueueDepth: 8, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		}()
		urls = append(urls, ts.URL)
		servers = append(servers, s)
	}

	var out strings.Builder
	if err := runLoad(&out, loadConfig{endpoints: urls, total: 16, conc: 4, nodes: 8}); err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"against 2 endpoint(s)", "per endpoint", "p999", urls[0], urls[1]} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Round-robin: both endpoints saw traffic.
	for i, s := range servers {
		if st := s.Stats(); st.Requests == 0 {
			t.Errorf("endpoint %d received no requests", i)
		}
	}
}

func TestSplitEndpoints(t *testing.T) {
	got := splitEndpoints(" http://a:1/, ,http://b:2 ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("splitEndpoints = %v", got)
	}
	if splitEndpoints("") != nil {
		t.Error("empty list should be nil")
	}
}
