package main

// Exploration-grid benchmark (-explore): one in-process xringd serves
// a 2x3x2 study (two 8-node floorplans x three #wl budgets x two
// policies whose switches are identical under different names), and
// the same cells are then replayed as standalone /v1/synthesize
// requests with every cache cold. The grid's wall-clock must beat the
// sum of the standalone runs — the cache-hit amplification the
// exploration engine exists for (result-cache/dedup hits on the
// aliased policy, ring-cache sharing across budgets on one floorplan).
//
// Determinism doubles as an acceptance check: the grid runs twice on
// fresh servers and the two frontier CSV exports must be byte-equal,
// and every frontier point must be fetchable via /v1/designs/{key}.
// -check compares the amplification ratio (machine-independent) and
// the frontier size (deterministic) against the committed report.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"xring/internal/core"
	"xring/internal/explore"
	"xring/internal/noc"
	"xring/internal/service"
	"xring/internal/service/client"
)

// exploreReport is the BENCH_explore.json schema.
type exploreReport struct {
	GoVersion string `json:"goVersion"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	Cores     int    `json:"cores"`

	Cells        int `json:"cells"`
	DistinctKeys int `json:"distinctKeys"`
	FrontierSize int `json:"frontierSize"`
	CacheHits    int `json:"cacheHits"`
	DedupHits    int `json:"dedupHits"`

	GridMS       float64 `json:"gridMS"`
	CellsPerSec  float64 `json:"cellsPerSec"`
	IndividualMS float64 `json:"individualMS"`
	// Amplification is individualMS / gridMS: how much faster the study
	// is than its cells run standalone and cold.
	Amplification float64 `json:"amplification"`

	Timestamp string `json:"timestampUTC,omitempty"`
}

// exploreTimingReps re-runs each timed pass and keeps the fastest
// wall-clock (cold caches every time), mirroring the solver bench.
const exploreTimingReps = 3

// exploreBenchGrid is the benchmark study: the standard 16-node XRing
// floorplan plus a seeded irregular 12-node one (large enough that a
// cell costs real solver time — sub-millisecond cells would make the
// amplification ratio timer noise), three #wl budgets, and an aliased
// policy pair.
func exploreBenchGrid() (explore.Grid, error) {
	irregular, err := networkJSON(noc.Irregular(12, 14, 14, 2.0, 2))
	if err != nil {
		return explore.Grid{}, err
	}
	return explore.Grid{
		Floorplans: []explore.Floorplan{
			{Name: "std16", Network: json.RawMessage(`{"standard": 16}`)},
			{Name: "irr12", Network: irregular},
		},
		Budgets: []int{10, 11, 12},
		// Identical switches under two names: the copy's cells alias the
		// base's content keys, so half the grid is served from cache/dedup.
		Policies: []explore.Policy{{Name: "base"}, {Name: "copy"}},
	}, nil
}

// networkJSON renders a noc.Network as the explicit-nodes network spec
// the service accepts.
func networkJSON(net *noc.Network) (json.RawMessage, error) {
	spec := service.NetworkSpec{DieW: net.DieW, DieH: net.DieH}
	for _, n := range net.Nodes {
		id := n.ID
		spec.Nodes = append(spec.Nodes, service.NodeSpec{ID: &id, Name: n.Name, X: n.Pos.X, Y: n.Pos.Y})
	}
	return json.Marshal(spec)
}

// coldCaches clears every engine-level cache the benchmark is supposed
// to measure the filling of.
func coldCaches() {
	core.ResetRingCache()
	core.ResetHintCache()
}

// withServer runs fn against a fresh in-process service.
func withServer(cfg service.Config, fn func(c *client.Client) error) error {
	s, err := service.New(cfg)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	return fn(client.New(ts.URL, nil))
}

// runGridOnce runs the study on a fresh cold server and returns its
// status, frontier CSV bytes and wall-clock.
func runGridOnce(g explore.Grid, verifyDesigns bool) (*service.ExploreStatus, []byte, float64, error) {
	var (
		st  *service.ExploreStatus
		csv []byte
		ms  float64
	)
	coldCaches()
	err := withServer(service.Config{Workers: 1}, func(c *client.Client) error {
		ctx := context.Background()
		t0 := time.Now()
		var err error
		st, err = c.Explore(ctx, &service.ExploreRequest{Grid: g})
		ms = float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return err
		}
		if st.Failed > 0 || st.Completed != st.Cells {
			return fmt.Errorf("explore bench: %d/%d cells completed, %d failed", st.Completed, st.Cells, st.Failed)
		}
		if csv, err = c.ExploreFrontierCSV(ctx, st.ID); err != nil {
			return err
		}
		if verifyDesigns {
			for _, p := range st.Frontier {
				design, derr := c.Design(ctx, p.Key)
				if derr != nil || len(design) == 0 {
					return fmt.Errorf("explore bench: frontier point %s not fetchable by key: %v", p.CellID, derr)
				}
			}
		}
		return nil
	})
	return st, csv, ms, err
}

func runExploreBench(out string, checkPath string) error {
	g, err := exploreBenchGrid()
	if err != nil {
		return err
	}
	cells, err := g.Expand()
	if err != nil {
		return err
	}

	// Phase A: the grid, exploreTimingReps times on fresh cold servers.
	// Every rep's frontier CSV must be byte-identical (the determinism
	// acceptance check); the fastest rep is the timed one — the engine
	// runs in single-digit milliseconds here, so best-of damps scheduler
	// noise exactly like the solver bench does.
	var (
		st     *service.ExploreStatus
		csv1   []byte
		gridMS float64
	)
	for rep := 0; rep < exploreTimingReps; rep++ {
		rst, csv, ms, err := runGridOnce(g, rep == 0)
		if err != nil {
			return err
		}
		if rep == 0 {
			st, csv1, gridMS = rst, csv, ms
			continue
		}
		if string(csv) != string(csv1) {
			return fmt.Errorf("explore bench: frontier CSV differs between identical runs:\n%s\nvs\n%s", csv1, csv)
		}
		if ms < gridMS {
			gridMS = ms
		}
	}

	// Phase B: every cell as a standalone cold request — fresh server
	// per cell, ring/hint caches reset, result cache disabled. Same
	// best-of policy, per cell.
	var individualMS float64
	distinct := map[string]bool{}
	for _, c := range cells {
		req := standaloneRequest(&g, c)
		best := 0.0
		for rep := 0; rep < exploreTimingReps; rep++ {
			coldCaches()
			var ms float64
			err := withServer(service.Config{Workers: 1, CacheEntries: -1}, func(cl *client.Client) error {
				t0 := time.Now()
				resp, err := cl.Synthesize(context.Background(), req)
				ms = float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					return fmt.Errorf("cell %s standalone: %w", c.ID, err)
				}
				distinct[resp.Key] = true
				return nil
			})
			if err != nil {
				return err
			}
			if rep == 0 || ms < best {
				best = ms
			}
		}
		individualMS += best
	}

	rep := exploreReport{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),

		Cells:        st.Cells,
		DistinctKeys: len(distinct),
		FrontierSize: len(st.Frontier),
		CacheHits:    st.CacheHits,
		DedupHits:    st.DedupHits,

		GridMS:       gridMS,
		IndividualMS: individualMS,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	if gridMS > 0 {
		rep.CellsPerSec = float64(st.Cells) / (gridMS / 1000)
		rep.Amplification = individualMS / gridMS
	}
	fmt.Fprintf(os.Stderr,
		"explore grid %d cells (%d distinct keys): %.1f ms (%.1f cells/s, %d cache + %d dedup hits) | standalone sum %.1f ms | amplification %.2fx | frontier %d\n",
		rep.Cells, rep.DistinctKeys, rep.GridMS, rep.CellsPerSec,
		rep.CacheHits, rep.DedupHits, rep.IndividualMS, rep.Amplification, rep.FrontierSize)

	// Acceptance floor: a grid over a shared floorplan must beat the sum
	// of its cells run standalone.
	if rep.Amplification <= 1.0 {
		return fmt.Errorf("explore bench: amplification %.2fx — the grid was not faster than its cells run standalone", rep.Amplification)
	}
	if rep.CacheHits+rep.DedupHits == 0 {
		return fmt.Errorf("explore bench: no cross-cell cache or dedup hits in a grid with aliased policies")
	}

	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if checkPath != "" {
		return checkExploreReport(rep, checkPath)
	}
	return nil
}

// standaloneRequest rebuilds a cell as the /v1/synthesize request it is
// equivalent to (mirroring the service's own conversion, but from the
// outside — through the public request schema).
func standaloneRequest(g *explore.Grid, c explore.Cell) *service.Request {
	var net service.NetworkSpec
	if err := json.Unmarshal(g.Floorplans[c.Floorplan].Network, &net); err != nil {
		panic(err) // the grid already expanded, so the spec parses
	}
	req := &service.Request{Network: net}
	o := &req.Options
	o.WithPDN = g.WithPDN
	o.Params = g.Params
	o.ShareWavelengths = c.Share
	o.DisableShortcuts = c.Policy.DisableShortcuts
	o.NoCSE = c.Policy.NoCSE
	o.NoOpenings = c.Policy.NoOpenings
	o.DisableConflicts = c.Policy.DisableConflicts
	if c.Sweep {
		o.Sweep = true
		o.Objective = c.Objective
	} else {
		o.MaxWL = c.Budget
	}
	return req
}

// checkExploreReport compares a fresh run against the committed
// BENCH_explore.json: the frontier is deterministic (exact match), and
// the amplification ratio is machine-independent (25% slack).
func checkExploreReport(got exploreReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("explore check: %w", err)
	}
	var want exploreReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("explore check: parse %s: %w", path, err)
	}
	var failures []string
	if got.Cells != want.Cells || got.DistinctKeys != want.DistinctKeys {
		failures = append(failures, fmt.Sprintf(
			"grid shape changed: %d cells/%d keys -> %d cells/%d keys (regenerate %s)",
			want.Cells, want.DistinctKeys, got.Cells, got.DistinctKeys, path))
	}
	if got.FrontierSize != want.FrontierSize {
		failures = append(failures, fmt.Sprintf(
			"frontier size %d -> %d on a deterministic grid", want.FrontierSize, got.FrontierSize))
	}
	if got.CacheHits+got.DedupHits < want.CacheHits+want.DedupHits {
		failures = append(failures, fmt.Sprintf(
			"amplified cells fell %d -> %d", want.CacheHits+want.DedupHits, got.CacheHits+got.DedupHits))
	}
	const slack = 1.25 // 25%
	if want.Amplification > 0 && got.Amplification < want.Amplification/slack {
		failures = append(failures, fmt.Sprintf(
			"amplification fell %.2fx -> %.2fx (>25%%)", want.Amplification, got.Amplification))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "explore check FAIL:", f)
		}
		return fmt.Errorf("explore check: %d regression(s) against %s", len(failures), path)
	}
	fmt.Fprintln(os.Stderr, "explore check OK against", path)
	return nil
}
