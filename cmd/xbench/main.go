// Command xbench regenerates the paper's evaluation: Table I (crossbar
// and ring routers without PDNs), Table II (ORNoC vs XRing with PDNs,
// 8/16/32 nodes), Table III (ORing vs XRing, 16 nodes), and the
// ablation studies of the design choices called out in DESIGN.md.
//
// Table sections and the candidate sweeps inside them run concurrently
// on the shared worker pool; results are reduced in canonical order, so
// the printed tables are identical to a serial run (apart from the
// timing columns, which always measure the work actually done).
//
// Usage:
//
//	xbench             # all tables
//	xbench -table 1    # a single table
//	xbench -ablation   # ablation study only
//	xbench -serial     # force sequential evaluation (one worker)
//	xbench -json F     # write a serial-vs-parallel timing report to F
//	xbench -load URL   # drive a running xringd with a concurrent workload
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"xring"
	"xring/internal/core"
	"xring/internal/obs"
	"xring/internal/parallel"
	"xring/internal/report"
)

// processStart anchors the monotonic timestamp reported by -json.
var processStart = time.Now()

// floorplanKind selects regular grids (the default) or irregular
// placements (the paper's motivating hard case, where shortcut gains
// are largest).
var floorplanKind = flag.String("floorplan", "grid", "floorplan family: grid or irregular")

// serialMode mirrors the -serial flag; the -json harness toggles it
// between timing passes.
var serialMode bool

// opts stamps the current execution mode onto synthesis options.
func opts(o xring.Options) xring.Options {
	o.Serial = serialMode
	return o
}

// networkFor returns the evaluation floorplan for n nodes.
func networkFor(n int) *xring.Network {
	if *floorplanKind == "irregular" {
		switch n {
		case 8:
			return xring.Irregular(8, 12, 12, 2.5, 3)
		case 16:
			return xring.Irregular(16, 16, 16, 2.5, 5)
		case 32:
			return xring.Irregular(32, 24, 24, 2.5, 2)
		}
	}
	switch n {
	case 8:
		return xring.Floorplan8()
	case 16:
		return xring.Floorplan16()
	default:
		return xring.Floorplan32()
	}
}

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3 or all")
	ablation := flag.Bool("ablation", false, "run the ablation study instead of the paper tables")
	sweep := flag.Bool("sweep", false, "print the full #wl sweep curve for the 16-node XRing instead of the tables")
	serial := flag.Bool("serial", false, "evaluate everything sequentially on one worker (baseline for -json)")
	jsonOut := flag.String("json", "", "benchmark serial vs parallel passes and write the report to this file")
	solver := flag.Bool("solver", false, "run the MILP solver micro-benchmark (writes -json if set, compares -check if set)")
	deltaBench := flag.Bool("delta", false, "run the placement delta-evaluation micro-benchmark (writes -json if set, compares -check if set)")
	exploreBench := flag.Bool("explore", false, "run the /v1/explore grid benchmark (writes -json if set, compares -check if set)")
	whatifBench := flag.Bool("whatif", false, "run the fault-replay benchmark (writes -json if set, compares -check if set)")
	clusterBench := flag.Bool("cluster", false, "run the 3-shard cluster vs independent-instances benchmark (writes -json if set, compares -check if set)")
	benchCheck := flag.String("check", "", "with -solver/-delta/-explore/-whatif/-cluster: committed BENCH_*.json to compare against; exits non-zero on regression")
	loadURL := flag.String("load", "", "drive a running xringd at this base URL with a mixed concurrent workload")
	loadEndpoints := flag.String("endpoints", "", "comma-separated base URLs for -load mode: round-robin the workload across a fleet, with per-endpoint breakdowns")
	loadN := flag.Int("load-n", 32, "total requests to send in -load mode")
	loadC := flag.Int("load-c", 8, "concurrent senders in -load mode")
	loadNodes := flag.Int("load-nodes", 8, "floorplan size for -load mode requests (8, 16 or 32)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	flushObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xbench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := flushObs(); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
	}()

	serialMode = *serial
	if serialMode {
		parallel.SetWorkers(1)
	}

	if *loadURL != "" || *loadEndpoints != "" {
		endpoints := splitEndpoints(*loadEndpoints)
		if len(endpoints) == 0 {
			endpoints = []string{*loadURL}
		}
		if err := runLoad(os.Stdout, loadConfig{
			endpoints: endpoints, total: *loadN, conc: *loadC, nodes: *loadNodes,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterBench {
		if err := runClusterBench(*jsonOut, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *solver {
		if err := runSolverBench(*jsonOut, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *deltaBench {
		if err := runDeltaBench(*jsonOut, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exploreBench {
		if err := runExploreBench(*jsonOut, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *whatifBench {
		if err := runWhatifBench(*jsonOut, *benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "xbench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *ablation {
		runAblation(os.Stdout)
		return
	}
	if *sweep {
		runSweepCurve(os.Stdout)
		return
	}
	switch *table {
	case "1":
		table1(os.Stdout)
	case "2":
		table2(os.Stdout)
	case "3":
		table3(os.Stdout)
	case "all":
		// Render every section concurrently into its own buffer, print
		// in order.
		sections := []func(io.Writer){table1, table2, table3, runAblation}
		bufs, err := parallel.Map(nil, len(sections), func(i int) (string, error) {
			var b bytes.Buffer
			sections[i](&b)
			return b.String(), nil
		})
		mustFanout(err)
		for i, s := range bufs {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(s)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -table %q\n", *table)
		os.Exit(2)
	}
}

func wlCandidates(n int) []int {
	var out []int
	for wl := 1; wl <= n; wl++ {
		if n > 16 && wl%2 == 1 {
			continue // thin the 32-node sweep
		}
		out = append(out, wl)
	}
	return out
}

// ringBaselineSweep picks the best baseline setting under an objective.
type baselineRun struct {
	res   *xring.BaselineResult
	maxWL int
	time  time.Duration
}

// sweepBaseline evaluates every #wl candidate — concurrently unless
// -serial — and reduces in ascending-#wl order, so the winner matches a
// sequential sweep exactly.
func sweepBaseline(name string, synth func(maxWL int) (*xring.BaselineResult, error),
	n int, better func(a, b *xring.BaselineResult) bool) *baselineRun {
	cands := wlCandidates(n)
	runs := make([]*baselineRun, len(cands))
	eval := func(i int) {
		t0 := time.Now()
		r, err := synth(cands[i])
		el := time.Since(t0)
		if err != nil {
			return
		}
		runs[i] = &baselineRun{res: r, maxWL: cands[i], time: el}
	}
	if serialMode {
		for i := range cands {
			eval(i)
		}
	} else {
		mustFanout(parallel.ForEach(nil, len(cands), func(i int) error {
			eval(i)
			return nil
		}))
	}
	var best *baselineRun
	for _, r := range runs {
		if r != nil && (best == nil || better(r.res, best.res)) {
			best = r
		}
	}
	if best == nil {
		panic("no feasible setting for " + name)
	}
	return best
}

// mustFanout re-raises a fan-out failure. xbench's table closures
// signal fatal setup errors by panicking; the worker pool contains
// panics as *resilience.PanicError task failures, and a benchmark
// binary still wants those to fail loudly rather than print a table
// with silently missing rows.
func mustFanout(err error) {
	if err != nil {
		panic(err)
	}
}

func minIL(a, b *xring.BaselineResult) bool { return a.Loss.WorstIL < b.Loss.WorstIL }
func minP(a, b *xring.BaselineResult) bool {
	return a.Loss.TotalPowerMW < b.Loss.TotalPowerMW
}
func maxSNR(a, b *xring.BaselineResult) bool {
	if a.Xtalk.WorstSNR != b.Xtalk.WorstSNR {
		return a.Xtalk.WorstSNR > b.Xtalk.WorstSNR
	}
	return a.Loss.TotalPowerMW < b.Loss.TotalPowerMW
}

// addRows computes table rows concurrently (serially under -serial) and
// adds them to the table in the given order.
func addRows(tb *report.Table, jobs []func() []string) {
	rows := make([][]string, len(jobs))
	if serialMode {
		for i, job := range jobs {
			rows[i] = job()
		}
	} else {
		mustFanout(parallel.ForEach(nil, len(jobs), func(i int) error {
			rows[i] = jobs[i]()
			return nil
		}))
	}
	for _, r := range rows {
		if r != nil {
			tb.AddRow(r...)
		}
	}
}

// table1 reproduces Table I: 8- and 16-node routers without PDNs.
func table1(w io.Writer) {
	fmt.Fprintln(w, "TABLE I — WRONoC routers without PDNs")
	fmt.Fprintln(w, "(paper Sec. IV-A; loss parameters after PROTON+ [15])")
	par := xring.TableIParams()

	for _, n := range []int{8, 16} {
		net := networkFor(n)
		tb := &report.Table{
			Title:  fmt.Sprintf("\n%d-node network", n),
			Header: []string{"Tool/Method", "Router", "#wl", "il_w", "L", "C", "T"},
		}

		type cbRow struct {
			tool   string
			kind   xring.CrossbarKind
			mapper xring.CrossbarMapper
		}
		rows := []cbRow{
			{"Proton+", xring.LambdaRouter, xring.MapperMatrix},
			{"PlanarONoC", xring.LambdaRouter, xring.MapperPlanar},
		}
		if n == 8 {
			rows = append(rows, cbRow{"ToPro", xring.GWOR, xring.MapperProjection})
		} else {
			rows = append(rows, cbRow{"ToPro", xring.Light, xring.MapperProjection})
		}
		var jobs []func() []string
		for _, r := range rows {
			r := r
			jobs = append(jobs, func() []string {
				t0 := time.Now()
				res, err := xring.SynthesizeCrossbar(net, r.kind, r.mapper, par)
				el := time.Since(t0)
				if err != nil {
					return []string{r.tool, "-", "-", "-", "-", "-", "failed: " + err.Error()}
				}
				return []string{r.tool, res.Kind.String(), report.D(res.Wavelengths),
					report.F(res.WorstIL, 1), report.F(res.WorstLen, 1),
					report.D(res.WorstCrossings), report.Seconds(el.Seconds())}
			})
		}

		// Ring baselines: sweep #wl for minimum worst-case IL.
		jobs = append(jobs, func() []string {
			on := sweepBaseline("ornoc", func(wl int) (*xring.BaselineResult, error) {
				return xring.SynthesizeORNoC(net, par, wl, false)
			}, n, minIL)
			return []string{"ORNoC", "ring", report.D(on.res.Loss.WavelengthCount),
				report.F(on.res.Loss.WorstIL, 1), report.F(on.res.Loss.WorstLen, 1),
				report.D(on.res.Loss.WorstCrossings), report.Seconds(on.time.Seconds())}
		})
		jobs = append(jobs, func() []string {
			og := sweepBaseline("oring", func(wl int) (*xring.BaselineResult, error) {
				return xring.SynthesizeORing(net, par, wl, false)
			}, n, minIL)
			return []string{"ORing", "ring", report.D(og.res.Loss.WavelengthCount),
				report.F(og.res.Loss.WorstIL, 1), report.F(og.res.Loss.WorstLen, 1),
				report.D(og.res.Loss.WorstCrossings), report.Seconds(og.time.Seconds())}
		})
		jobs = append(jobs, func() []string {
			parCopy := par
			t0 := time.Now()
			xr, _, err := xring.Sweep(net, opts(xring.Options{Par: &parCopy}), xring.MinWorstIL, wlCandidates(n))
			el := time.Since(t0)
			if err != nil {
				return []string{"XRing", "-", "-", "-", "-", "-", "failed: " + err.Error()}
			}
			return []string{"XRing", "ring", report.D(xr.Loss.WavelengthCount),
				report.F(xr.Loss.WorstIL, 1), report.F(xr.Loss.WorstLen, 1),
				report.D(xr.Loss.WorstCrossings), report.Seconds(el.Seconds())}
		})
		addRows(tb, jobs)
		fmt.Fprint(w, tb.String())
	}
}

// pdnSetting is one "setting for ..." subsection of Tables II/III.
type pdnSetting struct {
	name   string
	better func(a, b *xring.BaselineResult) bool
	obj    xring.Objective
}

var pdnSettings = []pdnSetting{
	{"min. power", minP, xring.MinPower},
	{"max. SNR", maxSNR, xring.MaxSNR},
}

// pdnComparisonTable renders one baseline-vs-XRing subsection.
func pdnComparisonTable(w io.Writer, title, baseName string, n int, setting pdnSetting,
	baseline func(maxWL int) (*xring.BaselineResult, error)) {
	net := networkFor(n)
	tb := &report.Table{
		Title:  title,
		Header: []string{"", "#wl", "il_w*", "L", "C", "P(mW)", "#s", "SNR_w", "noise-free", "T"},
	}
	addRows(tb, []func() []string{
		func() []string {
			b := sweepBaseline(baseName, baseline, n, setting.better)
			return []string{baseName, report.D(b.res.Loss.WavelengthCount),
				report.F(b.res.Loss.WorstIL, 2), report.F(b.res.Loss.WorstLen, 1),
				report.D(b.res.Loss.WorstCrossings), report.F(b.res.Loss.TotalPowerMW, 3),
				report.D(b.res.Xtalk.NumNoisy), report.F(b.res.Xtalk.WorstSNR, 1),
				report.Pct(b.res.Xtalk.NoiseFreeFrac), report.Seconds(b.time.Seconds())}
		},
		func() []string {
			t0 := time.Now()
			xr, _, err := xring.Sweep(net, opts(xring.Options{WithPDN: true}), setting.obj, wlCandidates(n))
			el := time.Since(t0)
			if err != nil {
				return []string{"XRing", "-", "-", "-", "-", "-", "-", "-", "-", "failed: " + err.Error()}
			}
			return []string{"XRing", report.D(xr.Loss.WavelengthCount),
				report.F(xr.Loss.WorstIL, 2), report.F(xr.Loss.WorstLen, 1),
				report.D(xr.Loss.WorstCrossings), report.F(xr.Loss.TotalPowerMW, 3),
				report.D(xr.Xtalk.NumNoisy), report.F(xr.Xtalk.WorstSNR, 1),
				report.Pct(xr.Xtalk.NoiseFreeFrac), report.Seconds(el.Seconds())}
		},
	})
	fmt.Fprint(w, tb.String())
}

// table2 reproduces Table II: ORNoC vs XRing with PDNs, 8/16/32 nodes.
func table2(w io.Writer) {
	fmt.Fprintln(w, "TABLE II — ORNoC vs XRing with PDNs (8-, 16-, 32-node networks)")
	par := xring.DefaultParams()
	type sub struct {
		n       int
		setting pdnSetting
	}
	var subs []sub
	for _, n := range []int{8, 16, 32} {
		for _, s := range pdnSettings {
			subs = append(subs, sub{n, s})
		}
	}
	bufs, err := parallel.Map(nil, len(subs), func(i int) (string, error) {
		var b bytes.Buffer
		n := subs[i].n
		pdnComparisonTable(&b,
			fmt.Sprintf("\nThe setting for %s for %d-node networks", subs[i].setting.name, n),
			"ORNoC", n, subs[i].setting,
			func(wl int) (*xring.BaselineResult, error) {
				return xring.SynthesizeORNoC(networkFor(n), par, wl, true)
			})
		return b.String(), nil
	})
	mustFanout(err)
	for _, s := range bufs {
		fmt.Fprint(w, s)
	}
}

// table3 reproduces Table III: ORing vs XRing, 16 nodes, with PDNs.
func table3(w io.Writer) {
	fmt.Fprintln(w, "TABLE III — ORing vs XRing with PDNs (16-node network)")
	par := xring.DefaultParams()
	bufs, err := parallel.Map(nil, len(pdnSettings), func(i int) (string, error) {
		var b bytes.Buffer
		pdnComparisonTable(&b,
			fmt.Sprintf("\nThe setting for %s", pdnSettings[i].name),
			"ORing", 16, pdnSettings[i],
			func(wl int) (*xring.BaselineResult, error) {
				return xring.SynthesizeORing(networkFor(16), par, wl, true)
			})
		return b.String(), nil
	})
	mustFanout(err)
	for _, s := range bufs {
		fmt.Fprint(w, s)
	}
}

// runAblation exercises the design choices DESIGN.md calls out:
// shortcuts, CSE merging, openings + tree PDN, and the Eq. (3) conflict
// constraints.
func runAblation(w io.Writer) {
	fmt.Fprintln(w, "ABLATION — XRing design choices (16-node network, #wl swept for min power)")
	net := networkFor(16)
	variants := []struct {
		name string
		opt  xring.Options
	}{
		{"full XRing", xring.Options{WithPDN: true}},
		{"no shortcuts", xring.Options{WithPDN: true, DisableShortcuts: true}},
		{"no CSE merging", xring.Options{WithPDN: true, NoCSE: true}},
		{"comb PDN (no openings)", xring.Options{WithPDN: true, NoOpenings: true}},
		{"no conflict constraints", xring.Options{WithPDN: true, DisableConflicts: true}},
	}
	tb := &report.Table{
		Header: []string{"variant", "#wl", "il_w*", "L", "C(total)", "P(mW)", "#s", "SNR_w", "T"},
	}
	var jobs []func() []string
	for _, v := range variants {
		v := v
		jobs = append(jobs, func() []string {
			t0 := time.Now()
			res, _, err := xring.Sweep(net, opts(v.opt), xring.MinPower, wlCandidates(16))
			el := time.Since(t0)
			if err != nil {
				return []string{v.name, "-", "-", "-", "-", "-", "-", "-", "failed: " + err.Error()}
			}
			snr := res.Xtalk.WorstSNR
			if math.IsInf(snr, 1) {
				snr = math.Inf(1) // rendered as "-"
			}
			return []string{v.name, report.D(res.Loss.WavelengthCount),
				report.F(res.Loss.WorstIL, 2), report.F(res.Loss.WorstLen, 1),
				report.D(res.Design.TotalCrossings()),
				report.F(res.Loss.TotalPowerMW, 3), report.D(res.Xtalk.NumNoisy),
				report.F(snr, 1), report.Seconds(el.Seconds())}
		})
	}
	addRows(tb, jobs)
	fmt.Fprint(w, tb.String())
}

// runSweepCurve prints the raw design-space data behind the paper's
// "#wl setting" selection: every (#wl, packing policy) point of the
// 16-node XRing with PDN, with the metrics both objectives look at.
func runSweepCurve(w io.Writer) {
	fmt.Fprintln(w, "SWEEP — 16-node XRing with tree PDN, all #wl settings and packing policies")
	net := networkFor(16)
	tb := &report.Table{
		Header: []string{"#wl", "policy", "waveguides", "il_w*", "L", "P(mW)", "#s", "noise-free", "feasible"},
	}
	type point struct {
		wl    int
		share bool
	}
	var points []point
	for wl := 1; wl <= 16; wl++ {
		points = append(points, point{wl, false}, point{wl, true})
	}
	var jobs []func() []string
	for _, p := range points {
		p := p
		jobs = append(jobs, func() []string {
			policy := "fresh"
			if p.share {
				policy = "share"
			}
			res, err := xring.Synthesize(net, opts(xring.Options{
				MaxWL: p.wl, WithPDN: true, ShareWavelengths: p.share,
			}))
			if err != nil {
				return []string{report.D(p.wl), policy, "-", "-", "-", "-", "-", "-", "no"}
			}
			return []string{report.D(p.wl), policy,
				report.D(len(res.Design.Waveguides)),
				report.F(res.Loss.WorstIL, 2), report.F(res.Loss.WorstLen, 1),
				report.F(res.Loss.TotalPowerMW, 3), report.D(res.Xtalk.NumNoisy),
				report.Pct(res.Xtalk.NoiseFreeFrac), "yes"}
		})
	}
	addRows(tb, jobs)
	fmt.Fprint(w, tb.String())
}

// benchStage is one timed entry of the -json report.
type benchStage struct {
	Name       string  `json:"name"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// placementThroughput records the placement hot-loop rate in proposals
// evaluated per second: full re-synthesis per proposal vs the
// incremental delta engine, both on the full worker pool.
type placementThroughput struct {
	FullProposalsPerSec  float64 `json:"fullProposalsPerSec"`
	DeltaProposalsPerSec float64 `json:"deltaProposalsPerSec"`
}

// benchReport is the -json output: serial vs parallel wall-clock for
// the paper tables and a 16-node placement search, stamped with the
// toolchain and clock context needed to compare runs across machines.
type benchReport struct {
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	GoVersion  string `json:"goVersion"`
	// TimestampUTC is the wall-clock time the report was generated.
	TimestampUTC string `json:"timestampUTC"`
	// MonotonicNS is the monotonic-clock offset from process start to
	// report generation; unlike the wall clock it is immune to NTP steps,
	// so stage times are comparable to it.
	MonotonicNS int64                `json:"monotonicNS"`
	Floorplan   string               `json:"floorplan"`
	Stages      []benchStage         `json:"stages"`
	Placement   *placementThroughput `json:"placementThroughput,omitempty"`
}

// runJSONBench times each stage twice — one worker with Serial options,
// then the full pool — resetting the Step-1 cache between passes so a
// warm cache cannot masquerade as concurrency speedup.
func runJSONBench(path string) error {
	var fullTrace *xring.PlacementTrace
	placement16 := func() {
		net := xring.Irregular(16, 16, 16, 2.5, 5)
		_, _, trace, err := xring.OptimizePlacement(net, xring.PlacementOptions{
			Objective:  xring.PlaceMinWorstIL,
			Synth:      opts(xring.Options{MaxWL: 16}),
			Iterations: 24,
			StepMM:     1.5,
			Seed:       1,
		})
		if err != nil {
			panic(err)
		}
		fullTrace = trace
	}
	stages := []struct {
		name string
		run  func()
	}{
		{"table1", func() { table1(io.Discard) }},
		{"table2", func() { table2(io.Discard) }},
		{"table3", func() { table3(io.Discard) }},
		{"placement16", placement16},
	}

	rep := benchReport{
		Cores:      runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		Floorplan:  *floorplanKind,
	}
	for _, st := range stages {
		serialMode = true
		parallel.SetWorkers(1)
		core.ResetRingCache()
		t0 := time.Now()
		st.run()
		serialMS := float64(time.Since(t0).Microseconds()) / 1000

		serialMode = false
		parallel.SetWorkers(0) // restore the GOMAXPROCS-sized pool
		core.ResetRingCache()
		t0 = time.Now()
		st.run()
		parallelMS := float64(time.Since(t0).Microseconds()) / 1000

		speedup := 0.0
		if parallelMS > 0 {
			speedup = serialMS / parallelMS
		}
		rep.Stages = append(rep.Stages, benchStage{
			Name: st.name, SerialMS: serialMS, ParallelMS: parallelMS,
			Speedup: math.Round(speedup*100) / 100,
		})
		fmt.Fprintf(os.Stderr, "%-12s serial %.1f ms  parallel %.1f ms  speedup %.2fx\n",
			st.name, serialMS, parallelMS, speedup)
	}

	// Placement hot-loop throughput: the last (parallel-pool) placement16
	// pass recorded the full-mode rate; pair it with one delta-mode run
	// of the same search on the same pool.
	if fullTrace != nil {
		net := xring.Irregular(16, 16, 16, 2.5, 5)
		core.ResetRingCache()
		_, _, dtrace, err := xring.OptimizePlacement(net, xring.PlacementOptions{
			Objective:  xring.PlaceMinWorstIL,
			Synth:      opts(xring.Options{MaxWL: 16}),
			Iterations: 24,
			StepMM:     1.5,
			Seed:       1,
			Delta:      true,
		})
		if err != nil {
			return err
		}
		rep.Placement = &placementThroughput{
			FullProposalsPerSec:  fullTrace.EvalRate(),
			DeltaProposalsPerSec: dtrace.EvalRate(),
		}
		fmt.Fprintf(os.Stderr, "placement    full %.1f proposals/s  delta %.1f proposals/s\n",
			rep.Placement.FullProposalsPerSec, rep.Placement.DeltaProposalsPerSec)
	}

	now := time.Now()
	rep.TimestampUTC = now.UTC().Format(time.RFC3339)
	rep.MonotonicNS = now.Sub(processStart).Nanoseconds()

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
