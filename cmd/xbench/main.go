// Command xbench regenerates the paper's evaluation: Table I (crossbar
// and ring routers without PDNs), Table II (ORNoC vs XRing with PDNs,
// 8/16/32 nodes), Table III (ORing vs XRing, 16 nodes), and the
// ablation studies of the design choices called out in DESIGN.md.
//
// Usage:
//
//	xbench             # all tables
//	xbench -table 1    # a single table
//	xbench -ablation   # ablation study only
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"xring"
	"xring/internal/report"
)

// floorplanKind selects regular grids (the default) or irregular
// placements (the paper's motivating hard case, where shortcut gains
// are largest).
var floorplanKind = flag.String("floorplan", "grid", "floorplan family: grid or irregular")

// networkFor returns the evaluation floorplan for n nodes.
func networkFor(n int) *xring.Network {
	if *floorplanKind == "irregular" {
		switch n {
		case 8:
			return xring.Irregular(8, 12, 12, 2.5, 3)
		case 16:
			return xring.Irregular(16, 16, 16, 2.5, 5)
		case 32:
			return xring.Irregular(32, 24, 24, 2.5, 2)
		}
	}
	switch n {
	case 8:
		return xring.Floorplan8()
	case 16:
		return xring.Floorplan16()
	default:
		return xring.Floorplan32()
	}
}

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3 or all")
	ablation := flag.Bool("ablation", false, "run the ablation study instead of the paper tables")
	sweep := flag.Bool("sweep", false, "print the full #wl sweep curve for the 16-node XRing instead of the tables")
	flag.Parse()

	if *ablation {
		runAblation(os.Stdout)
		return
	}
	if *sweep {
		runSweepCurve(os.Stdout)
		return
	}
	switch *table {
	case "1":
		table1(os.Stdout)
	case "2":
		table2(os.Stdout)
	case "3":
		table3(os.Stdout)
	case "all":
		table1(os.Stdout)
		fmt.Println()
		table2(os.Stdout)
		fmt.Println()
		table3(os.Stdout)
		fmt.Println()
		runAblation(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown -table %q\n", *table)
		os.Exit(2)
	}
}

func wlCandidates(n int) []int {
	var out []int
	for wl := 1; wl <= n; wl++ {
		if n > 16 && wl%2 == 1 {
			continue // thin the 32-node sweep
		}
		out = append(out, wl)
	}
	return out
}

// ringBaselineSweep picks the best baseline setting under an objective.
type baselineRun struct {
	res   *xring.BaselineResult
	maxWL int
	time  time.Duration
}

func sweepBaseline(name string, synth func(maxWL int) (*xring.BaselineResult, error),
	n int, better func(a, b *xring.BaselineResult) bool) *baselineRun {
	var best *baselineRun
	for _, wl := range wlCandidates(n) {
		t0 := time.Now()
		r, err := synth(wl)
		el := time.Since(t0)
		if err != nil {
			continue
		}
		if best == nil || better(r, best.res) {
			best = &baselineRun{res: r, maxWL: wl, time: el}
		}
	}
	if best == nil {
		panic("no feasible setting for " + name)
	}
	return best
}

func minIL(a, b *xring.BaselineResult) bool { return a.Loss.WorstIL < b.Loss.WorstIL }
func minP(a, b *xring.BaselineResult) bool {
	return a.Loss.TotalPowerMW < b.Loss.TotalPowerMW
}
func maxSNR(a, b *xring.BaselineResult) bool {
	if a.Xtalk.WorstSNR != b.Xtalk.WorstSNR {
		return a.Xtalk.WorstSNR > b.Xtalk.WorstSNR
	}
	return a.Loss.TotalPowerMW < b.Loss.TotalPowerMW
}

// table1 reproduces Table I: 8- and 16-node routers without PDNs.
func table1(w *os.File) {
	fmt.Fprintln(w, "TABLE I — WRONoC routers without PDNs")
	fmt.Fprintln(w, "(paper Sec. IV-A; loss parameters after PROTON+ [15])")
	par := xring.TableIParams()

	for _, n := range []int{8, 16} {
		net := networkFor(n)
		tb := &report.Table{
			Title:  fmt.Sprintf("\n%d-node network", n),
			Header: []string{"Tool/Method", "Router", "#wl", "il_w", "L", "C", "T"},
		}

		type cbRow struct {
			tool   string
			kind   xring.CrossbarKind
			mapper xring.CrossbarMapper
		}
		rows := []cbRow{
			{"Proton+", xring.LambdaRouter, xring.MapperMatrix},
			{"PlanarONoC", xring.LambdaRouter, xring.MapperPlanar},
		}
		if n == 8 {
			rows = append(rows, cbRow{"ToPro", xring.GWOR, xring.MapperProjection})
		} else {
			rows = append(rows, cbRow{"ToPro", xring.Light, xring.MapperProjection})
		}
		for _, r := range rows {
			t0 := time.Now()
			res, err := xring.SynthesizeCrossbar(net, r.kind, r.mapper, par)
			el := time.Since(t0)
			if err != nil {
				fmt.Fprintf(w, "%s failed: %v\n", r.tool, err)
				continue
			}
			tb.AddRow(r.tool, res.Kind.String(), report.D(res.Wavelengths),
				report.F(res.WorstIL, 1), report.F(res.WorstLen, 1),
				report.D(res.WorstCrossings), report.Seconds(el.Seconds()))
		}

		// Ring baselines: sweep #wl for minimum worst-case IL.
		on := sweepBaseline("ornoc", func(wl int) (*xring.BaselineResult, error) {
			return xring.SynthesizeORNoC(net, par, wl, false)
		}, n, minIL)
		tb.AddRow("ORNoC", "ring", report.D(on.res.Loss.WavelengthCount),
			report.F(on.res.Loss.WorstIL, 1), report.F(on.res.Loss.WorstLen, 1),
			report.D(on.res.Loss.WorstCrossings), report.Seconds(on.time.Seconds()))

		og := sweepBaseline("oring", func(wl int) (*xring.BaselineResult, error) {
			return xring.SynthesizeORing(net, par, wl, false)
		}, n, minIL)
		tb.AddRow("ORing", "ring", report.D(og.res.Loss.WavelengthCount),
			report.F(og.res.Loss.WorstIL, 1), report.F(og.res.Loss.WorstLen, 1),
			report.D(og.res.Loss.WorstCrossings), report.Seconds(og.time.Seconds()))

		parCopy := par
		t0 := time.Now()
		xr, _, err := xring.Sweep(net, xring.Options{Par: &parCopy}, xring.MinWorstIL, wlCandidates(n))
		el := time.Since(t0)
		if err != nil {
			fmt.Fprintf(w, "XRing failed: %v\n", err)
			continue
		}
		tb.AddRow("XRing", "ring", report.D(xr.Loss.WavelengthCount),
			report.F(xr.Loss.WorstIL, 1), report.F(xr.Loss.WorstLen, 1),
			report.D(xr.Loss.WorstCrossings), report.Seconds(el.Seconds()))
		fmt.Fprint(w, tb.String())
	}
}

// table2 reproduces Table II: ORNoC vs XRing with PDNs, 8/16/32 nodes.
func table2(w *os.File) {
	fmt.Fprintln(w, "TABLE II — ORNoC vs XRing with PDNs (8-, 16-, 32-node networks)")
	par := xring.DefaultParams()
	for _, n := range []int{8, 16, 32} {
		net := networkFor(n)
		for _, setting := range []struct {
			name   string
			better func(a, b *xring.BaselineResult) bool
			obj    xring.Objective
		}{
			{"min. power", minP, xring.MinPower},
			{"max. SNR", maxSNR, xring.MaxSNR},
		} {
			tb := &report.Table{
				Title:  fmt.Sprintf("\nThe setting for %s for %d-node networks", setting.name, n),
				Header: []string{"", "#wl", "il_w*", "L", "C", "P(mW)", "#s", "SNR_w", "noise-free", "T"},
			}
			on := sweepBaseline("ornoc", func(wl int) (*xring.BaselineResult, error) {
				return xring.SynthesizeORNoC(net, par, wl, true)
			}, n, setting.better)
			tb.AddRow("ORNoC", report.D(on.res.Loss.WavelengthCount),
				report.F(on.res.Loss.WorstIL, 2), report.F(on.res.Loss.WorstLen, 1),
				report.D(on.res.Loss.WorstCrossings), report.F(on.res.Loss.TotalPowerMW, 3),
				report.D(on.res.Xtalk.NumNoisy), report.F(on.res.Xtalk.WorstSNR, 1),
				report.Pct(on.res.Xtalk.NoiseFreeFrac), report.Seconds(on.time.Seconds()))

			t0 := time.Now()
			xr, _, err := xring.Sweep(net, xring.Options{WithPDN: true}, setting.obj, wlCandidates(n))
			el := time.Since(t0)
			if err != nil {
				fmt.Fprintf(w, "XRing failed: %v\n", err)
				continue
			}
			tb.AddRow("XRing", report.D(xr.Loss.WavelengthCount),
				report.F(xr.Loss.WorstIL, 2), report.F(xr.Loss.WorstLen, 1),
				report.D(xr.Loss.WorstCrossings), report.F(xr.Loss.TotalPowerMW, 3),
				report.D(xr.Xtalk.NumNoisy), report.F(xr.Xtalk.WorstSNR, 1),
				report.Pct(xr.Xtalk.NoiseFreeFrac), report.Seconds(el.Seconds()))
			fmt.Fprint(w, tb.String())
		}
	}
}

// table3 reproduces Table III: ORing vs XRing, 16 nodes, with PDNs.
func table3(w *os.File) {
	fmt.Fprintln(w, "TABLE III — ORing vs XRing with PDNs (16-node network)")
	par := xring.DefaultParams()
	net := networkFor(16)
	for _, setting := range []struct {
		name   string
		better func(a, b *xring.BaselineResult) bool
		obj    xring.Objective
	}{
		{"min. power", minP, xring.MinPower},
		{"max. SNR", maxSNR, xring.MaxSNR},
	} {
		tb := &report.Table{
			Title:  fmt.Sprintf("\nThe setting for %s", setting.name),
			Header: []string{"", "#wl", "il_w*", "L", "C", "P(mW)", "#s", "SNR_w", "noise-free", "T"},
		}
		og := sweepBaseline("oring", func(wl int) (*xring.BaselineResult, error) {
			return xring.SynthesizeORing(net, par, wl, true)
		}, 16, setting.better)
		tb.AddRow("ORing", report.D(og.res.Loss.WavelengthCount),
			report.F(og.res.Loss.WorstIL, 2), report.F(og.res.Loss.WorstLen, 1),
			report.D(og.res.Loss.WorstCrossings), report.F(og.res.Loss.TotalPowerMW, 3),
			report.D(og.res.Xtalk.NumNoisy), report.F(og.res.Xtalk.WorstSNR, 1),
			report.Pct(og.res.Xtalk.NoiseFreeFrac), report.Seconds(og.time.Seconds()))

		t0 := time.Now()
		xr, _, err := xring.Sweep(net, xring.Options{WithPDN: true}, setting.obj, wlCandidates(16))
		el := time.Since(t0)
		if err != nil {
			fmt.Fprintf(w, "XRing failed: %v\n", err)
			continue
		}
		tb.AddRow("XRing", report.D(xr.Loss.WavelengthCount),
			report.F(xr.Loss.WorstIL, 2), report.F(xr.Loss.WorstLen, 1),
			report.D(xr.Loss.WorstCrossings), report.F(xr.Loss.TotalPowerMW, 3),
			report.D(xr.Xtalk.NumNoisy), report.F(xr.Xtalk.WorstSNR, 1),
			report.Pct(xr.Xtalk.NoiseFreeFrac), report.Seconds(el.Seconds()))
		fmt.Fprint(w, tb.String())
	}
}

// runAblation exercises the design choices DESIGN.md calls out:
// shortcuts, CSE merging, openings + tree PDN, and the Eq. (3) conflict
// constraints.
func runAblation(w *os.File) {
	fmt.Fprintln(w, "ABLATION — XRing design choices (16-node network, #wl swept for min power)")
	net := networkFor(16)
	variants := []struct {
		name string
		opt  xring.Options
	}{
		{"full XRing", xring.Options{WithPDN: true}},
		{"no shortcuts", xring.Options{WithPDN: true, DisableShortcuts: true}},
		{"no CSE merging", xring.Options{WithPDN: true, NoCSE: true}},
		{"comb PDN (no openings)", xring.Options{WithPDN: true, NoOpenings: true}},
		{"no conflict constraints", xring.Options{WithPDN: true, DisableConflicts: true}},
	}
	tb := &report.Table{
		Header: []string{"variant", "#wl", "il_w*", "L", "C(total)", "P(mW)", "#s", "SNR_w", "T"},
	}
	for _, v := range variants {
		t0 := time.Now()
		res, _, err := xring.Sweep(net, v.opt, xring.MinPower, wlCandidates(16))
		el := time.Since(t0)
		if err != nil {
			tb.AddRow(v.name, "-", "-", "-", "-", "-", "-", "-", "failed: "+err.Error())
			continue
		}
		snr := res.Xtalk.WorstSNR
		if math.IsInf(snr, 1) {
			snr = math.Inf(1) // rendered as "-"
		}
		tb.AddRow(v.name, report.D(res.Loss.WavelengthCount),
			report.F(res.Loss.WorstIL, 2), report.F(res.Loss.WorstLen, 1),
			report.D(res.Design.TotalCrossings()),
			report.F(res.Loss.TotalPowerMW, 3), report.D(res.Xtalk.NumNoisy),
			report.F(snr, 1), report.Seconds(el.Seconds()))
	}
	fmt.Fprint(w, tb.String())
}

// runSweepCurve prints the raw design-space data behind the paper's
// "#wl setting" selection: every (#wl, packing policy) point of the
// 16-node XRing with PDN, with the metrics both objectives look at.
func runSweepCurve(w *os.File) {
	fmt.Fprintln(w, "SWEEP — 16-node XRing with tree PDN, all #wl settings and packing policies")
	net := networkFor(16)
	tb := &report.Table{
		Header: []string{"#wl", "policy", "waveguides", "il_w*", "L", "P(mW)", "#s", "noise-free", "feasible"},
	}
	for wl := 1; wl <= 16; wl++ {
		for _, share := range []bool{false, true} {
			policy := "fresh"
			if share {
				policy = "share"
			}
			res, err := xring.Synthesize(net, xring.Options{
				MaxWL: wl, WithPDN: true, ShareWavelengths: share,
			})
			if err != nil {
				tb.AddRow(report.D(wl), policy, "-", "-", "-", "-", "-", "-", "no")
				continue
			}
			tb.AddRow(report.D(wl), policy,
				report.D(len(res.Design.Waveguides)),
				report.F(res.Loss.WorstIL, 2), report.F(res.Loss.WorstLen, 1),
				report.F(res.Loss.TotalPowerMW, 3), report.D(res.Xtalk.NumNoisy),
				report.Pct(res.Xtalk.NoiseFreeFrac), "yes")
		}
	}
	fmt.Fprint(w, tb.String())
}
