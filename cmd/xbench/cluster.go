package main

// Cluster benchmark (-cluster): the same shared-key workload is driven
// against (A) three independent xringd instances behind a dumb
// round-robin — each instance must solve every distinct request itself
// — and (B) a 3-shard consistent-hash cluster behind the xringlb
// router, where each key is solved exactly once on its owner. The
// cluster's aggregate throughput must be at least 2x the independent
// fleet's: that is the point of sharding a content-addressed workload.
//
// Methodology notes, because the numbers are only honest with them:
//
//   - Both fleets run with core.SetCacheIsolation(true): real
//     independent daemons are separate processes with separate engine
//     caches, but in-process instances would share the process-global
//     ring cache — instance B warm-hitting the rings instance A
//     constructed is an artifact no real deployment has, and ring
//     construction is ~60% of a solve. Isolation is applied to BOTH
//     phases equally, so the comparison stays apples-to-apples; each
//     server's own content-addressed response cache (which every real
//     daemon has) still works.
//
//   - Both fleets run live and concurrently with the same total
//     concurrency — this is the same-hardware deployment question:
//     given one box and three daemons, does sharding the keyspace beat
//     round-robin? The independent fleet answers every request locally
//     (each instance cold-solves the whole variant set); the cluster
//     solves each key exactly once on its owner.
//
//   - The workload's distinct floorplans are selected so ownership
//     spreads evenly across the shards (the average case for a
//     content-hashed keyspace; a pathological all-keys-on-one-shard
//     draw would measure luck, not the design).
//
//   - Each rep is a complete fresh experiment — new ports, new
//     ownership draw, new servers — and the best rep is kept, mirroring
//     the best-of policy of the other benches.
//
// After the timed cluster pass, every design is fetched from a
// non-owner shard: the fetch must peer-fill (counted in the report) and
// the bytes must equal the owner's — the cluster's byte-identity
// guarantee, measured end to end.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"xring/internal/cluster"
	"xring/internal/core"
	"xring/internal/noc"
	"xring/internal/service"
)

// clusterReport is the BENCH_cluster.json schema.
type clusterReport struct {
	GoVersion string `json:"goVersion"`
	GoOS      string `json:"goos"`
	GoArch    string `json:"goarch"`
	Cores     int    `json:"cores"`

	Shards       int `json:"shards"`
	Requests     int `json:"requests"`
	DistinctKeys int `json:"distinctKeys"`
	Concurrency  int `json:"concurrency"`

	// IndependentMS is the round-robin fleet's wall-clock for the
	// workload; ClusterMS is the routed cluster's wall-clock for the
	// identical workload on the same hardware.
	IndependentMS float64 `json:"independentMS"`
	ClusterMS     float64 `json:"clusterMS"`
	// Amplification is IndependentMS / ClusterMS: the cluster's
	// aggregate throughput multiple over independent instances.
	Amplification float64 `json:"amplification"`

	IndependentSolves int64 `json:"independentSolves"`
	ClusterSolves     int64 `json:"clusterSolves"`
	PeerFills         int64 `json:"peerFills"`

	Timestamp string `json:"timestampUTC,omitempty"`
}

const (
	clusterBenchShards   = 3
	clusterBenchVariants = 6  // distinct floorplans, 2 per shard
	clusterBenchRequests = 24 // total workload size
	clusterBenchConc     = 6  // concurrent senders
	clusterBenchReps     = 3  // full fresh experiments, best kept

	// 28-node irregular floorplans: ~100ms per cold solve, so solver
	// work (the thing sharding deduplicates) dominates the router-hop
	// overhead, and solve times are stable across seeds (32-node
	// floorplans occasionally blow the solver budget and would turn the
	// ratio into a lottery).
	clusterBenchNodes = 28
	clusterBenchWL    = 24
)

// benchFleet is an in-process 3-shard cluster plus its router.
type benchFleet struct {
	urls    []string
	servers []*service.Server
	shards  []*httptest.Server
	router  *cluster.Router
	front   *httptest.Server
}

// startBenchFleet builds the cluster: listeners first (membership must
// be known before the services exist), then each shard wired with its
// own Peers view, then the router.
func startBenchFleet(n int) (*benchFleet, error) {
	f := &benchFleet{}
	var listeners []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, ln)
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	var fleet []*cluster.Peers
	for i, ln := range listeners {
		peers, err := cluster.NewPeers(cluster.PeersConfig{Self: f.urls[i], Members: f.urls})
		if err != nil {
			return nil, err
		}
		s, err := service.New(service.Config{
			Workers:     2,
			PeerFetch:   peers.Fetch,
			ClusterInfo: peers.Info,
		})
		if err != nil {
			return nil, err
		}
		ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		f.servers = append(f.servers, s)
		f.shards = append(f.shards, ts)
		fleet = append(fleet, peers)
	}
	// One synchronous probe sweep per shard, after the WHOLE fleet is
	// serving (probing inside the loop would leave early shards
	// believing their not-yet-started peers are dead), instead of the
	// background loop: the bench controls its own timing.
	for _, peers := range fleet {
		peers.Health().ProbeAll(context.Background())
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{Members: f.urls})
	if err != nil {
		return nil, err
	}
	f.router = router
	router.Start()
	f.front = httptest.NewServer(router.Handler())
	return f, nil
}

func (f *benchFleet) Close() {
	if f.front != nil {
		f.front.Close()
	}
	if f.router != nil {
		f.router.Stop()
	}
	for i, ts := range f.shards {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		_ = f.servers[i].Drain(ctx)
		cancel()
	}
}

// selectBalancedVariants picks distinct irregular floorplans whose
// content keys spread perShard-per-shard across the fleet's ring.
func selectBalancedVariants(urls []string, perShard int) ([]*service.Request, []string, error) {
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		return nil, nil, err
	}
	byOwner := map[string]int{}
	var reqs []*service.Request
	var keys []string
	for seed := int64(1); seed <= 96 && len(reqs) < len(urls)*perShard; seed++ {
		spec, err := networkJSON(noc.Irregular(clusterBenchNodes, 18, 18, 2.0, seed))
		if err != nil {
			return nil, nil, err
		}
		var netSpec service.NetworkSpec
		if err := json.Unmarshal(spec, &netSpec); err != nil {
			return nil, nil, err
		}
		req := &service.Request{Network: netSpec, Options: service.OptionsSpec{MaxWL: clusterBenchWL}}
		key, err := service.CanonicalKey(req)
		if err != nil {
			return nil, nil, err
		}
		owner := ring.Owner(key)
		if byOwner[owner] >= perShard {
			continue
		}
		byOwner[owner]++
		reqs = append(reqs, req)
		keys = append(keys, key)
	}
	if len(reqs) < len(urls)*perShard {
		return nil, nil, fmt.Errorf("cluster bench: only %d/%d variants placed after 96 seeds", len(reqs), len(urls)*perShard)
	}
	return reqs, keys, nil
}

// driveWorkload sends the requests with bounded concurrency — request
// i to bases[i%len(bases)] — and returns the wall-clock in
// milliseconds. Any non-200 fails the bench.
func driveWorkload(bases []string, reqs []*service.Request, conc int) (float64, error) {
	bodies := make([][]byte, len(reqs))
	for i, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return 0, err
		}
		bodies[i] = b
	}
	sem := make(chan struct{}, conc)
	errCh := make(chan error, len(reqs))
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := range bodies {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			resp, err := http.Post(bases[i%len(bases)]+"/v1/synthesize", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("request %d: HTTP %d: %s", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	ms := float64(time.Since(t0).Microseconds()) / 1000
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	return ms, nil
}

// workload expands the variant set into the full request stream:
// request i is variant (i/shards)%variants, so a round-robin split by
// i%shards hands every instance every variant — the shared-key shape
// that makes independent instances each re-solve the whole keyspace.
func workload(variants []*service.Request, total, shards int) []*service.Request {
	out := make([]*service.Request, total)
	for i := range out {
		out[i] = variants[(i/shards)%len(variants)]
	}
	return out
}

// runIndependentPhase models the un-sharded alternative on the same
// hardware: shards independent daemons behind a dumb round-robin,
// request i to instance i%shards, all live concurrently with the same
// total concurrency the cluster phase gets. Each instance must
// cold-solve every variant in its slice itself (cacheIsolation keeps
// their engine caches separate, as separate processes' would be).
// Returns the fleet wall-clock and total solves.
func runIndependentPhase(reqs []*service.Request, shards, conc int) (float64, int64, error) {
	var servers []*service.Server
	var urls []string
	var tss []*httptest.Server
	defer func() {
		for i, ts := range tss {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			_ = servers[i].Drain(ctx)
			cancel()
		}
	}()
	for inst := 0; inst < shards; inst++ {
		s, err := service.New(service.Config{Workers: 2})
		if err != nil {
			return 0, 0, err
		}
		ts := httptest.NewServer(s.Handler())
		servers = append(servers, s)
		tss = append(tss, ts)
		urls = append(urls, ts.URL)
	}
	ms, err := driveWorkload(urls, reqs, conc)
	if err != nil {
		return 0, 0, err
	}
	var solves int64
	for _, s := range servers {
		solves += s.Stats().Synthesized
	}
	return ms, solves, nil
}

// verifyClusterIdentity fetches every design from its owner and from a
// non-owner shard: the non-owner must peer-fill and the bytes must be
// identical. Returns the fleet-wide peer-fill count.
func verifyClusterIdentity(f *benchFleet, keys []string) (int64, error) {
	ring, err := cluster.NewRing(f.urls, 0)
	if err != nil {
		return 0, err
	}
	fetch := func(base, key string) ([]byte, error) {
		resp, err := http.Get(base + "/v1/designs/" + key)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s/v1/designs/%s: HTTP %d", base, key, resp.StatusCode)
		}
		return data, nil
	}
	for _, key := range keys {
		owner := ring.Owner(key)
		var other string
		for _, u := range f.urls {
			if u != owner {
				other = u
				break
			}
		}
		want, err := fetch(owner, key)
		if err != nil {
			return 0, err
		}
		got, err := fetch(other, key)
		if err != nil {
			return 0, err
		}
		if !bytes.Equal(want, got) {
			return 0, fmt.Errorf("cluster bench: design %s differs between owner %s and shard %s", key, owner, other)
		}
	}
	var fills int64
	for _, s := range f.servers {
		fills += s.Stats().PeerFills
	}
	return fills, nil
}

func runClusterBench(out, checkPath string) error {
	// Both phases model separate daemon processes sharing nothing but
	// the box — see the methodology comment at the top of this file.
	core.SetCacheIsolation(true)
	defer core.SetCacheIsolation(false)
	best := clusterReport{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),

		Shards:      clusterBenchShards,
		Requests:    clusterBenchRequests,
		Concurrency: clusterBenchConc,
	}
	for rep := 0; rep < clusterBenchReps; rep++ {
		fleet, err := startBenchFleet(clusterBenchShards)
		if err != nil {
			return err
		}
		variants, keys, err := selectBalancedVariants(fleet.urls, clusterBenchVariants/clusterBenchShards)
		if err != nil {
			fleet.Close()
			return err
		}
		reqs := workload(variants, clusterBenchRequests, clusterBenchShards)

		indMS, indSolves, err := runIndependentPhase(reqs, clusterBenchShards, clusterBenchConc)
		if err != nil {
			fleet.Close()
			return err
		}

		cluMS, err := driveWorkload([]string{fleet.front.URL}, reqs, clusterBenchConc)
		if err != nil {
			fleet.Close()
			return err
		}
		var cluSolves int64
		for _, s := range fleet.servers {
			cluSolves += s.Stats().Synthesized
		}
		fills, err := verifyClusterIdentity(fleet, keys)
		fleet.Close()
		if err != nil {
			return err
		}

		amp := 0.0
		if cluMS > 0 {
			amp = indMS / cluMS
		}
		fmt.Fprintf(os.Stderr,
			"cluster bench rep %d: independent %.1f ms (%d solves) | cluster %.1f ms (%d solves) | %.2fx | %d peer-fills\n",
			rep, indMS, indSolves, cluMS, cluSolves, amp, fills)
		if amp > best.Amplification {
			best.IndependentMS, best.ClusterMS, best.Amplification = indMS, cluMS, amp
			best.IndependentSolves, best.ClusterSolves = indSolves, cluSolves
			best.PeerFills = fills
			best.DistinctKeys = len(keys)
		}
	}
	best.Timestamp = time.Now().UTC().Format(time.RFC3339)

	fmt.Fprintf(os.Stderr,
		"cluster bench: %d requests over %d keys, %d shards: independent fleet %.1f ms vs cluster %.1f ms — %.2fx aggregate throughput (%d -> %d solves, %d peer-fills)\n",
		best.Requests, best.DistinctKeys, best.Shards,
		best.IndependentMS, best.ClusterMS, best.Amplification,
		best.IndependentSolves, best.ClusterSolves, best.PeerFills)

	// Acceptance floors: the routed cluster must at least double the
	// independent fleet's aggregate throughput on the shared-key
	// workload, by doing strictly less solving, and the identity sweep
	// must actually have exercised peer-fill.
	if best.Amplification < 2.0 {
		return fmt.Errorf("cluster bench: amplification %.2fx < 2x — sharding did not pay for itself", best.Amplification)
	}
	if best.ClusterSolves >= best.IndependentSolves {
		return fmt.Errorf("cluster bench: cluster solved %d >= independent %d — keys were re-solved across shards",
			best.ClusterSolves, best.IndependentSolves)
	}
	if best.PeerFills < 1 {
		return fmt.Errorf("cluster bench: identity sweep triggered no peer-fills")
	}

	if out != "" {
		data, err := json.MarshalIndent(best, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if checkPath != "" {
		return checkClusterReport(best, checkPath)
	}
	return nil
}

// checkClusterReport compares a fresh run against the committed
// BENCH_cluster.json: workload shape and solve counts are deterministic
// (exact), the amplification ratio is machine-independent (25% slack).
func checkClusterReport(got clusterReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cluster check: %w", err)
	}
	var want clusterReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("cluster check: parse %s: %w", path, err)
	}
	var failures []string
	if got.Shards != want.Shards || got.Requests != want.Requests || got.DistinctKeys != want.DistinctKeys {
		failures = append(failures, fmt.Sprintf(
			"workload shape changed: %d shards/%d reqs/%d keys -> %d/%d/%d (regenerate %s)",
			want.Shards, want.Requests, want.DistinctKeys,
			got.Shards, got.Requests, got.DistinctKeys, path))
	}
	if got.ClusterSolves > want.ClusterSolves {
		failures = append(failures, fmt.Sprintf(
			"cluster solves grew %d -> %d: keys are being re-solved", want.ClusterSolves, got.ClusterSolves))
	}
	if got.PeerFills < 1 {
		failures = append(failures, "peer-fill count fell to zero")
	}
	const slack = 1.25 // 25%
	if want.Amplification > 0 && got.Amplification < want.Amplification/slack {
		failures = append(failures, fmt.Sprintf(
			"amplification fell %.2fx -> %.2fx (>25%%)", want.Amplification, got.Amplification))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "cluster check FAIL:", f)
		}
		return fmt.Errorf("cluster check: %d regression(s) against %s", len(failures), path)
	}
	fmt.Fprintln(os.Stderr, "cluster check OK against", path)
	return nil
}
