// Command xring synthesizes a wavelength-routed optical ring router for
// a given floorplan and reports its metrics, optionally writing an SVG
// rendering and a JSON summary.
//
// Usage:
//
//	xring -nodes 16 -pdn                   # standard 16-node floorplan
//	xring -nodes 16 -wl 14 -pdn -svg out.svg
//	xring -floorplan chip.json -objective min-power
//	xring -nodes 8 -baseline ornoc -pdn    # synthesize a baseline instead
//
// The floorplan JSON format:
//
//	{"dieW": 8, "dieH": 8,
//	 "nodes": [{"x": 1, "y": 1}, {"x": 3, "y": 1}, ...]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"xring"
	"xring/internal/obs"
	"xring/internal/report"
)

type floorplanFile struct {
	DieW  float64 `json:"dieW"`
	DieH  float64 `json:"dieH"`
	Nodes []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"nodes"`
}

func main() {
	nodes := flag.Int("nodes", 16, "use the standard floorplan with this many nodes (8, 16 or 32)")
	fpPath := flag.String("floorplan", "", "JSON floorplan file (overrides -nodes)")
	wl := flag.Int("wl", 0, "per-ring wavelength budget #wl (0 = sweep)")
	objective := flag.String("objective", "min-power", "sweep objective when -wl is 0: min-il, min-power or max-snr")
	pdnFlag := flag.Bool("pdn", false, "synthesize the crossing-free tree PDN (Step 4)")
	baseline := flag.String("baseline", "", "synthesize a baseline instead: ornoc or oring")
	traffic := flag.String("traffic", "all", "traffic pattern: all, transpose, bitrev, hotspot, neighbor or shuffle")
	svgPath := flag.String("svg", "", "write an SVG rendering of the design")
	chartPath := flag.String("chart", "", "write the wavelength-allocation chart (SVG)")
	netlistPath := flag.String("netlist", "", "write the physical layout netlist (text)")
	jsonPath := flag.String("json", "", "write a JSON summary of the result")
	designPath := flag.String("design", "", "write the full design (reloadable JSON)")
	analyzePath := flag.String("analyze", "", "load a saved design and re-run the analyses")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	flushObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		fatal(err)
	}
	// Telemetry files are written even when synthesis fails: fatal runs
	// the flush before exiting.
	obsFlush = flushObs

	if *analyzePath != "" {
		analyzeSaved(*analyzePath, *svgPath)
		flushTelemetry()
		return
	}

	net, err := loadNetwork(*nodes, *fpPath)
	if err != nil {
		fatal(err)
	}
	pattern, err := trafficFor(*traffic, net.N())
	if err != nil {
		fatal(err)
	}

	if *baseline != "" {
		runBaseline(net, *baseline, *wl, *pdnFlag, *svgPath)
		flushTelemetry()
		return
	}

	var res *xring.Result
	chosenWL := *wl
	if *wl > 0 {
		res, err = xring.Synthesize(net, xring.Options{MaxWL: *wl, WithPDN: *pdnFlag, Traffic: pattern})
	} else {
		var obj xring.Objective
		switch *objective {
		case "min-il":
			obj = xring.MinWorstIL
		case "min-power":
			obj = xring.MinPower
		case "max-snr":
			obj = xring.MaxSNR
		default:
			fatal(fmt.Errorf("unknown objective %q", *objective))
		}
		res, chosenWL, err = xring.Sweep(net, xring.Options{WithPDN: *pdnFlag, Traffic: pattern}, obj, nil)
	}
	if err != nil {
		fatal(err)
	}

	printResult(net, res, chosenWL)

	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(xring.RenderSVG(res.Design)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, net, res, chosenWL); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *chartPath != "" {
		if err := os.WriteFile(*chartPath, []byte(xring.RenderChannelChart(res.Design)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *chartPath)
	}
	if *netlistPath != "" {
		l, err := xring.BuildLayout(res.Design)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*netlistPath, []byte(l.Netlist()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *netlistPath)
	}
	if *designPath != "" {
		blob, err := xring.SaveDesign(res.Design)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*designPath, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *designPath)
	}
	flushTelemetry()
}

// obsFlush writes the -trace/-metrics files once the run is complete;
// set from the activated telemetry flags.
var obsFlush func() error

func flushTelemetry() {
	f := obsFlush
	obsFlush = nil
	if f == nil {
		return
	}
	if err := f(); err != nil {
		fmt.Fprintln(os.Stderr, "xring:", err)
		os.Exit(1)
	}
}

// analyzeSaved reloads a stored design and re-runs the analyses.
func analyzeSaved(path, svgPath string) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	d, err := xring.LoadDesign(blob)
	if err != nil {
		fatal(err)
	}
	withTree := false
	for _, w := range d.Waveguides {
		if w.Opening >= 0 {
			withTree = true
			break
		}
	}
	lrep, xrep, err := xring.AnalyzeDesign(d, withTree)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d nodes, %d waveguides, %d shortcuts, %d routes\n",
		path, d.N(), len(d.Waveguides), len(d.Shortcuts), len(d.Routes))
	tb := &report.Table{Header: []string{"metric", "value"}}
	tb.AddRow("worst-case insertion loss", report.F(lrep.WorstIL, 2)+" dB")
	tb.AddRow("worst-loss path length", report.F(lrep.WorstLen, 1)+" mm")
	tb.AddRow("total laser power", report.F(lrep.TotalPowerMW, 3)+" mW")
	tb.AddRow("signals with noise", report.D(xrep.NumNoisy))
	tb.AddRow("noise-free signals", report.Pct(xrep.NoiseFreeFrac))
	fmt.Print(tb.String())
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(xring.RenderSVG(d)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
}

// trafficFor resolves the -traffic flag to a signal set (nil = all-to-all).
func trafficFor(name string, n int) ([]xring.Signal, error) {
	var t []xring.Signal
	switch name {
	case "all", "":
		return nil, nil
	case "transpose":
		t = xring.Transpose(n)
	case "bitrev":
		t = xring.BitReversal(n)
	case "hotspot":
		t = xring.Hotspot(n, 0)
	case "neighbor":
		t = xring.NeighborRing(n)
	case "shuffle":
		t = xring.Shuffle(n)
	default:
		return nil, fmt.Errorf("unknown traffic pattern %q", name)
	}
	if t == nil {
		return nil, fmt.Errorf("pattern %q is undefined for %d nodes", name, n)
	}
	return t, nil
}

func loadNetwork(nodes int, path string) (*xring.Network, error) {
	if path == "" {
		switch nodes {
		case 8:
			return xring.Floorplan8(), nil
		case 16:
			return xring.Floorplan16(), nil
		case 32:
			return xring.Floorplan32(), nil
		default:
			return nil, fmt.Errorf("no standard floorplan for %d nodes (use -floorplan)", nodes)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fp floorplanFile
	if err := json.Unmarshal(raw, &fp); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	net := &xring.Network{DieW: fp.DieW, DieH: fp.DieH}
	for i, n := range fp.Nodes {
		net.Nodes = append(net.Nodes, xring.Node{
			ID: i, Name: fmt.Sprintf("n%d", i),
			Pos: xring.Point{X: n.X, Y: n.Y},
		})
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func printResult(net *xring.Network, res *xring.Result, wl int) {
	fmt.Printf("XRing synthesis for %d nodes (die %.1f x %.1f mm)\n",
		net.N(), net.DieW, net.DieH)
	fmt.Printf("  ring tour length     %.2f mm (%d sub-cycles merged, %d B&B nodes)\n",
		res.Ring.Length, res.Ring.Subcycles, res.Ring.Nodes)
	fmt.Printf("  shortcuts            %d", len(res.Design.Shortcuts))
	cse := 0
	for i, s := range res.Design.Shortcuts {
		if s.Partner > i {
			cse++
		}
	}
	if cse > 0 {
		fmt.Printf(" (%d CSE-merged pairs)", cse)
	}
	fmt.Println()
	fmt.Printf("  ring waveguides      %d (budget #wl = %d, used %d wavelengths)\n",
		len(res.Design.Waveguides), wl, res.Loss.WavelengthCount)
	fmt.Printf("  signals routed       %d (%d on shortcuts)\n",
		len(res.Design.Routes), res.MapStats.ShortcutSignals)
	if res.Plan != nil {
		fmt.Printf("  PDN                  %s, %d crossings, %.1f mm of waveguide\n",
			res.Plan.Kind, res.Plan.CrossingsAdded, res.Plan.WireLength)
	}
	fmt.Println()
	tb := &report.Table{Header: []string{"metric", "value"}}
	tb.AddRow("worst-case insertion loss il_w", report.F(res.Loss.WorstIL, 2)+" dB")
	tb.AddRow("worst-loss path length L", report.F(res.Loss.WorstLen, 1)+" mm")
	tb.AddRow("crossings on worst path C", report.D(res.Loss.WorstCrossings))
	tb.AddRow("total laser power P", report.F(res.Loss.TotalPowerMW, 3)+" mW")
	tb.AddRow("signals with noise #s", report.D(res.Xtalk.NumNoisy))
	snr := "-"
	if !math.IsInf(res.Xtalk.WorstSNR, 1) {
		snr = report.F(res.Xtalk.WorstSNR, 1) + " dB"
	}
	tb.AddRow("worst-case SNR_w", snr)
	tb.AddRow("noise-free signals", report.Pct(res.Xtalk.NoiseFreeFrac))
	tb.AddRow("synthesis time T", report.Seconds(res.SynthTime.Seconds())+" s")
	fmt.Print(tb.String())
}

func runBaseline(net *xring.Network, kind string, wl int, withPDN bool, svgPath string) {
	if wl == 0 {
		wl = net.N()
	}
	par := xring.DefaultParams()
	var (
		res *xring.BaselineResult
		err error
	)
	switch kind {
	case "ornoc":
		res, err = xring.SynthesizeORNoC(net, par, wl, withPDN)
	case "oring":
		res, err = xring.SynthesizeORing(net, par, wl, withPDN)
	default:
		fatal(fmt.Errorf("unknown baseline %q (ornoc or oring)", kind))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s baseline for %d nodes (#wl = %d)\n", kind, net.N(), wl)
	tb := &report.Table{Header: []string{"metric", "value"}}
	tb.AddRow("worst-case insertion loss il_w*", report.F(res.Loss.WorstIL, 2)+" dB")
	tb.AddRow("worst-loss path length L", report.F(res.Loss.WorstLen, 1)+" mm")
	tb.AddRow("crossings on worst path C", report.D(res.Loss.WorstCrossings))
	tb.AddRow("total laser power P", report.F(res.Loss.TotalPowerMW, 3)+" mW")
	tb.AddRow("signals with noise #s", report.D(res.Xtalk.NumNoisy))
	tb.AddRow("worst-case SNR_w", report.F(res.Xtalk.WorstSNR, 1)+" dB")
	fmt.Print(tb.String())
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(xring.RenderSVG(res.Design)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
}

type jsonSummary struct {
	Nodes       int     `json:"nodes"`
	WLBudget    int     `json:"wlBudget"`
	Wavelengths int     `json:"wavelengths"`
	Waveguides  int     `json:"waveguides"`
	Shortcuts   int     `json:"shortcuts"`
	WorstILdB   float64 `json:"worstIL_dB"`
	WorstLenMM  float64 `json:"worstLen_mm"`
	Crossings   int     `json:"crossingsOnWorstPath"`
	PowerMW     float64 `json:"laserPower_mW"`
	NumNoisy    int     `json:"signalsWithNoise"`
	NoiseFree   float64 `json:"noiseFreeFraction"`
	SynthSec    float64 `json:"synthesisSeconds"`
}

func writeJSON(path string, net *xring.Network, res *xring.Result, wl int) error {
	s := jsonSummary{
		Nodes:       net.N(),
		WLBudget:    wl,
		Wavelengths: res.Loss.WavelengthCount,
		Waveguides:  len(res.Design.Waveguides),
		Shortcuts:   len(res.Design.Shortcuts),
		WorstILdB:   res.Loss.WorstIL,
		WorstLenMM:  res.Loss.WorstLen,
		Crossings:   res.Loss.WorstCrossings,
		PowerMW:     res.Loss.TotalPowerMW,
		NumNoisy:    res.Xtalk.NumNoisy,
		NoiseFree:   res.Xtalk.NoiseFreeFrac,
		SynthSec:    res.SynthTime.Seconds(),
	}
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xring:", err)
	flushTelemetry()
	os.Exit(1)
}
