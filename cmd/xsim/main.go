// Command xsim runs the discrete-event transmission simulator on a
// synthesized router and prints the classic latency-load curve,
// contrasting WRONoC's design-time channel reservation with an
// arbitrated shared-channel fabric (the baseline the paper's
// introduction argues against).
//
// Usage:
//
//	xsim [-nodes 16] [-wl 14] [-rate 10] [-packet 512] [-channels 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"xring"
	"xring/internal/report"
)

func main() {
	nodes := flag.Int("nodes", 16, "standard floorplan size (8, 16 or 32)")
	wl := flag.Int("wl", 0, "per-ring wavelength budget (0 = N-2)")
	rate := flag.Float64("rate", 10, "line rate per wavelength in Gb/s")
	packet := flag.Int("packet", 512, "packet size in bits")
	channels := flag.Int("channels", 0, "shared channels for the arbitrated baseline (0 = design's #wl)")
	flag.Parse()

	var net *xring.Network
	switch *nodes {
	case 8:
		net = xring.Floorplan8()
	case 16:
		net = xring.Floorplan16()
	case 32:
		net = xring.Floorplan32()
	default:
		fmt.Fprintf(os.Stderr, "xsim: no standard floorplan for %d nodes\n", *nodes)
		os.Exit(2)
	}
	budget := *wl
	if budget == 0 {
		budget = *nodes - 2
	}
	res, err := xring.Synthesize(net, xring.Options{MaxWL: budget, WithPDN: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%d-node XRing, %d flows, %d wavelengths, %g Gb/s per channel, %d-bit packets\n\n",
		*nodes, len(res.Design.Routes), res.Loss.WavelengthCount, *rate, *packet)

	tb := &report.Table{
		Title: "latency-load curve (mean / p99 packet latency in ns; * = saturated)",
		Header: []string{"load", "WRONoC mean", "WRONoC p99", "arbitrated mean",
			"arbitrated p99", "WRONoC Gb/s", "arbitrated Gb/s"},
	}
	for _, load := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		cfg := xring.DefaultSimConfig(load)
		cfg.LineRateGbps = *rate
		cfg.PacketBits = *packet
		ded, err := xring.Simulate(res, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsim:", err)
			os.Exit(1)
		}
		cfgA := cfg
		cfgA.Mode = xring.SimArbitrated
		cfgA.SharedChannels = *channels
		arb, err := xring.Simulate(res, cfgA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xsim:", err)
			os.Exit(1)
		}
		mark := func(v float64, sat bool) string {
			s := report.F(v, 1)
			if sat {
				s += "*"
			}
			return s
		}
		tb.AddRow(report.F(load, 1),
			mark(ded.MeanTotalNS, ded.Saturated), mark(ded.P99TotalNS, ded.Saturated),
			mark(arb.MeanTotalNS, arb.Saturated), mark(arb.P99TotalNS, arb.Saturated),
			report.F(ded.DeliveredGbps, 0), report.F(arb.DeliveredGbps, 0))
	}
	fmt.Print(tb.String())
	fmt.Println("\nWRONoC stays flat until each flow's own channel saturates; the arbitrated")
	fmt.Println("fabric collapses as soon as the shared pool is oversubscribed.")
}
