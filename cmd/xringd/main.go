// Command xringd serves the xring synthesis engine as a long-running
// daemon: an HTTP JSON API with admission control (bounded job queue,
// 429 + Retry-After under overload), content-addressed result caching,
// singleflight deduplication of identical concurrent requests, and
// per-job progress streaming over SSE. See SERVICE.md for the API
// contract and examples.
//
// Usage:
//
//	xringd                          # serve on :8418
//	xringd -addr :9000 -workers 4   # custom listen address and parallelism
//	xringd -queue 16 -cache 512     # admission queue depth, result cache size
//	xringd -deadline 2m             # default per-request synthesis deadline
//	xringd -persist /var/lib/xring  # crash-safe on-disk result cache
//	xringd -stage-timeout 30s       # per-stage progress watchdog (504 on stall)
//	xringd -fault 'core.ring=error:budget'  # deterministic fault injection
//	xringd -flight 512              # flight-recorder depth (last N job records)
//	xringd -flight-dir /var/log/xring  # auto-snapshot on panic / stage timeout
//	xringd -cluster-self http://10.0.0.1:8418 \
//	       -cluster-peers http://10.0.0.1:8418,http://10.0.0.2:8418,http://10.0.0.3:8418
//	                                # shard of a consistent-hash cluster: cache
//	                                # peer-fill + cross-instance ring batching
//	                                # (front with xringlb; see SERVICE.md)
//
// Observability: GET /metrics serves Prometheus text exposition (JSON
// via ?format=json), GET /debug/flightrecorder dumps the last N job
// records, and every request is correlated end to end by a W3C trace
// ID (traceparent in, X-Trace-Id out).
//
// Shutdown: SIGINT/SIGTERM starts a graceful drain — new submissions
// are rejected with 503 (and /readyz flips, so load balancers stop
// routing here) while every admitted job runs to completion, bounded
// by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xring/internal/cluster"
	"xring/internal/core"
	"xring/internal/obs"
	"xring/internal/service"
)

func main() {
	addr := flag.String("addr", ":8418", "listen address")
	queue := flag.Int("queue", 64, "admission queue depth (queued-not-running jobs; overflow gets 429)")
	workers := flag.Int("workers", 2, "concurrent synthesis jobs (each fans out on the shared worker pool)")
	cache := flag.Int("cache", 256, "result cache entries (0 default, negative disables)")
	deadline := flag.Duration("deadline", 0, "default per-request synthesis deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to finish admitted jobs at shutdown")
	persist := flag.String("persist", "", "directory for the crash-safe persistent result cache (empty disables)")
	persistEntries := flag.Int("persist-entries", 0, "max on-disk cache entries (0 = default 1024)")
	stageTimeout := flag.Duration("stage-timeout", 0, "fail a job if no synthesis stage completes within this long (0 = off)")
	fault := flag.String("fault", "", "fault-injection spec, e.g. 'core.ring=error:budget;seed=7' (testing)")
	flight := flag.Int("flight", 0, "flight-recorder depth: last N completed job records (0 = default 256)")
	flightDir := flag.String("flight-dir", "", "directory for automatic flight-recorder snapshots on panic/stage-timeout (empty disables)")
	exploreCells := flag.Int("explore-cells", 0, "concurrent cells per /v1/explore study (0 = shared worker pool budget)")
	maxExplorations := flag.Int("max-explorations", 0, "retained exploration records for status/frontier queries (0 = default 64)")
	maxWhatifs := flag.Int("max-whatifs", 0, "retained fault-replay records for /v1/whatif status queries (0 = default 64)")
	clusterSelf := flag.String("cluster-self", "", "this shard's advertised base URL (e.g. http://10.0.0.1:8418); enables cluster mode")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated shard base URLs — the full membership, including self")
	clusterPrev := flag.String("cluster-prev", "", "previous membership (comma-separated), so peer-fill survives a rebalance")
	clusterVnodes := flag.Int("cluster-vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default 64; must match the fleet)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	var peers *cluster.Peers
	if *clusterSelf != "" || *clusterPeers != "" {
		p, err := cluster.NewPeers(cluster.PeersConfig{
			Self:         *clusterSelf,
			Members:      splitPeers(*clusterPeers),
			Previous:     splitPeers(*clusterPrev),
			VirtualNodes: *clusterVnodes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "xringd:", err)
			os.Exit(1)
		}
		peers = p
	}

	if err := run(*addr, peers, service.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		CacheEntries:    *cache,
		DefaultDeadline: *deadline,
		PersistDir:      *persist,
		PersistEntries:  *persistEntries,
		StageTimeout:    *stageTimeout,
		FaultSpec:       *fault,
		FlightRecords:   *flight,
		FlightDir:       *flightDir,

		ExploreCellConcurrency: *exploreCells,
		MaxExplorations:        *maxExplorations,
		MaxWhatifs:             *maxWhatifs,
	}, *drainTimeout, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "xringd:", err)
		os.Exit(1)
	}
}

// splitPeers parses a comma-separated peer list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func run(addr string, peers *cluster.Peers, cfg service.Config, drainTimeout time.Duration, obsFlags *obs.Flags) error {
	flushObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := flushObs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "xringd:", ferr)
		}
	}()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xringd: serving on %s\n", ln.Addr())
	if peers != nil {
		// Cluster mode: the service pulls cache misses from the key's
		// owner shard (peer-fill), the engine forwards ring-construction
		// misses to the floorplan's owner (cross-instance batching), and
		// GET /v1/cluster reports this shard's membership view.
		cfg.PeerFetch = peers.Fetch
		cfg.ClusterInfo = peers.Info
		core.SetRingDelegate(peers.Delegate)
		defer core.SetRingDelegate(nil)
		peers.Start()
		defer peers.Stop()
		fmt.Fprintf(os.Stderr, "xringd: cluster mode, %d members\n", peers.Ring().Size())
	}
	return serve(ln, cfg, drainTimeout)
}

// serve runs the service on ln until SIGINT/SIGTERM, then drains:
// admitted jobs finish (bounded by drainTimeout) before the listener
// closes. Split from run so tests can drive it on an ephemeral port.
func serve(ln net.Listener, cfg service.Config, drainTimeout time.Duration) error {
	logger := obs.Logger("service")
	// The metrics registry always counts for a daemon: GET /metrics is
	// the point of running one, and telemetry is proven not to alter
	// synthesis results (obs determinism tests).
	obs.EnableMetrics(true)
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	bi := service.ReadBuildInfo()
	logger.Info("build", "go", bi.GoVersion, "module", bi.Module,
		"version", bi.Version, "revision", bi.Revision, "modified", bi.Modified)
	fmt.Fprintf(os.Stderr, "xringd: build %s %s %s rev=%s modified=%v\n",
		bi.GoVersion, bi.Module, bi.Version, bi.Revision, bi.Modified)
	if cfg.PersistDir != "" {
		st := svc.Stats()
		logger.Info("persistent cache opened", "dir", cfg.PersistDir,
			"recovered", st.PersistRecovered, "discarded", st.PersistDiscarded)
		fmt.Fprintf(os.Stderr, "xringd: persistent cache %s (recovered %d, discarded %d)\n",
			cfg.PersistDir, st.PersistRecovered, st.PersistDiscarded)
	}
	httpServer := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(), "queue", cfg.QueueDepth, "workers", cfg.Workers)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Drain first: /readyz flips and new submissions get 503 while the
	// admitted jobs finish, then stop the HTTP listener.
	fmt.Fprintln(os.Stderr, "xringd: draining...")
	logger.Info("draining", "timeout", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
		fmt.Fprintln(os.Stderr, "xringd:", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := svc.Stats()
	logger.Info("stopped", "requests", st.Requests, "synthesized", st.Synthesized,
		"cacheHits", st.CacheHits, "dedupHits", st.DedupHits)
	fmt.Fprintf(os.Stderr, "xringd: stopped (requests %d, synthesized %d, cache hits %d, dedup hits %d)\n",
		st.Requests, st.Synthesized, st.CacheHits, st.DedupHits)
	return nil
}
