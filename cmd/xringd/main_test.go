package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"xring/internal/service"
)

// TestSigtermDrainsInFlightJobs drives the daemon's signal path end to
// end: a request is mid-synthesis when SIGTERM arrives, and it must
// still complete with a 200 — zero dropped in-flight jobs — before the
// process stops serving.
func TestSigtermDrainsInFlightJobs(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ln, service.Config{Workers: 1}, 30*time.Second)
	}()

	// Wait for the server to come up.
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Submit a synchronous request; it runs the real engine on a tiny
	// floorplan, so it can be in flight when the signal lands.
	body, err := json.Marshal(map[string]any{
		"network": map[string]any{"nodes": []map[string]any{
			{"id": 0, "x": 0, "y": 0},
			{"id": 1, "x": 2.5, "y": 0},
			{"id": 2, "x": 0, "y": 2.5},
			{"id": 3, "x": 3, "y": 2.5},
		}},
		"options": map[string]any{"maxWL": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{status: resp.StatusCode, body: data}
	}()

	// Signal as soon as the request has been admitted.
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			return false
		}
		var st service.Stats
		jsonErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return jsonErr == nil && st.Requests >= 1
	})
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed across SIGTERM: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request got %d across SIGTERM, want 200; body %s", r.status, r.body)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The listener is closed: new connections must fail.
	if resp, err := http.Get(base + "/readyz"); err == nil {
		resp.Body.Close()
		t.Error("server still accepting connections after shutdown")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
