// Command xringlb is the xring cluster router: a stateless HTTP tier
// that fronts a fleet of xringd shards, forwarding every key-addressed
// request (/v1/synthesize, /v1/designs/{key}, /v1/explore, /v1/whatif)
// to the shard owning its content key on a deterministic
// consistent-hash ring, and resolving ID-addressed reads (job status,
// SSE streams, frontiers) by asking shards healthiest-first. Peer
// health rides on each shard's /readyz load signal; forwards carry the
// client's traceparent across the hop, fail over with bounded retries,
// and one bad shard only trips its own circuit breaker.
//
// Usage:
//
//	xringlb -peers http://10.0.0.1:8418,http://10.0.0.2:8418,http://10.0.0.3:8418
//	xringlb -addr :8417 -retries 2 -probe-interval 2s
//
// The -vnodes setting must match the shards' -cluster-vnodes, or
// router and fleet disagree about key ownership. GET /v1/cluster shows
// membership, ownership shares and live peer health; GET /metrics
// serves the router's cluster.route.* counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xring/internal/cluster"
	"xring/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8417", "listen address")
	peers := flag.String("peers", "", "comma-separated shard base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default 64; must match the fleet)")
	retries := flag.Int("retries", 0, "failover attempts after the first forward (0 = default 2, negative disables)")
	probeInterval := flag.Duration("probe-interval", 0, "peer health probe cadence (0 = default 2s)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if err := run(*addr, splitPeers(*peers), *vnodes, *retries, *probeInterval, obsFlags); err != nil {
		fmt.Fprintln(os.Stderr, "xringlb:", err)
		os.Exit(1)
	}
}

// splitPeers parses a comma-separated peer list, dropping empties.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}

func run(addr string, peers []string, vnodes, retries int, probeInterval time.Duration, obsFlags *obs.Flags) error {
	if len(peers) == 0 {
		return errors.New("no peers: pass -peers with the shard fleet")
	}
	flushObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := flushObs(); ferr != nil {
			fmt.Fprintln(os.Stderr, "xringlb:", ferr)
		}
	}()
	obs.EnableMetrics(true)

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Members:       peers,
		VirtualNodes:  vnodes,
		MaxRetries:    retries,
		ProbeInterval: probeInterval,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	router.Start()
	defer router.Stop()
	fmt.Fprintf(os.Stderr, "xringlb: routing %d shards on %s\n", len(peers), ln.Addr())

	httpServer := &http.Server{Handler: router.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "xringlb: shutting down...")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
