package pdn

import (
	"math"
	"testing"

	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
)

func synthDesign(t *testing.T, net *noc.Network, openings bool) *router.Design {
	t.Helper()
	res, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := shortcut.Construct(d, shortcut.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.Run(d, mapping.Options{MaxWL: net.N(), NoOpenings: !openings, AlignOpenings: true}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildTreeGrid8(t *testing.T) {
	d := synthDesign(t, noc.Floorplan8(), true)
	p, err := BuildTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != Tree || p.Kind.String() != "tree" {
		t.Fatal("wrong kind")
	}
	if p.CrossingsAdded != 0 {
		t.Fatalf("tree PDN added %d crossings, want 0", p.CrossingsAdded)
	}
	// No waveguide may have gained crossings.
	for _, w := range d.Waveguides {
		if len(w.Crossings) != 0 {
			t.Fatalf("tree PDN must not cross ring waveguides (wg %d has %d)", w.ID, len(w.Crossings))
		}
	}
	// Every ring sender has a feed.
	for _, w := range d.Waveguides {
		for _, s := range d.SendersOn(w) {
			key := FeedKey{Index: w.ID, Node: s}
			f, ok := p.Feeds[key]
			if !ok {
				t.Fatalf("no feed for sender %d on wg %d", s, w.ID)
			}
			if f.Crossings != 0 {
				t.Fatalf("tree feed has crossings")
			}
			if f.Splitters < 1 && len(d.SendersOn(w)) > 1 {
				t.Fatalf("feed %v has no splitters", key)
			}
		}
	}
	// Shortcut senders are powered too.
	for si, s := range d.Shortcuts {
		if len(s.Channels) == 0 {
			continue
		}
		if _, ok := p.Feeds[FeedKey{OnShortcut: true, Index: si, Node: s.A}]; !ok {
			t.Fatalf("shortcut %d sender %d unpowered", si, s.A)
		}
	}
	if p.WireLength <= 0 {
		t.Fatal("wire length must be positive")
	}
}

func TestBuildTreeRequiresOpenings(t *testing.T) {
	d := synthDesign(t, noc.Floorplan8(), false)
	if _, err := BuildTree(d); err == nil {
		t.Fatal("want error when waveguides have no openings")
	}
}

func TestBuildCombAddsCrossings(t *testing.T) {
	d := synthDesign(t, noc.Floorplan8(), false)
	if len(d.Waveguides) < 2 {
		t.Skip("need at least 2 waveguides for crossings")
	}
	p, err := BuildComb(d)
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossingsAdded == 0 {
		t.Fatal("comb PDN should cross ring waveguides")
	}
	total := 0
	for _, w := range d.Waveguides {
		total += len(w.Crossings)
	}
	if total != p.CrossingsAdded {
		t.Fatalf("registered %d crossings but reported %d", total, p.CrossingsAdded)
	}
	// Innermost waveguide senders cross the most rings; outermost cross none.
	maxRadial := 0
	for _, w := range d.Waveguides {
		if w.Radial > maxRadial {
			maxRadial = w.Radial
		}
	}
	for _, w := range d.Waveguides {
		for _, s := range d.SendersOn(w) {
			f := p.Feeds[FeedKey{Index: w.ID, Node: s}]
			if f == nil {
				t.Fatalf("missing feed for wg %d node %d", w.ID, s)
			}
			if want := maxRadial - w.Radial; f.Crossings != want {
				t.Fatalf("wg %d (radial %d) feed crossings = %d, want %d",
					w.ID, w.Radial, f.Crossings, want)
			}
		}
	}
}

func TestSenderLossMonotoneInSplitters(t *testing.T) {
	par := phys.Default()
	p := &Plan{Kind: Tree, Feeds: map[FeedKey]*Feed{}}
	k1 := FeedKey{Index: 0, Node: 0}
	k2 := FeedKey{Index: 0, Node: 1}
	p.Feeds[k1] = &Feed{Key: k1, Splitters: 1, PathLen: 2}
	p.Feeds[k2] = &Feed{Key: k2, Splitters: 3, PathLen: 2}
	l1, err := p.SenderLossDB(par, k1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.SenderLossDB(par, k2)
	if err != nil {
		t.Fatal(err)
	}
	if l2 <= l1 {
		t.Fatalf("more splitters must cost more: %v vs %v", l1, l2)
	}
	// Two extra stages cost 2*(split+excess).
	want := 2 * (par.SplitterSplitDB + par.SplitterExcessDB)
	if math.Abs((l2-l1)-want) > 1e-9 {
		t.Fatalf("delta = %v, want %v", l2-l1, want)
	}
	if _, err := p.SenderLossDB(par, FeedKey{Index: 9, Node: 9}); err == nil {
		t.Fatal("want error for unknown feed")
	}
}

func TestBuildSplitterTreeBalanced(t *testing.T) {
	// Four equally spaced senders: two levels, symmetric paths.
	coords := map[int]float64{10: 0, 11: 2, 12: 4, 13: 6}
	feeds, wire := buildSplitterTree(coords)
	for n, f := range feeds {
		if f.Splitters != 2 {
			t.Fatalf("sender %d has %d splitters, want 2", n, f.Splitters)
		}
	}
	// Level 1 wires: |0-2| + |4-6| = 4; level 2: |1-5| = 4; trunk to
	// coordinate 0: 3. Total 11.
	if math.Abs(wire-11) > 1e-9 {
		t.Fatalf("wire = %v, want 11", wire)
	}
	// Leaf 10: |0-1| + |1-3| + 3 = 6.
	if math.Abs(feeds[10].PathLen-6) > 1e-9 {
		t.Fatalf("leaf 10 path = %v, want 6", feeds[10].PathLen)
	}
}

func TestBuildSplitterTreeOdd(t *testing.T) {
	// Three senders: the straggler is promoted and gets fewer splitters.
	coords := map[int]float64{0: 0, 1: 2, 2: 9}
	feeds, _ := buildSplitterTree(coords)
	if feeds[0].Splitters != 2 || feeds[1].Splitters != 2 {
		t.Fatalf("paired leaves need 2 splitters: %+v %+v", feeds[0], feeds[1])
	}
	if feeds[2].Splitters != 1 {
		t.Fatalf("promoted leaf needs 1 splitter, got %d", feeds[2].Splitters)
	}
}

func TestBuildSplitterTreeSingle(t *testing.T) {
	coords := map[int]float64{5: 7}
	feeds, wire := buildSplitterTree(coords)
	if feeds[5].Splitters != 0 {
		t.Fatalf("single sender needs no splitters")
	}
	if math.Abs(wire-7) > 1e-9 || math.Abs(feeds[5].PathLen-7) > 1e-9 {
		t.Fatalf("trunk only: wire=%v path=%v, want 7", wire, feeds[5].PathLen)
	}
}

func TestCorridorCoordsDirections(t *testing.T) {
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wCW := &router.Waveguide{ID: 0, Dir: router.CW, Opening: 0}
	coords := corridorCoords(d, wCW, []int{1, 3})
	// CW from node 0: node 1 at 2mm, node 3 at 6mm.
	if math.Abs(coords[1]-2) > 1e-9 || math.Abs(coords[3]-6) > 1e-9 {
		t.Fatalf("CW coords = %v", coords)
	}
	wCCW := &router.Waveguide{ID: 1, Dir: router.CCW, Opening: 0}
	coordsR := corridorCoords(d, wCCW, []int{1, 3})
	// CCW from node 0: node 1 is 14mm away, node 3 is 10mm.
	if math.Abs(coordsR[1]-14) > 1e-9 || math.Abs(coordsR[3]-10) > 1e-9 {
		t.Fatalf("CCW coords = %v", coordsR)
	}
}

func TestTreePDN16And32(t *testing.T) {
	for _, n := range []int{16, 32} {
		net, err := noc.FloorplanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		d := synthDesign(t, net, true)
		p, err := BuildTree(d)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if p.CrossingsAdded != 0 {
			t.Fatalf("n=%d: tree PDN crossings %d", n, p.CrossingsAdded)
		}
		// Splitter depth per feed is max(own-tree depth, balanced-tree
		// ideal over all modulators); bound it by the larger of the two
		// plus one level of odd-promotion slack.
		mods := 0
		for _, w := range d.Waveguides {
			mods += len(w.Channels)
		}
		for _, s := range d.Shortcuts {
			mods += len(s.Channels)
		}
		ideal := int(math.Ceil(math.Log2(float64(mods))))
		for _, w := range d.Waveguides {
			senders := d.SendersOn(w)
			own := int(math.Ceil(math.Log2(float64(len(senders)+1)))) + 1
			bound := own
			if ideal > bound {
				bound = ideal
			}
			for _, s := range senders {
				f := p.Feeds[FeedKey{Index: w.ID, Node: s}]
				if f.Splitters > bound {
					t.Fatalf("n=%d wg %d sender %d: %d splitters > bound %d",
						n, w.ID, s, f.Splitters, bound)
				}
				if f.Splitters < ideal {
					t.Fatalf("n=%d wg %d sender %d: %d splitters below balanced ideal %d",
						n, w.ID, s, f.Splitters, ideal)
				}
			}
		}
	}
}
