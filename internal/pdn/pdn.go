// Package pdn implements Step 4 of the XRing flow (Sec. III-D): the
// power distribution network that feeds every sender (modulator) with
// laser light, plus the baseline "comb" PDN used by the ORNoC/ORing
// comparisons.
//
// XRing's PDN is a complete binary splitter tree per ring waveguide,
// routed in the spacing corridor between paired ring waveguides
// (corridor width A1 + ceil(log2 N)*A2) and entered through the ring
// openings, so it crosses no ring waveguide. Following Fig. 9, the
// sender at the opening node is paired first with its closest
// neighbouring sender in the signal direction; remaining senders are
// paired sequentially, a splitter sits at the midpoint of each
// connecting waveguide, and levels are repeated until a single top
// splitter remains.
//
// The comb PDN models what ring routers did before XRing: a trunk
// outside the outermost ring with per-sender feeds that must cross every
// ring waveguide radially outward of the sender's waveguide. Those
// crossings cost insertion loss on both the feed and the crossed ring,
// and they inject broadband laser leakage noise into the crossed rings
// (the effect that dominates the paper's Table II/III crosstalk
// results). BuildComb registers each crossing on the crossed waveguide
// so the loss and crosstalk engines see them.
package pdn

import (
	"fmt"
	"math"
	"sort"

	"xring/internal/obs"
	"xring/internal/phys"
	"xring/internal/router"
)

// Step-4 telemetry: PDN builds by kind, ring crossings created (always
// zero for the tree PDN) and the wire-length distribution per plan.
var (
	mTreeBuilds   = obs.NewCounter("pdn.builds.tree")
	mCombBuilds   = obs.NewCounter("pdn.builds.comb")
	mCrossings    = obs.NewCounter("pdn.crossings_added")
	mWireLengthMM = obs.NewHistogram("pdn.wire_length_mm", "mm",
		[]float64{10, 25, 50, 100, 200, 400, 800})
)

// record posts a finished plan's telemetry.
func (p *Plan) record() {
	if p.Kind == Tree {
		mTreeBuilds.Inc()
	} else {
		mCombBuilds.Inc()
	}
	mCrossings.Add(int64(p.CrossingsAdded))
	mWireLengthMM.Observe(p.WireLength)
}

// Kind distinguishes the two PDN designs.
type Kind int

const (
	// Tree is XRing's crossing-free binary-tree PDN.
	Tree Kind = iota
	// Comb is the baseline PDN whose feeds cross ring waveguides.
	Comb
)

func (k Kind) String() string {
	if k == Tree {
		return "tree"
	}
	return "comb"
}

// FeedKey identifies one sender: a (waveguide, node) pair for ring
// senders, or a (shortcut, node) pair for shortcut senders.
type FeedKey struct {
	OnShortcut bool
	Index      int // waveguide ID or shortcut index
	Node       int
}

// Feed is the laser path to one sender.
type Feed struct {
	Key FeedKey
	// Splitters is the number of splitter stages between laser and
	// sender (each costs the 3 dB split plus excess loss).
	Splitters int
	// PathLen is the PDN waveguide length from the laser entry to the
	// sender, in mm.
	PathLen float64
	// Crossings is the number of ring waveguides the feed crosses
	// (always 0 for the tree PDN).
	Crossings int
}

// Plan is a synthesized PDN.
type Plan struct {
	Kind  Kind
	Feeds map[FeedKey]*Feed
	// WireLength is the total PDN waveguide length in mm.
	WireLength float64
	// CrossingsAdded is the total number of PDN-ring crossings created
	// (zero for the tree PDN).
	CrossingsAdded int
	// Splitters is the total splitter count: leaves-1 per subtree plus
	// the joins of the global trunk.
	Splitters int
}

// SenderLossDB returns the insertion loss (dB) from the laser to the
// given sender, including splitter division, splitter excess loss,
// propagation along PDN waveguides and feed crossings.
func (p *Plan) SenderLossDB(par phys.Params, key FeedKey) (float64, error) {
	f, ok := p.Feeds[key]
	if !ok {
		return 0, fmt.Errorf("pdn: no feed for %+v", key)
	}
	return float64(f.Splitters)*(par.SplitterSplitDB+par.SplitterExcessDB) +
		f.PathLen*par.PropagationDBPerMM +
		float64(f.Crossings)*par.CrossingDB, nil
}

// BuildTree synthesizes the XRing tree PDN for a design whose
// waveguides all have openings (Step 3 must have run with openings
// enabled). It is crossing-free and does not modify the design.
func BuildTree(d *router.Design) (*Plan, error) {
	p := &Plan{Kind: Tree, Feeds: map[FeedKey]*Feed{}}
	for _, w := range d.Waveguides {
		senders := d.SendersOn(w)
		if len(senders) == 0 {
			continue
		}
		if w.Opening < 0 {
			return nil, fmt.Errorf("pdn: waveguide %d has no opening; run Step 3 with openings", w.ID)
		}
		coords := corridorCoords(d, w, senders)
		feeds, wire := buildSplitterTree(coords)
		for node, f := range feeds {
			key := FeedKey{Index: w.ID, Node: node}
			f.Key = key
			p.Feeds[key] = f
		}
		p.Splitters += len(coords) - 1
		p.WireLength += wire
	}
	if err := addShortcutFeeds(d, p); err != nil {
		return nil, err
	}
	addGlobalTrunk(d, p)
	p.record()
	return p, nil
}

// BuildComb synthesizes the baseline comb PDN: a trunk outside the
// outermost ring with per-sender feeds crossing all outer waveguides.
// It registers every crossing on the crossed waveguide (mutating the
// design) so the analyses account for crossing loss and noise.
func BuildComb(d *router.Design) (*Plan, error) {
	p := &Plan{Kind: Comb, Feeds: map[FeedKey]*Feed{}}
	// Idempotence: drop crossings from a previous comb build (e.g. on a
	// design reloaded from disk) before registering fresh ones.
	for _, w := range d.Waveguides {
		kept := w.Crossings[:0]
		for _, x := range w.Crossings {
			if x.Source != "pdn" {
				kept = append(kept, x)
			}
		}
		w.Crossings = kept
	}
	maxRadial := -1
	for _, w := range d.Waveguides {
		if w.Radial > maxRadial {
			maxRadial = w.Radial
		}
	}
	radialAbove := func(r int) int { return maxRadial - r }

	spacing := d.Par.RingSpacingMM(d.N()) / 2 // radial gap per waveguide (approx)
	for _, w := range d.Waveguides {
		senders := d.SendersOn(w)
		if len(senders) == 0 {
			continue
		}
		coords := corridorCoords(d, w, senders)
		feeds, wire := buildSplitterTree(coords)
		p.Splitters += len(coords) - 1
		nCross := radialAbove(w.Radial)
		// Register feeds in sorted node order: the crossings appended to
		// the outer waveguides fix the noise-walk accumulation order, so
		// two builds of the same geometry must produce the same sequence.
		nodes := make([]int, 0, len(feeds))
		for node := range feeds {
			nodes = append(nodes, node)
		}
		sort.Ints(nodes)
		for _, node := range nodes {
			f := feeds[node]
			f.Crossings = nCross
			f.PathLen += float64(nCross) * spacing // radial feed segment
			key := FeedKey{Index: w.ID, Node: node}
			f.Key = key
			p.Feeds[key] = f
			p.CrossingsAdded += nCross
			// Register the crossing on every waveguide radially outward.
			for _, ow := range d.Waveguides {
				if ow.Radial > w.Radial {
					ow.Crossings = append(ow.Crossings, router.Crossing{
						Pos:    d.NodeCoord(node),
						AtNode: node,
						FedWG:  w.ID,
						Source: "pdn",
					})
				}
			}
		}
		p.WireLength += wire
	}
	if err := addShortcutFeeds(d, p); err != nil {
		return nil, err
	}
	addGlobalTrunk(d, p)
	p.record()
	return p, nil
}

// addGlobalTrunk accounts for the distribution stages that join the
// per-waveguide top splitters to the single off-chip laser of each
// wavelength ("we connect the top splitters of all ring waveguides
// through their opening nodes", Sec. III-D), and for the power division
// across the modulators sharing one feed bank. Every signal has its own
// modulator, so a laser ultimately feeds one leaf per channel: any
// distribution arrangement splits each path at least ceil(log2 M)
// times, M being the total modulator count. Each feed's splitter count
// is raised to that balanced-tree ideal (feeds already deeper inside
// their own waveguide tree keep their real depth).
func addGlobalTrunk(d *router.Design, p *Plan) {
	mods := 0
	for _, w := range d.Waveguides {
		mods += len(w.Channels)
	}
	for _, s := range d.Shortcuts {
		mods += len(s.Channels)
	}
	if mods <= 1 {
		return
	}
	target := int(math.Ceil(math.Log2(float64(mods))))
	for _, f := range p.Feeds {
		if f.Splitters < target {
			f.Splitters = target
		}
	}
	// Joining T top-level subtrees to one laser costs T-1 combiner
	// splitters.
	trees := map[FeedKey]bool{}
	for key := range p.Feeds {
		trees[FeedKey{OnShortcut: key.OnShortcut, Index: key.Index}] = true
	}
	if len(trees) > 1 {
		p.Splitters += len(trees) - 1
	}
}

// addShortcutFeeds powers the senders dedicated to shortcuts. Shortcut
// senders sit at node positions, so the corridor PDN reaches them like
// ring senders; each shortcut pair forms a two-leaf subtree.
func addShortcutFeeds(d *router.Design, p *Plan) error {
	for si, s := range d.Shortcuts {
		// A sender exists at an endpoint if any channel enters there.
		entries := map[int]bool{}
		for _, c := range s.Channels {
			entries[c.Sig.Src] = true
		}
		if len(entries) == 0 {
			continue
		}
		nodes := make([]int, 0, len(entries))
		for n := range entries {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		p.Splitters++ // pairs the two endpoint senders
		for _, n := range nodes {
			// One splitter pairs the two endpoint senders; the feed runs
			// half the shortcut length from the splitter at its midpoint,
			// plus one stage joining the ring-level tree.
			f := &Feed{
				Key:       FeedKey{OnShortcut: true, Index: si, Node: n},
				Splitters: 2,
				PathLen:   s.Length() / 2,
			}
			p.Feeds[f.Key] = f
			p.WireLength += s.Length() / 2
		}
	}
	return nil
}

// corridorCoords linearizes sender positions along the PDN corridor of
// a waveguide: arc coordinates measured from the opening (or from the
// tour origin when the waveguide has none) in the waveguide's travel
// direction, sorted ascending. The first sender after the opening is
// thereby paired first, as Sec. III-D prescribes.
func corridorCoords(d *router.Design, w *router.Waveguide, senders []int) map[int]float64 {
	origin := 0.0
	if w.Opening >= 0 {
		origin = d.NodeCoord(w.Opening)
	}
	per := d.Perimeter()
	coords := make(map[int]float64, len(senders))
	for _, s := range senders {
		x := d.NodeCoord(s) - origin
		if w.Dir == router.CCW {
			x = -x
		}
		x = math.Mod(x+2*per, per)
		coords[s] = x
	}
	return coords
}

// buildSplitterTree pairs senders sequentially along the corridor and
// stacks splitter levels until one top splitter remains. It returns the
// per-leaf feeds (splitter count and path length to the laser entry at
// corridor coordinate 0) and the total wire length.
func buildSplitterTree(coords map[int]float64) (map[int]*Feed, float64) {
	type tnode struct {
		pos    float64
		leaves []int
	}
	feeds := make(map[int]*Feed, len(coords))
	var level []tnode
	nodes := make([]int, 0, len(coords))
	for n := range coords {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return coords[nodes[i]] < coords[nodes[j]] })
	for _, n := range nodes {
		feeds[n] = &Feed{}
		level = append(level, tnode{pos: coords[n], leaves: []int{n}})
	}
	wire := 0.0
	for len(level) > 1 {
		var next []tnode
		for i := 0; i+1 < len(level); i += 2 {
			a, b := level[i], level[i+1]
			span := math.Abs(a.pos - b.pos)
			mid := (a.pos + b.pos) / 2
			wire += span
			for _, leaf := range a.leaves {
				feeds[leaf].Splitters++
				feeds[leaf].PathLen += math.Abs(a.pos - mid)
			}
			for _, leaf := range b.leaves {
				feeds[leaf].Splitters++
				feeds[leaf].PathLen += math.Abs(b.pos - mid)
			}
			next = append(next, tnode{pos: mid, leaves: append(append([]int{}, a.leaves...), b.leaves...)})
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	// Trunk from the laser entry (corridor coordinate 0, at the opening)
	// to the top splitter.
	top := level[0]
	trunk := top.pos
	wire += trunk
	for _, leaf := range top.leaves {
		feeds[leaf].PathLen += trunk
	}
	return feeds, wire
}
