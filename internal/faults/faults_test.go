package faults

import (
	"context"
	"math"
	"reflect"
	"testing"

	"xring/internal/core"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/router"
	"xring/internal/xtalk"
)

// synth builds an 8-node design, optionally fault-tolerant (k=1).
func synth(t *testing.T, k int, withPDN bool) (*router.Design, *pdn.Plan) {
	t.Helper()
	res, err := core.Synthesize(noc.Floorplan8(), core.Options{
		MaxWL: 8, WithPDN: withPDN, FaultTolerance: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Design, res.Plan
}

func TestUniverseDeterministicAndComplete(t *testing.T) {
	d, _ := synth(t, 0, true)
	all := []Kind{KindMRR, KindSegment, KindDetune}
	u1 := Universe(d, all, 0)
	u2 := Universe(d, all, 0)
	if !reflect.DeepEqual(u1, u2) {
		t.Fatal("universe not deterministic")
	}
	counts := map[Kind]int{}
	for _, f := range u1 {
		counts[f.Kind]++
	}
	// Every channel has a Tx and an Rx MRR, and one detunable receiver.
	channels := 0
	for _, w := range d.Waveguides {
		channels += len(w.Channels)
	}
	for _, s := range d.Shortcuts {
		channels += len(s.Channels)
	}
	if counts[KindMRR] != 2*channels {
		t.Fatalf("MRR faults = %d, want %d", counts[KindMRR], 2*channels)
	}
	if counts[KindDetune] != channels {
		t.Fatalf("detune faults = %d, want %d", counts[KindDetune], channels)
	}
	if counts[KindSegment] == 0 {
		t.Fatal("no segment faults enumerated")
	}
	for _, f := range u1 {
		if f.Kind == KindDetune && f.DetuneDB != DefaultDetuneDB {
			t.Fatalf("detune fault carries %v dB, want default %v", f.DetuneDB, DefaultDetuneDB)
		}
	}
}

// TestEmptyScenarioByteIdentical is the nominal-reproduction property:
// replaying the empty fault set must reproduce the nominal loss and
// crosstalk figures bit-for-bit, across design variants.
func TestEmptyScenarioByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name    string
		k       int
		withPDN bool
	}{
		{"nominal", 0, true},
		{"nominal-nopdn", 0, false},
		{"ft1", 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, plan := synth(t, tc.k, tc.withPDN)
			lrep, err := loss.Analyze(d, plan)
			if err != nil {
				t.Fatal(err)
			}
			xrep, err := xtalk.Analyze(d, plan, lrep)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Analyze(context.Background(), d, plan, []Scenario{{}}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Outcomes) != 1 {
				t.Fatalf("outcomes = %d", len(rep.Outcomes))
			}
			o := rep.Outcomes[0]
			if o.FullReplay {
				t.Fatal("empty scenario must reuse the nominal analyses")
			}
			// WorstSNR compares through finiteSNR: the report flattens a
			// +Inf "no crosstalk terms" SNR to 0 for JSON.
			if math.Float64bits(o.WorstIL) != math.Float64bits(lrep.WorstIL) ||
				math.Float64bits(o.WorstSNR) != math.Float64bits(finiteSNR(xrep.WorstSNR)) ||
				math.Float64bits(o.TotalPowerMW) != math.Float64bits(lrep.TotalPowerMW) {
				t.Fatalf("empty-set replay diverged: IL %v vs %v, SNR %v vs %v, P %v vs %v",
					o.WorstIL, lrep.WorstIL, o.WorstSNR, finiteSNR(xrep.WorstSNR), o.TotalPowerMW, lrep.TotalPowerMW)
			}
			if !rep.FullSetSurvives || rep.MinSurvived != len(d.Routes) || rep.MaxLost != 0 {
				t.Fatalf("empty-set report claims degradation: %+v", rep)
			}
		})
	}
}

func TestSingleMRRWithoutSparesLosesOneSignal(t *testing.T) {
	d, plan := synth(t, 0, true)
	scs, err := EnumerateK(Universe(d, []Kind{KindMRR}, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), d, plan, scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullSetSurvives {
		t.Fatal("unprotected design cannot survive MRR failures")
	}
	for _, o := range rep.Outcomes {
		if len(o.Lost) != 1 || o.Survived != len(d.Routes)-1 {
			t.Fatalf("single MRR fault %v lost %d signals", o.Scenario, len(o.Lost))
		}
		if len(o.Promoted) != 0 {
			t.Fatal("no spares exist, nothing can be promoted")
		}
	}
	if rep.MinSurvived != len(d.Routes)-1 || rep.MaxLost != 1 {
		t.Fatalf("min/max = %d/%d", rep.MinSurvived, rep.MaxLost)
	}
	if len(rep.Critical) != len(scs) || rep.Critical[0].Lost != 1 {
		t.Fatalf("critical ranking incomplete: %d entries", len(rep.Critical))
	}
}

// TestFaultTolerantSurvivesAllSingleMRR is the PR acceptance property: a
// k=1 synthesis survives the exhaustive single-MRR universe with zero
// lost signals.
func TestFaultTolerantSurvivesAllSingleMRR(t *testing.T) {
	d, plan := synth(t, 1, true)
	if len(d.SpareRoutes) != len(d.Routes) {
		t.Fatalf("spares %d != routes %d", len(d.SpareRoutes), len(d.Routes))
	}
	scs, err := EnumerateK(Universe(d, []Kind{KindMRR}, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), d, plan, scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullSetSurvives {
		for _, o := range rep.Outcomes {
			if len(o.Lost) > 0 {
				t.Fatalf("fault %v lost %v", o.Scenario, o.Lost)
			}
		}
	}
	if rep.MinSurvived != len(d.Routes) || rep.MaxLost != 0 {
		t.Fatalf("min/max = %d/%d", rep.MinSurvived, rep.MaxLost)
	}
	promotions := 0
	for _, o := range rep.Outcomes {
		promotions += len(o.Promoted)
	}
	if promotions == 0 {
		t.Fatal("no fault ever promoted a spare; universe or replay is broken")
	}
}

func TestSegmentCutsKillArcTraffic(t *testing.T) {
	d, plan := synth(t, 0, true)
	scs, err := EnumerateK(Universe(d, []Kind{KindSegment}, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), d, plan, scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The universe only enumerates segments that carry traffic, so every
	// cut must lose at least one signal on an unprotected design.
	for _, o := range rep.Outcomes {
		if len(o.Lost) == 0 {
			t.Fatalf("cut %v lost nothing", o.Scenario)
		}
	}
}

func TestDetuneDegradesWithoutLoss(t *testing.T) {
	d, plan := synth(t, 0, true)
	lrep, err := loss.Analyze(d, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Detune the nominal worst signal's receiver: IL worsens by exactly
	// the detune penalty, nothing is lost.
	r := d.Routes[lrep.Worst]
	f := Fault{Kind: KindDetune, WG: -1, SC: -1, Sig: lrep.Worst, Role: RoleRx, Edge: -1, DetuneDB: 3}
	if r.Kind == router.OnRing {
		f.WG = r.WG
	} else {
		f.SC = r.SC
	}
	rep, err := Analyze(context.Background(), d, plan, []Scenario{{f}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if len(o.Lost) != 0 || len(o.Detuned) != 1 {
		t.Fatalf("detune outcome: lost=%v detuned=%v", o.Lost, o.Detuned)
	}
	if got, want := o.WorstIL, lrep.WorstIL+3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("detuned worst IL = %v, want %v", got, want)
	}
	if o.DegradationDB < 3-1e-12 {
		t.Fatalf("degradation = %v, want >= 3", o.DegradationDB)
	}
}

// TestParallelMatchesSerial pins the canonical reduction: the parallel
// fan-out must reproduce the serial outcome list bit-for-bit. CI runs
// this under -race to exercise the fan-out for data races.
func TestParallelMatchesSerial(t *testing.T) {
	d, plan := synth(t, 1, true)
	u := Universe(d, []Kind{KindMRR, KindSegment, KindDetune}, 0)
	scs, err := EnumerateK(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Analyze(context.Background(), d, plan, scs, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Analyze(context.Background(), d, plan, scs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel fan-out diverged from serial replay")
	}
}

func TestCombinations(t *testing.T) {
	cases := []struct{ n, k, limit, want int }{
		{6, 2, 100, 15},
		{6, 0, 100, 1},
		{6, 6, 100, 1},
		{6, 7, 100, 0},
		{6, -1, 100, 0},
		{10, 3, 120, 120},       // exactly at the limit: exact count
		{10, 3, 119, 120},       // over the limit: saturates at limit+1
		{1885, 3, 4096, 4097},   // realistic whatif universe, k=3: must saturate, not overflow
		{1 << 30, 5, 4096, 4097}, // huge n: the running product must saturate before overflowing
	}
	for _, c := range cases {
		if got := Combinations(c.n, c.k, c.limit); got != c.want {
			t.Errorf("Combinations(%d, %d, %d) = %d, want %d", c.n, c.k, c.limit, got, c.want)
		}
	}
}

func TestEnumerateAndSample(t *testing.T) {
	d, _ := synth(t, 0, false)
	u := Universe(d, []Kind{KindMRR}, 0)
	if _, err := EnumerateK(u, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := EnumerateK(u, len(u)+1); err == nil {
		t.Fatal("k > |universe| must be rejected")
	}
	pairs, err := EnumerateK(u[:6], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 15 { // C(6,2)
		t.Fatalf("pairs = %d", len(pairs))
	}
	s1, err := SampleK(u, 2, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SampleK(u, 2, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("seeded sampling not deterministic")
	}
	if len(s1) != 10 {
		t.Fatalf("samples = %d", len(s1))
	}
	seen := map[string]bool{}
	for _, sc := range s1 {
		key := ""
		for _, f := range sc {
			key += f.String() + "|"
		}
		if seen[key] {
			t.Fatal("duplicate sampled scenario")
		}
		seen[key] = true
	}
	s3, err := SampleK(u, 2, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical samples")
	}
}
