package faults

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
	"xring/internal/pdn"
	"xring/internal/router"
	"xring/internal/xtalk"
)

var (
	mScenarios    = obs.NewCounter("faults.scenarios")
	mReplays      = obs.NewCounter("faults.replays")
	mNominalReuse = obs.NewCounter("faults.nominal_reuse")
	mSignalsLost  = obs.NewCounter("faults.signals_lost")
)

// Options tunes the survivability analyzer.
type Options struct {
	// Serial disables the parallel scenario fan-out (debugging,
	// determinism audits). Results are bit-identical either way:
	// scenarios are independent and reduced in input order.
	Serial bool
	// OnOutcome, when set, is invoked once per completed scenario, as it
	// completes — from worker goroutines under the parallel fan-out, so
	// it must be safe for concurrent use. The aggregated Report is
	// unaffected; this exists for live progress streaming.
	OnOutcome func(index int, o Outcome)
}

// Outcome is the replay result of one fault scenario.
type Outcome struct {
	// Scenario is the injected fault set.
	Scenario Scenario `json:"scenario"`
	// Lost lists signals with no surviving route, in canonical order.
	Lost []noc.Signal `json:"lost,omitempty"`
	// Promoted lists signals that survived only via their spare route.
	Promoted []noc.Signal `json:"promoted,omitempty"`
	// Detuned lists signals paying extra drop loss from a detuned
	// receiver.
	Detuned []noc.Signal `json:"detuned,omitempty"`
	// Survived counts routable signals under the scenario.
	Survived int `json:"survived"`
	// FullReplay is false when the scenario had no structural or loss
	// effect and the nominal analyses were reused byte-identically.
	FullReplay bool `json:"fullReplay"`
	// WorstIL/WorstSNR/TotalPowerMW are the replayed analysis results
	// over the surviving signal set (zero when nothing survives; a
	// WorstSNR of 0 also stands in for "no crosstalk terms", where the
	// analytic value would be +Inf — unrepresentable in JSON).
	WorstIL      float64 `json:"worstIL"`
	WorstSNR     float64 `json:"worstSNR"`
	TotalPowerMW float64 `json:"totalPowerMW"`
	// DegradationDB is WorstIL minus the nominal worst IL. It can be
	// negative when the nominal worst signal itself was lost.
	DegradationDB float64 `json:"degradationDB"`
}

// CriticalElement ranks a single physical element by the damage its
// lone failure causes.
type CriticalElement struct {
	Element       string  `json:"element"`
	Fault         Fault   `json:"fault"`
	Lost          int     `json:"lost"`
	DegradationDB float64 `json:"degradationDB"`
}

// Report is the survivability summary over a scenario set.
type Report struct {
	// Signals is the nominal signal count.
	Signals int `json:"signals"`
	// Scenarios is the number of replayed fault scenarios.
	Scenarios int `json:"scenarios"`
	// FullSetSurvives is true when every scenario keeps the full signal
	// set routable (the k-fault-tolerance acceptance condition).
	FullSetSurvives bool `json:"fullSetSurvives"`
	// MinSurvived is the smallest surviving signal set over all
	// scenarios; MaxLost the largest loss.
	MinSurvived int `json:"minSurvived"`
	MaxLost     int `json:"maxLost"`
	// Nominal analysis anchors.
	NominalWorstIL  float64 `json:"nominalWorstIL"`
	NominalWorstSNR float64 `json:"nominalWorstSNR"`
	NominalPowerMW  float64 `json:"nominalPowerMW"`
	// WorstIL is the highest surviving-set insertion loss over all
	// scenarios; WorstSNR the lowest SNR; WorstDegradationDB the largest
	// IL degradation versus nominal (0 when no scenario degrades).
	WorstIL            float64 `json:"worstIL"`
	WorstSNR           float64 `json:"worstSNR"`
	WorstDegradationDB float64 `json:"worstDegradationDB"`
	// Critical ranks single-fault elements most-harmful first.
	Critical []CriticalElement `json:"critical,omitempty"`
	// Outcomes holds one entry per scenario, in scenario order.
	Outcomes []Outcome `json:"outcomes"`
}

// MarshalJSON renders fault kinds by wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the wire names produced by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// MarshalJSON renders roles as "tx"/"rx".
func (r Role) MarshalJSON() ([]byte, error) { return json.Marshal(r.String()) }

// UnmarshalJSON parses "tx"/"rx".
func (r *Role) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "tx":
		*r = RoleTx
	case "rx":
		*r = RoleRx
	default:
		return fmt.Errorf("faults: unknown MRR role %q", s)
	}
	return nil
}

// Analyze replays a design under every scenario and aggregates a
// survivability report. plan may be nil for designs without a PDN.
//
// Replays are delta-evaluated: a scenario that perturbs nothing reuses
// the nominal loss/crosstalk reports byte-identically; otherwise only
// the routes promoted onto spares are re-priced (loss.ForRoute) and the
// surviving set is re-summarized before a crosstalk pass over the
// replay design. Replay designs share the nominal geometry, waveguides
// and shortcuts; only the route table differs, with failed signals
// removed and promoted signals rewritten onto their spare routes.
func Analyze(ctx context.Context, d *router.Design, plan *pdn.Plan, scenarios []Scenario, opt Options) (*Report, error) {
	lrep, err := loss.AnalyzeCtx(ctx, d, plan)
	if err != nil {
		return nil, fmt.Errorf("faults: nominal loss analysis: %w", err)
	}
	xrep, err := xtalk.AnalyzeCtx(ctx, d, plan, lrep)
	if err != nil {
		return nil, fmt.Errorf("faults: nominal crosstalk analysis: %w", err)
	}
	banks := loss.NewBanks(d)

	replay := func(i int) (Outcome, error) {
		o, err := replayScenario(ctx, d, plan, banks, lrep, xrep, scenarios[i])
		if err == nil && opt.OnOutcome != nil {
			opt.OnOutcome(i, o)
		}
		return o, err
	}
	var outcomes []Outcome
	if opt.Serial {
		outcomes = make([]Outcome, len(scenarios))
		for i := range scenarios {
			o, err := replay(i)
			if err != nil {
				return nil, err
			}
			outcomes[i] = o
		}
	} else {
		outcomes, err = parallel.Map(ctx, len(scenarios), replay)
		if err != nil {
			return nil, err
		}
	}
	mScenarios.Add(int64(len(scenarios)))

	rep := &Report{
		Signals:         len(d.Routes),
		Scenarios:       len(scenarios),
		FullSetSurvives: true,
		MinSurvived:     len(d.Routes),
		NominalWorstIL:  lrep.WorstIL,
		NominalWorstSNR: xrep.WorstSNR,
		NominalPowerMW:  lrep.TotalPowerMW,
		WorstIL:         lrep.WorstIL,
		WorstSNR:        xrep.WorstSNR,
		Outcomes:        outcomes,
	}
	for i := range outcomes {
		o := &outcomes[i]
		if len(o.Lost) > 0 {
			rep.FullSetSurvives = false
			mSignalsLost.Add(int64(len(o.Lost)))
		}
		if o.Survived < rep.MinSurvived {
			rep.MinSurvived = o.Survived
		}
		if len(o.Lost) > rep.MaxLost {
			rep.MaxLost = len(o.Lost)
		}
		if o.Survived > 0 {
			if o.WorstIL > rep.WorstIL {
				rep.WorstIL = o.WorstIL
			}
			if o.WorstSNR < rep.WorstSNR {
				rep.WorstSNR = o.WorstSNR
			}
			if o.DegradationDB > rep.WorstDegradationDB {
				rep.WorstDegradationDB = o.DegradationDB
			}
		}
	}
	rep.Critical = rankCritical(outcomes)
	// Aggregation runs on the analytic values; non-finite SNRs (a design
	// with no crosstalk terms reports +Inf) are flattened to 0 only now,
	// so the min-over-scenarios above still prefers any finite value.
	rep.NominalWorstSNR = finiteSNR(rep.NominalWorstSNR)
	rep.WorstSNR = finiteSNR(rep.WorstSNR)
	for i := range rep.Outcomes {
		rep.Outcomes[i].WorstSNR = finiteSNR(rep.Outcomes[i].WorstSNR)
	}
	return rep, nil
}

// finiteSNR maps the analyzer's +Inf "no crosstalk terms" SNR (and any
// NaN) to 0, the same convention the service summary uses — JSON cannot
// carry non-finite floats.
func finiteSNR(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// rankCritical orders single-fault scenarios most-harmful first: by
// signals lost, then IL degradation, then universe order (stable).
func rankCritical(outcomes []Outcome) []CriticalElement {
	var ce []CriticalElement
	for i := range outcomes {
		o := &outcomes[i]
		if len(o.Scenario) != 1 {
			continue
		}
		ce = append(ce, CriticalElement{
			Element:       o.Scenario[0].String(),
			Fault:         o.Scenario[0],
			Lost:          len(o.Lost),
			DegradationDB: o.DegradationDB,
		})
	}
	sort.SliceStable(ce, func(i, j int) bool {
		if ce[i].Lost != ce[j].Lost {
			return ce[i].Lost > ce[j].Lost
		}
		return ce[i].DegradationDB > ce[j].DegradationDB
	})
	return ce
}

// replayScenario evaluates one fault set against the design.
func replayScenario(ctx context.Context, d *router.Design, plan *pdn.Plan, banks *loss.Banks,
	lrep *loss.Report, xrep *xtalk.Report, sc Scenario) (Outcome, error) {
	deadPrimary := map[noc.Signal]bool{}
	deadSpare := map[noc.Signal]bool{}
	var detunes []Fault
	for _, f := range sc {
		switch f.Kind {
		case KindMRR:
			killChannel(d, f.WG, f.SC, f.Sig, deadPrimary, deadSpare)
		case KindSegment:
			killSegment(d, f, deadPrimary, deadSpare)
		case KindDetune:
			detunes = append(detunes, f)
		}
	}

	// Resolve final routes: primary if alive, else the spare (promotion),
	// else lost.
	final := map[noc.Signal]*router.Route{}
	var lost, promoted []noc.Signal
	for sig, r := range d.Routes {
		switch {
		case !deadPrimary[sig]:
			final[sig] = r
		case d.SpareRoutes[sig] != nil && !deadSpare[sig]:
			final[sig] = d.SpareRoutes[sig]
			promoted = append(promoted, sig)
		default:
			lost = append(lost, sig)
		}
	}
	sortSignals(lost)
	sortSignals(promoted)

	// A detune only bites when it targets the channel the signal ends up
	// using after promotion.
	detuneDB := map[noc.Signal]float64{}
	for _, f := range detunes {
		r := final[f.Sig]
		if r == nil {
			continue
		}
		if (r.Kind == router.OnRing && f.WG == r.WG) || (r.Kind == router.OnShortcut && f.SC == r.SC) {
			detuneDB[f.Sig] += f.DetuneDB
		}
	}
	var detuned []noc.Signal
	for sig := range detuneDB {
		detuned = append(detuned, sig)
	}
	sortSignals(detuned)

	out := Outcome{
		Scenario: sc,
		Lost:     lost,
		Promoted: promoted,
		Detuned:  detuned,
		Survived: len(final),
	}
	if len(lost) == 0 && len(promoted) == 0 && len(detuned) == 0 {
		// No structural or loss effect: the nominal analyses hold
		// byte-identically.
		mNominalReuse.Inc()
		out.WorstIL = lrep.WorstIL
		out.WorstSNR = xrep.WorstSNR
		out.TotalPowerMW = lrep.TotalPowerMW
		return out, nil
	}
	mReplays.Inc()
	if len(final) == 0 {
		// Nothing survives: there is no surviving-set analysis to run.
		out.FullReplay = true
		return out, nil
	}

	rd, err := replayDesign(d, final)
	if err != nil {
		return Outcome{}, err
	}
	sigs := make([]noc.Signal, 0, len(final))
	for sig := range final {
		sigs = append(sigs, sig)
	}
	sortSignals(sigs)
	losses := make([]*loss.SignalLoss, len(sigs))
	for i, sig := range sigs {
		r := final[sig]
		sl := lrep.Signals[sig]
		if r != d.Routes[sig] {
			// Promoted onto the spare: price the protection route.
			sl, err = loss.ForRoute(rd, banks, plan, sig, r)
			if err != nil {
				return Outcome{}, fmt.Errorf("faults: pricing spare route for %v: %w", sig, err)
			}
		}
		if db := detuneDB[sig]; db > 0 {
			cp := *sl
			cp.IL += db
			sl = &cp
		}
		losses[i] = sl
	}
	lrep2 := loss.Summarize(rd, sigs, losses)
	xrep2, err := xtalk.AnalyzeCtx(ctx, rd, plan, lrep2)
	if err != nil {
		return Outcome{}, fmt.Errorf("faults: replay crosstalk analysis: %w", err)
	}
	out.FullReplay = true
	out.WorstIL = lrep2.WorstIL
	out.WorstSNR = xrep2.WorstSNR
	out.TotalPowerMW = lrep2.TotalPowerMW
	out.DegradationDB = lrep2.WorstIL - lrep.WorstIL
	return out, nil
}

// killChannel marks the channel (element container, sig) dead in
// whichever route table owns it.
func killChannel(d *router.Design, wg, sc int, sig noc.Signal, deadPrimary, deadSpare map[noc.Signal]bool) {
	if wg >= 0 {
		if r := d.Routes[sig]; r != nil && r.Kind == router.OnRing && r.WG == wg {
			deadPrimary[sig] = true
		}
		if r := d.SpareRoutes[sig]; r != nil && r.WG == wg {
			deadSpare[sig] = true
		}
		return
	}
	if r := d.Routes[sig]; r != nil && r.Kind == router.OnShortcut && r.SC == sc {
		deadPrimary[sig] = true
	}
}

// killSegment kills every channel whose physical path traverses the cut.
func killSegment(d *router.Design, f Fault, deadPrimary, deadSpare map[noc.Signal]bool) {
	if f.WG >= 0 {
		w := d.Waveguides[f.WG]
		for _, c := range w.Channels {
			if arcCoversEdge(d, c.Sig, w.Dir, f.Edge) {
				killChannel(d, f.WG, -1, c.Sig, deadPrimary, deadSpare)
			}
		}
		return
	}
	s := d.Shortcuts[f.SC]
	for _, c := range s.Channels {
		killChannel(d, -1, f.SC, c.Sig, deadPrimary, deadSpare)
	}
	// CSE traffic entering on the partner exits through this shortcut, so
	// the cut severs it too.
	if s.Partner >= 0 {
		for _, c := range d.Shortcuts[s.Partner].Channels {
			if c.ViaCSE {
				killChannel(d, -1, s.Partner, c.Sig, deadPrimary, deadSpare)
			}
		}
	}
}

// replayDesign builds a lightweight clone sharing the nominal geometry,
// waveguide and shortcut structures, carrying only the post-fault route
// table. Clones are analysis inputs, never validated or serialized.
func replayDesign(d *router.Design, final map[noc.Signal]*router.Route) (*router.Design, error) {
	rd, err := router.NewDesign(d.Net, d.Par, d.Tour, d.EdgeOrders)
	if err != nil {
		return nil, fmt.Errorf("faults: replay design: %w", err)
	}
	rd.Waveguides = d.Waveguides
	rd.Shortcuts = d.Shortcuts
	rd.MaxWL = d.MaxWL
	rd.Routes = final
	return rd, nil
}

func sortSignals(sigs []noc.Signal) {
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].Src != sigs[j].Src {
			return sigs[i].Src < sigs[j].Src
		}
		return sigs[i].Dst < sigs[j].Dst
	})
}
