// Package faults defines deterministic physical-fault universes over a
// synthesized design — MRR failures, waveguide-segment cuts, detuned
// receiver rings — and a survivability analyzer that replays the design
// under each fault scenario, recomputing routability, insertion loss and
// SNR through the existing loss/xtalk kernels.
//
// The fault model is structural: a failed MRR stays physically present
// on its waveguide (an off-resonance ring still contributes its passive
// through loss), it just can no longer modulate or drop its channel, so
// the channel is dead. A segment cut kills every channel whose arc
// traverses the cut tour edge of that waveguide; a cut shortcut kills
// all traffic riding it (including CSE traffic entering on its partner).
// A detuned receiver keeps its channel routable but adds DetuneDB of
// drop loss to the victim signal.
//
// Universes, enumeration and seeded sampling are all deterministic:
// equal inputs produce equal fault lists in equal order, which is what
// makes whatif replays cacheable and CI-assertable.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"xring/internal/noc"
	"xring/internal/router"
)

// Kind classifies a physical fault.
type Kind int

const (
	// KindMRR is a dead microring (modulator or receiver): its channel
	// can no longer be sent or dropped.
	KindMRR Kind = iota
	// KindSegment is a waveguide cut: a tour edge of a ring waveguide,
	// or a whole shortcut.
	KindSegment
	// KindDetune is a thermally detuned receiver ring: the channel stays
	// up but pays DetuneDB of extra drop loss.
	KindDetune
)

func (k Kind) String() string {
	switch k {
	case KindMRR:
		return "mrr"
	case KindSegment:
		return "segment"
	case KindDetune:
		return "detune"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps the wire names ("mrr", "segment", "detune") back to a
// Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "mrr":
		return KindMRR, nil
	case "segment":
		return KindSegment, nil
	case "detune":
		return KindDetune, nil
	default:
		return 0, fmt.Errorf("faults: unknown fault kind %q", s)
	}
}

// Role distinguishes the two MRRs of a channel.
type Role int

const (
	// RoleTx is the modulator at the channel's source.
	RoleTx Role = iota
	// RoleRx is the receiver MRR at the channel's destination.
	RoleRx
)

func (r Role) String() string {
	if r == RoleTx {
		return "tx"
	}
	return "rx"
}

// Fault identifies one failed physical element of a design.
type Fault struct {
	Kind Kind `json:"kind"`
	// WG is the ring waveguide index carrying the element, or -1.
	WG int `json:"wg"`
	// SC is the shortcut index carrying the element, or -1. Exactly one
	// of WG/SC is >= 0 except for ring-segment faults, which use WG+Edge.
	SC int `json:"sc"`
	// Sig is the channel the element belongs to (MRR and detune faults).
	Sig noc.Signal `json:"sig"`
	// Role picks the modulator or receiver MRR of the channel.
	Role Role `json:"role"`
	// Edge is the cut tour-edge index for ring-segment faults, -1
	// otherwise. Edge i is the span Tour[i] -> Tour[i+1].
	Edge int `json:"edge"`
	// DetuneDB is the extra drop loss of a detuned receiver (detune
	// faults only).
	DetuneDB float64 `json:"detuneDB,omitempty"`
}

// String renders a stable human-readable element label, used in SSE
// events and critical-element rankings.
func (f Fault) String() string {
	switch f.Kind {
	case KindMRR:
		if f.SC >= 0 {
			return fmt.Sprintf("mrr/%s sc%d %d->%d", f.Role, f.SC, f.Sig.Src, f.Sig.Dst)
		}
		return fmt.Sprintf("mrr/%s wg%d %d->%d", f.Role, f.WG, f.Sig.Src, f.Sig.Dst)
	case KindSegment:
		if f.SC >= 0 {
			return fmt.Sprintf("cut sc%d", f.SC)
		}
		return fmt.Sprintf("cut wg%d edge%d", f.WG, f.Edge)
	case KindDetune:
		if f.SC >= 0 {
			return fmt.Sprintf("detune sc%d %d->%d", f.SC, f.Sig.Src, f.Sig.Dst)
		}
		return fmt.Sprintf("detune wg%d %d->%d", f.WG, f.Sig.Src, f.Sig.Dst)
	default:
		return fmt.Sprintf("fault(%d)", int(f.Kind))
	}
}

// DefaultDetuneDB is the extra drop loss assumed for a detuned receiver
// when the caller does not specify one.
const DefaultDetuneDB = 3.0

// Universe enumerates every distinct fault of the given kinds over a
// design, in deterministic order: MRRs first (waveguides in ID order,
// channels in assignment order, Tx before Rx; then shortcuts likewise),
// then segment cuts (only segments whose failure can kill at least one
// channel), then receiver detunes. detuneDB <= 0 selects
// DefaultDetuneDB.
func Universe(d *router.Design, kinds []Kind, detuneDB float64) []Fault {
	if detuneDB <= 0 {
		detuneDB = DefaultDetuneDB
	}
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Fault
	if want[KindMRR] {
		for _, w := range d.Waveguides {
			for _, c := range w.Channels {
				out = append(out,
					Fault{Kind: KindMRR, WG: w.ID, SC: -1, Sig: c.Sig, Role: RoleTx, Edge: -1},
					Fault{Kind: KindMRR, WG: w.ID, SC: -1, Sig: c.Sig, Role: RoleRx, Edge: -1})
			}
		}
		for si, s := range d.Shortcuts {
			for _, c := range s.Channels {
				out = append(out,
					Fault{Kind: KindMRR, WG: -1, SC: si, Sig: c.Sig, Role: RoleTx, Edge: -1},
					Fault{Kind: KindMRR, WG: -1, SC: si, Sig: c.Sig, Role: RoleRx, Edge: -1})
			}
		}
	}
	if want[KindSegment] {
		for _, w := range d.Waveguides {
			for e := 0; e < d.N(); e++ {
				hit := false
				for _, c := range w.Channels {
					if arcCoversEdge(d, c.Sig, w.Dir, e) {
						hit = true
						break
					}
				}
				if hit {
					out = append(out, Fault{Kind: KindSegment, WG: w.ID, SC: -1, Edge: e})
				}
			}
		}
		for si, s := range d.Shortcuts {
			if len(s.Channels) > 0 || (s.Partner >= 0 && len(d.Shortcuts[s.Partner].Channels) > 0) {
				out = append(out, Fault{Kind: KindSegment, WG: -1, SC: si, Edge: -1})
			}
		}
	}
	if want[KindDetune] {
		for _, w := range d.Waveguides {
			for _, c := range w.Channels {
				out = append(out, Fault{Kind: KindDetune, WG: w.ID, SC: -1, Sig: c.Sig,
					Role: RoleRx, Edge: -1, DetuneDB: detuneDB})
			}
		}
		for si, s := range d.Shortcuts {
			for _, c := range s.Channels {
				out = append(out, Fault{Kind: KindDetune, WG: -1, SC: si, Sig: c.Sig,
					Role: RoleRx, Edge: -1, DetuneDB: detuneDB})
			}
		}
	}
	return out
}

// arcCoversEdge reports whether a signal's arc in direction dir
// traverses tour edge e.
func arcCoversEdge(d *router.Design, sig noc.Signal, dir router.Direction, e int) bool {
	n := d.N()
	si, di := d.TourPos(sig.Src), d.TourPos(sig.Dst)
	step := 1
	if dir == router.CCW {
		step = n - 1
	}
	for i := si; i != di; i = (i + step) % n {
		edge := i
		if dir == router.CCW {
			edge = (i + n - 1) % n
		}
		if edge == e {
			return true
		}
	}
	return false
}

// Scenario is one replay: a set of simultaneous faults.
type Scenario []Fault

// Combinations returns the binomial count C(n, k), saturating at
// limit+1 as soon as the running product exceeds limit. Callers bound
// an enumeration (count > limit means "too many") without ever
// materializing it or overflowing on large universes.
func Combinations(n, k, limit int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > limit {
			return limit + 1
		}
	}
	return c
}

// EnumerateK expands a universe into every size-k fault combination, in
// lexicographic index order. k=1 yields the exhaustive single-fault set.
func EnumerateK(universe []Fault, k int) ([]Scenario, error) {
	if k < 1 {
		return nil, fmt.Errorf("faults: k must be >= 1, got %d", k)
	}
	if k > len(universe) {
		return nil, fmt.Errorf("faults: k=%d exceeds universe size %d", k, len(universe))
	}
	var out []Scenario
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		sc := make(Scenario, k)
		for i, j := range idx {
			sc[i] = universe[j]
		}
		out = append(out, sc)
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == len(universe)-k+i {
			i--
		}
		if i < 0 {
			return out, nil
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// SampleK draws up to n distinct size-k fault combinations with a
// seeded deterministic PRNG: equal (universe, k, n, seed) inputs yield
// equal scenario lists. Fewer than n scenarios are returned when the
// universe cannot supply enough distinct combinations within the
// attempt budget.
func SampleK(universe []Fault, k, n int, seed int64) ([]Scenario, error) {
	if k < 1 {
		return nil, fmt.Errorf("faults: k must be >= 1, got %d", k)
	}
	if k > len(universe) {
		return nil, fmt.Errorf("faults: k=%d exceeds universe size %d", k, len(universe))
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out []Scenario
	for attempts := 0; len(out) < n && attempts < 4*n+16; attempts++ {
		pick := rng.Perm(len(universe))[:k]
		sort.Ints(pick)
		key := fmt.Sprint(pick)
		if seen[key] {
			continue
		}
		seen[key] = true
		sc := make(Scenario, k)
		for i, j := range pick {
			sc[i] = universe[j]
		}
		out = append(out, sc)
	}
	return out, nil
}
