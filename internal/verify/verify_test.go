package verify

import (
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
	"xring/internal/router"
)

func TestRunCleanDesignPasses(t *testing.T) {
	net := noc.Floorplan16()
	res, err := core.Synthesize(net, core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(res.Design, res.Plan, res.Loss, Options{
		RingCircumferenceUM: 30, GroupIndex: 4.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		for _, c := range rep.Checks {
			if !c.Passed {
				t.Errorf("FAILED %s: %s", c.Name, c.Detail)
			}
		}
		t.Fatalf("%d checks failed", rep.Failed)
	}
	// Every named check present, none skipped for this configuration
	// except possibly radial geometry when single pair.
	names := map[string]bool{}
	for _, c := range rep.Checks {
		names[c.Name] = true
	}
	for _, want := range []string{"structure", "tour-bound", "channel-bound",
		"laser-coverage", "crossing-free-pdn", "openings", "fsr-capacity"} {
		if !names[want] {
			t.Fatalf("missing check %q", want)
		}
	}
}

func TestRunCatchesBrokenDesign(t *testing.T) {
	net := noc.Floorplan8()
	res, err := core.Synthesize(net, core.Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: give two same-wavelength colliding channels.
	d := res.Design
	w := d.Waveguides[0]
	if len(w.Channels) == 0 {
		t.Skip("no channels on first waveguide")
	}
	c := w.Channels[0]
	bad := router.Channel{Sig: noc.Signal{Src: c.Sig.Dst, Dst: c.Sig.Src}, WL: c.WL}
	// Craft an overlapping same-λ channel by reusing the same dst.
	bad.Sig = noc.Signal{Src: (c.Sig.Src + 1) % 8, Dst: c.Sig.Dst}
	if bad.Sig.Src == bad.Sig.Dst {
		bad.Sig.Src = (bad.Sig.Src + 1) % 8
	}
	w.Channels = append(w.Channels, bad)
	d.Routes[bad.Sig] = &router.Route{Sig: bad.Sig, Kind: router.OnRing, WG: 0, WL: c.WL}

	rep, err := Run(d, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 || rep.Checks[0].Name != "structure" || rep.Checks[0].Passed {
		t.Fatal("corrupted design must fail the structure check")
	}
	// Subsequent checks are suppressed.
	if len(rep.Checks) != 1 {
		t.Fatalf("expected only the structure check, got %d", len(rep.Checks))
	}
}

func TestRunFSRViolation(t *testing.T) {
	net := noc.Floorplan16()
	res, err := core.Synthesize(net, core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	// 400 µm rings: FSR too small for 14 wavelengths at 100 GHz.
	rep, err := Run(res.Design, res.Plan, res.Loss, Options{
		RingCircumferenceUM: 400, GroupIndex: 4.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range rep.Checks {
		if c.Name == "fsr-capacity" && !c.Passed {
			found = true
		}
	}
	if !found {
		t.Fatal("expected an FSR capacity failure for 400 µm rings")
	}
}

func TestRunNoPDNSkips(t *testing.T) {
	net := noc.Floorplan8()
	res, err := core.Synthesize(net, core.Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(res.Design, nil, res.Loss, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if c.Name == "crossing-free-pdn" && !c.Skipped {
			t.Fatal("PDN check should be skipped without a plan")
		}
		if c.Name == "fsr-capacity" && !c.Skipped {
			t.Fatal("FSR check should be skipped without parameters")
		}
	}
	if rep.Failed != 0 {
		t.Fatalf("%d unexpected failures", rep.Failed)
	}
}
