// Package verify is the signoff suite: it runs every independent check
// the repository can make against a synthesized design — the
// structural validator, the Held-Karp tour bound, the radial-geometry
// identity, channel-packing bounds, laser-power coverage, FSR capacity
// and the crossing-free PDN claims — and reports them DRC-style. It
// exists so that a design (fresh or reloaded from disk) can be audited
// without trusting the code that produced it.
package verify

import (
	"fmt"
	"math"

	"xring/internal/geom"
	"xring/internal/loss"
	"xring/internal/pdn"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/spectral"
)

// Check is one verification outcome.
type Check struct {
	Name   string
	Passed bool
	// Skipped marks checks that do not apply to this design (their
	// Passed is true).
	Skipped bool
	Detail  string
}

// Report is the full signoff result.
type Report struct {
	Checks []Check
	// Failed counts non-skipped failures.
	Failed int
}

func (r *Report) add(name string, passed bool, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Passed: passed, Detail: detail})
	if !passed {
		r.Failed++
	}
}

func (r *Report) skip(name, detail string) {
	r.Checks = append(r.Checks, Check{Name: name, Passed: true, Skipped: true, Detail: detail})
}

// Options configures the optional physical checks.
type Options struct {
	// RingCircumferenceUM and GroupIndex parameterize the FSR capacity
	// check (zero values skip it).
	RingCircumferenceUM float64
	GroupIndex          float64
	// ChannelSpacingGHz for the FSR check (default 100).
	ChannelSpacingGHz float64
}

// Run audits a design. plan may be nil; lrep may be nil (it is then
// recomputed).
func Run(d *router.Design, plan *pdn.Plan, lrep *loss.Report, opt Options) (*Report, error) {
	rep := &Report{}

	// 1. Structural DRC: the validator.
	if err := d.Validate(); err != nil {
		rep.add("structure", false, err.Error())
		return rep, nil // everything else is meaningless on a broken design
	}
	rep.add("structure", true,
		fmt.Sprintf("%d waveguides, %d shortcuts, %d routes", len(d.Waveguides), len(d.Shortcuts), len(d.Routes)))

	// 2. Tour optimality bound (Held-Karp, small N only).
	if d.N() <= 16 {
		hk, err := ring.HeldKarp(d.Net)
		if err == nil {
			ok := d.Perimeter() >= hk-1e-9
			rep.add("tour-bound", ok,
				fmt.Sprintf("tour %.2f mm vs Held-Karp optimum %.2f mm (ratio %.3f)",
					d.Perimeter(), hk, d.Perimeter()/hk))
		} else {
			rep.skip("tour-bound", err.Error())
		}
	} else {
		rep.skip("tour-bound", fmt.Sprintf("N=%d above the Held-Karp limit", d.N()))
	}

	// 3. Radial-geometry identity: RadialScale equals the geometric
	// offset perimeter where the offset is constructible.
	ringPl := d.RingPolyline()
	cycle := geom.CompactRectilinear(ringPl[:len(ringPl)-1])
	spacing := d.Par.RingSpacingMM(d.N())
	maxPair := 0
	for _, w := range d.Waveguides {
		if w.Radial/2 > maxPair {
			maxPair = w.Radial / 2
		}
	}
	if maxPair == 0 {
		rep.skip("radial-geometry", "single ring pair")
	} else {
		checked, ok, detail := 0, true, ""
		for k := 1; k <= maxPair; k++ {
			off, err := geom.OffsetRectilinear(cycle, spacing*float64(k))
			if err != nil {
				detail = fmt.Sprintf("offset %d not constructible (%v); checked %d", k, err, checked)
				break
			}
			want := geom.PolygonPerimeter(off)
			got := d.Perimeter() + 8*spacing*float64(k)
			if math.Abs(got-want) > 1e-6 {
				ok = false
				detail = fmt.Sprintf("pair %d: model %.4f mm vs geometry %.4f mm", k, got, want)
				break
			}
			checked++
		}
		if detail == "" {
			detail = fmt.Sprintf("%d offset pairs match the +8d identity", checked)
		}
		rep.add("radial-geometry", ok, detail)
	}

	// 4. Channel-packing bound: consumed slots cannot be below the
	// max-cut load.
	bound := maxCutLoad(d)
	slots := len(d.Waveguides) * d.MaxWL
	if d.MaxWL == 0 {
		rep.skip("channel-bound", "design has no #wl budget recorded")
	} else {
		ok := slots >= bound
		rep.add("channel-bound", ok,
			fmt.Sprintf("max-cut load %d vs %d slots (%d waveguides x #wl %d)",
				bound, slots, len(d.Waveguides), d.MaxWL))
	}

	// 5. Laser-power coverage.
	if lrep == nil {
		var err error
		lrep, err = loss.Analyze(d, plan)
		if err != nil {
			return nil, err
		}
	}
	under := 0
	for _, sl := range lrep.Signals {
		req := math.Pow(10, (sl.IL+sl.PDNLoss+d.Par.ReceiverSensitivityDBm)/10)
		if req > lrep.WavelengthPower[sl.WL]+1e-12 {
			under++
		}
	}
	rep.add("laser-coverage", under == 0,
		fmt.Sprintf("%d of %d signals underpowered", under, len(lrep.Signals)))

	// 6. Crossing-free claims for tree-PDN designs.
	if plan != nil && plan.Kind == pdn.Tree {
		ok := plan.CrossingsAdded == 0 && d.TotalCrossings() == countCSE(d)
		rep.add("crossing-free-pdn", ok,
			fmt.Sprintf("PDN crossings %d, design crossings %d (CSE %d)",
				plan.CrossingsAdded, d.TotalCrossings(), countCSE(d)))
		allOpen := true
		for _, w := range d.Waveguides {
			if w.Opening < 0 {
				allOpen = false
			}
		}
		rep.add("openings", allOpen, "every ring waveguide opened for the PDN")
	} else {
		rep.skip("crossing-free-pdn", "no tree PDN attached")
	}

	// 7. FSR capacity.
	if opt.RingCircumferenceUM > 0 && opt.GroupIndex > 0 {
		sp := opt.ChannelSpacingGHz
		if sp == 0 {
			sp = 100
		}
		p := spectral.Params{Q: 9000, Grid: spectral.Grid{CenterTHz: 193.4, SpacingGHz: sp}}
		capacity, err := spectral.CheckWavelengthCapacity(d, p, opt.RingCircumferenceUM, opt.GroupIndex)
		detail := fmt.Sprintf("%d wavelengths in a %d-channel FSR", d.WavelengthsUsed(), capacity)
		if err != nil {
			detail = err.Error()
		}
		rep.add("fsr-capacity", err == nil, detail)
	} else {
		rep.skip("fsr-capacity", "no ring circumference supplied")
	}

	return rep, nil
}

func countCSE(d *router.Design) int {
	n := 0
	for i, s := range d.Shortcuts {
		if s.Partner > i {
			n++
		}
	}
	return n
}

// maxCutLoad mirrors the mapping package's channel lower bound without
// importing it (verify must stay independent of the synthesis path).
func maxCutLoad(d *router.Design) int {
	n := d.N()
	best := 0
	for _, dir := range [2]router.Direction{router.CW, router.CCW} {
		load := make([]int, n)
		for _, w := range d.Waveguides {
			if w.Dir != dir {
				continue
			}
			for _, c := range w.Channels {
				si := d.TourPos(c.Sig.Src)
				di := d.TourPos(c.Sig.Dst)
				step := 1
				if dir == router.CCW {
					step = n - 1
				}
				for i := si; i != di; i = (i + step) % n {
					e := i
					if dir == router.CCW {
						e = (i + n - 1) % n
					}
					load[e]++
				}
			}
		}
		for _, l := range load {
			if l > best {
				best = l
			}
		}
	}
	return best
}
