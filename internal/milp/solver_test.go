package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"xring/internal/parallel"
)

// ringLikeModel builds an assignment-structured model in the shape of
// the paper's ring construction — two exactly-one rows per node over a
// shared n×(n-1) variable grid, pairwise conflicts, integer (tie-heavy)
// objectives — too large for SolveBrute but exactly the family the
// parallel mode must stay deterministic on.
func ringLikeModel(rng *rand.Rand, n int) *Model {
	m := NewModel()
	vars := make(map[[2]int]Var)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.Binary("b")
			m.SetObjectiveCoef(v, float64(1+rng.Intn(5)))
			vars[[2]int{i, j}] = v
		}
	}
	for i := 0; i < n; i++ {
		var out, in []Var
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			out = append(out, vars[[2]int{i, j}])
			in = append(in, vars[[2]int{j, i}])
		}
		m.ExactlyOne("out", out...)
		m.ExactlyOne("in", in...)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.AtMostOne("no2cyc", vars[[2]int{i, j}], vars[[2]int{j, i}])
		}
	}
	for k := 0; k < 2*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		p, q := rng.Intn(n), rng.Intn(n)
		if i == j || p == q || (i == p && j == q) {
			continue
		}
		m.AtMostOne("conf", vars[[2]int{i, j}], vars[[2]int{p, q}])
	}
	return m
}

// TestParallelMatchesSerialBitIdentical is the parallel determinism
// contract: a completed parallel solve must return the same bytes as
// the serial solve of the same model — identical Values, bit-identical
// Objective — across worker-pool sizes. Run with -race in CI.
func TestParallelMatchesSerialBitIdentical(t *testing.T) {
	defer parallel.SetWorkers(0)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		m := ringLikeModel(rng, 5+trial%3)
		parallel.SetWorkers(0)
		serial, errS := Solve(m, Options{})
		for _, workers := range []int{1, 2, 0} {
			parallel.SetWorkers(workers)
			par, errP := Solve(m, Options{Parallel: true})
			if (errS == nil) != (errP == nil) {
				t.Fatalf("trial %d workers=%d: serial err=%v parallel err=%v", trial, workers, errS, errP)
			}
			if errS != nil {
				if !errors.Is(errP, ErrInfeasible) {
					t.Fatalf("trial %d workers=%d: unexpected error class %v", trial, workers, errP)
				}
				continue
			}
			if math.Float64bits(serial.Objective) != math.Float64bits(par.Objective) {
				t.Fatalf("trial %d workers=%d: objective %v != %v", trial, workers, serial.Objective, par.Objective)
			}
			if len(serial.Values) != len(par.Values) {
				t.Fatalf("trial %d workers=%d: value lengths differ", trial, workers)
			}
			for i := range serial.Values {
				if serial.Values[i] != par.Values[i] {
					t.Fatalf("trial %d workers=%d: values diverge at var %d", trial, workers, i)
				}
			}
			if !serial.Optimal || !par.Optimal {
				t.Fatalf("trial %d workers=%d: expected optimal solves", trial, workers)
			}
		}
	}
}

// TestRepeatedSolvesIdentical pins run-to-run determinism of a single
// mode against itself (the shared-incumbent races must never leak into
// the returned solution).
func TestRepeatedSolvesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := ringLikeModel(rng, 7)
	first, err := Solve(m, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := Solve(m, Options{Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(first.Objective) != math.Float64bits(again.Objective) {
			t.Fatalf("run %d: objective changed", run)
		}
		for i := range first.Values {
			if first.Values[i] != again.Values[i] {
				t.Fatalf("run %d: values diverge at var %d", run, i)
			}
		}
	}
}

// TestWarmStartSurvivesBudget: with the node budget exhausted a
// hint-less solve fails with ErrBudget, but a feasible IncumbentHint
// turns the same solve into a usable (non-optimal) solution — the
// mechanism core relies on to retry degraded floorplans.
func TestWarmStartSurvivesBudget(t *testing.T) {
	m := NewModel()
	var vars []Var
	for i := 0; i < 12; i++ {
		v := m.Binary("v")
		m.SetObjectiveCoef(v, float64(i%5))
		vars = append(vars, v)
	}
	for i := 0; i < 12; i += 3 {
		m.ExactlyOne("g", vars[i], vars[i+1], vars[i+2])
	}
	if _, err := Solve(m, Options{MaxNodes: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	hint := make([]bool, m.NumVars())
	for i := 0; i < 12; i += 3 {
		hint[i] = true
	}
	sol, err := Solve(m, Options{MaxNodes: 1, IncumbentHint: hint})
	if err != nil {
		t.Fatalf("warm-started budget solve failed: %v", err)
	}
	if sol.Optimal {
		t.Fatal("budget-capped solve must not claim optimality")
	}
	if !sol.WarmStarted {
		t.Fatal("hint not reported as warm start")
	}
	if _, ok := m.Check(sol.Values); !ok {
		t.Fatal("warm-started solution infeasible")
	}
}

// TestSolverStats sanity-checks the new Solution counters.
func TestSolverStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ringLikeModel(rng, 6)
	serial, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Nodes <= 0 || serial.Subproblems != 1 {
		t.Fatalf("serial stats: %+v", serial)
	}
	if serial.Propagated == 0 {
		t.Fatal("propagating solver reported zero propagated fixings on a conflict-heavy model")
	}
	if serial.Incumbents == 0 {
		t.Fatal("a feasible solve must record at least one incumbent")
	}
	par, err := Solve(m, Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if par.Subproblems < 2 {
		t.Fatalf("parallel solve decomposed into %d subproblems", par.Subproblems)
	}
}

// TestDominanceChains: interchangeable columns must be detected and the
// solver must still return an optimum over the full (unrestricted)
// solution space.
func TestDominanceChains(t *testing.T) {
	m := NewModel()
	a := m.Binary("a") // identical columns: same single group membership
	b := m.Binary("b")
	c := m.Binary("c")
	m.SetObjectiveCoef(a, 5)
	m.SetObjectiveCoef(b, 1)
	m.SetObjectiveCoef(c, 5)
	m.ExactlyOne("pick", a, b, c)
	comp := compile(m)
	// Chain sorted by objective then index: b -> a -> c.
	if comp.domSucc[b] != int32(a) || comp.domSucc[a] != int32(c) || comp.domPred[c] != int32(a) {
		t.Fatalf("dominance chain wrong: succ=%v pred=%v", comp.domSucc, comp.domPred)
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 1 || !sol.Value(b) {
		t.Fatalf("got %+v", sol)
	}
}

// TestZeroObjectiveFeasibility mirrors the mapping colorability use of
// the solver: pure feasibility models with an all-zero objective.
func TestZeroObjectiveFeasibility(t *testing.T) {
	m := NewModel()
	a, b, c := m.Binary("a"), m.Binary("b"), m.Binary("c")
	m.ExactlyOne("g1", a, b)
	m.AtMostOne("conf", b, c)
	m.AddConstraint("need-c", []Term{{c, 1}}, GE, 1)
	for _, cfg := range solveConfigs {
		sol, err := Solve(m, cfg.opt)
		if err != nil {
			t.Fatalf("[%s] %v", cfg.name, err)
		}
		if !sol.Value(a) || sol.Value(b) || !sol.Value(c) {
			t.Fatalf("[%s] got %+v", cfg.name, sol.Values)
		}
	}
}
