package milp

import (
	"fmt"
	"math"
	"sort"
)

// SolveBaseline is the pre-overhaul depth-first branch-and-bound,
// preserved verbatim as a reference implementation. It exists for two
// reasons: the benchmark-regression harness (`xbench -solver`) measures
// the propagating solver against it, and the property tests use it as a
// second exact oracle next to SolveBrute on models too large to
// enumerate. New code should call Solve.
func SolveBaseline(m *Model, opt Options) (*Solution, error) {
	s := &baseSolver{
		m:        m,
		opt:      opt,
		fixed:    make([]int8, m.NumVars()),
		obj:      m.obj,
		best:     math.Inf(1),
		maxNodes: opt.MaxNodes,
	}
	if s.maxNodes == 0 {
		s.maxNodes = defaultMaxNodes
	}
	s.buildIndexes()
	if opt.IncumbentHint != nil {
		if len(opt.IncumbentHint) != m.NumVars() {
			return nil, fmt.Errorf("milp: incumbent hint has %d values, model has %d vars",
				len(opt.IncumbentHint), m.NumVars())
		}
		if obj, ok := m.Check(opt.IncumbentHint); ok {
			s.best = obj
			s.bestVals = append([]bool(nil), opt.IncumbentHint...)
			s.haveBest = true
		}
	}

	feasible := s.search()
	sol := &Solution{Nodes: s.nodes, Optimal: s.nodes < s.maxNodes}
	if !s.haveBest {
		// Wrap the sentinels with solve-state context; callers must match
		// with errors.Is, not ==.
		if !feasible && sol.Optimal {
			return nil, fmt.Errorf("%w (%d vars, %d constraints, %d nodes explored)",
				ErrInfeasible, m.NumVars(), m.NumConstraints(), s.nodes)
		}
		return nil, fmt.Errorf("%w (explored %d of %d nodes)", ErrBudget, s.nodes, s.maxNodes)
	}
	sol.Values = s.bestVals
	sol.Objective = s.best
	return sol, nil
}

type baseSolver struct {
	m        *Model
	opt      Options
	fixed    []int8
	obj      []float64
	best     float64
	bestVals []bool
	haveBest bool
	nodes    int
	maxNodes int
	// partitions: disjoint exactly-one variable groups used for bounding.
	partitions [][]Var
	inPart     []bool
	// occur[v] = indices of constraints containing v.
	occur [][]int
}

func (s *baseSolver) buildIndexes() {
	m := s.m
	s.occur = make([][]int, m.NumVars())
	for ci, c := range m.cons {
		for _, t := range c.Terms {
			s.occur[t.Var] = append(s.occur[t.Var], ci)
		}
	}
	// Collect disjoint exactly-one groups greedily (largest first) for
	// the lower bound.
	s.inPart = make([]bool, m.NumVars())
	type group struct{ vars []Var }
	var groups []group
	for _, c := range m.cons {
		if c.Sense != EQ || c.RHS != 1 {
			continue
		}
		allUnit := true
		for _, t := range c.Terms {
			if t.Coef != 1 {
				allUnit = false
				break
			}
		}
		if !allUnit {
			continue
		}
		vars := make([]Var, len(c.Terms))
		for i, t := range c.Terms {
			vars[i] = t.Var
		}
		groups = append(groups, group{vars})
	}
	sort.Slice(groups, func(i, j int) bool { return len(groups[i].vars) > len(groups[j].vars) })
	for _, g := range groups {
		overlap := false
		for _, v := range g.vars {
			if s.inPart[v] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, v := range g.vars {
			s.inPart[v] = true
		}
		s.partitions = append(s.partitions, g.vars)
	}
}

// propagate applies unit propagation until fixpoint. It records every
// variable it fixes in trail and reports false on contradiction.
func (s *baseSolver) propagate(trail *[]Var) bool {
	changed := true
	for changed {
		changed = false
		for ci := range s.m.cons {
			c := &s.m.cons[ci]
			fixedSum, minFree, maxFree := 0.0, 0.0, 0.0
			freeCount := 0
			for _, t := range c.Terms {
				switch s.fixed[t.Var] {
				case one:
					fixedSum += t.Coef
				case unset:
					freeCount++
					if t.Coef > 0 {
						maxFree += t.Coef
					} else {
						minFree += t.Coef
					}
				}
			}
			// Feasibility windows.
			if c.Sense == LE || c.Sense == EQ {
				if fixedSum+minFree > c.RHS+Eps {
					return false
				}
			}
			if c.Sense == GE || c.Sense == EQ {
				if fixedSum+maxFree < c.RHS-Eps {
					return false
				}
			}
			if freeCount == 0 {
				continue
			}
			// Forcing: examine each free var.
			for _, t := range c.Terms {
				if s.fixed[t.Var] != unset {
					continue
				}
				// Setting t.Var = 1.
				if c.Sense == LE || c.Sense == EQ {
					base := minFree
					if t.Coef < 0 {
						base -= t.Coef // exclude t from the min
					}
					if fixedSum+base+t.Coef > c.RHS+Eps {
						if !s.fix(t.Var, zero, trail) {
							return false
						}
						changed = true
						continue
					}
				}
				if c.Sense == GE || c.Sense == EQ {
					base := maxFree
					if t.Coef > 0 {
						base -= t.Coef // exclude t from the max
					}
					if fixedSum+base+t.Coef < c.RHS-Eps {
						if !s.fix(t.Var, zero, trail) {
							return false
						}
						changed = true
						continue
					}
					// Setting t.Var = 0: remaining max without t.
					if fixedSum+base < c.RHS-Eps {
						if !s.fix(t.Var, one, trail) {
							return false
						}
						changed = true
						continue
					}
				}
			}
		}
	}
	return true
}

func (s *baseSolver) fix(v Var, val int8, trail *[]Var) bool {
	if s.fixed[v] != unset {
		return s.fixed[v] == val
	}
	s.fixed[v] = val
	*trail = append(*trail, v)
	return true
}

func (s *baseSolver) undo(trail []Var, from int) {
	for i := from; i < len(trail); i++ {
		s.fixed[trail[i]] = unset
	}
}

// lowerBound computes an admissible bound on the best completion of the
// current partial assignment.
func (s *baseSolver) lowerBound() float64 {
	lb := 0.0
	for v, f := range s.fixed {
		if f == one {
			lb += s.obj[v]
		}
	}
	for _, part := range s.partitions {
		satisfied := false
		minCoef := math.Inf(1)
		anyFree := false
		for _, v := range part {
			switch s.fixed[v] {
			case one:
				satisfied = true
			case unset:
				anyFree = true
				if s.obj[v] < minCoef {
					minCoef = s.obj[v]
				}
			}
		}
		if satisfied {
			continue
		}
		if anyFree {
			lb += minCoef
		}
		// If no free var and none fixed to one the node is infeasible;
		// propagation catches that, so the bound need not.
	}
	// Free variables outside partitions can only lower the objective if
	// their coefficient is negative.
	for v, f := range s.fixed {
		if f == unset && !s.inPart[v] && s.obj[v] < 0 {
			lb += s.obj[v]
		}
	}
	return lb
}

// pickBranchVar chooses the next variable to branch on: the cheapest
// free variable of the unsatisfied partition with the fewest free
// variables; or, failing that, any free variable with the largest
// absolute objective coefficient.
func (s *baseSolver) pickBranchVar() (Var, bool) {
	bestPart := -1
	bestFree := math.MaxInt
	for pi, part := range s.partitions {
		satisfied := false
		free := 0
		for _, v := range part {
			switch s.fixed[v] {
			case one:
				satisfied = true
			case unset:
				free++
			}
		}
		if satisfied || free == 0 {
			continue
		}
		if free < bestFree {
			bestFree = free
			bestPart = pi
		}
	}
	if bestPart >= 0 {
		var bv Var = -1
		bc := math.Inf(1)
		for _, v := range s.partitions[bestPart] {
			if s.fixed[v] == unset && s.obj[v] < bc {
				bc = s.obj[v]
				bv = v
			}
		}
		return bv, true
	}
	var bv Var = -1
	bc := -1.0
	for v, f := range s.fixed {
		if f != unset {
			continue
		}
		if a := math.Abs(s.obj[v]); a > bc {
			bc = a
			bv = Var(v)
		}
	}
	if bv < 0 {
		return 0, false
	}
	return bv, true
}

func (s *baseSolver) search() bool {
	s.nodes++
	if s.nodes >= s.maxNodes {
		return false
	}
	var trail []Var
	if !s.propagate(&trail) {
		s.undo(trail, 0)
		return false
	}
	lb := s.lowerBound()
	if lb >= s.best-Eps && s.haveBest {
		s.undo(trail, 0)
		return false
	}
	v, any := s.pickBranchVar()
	if !any {
		// Complete assignment: validate and record.
		vals := make([]bool, len(s.fixed))
		for i, f := range s.fixed {
			vals[i] = f == one
		}
		obj, ok := s.m.Check(vals)
		s.undo(trail, 0)
		if !ok {
			return false
		}
		if obj < s.best {
			s.best = obj
			s.bestVals = vals
			s.haveBest = true
		}
		return true
	}

	found := false
	// Branch v=1 first (partition-driven models satisfy groups faster).
	for _, val := range [2]int8{one, zero} {
		mark := len(trail)
		if s.fix(v, val, &trail) {
			if s.search() {
				found = true
			}
		}
		s.undo(trail, mark)
		trail = trail[:mark]
	}
	s.undo(trail, 0)
	return found
}
