package milp

import "math/bits"

// bitset is a fixed-capacity bit vector over variable indices. The
// solver keeps the free-variable set and every unit-row membership mask
// as bitsets, so "the free members of this row" is a word-wise AND
// instead of a slice walk — the occurrence structure the branch-and-
// bound touches on every propagation step.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// clone returns an independent copy.
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// forEachAnd calls fn for every index set in both a and b, in
// ascending order, stopping early if fn returns false.
func forEachAnd(a, b bitset, fn func(i int32) bool) {
	for wi := range a {
		w := a[wi] & b[wi]
		for w != 0 {
			i := int32(wi<<6 + bits.TrailingZeros64(w))
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// forEachBit calls fn for every set index in ascending order, stopping
// early if fn returns false.
func forEachBit(b bitset, fn func(i int32) bool) {
	for wi := range b {
		w := b[wi]
		for w != 0 {
			i := int32(wi<<6 + bits.TrailingZeros64(w))
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// firstAnd returns the lowest index set in both a and b, or -1.
func firstAnd(a, b bitset) int32 {
	for wi := range a {
		if w := a[wi] & b[wi]; w != 0 {
			return int32(wi<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// countAnd returns the number of indices set in both a and b.
func countAnd(a, b bitset) int {
	n := 0
	for wi := range a {
		n += bits.OnesCount64(a[wi] & b[wi])
	}
	return n
}
