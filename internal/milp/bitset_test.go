package milp

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := newBitset(130) // crosses two word boundaries
	for _, i := range []int32{0, 63, 64, 100, 129} {
		b.set(i)
	}
	if b.count() != 5 {
		t.Fatalf("count = %d, want 5", b.count())
	}
	if !b.has(63) || !b.has(64) || b.has(65) {
		t.Fatal("has broken around word boundary")
	}
	b.clear(64)
	if b.has(64) || b.count() != 4 {
		t.Fatal("clear broken")
	}
	var got []int32
	forEachBit(b, func(i int32) bool { got = append(got, i); return true })
	want := []int32{0, 63, 100, 129}
	if len(got) != len(want) {
		t.Fatalf("forEachBit = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEachBit = %v, want %v", got, want)
		}
	}
}

func TestBitsetAndOps(t *testing.T) {
	a, b := newBitset(200), newBitset(200)
	rng := rand.New(rand.NewSource(11))
	ref := map[int32]int{}
	for k := 0; k < 80; k++ {
		i := int32(rng.Intn(200))
		a.set(i)
		ref[i] |= 1
	}
	for k := 0; k < 80; k++ {
		i := int32(rng.Intn(200))
		b.set(i)
		ref[i] |= 2
	}
	var both []int32
	for i := int32(0); i < 200; i++ {
		if ref[i] == 3 {
			both = append(both, i)
		}
	}
	if countAnd(a, b) != len(both) {
		t.Fatalf("countAnd = %d, want %d", countAnd(a, b), len(both))
	}
	first := int32(-1)
	if len(both) > 0 {
		first = both[0]
	}
	if firstAnd(a, b) != first {
		t.Fatalf("firstAnd = %d, want %d", firstAnd(a, b), first)
	}
	var got []int32
	forEachAnd(a, b, func(i int32) bool { got = append(got, i); return true })
	if len(got) != len(both) {
		t.Fatalf("forEachAnd = %v, want %v", got, both)
	}
	for i := range both {
		if got[i] != both[i] {
			t.Fatalf("forEachAnd order wrong: %v vs %v", got, both)
		}
	}
	// Early stop.
	n := 0
	forEachAnd(a, b, func(i int32) bool { n++; return n < 2 })
	if len(both) >= 2 && n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
	c := a.clone()
	c.clear(both[0])
	if a.has(both[0]) != true {
		t.Fatal("clone aliased the original")
	}
}
