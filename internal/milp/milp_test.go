package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSimpleMinimize(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	c := m.Binary("c")
	m.SetObjectiveCoef(a, 3)
	m.SetObjectiveCoef(b, 1)
	m.SetObjectiveCoef(c, 2)
	m.ExactlyOne("pick", a, b, c)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal || sol.Objective != 1 || !sol.Value(b) || sol.Value(a) || sol.Value(c) {
		t.Fatalf("got %+v", sol)
	}
}

func TestConflictConstraint(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	m.SetObjectiveCoef(a, 1)
	m.SetObjectiveCoef(b, 2)
	m.ExactlyOne("ga", a)
	m.AtMostOne("conflict", a, b)
	m.AddConstraint("need-b", []Term{{b, 1}}, GE, 1)
	if _, err := Solve(m, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	m.AddConstraint("impossible", []Term{{a, 1}, {b, 1}}, EQ, 3)
	if _, err := Solve(m, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeCoefficients(t *testing.T) {
	// minimize -2a - b subject to a + b <= 1: pick a.
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	m.SetObjectiveCoef(a, -2)
	m.SetObjectiveCoef(b, -1)
	m.AtMostOne("cap", a, b)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != -2 || !sol.Value(a) || sol.Value(b) {
		t.Fatalf("got %+v", sol)
	}
}

func TestGEConstraint(t *testing.T) {
	// minimize a+b+c subject to a+b+c >= 2.
	m := NewModel()
	vs := []Var{m.Binary("a"), m.Binary("b"), m.Binary("c")}
	terms := make([]Term, len(vs))
	for i, v := range vs {
		m.SetObjectiveCoef(v, 1)
		terms[i] = Term{v, 1}
	}
	m.AddConstraint("atleast2", terms, GE, 2)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 2 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	// a + a <= 1 merges to 2a <= 1, forcing a = 0.
	m.AddConstraint("dup", []Term{{a, 1}, {a, 1}}, LE, 1)
	m.SetObjectiveCoef(a, -5)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value(a) {
		t.Fatal("a should be forced to 0")
	}
}

func TestIncumbentHint(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	m.SetObjectiveCoef(a, 1)
	m.SetObjectiveCoef(b, 5)
	m.ExactlyOne("pick", a, b)
	hint := []bool{false, true} // feasible but suboptimal
	sol, err := Solve(m, Options{IncumbentHint: hint})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 1 {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
	// Wrong-length hint is an error.
	if _, err := Solve(m, Options{IncumbentHint: []bool{true}}); err == nil {
		t.Fatal("want error for bad hint length")
	}
}

func TestCheck(t *testing.T) {
	m := NewModel()
	a := m.Binary("a")
	b := m.Binary("b")
	m.SetObjectiveCoef(a, 2)
	m.SetObjectiveCoef(b, 3)
	m.AtMostOne("c", a, b)
	if obj, ok := m.Check([]bool{true, false}); !ok || obj != 2 {
		t.Fatalf("Check = %v %v", obj, ok)
	}
	if _, ok := m.Check([]bool{true, true}); ok {
		t.Fatal("Check should reject a+b=2")
	}
}

// randomModel builds a small random model with exactly-one partitions and
// at-most-one conflicts — the same structural family as the paper's ring
// model — plus occasional loose variables (negative objectives included),
// at-least-one rows and non-unit generic rows so every solver code path
// (partition bound, negative grouping, windowed propagation, dominance
// over the interchangeable group members) sees corpus coverage.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel()
	nGroups := 2 + rng.Intn(3)
	groupSize := 2 + rng.Intn(3)
	var all []Var
	for g := 0; g < nGroups; g++ {
		var vars []Var
		for k := 0; k < groupSize; k++ {
			v := m.Binary("v")
			m.SetObjectiveCoef(v, float64(rng.Intn(20)-4))
			vars = append(vars, v)
			all = append(all, v)
		}
		m.ExactlyOne("grp", vars...)
	}
	nConf := rng.Intn(6)
	for c := 0; c < nConf; c++ {
		i := all[rng.Intn(len(all))]
		j := all[rng.Intn(len(all))]
		if i != j {
			m.AtMostOne("conf", i, j)
		}
	}
	// Loose variables outside every partition.
	for k := rng.Intn(3); k > 0; k-- {
		v := m.Binary("loose")
		m.SetObjectiveCoef(v, float64(rng.Intn(20)-10))
		all = append(all, v)
	}
	if rng.Intn(3) == 0 {
		// An at-least-one row over a few distinct variables.
		picks := map[Var]bool{}
		for k := 0; k < 3; k++ {
			picks[all[rng.Intn(len(all))]] = true
		}
		terms := make([]Term, 0, len(picks))
		for v := range picks {
			terms = append(terms, Term{v, 1})
		}
		m.AddConstraint("atleast", terms, GE, 1)
	}
	if rng.Intn(3) == 0 {
		// A generic non-unit row: 2i + j <= 2.
		i := all[rng.Intn(len(all))]
		j := all[rng.Intn(len(all))]
		if i != j {
			m.AddConstraint("gen", []Term{{i, 2}, {j, 1}}, LE, 2)
		}
	}
	return m
}

// solveConfigs is the option sweep the property tests run every corpus
// model through: propagation on/off crossed with parallel on/off.
var solveConfigs = []struct {
	name string
	opt  Options
}{
	{"default", Options{}},
	{"noprop", Options{NoPropagation: true}},
	{"parallel", Options{Parallel: true}},
	{"parallel-noprop", Options{Parallel: true, NoPropagation: true}},
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		m := randomModel(rng)
		if m.NumVars() > 24 {
			continue
		}
		want, errB := SolveBrute(m)
		if base, errBase := SolveBaseline(m, Options{}); (errB == nil) != (errBase == nil) {
			t.Fatalf("trial %d: brute err=%v baseline err=%v", trial, errB, errBase)
		} else if errB == nil && math.Abs(want.Objective-base.Objective) > Eps {
			t.Fatalf("trial %d: brute=%v baseline=%v", trial, want.Objective, base.Objective)
		}
		for _, cfg := range solveConfigs {
			got, errS := Solve(m, cfg.opt)
			if (errB == nil) != (errS == nil) {
				t.Fatalf("trial %d [%s]: brute err=%v solve err=%v", trial, cfg.name, errB, errS)
			}
			if errB != nil {
				continue
			}
			if math.Abs(want.Objective-got.Objective) > Eps {
				t.Fatalf("trial %d [%s]: brute=%v solve=%v", trial, cfg.name, want.Objective, got.Objective)
			}
			if _, ok := m.Check(got.Values); !ok {
				t.Fatalf("trial %d [%s]: solver returned infeasible assignment", trial, cfg.name)
			}
		}
		if errB != nil {
			continue
		}
		// Warm-started solves (the brute optimum as hint) must agree too
		// and must report the warm start.
		for _, par := range []bool{false, true} {
			got, err := Solve(m, Options{IncumbentHint: want.Values, Parallel: par})
			if err != nil {
				t.Fatalf("trial %d: warm-started solve failed: %v", trial, err)
			}
			if math.Abs(want.Objective-got.Objective) > Eps {
				t.Fatalf("trial %d: warm brute=%v solve=%v", trial, want.Objective, got.Objective)
			}
			if !got.WarmStarted {
				t.Fatalf("trial %d: feasible hint not reported as warm start", trial)
			}
		}
	}
}

func TestSolveBruteVarLimit(t *testing.T) {
	m := NewModel()
	for i := 0; i < 25; i++ {
		m.Binary("v")
	}
	if _, err := SolveBrute(m); err == nil {
		t.Fatal("want error above the brute-force variable limit")
	}
}

func TestNodeBudget(t *testing.T) {
	m := NewModel()
	// A model big enough to need more than 1 node.
	var vars []Var
	for i := 0; i < 12; i++ {
		v := m.Binary("v")
		m.SetObjectiveCoef(v, float64(i%5))
		vars = append(vars, v)
	}
	for i := 0; i < 12; i += 3 {
		m.ExactlyOne("g", vars[i], vars[i+1], vars[i+2])
	}
	if _, err := Solve(m, Options{MaxNodes: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Sense.String broken")
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel()
	v := m.Binary("hello")
	m.AtMostOne("c", v)
	if m.NumVars() != 1 || m.NumConstraints() != 1 || m.Name(v) != "hello" {
		t.Fatal("accessors broken")
	}
}

func BenchmarkSolvePartitioned(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := NewModel()
	var all []Var
	for g := 0; g < 12; g++ {
		var vars []Var
		for k := 0; k < 6; k++ {
			v := m.Binary("v")
			m.SetObjectiveCoef(v, float64(rng.Intn(50)))
			vars = append(vars, v)
			all = append(all, v)
		}
		m.ExactlyOne("g", vars...)
	}
	for c := 0; c < 30; c++ {
		i := all[rng.Intn(len(all))]
		j := all[rng.Intn(len(all))]
		if i != j {
			m.AtMostOne("conf", i, j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
