package milp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"xring/internal/obs"
)

// Solver counters (see OBSERVABILITY.md "Solver metrics").
var (
	mNodes       = obs.NewCounter("milp.nodes")
	mPropagated  = obs.NewCounter("milp.propagated")
	mPruned      = obs.NewCounter("milp.pruned")
	mIncumbents  = obs.NewCounter("milp.incumbents")
	mSubproblems = obs.NewCounter("milp.subproblems")
	mSteals      = obs.NewCounter("milp.steals")
	mWarmStarts  = obs.NewCounter("milp.warmstart.accepted")
)

// Solve minimizes the model exactly via a propagating branch-and-bound.
//
// The search keeps bitset-backed occurrence structures per constraint
// class (at-most-one "cliques", exactly-one "degrees", everything else
// generic), runs unit propagation to fixpoint after every decision, and
// prunes with an admissible bound combining the partition bound with
// the propagated fixings, plus dominance chains over identical columns.
// With Options.Parallel the frontier fans out over internal/parallel;
// completed solves are bit-identical to serial because the returned
// witness is re-derived by a deterministic canonical dive once the
// optimum value is proved. See DESIGN.md "Solver internals".
func Solve(m *Model, opt Options) (*Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	c := compile(m)
	sh := newShared(maxNodes)

	var hintVals []bool
	hintObj := math.Inf(1)
	warm := false
	if opt.IncumbentHint != nil {
		if len(opt.IncumbentHint) != m.NumVars() {
			return nil, fmt.Errorf("milp: incumbent hint has %d values, model has %d vars",
				len(opt.IncumbentHint), m.NumVars())
		}
		if obj, ok := m.Check(opt.IncumbentHint); ok {
			hintVals = append([]bool(nil), opt.IncumbentHint...)
			hintObj = obj
			warm = true
			sh.offer(obj)
		}
	}

	// Phase 1: prove the optimum value.
	var subs []subResult
	budgetHit := false
	if opt.Parallel {
		subs, budgetHit = solveParallel(c, sh, opt)
	} else {
		s := newSearcher(c, sh, opt.NoPropagation)
		s.initRoot()
		s.search()
		subs = []subResult{s.result()}
		budgetHit = s.budgetHit
		subs[0].subproblems = 1
	}

	// Deterministic reduction: the hint first, then subproblems in their
	// fixed decomposition order; strict Eps-improvement so exact ties
	// resolve to the earliest candidate.
	found := warm
	bestObj := hintObj
	bestVals := hintVals
	st := solveStats{}
	for _, r := range subs {
		st.fold(r)
		budgetHit = budgetHit || r.budgetHit
		if !r.found {
			continue
		}
		if !found || r.obj < bestObj-Eps {
			found = true
			bestObj = r.obj
			bestVals = r.vals
		}
	}

	nodes := int(sh.nodes.Load())
	if !found {
		if !budgetHit {
			return nil, fmt.Errorf("%w (%d vars, %d constraints, %d nodes explored)",
				ErrInfeasible, m.NumVars(), m.NumConstraints(), nodes)
		}
		return nil, fmt.Errorf("%w (explored %d of %d nodes)", ErrBudget, nodes, maxNodes)
	}

	sol := &Solution{
		Objective:   bestObj,
		Values:      bestVals,
		Optimal:     !budgetHit,
		Propagated:  int(st.propagated),
		Pruned:      int(st.pruned),
		Subproblems: int(st.subproblems),
		Steals:      int(st.steals),
		WarmStarted: warm,
	}
	if !budgetHit {
		// Phase 2: canonical witness dive. The optimum value V is proved;
		// re-derive the returned assignment with a deterministic serial
		// descent that prunes only what provably exceeds V. Serial and
		// parallel phase 1 may surface different (equally optimal)
		// witnesses depending on timing — the dive makes the returned
		// solution a pure function of (model, options). The dive gets its
		// own node budget so its determinism cannot depend on how many
		// nodes phase 1 happened to consume.
		dsh := newShared(maxNodes)
		d := newSearcher(c, dsh, opt.NoPropagation)
		d.initRoot()
		if d.dive(bestObj + Eps) {
			sol.Objective = d.bestObj
			sol.Values = d.bestVals
		}
		nodes += int(dsh.nodes.Load())
		sol.Propagated += int(d.applies - d.decisions)
		sol.Pruned += int(d.pruned)
	}
	sol.Nodes = nodes
	sol.Incumbents = int(sh.incumbents.Load())

	mNodes.Add(int64(sol.Nodes))
	mPropagated.Add(int64(sol.Propagated))
	mPruned.Add(int64(sol.Pruned))
	mIncumbents.Add(int64(sol.Incumbents))
	mSubproblems.Add(int64(sol.Subproblems))
	mSteals.Add(int64(sol.Steals))
	if warm {
		mWarmStarts.Inc()
	}
	return sol, nil
}

// compiled is the solver's immutable view of a model: constraints
// classified by structure, bitset occurrence masks, bound groups and
// dominance chains. It is shared read-only by all searchers of a solve.
type compiled struct {
	m   *Model
	nv  int
	obj []float64

	// cliques are at-most-one rows (unit coefficients, <= 1);
	// degrees are exactly-one rows (unit coefficients, == 1).
	cliques   []bitset
	degrees   []bitset
	cliquesOf [][]int32 // var -> clique row indices
	degreesOf [][]int32 // var -> degree row indices

	// gens are the remaining constraints (indices into m.cons), kept
	// under windowed min/max feasibility propagation.
	gens   []int
	gensOf [][]int32 // var -> positions into gens

	// parts is a disjoint cover of degree rows used for the partition
	// lower bound; inPart marks their member variables.
	parts  []int32
	inPart bitset

	// halfDeg enables the assignment bound: when no objective
	// coefficient is negative and every variable appears in at most two
	// exactly-one rows (the out/in degree structure of the ring model),
	// half the sum over ALL unsatisfied degree rows of their cheapest
	// free member is admissible — each future 1-assignment can satisfy
	// at most two rows, so the sum double-counts by at most 2. This is
	// the classic row+column minima bound of the assignment relaxation
	// and is usually far tighter than the disjoint cover alone; the
	// solver takes the max of the two.
	halfDeg bool

	// negGroups are disjoint at-most-one groups over negative-objective
	// variables outside the partitions: each contributes min(0, cheapest
	// free member) to the bound instead of the whole sum. negSolo are the
	// ungrouped negatives.
	negGroups [][]int32
	negSolo   []int32

	// Dominance chains over identical columns: variables with the same
	// (row, coefficient) membership everywhere are interchangeable, so
	// an optimal solution exists with ones packed toward the cheaper end
	// of each chain. domSucc/domPred link chain neighbours (-1 = none);
	// propagation enforces x[pred] >= x[succ].
	domSucc []int32
	domPred []int32
}

func compile(m *Model) *compiled {
	nv := m.NumVars()
	c := &compiled{m: m, nv: nv, obj: m.obj, inPart: newBitset(nv)}

	type degRow struct {
		row  int32
		size int
	}
	var degRows []degRow
	for ci := range m.cons {
		con := &m.cons[ci]
		allUnit := len(con.Terms) > 0
		for _, t := range con.Terms {
			if t.Coef != 1 {
				allUnit = false
				break
			}
		}
		switch {
		case allUnit && con.Sense == LE && con.RHS >= float64(len(con.Terms))-Eps:
			// Trivially satisfied; contributes nothing.
		case allUnit && con.Sense == LE && con.RHS >= 1-Eps && con.RHS < 2-Eps:
			mask := newBitset(nv)
			for _, t := range con.Terms {
				mask.set(int32(t.Var))
			}
			c.cliques = append(c.cliques, mask)
		case allUnit && con.Sense == EQ && math.Abs(con.RHS-1) <= Eps:
			mask := newBitset(nv)
			for _, t := range con.Terms {
				mask.set(int32(t.Var))
			}
			c.degrees = append(c.degrees, mask)
			degRows = append(degRows, degRow{int32(len(c.degrees) - 1), len(con.Terms)})
		default:
			c.gens = append(c.gens, ci)
		}
	}

	c.cliquesOf = make([][]int32, nv)
	for ri, mask := range c.cliques {
		forEachBit(mask, func(v int32) bool {
			c.cliquesOf[v] = append(c.cliquesOf[v], int32(ri))
			return true
		})
	}
	c.degreesOf = make([][]int32, nv)
	for ri, mask := range c.degrees {
		forEachBit(mask, func(v int32) bool {
			c.degreesOf[v] = append(c.degreesOf[v], int32(ri))
			return true
		})
	}
	c.gensOf = make([][]int32, nv)
	for gi, ci := range c.gens {
		for _, t := range m.cons[ci].Terms {
			c.gensOf[t.Var] = append(c.gensOf[t.Var], int32(gi))
		}
	}

	c.halfDeg = len(c.degrees) > 1
	for v := 0; v < nv && c.halfDeg; v++ {
		if c.obj[v] < 0 || len(c.degreesOf[v]) > 2 {
			c.halfDeg = false
		}
	}

	// Partition cover: disjoint degree rows, largest first (stable).
	sort.SliceStable(degRows, func(i, j int) bool { return degRows[i].size > degRows[j].size })
	for _, g := range degRows {
		if countAnd(c.degrees[g.row], c.inPart) > 0 {
			continue
		}
		forEachBit(c.degrees[g.row], func(v int32) bool {
			c.inPart.set(v)
			return true
		})
		c.parts = append(c.parts, g.row)
	}

	// Negative-objective grouping outside the partitions.
	negMask := newBitset(nv)
	anyNeg := false
	for v := 0; v < nv; v++ {
		if c.obj[v] < 0 && !c.inPart.has(int32(v)) {
			negMask.set(int32(v))
			anyNeg = true
		}
	}
	if anyNeg {
		grouped := newBitset(nv)
		for _, mask := range c.cliques {
			var g []int32
			forEachAnd(mask, negMask, func(v int32) bool {
				if !grouped.has(v) {
					g = append(g, v)
				}
				return true
			})
			if len(g) >= 2 {
				for _, v := range g {
					grouped.set(v)
				}
				c.negGroups = append(c.negGroups, g)
			}
		}
		forEachBit(negMask, func(v int32) bool {
			if !grouped.has(v) {
				c.negSolo = append(c.negSolo, v)
			}
			return true
		})
	}

	// Dominance chains: group variables by their full column signature.
	cols := make([][]byte, nv)
	var scratch [12]byte
	for ci := range m.cons {
		for _, t := range m.cons[ci].Terms {
			binary.LittleEndian.PutUint32(scratch[0:4], uint32(ci))
			binary.LittleEndian.PutUint64(scratch[4:12], math.Float64bits(t.Coef))
			cols[t.Var] = append(cols[t.Var], scratch[:]...)
		}
	}
	c.domSucc = make([]int32, nv)
	c.domPred = make([]int32, nv)
	for v := range c.domSucc {
		c.domSucc[v] = -1
		c.domPred[v] = -1
	}
	classes := map[string][]int32{}
	var order []string
	for v := 0; v < nv; v++ {
		key := string(cols[v])
		if _, seen := classes[key]; !seen {
			order = append(order, key)
		}
		classes[key] = append(classes[key], int32(v))
	}
	for _, key := range order {
		g := classes[key]
		if len(g) < 2 {
			continue
		}
		sort.SliceStable(g, func(i, j int) bool { return c.obj[g[i]] < c.obj[g[j]] })
		for k := 0; k+1 < len(g); k++ {
			c.domSucc[g[k]] = g[k+1]
			c.domPred[g[k+1]] = g[k]
		}
	}
	return c
}

// shared is the solve-wide state all searchers observe: the incumbent
// objective (atomic float bits, CAS-min) and the node budget.
type shared struct {
	best       atomic.Uint64
	nodes      atomic.Int64
	incumbents atomic.Int64
	maxNodes   int64
}

func newShared(maxNodes int) *shared {
	sh := &shared{maxNodes: int64(maxNodes)}
	sh.best.Store(math.Float64bits(math.Inf(1)))
	return sh
}

func (sh *shared) bestObj() float64 { return math.Float64frombits(sh.best.Load()) }

// offer installs obj as the incumbent if it improves on it.
func (sh *shared) offer(obj float64) bool {
	for {
		cur := sh.best.Load()
		if obj >= math.Float64frombits(cur) {
			return false
		}
		if sh.best.CompareAndSwap(cur, math.Float64bits(obj)) {
			sh.incumbents.Add(1)
			return true
		}
	}
}

// subResult is one searcher's contribution to the reduction.
type subResult struct {
	found     bool
	obj       float64
	vals      []bool
	budgetHit bool

	nodes, propagated, pruned, subproblems, steals int64
}

type solveStats struct {
	propagated, pruned, subproblems, steals int64
}

func (st *solveStats) fold(r subResult) {
	st.propagated += r.propagated
	st.pruned += r.pruned
	st.subproblems += r.subproblems
	st.steals += r.steals
}

type pfix struct {
	v   int32
	val int8
}

var valueOrder = [2]int8{one, zero}

// searcher is the per-goroutine branch-and-bound state: the partial
// assignment, per-row fixed/free counters, the undo trail and the
// propagation queues. All fields are goroutine-local except sh.
type searcher struct {
	c      *compiled
	sh     *shared
	noProp bool

	val      []int8
	free     bitset
	fixedObj float64

	cliqueOnes, cliqueFree []int32
	degOnes, degFree       []int32

	trail   []int32
	pend    []pfix
	dirty   []int32
	isDirty []bool

	found    bool
	bestObj  float64
	bestVals []bool

	nodes, applies, decisions, pruned int64
	budgetHit                         bool
	// stolen marks a subproblem that observed another one in flight —
	// the frontier genuinely overlapped in time.
	stolen bool
}

func newSearcher(c *compiled, sh *shared, noProp bool) *searcher {
	s := &searcher{
		c:          c,
		sh:         sh,
		noProp:     noProp,
		val:        make([]int8, c.nv),
		free:       newBitset(c.nv),
		cliqueOnes: make([]int32, len(c.cliques)),
		cliqueFree: make([]int32, len(c.cliques)),
		degOnes:    make([]int32, len(c.degrees)),
		degFree:    make([]int32, len(c.degrees)),
		isDirty:    make([]bool, len(c.gens)),
	}
	for v := int32(0); v < int32(c.nv); v++ {
		s.free.set(v)
	}
	for r, mask := range c.cliques {
		s.cliqueFree[r] = int32(mask.count())
	}
	for r, mask := range c.degrees {
		s.degFree[r] = int32(mask.count())
	}
	return s
}

// initRoot seeds the propagation queues for a search from the root:
// singleton exactly-one rows force their member, and every generic row
// is checked once.
func (s *searcher) initRoot() {
	c := s.c
	if !s.noProp {
		for r := range c.degrees {
			if s.degFree[r] == 1 && s.degOnes[r] == 0 {
				if v := firstAnd(c.degrees[r], s.free); v >= 0 {
					s.pend = append(s.pend, pfix{v, one})
				}
			}
		}
	}
	for g := range c.gens {
		s.isDirty[g] = true
		s.dirty = append(s.dirty, int32(g))
	}
}

func (s *searcher) result() subResult {
	r := subResult{
		found:      s.found,
		obj:        s.bestObj,
		vals:       s.bestVals,
		budgetHit:  s.budgetHit,
		nodes:      s.nodes,
		propagated: s.applies - s.decisions,
		pruned:     s.pruned,
	}
	if s.stolen {
		r.steals = 1
	}
	return r
}

// apply fixes v to val, updating counters and enqueueing implied
// fixings. It reports false on contradiction. Already-fixed variables
// are consistency-checked, not re-applied. On contradiction every row
// counter is still fully updated — undo rewinds all rows of a trailed
// variable, so a partial update would corrupt the counts.
func (s *searcher) apply(v int32, val int8) bool {
	if s.val[v] != unset {
		return s.val[v] == val
	}
	s.val[v] = val
	s.free.clear(v)
	s.trail = append(s.trail, v)
	s.applies++
	c := s.c
	ok := true
	if val == one {
		s.fixedObj += c.obj[v]
		for _, r := range c.cliquesOf[v] {
			s.cliqueOnes[r]++
			s.cliqueFree[r]--
			if s.cliqueOnes[r] > 1 {
				ok = false
			} else if !s.noProp && s.cliqueFree[r] > 0 {
				s.enqueueZeros(c.cliques[r])
			}
		}
		for _, r := range c.degreesOf[v] {
			s.degOnes[r]++
			s.degFree[r]--
			if s.degOnes[r] > 1 {
				ok = false
			} else if !s.noProp && s.degFree[r] > 0 {
				s.enqueueZeros(c.degrees[r])
			}
		}
		if ok && !s.noProp {
			if p := c.domPred[v]; p >= 0 && s.val[p] == unset {
				s.pend = append(s.pend, pfix{p, one})
			}
		}
	} else {
		for _, r := range c.cliquesOf[v] {
			s.cliqueFree[r]--
		}
		for _, r := range c.degreesOf[v] {
			s.degFree[r]--
			if s.degOnes[r] == 0 {
				if s.degFree[r] == 0 {
					ok = false
				} else if !s.noProp && s.degFree[r] == 1 {
					if u := firstAnd(c.degrees[r], s.free); u >= 0 {
						s.pend = append(s.pend, pfix{u, one})
					}
				}
			}
		}
		if ok && !s.noProp {
			if nx := c.domSucc[v]; nx >= 0 && s.val[nx] == unset {
				s.pend = append(s.pend, pfix{nx, zero})
			}
		}
	}
	for _, g := range c.gensOf[v] {
		if !s.isDirty[g] {
			s.isDirty[g] = true
			s.dirty = append(s.dirty, g)
		}
	}
	return ok
}

// enqueueZeros queues a zero-fix for every still-free member of mask.
func (s *searcher) enqueueZeros(mask bitset) {
	forEachAnd(mask, s.free, func(u int32) bool {
		s.pend = append(s.pend, pfix{u, zero})
		return true
	})
}

// propagate drains the fix queue and the dirty generic rows to
// fixpoint. On contradiction it clears the queues and reports false;
// fixes already applied stay on the trail for the caller's undo.
func (s *searcher) propagate() bool {
	for {
		if n := len(s.pend); n > 0 {
			f := s.pend[n-1]
			s.pend = s.pend[:n-1]
			if !s.apply(f.v, f.val) {
				s.resetQueues()
				return false
			}
			continue
		}
		if n := len(s.dirty); n > 0 {
			g := s.dirty[n-1]
			s.dirty = s.dirty[:n-1]
			s.isDirty[g] = false
			if !s.checkGeneric(g) {
				s.resetQueues()
				return false
			}
			continue
		}
		return true
	}
}

func (s *searcher) resetQueues() {
	s.pend = s.pend[:0]
	for _, g := range s.dirty {
		s.isDirty[g] = false
	}
	s.dirty = s.dirty[:0]
}

// checkGeneric evaluates a generic row's feasibility window against the
// current partial assignment and enqueues any forced fixings.
func (s *searcher) checkGeneric(g int32) bool {
	con := &s.c.m.cons[s.c.gens[g]]
	fixedSum, minFree, maxFree := 0.0, 0.0, 0.0
	freeCount := 0
	for _, t := range con.Terms {
		switch s.val[t.Var] {
		case one:
			fixedSum += t.Coef
		case unset:
			freeCount++
			if t.Coef > 0 {
				maxFree += t.Coef
			} else {
				minFree += t.Coef
			}
		}
	}
	if con.Sense == LE || con.Sense == EQ {
		if fixedSum+minFree > con.RHS+Eps {
			return false
		}
	}
	if con.Sense == GE || con.Sense == EQ {
		if fixedSum+maxFree < con.RHS-Eps {
			return false
		}
	}
	if freeCount == 0 || s.noProp {
		return true
	}
	for _, t := range con.Terms {
		if s.val[t.Var] != unset {
			continue
		}
		v := int32(t.Var)
		if con.Sense == LE || con.Sense == EQ {
			base := minFree
			if t.Coef < 0 {
				base -= t.Coef // exclude t from the min
			}
			if fixedSum+base+t.Coef > con.RHS+Eps {
				s.pend = append(s.pend, pfix{v, zero})
				continue
			}
		}
		if con.Sense == GE || con.Sense == EQ {
			base := maxFree
			if t.Coef > 0 {
				base -= t.Coef // exclude t from the max
			}
			if fixedSum+base+t.Coef < con.RHS-Eps {
				s.pend = append(s.pend, pfix{v, zero})
				continue
			}
			// Setting t.Var = 0: remaining max without t.
			if fixedSum+base < con.RHS-Eps {
				s.pend = append(s.pend, pfix{v, one})
				continue
			}
		}
	}
	return true
}

// undo rewinds the trail to mark, restoring counters and the free set.
func (s *searcher) undo(mark int) {
	c := s.c
	for i := len(s.trail) - 1; i >= mark; i-- {
		v := s.trail[i]
		if s.val[v] == one {
			s.fixedObj -= c.obj[v]
			for _, r := range c.cliquesOf[v] {
				s.cliqueOnes[r]--
				s.cliqueFree[r]++
			}
			for _, r := range c.degreesOf[v] {
				s.degOnes[r]--
				s.degFree[r]++
			}
		} else {
			for _, r := range c.cliquesOf[v] {
				s.cliqueFree[r]++
			}
			for _, r := range c.degreesOf[v] {
				s.degFree[r]++
			}
		}
		s.val[v] = unset
		s.free.set(v)
	}
	s.trail = s.trail[:mark]
}

// lowerBound computes an admissible bound on the best completion of the
// current partial assignment: the objective of the ones fixed so far
// (branching and propagation both contribute), the cheapest free member
// of every unsatisfied partition, and grouped negative coefficients.
func (s *searcher) lowerBound() float64 {
	c := s.c
	partSum := 0.0
	for _, r := range c.parts {
		if s.degOnes[r] > 0 {
			continue
		}
		min := math.Inf(1)
		forEachAnd(c.degrees[r], s.free, func(v int32) bool {
			if c.obj[v] < min {
				min = c.obj[v]
			}
			return true
		})
		if !math.IsInf(min, 1) {
			partSum += min
		}
	}
	if c.halfDeg {
		// Assignment bound over every unsatisfied degree row, at half
		// weight; admissible alongside the partition cover, so take the
		// larger of the two.
		halfSum := 0.0
		for r := range c.degrees {
			if s.degOnes[r] > 0 {
				continue
			}
			min := math.Inf(1)
			forEachAnd(c.degrees[r], s.free, func(v int32) bool {
				if c.obj[v] < min {
					min = c.obj[v]
				}
				return true
			})
			if !math.IsInf(min, 1) {
				halfSum += min
			}
		}
		if h := halfSum / 2; h > partSum {
			partSum = h
		}
	}
	lb := s.fixedObj + partSum
	for _, g := range c.negGroups {
		min := 0.0
		for _, v := range g {
			if s.val[v] == unset && c.obj[v] < min {
				min = c.obj[v]
			}
		}
		lb += min
	}
	for _, v := range c.negSolo {
		if s.val[v] == unset {
			lb += c.obj[v]
		}
	}
	return lb
}

// pickBranch chooses the branching variable: the cheapest free member
// of the unsatisfied exactly-one row with the fewest free members, or,
// failing that, the free variable with the largest |objective|. All
// ties break toward the lowest index, keeping the search deterministic.
func (s *searcher) pickBranch() (int32, bool) {
	c := s.c
	bestRow := int32(-1)
	bestFree := int32(math.MaxInt32)
	for r := range c.degrees {
		if s.degOnes[r] == 0 && s.degFree[r] > 0 && s.degFree[r] < bestFree {
			bestRow, bestFree = int32(r), s.degFree[r]
		}
	}
	if bestRow >= 0 {
		bv, bc := int32(-1), math.Inf(1)
		forEachAnd(c.degrees[bestRow], s.free, func(v int32) bool {
			if c.obj[v] < bc {
				bc, bv = c.obj[v], v
			}
			return true
		})
		if bv >= 0 {
			return bv, true
		}
	}
	bv, bc := int32(-1), -1.0
	forEachBit(s.free, func(v int32) bool {
		if a := math.Abs(c.obj[v]); a > bc {
			bc, bv = a, v
		}
		return true
	})
	if bv < 0 {
		return 0, false
	}
	return bv, true
}

func (s *searcher) snapshot() []bool {
	vals := make([]bool, s.c.nv)
	for i, f := range s.val {
		vals[i] = f == one
	}
	return vals
}

// recordLeaf validates the complete assignment against the full model
// (Check is the authority; the incremental counters are bookkeeping)
// and folds it into the local and shared incumbents.
func (s *searcher) recordLeaf() {
	vals := s.snapshot()
	obj, ok := s.c.m.Check(vals)
	if !ok {
		return
	}
	if !s.found || obj < s.bestObj {
		s.found = true
		s.bestObj = obj
		s.bestVals = vals
	}
	s.sh.offer(obj)
}

// search explores the subtree below the current partial assignment,
// consuming any pending decision from the queue first.
func (s *searcher) search() {
	if s.sh.nodes.Add(1) > s.sh.maxNodes {
		s.budgetHit = true
		s.resetQueues()
		return
	}
	s.nodes++
	mark := len(s.trail)
	if !s.propagate() {
		s.undo(mark)
		return
	}
	if lb := s.lowerBound(); lb >= s.sh.bestObj()-Eps {
		s.pruned++
		s.undo(mark)
		return
	}
	v, ok := s.pickBranch()
	if !ok {
		s.recordLeaf()
		s.undo(mark)
		return
	}
	for _, val := range valueOrder {
		s.decisions++
		s.pend = append(s.pend, pfix{v, val})
		s.search()
		if s.budgetHit {
			break
		}
	}
	s.undo(mark)
}

// dive finds the canonical witness: the first complete feasible
// assignment with objective <= bound in the fixed depth-first order,
// pruning only subtrees whose lower bound provably exceeds bound. With
// bound = V + Eps for the proved optimum V, the result is a pure
// function of (model, options) — this is what makes parallel solves
// bit-identical to serial ones.
func (s *searcher) dive(bound float64) bool {
	if s.sh.nodes.Add(1) > s.sh.maxNodes {
		s.budgetHit = true
		s.resetQueues()
		return false
	}
	s.nodes++
	mark := len(s.trail)
	if !s.propagate() {
		s.undo(mark)
		return false
	}
	if lb := s.lowerBound(); lb > bound {
		s.pruned++
		s.undo(mark)
		return false
	}
	v, ok := s.pickBranch()
	if !ok {
		vals := s.snapshot()
		if obj, okc := s.c.m.Check(vals); okc && obj <= bound {
			s.found = true
			s.bestObj = obj
			s.bestVals = vals
			return true
		}
		s.undo(mark)
		return false
	}
	for _, val := range valueOrder {
		s.decisions++
		s.pend = append(s.pend, pfix{v, val})
		if s.dive(bound) {
			return true
		}
		if s.budgetHit {
			break
		}
	}
	s.undo(mark)
	return false
}
