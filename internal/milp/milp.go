// Package milp provides a small mixed-integer-linear-programming layer
// for 0/1 decision models, replacing the Gurobi dependency of the paper
// (Sec. IV implements the Sec. III-A model with Gurobi).
//
// The package has two halves:
//
//   - a modelling API (binary variables, linear constraints, a linear
//     minimization objective) mirroring how the paper states Eq. (1)-(4);
//   - exact solvers: a propagating branch-and-bound with bitset-backed
//     occurrence structures, dominance pruning and an optional
//     deterministic parallel mode (Solve), the pre-overhaul depth-first
//     solver kept as a benchmark/differential baseline (SolveBaseline),
//     and an exhaustive reference solver for cross-validation in tests
//     (SolveBrute).
//
// The branch-and-bound is exact: when it returns without hitting the
// node budget, the solution is optimal. The paper's ring-construction
// model — an assignment structure plus pairwise conflict constraints —
// is well inside its comfort zone for the network sizes evaluated
// (N ≤ 32). See DESIGN.md "Solver internals" for the propagation,
// bounding and parallel-determinism machinery.
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Eps is the single feasibility/optimality tolerance used throughout
// the package: constraint checks, feasibility windows, lower-bound
// pruning and incumbent comparisons all measure against it.
const Eps = 1e-9

// defaultMaxNodes is the node budget applied when Options.MaxNodes is 0.
const defaultMaxNodes = 10_000_000

// Var identifies a binary decision variable within a Model.
type Var int

// Sense is the comparison direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // less-than-or-equal
	GE              // greater-than-or-equal
	EQ              // equal
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is a coefficient applied to a variable inside a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Constraint is a linear constraint sum(Terms) Sense RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is a 0/1 integer linear program: minimize c^T x subject to
// linear constraints, x binary.
type Model struct {
	names []string
	obj   []float64
	cons  []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Binary adds a binary decision variable and returns its handle.
func (m *Model) Binary(name string) Var {
	m.names = append(m.names, name)
	m.obj = append(m.obj, 0)
	return Var(len(m.names) - 1)
}

// NumVars returns the number of variables in the model.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints in the model.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Name returns the name given to v when it was created.
func (m *Model) Name(v Var) string { return m.names[v] }

// SetObjectiveCoef sets the minimization coefficient of v.
func (m *Model) SetObjectiveCoef(v Var, c float64) { m.obj[v] = c }

// AddConstraint appends a linear constraint to the model. Terms with a
// zero coefficient are dropped; duplicate variables are merged.
func (m *Model) AddConstraint(name string, terms []Term, sense Sense, rhs float64) {
	merged := map[Var]float64{}
	for _, t := range terms {
		merged[t.Var] += t.Coef
	}
	clean := make([]Term, 0, len(merged))
	for v, c := range merged {
		if c != 0 {
			clean = append(clean, Term{v, c})
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i].Var < clean[j].Var })
	m.cons = append(m.cons, Constraint{Name: name, Terms: clean, Sense: sense, RHS: rhs})
}

// AtMostOne adds the constraint sum(vars) <= 1.
func (m *Model) AtMostOne(name string, vars ...Var) {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.AddConstraint(name, terms, LE, 1)
}

// ExactlyOne adds the constraint sum(vars) == 1.
func (m *Model) ExactlyOne(name string, vars ...Var) {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.AddConstraint(name, terms, EQ, 1)
}

// Solution holds variable values and the objective of a solve.
type Solution struct {
	Values    []bool
	Objective float64
	// Optimal reports whether the solver proved optimality (it did not
	// stop early on the node budget).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored (across all
	// subproblems in parallel mode, plus the canonical witness dive).
	Nodes int
	// Propagated counts variable fixings derived by unit propagation
	// rather than branching.
	Propagated int
	// Pruned counts subtrees cut by the admissible lower bound.
	Pruned int
	// Incumbents counts improvements accepted into the shared incumbent
	// (including a feasible IncumbentHint).
	Incumbents int
	// Subproblems is the number of frontier subproblems the parallel
	// mode decomposed the search into (1 for a serial solve).
	Subproblems int
	// Steals counts subproblems observed running concurrently with at
	// least one other — a proxy for how much of the frontier actually
	// overlapped in time.
	Steals int
	// WarmStarted reports whether a feasible IncumbentHint primed the
	// incumbent.
	WarmStarted bool
}

// Value reports the value assigned to v.
func (s *Solution) Value(v Var) bool { return s.Values[v] }

// ErrInfeasible is returned when the model has no feasible assignment.
var ErrInfeasible = errors.New("milp: model is infeasible")

// ErrBudget is returned when the node budget was exhausted before any
// feasible solution was found.
var ErrBudget = errors.New("milp: node budget exhausted without a feasible solution")

// Options tunes the branch-and-bound solver.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means a generous
	// default (10 million).
	MaxNodes int
	// IncumbentHint, when non-nil, primes the upper bound with a known
	// feasible solution (e.g. from a heuristic warm start). Infeasible
	// hints are ignored; a hint of the wrong length is an error.
	IncumbentHint []bool
	// Parallel fans the search frontier out over internal/parallel with
	// a shared atomic incumbent. The returned solution is bit-identical
	// to a serial solve of the same model and options: after the optimum
	// value is proved, both modes re-derive the canonical witness with a
	// deterministic serial dive.
	Parallel bool
	// NoPropagation disables derived fixings (unit propagation,
	// dominance chains), leaving only feasibility checks — the search
	// then relies on branching alone. For differential testing.
	NoPropagation bool
}

const (
	unset int8 = iota
	zero
	one
)

// Check evaluates an assignment against all constraints, returning the
// objective and whether every constraint is satisfied.
func (m *Model) Check(values []bool) (obj float64, ok bool) {
	for i, v := range values {
		if v {
			obj += m.obj[i]
		}
	}
	for _, c := range m.cons {
		lhs := 0.0
		for _, t := range c.Terms {
			if values[t.Var] {
				lhs += t.Coef
			}
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+Eps {
				return obj, false
			}
		case GE:
			if lhs < c.RHS-Eps {
				return obj, false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > Eps {
				return obj, false
			}
		}
	}
	return obj, true
}

// SolveBrute exhaustively enumerates all assignments. It is exponential
// and intended only for cross-validating Solve on tiny models in tests.
func SolveBrute(m *Model) (*Solution, error) {
	n := m.NumVars()
	if n > 24 {
		return nil, fmt.Errorf("milp: SolveBrute limited to 24 vars, model has %d", n)
	}
	best := math.Inf(1)
	var bestVals []bool
	vals := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			vals[i] = mask&(1<<i) != 0
		}
		if obj, ok := m.Check(vals); ok && obj < best {
			best = obj
			bestVals = append([]bool(nil), vals...)
		}
	}
	if bestVals == nil {
		return nil, ErrInfeasible
	}
	return &Solution{Values: bestVals, Objective: best, Optimal: true}, nil
}
