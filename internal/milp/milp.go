// Package milp provides a small mixed-integer-linear-programming layer
// for 0/1 decision models, replacing the Gurobi dependency of the paper
// (Sec. IV implements the Sec. III-A model with Gurobi).
//
// The package has two halves:
//
//   - a modelling API (binary variables, linear constraints, a linear
//     minimization objective) mirroring how the paper states Eq. (1)-(4);
//   - exact solvers: a depth-first branch-and-bound with unit
//     propagation and partition lower bounds (Solve), and an exhaustive
//     reference solver for cross-validation in tests (SolveBrute).
//
// The branch-and-bound is exact: when it returns without hitting the
// node budget, the solution is optimal. The paper's ring-construction
// model — an assignment structure plus pairwise conflict constraints —
// is well inside its comfort zone for the network sizes evaluated
// (N ≤ 32).
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Var identifies a binary decision variable within a Model.
type Var int

// Sense is the comparison direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // less-than-or-equal
	GE              // greater-than-or-equal
	EQ              // equal
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is a coefficient applied to a variable inside a linear expression.
type Term struct {
	Var  Var
	Coef float64
}

// Constraint is a linear constraint sum(Terms) Sense RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
}

// Model is a 0/1 integer linear program: minimize c^T x subject to
// linear constraints, x binary.
type Model struct {
	names []string
	obj   []float64
	cons  []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Binary adds a binary decision variable and returns its handle.
func (m *Model) Binary(name string) Var {
	m.names = append(m.names, name)
	m.obj = append(m.obj, 0)
	return Var(len(m.names) - 1)
}

// NumVars returns the number of variables in the model.
func (m *Model) NumVars() int { return len(m.names) }

// NumConstraints returns the number of constraints in the model.
func (m *Model) NumConstraints() int { return len(m.cons) }

// Name returns the name given to v when it was created.
func (m *Model) Name(v Var) string { return m.names[v] }

// SetObjectiveCoef sets the minimization coefficient of v.
func (m *Model) SetObjectiveCoef(v Var, c float64) { m.obj[v] = c }

// AddConstraint appends a linear constraint to the model. Terms with a
// zero coefficient are dropped; duplicate variables are merged.
func (m *Model) AddConstraint(name string, terms []Term, sense Sense, rhs float64) {
	merged := map[Var]float64{}
	for _, t := range terms {
		merged[t.Var] += t.Coef
	}
	clean := make([]Term, 0, len(merged))
	for v, c := range merged {
		if c != 0 {
			clean = append(clean, Term{v, c})
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i].Var < clean[j].Var })
	m.cons = append(m.cons, Constraint{Name: name, Terms: clean, Sense: sense, RHS: rhs})
}

// AtMostOne adds the constraint sum(vars) <= 1.
func (m *Model) AtMostOne(name string, vars ...Var) {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.AddConstraint(name, terms, LE, 1)
}

// ExactlyOne adds the constraint sum(vars) == 1.
func (m *Model) ExactlyOne(name string, vars ...Var) {
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.AddConstraint(name, terms, EQ, 1)
}

// Solution holds variable values and the objective of a solve.
type Solution struct {
	Values    []bool
	Objective float64
	// Optimal reports whether the solver proved optimality (it did not
	// stop early on the node budget).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Value reports the value assigned to v.
func (s *Solution) Value(v Var) bool { return s.Values[v] }

// ErrInfeasible is returned when the model has no feasible assignment.
var ErrInfeasible = errors.New("milp: model is infeasible")

// ErrBudget is returned when the node budget was exhausted before any
// feasible solution was found.
var ErrBudget = errors.New("milp: node budget exhausted without a feasible solution")

// Options tunes the branch-and-bound solver.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means a generous
	// default (10 million).
	MaxNodes int
	// IncumbentHint, when non-nil, primes the upper bound with a known
	// feasible solution (e.g. from a heuristic warm start).
	IncumbentHint []bool
}

const (
	unset int8 = iota
	zero
	one
)

type solver struct {
	m        *Model
	opt      Options
	fixed    []int8
	obj      []float64
	best     float64
	bestVals []bool
	haveBest bool
	nodes    int
	maxNodes int
	// partitions: disjoint exactly-one variable groups used for bounding.
	partitions [][]Var
	inPart     []bool
	// occur[v] = indices of constraints containing v.
	occur [][]int
}

// Solve minimizes the model exactly via branch and bound.
func Solve(m *Model, opt Options) (*Solution, error) {
	s := &solver{
		m:        m,
		opt:      opt,
		fixed:    make([]int8, m.NumVars()),
		obj:      m.obj,
		best:     math.Inf(1),
		maxNodes: opt.MaxNodes,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 10_000_000
	}
	s.buildIndexes()
	if opt.IncumbentHint != nil {
		if len(opt.IncumbentHint) != m.NumVars() {
			return nil, fmt.Errorf("milp: incumbent hint has %d values, model has %d vars",
				len(opt.IncumbentHint), m.NumVars())
		}
		if obj, ok := m.Check(opt.IncumbentHint); ok {
			s.best = obj
			s.bestVals = append([]bool(nil), opt.IncumbentHint...)
			s.haveBest = true
		}
	}

	feasible := s.search()
	sol := &Solution{Nodes: s.nodes, Optimal: s.nodes < s.maxNodes}
	if !s.haveBest {
		// Wrap the sentinels with solve-state context; callers must match
		// with errors.Is, not ==.
		if !feasible && sol.Optimal {
			return nil, fmt.Errorf("%w (%d vars, %d constraints, %d nodes explored)",
				ErrInfeasible, m.NumVars(), m.NumConstraints(), s.nodes)
		}
		return nil, fmt.Errorf("%w (explored %d of %d nodes)", ErrBudget, s.nodes, s.maxNodes)
	}
	sol.Values = s.bestVals
	sol.Objective = s.best
	return sol, nil
}

// Check evaluates an assignment against all constraints, returning the
// objective and whether every constraint is satisfied.
func (m *Model) Check(values []bool) (obj float64, ok bool) {
	for i, v := range values {
		if v {
			obj += m.obj[i]
		}
	}
	for _, c := range m.cons {
		lhs := 0.0
		for _, t := range c.Terms {
			if values[t.Var] {
				lhs += t.Coef
			}
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-9 {
				return obj, false
			}
		case GE:
			if lhs < c.RHS-1e-9 {
				return obj, false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-9 {
				return obj, false
			}
		}
	}
	return obj, true
}

func (s *solver) buildIndexes() {
	m := s.m
	s.occur = make([][]int, m.NumVars())
	for ci, c := range m.cons {
		for _, t := range c.Terms {
			s.occur[t.Var] = append(s.occur[t.Var], ci)
		}
	}
	// Collect disjoint exactly-one groups greedily (largest first) for
	// the lower bound.
	s.inPart = make([]bool, m.NumVars())
	type group struct{ vars []Var }
	var groups []group
	for _, c := range m.cons {
		if c.Sense != EQ || c.RHS != 1 {
			continue
		}
		allUnit := true
		for _, t := range c.Terms {
			if t.Coef != 1 {
				allUnit = false
				break
			}
		}
		if !allUnit {
			continue
		}
		vars := make([]Var, len(c.Terms))
		for i, t := range c.Terms {
			vars[i] = t.Var
		}
		groups = append(groups, group{vars})
	}
	sort.Slice(groups, func(i, j int) bool { return len(groups[i].vars) > len(groups[j].vars) })
	for _, g := range groups {
		overlap := false
		for _, v := range g.vars {
			if s.inPart[v] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, v := range g.vars {
			s.inPart[v] = true
		}
		s.partitions = append(s.partitions, g.vars)
	}
}

// propagate applies unit propagation until fixpoint. It records every
// variable it fixes in trail and reports false on contradiction.
func (s *solver) propagate(trail *[]Var) bool {
	changed := true
	for changed {
		changed = false
		for ci := range s.m.cons {
			c := &s.m.cons[ci]
			fixedSum, minFree, maxFree := 0.0, 0.0, 0.0
			freeCount := 0
			for _, t := range c.Terms {
				switch s.fixed[t.Var] {
				case one:
					fixedSum += t.Coef
				case unset:
					freeCount++
					if t.Coef > 0 {
						maxFree += t.Coef
					} else {
						minFree += t.Coef
					}
				}
			}
			// Feasibility windows.
			if c.Sense == LE || c.Sense == EQ {
				if fixedSum+minFree > c.RHS+1e-9 {
					return false
				}
			}
			if c.Sense == GE || c.Sense == EQ {
				if fixedSum+maxFree < c.RHS-1e-9 {
					return false
				}
			}
			if freeCount == 0 {
				continue
			}
			// Forcing: examine each free var.
			for _, t := range c.Terms {
				if s.fixed[t.Var] != unset {
					continue
				}
				// Setting t.Var = 1.
				if c.Sense == LE || c.Sense == EQ {
					base := minFree
					if t.Coef < 0 {
						base -= t.Coef // exclude t from the min
					}
					if fixedSum+base+t.Coef > c.RHS+1e-9 {
						if !s.fix(t.Var, zero, trail) {
							return false
						}
						changed = true
						continue
					}
				}
				if c.Sense == GE || c.Sense == EQ {
					base := maxFree
					if t.Coef > 0 {
						base -= t.Coef // exclude t from the max
					}
					if fixedSum+base+t.Coef < c.RHS-1e-9 {
						if !s.fix(t.Var, zero, trail) {
							return false
						}
						changed = true
						continue
					}
					// Setting t.Var = 0: remaining max without t.
					if fixedSum+base < c.RHS-1e-9 {
						if !s.fix(t.Var, one, trail) {
							return false
						}
						changed = true
						continue
					}
				}
			}
		}
	}
	return true
}

func (s *solver) fix(v Var, val int8, trail *[]Var) bool {
	if s.fixed[v] != unset {
		return s.fixed[v] == val
	}
	s.fixed[v] = val
	*trail = append(*trail, v)
	return true
}

func (s *solver) undo(trail []Var, from int) {
	for i := from; i < len(trail); i++ {
		s.fixed[trail[i]] = unset
	}
}

// lowerBound computes an admissible bound on the best completion of the
// current partial assignment.
func (s *solver) lowerBound() float64 {
	lb := 0.0
	for v, f := range s.fixed {
		if f == one {
			lb += s.obj[v]
		}
	}
	for _, part := range s.partitions {
		satisfied := false
		minCoef := math.Inf(1)
		anyFree := false
		for _, v := range part {
			switch s.fixed[v] {
			case one:
				satisfied = true
			case unset:
				anyFree = true
				if s.obj[v] < minCoef {
					minCoef = s.obj[v]
				}
			}
		}
		if satisfied {
			continue
		}
		if anyFree {
			lb += minCoef
		}
		// If no free var and none fixed to one the node is infeasible;
		// propagation catches that, so the bound need not.
	}
	// Free variables outside partitions can only lower the objective if
	// their coefficient is negative.
	for v, f := range s.fixed {
		if f == unset && !s.inPart[v] && s.obj[v] < 0 {
			lb += s.obj[v]
		}
	}
	return lb
}

// pickBranchVar chooses the next variable to branch on: the cheapest
// free variable of the unsatisfied partition with the fewest free
// variables; or, failing that, any free variable with the largest
// absolute objective coefficient.
func (s *solver) pickBranchVar() (Var, bool) {
	bestPart := -1
	bestFree := math.MaxInt
	for pi, part := range s.partitions {
		satisfied := false
		free := 0
		for _, v := range part {
			switch s.fixed[v] {
			case one:
				satisfied = true
			case unset:
				free++
			}
		}
		if satisfied || free == 0 {
			continue
		}
		if free < bestFree {
			bestFree = free
			bestPart = pi
		}
	}
	if bestPart >= 0 {
		var bv Var = -1
		bc := math.Inf(1)
		for _, v := range s.partitions[bestPart] {
			if s.fixed[v] == unset && s.obj[v] < bc {
				bc = s.obj[v]
				bv = v
			}
		}
		return bv, true
	}
	var bv Var = -1
	bc := -1.0
	for v, f := range s.fixed {
		if f != unset {
			continue
		}
		if a := math.Abs(s.obj[v]); a > bc {
			bc = a
			bv = Var(v)
		}
	}
	if bv < 0 {
		return 0, false
	}
	return bv, true
}

func (s *solver) search() bool {
	s.nodes++
	if s.nodes >= s.maxNodes {
		return false
	}
	var trail []Var
	if !s.propagate(&trail) {
		s.undo(trail, 0)
		return false
	}
	lb := s.lowerBound()
	if lb >= s.best-1e-9 && s.haveBest {
		s.undo(trail, 0)
		return false
	}
	v, any := s.pickBranchVar()
	if !any {
		// Complete assignment: validate and record.
		vals := make([]bool, len(s.fixed))
		for i, f := range s.fixed {
			vals[i] = f == one
		}
		obj, ok := s.m.Check(vals)
		s.undo(trail, 0)
		if !ok {
			return false
		}
		if obj < s.best {
			s.best = obj
			s.bestVals = vals
			s.haveBest = true
		}
		return true
	}

	found := false
	// Branch v=1 first (partition-driven models satisfy groups faster).
	for _, val := range [2]int8{one, zero} {
		mark := len(trail)
		if s.fix(v, val, &trail) {
			if s.search() {
				found = true
			}
		}
		s.undo(trail, mark)
		trail = trail[:mark]
	}
	s.undo(trail, 0)
	return found
}

// SolveBrute exhaustively enumerates all assignments. It is exponential
// and intended only for cross-validating Solve on tiny models in tests.
func SolveBrute(m *Model) (*Solution, error) {
	n := m.NumVars()
	if n > 24 {
		return nil, fmt.Errorf("milp: SolveBrute limited to 24 vars, model has %d", n)
	}
	best := math.Inf(1)
	var bestVals []bool
	vals := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			vals[i] = mask&(1<<i) != 0
		}
		if obj, ok := m.Check(vals); ok && obj < best {
			best = obj
			bestVals = append([]bool(nil), vals...)
		}
	}
	if bestVals == nil {
		return nil, ErrInfeasible
	}
	return &Solution{Values: bestVals, Objective: best, Optimal: true}, nil
}
