package milp

import (
	"context"
	"sync/atomic"

	"xring/internal/parallel"
)

// decision is one branching step of a frontier prefix.
type decision struct {
	v   int32
	val int8
}

// decomposeTarget picks how many frontier subproblems to aim for: a few
// per worker so finished workers can pick up fresh subtrees (the
// work-stealing effect), capped so decomposition replay stays cheap.
func decomposeTarget() int {
	t := 4 * parallel.Workers()
	if t > 64 {
		t = 64
	}
	return t
}

// solveParallel runs phase 1 of a parallel solve: decompose the top of
// the tree into a deterministic frontier of subproblem prefixes, then
// fan the subtrees out over internal/parallel with the shared atomic
// incumbent. The returned slice is ordered: resolved prefixes (leaves
// or contradictions hit during decomposition) first, then one result
// per frontier prefix in decomposition order — the reduction in Solve
// walks it in this fixed order regardless of completion timing.
func solveParallel(c *compiled, sh *shared, opt Options) ([]subResult, bool) {
	target := decomposeTarget()
	prefixes, resolved, budgetHit := decompose(c, sh, opt, target)
	if len(prefixes) == 0 {
		if len(resolved) > 0 {
			resolved[0].subproblems += int64(len(resolved))
		}
		return resolved, budgetHit
	}

	var inflight atomic.Int64
	results, _ := parallel.Map(context.Background(), len(prefixes), func(i int) (subResult, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		s := newSearcher(c, sh, opt.NoPropagation)
		if cur > 1 {
			s.stolen = true
		}
		s.initRoot()
		ok := s.propagate()
		if ok {
			for _, d := range prefixes[i] {
				s.decisions++
				s.pend = append(s.pend, pfix{d.v, d.val})
				if ok = s.propagate(); !ok {
					break
				}
			}
		}
		if ok {
			s.search()
		}
		return s.result(), nil
	})

	out := append(resolved, results...)
	if len(out) > 0 {
		out[0].subproblems += int64(len(out))
	}
	for _, r := range out {
		budgetHit = budgetHit || r.budgetHit
	}
	return out, budgetHit
}

// decompose expands the top of the search tree breadth-first until the
// frontier reaches target prefixes. Prefixes that propagate to a
// contradiction are dropped; prefixes the hint bound already dominates
// are dropped; complete prefixes are resolved in place. Everything here
// is serial and deterministic: the frontier order depends only on the
// model, the options and the hint.
func decompose(c *compiled, sh *shared, opt Options, target int) (prefixes [][]decision, resolved []subResult, budgetHit bool) {
	frontier := [][]decision{nil}
	for len(frontier) > 0 && len(frontier) < target {
		pre := frontier[0]
		frontier = frontier[1:]
		s := newSearcher(c, sh, opt.NoPropagation)
		s.initRoot()
		ok := s.propagate()
		if ok {
			for _, d := range pre {
				s.decisions++
				s.pend = append(s.pend, pfix{d.v, d.val})
				if ok = s.propagate(); !ok {
					break
				}
			}
		}
		if !ok {
			continue
		}
		if lb := s.lowerBound(); lb >= sh.bestObj()-Eps {
			continue
		}
		v, any := s.pickBranch()
		if !any {
			if s.sh.nodes.Add(1) > s.sh.maxNodes {
				budgetHit = true
				resolved = append(resolved, subResult{budgetHit: true})
				continue
			}
			s.nodes++
			s.recordLeaf()
			resolved = append(resolved, s.result())
			continue
		}
		for _, val := range valueOrder {
			np := make([]decision, len(pre)+1)
			copy(np, pre)
			np[len(pre)] = decision{v, val}
			frontier = append(frontier, np)
		}
	}
	return frontier, resolved, budgetHit
}
