package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("any.point"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if got := in.Hits("any.point"); got != 0 {
		t.Fatalf("nil injector counted hits: %d", got)
	}
	if err := Fire(context.Background(), "any.point"); err != nil {
		t.Fatalf("Fire with no injector in context: %v", err)
	}
}

func TestErrorRuleWrapsAndMatches(t *testing.T) {
	sentinel := errors.New("domain failure")
	in := NewInjector(1, Rule{Point: "p", Err: sentinel})
	err := in.Fire("p")
	if err == nil {
		t.Fatal("rule did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error does not match ErrInjected: %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("injected error does not match the wrapped sentinel: %v", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != "p" {
		t.Errorf("want *InjectedError at point p, got %#v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", Err: ErrInjected, After: 2, Times: 2})
	var fired int
	for i := 0; i < 6; i++ {
		if in.Fire("p") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("after=2,times=2 over 6 hits fired %d times, want 2", fired)
	}
	if in.Hits("p") != 6 {
		t.Fatalf("hits = %d, want 6", in.Hits("p"))
	}
}

func TestProbIsSeededAndReplayable(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed, Rule{Point: "p", Err: ErrInjected, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("p") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times; want a mix", fired, len(a))
	}
}

func TestPanicRuleAndRecoverTo(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", Panic: true})
	var err error
	func() {
		defer RecoverTo(&err, "worker")
		_ = in.Fire("p")
		t.Error("Fire should have panicked")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("recovered error is %T, want *PanicError", err)
	}
	if pe.Point != "worker" {
		t.Errorf("PanicError.Point = %q, want worker", pe.Point)
	}
	ip, ok := pe.Value.(*InjectedPanic)
	if !ok || ip.Point != "p" {
		t.Errorf("panic value = %#v, want *InjectedPanic{Point: p}", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
}

func TestRecoverToWithoutPanicLeavesErrorAlone(t *testing.T) {
	want := errors.New("regular failure")
	err := want
	func() {
		defer RecoverTo(&err, "worker")
	}()
	if err != want {
		t.Fatalf("RecoverTo rewrote error without a panic: %v", err)
	}
}

func TestDelayRule(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("p"); err != nil {
		t.Fatalf("delay-only rule returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= ~30ms", d)
	}
}

func TestContextPlumbing(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", Err: ErrInjected})
	ctx := WithInjector(context.Background(), in)
	if err := Fire(ctx, "p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire through context: %v", err)
	}
	if FromContext(ctx) != in {
		t.Fatal("FromContext did not return the installed injector")
	}
	detached := WithInjector(ctx, nil)
	if err := Fire(detached, "p"); err != nil {
		t.Fatalf("detached context still fires: %v", err)
	}
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	in := NewInjector(1,
		Rule{Point: "p", Err: ErrInjected, Prob: 0.5},
		Rule{Point: "q", Err: ErrInjected, After: 10},
	)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = in.Fire("p")
				_ = in.Fire("q")
			}
		}()
	}
	wg.Wait()
	if got := in.Hits("p"); got != 1600 {
		t.Fatalf("hits(p) = %d, want 1600", got)
	}
}

func TestParseSpec(t *testing.T) {
	sentinel := errors.New("registered sentinel")
	RegisterFaultError("testsentinel", sentinel)
	RegisterFaultPoint("a", "b", "c", "d")

	in, err := Parse("a=error;b=error:testsentinel,times=1;c=panic;d=delay:5ms,after=1;seed=9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := in.Fire("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("point a: %v", err)
	}
	if err := in.Fire("b"); !errors.Is(err, sentinel) {
		t.Errorf("point b should wrap the registered sentinel: %v", err)
	}
	if err := in.Fire("b"); err != nil {
		t.Errorf("point b times=1 fired twice: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("point c did not panic")
			}
		}()
		_ = in.Fire("c")
	}()
	if err := in.Fire("d"); err != nil { // after=1: first hit passes
		t.Errorf("point d fired on first hit: %v", err)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	RegisterFaultPoint("p")
	bad := []string{
		"noequals",
		"p=explode",
		"p=error:nosuchname",
		"p=delay",
		"p=delay:xyz",
		"p=error,bogus=1",
		"p=error,after=-1",
		"p=error,p=2",
		"seed=notanumber",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestParseSpecRejectsBadProbability pins the typed rejection of
// non-real probabilities — NaN fails every range comparison, so without
// the explicit check a p=NaN rule would fire unconditionally.
func TestParseSpecRejectsBadProbability(t *testing.T) {
	RegisterFaultPoint("p")
	for _, spec := range []string{"p=error,p=NaN", "p=error,p=nan", "p=error,p=-0.5", "p=error,p=1.5"} {
		_, err := Parse(spec)
		var pe *InvalidProbabilityError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) = %v, want *InvalidProbabilityError", spec, err)
		}
	}
	if _, err := Parse("p=error,p=0.5"); err != nil {
		t.Errorf("valid probability rejected: %v", err)
	}
}

// TestParseSpecRejectsUnknownPoint pins the typed rejection of point
// names nobody registered — a typo'd point would otherwise be accepted
// and silently never fire.
func TestParseSpecRejectsUnknownPoint(t *testing.T) {
	RegisterFaultPoint("known.point")
	_, err := Parse("definitely.not.registered=error")
	var ue *UnknownPointError
	if !errors.As(err, &ue) {
		t.Fatalf("Parse = %v, want *UnknownPointError", err)
	}
	if ue.Point != "definitely.not.registered" || len(ue.Known) == 0 {
		t.Fatalf("error payload incomplete: %+v", ue)
	}
	if _, err := Parse("known.point=error"); err != nil {
		t.Fatalf("registered point rejected: %v", err)
	}
}

func ExampleParse() {
	RegisterFaultPoint("demo.point")
	in, _ := Parse("demo.point=error,times=1")
	fmt.Println(in.Fire("demo.point") != nil)
	fmt.Println(in.Fire("demo.point") != nil)
	// Output:
	// true
	// false
}
