// Package resilience provides a context-scoped, deterministic
// fault-injection harness and typed panic capture for the synthesis
// pipeline.
//
// The harness follows the same pattern as obs.WithProgress: an
// *Injector rides a request's context into the engine, and
// instrumented code calls Fire(ctx, point) at named fault points —
// solver budgets, cache I/O, stage boundaries, worker-pool tasks.
// With no injector installed Fire is a nil-map lookup away from free,
// so production paths stay uninstrumented-cost.
//
// Determinism: an Injector is seeded, and probabilistic rules draw
// from its private PRNG under a mutex, so a given (seed, sequence of
// Fire calls) replays identically — including under -race, where the
// only shared state is the injector's own lock-protected counters.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"
)

// ErrInjected is the sentinel matched by errors.Is for every error the
// harness injects, regardless of the rule's wrapped error.
var ErrInjected = errors.New("resilience: injected fault")

// Rule describes one fault to inject at a named point. Exactly one of
// Err, Panic, or Delay should be set (Delay may also be combined with
// Err or Panic to model a slow failure).
type Rule struct {
	// Point names the fault point this rule arms, e.g. "core.ring" or
	// "service.cache.write".
	Point string
	// Err, when non-nil, is returned (wrapped in *InjectedError) from
	// Fire at the point.
	Err error
	// Panic, when true, makes Fire panic with *InjectedPanic.
	Panic bool
	// Delay, when positive, makes Fire sleep before acting.
	Delay time.Duration
	// After skips the first After hits of the point before the rule
	// starts firing.
	After int
	// Times bounds how many times the rule fires; 0 means unlimited.
	Times int
	// Prob, when in (0,1), fires the rule with that probability per
	// eligible hit, drawn from the injector's seeded PRNG. 0 or >=1
	// means always fire.
	Prob float64
}

// InjectedError wraps the error a rule injects, tagging it with the
// fault point. errors.Is(err, ErrInjected) is always true, and the
// rule's error remains reachable through Unwrap, so callers matching
// e.g. milp.ErrBudget see the injected failure as the real thing.
type InjectedError struct {
	Point string
	Err   error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("resilience: injected fault at %q: %v", e.Point, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// Is reports true for the ErrInjected sentinel; matching the wrapped
// error is handled by Unwrap.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// InjectedPanic is the value Fire panics with for panic rules, so
// recovery sites can distinguish injected panics in assertions.
type InjectedPanic struct {
	Point string
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("resilience: injected panic at %q", p.Point)
}

// ruleState tracks per-rule firing bookkeeping.
type ruleState struct {
	rule  Rule
	seen  int // hits of the point observed by this rule
	fired int // times the rule actually fired
}

// Injector holds armed rules and per-point hit counters. The zero
// value is unusable; use NewInjector. A nil *Injector is valid and
// inert, so call sites never nil-check.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]*ruleState
	hits  map[string]int
}

// NewInjector builds an injector with the given PRNG seed and rules.
func NewInjector(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string][]*ruleState),
		hits:  make(map[string]int),
	}
	for _, r := range rules {
		in.rules[r.Point] = append(in.rules[r.Point], &ruleState{rule: r})
	}
	return in
}

// Hits reports how many times the named point has been reached through
// this injector (whether or not any rule fired).
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Fire records a hit of the named point and applies the first eligible
// rule: sleeping for its delay, panicking with *InjectedPanic, or
// returning an *InjectedError. With no eligible rule (or a nil
// injector) it returns nil.
func (in *Injector) Fire(point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[point]++
	var armed *Rule
	for _, st := range in.rules[point] {
		st.seen++
		if st.seen <= st.rule.After {
			continue
		}
		if st.rule.Times > 0 && st.fired >= st.rule.Times {
			continue
		}
		if p := st.rule.Prob; p > 0 && p < 1 && in.rng.Float64() >= p {
			continue
		}
		st.fired++
		armed = &st.rule
		break
	}
	in.mu.Unlock()
	if armed == nil {
		return nil
	}
	if armed.Delay > 0 {
		time.Sleep(armed.Delay)
	}
	if armed.Panic {
		panic(&InjectedPanic{Point: point})
	}
	if armed.Err != nil {
		return &InjectedError{Point: point, Err: armed.Err}
	}
	return nil
}

type injectorCtxKey struct{}

// WithInjector returns a context carrying the injector; every fault
// point reached beneath it consults the injector's rules. Passing nil
// detaches any inherited injector.
func WithInjector(ctx context.Context, in *Injector) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, injectorCtxKey{}, in)
}

// FromContext extracts the injector carried by ctx, if any.
func FromContext(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(injectorCtxKey{}).(*Injector)
	return in
}

// Fire is the call-site entry point: it resolves the context's
// injector (if any) and fires the named point on it. Free when no
// injector is installed beyond the context lookup.
func Fire(ctx context.Context, point string) error {
	return FromContext(ctx).Fire(point)
}

// PanicError is a recovered panic converted into an error: the fault
// point (or goroutine role) where it was caught, the panic value, and
// the stack captured at recovery. It is how worker pools and the
// service report "a task panicked" without dying.
type PanicError struct {
	Point string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic at %q: %v", e.Point, e.Value)
}

// RecoverTo is a deferred helper: it recovers an in-flight panic and
// stores a *PanicError into *errp (preserving an already-set error by
// wrapping order: the panic wins, since it is the more fundamental
// failure). Usage:
//
//	defer resilience.RecoverTo(&err, "service.job")
func RecoverTo(errp *error, point string) {
	if r := recover(); r != nil {
		*errp = &PanicError{Point: point, Value: r, Stack: debug.Stack()}
	}
}
