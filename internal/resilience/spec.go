package resilience

// Fault-spec DSL: the -fault flag of xringd (and anything else that
// wants textual fault configuration) compiles to an Injector through
// Parse. The grammar is a semicolon-separated list of items:
//
//	point=action[,opt=value...]
//
// where action is one of
//
//	error            inject a generic injected error
//	error:NAME       inject the registered error NAME (e.g. "budget")
//	panic            panic with *InjectedPanic
//	delay:DURATION   sleep for DURATION (Go syntax, e.g. 50ms)
//
// and the options are
//
//	after=N   skip the first N hits
//	times=N   fire at most N times (default unlimited)
//	p=F       fire with probability F per hit (seeded, replayable)
//
// A bare "seed=N" item sets the injector's PRNG seed. Example:
//
//	core.ring=error:budget;service.cache.write=error,times=1;seed=7

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

var (
	regMu     sync.RWMutex
	errByName = map[string]error{}

	pointMu     sync.RWMutex
	knownPoints = map[string]bool{}
)

// RegisterFaultError binds a name usable in "error:NAME" actions to a
// concrete error value. Layers register their sentinels at init (the
// service registers "budget" for milp.ErrBudget) so the DSL can
// inject domain errors without this package importing the domain.
func RegisterFaultError(name string, err error) {
	regMu.Lock()
	defer regMu.Unlock()
	errByName[name] = err
}

func lookupFaultError(name string) (error, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	err, ok := errByName[name]
	return err, ok
}

// registeredFaultErrorNames lists the names usable in error:NAME, for
// error messages.
func registeredFaultErrorNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(errByName))
	for n := range errByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterFaultPoint declares fault-point names that instrumented code
// fires, making them addressable from the DSL. Instrumented packages
// register their points at init (core registers core.ring and the
// core.stage.* gates, parallel registers parallel.task, the service
// registers its job and cache points), and Parse rejects any name
// nobody registered — a typo'd point would otherwise be accepted and
// silently never fire.
func RegisterFaultPoint(names ...string) {
	pointMu.Lock()
	defer pointMu.Unlock()
	for _, n := range names {
		knownPoints[n] = true
	}
}

// KnownFaultPoints lists every registered fault-point name, sorted.
func KnownFaultPoints() []string {
	pointMu.RLock()
	defer pointMu.RUnlock()
	names := make([]string, 0, len(knownPoints))
	for n := range knownPoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UnknownPointError reports a fault spec addressing a point name no
// instrumented code registered. Known carries the registered names so
// the operator sees the valid vocabulary in the failure itself.
type UnknownPointError struct {
	Point string
	Known []string
}

func (e *UnknownPointError) Error() string {
	return fmt.Sprintf("resilience: unknown fault point %q (registered: %s)",
		e.Point, strings.Join(e.Known, ", "))
}

// InvalidProbabilityError reports a p= option whose value is not a real
// probability: unparsable, NaN, negative, or above 1.
type InvalidProbabilityError struct {
	Value string
}

func (e *InvalidProbabilityError) Error() string {
	return fmt.Sprintf("resilience: bad p=%q: want a probability in [0,1]", e.Value)
}

// Parse compiles a fault-spec string into a seeded Injector. An empty
// spec returns (nil, nil): no injector, zero overhead.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	var rules []Rule
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		point, rest, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("resilience: fault item %q: want point=action", item)
		}
		point = strings.TrimSpace(point)
		if point == "seed" {
			n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resilience: fault seed %q: %v", rest, err)
			}
			seed = n
			continue
		}
		pointMu.RLock()
		known := knownPoints[point]
		pointMu.RUnlock()
		if !known {
			return nil, &UnknownPointError{Point: point, Known: KnownFaultPoints()}
		}
		fields := strings.Split(rest, ",")
		rule := Rule{Point: point}
		if err := applyAction(&rule, strings.TrimSpace(fields[0])); err != nil {
			return nil, fmt.Errorf("resilience: fault item %q: %w", item, err)
		}
		for _, f := range fields[1:] {
			if err := applyOption(&rule, strings.TrimSpace(f)); err != nil {
				return nil, fmt.Errorf("resilience: fault item %q: %w", item, err)
			}
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return NewInjector(seed, rules...), nil
}

func applyAction(rule *Rule, action string) error {
	kind, arg, hasArg := strings.Cut(action, ":")
	switch kind {
	case "error":
		if !hasArg {
			rule.Err = ErrInjected
			return nil
		}
		err, ok := lookupFaultError(arg)
		if !ok {
			return fmt.Errorf("unknown error name %q (registered: %s)",
				arg, strings.Join(registeredFaultErrorNames(), ", "))
		}
		rule.Err = err
	case "panic":
		if hasArg {
			return fmt.Errorf("panic action takes no argument")
		}
		rule.Panic = true
	case "delay":
		if !hasArg {
			return fmt.Errorf("delay action needs a duration, e.g. delay:50ms")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("bad delay %q: %v", arg, err)
		}
		rule.Delay = d
	default:
		return fmt.Errorf("unknown action %q (want error, error:NAME, panic, or delay:DUR)", action)
	}
	return nil
}

func applyOption(rule *Rule, opt string) error {
	key, val, ok := strings.Cut(opt, "=")
	if !ok {
		return fmt.Errorf("bad option %q: want key=value", opt)
	}
	switch key {
	case "after":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("bad after=%q: want a non-negative integer", val)
		}
		rule.After = n
	case "times":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("bad times=%q: want a non-negative integer", val)
		}
		rule.Times = n
	case "p":
		// NaN fails every comparison, so it must be rejected explicitly: a
		// NaN probability would otherwise slip through the range check and
		// make the rule fire unconditionally.
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(f) || f < 0 || f > 1 {
			return &InvalidProbabilityError{Value: val}
		}
		rule.Prob = f
	default:
		return fmt.Errorf("unknown option %q (want after, times, or p)", key)
	}
	return nil
}
