package xtalk

import (
	"math"
	"testing"

	"xring/internal/geom"
	"xring/internal/loss"
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
)

// grid8 builds a bare design on the 8-node floorplan.
func grid8(t *testing.T) *router.Design {
	t.Helper()
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// addChannel registers a channel and its route.
func addChannel(d *router.Design, wg int, src, dst, wl int) {
	sig := noc.Signal{Src: src, Dst: dst}
	d.Waveguides[wg].Channels = append(d.Waveguides[wg].Channels, router.Channel{Sig: sig, WL: wl})
	d.Routes[sig] = &router.Route{Sig: sig, Kind: router.OnRing, WG: wg, WL: wl}
}

func analyze(t *testing.T, d *router.Design, plan *pdn.Plan) (*loss.Report, *Report) {
	t.Helper()
	return analyzeOpts(t, d, plan, Options{})
}

// analyzeLeaky runs the analysis in the terminator-less ablation mode,
// where receiver drop leakage counts as noise.
func analyzeLeaky(t *testing.T, d *router.Design, plan *pdn.Plan) (*loss.Report, *Report) {
	t.Helper()
	return analyzeOpts(t, d, plan, Options{IncludeDropLeakage: true})
}

func analyzeOpts(t *testing.T, d *router.Design, plan *pdn.Plan, opts Options) (*loss.Report, *Report) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	lrep, err := loss.Analyze(d, plan)
	if err != nil {
		t.Fatal(err)
	}
	xrep, err := AnalyzeOpts(d, plan, lrep, opts)
	if err != nil {
		t.Fatal(err)
	}
	return lrep, xrep
}

func TestDropLeakageReachesNextReceiver(t *testing.T) {
	d := grid8(t)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1}}
	addChannel(d, 0, 0, 3, 0) // leak source
	addChannel(d, 0, 3, 6, 0) // head-to-tail reuse: the victim
	lrep, xrep := analyzeLeaky(t, d, nil)

	victim := noc.Signal{Src: 3, Dst: 6}
	n := xrep.NoiseMW[victim]
	if n <= 0 {
		t.Fatal("head-to-tail reuse must leak noise into the next receiver")
	}
	// Leakage is symmetric: the victim's own drop leakage circulates on
	// and reaches the first signal's receiver too.
	if xrep.NumNoisy != 2 {
		t.Fatalf("NumNoisy = %d, want 2", xrep.NumNoisy)
	}
	// Closed-form check for the victim: SNR = noise chain − IL_victim,
	// where the noise chain is ILBeforeDrop(source) + |XtalkDrop| +
	// through(sender bank at 3) + prop(3->7->6) + drop + PD.
	par := d.Par
	src := lrep.Signals[noc.Signal{Src: 0, Dst: 3}]
	vic := lrep.Signals[victim]
	noiseDB := src.ILBeforeDrop - par.XtalkDropDB +
		1*par.ThroughDB + // sender bank at node 3
		4*par.PropagationDBPerMM + // 3->7->6 is 4 mm
		par.DropDB + par.PhotodetectorDB
	wantSNR := noiseDB - vic.IL
	gotSNR := 10 * math.Log10(xrep.SignalMW[victim]/n)
	if math.Abs(gotSNR-wantSNR) > 1e-6 {
		t.Fatalf("victim SNR = %v, want %v", gotSNR, wantSNR)
	}
	if xrep.WorstSNR > wantSNR+1e-9 {
		t.Fatalf("worst SNR %v should be at most the victim's %v", xrep.WorstSNR, wantSNR)
	}
}

func TestOpeningTerminatesLeakage(t *testing.T) {
	// Channels (0,3) and (6,5) on λ0: (0,3)'s leakage travels via node 7
	// toward the receiver at 5; an opening at 7 blocks exactly that
	// path. (6,5)'s own leakage reaches (0,3)'s receiver either way.
	sigA := noc.Signal{Src: 0, Dst: 3}
	sigB := noc.Signal{Src: 6, Dst: 5}

	d := grid8(t)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: 7}}
	addChannel(d, 0, 0, 3, 0)
	addChannel(d, 0, 6, 5, 0)
	_, xrep := analyzeLeaky(t, d, nil)
	if xrep.NoiseMW[sigB] != 0 {
		t.Fatalf("opening at 7 should block leakage into %v", sigB)
	}
	if xrep.NoiseMW[sigA] <= 0 {
		t.Fatalf("leakage from %v into %v is not blocked by the opening", sigB, sigA)
	}
	if xrep.NumNoisy != 1 {
		t.Fatalf("NumNoisy = %d, want 1", xrep.NumNoisy)
	}

	// Without the opening both directions of leakage land.
	d2 := grid8(t)
	d2.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1}}
	addChannel(d2, 0, 0, 3, 0)
	addChannel(d2, 0, 6, 5, 0)
	_, xrep2 := analyzeLeaky(t, d2, nil)
	if xrep2.NumNoisy != 2 {
		t.Fatalf("without opening NumNoisy = %d, want 2", xrep2.NumNoisy)
	}
	if math.IsInf(xrep2.WorstSNR, 1) {
		t.Fatal("noisy design must report a finite worst SNR")
	}
}

func TestSelfReabsorptionIsNotNoise(t *testing.T) {
	d := grid8(t)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1}}
	addChannel(d, 0, 0, 3, 0)
	_, xrep := analyzeLeaky(t, d, nil)
	if xrep.NumNoisy != 0 {
		t.Fatal("a signal's own circulating leakage must not count as noise")
	}
}

func TestDifferentWavelengthImmune(t *testing.T) {
	d := grid8(t)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1}}
	addChannel(d, 0, 0, 3, 0)
	addChannel(d, 0, 3, 6, 1) // different wavelength: immune
	_, xrep := analyzeLeaky(t, d, nil)
	if xrep.NumNoisy != 0 {
		t.Fatal("noise must only affect same-wavelength receivers")
	}
}

func TestPDNCrossingInjection(t *testing.T) {
	// Full pipeline with a comb PDN: crossings inject laser leakage.
	net := noc.Floorplan16()
	res, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := shortcut.Construct(d, shortcut.Options{Disable: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.Run(d, mapping.Options{MaxWL: 16, NoOpenings: true}); err != nil {
		t.Fatal(err)
	}
	plan, err := pdn.BuildComb(d)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrossingsAdded == 0 {
		t.Skip("instance produced a single-ring design with no crossings")
	}
	_, xrep := analyze(t, d, plan)
	if xrep.NumNoisy == 0 {
		t.Fatal("comb PDN crossings must inject noise")
	}
	if math.IsInf(xrep.WorstSNR, 1) || xrep.WorstSNR > 60 {
		t.Fatalf("implausible worst SNR %v for a comb PDN", xrep.WorstSNR)
	}
}

func TestXRingTreePDNNoiseHeadline(t *testing.T) {
	// The paper's headline: >98% of XRing signals suffer no first-order
	// noise (16- and 32-node networks with full PDN).
	for _, n := range []int{16, 32} {
		net, err := noc.FloorplanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ring.Construct(net, ring.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := shortcut.Construct(d, shortcut.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := mapping.Run(d, mapping.Options{MaxWL: n - 2, AlignOpenings: true}); err != nil {
			t.Fatal(err)
		}
		plan, err := pdn.BuildTree(d)
		if err != nil {
			t.Fatal(err)
		}
		_, xrep := analyze(t, d, plan)
		if xrep.NoiseFreeFrac < 0.98 {
			t.Fatalf("n=%d: noise-free fraction %.3f < 0.98", n, xrep.NoiseFreeFrac)
		}
	}
}

func TestCSEWavelengthRuleMatters(t *testing.T) {
	// Manual merged pair: with the paper's wavelength rule (λ0/λ1) the
	// crossing leaks onto off-resonance receivers (no noise); an
	// ablation giving both shortcuts λ0 shows noise.
	build := func(wlPartner int) *Report {
		pos := []geom.Point{
			{X: 1, Y: 0}, {X: 3, Y: 0},
			{X: 4, Y: 1}, {X: 4, Y: 3},
			{X: 3, Y: 4}, {X: 1, Y: 4},
			{X: 0, Y: 3}, {X: 0, Y: 1},
		}
		net := &noc.Network{DieW: 4, DieH: 4}
		for i, p := range pos {
			net.Nodes = append(net.Nodes, noc.Node{ID: i, Name: "n", Pos: p})
		}
		orders := []geom.LOrder{
			geom.VH, geom.HV, geom.VH, geom.VH, geom.VH, geom.HV, geom.VH, geom.VH,
		}
		d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 4, 5, 6, 7}, orders)
		if err != nil {
			t.Fatal(err)
		}
		s1 := &router.Shortcut{A: 1, B: 4, Partner: 1, PathAB: geom.Polyline{pos[1], pos[4]}}
		s2 := &router.Shortcut{A: 2, B: 7, Partner: 0, PathAB: geom.Polyline{pos[2], pos[7]}}
		d.Shortcuts = []*router.Shortcut{s1, s2}
		sig1 := noc.Signal{Src: 1, Dst: 4}
		sig2 := noc.Signal{Src: 2, Dst: 7}
		s1.Channels = []router.ShortcutChannel{{Sig: sig1, WL: 0}}
		s2.Channels = []router.ShortcutChannel{{Sig: sig2, WL: wlPartner}}
		d.Routes[sig1] = &router.Route{Sig: sig1, Kind: router.OnShortcut, SC: 0, WL: 0}
		d.Routes[sig2] = &router.Route{Sig: sig2, Kind: router.OnShortcut, SC: 1, WL: wlPartner}
		_, xrep := analyze(t, d, nil)
		return xrep
	}
	if rep := build(1); rep.NumNoisy != 0 {
		t.Fatalf("distinct wavelengths: NumNoisy = %d, want 0", rep.NumNoisy)
	}
	if rep := build(0); rep.NumNoisy == 0 {
		t.Fatal("equal wavelengths on crossed shortcuts must show noise")
	}
}

func TestAnalyzeRequiresLossReport(t *testing.T) {
	d := grid8(t)
	if _, err := Analyze(d, nil, nil); err == nil {
		t.Fatal("want error without loss report")
	}
}

func TestSignalPowerPositive(t *testing.T) {
	d := grid8(t)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1}}
	addChannel(d, 0, 0, 3, 0)
	addChannel(d, 0, 1, 7, 1)
	_, xrep := analyze(t, d, nil)
	for sig, p := range xrep.SignalMW {
		if p <= 0 {
			t.Fatalf("signal %v has non-positive detector power", sig)
		}
	}
	if len(xrep.SignalMW) != 2 {
		t.Fatal("detector power for every signal")
	}
}
