package xtalk

import (
	"testing"

	"xring/internal/loss"
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/parallel"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
)

// synthesizeForTest runs the full flow (Steps 1-4 + loss analysis) on a
// network, without importing core (which imports this package).
func synthesizeForTest(t *testing.T, net *noc.Network) (*router.Design, *pdn.Plan, *loss.Report) {
	t.Helper()
	rres, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par := phys.Default()
	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := shortcut.Construct(d, shortcut.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.Run(d, mapping.Options{
		MaxWL:         net.N(),
		AlignOpenings: true,
		PreferSharing: true, // reuse chains exercise drop leakage
		MaxWaveguides: mapping.WaveguideCap(net, par),
	}); err != nil {
		t.Fatal(err)
	}
	plan, err := pdn.BuildTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	lrep, err := loss.Analyze(d, plan)
	if err != nil {
		t.Fatal(err)
	}
	return d, plan, lrep
}

// TestAnalyzeWorkerInvariant checks that the sharded noise propagation
// produces bit-identical reports for any worker count: shard-local
// accumulators are merged in waveguide order, so the FP addition order
// never depends on scheduling.
func TestAnalyzeWorkerInvariant(t *testing.T) {
	defer parallel.SetWorkers(0)
	nets := []*noc.Network{noc.Floorplan8(), noc.Floorplan16()}
	for _, net := range nets {
		d, plan, lrep := synthesizeForTest(t, net)

		parallel.SetWorkers(1)
		ref, err := AnalyzeOpts(d, plan, lrep, Options{IncludeDropLeakage: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			parallel.SetWorkers(workers)
			got, err := AnalyzeOpts(d, plan, lrep, Options{IncludeDropLeakage: true})
			if err != nil {
				t.Fatal(err)
			}
			if got.WorstSNR != ref.WorstSNR || got.WorstSNRSignal != ref.WorstSNRSignal {
				t.Fatalf("n=%d workers=%d: worst SNR %v@%v, want %v@%v", net.N(), workers,
					got.WorstSNR, got.WorstSNRSignal, ref.WorstSNR, ref.WorstSNRSignal)
			}
			if got.NumNoisy != ref.NumNoisy {
				t.Fatalf("n=%d workers=%d: %d noisy signals, want %d", net.N(), workers, got.NumNoisy, ref.NumNoisy)
			}
			if len(got.NoiseMW) != len(ref.NoiseMW) {
				t.Fatalf("n=%d workers=%d: noise map size %d, want %d", net.N(), workers, len(got.NoiseMW), len(ref.NoiseMW))
			}
			for sig, want := range ref.NoiseMW {
				if got.NoiseMW[sig] != want {
					t.Fatalf("n=%d workers=%d: noise for %v is %v, want %v", net.N(), workers, sig, got.NoiseMW[sig], want)
				}
			}
			for sig, want := range ref.SignalMW {
				if got.SignalMW[sig] != want {
					t.Fatalf("n=%d workers=%d: signal power for %v is %v, want %v", net.N(), workers, sig, got.SignalMW[sig], want)
				}
			}
		}
	}
}
