package crossbar

import (
	"testing"

	"xring/internal/noc"
	"xring/internal/phys"
)

func TestSynthesizeAllCombos(t *testing.T) {
	net := noc.Floorplan8()
	par := phys.TableI()
	for _, kind := range []Kind{LambdaRouter, GWOR, Light} {
		for _, mapper := range []Mapper{MapperMatrix, MapperPlanar, MapperProjection} {
			res, err := Synthesize(net, kind, mapper, par)
			if err != nil {
				t.Fatalf("%v/%v: %v", kind, mapper, err)
			}
			if len(res.Signals) != 56 {
				t.Fatalf("%v/%v: %d signals", kind, mapper, len(res.Signals))
			}
			if res.WorstIL <= 0 {
				t.Fatalf("%v/%v: worst IL %v", kind, mapper, res.WorstIL)
			}
			for sig, pm := range res.Signals {
				if pm.Length <= 0 || pm.IL <= 0 || pm.Drops != 1 {
					t.Fatalf("%v/%v %v: bad metrics %+v", kind, mapper, sig, pm)
				}
				if pm.Crossings < 0 || pm.Throughs < 0 {
					t.Fatalf("%v/%v %v: negative counts", kind, mapper, sig)
				}
			}
		}
	}
}

func TestWavelengthCounts(t *testing.T) {
	net := noc.Floorplan8()
	par := phys.TableI()
	lr, _ := Synthesize(net, LambdaRouter, MapperMatrix, par)
	gw, _ := Synthesize(net, GWOR, MapperMatrix, par)
	li, _ := Synthesize(net, Light, MapperMatrix, par)
	// Table I: λ-router uses N wavelengths, GWOR and Light N-1.
	if lr.Wavelengths != 8 || gw.Wavelengths != 7 || li.Wavelengths != 7 {
		t.Fatalf("#wl = %d/%d/%d, want 8/7/7", lr.Wavelengths, gw.Wavelengths, li.Wavelengths)
	}
}

func TestMapperTradeoffs(t *testing.T) {
	// The defining shape of Table I's tool rows: the matrix mapper has
	// the most crossings; the planar mapper trades them for length.
	net := noc.Floorplan16()
	par := phys.TableI()
	matrix, err := Synthesize(net, LambdaRouter, MapperMatrix, par)
	if err != nil {
		t.Fatal(err)
	}
	planar, err := Synthesize(net, LambdaRouter, MapperPlanar, par)
	if err != nil {
		t.Fatal(err)
	}
	if planar.WorstCrossings >= matrix.WorstCrossings {
		t.Fatalf("planar crossings %d should be below matrix %d",
			planar.WorstCrossings, matrix.WorstCrossings)
	}
	if planar.WorstLen <= matrix.WorstLen {
		t.Fatalf("planar length %v should exceed matrix %v",
			planar.WorstLen, matrix.WorstLen)
	}
}

func TestLightBeatsLambdaRouterOnThroughs(t *testing.T) {
	net := noc.Floorplan16()
	par := phys.TableI()
	lr, _ := Synthesize(net, LambdaRouter, MapperProjection, par)
	li, _ := Synthesize(net, Light, MapperProjection, par)
	for sig := range lr.Signals {
		if li.Signals[sig].Throughs >= lr.Signals[sig].Throughs {
			t.Fatalf("Light should pass fewer MRRs than λ-router for %v", sig)
		}
	}
	if li.WorstIL >= lr.WorstIL {
		t.Fatalf("Light worst IL %v should beat λ-router %v", li.WorstIL, lr.WorstIL)
	}
}

func TestWorstColumnsConsistent(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, GWOR, MapperProjection, phys.TableI())
	if err != nil {
		t.Fatal(err)
	}
	pm := res.Signals[res.Worst]
	if pm.IL != res.WorstIL || pm.Length != res.WorstLen || pm.Crossings != res.WorstCrossings {
		t.Fatal("worst columns do not match the worst signal")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	small := noc.Grid(1, 1, 2, 1)
	if _, err := Synthesize(small, GWOR, MapperMatrix, phys.TableI()); err == nil {
		t.Fatal("want error for 1-node network")
	}
}

func TestStringers(t *testing.T) {
	if LambdaRouter.String() != "lambda-router" || GWOR.String() != "gwor" || Light.String() != "light" {
		t.Fatal("Kind.String")
	}
	if MapperMatrix.String() != "matrix" || MapperPlanar.String() != "planar" || MapperProjection.String() != "projection" {
		t.Fatal("Mapper.String")
	}
}
