// Package crossbar implements the crossbar-router baselines of the
// paper's Table I: the λ-router [6], GWOR [7] and Light [9] logical
// topologies, each realized on the physical plane by one of three
// mappers that emulate the characteristic trade-offs of the design
// tools the paper compares against:
//
//   - MapperMatrix (Proton+-like): ports in index order, direct
//     L-shaped access routing — the shortest wires and the most
//     waveguide crossings;
//   - MapperPlanar (PlanarONoC-like): crossing-minimized — ports in
//     geometric order, per-path orientation chosen greedily, and any
//     remaining access-access crossing resolved by detouring one path
//     around the router block (long wires, few crossings);
//   - MapperProjection (ToPro-like): ports in geometric order with
//     direct routing — the balanced middle ground.
//
// The router core is modelled per topology by its wavelength count and
// per-signal element counts (through MRRs, drops, internal crossings,
// internal path length); the access network (node to router port) is
// routed geometrically and its crossings are counted exactly with the
// geometry engine. DESIGN.md documents this substitution for the three
// closed-source physical-design tools.
package crossbar

import (
	"fmt"
	"math"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
)

// Kind selects the crossbar router topology.
type Kind int

// Supported topologies.
const (
	LambdaRouter Kind = iota
	GWOR
	Light
)

func (k Kind) String() string {
	switch k {
	case LambdaRouter:
		return "lambda-router"
	case GWOR:
		return "gwor"
	default:
		return "light"
	}
}

// Mapper selects the physical mapping strategy.
type Mapper int

// Supported mappers.
const (
	MapperMatrix Mapper = iota
	MapperPlanar
	MapperProjection
)

func (m Mapper) String() string {
	switch m {
	case MapperMatrix:
		return "matrix"
	case MapperPlanar:
		return "planar"
	default:
		return "projection"
	}
}

// ElementPitchMM is the spacing between adjacent optical switching
// elements inside the router core.
const ElementPitchMM = 0.1

// PortPitchMM is the spacing between adjacent access ports on the
// router block boundary.
const PortPitchMM = 0.2

// PathMetrics describes one signal's realized path.
type PathMetrics struct {
	Sig noc.Signal
	// Length is the total waveguide length (access + core) in mm.
	Length float64
	// Crossings = core crossings + access crossings passed.
	Crossings int
	Throughs  int
	Drops     int
	Bends     int
	// IL is the total insertion loss in dB.
	IL float64
}

// Result is a synthesized crossbar router with its analysis.
type Result struct {
	Kind   Kind
	Mapper Mapper
	N      int
	// Wavelengths is the #wl column.
	Wavelengths int
	Signals     map[noc.Signal]*PathMetrics
	// WorstIL, Worst, WorstLen, WorstCrossings are the il_w, L and C
	// columns.
	WorstIL        float64
	Worst          noc.Signal
	WorstLen       float64
	WorstCrossings int
}

// core returns the topology-dependent element counts for signal i->j.
func core(kind Kind, n, i, j int) (throughs, crossings int, lengthMM float64) {
	fwd := ((j - i) + n) % n
	switch kind {
	case LambdaRouter:
		// Diamond of N stages: a signal traverses every stage, passing
		// one element per stage (N-1 off resonance); inter-stage wiring
		// shifts the signal |i-j| rows, each shift crossing one lane.
		d := i - j
		if d < 0 {
			d = -d
		}
		return n - 1, d, float64(n+d) * ElementPitchMM
	case GWOR:
		// Dimension-ordered 4x4 blocks: roughly half the matrix hops.
		return n/2 - 1, (fwd + 1) / 2, float64(fwd+n/2) * ElementPitchMM
	default: // Light
		// Light minimizes MRR passes (one off-resonance MRR per path)
		// at the cost of some internal crossings.
		return 1, fwd/4 + 1, float64(fwd+2) * ElementPitchMM
	}
}

// wavelengths returns the #wl requirement per topology.
func wavelengths(kind Kind, n int) int {
	if kind == LambdaRouter {
		return n
	}
	return n - 1
}

// access is one node-to-port waveguide.
type access struct {
	node int
	path geom.Polyline
	// extra is detour length added by the planar mapper.
	extra float64
	// crossings with other access waveguides.
	crossings int
}

// Synthesize builds and analyzes a crossbar router for the network.
func Synthesize(net *noc.Network, kind Kind, mapper Mapper, par phys.Params) (*Result, error) {
	n := net.N()
	if n < 2 {
		return nil, fmt.Errorf("crossbar: need at least 2 nodes, have %d", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	// Router block centered on the die.
	cx, cy := net.DieW/2, net.DieH/2
	side := float64(n) * PortPitchMM
	top := cy + side/2
	right := cx + side/2

	// Port assignment: index order for the matrix mapper, geometric
	// order otherwise.
	inOrder := portOrder(net, mapper, true)
	outOrder := portOrder(net, mapper, false)

	ins := buildAccess(net, inOrder, func(k int) geom.Point {
		return geom.Point{X: cx - side/2 + (float64(k)+0.5)*PortPitchMM, Y: top}
	}, true)
	outs := buildAccess(net, outOrder, func(k int) geom.Point {
		return geom.Point{X: right, Y: cy - side/2 + (float64(k)+0.5)*PortPitchMM}
	}, false)

	all := append(append([]*access{}, ins...), outs...)
	if mapper == MapperPlanar {
		planarize(all, side)
	}
	countAccessCrossings(all)

	inByNode := map[int]*access{}
	outByNode := map[int]*access{}
	for _, a := range ins {
		inByNode[a.node] = a
	}
	for _, a := range outs {
		outByNode[a.node] = a
	}

	res := &Result{
		Kind:        kind,
		Mapper:      mapper,
		N:           n,
		Wavelengths: wavelengths(kind, n),
		Signals:     map[noc.Signal]*PathMetrics{},
		WorstIL:     math.Inf(-1),
	}
	for _, sig := range noc.AllToAll(n) {
		thr, cross, coreLen := core(kind, n, sig.Src, sig.Dst)
		in := inByNode[sig.Src]
		out := outByNode[sig.Dst]
		pm := &PathMetrics{
			Sig:       sig,
			Length:    in.path.Length() + in.extra + coreLen + out.path.Length() + out.extra,
			Crossings: cross + in.crossings + out.crossings,
			Throughs:  thr,
			Drops:     1,
			Bends:     in.path.Bends() + out.path.Bends() + 2,
		}
		pm.IL = pm.Length*par.PropagationDBPerMM +
			float64(pm.Crossings)*par.CrossingDB +
			float64(pm.Throughs)*par.ThroughDB +
			float64(pm.Drops)*par.DropDB +
			float64(pm.Bends)*par.BendDB +
			par.PhotodetectorDB
		res.Signals[sig] = pm
		if pm.IL > res.WorstIL {
			res.WorstIL = pm.IL
			res.Worst = sig
			res.WorstLen = pm.Length
			res.WorstCrossings = pm.Crossings
		}
	}
	return res, nil
}

// portOrder returns node IDs in the order their ports appear along the
// block edge.
func portOrder(net *noc.Network, mapper Mapper, input bool) []int {
	n := net.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if mapper == MapperMatrix {
		return order
	}
	// Geometric ordering: inputs (top edge) by node X, outputs (right
	// edge) by node Y, so access waveguides mostly nest instead of
	// crossing.
	key := func(id int) float64 {
		if input {
			return net.Nodes[id].Pos.X*1000 + net.Nodes[id].Pos.Y
		}
		return net.Nodes[id].Pos.Y*1000 + net.Nodes[id].Pos.X
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if key(order[b]) < key(order[a]) {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	return order
}

// buildAccess routes one access waveguide per node to its port.
// Inputs approach the top edge vertically last; outputs approach the
// right edge horizontally last.
func buildAccess(net *noc.Network, order []int, portAt func(k int) geom.Point, input bool) []*access {
	out := make([]*access, len(order))
	for k, node := range order {
		p := portAt(k)
		var path geom.Polyline
		if input {
			path = geom.LPath(net.Nodes[node].Pos, p, geom.HV)
		} else {
			path = geom.LPath(net.Nodes[node].Pos, p, geom.VH)
		}
		out[k] = &access{node: node, path: path}
	}
	return out
}

// planarize resolves access-access crossings the way a planar embedder
// would: the later path of each crossing pair detours around the router
// block, trading length for crossings.
func planarize(all []*access, side float64) {
	detoured := map[int]bool{}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if detoured[i] || detoured[j] {
				continue
			}
			if geom.PathsCross(all[i].path, all[j].path) {
				detoured[j] = true
			}
		}
	}
	for j := range detoured {
		a := all[j]
		// The detour keeps the direct length and adds a loop around the
		// router block.
		a.extra = a.path.Length() + 2*side
		// A detoured path leaves the congested region; drop its
		// geometric footprint so it no longer crosses others.
		a.path = geom.Polyline{a.path.Start(), a.path.Start()}
	}
}

// countAccessCrossings counts, per access waveguide, its crossings with
// every other access waveguide.
func countAccessCrossings(all []*access) {
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			c := geom.CrossingsBetween(all[i].path, all[j].path)
			all[i].crossings += c
			all[j].crossings += c
		}
	}
}
