// Package perf derives the network-performance figures that motivate
// WRONoCs in the paper's introduction: contention-free links whose
// latency is pure time-of-flight plus conversion overhead, and whose
// aggregate bandwidth is #wavelengths x line rate per concurrent link.
//
// Latency model: light in a silicon waveguide travels at c/n_g with
// group index n_g ≈ 4.2, i.e. ~14 ps/mm; serialization and O/E/O
// conversion add a fixed overhead per hop. WRONoC paths have no
// arbitration and no buffering, so per-signal latency is deterministic.
package perf

import (
	"fmt"
	"math"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/router"
)

// Params configures the performance model.
type Params struct {
	// GroupIndex of the waveguide mode (silicon strip ≈ 4.2).
	GroupIndex float64
	// LineRateGbps is the per-wavelength modulation rate.
	LineRateGbps float64
	// ConversionPS is the fixed electrical/optical conversion and
	// serialization overhead per signal, in picoseconds.
	ConversionPS float64
}

// DefaultParams returns a 10 Gb/s per wavelength operating point.
func DefaultParams() Params {
	return Params{GroupIndex: 4.2, LineRateGbps: 10, ConversionPS: 100}
}

// speedPSPerMM returns the propagation delay per millimetre.
func (p Params) speedPSPerMM() float64 {
	const cMMPerPS = 0.299792458 // mm per picosecond in vacuum
	return p.GroupIndex / cMMPerPS
}

// Link is one signal's performance figures.
type Link struct {
	Sig noc.Signal
	// LatencyPS is the end-to-end latency in picoseconds.
	LatencyPS float64
	// PathMM is the travelled length.
	PathMM float64
}

// Report is the performance analysis result.
type Report struct {
	Links map[noc.Signal]*Link
	// WorstLatencyPS and MeanLatencyPS summarize the latency
	// distribution; Worst identifies the slowest signal.
	WorstLatencyPS float64
	MeanLatencyPS  float64
	Worst          noc.Signal
	// AggregateGbps is the total concurrent bandwidth: every signal owns
	// its wavelength channel, so all links run at line rate at once.
	AggregateGbps float64
	// BisectionGbps is the bandwidth crossing the tour's best bisection
	// cut (signals whose source and destination fall on opposite sides).
	BisectionGbps float64
}

// Analyze computes per-signal latency and aggregate bandwidth for a
// mapped design, reusing the loss report's exact per-signal path
// lengths.
func Analyze(d *router.Design, lrep *loss.Report, p Params) (*Report, error) {
	if lrep == nil || len(lrep.Signals) == 0 {
		return nil, fmt.Errorf("perf: loss report required")
	}
	if p.GroupIndex <= 0 || p.LineRateGbps <= 0 {
		return nil, fmt.Errorf("perf: invalid params %+v", p)
	}
	rep := &Report{Links: map[noc.Signal]*Link{}}
	sum := 0.0
	for sig, sl := range lrep.Signals {
		l := &Link{
			Sig:       sig,
			PathMM:    sl.PathLen,
			LatencyPS: sl.PathLen*p.speedPSPerMM() + p.ConversionPS,
		}
		rep.Links[sig] = l
		sum += l.LatencyPS
		if l.LatencyPS > rep.WorstLatencyPS {
			rep.WorstLatencyPS = l.LatencyPS
			rep.Worst = sig
		}
	}
	rep.MeanLatencyPS = sum / float64(len(rep.Links))
	rep.AggregateGbps = float64(len(rep.Links)) * p.LineRateGbps

	// Bisection: split the tour into two contiguous halves at the cut
	// minimizing... for bandwidth we take the standard definition with
	// the WORST contiguous halving (min crossing capacity); with
	// all-to-all traffic all cuts are equivalent, with custom traffic
	// they are not.
	n := d.N()
	half := n / 2
	minCross := math.MaxInt
	for start := 0; start < n; start++ {
		inA := map[int]bool{}
		for k := 0; k < half; k++ {
			inA[d.Tour[(start+k)%n]] = true
		}
		cross := 0
		for sig := range rep.Links {
			if inA[sig.Src] != inA[sig.Dst] {
				cross++
			}
		}
		if cross < minCross {
			minCross = cross
		}
	}
	rep.BisectionGbps = float64(minCross) * p.LineRateGbps
	return rep, nil
}
