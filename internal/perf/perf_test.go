package perf

import (
	"math"
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
)

func synth16(t *testing.T) *core.Result {
	t.Helper()
	res, err := core.Synthesize(noc.Floorplan16(), core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeLatencies(t *testing.T) {
	res := synth16(t)
	p := DefaultParams()
	rep, err := Analyze(res.Design, res.Loss, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Links) != 240 {
		t.Fatalf("links = %d", len(rep.Links))
	}
	for sig, l := range rep.Links {
		// Latency = path/speed + overhead; check one closed form.
		want := l.PathMM*(p.GroupIndex/0.299792458) + p.ConversionPS
		if math.Abs(l.LatencyPS-want) > 1e-9 {
			t.Fatalf("latency of %v = %v, want %v", sig, l.LatencyPS, want)
		}
		if l.LatencyPS <= p.ConversionPS {
			t.Fatalf("latency of %v below overhead", sig)
		}
	}
	if rep.WorstLatencyPS < rep.MeanLatencyPS {
		t.Fatal("worst < mean")
	}
	if rep.Links[rep.Worst].LatencyPS != rep.WorstLatencyPS {
		t.Fatal("worst bookkeeping wrong")
	}
	// ~16 node ring: worst path ~20-30 mm -> latency a few hundred ps.
	if rep.WorstLatencyPS < 200 || rep.WorstLatencyPS > 2000 {
		t.Fatalf("implausible worst latency %v ps", rep.WorstLatencyPS)
	}
}

func TestAggregateAndBisection(t *testing.T) {
	res := synth16(t)
	rep, err := Analyze(res.Design, res.Loss, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AggregateGbps != 2400 {
		t.Fatalf("aggregate = %v Gb/s, want 2400", rep.AggregateGbps)
	}
	// All-to-all on a 16-ring: any contiguous bisection is crossed by
	// 2*8*8 = 128 signals.
	if rep.BisectionGbps != 1280 {
		t.Fatalf("bisection = %v Gb/s, want 1280", rep.BisectionGbps)
	}
}

func TestCustomTrafficBisection(t *testing.T) {
	// Neighbour-only traffic: a contiguous bisection is crossed by
	// exactly 2 signals (the two cut edges).
	res0 := synth16(t)
	tour := res0.Design.Tour
	var traffic []noc.Signal
	for i := range tour {
		traffic = append(traffic, noc.Signal{Src: tour[i], Dst: tour[(i+1)%len(tour)]})
	}
	res, err := core.Synthesize(noc.Floorplan16(), core.Options{MaxWL: 4, Traffic: traffic})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(res.Design, res.Loss, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BisectionGbps != 20 {
		t.Fatalf("neighbour-traffic bisection = %v Gb/s, want 20", rep.BisectionGbps)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	res := synth16(t)
	if _, err := Analyze(res.Design, nil, DefaultParams()); err == nil {
		t.Fatal("want error without loss report")
	}
	if _, err := Analyze(res.Design, res.Loss, Params{}); err == nil {
		t.Fatal("want error for zero params")
	}
}

func TestFasterRingsAreFaster(t *testing.T) {
	res := synth16(t)
	slow, err := Analyze(res.Design, res.Loss, Params{GroupIndex: 4.2, LineRateGbps: 10, ConversionPS: 100})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Analyze(res.Design, res.Loss, Params{GroupIndex: 2.0, LineRateGbps: 10, ConversionPS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if fast.WorstLatencyPS >= slow.WorstLatencyPS {
		t.Fatal("lower group index must reduce latency")
	}
}
