// Package geom provides the planar geometry substrate for waveguide
// routing: points, axis-aligned segments, L-shaped Manhattan routes and
// exact crossing predicates.
//
// All coordinates are in millimetres. Waveguides are routed rectilinearly
// (horizontal and vertical segments only), matching the paper's assumption
// that an edge between two nodes is implemented either
// vertical-then-horizontal (VH) or horizontal-then-vertical (HV).
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for floating-point comparisons of coordinates.
const Eps = 1e-9

// Point is a location on the chip plane, in millimetres.
type Point struct {
	X, Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Add returns p translated by d.
func (p Point) Add(d Point) Point { return Point{p.X + d.X, p.Y + d.Y} }

// Sub returns the componentwise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Eq reports whether p and q coincide within Eps.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Manhattan returns the L1 distance between p and q.
func Manhattan(p, q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclid returns the L2 distance between p and q.
func Euclid(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Segment is an axis-aligned waveguide segment. A Segment whose endpoints
// coincide is degenerate and has zero length; degenerate segments never
// cross anything.
type Segment struct {
	A, B Point
}

func (s Segment) String() string { return fmt.Sprintf("[%v-%v]", s.A, s.B) }

// Horizontal reports whether the segment runs along the X axis.
func (s Segment) Horizontal() bool { return math.Abs(s.A.Y-s.B.Y) <= Eps }

// Vertical reports whether the segment runs along the Y axis.
func (s Segment) Vertical() bool { return math.Abs(s.A.X-s.B.X) <= Eps }

// Degenerate reports whether the segment has (near-)zero length.
func (s Segment) Degenerate() bool { return s.A.Eq(s.B) }

// Length returns the segment length. Axis-aligned segments have
// Manhattan length equal to Euclidean length.
func (s Segment) Length() float64 { return Manhattan(s.A, s.B) }

// Axis validity: a segment used for routing must be axis-aligned.
// AxisAligned reports whether s is horizontal or vertical.
func (s Segment) AxisAligned() bool { return s.Horizontal() || s.Vertical() }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// contains reports whether the closed interval [lo,hi] contains v,
// with tolerance.
func contains(lo, hi, v float64) bool {
	return v >= lo-Eps && v <= hi+Eps
}

// overlap1D reports whether intervals [a1,a2] and [b1,b2] (unordered)
// share more than a single point.
func overlap1D(a1, a2, b1, b2 float64) bool {
	lo1, hi1 := minf(a1, a2), maxf(a1, a2)
	lo2, hi2 := minf(b1, b2), maxf(b1, b2)
	return minf(hi1, hi2)-maxf(lo1, lo2) > Eps
}

// ContainsPoint reports whether the axis-aligned segment s contains p
// (including endpoints).
func (s Segment) ContainsPoint(p Point) bool {
	if s.Horizontal() {
		return math.Abs(p.Y-s.A.Y) <= Eps &&
			contains(minf(s.A.X, s.B.X), maxf(s.A.X, s.B.X), p.X)
	}
	if s.Vertical() {
		return math.Abs(p.X-s.A.X) <= Eps &&
			contains(minf(s.A.Y, s.B.Y), maxf(s.A.Y, s.B.Y), p.Y)
	}
	return false
}

// Crosses reports whether two axis-aligned segments intersect in a way
// that would create a physical waveguide crossing or overlap.
//
// Two segments cross when:
//   - they are perpendicular and intersect at an interior point of both
//     (a classic waveguide crossing), or at an interior point of one and
//     an endpoint of the other (a T-junction, which is also illegal for
//     independent waveguides), or
//   - they are parallel, collinear, and overlap in more than a point
//     (two waveguides on top of each other).
//
// Merely sharing an endpoint (two consecutive segments of the same path)
// does not count as a crossing.
func Crosses(s, t Segment) bool {
	// Cheap bounding-box rejection: segments whose boxes are separated
	// by more than Eps cannot intersect, overlap or touch. This runs
	// before the exact orientation tests because the all-pairs conflict
	// scan (ring.buildConflicts) compares mostly far-apart segments.
	if minf(s.A.X, s.B.X) > maxf(t.A.X, t.B.X)+Eps ||
		minf(t.A.X, t.B.X) > maxf(s.A.X, s.B.X)+Eps ||
		minf(s.A.Y, s.B.Y) > maxf(t.A.Y, t.B.Y)+Eps ||
		minf(t.A.Y, t.B.Y) > maxf(s.A.Y, s.B.Y)+Eps {
		return false
	}
	if s.Degenerate() || t.Degenerate() {
		return false
	}
	sh, th := s.Horizontal(), t.Horizontal()
	switch {
	case sh && th:
		// Parallel horizontal: crossing only if same Y and X-overlap.
		if math.Abs(s.A.Y-t.A.Y) > Eps {
			return false
		}
		return overlap1D(s.A.X, s.B.X, t.A.X, t.B.X)
	case !sh && !th:
		if math.Abs(s.A.X-t.A.X) > Eps {
			return false
		}
		return overlap1D(s.A.Y, s.B.Y, t.A.Y, t.B.Y)
	}
	// Perpendicular. Normalize so h is horizontal, v vertical.
	h, v := s, t
	if !sh {
		h, v = t, s
	}
	ix, iy := v.A.X, h.A.Y // candidate intersection point
	if !contains(minf(h.A.X, h.B.X), maxf(h.A.X, h.B.X), ix) {
		return false
	}
	if !contains(minf(v.A.Y, v.B.Y), maxf(v.A.Y, v.B.Y), iy) {
		return false
	}
	p := Point{ix, iy}
	// Intersection exists; sharing an endpoint of BOTH segments is a
	// joint, not a crossing.
	endOfH := p.Eq(h.A) || p.Eq(h.B)
	endOfV := p.Eq(v.A) || p.Eq(v.B)
	return !(endOfH && endOfV)
}

// CrossingPoint returns the intersection point of two perpendicular
// segments that cross, and true; otherwise the zero Point and false.
func CrossingPoint(s, t Segment) (Point, bool) {
	if !Crosses(s, t) {
		return Point{}, false
	}
	if s.Horizontal() == t.Horizontal() {
		return Point{}, false // collinear overlap: no single point
	}
	h, v := s, t
	if !s.Horizontal() {
		h, v = t, s
	}
	return Point{v.A.X, h.A.Y}, true
}

// LOrder selects which leg of an L-shaped route comes first.
type LOrder int

const (
	// VH routes vertical first, then horizontal.
	VH LOrder = iota
	// HV routes horizontal first, then vertical.
	HV
)

func (o LOrder) String() string {
	if o == VH {
		return "VH"
	}
	return "HV"
}

// LPath returns the rectilinear route from a to b using the given leg
// order. Straight (or zero-length) routes return a single segment.
func LPath(a, b Point, order LOrder) Polyline {
	if math.Abs(a.X-b.X) <= Eps || math.Abs(a.Y-b.Y) <= Eps {
		return Polyline{a, b}
	}
	var corner Point
	if order == VH {
		corner = Point{a.X, b.Y}
	} else {
		corner = Point{b.X, a.Y}
	}
	return Polyline{a, corner, b}
}

// LOptions returns both L-shaped routing options for the edge a→b.
// For straight edges the two options coincide.
func LOptions(a, b Point) [2]Polyline {
	return [2]Polyline{LPath(a, b, VH), LPath(a, b, HV)}
}

// LOrderOf recovers the leg order an LPath polyline was built with, so
// the path can be rebuilt after one of its endpoints moves. Straight
// paths report VH (both orders produce the identical polyline).
func LOrderOf(p Polyline) LOrder {
	if len(p) < 2 || math.Abs(p[0].X-p[1].X) <= Eps {
		return VH // first leg vertical (or degenerate/straight)
	}
	return HV
}

// Polyline is an open rectilinear path given by its bend points.
type Polyline []Point

// Segments returns the constituent segments of the polyline.
// Degenerate (zero-length) segments are skipped.
func (p Polyline) Segments() []Segment {
	segs := make([]Segment, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		s := Segment{p[i], p[i+1]}
		if !s.Degenerate() {
			segs = append(segs, s)
		}
	}
	return segs
}

// Length returns the total length of the polyline.
func (p Polyline) Length() float64 {
	var l float64
	for i := 0; i+1 < len(p); i++ {
		l += Manhattan(p[i], p[i+1])
	}
	return l
}

// Start returns the first point of the polyline.
func (p Polyline) Start() Point { return p[0] }

// End returns the last point of the polyline.
func (p Polyline) End() Point { return p[len(p)-1] }

// Bends returns the number of 90-degree bends along the polyline.
func (p Polyline) Bends() int {
	segs := p.Segments()
	bends := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i].Horizontal() != segs[i+1].Horizontal() {
			bends++
		}
	}
	return bends
}

// PathsCross reports whether two rectilinear paths cross, ignoring
// intersections that occur exactly at a shared terminal point of both
// paths (paths meeting at a common node are joints, not crossings).
func PathsCross(p, q Polyline) bool {
	ps, qs := p.Segments(), q.Segments()
	for _, s := range ps {
		for _, t := range qs {
			if !Crosses(s, t) {
				continue
			}
			if pt, ok := CrossingPoint(s, t); ok {
				if isTerminal(p, pt) && isTerminal(q, pt) {
					continue // shared node endpoint
				}
			}
			return true
		}
	}
	return false
}

// CrossingsBetween counts distinct crossing points between two paths,
// ignoring shared terminal points. Collinear overlaps count as one.
func CrossingsBetween(p, q Polyline) int {
	n := 0
	for _, s := range p.Segments() {
		for _, t := range q.Segments() {
			if !Crosses(s, t) {
				continue
			}
			if pt, ok := CrossingPoint(s, t); ok {
				if isTerminal(p, pt) && isTerminal(q, pt) {
					continue
				}
			}
			n++
		}
	}
	return n
}

func isTerminal(p Polyline, pt Point) bool {
	return p.Start().Eq(pt) || p.End().Eq(pt)
}

// EdgesConflict implements the paper's conflict test (Sec. III-A,
// Fig. 6(b)-(d)): edges (a1,b1) and (a2,b2) conflict when none of the
// four combinations of L-shaped routing options implements both edges
// without a waveguide crossing.
//
// Edges that share an endpoint never conflict: the shared node is a
// joint on the ring, and the non-shared legs can always be locally
// spaced apart in a physical design.
func EdgesConflict(a1, b1, a2, b2 Point) bool {
	if a1.Eq(a2) || a1.Eq(b2) || b1.Eq(a2) || b1.Eq(b2) {
		return false
	}
	// Both L-shaped options of an edge stay inside the bounding box of
	// its endpoints, so edges with separated boxes can never cross under
	// any option pair — reject before building four polylines.
	if minf(a1.X, b1.X) > maxf(a2.X, b2.X)+Eps ||
		minf(a2.X, b2.X) > maxf(a1.X, b1.X)+Eps ||
		minf(a1.Y, b1.Y) > maxf(a2.Y, b2.Y)+Eps ||
		minf(a2.Y, b2.Y) > maxf(a1.Y, b1.Y)+Eps {
		return false
	}
	for _, p := range LOptions(a1, b1) {
		for _, q := range LOptions(a2, b2) {
			if !PathsCross(p, q) {
				return false
			}
		}
	}
	return true
}

// CompatibleOptions returns the pairs of L-orders (for edge 1 and edge 2
// respectively) under which the two edges do not cross. The result is
// empty exactly when the edges conflict.
func CompatibleOptions(a1, b1, a2, b2 Point) [][2]LOrder {
	var out [][2]LOrder
	orders := [2]LOrder{VH, HV}
	for _, o1 := range orders {
		p := LPath(a1, b1, o1)
		for _, o2 := range orders {
			q := LPath(a2, b2, o2)
			share := a1.Eq(a2) || a1.Eq(b2) || b1.Eq(a2) || b1.Eq(b2)
			if share || !PathsCross(p, q) {
				out = append(out, [2]LOrder{o1, o2})
			}
		}
	}
	return out
}

// PolylineCrossingPoint returns the unique crossing point between two
// polylines and true, or false when they cross zero times or more than
// once (collinear overlaps yield no point).
func PolylineCrossingPoint(a, b Polyline) (Point, bool) {
	var found []Point
	for _, sa := range a.Segments() {
		for _, sb := range b.Segments() {
			if pt, ok := CrossingPoint(sa, sb); ok {
				found = append(found, pt)
			}
		}
	}
	if len(found) != 1 {
		return Point{}, false
	}
	return found[0], true
}

// DistAlong measures the walk distance between two points lying on a
// polyline. A point not on the polyline is treated as lying at the end
// of the path (callers are expected to pass on-path points).
func DistAlong(p Polyline, from, to Point) float64 {
	coord := func(q Point) float64 {
		acc := 0.0
		for _, s := range p.Segments() {
			if s.ContainsPoint(q) {
				return acc + Manhattan(s.A, q)
			}
			acc += s.Length()
		}
		return acc
	}
	return math.Abs(coord(from) - coord(to))
}

// BoundingBox returns the axis-aligned bounding box of a set of points
// as (min, max) corners. It panics on an empty input.
func BoundingBox(pts []Point) (Point, Point) {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	lo, hi := pts[0], pts[0]
	for _, p := range pts[1:] {
		lo.X = minf(lo.X, p.X)
		lo.Y = minf(lo.Y, p.Y)
		hi.X = maxf(hi.X, p.X)
		hi.Y = maxf(hi.Y, p.Y)
	}
	return lo, hi
}
