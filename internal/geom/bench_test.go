package geom

import (
	"math/rand"
	"testing"
)

// refEdgesConflict is the pre-bounding-box reference implementation of
// the conflict test, kept here to pin the pruned fast path to it.
func refEdgesConflict(a1, b1, a2, b2 Point) bool {
	if a1.Eq(a2) || a1.Eq(b2) || b1.Eq(a2) || b1.Eq(b2) {
		return false
	}
	for _, p := range LOptions(a1, b1) {
		for _, q := range LOptions(a2, b2) {
			if !PathsCross(p, q) {
				return false
			}
		}
	}
	return true
}

func randPoint(rng *rand.Rand) Point {
	// Snap to a 0.5 mm lattice so coincidences and T-junctions occur.
	return Point{
		X: float64(rng.Intn(41)) * 0.5,
		Y: float64(rng.Intn(41)) * 0.5,
	}
}

// TestEdgesConflictMatchesReference checks that the bounding-box
// rejection never changes the predicate on lattice geometry, where
// touching and collinear cases are common.
func TestEdgesConflictMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for k := 0; k < 20000; k++ {
		a1, b1 := randPoint(rng), randPoint(rng)
		a2, b2 := randPoint(rng), randPoint(rng)
		got := EdgesConflict(a1, b1, a2, b2)
		want := refEdgesConflict(a1, b1, a2, b2)
		if got != want {
			t.Fatalf("EdgesConflict(%v,%v,%v,%v) = %v, reference = %v",
				a1, b1, a2, b2, got, want)
		}
	}
}

// TestCrossesBBoxRejection spot-checks that clearly separated segments
// are rejected and touching ones still cross.
func TestCrossesBBoxRejection(t *testing.T) {
	far := Segment{Point{10, 10}, Point{12, 10}}
	near := Segment{Point{0, 0}, Point{0, 5}}
	if Crosses(far, near) {
		t.Fatal("separated segments must not cross")
	}
	// T-junction at the shared boundary must still be detected.
	h := Segment{Point{0, 1}, Point{4, 1}}
	v := Segment{Point{2, 1}, Point{2, 5}} // endpoint on h's interior
	if !Crosses(h, v) {
		t.Fatal("T-junction must still count as a crossing")
	}
}

func benchSegments(n int) []Segment {
	rng := rand.New(rand.NewSource(7))
	segs := make([]Segment, n)
	for i := range segs {
		a := randPoint(rng)
		var b Point
		if rng.Intn(2) == 0 {
			b = Point{a.X + float64(rng.Intn(9))*0.5, a.Y}
		} else {
			b = Point{a.X, a.Y + float64(rng.Intn(9))*0.5}
		}
		segs[i] = Segment{a, b}
	}
	return segs
}

// BenchmarkCrossesAllPairs measures the segment predicate on the
// all-pairs workload buildConflicts generates (mostly far-apart pairs).
func BenchmarkCrossesAllPairs(b *testing.B) {
	segs := benchSegments(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for x := 0; x < len(segs); x++ {
			for y := x + 1; y < len(segs); y++ {
				if Crosses(segs[x], segs[y]) {
					n++
				}
			}
		}
		_ = n
	}
}

// BenchmarkEdgesConflictAllPairs measures the conflict predicate the
// way Step 1 uses it: every pair of node-pair edges on a floorplan.
func BenchmarkEdgesConflictAllPairs(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 16)
	for i := range pts {
		pts[i] = randPoint(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for a := 0; a < len(pts); a++ {
			for bb := a + 1; bb < len(pts); bb++ {
				for c := 0; c < len(pts); c++ {
					for d := c + 1; d < len(pts); d++ {
						if EdgesConflict(pts[a], pts[bb], pts[c], pts[d]) {
							n++
						}
					}
				}
			}
		}
		_ = n
	}
}
