package geom

import (
	"math"
	"testing"
)

func square(s float64) []Point {
	return []Point{{0, 0}, {s, 0}, {s, s}, {0, s}}
}

func TestSignedArea(t *testing.T) {
	if a := SignedArea(square(4)); math.Abs(a-16) > 1e-12 {
		t.Fatalf("CCW square area = %v, want 16", a)
	}
	cw := []Point{{0, 0}, {0, 4}, {4, 4}, {4, 0}}
	if a := SignedArea(cw); math.Abs(a+16) > 1e-12 {
		t.Fatalf("CW square area = %v, want -16", a)
	}
}

func TestOffsetSquareOutward(t *testing.T) {
	out, err := OffsetRectilinear(square(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Perimeter grows by exactly 8d.
	if p := PolygonPerimeter(out); math.Abs(p-24) > 1e-9 {
		t.Fatalf("offset perimeter = %v, want 24", p)
	}
	// Every vertex moved outward by (±1, ±1).
	for _, v := range out {
		if v.X != -1 && v.X != 5 {
			t.Fatalf("unexpected vertex %v", v)
		}
	}
	// Inward shrink: perimeter loses 8d.
	in, err := OffsetRectilinear(square(4), -1)
	if err != nil {
		t.Fatal(err)
	}
	if p := PolygonPerimeter(in); math.Abs(p-8) > 1e-9 {
		t.Fatalf("inset perimeter = %v, want 8", p)
	}
}

func TestOffsetCWOrientation(t *testing.T) {
	cw := []Point{{0, 0}, {0, 4}, {4, 4}, {4, 0}}
	out, err := OffsetRectilinear(cw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := PolygonPerimeter(out); math.Abs(p-24) > 1e-9 {
		t.Fatalf("CW offset perimeter = %v, want 24", p)
	}
}

func TestOffsetNotchedPolygonKeeps8d(t *testing.T) {
	// U-shaped polygon (one notch): convex-reflex = 4 still, so the
	// outward offset perimeter is P + 8d.
	u := []Point{
		{0, 0}, {6, 0}, {6, 4}, {4, 4}, {4, 2}, {2, 2}, {2, 4}, {0, 4},
	}
	p0 := PolygonPerimeter(u)
	out, err := OffsetRectilinear(u, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p := PolygonPerimeter(out); math.Abs(p-(p0+4)) > 1e-9 {
		t.Fatalf("notched offset perimeter = %v, want %v", p, p0+4)
	}
	// Shrinking by more than half the notch width must fail.
	if _, err := OffsetRectilinear(u, 1.5); err == nil {
		t.Fatal("want collapse error for a too-deep outward offset of the notch")
	}
}

func TestOffsetValidatesRadialScaleIdentity(t *testing.T) {
	// The +8d-per-offset identity used by router.Design.RadialScale,
	// checked on a staircase polygon with several reflex corners.
	stair := []Point{
		{0, 0}, {8, 0}, {8, 6}, {6, 6}, {6, 4}, {4, 4}, {4, 6}, {2, 6}, {2, 2}, {0, 2},
	}
	p0 := PolygonPerimeter(stair)
	for _, d := range []float64{0.1, 0.25, 0.4} {
		out, err := OffsetRectilinear(stair, d)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if p := PolygonPerimeter(out); math.Abs(p-(p0+8*d)) > 1e-9 {
			t.Fatalf("d=%v: perimeter %v, want %v", d, p, p0+8*d)
		}
	}
}

func TestOffsetRejectsBadInput(t *testing.T) {
	if _, err := OffsetRectilinear([]Point{{0, 0}, {1, 0}}, 1); err == nil {
		t.Fatal("want error for too-few vertices")
	}
	diag := []Point{{0, 0}, {2, 2}, {0, 4}, {-2, 2}}
	if _, err := OffsetRectilinear(diag, 1); err == nil {
		t.Fatal("want error for non-rectilinear polygon")
	}
	if _, err := OffsetRectilinear(square(1), -0.6); err == nil {
		t.Fatal("want collapse error for excessive inset")
	}
}
