package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(x, y float64) Point { return Point{x, y} }

func TestManhattan(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{pt(0, 0), pt(0, 0), 0},
		{pt(0, 0), pt(3, 4), 7},
		{pt(-1, -1), pt(1, 1), 4},
		{pt(2.5, 0), pt(0, 2.5), 5},
	}
	for _, c := range cases {
		if got := Manhattan(c.a, c.b); math.Abs(got-c.want) > Eps {
			t.Errorf("Manhattan(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// clamp maps an arbitrary float into a well-behaved coordinate range so
// that property tests do not overflow to Inf/NaN.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func TestManhattanSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := pt(clamp(ax), clamp(ay))
		b := pt(clamp(bx), clamp(by))
		return math.Abs(Manhattan(a, b)-Manhattan(b, a)) <= Eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := pt(rng.Float64()*10, rng.Float64()*10)
		b := pt(rng.Float64()*10, rng.Float64()*10)
		c := pt(rng.Float64()*10, rng.Float64()*10)
		if Manhattan(a, c) > Manhattan(a, b)+Manhattan(b, c)+Eps {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestSegmentOrientation(t *testing.T) {
	h := Segment{pt(0, 1), pt(5, 1)}
	v := Segment{pt(2, 0), pt(2, 9)}
	if !h.Horizontal() || h.Vertical() {
		t.Errorf("h misclassified")
	}
	if !v.Vertical() || v.Horizontal() {
		t.Errorf("v misclassified")
	}
	d := Segment{pt(1, 1), pt(1, 1)}
	if !d.Degenerate() {
		t.Errorf("degenerate segment not detected")
	}
	if !d.Horizontal() || !d.Vertical() {
		t.Errorf("degenerate segment should be both horizontal and vertical")
	}
}

func TestSegmentContainsPoint(t *testing.T) {
	s := Segment{pt(0, 0), pt(10, 0)}
	for _, p := range []Point{pt(0, 0), pt(5, 0), pt(10, 0)} {
		if !s.ContainsPoint(p) {
			t.Errorf("%v should contain %v", s, p)
		}
	}
	for _, p := range []Point{pt(-1, 0), pt(11, 0), pt(5, 1)} {
		if s.ContainsPoint(p) {
			t.Errorf("%v should not contain %v", s, p)
		}
	}
}

func TestCrossesPerpendicular(t *testing.T) {
	h := Segment{pt(0, 0), pt(10, 0)}
	cases := []struct {
		v    Segment
		want bool
		name string
	}{
		{Segment{pt(5, -5), pt(5, 5)}, true, "interior crossing"},
		{Segment{pt(5, 0), pt(5, 5)}, true, "T-junction from above"},
		{Segment{pt(5, -5), pt(5, 0)}, true, "T-junction from below"},
		{Segment{pt(0, 0), pt(0, 5)}, false, "shared endpoint (joint)"},
		{Segment{pt(10, -3), pt(10, 3)}, true, "T at right endpoint"},
		{Segment{pt(10, 0), pt(10, 4)}, false, "corner at right endpoint"},
		{Segment{pt(15, -5), pt(15, 5)}, false, "beyond segment"},
		{Segment{pt(5, 1), pt(5, 5)}, false, "above, no touch"},
	}
	for _, c := range cases {
		if got := Crosses(h, c.v); got != c.want {
			t.Errorf("%s: Crosses = %v, want %v", c.name, got, c.want)
		}
		if got := Crosses(c.v, h); got != c.want {
			t.Errorf("%s (swapped): Crosses = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCrossesParallel(t *testing.T) {
	a := Segment{pt(0, 0), pt(10, 0)}
	cases := []struct {
		b    Segment
		want bool
		name string
	}{
		{Segment{pt(2, 0), pt(8, 0)}, true, "contained overlap"},
		{Segment{pt(5, 0), pt(15, 0)}, true, "partial overlap"},
		{Segment{pt(10, 0), pt(20, 0)}, false, "touching at endpoint only"},
		{Segment{pt(11, 0), pt(20, 0)}, false, "disjoint collinear"},
		{Segment{pt(0, 1), pt(10, 1)}, false, "parallel different Y"},
	}
	for _, c := range cases {
		if got := Crosses(a, c.b); got != c.want {
			t.Errorf("%s: Crosses = %v, want %v", c.name, got, c.want)
		}
	}
	v1 := Segment{pt(0, 0), pt(0, 10)}
	v2 := Segment{pt(0, 5), pt(0, 15)}
	if !Crosses(v1, v2) {
		t.Errorf("overlapping vertical segments should cross")
	}
}

func TestCrossesDegenerate(t *testing.T) {
	d := Segment{pt(5, 0), pt(5, 0)}
	s := Segment{pt(0, 0), pt(10, 0)}
	if Crosses(d, s) || Crosses(s, d) {
		t.Errorf("degenerate segment should never cross")
	}
}

func TestCrossingPoint(t *testing.T) {
	h := Segment{pt(0, 0), pt(10, 0)}
	v := Segment{pt(4, -2), pt(4, 2)}
	p, ok := CrossingPoint(h, v)
	if !ok || !p.Eq(pt(4, 0)) {
		t.Errorf("CrossingPoint = %v,%v; want (4,0),true", p, ok)
	}
	// Collinear overlap: crossing but no single point.
	a := Segment{pt(0, 0), pt(10, 0)}
	b := Segment{pt(5, 0), pt(15, 0)}
	if _, ok := CrossingPoint(a, b); ok {
		t.Errorf("collinear overlap should have no crossing point")
	}
}

func TestCrossesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := func() float64 { return float64(rng.Intn(8)) }
	mkseg := func() Segment {
		a := pt(grid(), grid())
		if rng.Intn(2) == 0 {
			return Segment{a, pt(grid(), a.Y)} // horizontal
		}
		return Segment{a, pt(a.X, grid())} // vertical
	}
	for i := 0; i < 5000; i++ {
		s, u := mkseg(), mkseg()
		if Crosses(s, u) != Crosses(u, s) {
			t.Fatalf("Crosses not symmetric for %v %v", s, u)
		}
	}
}

func TestLPath(t *testing.T) {
	a, b := pt(0, 0), pt(3, 4)
	vh := LPath(a, b, VH)
	if len(vh) != 3 || !vh[1].Eq(pt(0, 4)) {
		t.Errorf("VH path corner = %v, want (0,4)", vh[1])
	}
	hv := LPath(a, b, HV)
	if len(hv) != 3 || !hv[1].Eq(pt(3, 0)) {
		t.Errorf("HV path corner = %v, want (3,0)", hv[1])
	}
	if math.Abs(vh.Length()-7) > Eps || math.Abs(hv.Length()-7) > Eps {
		t.Errorf("L-path length should equal Manhattan distance")
	}
	// Straight path: single segment both ways.
	straight := LPath(pt(0, 0), pt(5, 0), VH)
	if len(straight) != 2 {
		t.Errorf("straight LPath should have 2 points, got %d", len(straight))
	}
}

func TestLPathLengthEqualsManhattan(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := pt(clamp(ax), clamp(ay))
		b := pt(clamp(bx), clamp(by))
		return math.Abs(LPath(a, b, VH).Length()-Manhattan(a, b)) <= 1e-6 &&
			math.Abs(LPath(a, b, HV).Length()-Manhattan(a, b)) <= 1e-6
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3)), Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPolylineBends(t *testing.T) {
	p := Polyline{pt(0, 0), pt(0, 5), pt(5, 5), pt(5, 0)}
	if got := p.Bends(); got != 2 {
		t.Errorf("Bends = %d, want 2", got)
	}
	straight := Polyline{pt(0, 0), pt(5, 0), pt(9, 0)}
	if got := straight.Bends(); got != 0 {
		t.Errorf("straight Bends = %d, want 0", got)
	}
}

func TestPathsCross(t *testing.T) {
	// Two L-paths that must cross.
	p := LPath(pt(0, 0), pt(4, 4), VH) // up then right
	q := LPath(pt(0, 4), pt(4, 0), VH) // down then right
	if !PathsCross(p, q) {
		t.Errorf("expected crossing between %v and %v", p, q)
	}
	// The X-configuration also overlaps under the opposite option.
	q1 := LPath(pt(0, 4), pt(4, 0), HV)
	if !PathsCross(p, q1) {
		t.Errorf("expected overlap between %v and %v", p, q1)
	}
	// A genuinely compatible pair: VH up-then-right versus an HV path
	// tucked inside the corner.
	q2 := LPath(pt(1, 0), pt(4, 3), HV)
	if PathsCross(p, q2) {
		t.Errorf("expected no crossing between %v and %v", p, q2)
	}
	// Paths sharing a terminal node: joint, not a crossing.
	r1 := LPath(pt(0, 0), pt(4, 4), VH)
	r2 := LPath(pt(4, 4), pt(8, 0), VH)
	if PathsCross(r1, r2) {
		t.Errorf("paths sharing a terminal should not cross")
	}
}

func TestEdgesConflictParallelAligned(t *testing.T) {
	// Fig. 6(c): nested edges on a line can be routed without crossing
	// only if their L-options separate them... two horizontally-aligned
	// overlapping edges conflict (any routing overlaps on the line).
	if !EdgesConflict(pt(0, 0), pt(10, 0), pt(5, 0), pt(15, 0)) {
		t.Errorf("overlapping collinear edges must conflict")
	}
	// Disjoint collinear edges don't conflict.
	if EdgesConflict(pt(0, 0), pt(4, 0), pt(5, 0), pt(9, 0)) {
		t.Errorf("disjoint collinear edges must not conflict")
	}
}

func TestEdgesConflictCrossingPair(t *testing.T) {
	// Fig. 6(d): an X configuration where all four L-option pairs cross.
	// Edge1: (0,0)->(4,4); Edge2: (0,4)->(4,0). Check exhaustively.
	a1, b1 := pt(0, 0), pt(4, 4)
	a2, b2 := pt(0, 4), pt(4, 0)
	if !EdgesConflict(a1, b1, a2, b2) {
		t.Errorf("X-configuration edges must conflict")
	}
	// Fig. 6(c): edges that have at least one compatible option pair.
	c1, d1 := pt(0, 0), pt(2, 2)
	c2, d2 := pt(3, 0), pt(5, 2)
	if EdgesConflict(c1, d1, c2, d2) {
		t.Errorf("side-by-side edges must not conflict")
	}
}

func TestEdgesConflictSharedEndpoint(t *testing.T) {
	// Consecutive ring edges share a node and never conflict.
	if EdgesConflict(pt(0, 0), pt(4, 4), pt(4, 4), pt(8, 0)) {
		t.Errorf("edges sharing an endpoint must not conflict")
	}
}

func TestEdgesConflictSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := func() Point { return pt(float64(rng.Intn(6)), float64(rng.Intn(6))) }
	for i := 0; i < 2000; i++ {
		a1, b1, a2, b2 := g(), g(), g(), g()
		if a1.Eq(b1) || a2.Eq(b2) {
			continue
		}
		if EdgesConflict(a1, b1, a2, b2) != EdgesConflict(a2, b2, a1, b1) {
			t.Fatalf("EdgesConflict not symmetric: %v-%v vs %v-%v", a1, b1, a2, b2)
		}
	}
}

func TestCompatibleOptionsMatchesConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := func() Point { return pt(float64(rng.Intn(5)), float64(rng.Intn(5))) }
	for i := 0; i < 2000; i++ {
		a1, b1, a2, b2 := g(), g(), g(), g()
		if a1.Eq(b1) || a2.Eq(b2) {
			continue
		}
		opts := CompatibleOptions(a1, b1, a2, b2)
		conflict := EdgesConflict(a1, b1, a2, b2)
		if conflict && len(opts) != 0 {
			t.Fatalf("conflicting edges with compatible options: %v-%v %v-%v", a1, b1, a2, b2)
		}
		if !conflict && len(opts) == 0 {
			t.Fatalf("conflict-free edges without compatible options: %v-%v %v-%v", a1, b1, a2, b2)
		}
	}
}

func TestCrossingsBetween(t *testing.T) {
	// A path crossing another twice.
	p := Polyline{pt(0, 1), pt(10, 1)}
	q := Polyline{pt(2, 0), pt(2, 2), pt(4, 2), pt(4, 0)}
	if got := CrossingsBetween(p, q); got != 2 {
		t.Errorf("CrossingsBetween = %d, want 2", got)
	}
	if got := CrossingsBetween(q, p); got != 2 {
		t.Errorf("CrossingsBetween swapped = %d, want 2", got)
	}
}

func TestBoundingBox(t *testing.T) {
	lo, hi := BoundingBox([]Point{pt(3, 1), pt(-2, 5), pt(0, 0)})
	if !lo.Eq(pt(-2, 0)) || !hi.Eq(pt(3, 5)) {
		t.Errorf("BoundingBox = %v %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("BoundingBox on empty set should panic")
		}
	}()
	BoundingBox(nil)
}

func TestPolylineEndpoints(t *testing.T) {
	p := Polyline{pt(1, 2), pt(1, 5), pt(4, 5)}
	if !p.Start().Eq(pt(1, 2)) || !p.End().Eq(pt(4, 5)) {
		t.Errorf("Start/End wrong: %v %v", p.Start(), p.End())
	}
	if p.Segments()[0].Length() != 3 {
		t.Errorf("first segment length = %v", p.Segments()[0].Length())
	}
}

func TestPointHelpers(t *testing.T) {
	a := pt(1, 2)
	b := pt(3, 5)
	if !a.Add(b).Eq(pt(4, 7)) || !b.Sub(a).Eq(pt(2, 3)) {
		t.Fatal("Add/Sub broken")
	}
	if math.Abs(Euclid(pt(0, 0), pt(3, 4))-5) > Eps {
		t.Fatal("Euclid broken")
	}
	if a.String() != "(1.000, 2.000)" {
		t.Fatalf("String = %q", a.String())
	}
	if VH.String() != "VH" || HV.String() != "HV" {
		t.Fatal("LOrder.String broken")
	}
	s := Segment{pt(0, 0), pt(2, 0)}
	if !s.AxisAligned() {
		t.Fatal("AxisAligned broken")
	}
	diag := Segment{pt(0, 0), pt(1, 1)}
	if diag.AxisAligned() {
		t.Fatal("diagonal should not be axis aligned")
	}
	if s.String() == "" {
		t.Fatal("Segment.String empty")
	}
}

func TestDistAlongAndCrossingPointHelpers(t *testing.T) {
	p := Polyline{pt(0, 0), pt(0, 3), pt(4, 3)}
	if got := DistAlong(p, pt(0, 1), pt(2, 3)); math.Abs(got-4) > Eps {
		t.Fatalf("DistAlong = %v", got)
	}
	q := Polyline{pt(-1, 2), pt(5, 2)}
	if pnt, ok := PolylineCrossingPoint(p, q); !ok || !pnt.Eq(pt(0, 2)) {
		t.Fatalf("PolylineCrossingPoint = %v %v", pnt, ok)
	}
	// Two crossings of p's vertical leg: no unique point.
	r := Polyline{pt(-1, 1), pt(5, 1), pt(5, 2), pt(-1, 2)}
	if _, ok := PolylineCrossingPoint(p, r); ok {
		t.Fatal("expected no unique crossing point")
	}
}

func TestCompactRectilinear(t *testing.T) {
	// A square with redundant mid-edge points.
	poly := []Point{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 2}}
	out := CompactRectilinear(poly)
	if len(out) != 4 {
		t.Fatalf("compacted to %d vertices, want 4: %v", len(out), out)
	}
	if got := PolygonPerimeter(out); math.Abs(got-16) > Eps {
		t.Fatalf("perimeter = %v", got)
	}
	// Tiny inputs pass through.
	if len(CompactRectilinear([]Point{{0, 0}, {1, 0}})) != 2 {
		t.Fatal("short input should pass through")
	}
}
