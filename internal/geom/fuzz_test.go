package geom

import (
	"math"
	"testing"
)

// FuzzCrosses checks that the crossing predicate never panics and stays
// symmetric for arbitrary (finite) axis-aligned segments.
func FuzzCrosses(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 0.0, 2.0, -1.0, 2.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 4.0, 0.0, 2.0, 0.0, 6.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		clampF := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := Point{clampF(ax), clampF(ay)}
		b := Point{clampF(bx), clampF(by)}
		c := Point{clampF(cx), clampF(cy)}
		d := Point{clampF(dx), clampF(dy)}
		// Snap to axis alignment: force one shared coordinate each.
		s1 := Segment{a, Point{b.X, a.Y}}
		s2 := Segment{c, Point{c.X, d.Y}}
		if Crosses(s1, s2) != Crosses(s2, s1) {
			t.Fatalf("asymmetric: %v vs %v", s1, s2)
		}
		// L-paths from the same endpoints never cross their own twin.
		p := LPath(a, b, VH)
		q := LPath(a, b, HV)
		_ = PathsCross(p, q) // must not panic
	})
}
