package geom

import (
	"errors"
	"math"
)

// SignedArea returns the signed area of a closed rectilinear polygon
// given as its vertex cycle (no repeated last point). Positive means
// counter-clockwise orientation.
func SignedArea(poly []Point) float64 {
	a := 0.0
	n := len(poly)
	for i := 0; i < n; i++ {
		p, q := poly[i], poly[(i+1)%n]
		a += p.X*q.Y - q.X*p.Y
	}
	return a / 2
}

// OffsetRectilinear offsets a simple closed rectilinear polygon outward
// by d (or inward for negative d). The polygon is given as its vertex
// cycle without a repeated closing point; consecutive vertices must
// differ in exactly one coordinate.
//
// Each edge is translated along its outward normal and consecutive
// (perpendicular) offset edges are reconnected at their line
// intersection. For any simple rectilinear polygon the convex corners
// outnumber the reflex ones by exactly four, so an outward offset grows
// the perimeter by exactly 8d — the identity behind
// router.Design.RadialScale. The function reports an error when the
// offset collapses an edge (the notch-width limit for inward offsets or
// deeply notched outlines).
func OffsetRectilinear(poly []Point, d float64) ([]Point, error) {
	n := len(poly)
	if n < 4 {
		return nil, errors.New("geom: polygon needs at least 4 vertices")
	}
	// Normalize: drop repeated/collinear points.
	clean := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := poly[i]
		if len(clean) > 0 && p.Eq(clean[len(clean)-1]) {
			continue
		}
		clean = append(clean, p)
	}
	if len(clean) > 1 && clean[0].Eq(clean[len(clean)-1]) {
		clean = clean[:len(clean)-1]
	}
	n = len(clean)
	if n < 4 {
		return nil, errors.New("geom: degenerate polygon")
	}

	ccw := SignedArea(clean) > 0
	// Outward normal of each edge: rotate the direction by -90° for CCW
	// polygons (pointing away from the interior), +90° for CW.
	type line struct {
		horizontal bool
		c          float64 // y for horizontal, x for vertical
	}
	lines := make([]line, n)
	for i := 0; i < n; i++ {
		a, b := clean[i], clean[(i+1)%n]
		dx, dy := b.X-a.X, b.Y-a.Y
		if math.Abs(dx) > Eps && math.Abs(dy) > Eps {
			return nil, errors.New("geom: polygon is not rectilinear")
		}
		var nx, ny float64
		if ccw {
			nx, ny = dy, -dx // right-hand normal
		} else {
			nx, ny = -dy, dx
		}
		norm := math.Hypot(nx, ny)
		nx, ny = nx/norm, ny/norm
		if math.Abs(dy) <= Eps { // horizontal edge
			lines[i] = line{horizontal: true, c: a.Y + ny*d}
		} else {
			lines[i] = line{horizontal: false, c: a.X + nx*d}
		}
	}
	// Reconnect consecutive offset lines.
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		prev := lines[(i-1+n)%n]
		cur := lines[i]
		if prev.horizontal == cur.horizontal {
			return nil, errors.New("geom: consecutive parallel edges (collinear run)")
		}
		if prev.horizontal {
			out[i] = Point{X: cur.c, Y: prev.c}
		} else {
			out[i] = Point{X: prev.c, Y: cur.c}
		}
	}
	// Reject collapses: every edge must keep its original direction.
	for i := 0; i < n; i++ {
		a0, b0 := clean[i], clean[(i+1)%n]
		a1, b1 := out[i], out[(i+1)%n]
		d0 := math.Copysign(1, (b0.X-a0.X)+(b0.Y-a0.Y))
		d1x, d1y := b1.X-a1.X, b1.Y-a1.Y
		l1 := math.Abs(d1x) + math.Abs(d1y)
		if l1 <= Eps {
			return nil, errors.New("geom: offset collapses an edge")
		}
		d1 := math.Copysign(1, d1x+d1y)
		if d0 != d1 {
			return nil, errors.New("geom: offset reverses an edge (notch too deep)")
		}
	}
	return out, nil
}

// CompactRectilinear merges collinear runs in a closed vertex cycle so
// that consecutive edges alternate orientation — the normal form
// OffsetRectilinear requires. Tours produced by the ring constructor
// routinely run straight through several nodes.
func CompactRectilinear(poly []Point) []Point {
	n := len(poly)
	if n < 3 {
		return append([]Point(nil), poly...)
	}
	var out []Point
	for i := 0; i < n; i++ {
		prev := poly[(i-1+n)%n]
		cur := poly[i]
		next := poly[(i+1)%n]
		sameX := math.Abs(prev.X-cur.X) <= Eps && math.Abs(cur.X-next.X) <= Eps
		sameY := math.Abs(prev.Y-cur.Y) <= Eps && math.Abs(cur.Y-next.Y) <= Eps
		if sameX || sameY {
			continue // collinear: drop the middle point
		}
		out = append(out, cur)
	}
	return out
}

// PolygonPerimeter returns the perimeter of a closed vertex cycle.
func PolygonPerimeter(poly []Point) float64 {
	p := 0.0
	n := len(poly)
	for i := 0; i < n; i++ {
		p += Manhattan(poly[i], poly[(i+1)%n])
	}
	return p
}
