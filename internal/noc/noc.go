// Package noc models the network under synthesis: the nodes (processing
// elements with optical network interfaces), their floorplan positions,
// and the traffic (signals) the router must support.
//
// The paper evaluates 8-, 16- and 32-node networks with all-to-all
// traffic, using the node locations of PROTON+ [15] / PSION+ [20] (8 and
// 16 nodes) and an extension of the 16-node floorplan (32 nodes). Those
// floorplans are regular multi-core grids; since the exact coordinates
// are not printed in the paper, this package provides equivalent regular
// grids with a 2 mm core pitch (documented in DESIGN.md).
package noc

import (
	"fmt"
	"math/rand"
	"sort"

	"xring/internal/geom"
)

// Node is a network node: one processing element with an optical sender
// (modulator bank) and receiver (MRR/photodetector bank).
type Node struct {
	ID   int
	Name string
	Pos  geom.Point
}

// Network is a set of nodes on a die.
type Network struct {
	Nodes []Node
	// DieW, DieH are the die dimensions in millimetres (informational;
	// used by the renderer and the PDN laser entry point).
	DieW, DieH float64
}

// N returns the number of nodes.
func (nw *Network) N() int { return len(nw.Nodes) }

// Positions returns the node positions indexed by node ID.
func (nw *Network) Positions() []geom.Point {
	pts := make([]geom.Point, len(nw.Nodes))
	for i, n := range nw.Nodes {
		pts[i] = n.Pos
	}
	return pts
}

// Validate checks structural sanity: IDs are 0..N-1 and positions are
// pairwise distinct.
func (nw *Network) Validate() error {
	for i, n := range nw.Nodes {
		if n.ID != i {
			return fmt.Errorf("noc: node %d has ID %d; IDs must be 0..N-1 in order", i, n.ID)
		}
	}
	for i := range nw.Nodes {
		for j := i + 1; j < len(nw.Nodes); j++ {
			if nw.Nodes[i].Pos.Eq(nw.Nodes[j].Pos) {
				return fmt.Errorf("noc: nodes %d and %d share position %v", i, j, nw.Nodes[i].Pos)
			}
		}
	}
	return nil
}

// Grid builds an nx-by-ny grid of nodes with the given pitch, origin at
// (margin, margin). Node IDs run row-major from the bottom-left.
func Grid(nx, ny int, pitch, margin float64) *Network {
	nw := &Network{
		DieW: margin*2 + pitch*float64(nx-1),
		DieH: margin*2 + pitch*float64(ny-1),
	}
	id := 0
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			nw.Nodes = append(nw.Nodes, Node{
				ID:   id,
				Name: fmt.Sprintf("n%d", id),
				Pos:  geom.Point{X: margin + float64(x)*pitch, Y: margin + float64(y)*pitch},
			})
			id++
		}
	}
	return nw
}

// CorePitchMM is the processing-element pitch of the standard
// floorplans (a 2 mm tile, typical for the 3D-stacked multicore targets
// of [15]/[20]).
const CorePitchMM = 2.0

// Floorplan8 returns the standard 8-node floorplan: a 4x2 core grid.
func Floorplan8() *Network { return Grid(4, 2, CorePitchMM, 1) }

// Floorplan16 returns the standard 16-node floorplan: a 4x4 core grid.
func Floorplan16() *Network { return Grid(4, 4, CorePitchMM, 1) }

// Floorplan32 returns the 32-node floorplan: the 16-node grid extended
// to 8x4 on a widened die, as the paper extends the 16-node case.
func Floorplan32() *Network { return Grid(8, 4, CorePitchMM, 1) }

// FloorplanFor returns the standard floorplan for the given node count,
// or an error for unsupported sizes.
func FloorplanFor(n int) (*Network, error) {
	switch n {
	case 8:
		return Floorplan8(), nil
	case 16:
		return Floorplan16(), nil
	case 32:
		return Floorplan32(), nil
	default:
		return nil, fmt.Errorf("noc: no standard floorplan for %d nodes (have 8, 16, 32)", n)
	}
}

// Irregular returns a deterministic pseudo-random placement of n nodes
// on a w-by-h die with a minimum pairwise spacing, exercising the
// "nodes not regularly aligned" case of Sec. I.
func Irregular(n int, w, h, minSpacing float64, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	nw := &Network{DieW: w, DieH: h}
	const maxTries = 10000
	for id := 0; id < n; id++ {
		placed := false
		for try := 0; try < maxTries && !placed; try++ {
			p := geom.Point{
				X: 0.5 + rng.Float64()*(w-1),
				Y: 0.5 + rng.Float64()*(h-1),
			}
			ok := true
			for _, m := range nw.Nodes {
				if geom.Manhattan(p, m.Pos) < minSpacing {
					ok = false
					break
				}
			}
			if ok {
				nw.Nodes = append(nw.Nodes, Node{ID: id, Name: fmt.Sprintf("n%d", id), Pos: p})
				placed = true
			}
		}
		if !placed {
			// Fall back to a grid slot to guarantee progress.
			nw.Nodes = append(nw.Nodes, Node{
				ID:   id,
				Name: fmt.Sprintf("n%d", id),
				Pos:  geom.Point{X: 0.5 + float64(id%8)*minSpacing, Y: 0.5 + float64(id/8)*minSpacing},
			})
		}
	}
	return nw
}

// Signal is one communication demand: Src sends to Dst. WRONoCs reserve
// a collision-free path for every signal at design time.
type Signal struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

func (s Signal) String() string { return fmt.Sprintf("s%d->%d", s.Src, s.Dst) }

// AllToAll returns the full traffic pattern of the evaluation: every
// node sends to every other node (N*(N-1) signals), ordered by source
// then destination.
func AllToAll(n int) []Signal {
	sigs := make([]Signal, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				sigs = append(sigs, Signal{s, d})
			}
		}
	}
	return sigs
}

// SortSignals orders signals deterministically (by source, then
// destination); helpful for reproducible mapping results.
func SortSignals(sigs []Signal) {
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].Src != sigs[j].Src {
			return sigs[i].Src < sigs[j].Src
		}
		return sigs[i].Dst < sigs[j].Dst
	})
}
