package noc

import (
	"testing"

	"xring/internal/geom"
)

func TestGrid(t *testing.T) {
	nw := Grid(4, 2, 2, 1)
	if nw.N() != 8 {
		t.Fatalf("N = %d, want 8", nw.N())
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row-major from bottom-left.
	if !nw.Nodes[0].Pos.Eq(geom.Point{X: 1, Y: 1}) {
		t.Fatalf("node 0 at %v", nw.Nodes[0].Pos)
	}
	if !nw.Nodes[5].Pos.Eq(geom.Point{X: 3, Y: 3}) {
		t.Fatalf("node 5 at %v", nw.Nodes[5].Pos)
	}
	if nw.DieW != 8 || nw.DieH != 4 {
		t.Fatalf("die = %v x %v", nw.DieW, nw.DieH)
	}
}

func TestStandardFloorplans(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int
	}{{8, 8}, {16, 16}, {32, 32}} {
		nw, err := FloorplanFor(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if nw.N() != tc.want {
			t.Fatalf("FloorplanFor(%d).N = %d", tc.n, nw.N())
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("floorplan %d: %v", tc.n, err)
		}
	}
	if _, err := FloorplanFor(10); err == nil {
		t.Fatal("want error for unsupported size")
	}
}

func TestValidateRejectsBadIDs(t *testing.T) {
	nw := &Network{Nodes: []Node{{ID: 1, Pos: geom.Point{}}}}
	if err := nw.Validate(); err == nil {
		t.Fatal("want error for non-sequential IDs")
	}
	dup := &Network{Nodes: []Node{
		{ID: 0, Pos: geom.Point{X: 1, Y: 1}},
		{ID: 1, Pos: geom.Point{X: 1, Y: 1}},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("want error for duplicate positions")
	}
}

func TestIrregularDeterministicAndSpaced(t *testing.T) {
	a := Irregular(12, 10, 10, 1.0, 7)
	b := Irregular(12, 10, 10, 1.0, 7)
	if a.N() != 12 || b.N() != 12 {
		t.Fatal("wrong node count")
	}
	for i := range a.Nodes {
		if !a.Nodes[i].Pos.Eq(b.Nodes[i].Pos) {
			t.Fatal("Irregular is not deterministic for a fixed seed")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		for j := i + 1; j < len(a.Nodes); j++ {
			if geom.Manhattan(a.Nodes[i].Pos, a.Nodes[j].Pos) < 0.999 {
				t.Fatalf("nodes %d,%d too close", i, j)
			}
		}
	}
	// A different seed gives a different placement.
	c := Irregular(12, 10, 10, 1.0, 8)
	same := true
	for i := range a.Nodes {
		if !a.Nodes[i].Pos.Eq(c.Nodes[i].Pos) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different placements")
	}
}

func TestAllToAll(t *testing.T) {
	sigs := AllToAll(4)
	if len(sigs) != 12 {
		t.Fatalf("len = %d, want 12", len(sigs))
	}
	seen := map[Signal]bool{}
	for _, s := range sigs {
		if s.Src == s.Dst {
			t.Fatalf("self signal %v", s)
		}
		if seen[s] {
			t.Fatalf("duplicate signal %v", s)
		}
		seen[s] = true
	}
	if AllToAll(1) != nil && len(AllToAll(1)) != 0 {
		t.Fatal("AllToAll(1) should be empty")
	}
}

func TestSortSignals(t *testing.T) {
	sigs := []Signal{{2, 1}, {0, 3}, {0, 1}, {2, 0}}
	SortSignals(sigs)
	want := []Signal{{0, 1}, {0, 3}, {2, 0}, {2, 1}}
	for i := range want {
		if sigs[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, sigs[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	nw := Floorplan8()
	pts := nw.Positions()
	if len(pts) != 8 || !pts[3].Eq(nw.Nodes[3].Pos) {
		t.Fatal("Positions mismatch")
	}
}
