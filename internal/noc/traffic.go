package noc

import "math/bits"

// Synthetic traffic patterns, the standard NoC evaluation suite. All
// generators skip self-signals and return deterministic, duplicate-free
// slices suitable for Options.Traffic.

// Transpose returns the matrix-transpose pattern for n = k*k nodes laid
// out row-major: node (r,c) sends to node (c,r). Off-diagonal nodes
// pair up; diagonal nodes stay silent.
func Transpose(n int) []Signal {
	k := 1
	for k*k < n {
		k++
	}
	if k*k != n {
		return nil
	}
	var out []Signal
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			src := r*k + c
			dst := c*k + r
			if src != dst {
				out = append(out, Signal{Src: src, Dst: dst})
			}
		}
	}
	return out
}

// BitReversal returns the bit-reversal pattern for n a power of two:
// node i sends to the node whose index is i's bit-reversed value.
func BitReversal(n int) []Signal {
	if n <= 0 || n&(n-1) != 0 {
		return nil
	}
	w := bits.Len(uint(n)) - 1
	var out []Signal
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> (bits.UintSize - w))
		if i != j {
			out = append(out, Signal{Src: i, Dst: j})
		}
	}
	return out
}

// Hotspot returns the pattern where every node exchanges traffic with
// one hot node (gather + scatter).
func Hotspot(n, hot int) []Signal {
	var out []Signal
	for i := 0; i < n; i++ {
		if i == hot {
			continue
		}
		out = append(out, Signal{Src: i, Dst: hot}, Signal{Src: hot, Dst: i})
	}
	return out
}

// NeighborRing returns the pattern where node i sends to node
// (i+1) mod n — nearest-neighbour pipeline traffic in ID space.
func NeighborRing(n int) []Signal {
	if n < 2 {
		return nil
	}
	out := make([]Signal, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Signal{Src: i, Dst: (i + 1) % n})
	}
	return out
}

// Shuffle returns the perfect-shuffle pattern for n a power of two:
// node i sends to (2i mod n-1)-style left-rotate of its index bits.
func Shuffle(n int) []Signal {
	if n <= 0 || n&(n-1) != 0 {
		return nil
	}
	w := bits.Len(uint(n)) - 1
	var out []Signal
	for i := 0; i < n; i++ {
		j := ((i << 1) | (i >> (w - 1))) & (n - 1)
		if i != j {
			out = append(out, Signal{Src: i, Dst: j})
		}
	}
	return out
}
