package noc

import "testing"

// checkPattern validates the common contract: no self-signals, no
// duplicates, endpoints in range.
func checkPattern(t *testing.T, name string, sigs []Signal, n int) {
	t.Helper()
	seen := map[Signal]bool{}
	for _, s := range sigs {
		if s.Src == s.Dst {
			t.Fatalf("%s: self-signal %v", name, s)
		}
		if s.Src < 0 || s.Src >= n || s.Dst < 0 || s.Dst >= n {
			t.Fatalf("%s: out-of-range %v", name, s)
		}
		if seen[s] {
			t.Fatalf("%s: duplicate %v", name, s)
		}
		seen[s] = true
	}
}

func TestTranspose(t *testing.T) {
	sigs := Transpose(16)
	checkPattern(t, "transpose", sigs, 16)
	// 16 = 4x4: 12 off-diagonal nodes participate.
	if len(sigs) != 12 {
		t.Fatalf("len = %d, want 12", len(sigs))
	}
	// (r,c)=(0,1) -> node 1 sends to node 4.
	found := false
	for _, s := range sigs {
		if s.Src == 1 && s.Dst == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected 1->4 in the 4x4 transpose")
	}
	if Transpose(10) != nil {
		t.Fatal("non-square n must return nil")
	}
}

func TestBitReversal(t *testing.T) {
	sigs := BitReversal(8)
	checkPattern(t, "bitrev", sigs, 8)
	// 3-bit reversal: 1(001)->4(100), 3(011)->6(110); 0,2,5,7... 2(010)->2 self.
	want := map[Signal]bool{{Src: 1, Dst: 4}: true, {Src: 3, Dst: 6}: true}
	got := map[Signal]bool{}
	for _, s := range sigs {
		got[s] = true
	}
	for w := range want {
		if !got[w] {
			t.Fatalf("missing %v in %v", w, sigs)
		}
	}
	if BitReversal(6) != nil {
		t.Fatal("non-power-of-two must return nil")
	}
}

func TestHotspot(t *testing.T) {
	sigs := Hotspot(8, 3)
	checkPattern(t, "hotspot", sigs, 8)
	if len(sigs) != 14 {
		t.Fatalf("len = %d, want 14", len(sigs))
	}
	for _, s := range sigs {
		if s.Src != 3 && s.Dst != 3 {
			t.Fatalf("signal %v does not touch the hotspot", s)
		}
	}
}

func TestNeighborRing(t *testing.T) {
	sigs := NeighborRing(8)
	checkPattern(t, "neighbor", sigs, 8)
	if len(sigs) != 8 {
		t.Fatalf("len = %d", len(sigs))
	}
	if NeighborRing(1) != nil {
		t.Fatal("n<2 must return nil")
	}
}

func TestShuffle(t *testing.T) {
	sigs := Shuffle(8)
	checkPattern(t, "shuffle", sigs, 8)
	// 3-bit left rotate: 1(001)->2(010), 5(101)->3(011).
	got := map[Signal]bool{}
	for _, s := range sigs {
		got[s] = true
	}
	if !got[Signal{Src: 1, Dst: 2}] || !got[Signal{Src: 5, Dst: 3}] {
		t.Fatalf("shuffle mapping wrong: %v", sigs)
	}
	if Shuffle(12) != nil {
		t.Fatal("non-power-of-two must return nil")
	}
}

func TestPatternsSynthesize(t *testing.T) {
	// Every pattern must be accepted end-to-end by the mapper contract
	// (validated in core's tests; here just check the generator output
	// is sortable and stable).
	for name, sigs := range map[string][]Signal{
		"transpose": Transpose(16),
		"bitrev":    BitReversal(16),
		"hotspot":   Hotspot(16, 0),
		"neighbor":  NeighborRing(16),
		"shuffle":   Shuffle(16),
	} {
		if len(sigs) == 0 {
			t.Fatalf("%s: empty pattern", name)
		}
		SortSignals(sigs)
	}
}
