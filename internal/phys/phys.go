// Package phys holds the photonic device and process parameters used by
// the loss and crosstalk analyses, together with dB/linear conversion
// helpers.
//
// The paper inherits its coefficients from PROTON+ [15] (losses for the
// crossbar comparison), ORing [17] (losses for the ring comparison) and
// Nikdast et al. [14] (crosstalk). Those exact tables are not printed in
// the paper, so this package provides parameter sets with the customary
// literature values; DESIGN.md documents the substitution. All analyses
// take a Params value, so alternative technology assumptions are a
// one-liner.
package phys

import "math"

// Params bundles every technology coefficient consumed by the analyses.
//
// Loss terms are positive dB quantities ("a signal loses X dB");
// crosstalk coefficients are negative dB ("the leaked copy is X dB below
// the incident signal").
type Params struct {
	// PropagationDBPerMM is waveguide propagation loss per millimetre.
	PropagationDBPerMM float64
	// CrossingDB is the insertion loss of passing one waveguide crossing.
	CrossingDB float64
	// DropDB is the loss of coupling into an on-resonance MRR (drop).
	DropDB float64
	// ThroughDB is the loss of passing one off-resonance MRR.
	ThroughDB float64
	// BendDB is the loss per 90-degree waveguide bend.
	BendDB float64
	// PhotodetectorDB is the terminal detection loss at the receiver.
	PhotodetectorDB float64

	// ReceiverSensitivityDBm is the minimum detectable power S; laser
	// power for a wavelength follows P = 10^((il_w + S)/10) mW.
	ReceiverSensitivityDBm float64

	// XtalkCrossingDB is the relative power leaked into the transverse
	// waveguide at a crossing.
	XtalkCrossingDB float64
	// XtalkDropDB is the relative power that leaks PAST an on-resonance
	// MRR and continues on the original waveguide after a drop.
	XtalkDropDB float64
	// XtalkThroughDB is the relative power coupled onto the drop port
	// of an off-resonance MRR as a signal passes it.
	XtalkThroughDB float64

	// SplitterSplitDB is the intrinsic 50/50 power division per splitter
	// stage (3.01 dB), and SplitterExcessDB the additional excess loss.
	SplitterSplitDB  float64
	SplitterExcessDB float64

	// ModulatorWidthMM (A1) and SplitterWidthMM (A2) size the spacing
	// between paired ring waveguides: A1 + ceil(log2 N) * A2 (Sec. III-D).
	ModulatorWidthMM float64
	SplitterWidthMM  float64

	// TuningMWPerMRR is the thermal tuning power to hold one microring
	// on resonance (mW). Used by the device-inventory analysis.
	TuningMWPerMRR float64
}

// Default returns the parameter set used throughout the reproduction:
// the customary silicon-photonics values from the PROTON+/ORing/Nikdast
// line of work.
func Default() Params {
	return Params{
		PropagationDBPerMM:     0.0274, // 0.274 dB/cm
		CrossingDB:             0.04,
		DropDB:                 0.5,
		ThroughDB:              0.005,
		BendDB:                 0.005,
		PhotodetectorDB:        0.1,
		ReceiverSensitivityDBm: -26.2,
		XtalkCrossingDB:        -40,
		XtalkDropDB:            -20,
		XtalkThroughDB:         -35,
		SplitterSplitDB:        3.01,
		SplitterExcessDB:       0.1,
		ModulatorWidthMM:       0.10,
		SplitterWidthMM:        0.02,
		TuningMWPerMRR:         0.02, // 20 µW per ring heater
	}
}

// TableI returns the parameter set used for the crossbar comparison
// (Sec. IV-A applies the loss parameters of PROTON+ [15]). Its crossing
// loss is substantially higher than the ring-comparison set, which is
// what makes crossing-heavy crossbar layouts pay in Table I; the value
// is calibrated so that the published per-tool crossing counts and
// worst-case losses are mutually consistent (see DESIGN.md).
func TableI() Params {
	p := Default()
	p.CrossingDB = 0.15
	return p
}

// RingSpacingMM returns the paper's spacing between a pair of ring
// waveguides for an N-node network: A1 + ceil(log2 N) * A2.
func (p Params) RingSpacingMM(n int) float64 {
	if n < 2 {
		return p.ModulatorWidthMM
	}
	return p.ModulatorWidthMM + math.Ceil(math.Log2(float64(n)))*p.SplitterWidthMM
}

// DBToLinear converts a dB ratio to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to dB. Zero or negative
// ratios map to -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// LaserPowerMW returns the laser power (mW) required for a wavelength
// whose worst-case path loses ilDB, given receiver sensitivity
// sensitivityDBm: P = 10^((il + S)/10).
func LaserPowerMW(ilDB, sensitivityDBm float64) float64 {
	return math.Pow(10, (ilDB+sensitivityDBm)/10)
}

// SNRdB returns 10*log10(Psig/Pnoise) for linear powers. A zero noise
// power yields +Inf (the signal is noise-free).
func SNRdB(signal, noise float64) float64 {
	if noise <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(signal/noise)
}
