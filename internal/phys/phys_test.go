package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultSane(t *testing.T) {
	p := Default()
	if p.PropagationDBPerMM <= 0 || p.CrossingDB <= 0 || p.DropDB <= 0 ||
		p.ThroughDB <= 0 || p.PhotodetectorDB <= 0 {
		t.Fatal("loss terms must be positive dB")
	}
	if p.XtalkCrossingDB >= 0 || p.XtalkDropDB >= 0 || p.XtalkThroughDB >= 0 {
		t.Fatal("crosstalk coefficients must be negative dB")
	}
	if p.ReceiverSensitivityDBm >= 0 {
		t.Fatal("receiver sensitivity should be negative dBm")
	}
	if p.DropDB <= p.ThroughDB {
		t.Fatal("drop loss must exceed through loss")
	}
}

func TestRingSpacing(t *testing.T) {
	p := Default()
	// N=16: A1 + 4*A2.
	want := p.ModulatorWidthMM + 4*p.SplitterWidthMM
	if got := p.RingSpacingMM(16); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RingSpacingMM(16) = %v, want %v", got, want)
	}
	// N=9: ceil(log2 9)=4.
	if got := p.RingSpacingMM(9); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RingSpacingMM(9) = %v, want %v", got, want)
	}
	// Spacing grows (weakly) with N.
	prev := 0.0
	for n := 2; n <= 64; n *= 2 {
		s := p.RingSpacingMM(n)
		if s < prev {
			t.Fatalf("spacing decreased at n=%d", n)
		}
		prev = s
	}
	if p.RingSpacingMM(1) != p.ModulatorWidthMM {
		t.Fatal("degenerate N<2 spacing")
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 60)
		if math.IsNaN(db) {
			db = 0
		}
		back := LinearToDB(DBToLinear(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Fatal("LinearToDB(0) should be -Inf")
	}
}

func TestLaserPower(t *testing.T) {
	// il = 0 and S = -20 dBm: 0.01 mW.
	if got := LaserPowerMW(0, -20); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("LaserPowerMW = %v, want 0.01", got)
	}
	// Monotone in insertion loss.
	if LaserPowerMW(10, -20) <= LaserPowerMW(5, -20) {
		t.Fatal("laser power must grow with insertion loss")
	}
	// +3 dB loss doubles power (within rounding).
	r := LaserPowerMW(3.0103, -20) / LaserPowerMW(0, -20)
	if math.Abs(r-2) > 1e-3 {
		t.Fatalf("3 dB should double power, ratio=%v", r)
	}
}

func TestSNR(t *testing.T) {
	if got := SNRdB(100, 1); math.Abs(got-20) > 1e-12 {
		t.Fatalf("SNRdB(100,1) = %v, want 20", got)
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Fatal("zero noise should give +Inf SNR")
	}
	if SNRdB(1, 2) >= 0 {
		t.Fatal("noise above signal should give negative SNR")
	}
}

func TestTableIParams(t *testing.T) {
	d := Default()
	t1 := TableI()
	if t1.CrossingDB <= d.CrossingDB {
		t.Fatal("Table I crossing loss should exceed the default")
	}
	if t1.DropDB != d.DropDB || t1.PropagationDBPerMM != d.PropagationDBPerMM {
		t.Fatal("Table I should only raise the crossing loss")
	}
	if d.TuningMWPerMRR <= 0 {
		t.Fatal("tuning power missing")
	}
}
