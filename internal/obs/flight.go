package obs

// The flight recorder: an always-on, bounded ring buffer of the last N
// completed job records. Unlike the trace collector (opt-in, process
// global) it is meant to run in production at all times — one short
// critical section per *completed job*, no allocation per record
// beyond the caller-built JobRecord, and zero cost while idle — so an
// operator can always ask "what were the last jobs this daemon ran,
// and where did their time go?" after the fact.
//
// The service dumps it at GET /debug/flightrecorder and snapshots it
// to disk automatically when a job panics or trips the stage watchdog,
// so post-mortems survive the process.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// StageTiming is one engine stage of a recorded job.
type StageTiming struct {
	Name  string  `json:"name"`
	DurMS float64 `json:"durMS"`
}

// JobRecord is one completed job as stored by the flight recorder:
// identity (trace ID, job ID, content key), timing (wall-clock start,
// queue wait, total duration, per-stage spans) and the resilience
// annotations that explain an anomalous request after the fact.
type JobRecord struct {
	TraceID     string        `json:"traceID,omitempty"`
	JobID       string        `json:"jobID,omitempty"`
	Key         string        `json:"key,omitempty"`
	Start       time.Time     `json:"start"`
	QueueWaitMS float64       `json:"queueWaitMS,omitempty"`
	DurMS       float64       `json:"durMS"`
	Outcome     string        `json:"outcome"` // ok | degraded | timeout | error
	Error       string        `json:"error,omitempty"`
	Stages      []StageTiming `json:"stages,omitempty"`
	// Resilience annotations.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	WarmStart      bool   `json:"warmStart,omitempty"`
	Panic          bool   `json:"panic,omitempty"`
	Injected       bool   `json:"injected,omitempty"` // a resilience fault fired
}

// DefaultFlightRecords is the capacity used when NewFlightRecorder is
// given a non-positive size.
const DefaultFlightRecords = 256

// FlightRecorder is a fixed-capacity ring of JobRecords. All methods
// are safe for concurrent use; Record holds the lock only to copy one
// record into its slot.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []JobRecord
	next  int    // slot for the next record
	total uint64 // records ever written (>= len(buf) once wrapped)
}

// NewFlightRecorder builds a recorder keeping the last n completed
// jobs (DefaultFlightRecords when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightRecords
	}
	return &FlightRecorder{buf: make([]JobRecord, 0, n)}
}

// Record appends one completed job, overwriting the oldest record once
// the ring is full.
func (r *FlightRecorder) Record(rec JobRecord) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns the number of records ever written (not capped).
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained records oldest-first.
func (r *FlightRecorder) Snapshot() []JobRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobRecord, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// FlightDump is the serialized snapshot envelope.
type FlightDump struct {
	// Total counts jobs ever recorded; len(Records) is capped at the
	// ring capacity, so Total - len(Records) jobs have been overwritten.
	Total   uint64      `json:"total"`
	Records []JobRecord `json:"records"`
}

// WriteSnapshot writes the snapshot as indented JSON (the
// /debug/flightrecorder body).
func (r *FlightRecorder) WriteSnapshot(w io.Writer) error {
	d := FlightDump{Records: r.Snapshot(), Total: r.Total()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// SnapshotToFile writes the snapshot into dir as
// flight-<reason>-<unix-nanos>.json (temp file + rename, so a reader
// racing the write never sees a torn file) and returns the path.
func (r *FlightRecorder) SnapshotToFile(dir, reason string) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("flight-%s-%d.json", reason, time.Now().UnixNano()))
	tmp, err := os.CreateTemp(dir, "flight-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := r.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}
