package obs

// Request-scoped trace identity, following the W3C Trace Context
// format (https://www.w3.org/TR/trace-context/): a trace ID is 32
// lowercase hex digits, carried over HTTP in a `traceparent` header of
// the form
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// The service accepts an incoming traceparent (or generates a fresh ID
// when absent/invalid, as the spec requires), stores the ID on the job
// context with WithTraceID, and every span started beneath that
// context records it — so per-request SSE streams, trace exports and
// the flight recorder all correlate on the same identifier.
//
// The cost discipline of the rest of the package applies: the disabled
// span path never looks at the context, so carrying a trace ID adds
// nothing to hot loops.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID is a W3C trace-context trace-id: exactly 32 lowercase hex
// digits, not all zero. The zero value "" means "no trace".
type TraceID string

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID {
	var b [16]byte
	// crypto/rand.Read never fails on supported platforms (Go 1.22+
	// panics internally rather than returning an error).
	_, _ = rand.Read(b[:])
	b[0] |= 1 // never all-zero
	return TraceID(hex.EncodeToString(b[:]))
}

// ParseTraceID validates a bare trace-id string (32 lowercase hex
// digits, not all zero).
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return "", fmt.Errorf("obs: trace ID %q: want 32 hex digits, got %d", s, len(s))
	}
	zero := true
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			if c != '0' {
				zero = false
			}
		case c >= 'a' && c <= 'f':
			zero = false
		default:
			return "", fmt.Errorf("obs: trace ID %q: not lowercase hex", s)
		}
	}
	if zero {
		return "", fmt.Errorf("obs: trace ID %q: all-zero is invalid", s)
	}
	return TraceID(s), nil
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// value. Unknown versions with well-formed version-00 prefixes are
// accepted, as the spec requires; malformed headers return an error
// (callers should then generate a fresh ID rather than fail the
// request).
func ParseTraceparent(h string) (TraceID, error) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", fmt.Errorf("obs: traceparent %q: want version-traceid-parentid-flags", h)
	}
	if len(parts[0]) != 2 || !isHexLower(parts[0]) {
		return "", fmt.Errorf("obs: traceparent %q: bad version field", h)
	}
	if parts[0] == "ff" {
		return "", fmt.Errorf("obs: traceparent %q: version ff is forbidden", h)
	}
	if len(parts) > 4 && parts[0] == "00" {
		return "", fmt.Errorf("obs: traceparent %q: version 00 has exactly four fields", h)
	}
	tid, err := ParseTraceID(parts[1])
	if err != nil {
		return "", err
	}
	if len(parts[2]) != 16 || !isHexLower(parts[2]) {
		return "", fmt.Errorf("obs: traceparent %q: bad parent-id field", h)
	}
	if len(parts[3]) != 2 || !isHexLower(parts[3]) {
		return "", fmt.Errorf("obs: traceparent %q: bad flags field", h)
	}
	return tid, nil
}

func isHexLower(s string) bool {
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Traceparent renders the trace ID as an outgoing traceparent header
// value with a fresh random parent-id and the sampled flag set.
func (t TraceID) Traceparent() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	b[0] |= 1
	return "00-" + string(t) + "-" + hex.EncodeToString(b[:]) + "-01"
}

type traceIDCtxKey struct{}

// WithTraceID returns a context carrying the trace ID. Spans started
// beneath it record the ID in their SpanRecord, and the service client
// propagates it as an outgoing traceparent header.
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceIDCtxKey{}, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDCtxKey{}).(TraceID)
	return id
}
