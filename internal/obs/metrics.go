package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry. Instruments are created once at package init of
// the instrumented packages (NewCounter panics on duplicate names, so a
// name collision is a programming error caught at startup) and updated
// from hot loops. Every update is gated on the metrics atomic flag and
// is allocation-free in both states.
//
// Naming convention: <stage>.<subject>[.<aspect>], e.g.
// "ring.bb.nodes", "core.ringcache.hits", "parallel.tasks". Units are
// part of histogram construction, not the name.

var registry = struct {
	sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}{
	counters:   map[string]*Counter{},
	gauges:     map[string]*Gauge{},
	histograms: map[string]*Histogram{},
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers a counter. Duplicate names panic.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.counters[name]; dup {
		panic("obs: duplicate counter " + name)
	}
	registry.counters[name] = c
	return c
}

// Add increments the counter by n when metrics are enabled.
func (c *Counter) Add(n int64) {
	if !metricsOn.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when metrics are enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that also tracks its high-water mark
// (pool occupancy, cache size). Add is the hot-path operation.
type Gauge struct {
	name string
	cur  atomic.Int64
	max  atomic.Int64
}

// NewGauge registers a gauge. Duplicate names panic.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.gauges[name]; dup {
		panic("obs: duplicate gauge " + name)
	}
	registry.gauges[name] = g
	return g
}

// Add moves the gauge by delta (negative to release) and updates the
// high-water mark, when metrics are enabled.
func (g *Gauge) Add(delta int64) {
	if !metricsOn.Load() {
		return
	}
	v := g.cur.Add(delta)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set forces the gauge to v and updates the high-water mark, when
// metrics are enabled.
func (g *Gauge) Set(v int64) {
	if !metricsOn.Load() {
		return
	}
	g.cur.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges (v <= bounds[i] falls in bucket i); values above the last bound
// land in the overflow bucket. The layout is fixed at construction so
// concurrent Observe never reallocates.
type Histogram struct {
	name   string
	unit   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram registers a histogram with the given unit label and
// strictly increasing bucket bounds. Duplicate names and non-monotonic
// bounds panic.
func NewHistogram(name, unit string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		name:   name,
		unit:   unit,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.histograms[name]; dup {
		panic("obs: duplicate histogram " + name)
	}
	registry.histograms[name] = h
	return h
}

// Observe records one value when metrics are enabled.
func (h *Histogram) Observe(v float64) {
	if !metricsOn.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the per-bucket counts (len(bounds)+1, last =
// overflow).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper edges.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// ResetMetrics zeroes every registered instrument. Tests and the
// xbench timing harness call it between passes.
func ResetMetrics() {
	registry.Lock()
	defer registry.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.cur.Store(0)
		g.max.Store(0)
	}
	for _, h := range registry.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// bucketDump is one histogram bucket in the export.
type bucketDump struct {
	LE    any   `json:"le"` // float64 bound or "+Inf"
	Count int64 `json:"count"`
}

type histogramDump struct {
	Unit    string       `json:"unit,omitempty"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []bucketDump `json:"buckets"`
}

type gaugeDump struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// MetricsDump is the exported registry state (the -metrics FILE
// format). Maps marshal with sorted keys, so the dump is deterministic
// for a fixed engine state.
type MetricsDump struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]gaugeDump     `json:"gauges"`
	Histograms map[string]histogramDump `json:"histograms"`
}

// SnapshotMetrics captures the current value of every instrument.
func SnapshotMetrics() MetricsDump {
	registry.Lock()
	defer registry.Unlock()
	d := MetricsDump{
		Counters:   make(map[string]int64, len(registry.counters)),
		Gauges:     make(map[string]gaugeDump, len(registry.gauges)),
		Histograms: make(map[string]histogramDump, len(registry.histograms)),
	}
	for name, c := range registry.counters {
		d.Counters[name] = c.Value()
	}
	for name, g := range registry.gauges {
		d.Gauges[name] = gaugeDump{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range registry.histograms {
		hd := histogramDump{Unit: h.unit, Count: h.Count(), Sum: h.Sum()}
		counts := h.BucketCounts()
		for i, b := range h.bounds {
			hd.Buckets = append(hd.Buckets, bucketDump{LE: b, Count: counts[i]})
		}
		hd.Buckets = append(hd.Buckets, bucketDump{LE: "+Inf", Count: counts[len(counts)-1]})
		d.Histograms[name] = hd
	}
	return d
}

// WriteMetrics writes the registry snapshot as indented JSON.
func WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SnapshotMetrics())
}
