package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
)

// Structured logging: every pipeline stage gets a named *slog.Logger
// whose level is settable independently ("-log-level mapping=debug"
// turns only Step 3 chatty). The default state is silent — the shared
// handler sits behind a level far above slog.LevelError, so
// Logger(stage).Info(...) bails out inside slog's Enabled check without
// formatting anything.

// logOff is above any level instrumented code uses.
const logOff = slog.Level(127)

// Level aliases so instrumented packages need not import log/slog just
// to guard a call site with Logger(stage).Enabled(ctx, level).
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

var logState = struct {
	sync.Mutex
	out          io.Writer
	defaultLevel slog.LevelVar
	stageLevels  map[string]*slog.LevelVar
	loggers      map[string]*slog.Logger
	// stages is the set of names SetLogSpec accepts in "stage=LEVEL"
	// pairs; a misspelled stage is a typed error, not a silent no-op.
	stages map[string]bool
}{
	out:         io.Discard,
	stageLevels: map[string]*slog.LevelVar{},
	loggers:     map[string]*slog.Logger{},
	stages: map[string]bool{
		"core": true, "ring": true, "shortcut": true, "mapping": true,
		"pdn": true, "loss": true, "xtalk": true, "placement": true,
		"parallel": true, "milp": true, "delta": true, "resilience": true,
		"service": true, "client": true,
	},
}

// RegisterLogStage adds a stage name to the set SetLogSpec accepts.
// Packages introducing a new pipeline stage (and tests using synthetic
// stages) register it once at init.
func RegisterLogStage(name string) {
	logState.Lock()
	defer logState.Unlock()
	logState.stages[name] = true
}

// ValidLogStages returns the sorted list of stage names SetLogSpec
// accepts.
func ValidLogStages() []string {
	logState.Lock()
	defer logState.Unlock()
	return validStagesLocked()
}

func validStagesLocked() []string {
	out := make([]string, 0, len(logState.stages))
	for s := range logState.stages {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// UnknownStageError reports a "stage=LEVEL" pair naming a stage the
// log layer does not know, listing the valid names.
type UnknownStageError struct {
	Stage string
	Valid []string
}

func (e *UnknownStageError) Error() string {
	return fmt.Sprintf("obs: unknown log stage %q (valid stages: %s)",
		e.Stage, strings.Join(e.Valid, ", "))
}

func init() { logState.defaultLevel.Set(logOff) }

// stageHandler routes records through the per-stage level.
type stageHandler struct {
	inner slog.Handler
	level *slog.LevelVar
}

func (h *stageHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level.Level()
}
func (h *stageHandler) Handle(ctx context.Context, r slog.Record) error {
	return h.inner.Handle(ctx, r)
}
func (h *stageHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &stageHandler{inner: h.inner.WithAttrs(attrs), level: h.level}
}
func (h *stageHandler) WithGroup(name string) slog.Handler {
	return &stageHandler{inner: h.inner.WithGroup(name), level: h.level}
}

// Logger returns the structured logger for a pipeline stage ("ring",
// "core", "mapping", ...). Loggers are cached; level changes through
// SetLogSpec apply to loggers already handed out.
func Logger(stage string) *slog.Logger {
	logState.Lock()
	defer logState.Unlock()
	if l, ok := logState.loggers[stage]; ok {
		return l
	}
	lv, ok := logState.stageLevels[stage]
	if !ok {
		lv = &logState.defaultLevel
	}
	h := &stageHandler{
		inner: slog.NewTextHandler(logState.out, &slog.HandlerOptions{Level: slog.LevelDebug}).
			WithAttrs([]slog.Attr{slog.String("stage", stage)}),
		level: lv,
	}
	l := slog.New(h)
	logState.loggers[stage] = l
	return l
}

// parseLevel maps a level name to a slog.Level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	case "off", "silent", "none":
		return logOff, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// SetLogSpec configures logging output and levels from a spec of the
// form "LEVEL" (all stages) or "stage=LEVEL[,stage=LEVEL...]", where
// LEVEL is debug, info, warn, error or off. A bare level and per-stage
// overrides may be mixed: "info,ring=debug". Passing w == nil keeps
// the current output writer. A pair naming an unknown stage fails with
// a typed *UnknownStageError listing the valid names (ValidLogStages;
// extendable via RegisterLogStage), so a misspelled -log-level flag
// surfaces instead of silently logging nothing.
func SetLogSpec(w io.Writer, spec string) error {
	logState.Lock()
	defer logState.Unlock()
	if w != nil {
		logState.out = w
		// Rebuild cached loggers against the new writer, keeping their
		// level vars so earlier references stay live.
		logState.loggers = map[string]*slog.Logger{}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if stage, lvl, ok := strings.Cut(part, "="); ok {
			if !logState.stages[stage] {
				return &UnknownStageError{Stage: stage, Valid: validStagesLocked()}
			}
			l, err := parseLevel(lvl)
			if err != nil {
				return err
			}
			lv, exists := logState.stageLevels[stage]
			if !exists {
				lv = &slog.LevelVar{}
				logState.stageLevels[stage] = lv
				// A logger cached on the default level var must be rebuilt.
				delete(logState.loggers, stage)
			}
			lv.Set(l)
			continue
		}
		l, err := parseLevel(part)
		if err != nil {
			return err
		}
		logState.defaultLevel.Set(l)
	}
	return nil
}
