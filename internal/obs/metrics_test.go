package obs_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"xring/internal/obs"
)

var (
	testCounter = obs.NewCounter("obstest.counter")
	testGauge   = obs.NewGauge("obstest.gauge")
	testHist    = obs.NewHistogram("obstest.hist", "mm", []float64{1, 2, 4})
)

// TestHistogramBucketBoundaries pins the bucket semantics: a value on
// a bound falls into that bound's bucket (v <= bounds[i]), values above
// the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	withTelemetry(t, false, true)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		testHist.Observe(v)
	}
	if got, want := testHist.BucketCounts(), []int64{2, 2, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if got := testHist.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := testHist.Sum(); math.Abs(got-17) > 1e-12 {
		t.Fatalf("sum = %g, want 17", got)
	}
	if got, want := testHist.Bounds(), []float64{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	withTelemetry(t, false, true)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				testHist.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := testHist.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if got := testHist.Sum(); math.Abs(got-1.5*goroutines*per) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, 1.5*goroutines*per)
	}
	if got := testHist.BucketCounts()[1]; got != goroutines*per {
		t.Fatalf("bucket[1] = %d, want %d", got, goroutines*per)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	withTelemetry(t, false, true)
	testGauge.Add(3)
	testGauge.Add(-1)
	if v, m := testGauge.Value(), testGauge.Max(); v != 2 || m != 3 {
		t.Fatalf("after Add: value=%d max=%d, want 2/3", v, m)
	}
	testGauge.Set(5)
	testGauge.Set(1)
	if v, m := testGauge.Value(), testGauge.Max(); v != 1 || m != 5 {
		t.Fatalf("after Set: value=%d max=%d, want 1/5", v, m)
	}
}

// TestMetricsDisabledDropUpdates: the gate must drop updates without
// touching instrument state.
func TestMetricsDisabledDropUpdates(t *testing.T) {
	withTelemetry(t, false, false)
	testCounter.Add(7)
	testGauge.Add(7)
	testHist.Observe(7)
	if testCounter.Value() != 0 || testGauge.Value() != 0 || testGauge.Max() != 0 ||
		testHist.Count() != 0 || testHist.Sum() != 0 {
		t.Fatal("disabled instruments recorded updates")
	}
}

func TestSnapshotMetrics(t *testing.T) {
	withTelemetry(t, false, true)
	testCounter.Add(2)
	testGauge.Set(4)
	testHist.Observe(1)
	testHist.Observe(100)
	d := obs.SnapshotMetrics()
	if d.Counters["obstest.counter"] != 2 {
		t.Fatalf("counter dump = %d, want 2", d.Counters["obstest.counter"])
	}
	if g := d.Gauges["obstest.gauge"]; g.Value != 4 || g.Max != 4 {
		t.Fatalf("gauge dump = %+v, want value/max 4", g)
	}
	h := d.Histograms["obstest.hist"]
	if h.Unit != "mm" || h.Count != 2 || h.Sum != 101 {
		t.Fatalf("histogram dump = %+v", h)
	}
	if len(h.Buckets) != 4 {
		t.Fatalf("histogram buckets = %d, want 4 (3 bounds + overflow)", len(h.Buckets))
	}
	if h.Buckets[0].Count != 1 || h.Buckets[3].Count != 1 {
		t.Fatalf("bucket counts %+v, want first and overflow = 1", h.Buckets)
	}
	if h.Buckets[3].LE != "+Inf" {
		t.Fatalf("overflow bucket LE = %v, want +Inf", h.Buckets[3].LE)
	}
}
