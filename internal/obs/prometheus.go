package obs

// Prometheus text exposition (format version 0.0.4) rendered from the
// metrics registry, so GET /metrics on the daemon is scrapeable by any
// standard collector. The JSON snapshot (WriteMetrics) remains the
// file-dump format; the HTTP layer negotiates between the two.
//
// Name mangling, documented in OBSERVABILITY.md:
//
//   - every registry name is prefixed with "xring_" and characters
//     outside [a-zA-Z0-9_] become '_':
//     "service.job.duration_ms" -> "xring_service_job_duration_ms";
//   - counters additionally get the conventional "_total" suffix:
//     "service.requests" -> "xring_service_requests_total";
//   - gauges export two series: the current value under the mangled
//     name and the high-water mark under "<name>_max";
//   - histograms follow the standard cumulative encoding:
//     "<name>_bucket{le="..."}" (cumulative, ending at le="+Inf"),
//     "<name>_sum" and "<name>_count".
//
// Families are emitted in lexicographic name order, so the exposition
// is deterministic for a fixed registry state.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName mangles a registry name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("xring_"))
	b.WriteString("xring_")
	for _, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float sample value. Prometheus accepts Go's
// shortest-repr scientific notation as well as +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family ready to print: the TYPE header plus
// its sample lines.
type promFamily struct {
	name string // mangled family name
	typ  string // counter | gauge | histogram
	help string
	rows []string // fully formatted sample lines
}

// WritePrometheus renders the current registry snapshot in Prometheus
// text exposition format 0.0.4.
func WritePrometheus(w io.Writer) error {
	return writePrometheusDump(w, SnapshotMetrics())
}

func writePrometheusDump(w io.Writer, d MetricsDump) error {
	fams := make([]promFamily, 0, len(d.Counters)+2*len(d.Gauges)+len(d.Histograms))
	for name, v := range d.Counters {
		m := promName(name) + "_total"
		fams = append(fams, promFamily{
			name: m, typ: "counter",
			help: "registry counter " + name,
			rows: []string{m + " " + strconv.FormatInt(v, 10)},
		})
	}
	for name, g := range d.Gauges {
		m := promName(name)
		fams = append(fams,
			promFamily{
				name: m, typ: "gauge",
				help: "registry gauge " + name,
				rows: []string{m + " " + strconv.FormatInt(g.Value, 10)},
			},
			promFamily{
				name: m + "_max", typ: "gauge",
				help: "registry gauge " + name + " (high-water mark)",
				rows: []string{m + "_max " + strconv.FormatInt(g.Max, 10)},
			})
	}
	for name, h := range d.Histograms {
		m := promName(name)
		help := "registry histogram " + name
		if h.Unit != "" {
			help += " (unit: " + h.Unit + ")"
		}
		f := promFamily{name: m, typ: "histogram", help: help}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if bound, ok := b.LE.(float64); ok {
				le = promFloat(bound)
			}
			f.rows = append(f.rows, fmt.Sprintf("%s_bucket{le=%q} %d", m, le, cum))
		}
		f.rows = append(f.rows,
			m+"_sum "+promFloat(h.Sum),
			m+"_count "+strconv.FormatInt(h.Count, 10))
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, row := range f.rows {
			if _, err := io.WriteString(w, row+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateExposition strictly checks a Prometheus text exposition: line
// grammar (comments, TYPE/HELP headers, samples with optional labels),
// metric and label name charsets, parseable values, every sample
// declared by a preceding TYPE header, and histogram invariants
// (cumulative non-decreasing buckets, a final le="+Inf" bucket equal to
// _count). The CI observability job runs it against a live daemon's
// scrape output.
func ValidateExposition(data []byte) error {
	type histState struct {
		prev    int64
		infSeen bool
		inf     int64
		count   int64
		hasCnt  bool
	}
	types := map[string]string{}
	hists := map[string]*histState{}
	lines := strings.Split(string(data), "\n")
	for n, line := range lines {
		lineNo := n + 1
		if line == "" {
			if n != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside exposition", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return fmt.Errorf("line %d: malformed comment %q (want # TYPE/# HELP)", lineNo, line)
			}
			if !validPromName(fields[2]) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					hists[fields[2]] = &histState{}
				}
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, suffix := name, ""
		if _, ok := types[fam]; !ok {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, sfx) && types[strings.TrimSuffix(name, sfx)] == "histogram" {
					fam, suffix = strings.TrimSuffix(name, sfx), sfx
					break
				}
			}
		}
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if h, ok := hists[fam]; ok {
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
				}
				cum := int64(value)
				if cum < h.prev {
					return fmt.Errorf("line %d: bucket le=%q count %d below previous %d (not cumulative)",
						lineNo, le, cum, h.prev)
				}
				h.prev = cum
				if le == "+Inf" {
					h.infSeen, h.inf = true, cum
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
				}
			case "_count":
				h.count, h.hasCnt = int64(value), true
			case "_sum":
			default:
				return fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
			}
		}
	}
	for fam, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram %q has no le=\"+Inf\" bucket", fam)
		}
		if !h.hasCnt {
			return fmt.Errorf("histogram %q has no _count sample", fam)
		}
		if h.inf != h.count {
			return fmt.Errorf("histogram %q: +Inf bucket %d != count %d", fam, h.inf, h.count)
		}
	}
	if len(types) == 0 {
		return fmt.Errorf("exposition declares no metric families")
	}
	return nil
}

// parsePromSample splits `name{labels} value` into its parts.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || !validPromLabel(rest[:eq]) {
				return "", nil, 0, fmt.Errorf("bad label in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '\\' {
					if rest == "" {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					val.WriteByte(rest[0])
					rest = rest[1:]
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels[key] = val.String()
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 { // value [timestamp]
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if i > 0 {
			ok = ok || c >= '0' && c <= '9'
		}
		if !ok {
			return false
		}
	}
	return true
}

func validPromLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if i > 0 {
			ok = ok || c >= '0' && c <= '9'
		}
		if !ok {
			return false
		}
	}
	return true
}
