package obs_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xring/internal/obs"
)

func TestFlightRecorderWraparound(t *testing.T) {
	r := obs.NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(obs.JobRecord{JobID: fmt.Sprintf("j%d", i), Start: time.Now()})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	for i, rec := range snap {
		if want := fmt.Sprintf("j%d", 6+i); rec.JobID != want {
			t.Errorf("snapshot[%d] = %s, want %s (oldest-first)", i, rec.JobID, want)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	r := obs.NewFlightRecorder(8)
	r.Record(obs.JobRecord{JobID: "a"})
	r.Record(obs.JobRecord{JobID: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].JobID != "a" || snap[1].JobID != "b" {
		t.Fatalf("snapshot = %+v, want [a b]", snap)
	}
	if r.Total() != 2 {
		t.Fatalf("Total = %d, want 2", r.Total())
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	r := obs.NewFlightRecorder(16)
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(obs.JobRecord{JobID: "x", Outcome: "ok"})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != writers*per {
		t.Fatalf("Total = %d, want %d", got, writers*per)
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Fatalf("snapshot len = %d, want capacity 16", got)
	}
}

func TestFlightRecorderSnapshotToFile(t *testing.T) {
	dir := t.TempDir()
	r := obs.NewFlightRecorder(4)
	r.Record(obs.JobRecord{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		JobID:   "j1", Key: "sha256:abc", Outcome: "error",
		Error: "boom", Panic: true,
		Stages: []obs.StageTiming{{Name: "ring.construct", DurMS: 1.5}},
	})
	path, err := r.SnapshotToFile(dir, "panic")
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); !strings.HasPrefix(base, "flight-panic-") || !strings.HasSuffix(base, ".json") {
		t.Errorf("snapshot file name %q", base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if dump.Total != 1 || len(dump.Records) != 1 {
		t.Fatalf("dump = %+v, want 1 record", dump)
	}
	rec := dump.Records[0]
	if rec.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || !rec.Panic || rec.Outcome != "error" {
		t.Errorf("record round trip = %+v", rec)
	}
	if len(rec.Stages) != 1 || rec.Stages[0].Name != "ring.construct" {
		t.Errorf("stages round trip = %+v", rec.Stages)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot dir has %d entries, want 1", len(entries))
	}
}
