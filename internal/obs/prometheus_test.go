package obs_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"xring/internal/obs"
)

var (
	promCounter = obs.NewCounter("promtest.requests")
	promGauge   = obs.NewGauge("promtest.queue.depth")
	promHist    = obs.NewHistogram("promtest.duration_ms", "ms", []float64{1, 10, 100})
)

// TestWritePrometheus pins the exposition encoding: name mangling,
// counter _total suffix, gauge value + high-water series, cumulative
// histogram buckets ending at +Inf — and the whole output passing the
// strict validator.
func TestWritePrometheus(t *testing.T) {
	withTelemetry(t, false, true)
	promCounter.Add(3)
	promGauge.Set(5)
	promGauge.Set(2)
	for _, v := range []float64{0.5, 5, 50, 500} {
		promHist.Observe(v)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE xring_promtest_requests_total counter",
		"xring_promtest_requests_total 3",
		"# TYPE xring_promtest_queue_depth gauge",
		"xring_promtest_queue_depth 2",
		"xring_promtest_queue_depth_max 5",
		"# TYPE xring_promtest_duration_ms histogram",
		`xring_promtest_duration_ms_bucket{le="1"} 1`,
		`xring_promtest_duration_ms_bucket{le="10"} 2`,
		`xring_promtest_duration_ms_bucket{le="100"} 3`,
		`xring_promtest_duration_ms_bucket{le="+Inf"} 4`,
		"xring_promtest_duration_ms_sum 555.5",
		"xring_promtest_duration_ms_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own exposition fails strict validation: %v\n%s", err, out)
	}

	// Deterministic: a second render of the same state is identical.
	var buf2 bytes.Buffer
	if err := obs.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same registry state differ")
	}
}

// TestValidateExpositionRejectsMalformed: the strict parser actually
// rejects the failure shapes it claims to catch.
func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no families":      "",
		"sample sans TYPE": "xring_orphan 1\n",
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad value":        "# TYPE xring_c counter\nxring_c banana\n",
		"bad type":         "# TYPE xring_c countr\nxring_c 1\n",
		"dup type":         "# TYPE xring_c counter\n# TYPE xring_c counter\nxring_c 1\n",
		"non-cumulative": "# TYPE xring_h histogram\n" +
			"xring_h_bucket{le=\"1\"} 5\nxring_h_bucket{le=\"+Inf\"} 3\n" +
			"xring_h_sum 1\nxring_h_count 3\n",
		"no inf bucket": "# TYPE xring_h histogram\n" +
			"xring_h_bucket{le=\"1\"} 1\nxring_h_sum 1\nxring_h_count 1\n",
		"inf != count": "# TYPE xring_h histogram\n" +
			"xring_h_bucket{le=\"+Inf\"} 2\nxring_h_sum 1\nxring_h_count 3\n",
		"unquoted label": "# TYPE xring_h histogram\n" +
			"xring_h_bucket{le=1} 1\nxring_h_bucket{le=\"+Inf\"} 1\n" +
			"xring_h_sum 1\nxring_h_count 1\n",
	}
	for name, text := range cases {
		if err := obs.ValidateExposition([]byte(text)); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, text)
		}
	}
	ok := "# HELP xring_c a counter\n# TYPE xring_c counter\nxring_c{shard=\"a b\"} 1\n" +
		"# TYPE xring_h histogram\n" +
		"xring_h_bucket{le=\"0.5\"} 1\nxring_h_bucket{le=\"+Inf\"} 2\n" +
		"xring_h_sum 1.5\nxring_h_count 2\n"
	if err := obs.ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v", err)
	}
}

// TestExpositionFile validates an exposition captured from a live
// daemon when XRING_PROM_FILE points at it (the CI observability job
// scrapes GET /metrics into a file and re-runs this test).
func TestExpositionFile(t *testing.T) {
	path := os.Getenv("XRING_PROM_FILE")
	if path == "" {
		t.Skip("XRING_PROM_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(data); err != nil {
		t.Fatalf("live exposition %s invalid: %v", path, err)
	}
	for _, want := range []string{
		"xring_service_requests_total",
		"xring_service_job_duration_ms_bucket",
		"xring_service_job_queue_wait_ms_bucket",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("live exposition missing %q", want)
		}
	}
}
