package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span attribute. Exactly one value field is
// meaningful, selected by Kind; the constructors below are the only way
// instrumented code builds attributes, which keeps the export format
// closed.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	F    float64
	B    bool
}

// AttrKind discriminates Attr values.
type AttrKind uint8

// Attribute kinds.
const (
	KindString AttrKind = iota
	KindInt
	KindFloat
	KindBool
)

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Kind: KindInt, Int: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, F: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Kind: KindBool, B: v} }

// value returns the attribute's dynamic value for export. Non-finite
// floats (a noise-free design has SNR = +Inf) are not representable in
// JSON and export as strings.
func (a Attr) value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindFloat:
		switch {
		case math.IsInf(a.F, 1):
			return "+Inf"
		case math.IsInf(a.F, -1):
			return "-Inf"
		case math.IsNaN(a.F):
			return "NaN"
		}
		return a.F
	case KindBool:
		return a.B
	default:
		return a.Str
	}
}

// Span is one live timed operation. A nil *Span (tracing disabled and
// no progress sink) is valid: every method is a no-op, so call sites
// need no branches.
type Span struct {
	id     uint64
	parent uint64
	name   string
	gid    uint64
	start  time.Time
	attrs  []Attr
	// traceID is the request-scoped trace identity carried by the
	// span's context (WithTraceID); empty outside a traced request.
	traceID TraceID
	// sink, when non-nil, receives the finished record (WithProgress).
	sink ProgressFunc
	// traced records whether the global collector was on at Start; a
	// span created only for a progress sink never reaches the collector.
	traced bool
}

// SpanRecord is one finished span as stored by the collector. Start
// and Dur are nanoseconds; Start is relative to the trace epoch
// (ResetTrace), which makes snapshots reproducible inputs for the
// exporters.
type SpanRecord struct {
	ID        uint64 `json:"id"`
	Parent    uint64 `json:"parent,omitempty"`
	Name      string `json:"name"`
	Goroutine uint64 `json:"goroutine"`
	StartNS   int64  `json:"start_ns"`
	DurNS     int64  `json:"dur_ns"`
	TraceID   string `json:"trace_id,omitempty"`
	Attrs     []Attr `json:"-"`
}

// maxSpans bounds collector memory; a placement search or a deep sweep
// emits hundreds of spans, so the cap is far above normal use. Spans
// beyond it are dropped and counted.
const maxSpans = 1 << 20

var tracer = struct {
	sync.Mutex
	epoch   time.Time
	spans   []SpanRecord
	dropped int64
}{epoch: time.Now()}

var nextSpanID atomic.Uint64

type spanCtxKey struct{}

// Start begins a span named name as a child of the span carried by ctx
// (a root span when ctx carries none). It returns a derived context
// carrying the new span and the span itself. With tracing disabled and
// no progress sink on ctx (WithProgress) it returns ctx unchanged and
// a nil span without allocating.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	traced := tracingOn.Load()
	sink := progressFrom(ctx)
	if !traced && sink == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var parent uint64
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		parent = p.id
	}
	s := &Span{
		id:      nextSpanID.Add(1),
		parent:  parent,
		name:    name,
		gid:     goroutineID(),
		start:   time.Now(),
		traceID: TraceIDFrom(ctx),
		sink:    sink,
		traced:  traced,
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Set appends attributes to the span. Attributes must be set by the
// goroutine that owns the span, before End.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End finishes the span, notifies the context's progress sink (if
// any), and hands the record to the collector when tracing is on.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	if s.sink != nil {
		s.sink(SpanRecord{
			ID:        s.id,
			Parent:    s.parent,
			Name:      s.name,
			Goroutine: s.gid,
			StartNS:   s.start.Sub(processEpoch).Nanoseconds(),
			DurNS:     end.Sub(s.start).Nanoseconds(),
			TraceID:   string(s.traceID),
			Attrs:     s.attrs,
		})
	}
	if !s.traced {
		return
	}
	tracer.Lock()
	if len(tracer.spans) >= maxSpans {
		tracer.dropped++
		tracer.Unlock()
		return
	}
	tracer.spans = append(tracer.spans, SpanRecord{
		ID:        s.id,
		Parent:    s.parent,
		Name:      s.name,
		Goroutine: s.gid,
		StartNS:   s.start.Sub(tracer.epoch).Nanoseconds(),
		DurNS:     end.Sub(s.start).Nanoseconds(),
		TraceID:   string(s.traceID),
		Attrs:     s.attrs,
	})
	tracer.Unlock()
}

// ResetTrace clears collected spans and restarts the trace epoch.
func ResetTrace() {
	tracer.Lock()
	tracer.spans = nil
	tracer.dropped = 0
	tracer.epoch = time.Now()
	tracer.Unlock()
}

// TraceSnapshot returns a copy of the finished spans, ordered by start
// time (ties by span ID), so concurrent collection order never leaks
// into exports.
func TraceSnapshot() []SpanRecord {
	tracer.Lock()
	out := append([]SpanRecord(nil), tracer.spans...)
	tracer.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// attrMap renders attributes for JSON export; map keys marshal sorted,
// keeping the output deterministic.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.value()
	}
	return m
}

// WriteTrace writes the collected spans as a JSON array of records
// (the -trace FILE format when FILE does not end in .chrome.json).
func WriteTrace(w io.Writer) error {
	type rec struct {
		SpanRecord
		Attrs map[string]any `json:"attrs,omitempty"`
	}
	snap := TraceSnapshot()
	out := make([]rec, len(snap))
	for i, s := range snap {
		out[i] = rec{SpanRecord: s, Attrs: attrMap(s.Attrs)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ChromeTrace renders span records in Chrome trace_event format
// (complete "X" events, microsecond timestamps), loadable in
// chrome://tracing and Perfetto. It is a pure function of its input so
// the golden-file test pins the exact format.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	type event struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  uint64         `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]event, 0, len(spans))
	for _, s := range spans {
		args := attrMap(s.Attrs)
		if s.Parent != 0 {
			if args == nil {
				args = map[string]any{}
			}
			args["parent_span"] = s.Parent
		}
		if s.TraceID != "" {
			if args == nil {
				args = map[string]any{}
			}
			args["trace_id"] = s.TraceID
		}
		if args == nil {
			args = map[string]any{}
		}
		args["span"] = s.ID
		events = append(events, event{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  s.Goroutine,
			Args: args,
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []event `json:"traceEvents"`
	}{events}, "", "  ")
}

// WriteChromeTrace writes the current snapshot in Chrome trace_event
// format.
func WriteChromeTrace(w io.Writer) error {
	b, err := ChromeTrace(TraceSnapshot())
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// goroutineID parses the current goroutine's ID out of its stack
// header ("goroutine N [..."). Only the enabled tracing path pays for
// it; span timing, not identity, is the hot signal.
func goroutineID() uint64 {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	buf = buf[:n]
	const prefix = "goroutine "
	if len(buf) <= len(prefix) {
		return 0
	}
	var id uint64
	for _, c := range buf[len(prefix):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
