package obs

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
)

// CLI-facing plumbing shared by cmd/xring and cmd/xbench: file writers
// for the -trace/-metrics flags and the opt-in pprof endpoint.

// TraceFormat selects a -trace output format.
type TraceFormat string

// Trace output formats.
const (
	// FormatChrome is Chrome trace_event JSON (chrome://tracing,
	// Perfetto). The -trace default.
	FormatChrome TraceFormat = "chrome"
	// FormatSpans is the raw span-record JSON array.
	FormatSpans TraceFormat = "spans"
)

// ParseTraceFormat validates a -trace-format flag value.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch TraceFormat(s) {
	case FormatChrome, FormatSpans:
		return TraceFormat(s), nil
	default:
		return "", fmt.Errorf("obs: unknown trace format %q (chrome or spans)", s)
	}
}

// WriteTraceFile writes the collected spans to path in the given
// format.
func WriteTraceFile(path string, format TraceFormat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == FormatSpans {
		return WriteTrace(f)
	}
	return WriteChromeTrace(f)
}

// WriteMetricsFile writes the metrics registry snapshot to path.
func WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteMetrics(f)
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") for
// the lifetime of the process. Empty addr is a no-op. It returns the
// bound address, so addr may use port 0.
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen: %w", err)
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}
