package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xring/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a fixed span forest covering every attribute kind,
// nesting, and a root span, so the golden file pins the complete
// exporter format.
var goldenSpans = []obs.SpanRecord{
	{ID: 1, Name: "core.sweep", Goroutine: 1, StartNS: 1000, DurNS: 250000,
		Attrs: []obs.Attr{obs.String("objective", "min-power"), obs.Int("candidates", 32)}},
	{ID: 2, Parent: 1, Name: "sweep.candidate", Goroutine: 7, StartNS: 2500, DurNS: 90000,
		Attrs: []obs.Attr{obs.Int("wl", 3), obs.Bool("share", false), obs.Float("score", 1.25)}},
	{ID: 3, Parent: 2, Name: "pdn.design", Goroutine: 7, StartNS: 60000, DurNS: 12500,
		Attrs: []obs.Attr{obs.String("kind", "tree")}},
	{ID: 4, Parent: 1, Name: "sweep.candidate", Goroutine: 8, StartNS: 3000, DurNS: 110000},
	// Non-finite floats (noise-free SNR) must export as strings, not
	// break JSON marshalling.
	{ID: 5, Parent: 2, Name: "xtalk.analyze", Goroutine: 7, StartNS: 80000, DurNS: 9000,
		Attrs: []obs.Attr{obs.Float("worst_snr_db", math.Inf(1))}},
}

// TestChromeTraceGolden compares the Chrome trace_event rendering of a
// fixed span forest against the checked-in golden file. Run with
// -update to regenerate after an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	got, err := obs.ChromeTrace(goldenSpans)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Chrome trace differs from golden file (run go test ./internal/obs -run ChromeTraceGolden -update after intentional format changes)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestChromeTraceLoadable checks the structural invariants a trace
// viewer relies on: a traceEvents array of complete ("X") events with
// microsecond timestamps and goroutine thread IDs.
func TestChromeTraceLoadable(t *testing.T) {
	raw, err := obs.ChromeTrace(goldenSpans)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(goldenSpans) {
		t.Fatalf("got %d events, want %d", len(doc.TraceEvents), len(goldenSpans))
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want complete event X", i, ev.Ph)
		}
		if ev.PID != 1 {
			t.Fatalf("event %d: pid = %d, want 1", i, ev.PID)
		}
		if ev.TID != goldenSpans[i].Goroutine {
			t.Fatalf("event %d: tid = %d, want goroutine %d", i, ev.TID, goldenSpans[i].Goroutine)
		}
		if wantTS := float64(goldenSpans[i].StartNS) / 1e3; ev.TS != wantTS {
			t.Fatalf("event %d: ts = %g µs, want %g", i, ev.TS, wantTS)
		}
		if ev.Args["span"] == nil {
			t.Fatalf("event %d: missing span id arg", i)
		}
	}
	// The second event carries its parent and every attribute kind.
	args := doc.TraceEvents[1].Args
	if args["parent_span"] != float64(1) || args["wl"] != float64(3) ||
		args["share"] != false || args["score"] != 1.25 {
		t.Fatalf("event 1 args = %v", args)
	}
}
