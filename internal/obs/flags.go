package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags bundles the standard telemetry command-line flags so cmd/xring
// and cmd/xbench expose an identical surface.
type Flags struct {
	Trace       *string
	TraceFormat *string
	Metrics     *string
	LogLevel    *string
	Verbose     *bool
	Pprof       *string
}

// BindFlags registers -trace, -trace-format, -metrics, -log-level, -v
// and -pprof on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		Trace: fs.String("trace", "",
			"write an execution trace to this file (Chrome trace_event JSON by default)"),
		TraceFormat: fs.String("trace-format", string(FormatChrome),
			"trace output format: chrome (chrome://tracing, Perfetto) or spans (raw span records)"),
		Metrics: fs.String("metrics", "",
			"write the telemetry counters/gauges/histograms to this file (JSON)"),
		LogLevel: fs.String("log-level", "",
			`structured log spec on stderr: LEVEL or stage=LEVEL pairs, e.g. "info" or "core=debug,ring=info"`),
		Verbose: fs.Bool("v", false, "shorthand for -log-level info"),
		Pprof: fs.String("pprof", "",
			"serve net/http/pprof on this address (e.g. localhost:6060)"),
	}
}

// Activate applies the parsed flags: it enables tracing/metrics, sets
// the log spec, and starts the pprof endpoint. It returns a flush
// function that writes the -trace and -metrics files; call it once the
// run is complete. Status lines (pprof address) go to status, typically
// os.Stderr.
func (f *Flags) Activate(status io.Writer) (flush func() error, err error) {
	format, err := ParseTraceFormat(*f.TraceFormat)
	if err != nil {
		return nil, err
	}
	if *f.Trace != "" {
		EnableTracing(true)
	}
	if *f.Metrics != "" {
		EnableMetrics(true)
	}
	spec := *f.LogLevel
	if spec == "" && *f.Verbose {
		spec = "info"
	}
	if spec != "" {
		if err := SetLogSpec(os.Stderr, spec); err != nil {
			return nil, err
		}
	}
	if addr, err := StartPprof(*f.Pprof); err != nil {
		return nil, err
	} else if addr != "" {
		fmt.Fprintf(status, "pprof listening on http://%s/debug/pprof/\n", addr)
	}
	return func() error {
		if *f.Trace != "" {
			if err := WriteTraceFile(*f.Trace, format); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
			fmt.Fprintf(status, "wrote %s\n", *f.Trace)
		}
		if *f.Metrics != "" {
			if err := WriteMetricsFile(*f.Metrics); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
			fmt.Fprintf(status, "wrote %s\n", *f.Metrics)
		}
		return nil
	}, nil
}
