package obs_test

import (
	"context"
	"testing"

	"xring/internal/obs"
)

// The disabled-path benchmarks prove the acceptance criterion directly:
// run with -benchmem and check for 1-2 ns/op and 0 allocs/op. The
// enabled variants quantify the full cost of collection for comparison.

func setTelemetryB(b *testing.B, trace, metrics bool) {
	b.Helper()
	prevT, prevM := obs.TracingEnabled(), obs.MetricsEnabled()
	obs.EnableTracing(trace)
	obs.EnableMetrics(metrics)
	obs.ResetTrace()
	obs.ResetMetrics()
	b.Cleanup(func() {
		obs.EnableTracing(prevT)
		obs.EnableMetrics(prevM)
		obs.ResetTrace()
		obs.ResetMetrics()
	})
}

func BenchmarkSpanDisabled(b *testing.B) {
	setTelemetryB(b, false, false)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sctx, s := obs.Start(ctx, "bench", obs.Int("i", i))
		_ = sctx
		s.Set(obs.Bool("ok", true))
		s.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	setTelemetryB(b, true, false)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i&0xFFFF == 0 {
			obs.ResetTrace() // stay under the collector cap
		}
		sctx, s := obs.Start(ctx, "bench", obs.Int("i", i))
		_ = sctx
		s.Set(obs.Bool("ok", true))
		s.End()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	setTelemetryB(b, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		allocCounter.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	setTelemetryB(b, false, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		allocCounter.Inc()
	}
}

func BenchmarkGaugeDisabled(b *testing.B) {
	setTelemetryB(b, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		allocGauge.Add(1)
		allocGauge.Add(-1)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	setTelemetryB(b, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		allocHist.Observe(3.5)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	setTelemetryB(b, false, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		allocHist.Observe(3.5)
	}
}
