package obs

import (
	"context"
	"sync"
	"testing"
)

// TestProgressSinkWithoutTracing: a context-scoped sink receives every
// span finished beneath it even with the global collector off, and
// none of those spans reach the collector.
func TestProgressSinkWithoutTracing(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing enabled (XRING_OBS); sink-only path not testable")
	}
	ResetTrace()
	var (
		mu  sync.Mutex
		got []SpanRecord
	)
	ctx := WithProgress(context.Background(), func(r SpanRecord) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	ctx, root := Start(ctx, "job", String("id", "j1"))
	if root == nil {
		t.Fatal("Start returned nil span under a progress sink")
	}
	_, child := Start(ctx, "stage", Int("step", 2))
	child.End()
	root.End()

	if len(got) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(got))
	}
	if got[0].Name != "stage" || got[1].Name != "job" {
		t.Fatalf("sink order = [%s, %s], want [stage, job]", got[0].Name, got[1].Name)
	}
	if got[0].Parent != got[1].ID {
		t.Fatalf("child parent = %d, want root id %d", got[0].Parent, got[1].ID)
	}
	if m := got[0].AttrMap(); m["step"] != int64(2) {
		t.Fatalf("child AttrMap = %v, want step=2", m)
	}
	if n := len(TraceSnapshot()); n != 0 {
		t.Fatalf("collector recorded %d spans with tracing off, want 0", n)
	}
}

// TestProgressSinkInheritance: the sink rides derived contexts, and a
// nil fn detaches it.
func TestProgressSinkInheritance(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing enabled (XRING_OBS)")
	}
	var n int
	ctx := WithProgress(context.Background(), func(SpanRecord) { n++ })
	sub, s1 := Start(ctx, "a")
	_, s2 := Start(sub, "b")
	s2.End()
	s1.End()
	if n != 2 {
		t.Fatalf("inherited sink saw %d spans, want 2", n)
	}
	detached := WithProgress(ctx, nil)
	if _, s := Start(detached, "c"); s != nil {
		t.Fatal("Start under detached sink (tracing off) returned a live span")
	}
	if n != 2 {
		t.Fatalf("detached sink still invoked: n = %d", n)
	}
}

// TestProgressSinkConcurrentJobs: the isolation property the service
// relies on — N concurrent "jobs", each with its own sink on a context
// derived from a shared parent, must each receive exactly their own
// span records and never a neighbor's. Runs in CI under -race.
func TestProgressSinkConcurrentJobs(t *testing.T) {
	const jobs, spansPerJob = 8, 200
	base := context.Background()
	var wg sync.WaitGroup
	type seen struct {
		mu   sync.Mutex
		recs []SpanRecord
	}
	all := make([]*seen, jobs)
	for j := 0; j < jobs; j++ {
		all[j] = &seen{}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			s := all[j]
			tid := NewTraceID()
			ctx := WithTraceID(base, tid)
			ctx = WithProgress(ctx, func(r SpanRecord) {
				s.mu.Lock()
				s.recs = append(s.recs, r)
				s.mu.Unlock()
			})
			ctx, root := Start(ctx, "job", Int("job", j))
			// Overlapping child spans, some ending on other goroutines —
			// the shape of parallel engine stages under one job context.
			var inner sync.WaitGroup
			for k := 0; k < spansPerJob; k++ {
				kctx, sp := Start(ctx, "stage", Int("job", j), Int("k", k))
				_ = kctx
				inner.Add(1)
				go func(sp *Span) {
					defer inner.Done()
					sp.End()
				}(sp)
			}
			inner.Wait()
			root.End()
			if TraceIDFrom(ctx) != tid {
				t.Errorf("job %d lost its trace ID", j)
			}
		}(j)
	}
	wg.Wait()
	for j, s := range all {
		if got := len(s.recs); got != spansPerJob+1 {
			t.Fatalf("job %d sink saw %d spans, want %d", j, got, spansPerJob+1)
		}
		for _, r := range s.recs {
			m := r.AttrMap()
			if m["job"] != int64(j) {
				t.Fatalf("job %d sink received span %s of job %v", j, r.Name, m["job"])
			}
		}
	}
}

// TestProgressSinkWithTracing: with tracing on, spans go to both the
// sink and the collector.
func TestProgressSinkWithTracing(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing already on; flipping it would race other tests")
	}
	EnableTracing(true)
	defer EnableTracing(false)
	ResetTrace()
	var n int
	ctx := WithProgress(context.Background(), func(SpanRecord) { n++ })
	_, s := Start(ctx, "both")
	s.End()
	if n != 1 {
		t.Fatalf("sink saw %d spans, want 1", n)
	}
	snap := TraceSnapshot()
	if len(snap) != 1 || snap[0].Name != "both" {
		t.Fatalf("collector snapshot = %+v, want one span named both", snap)
	}
}
