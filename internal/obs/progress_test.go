package obs

import (
	"context"
	"sync"
	"testing"
)

// TestProgressSinkWithoutTracing: a context-scoped sink receives every
// span finished beneath it even with the global collector off, and
// none of those spans reach the collector.
func TestProgressSinkWithoutTracing(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing enabled (XRING_OBS); sink-only path not testable")
	}
	ResetTrace()
	var (
		mu  sync.Mutex
		got []SpanRecord
	)
	ctx := WithProgress(context.Background(), func(r SpanRecord) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	ctx, root := Start(ctx, "job", String("id", "j1"))
	if root == nil {
		t.Fatal("Start returned nil span under a progress sink")
	}
	_, child := Start(ctx, "stage", Int("step", 2))
	child.End()
	root.End()

	if len(got) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(got))
	}
	if got[0].Name != "stage" || got[1].Name != "job" {
		t.Fatalf("sink order = [%s, %s], want [stage, job]", got[0].Name, got[1].Name)
	}
	if got[0].Parent != got[1].ID {
		t.Fatalf("child parent = %d, want root id %d", got[0].Parent, got[1].ID)
	}
	if m := got[0].AttrMap(); m["step"] != int64(2) {
		t.Fatalf("child AttrMap = %v, want step=2", m)
	}
	if n := len(TraceSnapshot()); n != 0 {
		t.Fatalf("collector recorded %d spans with tracing off, want 0", n)
	}
}

// TestProgressSinkInheritance: the sink rides derived contexts, and a
// nil fn detaches it.
func TestProgressSinkInheritance(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing enabled (XRING_OBS)")
	}
	var n int
	ctx := WithProgress(context.Background(), func(SpanRecord) { n++ })
	sub, s1 := Start(ctx, "a")
	_, s2 := Start(sub, "b")
	s2.End()
	s1.End()
	if n != 2 {
		t.Fatalf("inherited sink saw %d spans, want 2", n)
	}
	detached := WithProgress(ctx, nil)
	if _, s := Start(detached, "c"); s != nil {
		t.Fatal("Start under detached sink (tracing off) returned a live span")
	}
	if n != 2 {
		t.Fatalf("detached sink still invoked: n = %d", n)
	}
}

// TestProgressSinkWithTracing: with tracing on, spans go to both the
// sink and the collector.
func TestProgressSinkWithTracing(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing already on; flipping it would race other tests")
	}
	EnableTracing(true)
	defer EnableTracing(false)
	ResetTrace()
	var n int
	ctx := WithProgress(context.Background(), func(SpanRecord) { n++ })
	_, s := Start(ctx, "both")
	s.End()
	if n != 1 {
		t.Fatalf("sink saw %d spans, want 1", n)
	}
	snap := TraceSnapshot()
	if len(snap) != 1 || snap[0].Name != "both" {
		t.Fatalf("collector snapshot = %+v, want one span named both", snap)
	}
}
