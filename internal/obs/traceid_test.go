package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceIDShape(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if _, err := ParseTraceID(string(id)); err != nil {
			t.Fatalf("NewTraceID produced invalid ID %q: %v", id, err)
		}
		if seen[id] {
			t.Fatalf("NewTraceID repeated %q", id)
		}
		seen[id] = true
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, err := ParseTraceparent(valid)
	if err != nil {
		t.Fatalf("valid traceparent rejected: %v", err)
	}
	if id != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %q", id)
	}
	// Future versions may append fields.
	if _, err := ParseTraceparent("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",   // short id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",   // short parent
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id := NewTraceID()
	h := id.Traceparent()
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("own traceparent %q rejected: %v", h, err)
	}
	if got != id {
		t.Fatalf("round trip = %q, want %q", got, id)
	}
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Errorf("traceparent %q: want version 00, sampled flag", h)
	}
}

func TestTraceIDContextPlumbing(t *testing.T) {
	if id := TraceIDFrom(context.Background()); id != "" {
		t.Fatalf("empty context carries trace ID %q", id)
	}
	id := NewTraceID()
	ctx := WithTraceID(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %q, want %q", got, id)
	}
}

// TestSpanRecordsTraceID: spans started beneath WithTraceID carry the
// ID into their records, through both the progress sink and the
// collector.
func TestSpanRecordsTraceID(t *testing.T) {
	if TracingEnabled() {
		t.Skip("global tracing enabled (XRING_OBS)")
	}
	EnableTracing(true)
	defer EnableTracing(false)
	ResetTrace()
	defer ResetTrace()

	id := NewTraceID()
	var sunk []SpanRecord
	ctx := WithProgress(WithTraceID(context.Background(), id), func(r SpanRecord) {
		sunk = append(sunk, r)
	})
	ctx, root := Start(ctx, "job")
	_, child := Start(ctx, "stage")
	child.End()
	root.End()

	if len(sunk) != 2 {
		t.Fatalf("sink saw %d spans, want 2", len(sunk))
	}
	for _, r := range sunk {
		if r.TraceID != string(id) {
			t.Errorf("sink record %s trace ID = %q, want %q", r.Name, r.TraceID, id)
		}
	}
	for _, r := range TraceSnapshot() {
		if r.TraceID != string(id) {
			t.Errorf("collector record %s trace ID = %q, want %q", r.Name, r.TraceID, id)
		}
	}
}
