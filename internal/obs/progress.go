package obs

// Span-subscriber hook: a context can carry a ProgressFunc that
// receives every span finished beneath it, independently of whether
// the global trace collector is enabled. The synthesis service uses it
// to turn the pipeline's stage spans (shortcut.construct, mapping.run,
// pdn.design, loss.analyze, ...) into per-job streaming progress
// events without buffering a global trace per request — two jobs
// running concurrently each see exactly their own spans, because the
// sink rides the job's context into the engine.
//
// The hook follows the same cost discipline as the rest of the layer:
// with no sink installed and tracing off, Start still returns a nil
// span without allocating, and End stays a no-op.

import (
	"context"
	"time"
)

// ProgressFunc receives one finished span. It is called synchronously
// from Span.End on whatever goroutine ends the span, so implementations
// must be safe for concurrent use and should hand off quickly (the
// service buffers into a per-job event log).
type ProgressFunc func(SpanRecord)

type progressCtxKey struct{}

// WithProgress returns a context whose spans — and those of every
// context derived from it — are delivered to fn when they end. Passing
// a nil fn detaches any inherited sink.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, progressCtxKey{}, fn)
}

// progressFrom extracts the sink carried by ctx, if any.
func progressFrom(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressCtxKey{}).(ProgressFunc)
	return fn
}

// processEpoch anchors StartNS of sink-delivered records when the
// trace collector (whose epoch ResetTrace restarts) is not involved.
// It is fixed at init, so subscriber timestamps are monotonic per
// process.
var processEpoch = time.Now()

// AttrMap renders the record's attributes as an export-ready map
// (non-finite floats become strings, matching the trace exporters).
// Subscribers use it to serialize progress events.
func (r SpanRecord) AttrMap() map[string]any { return attrMap(r.Attrs) }
