// Package obs is the zero-dependency observability layer of the
// synthesis engine: hierarchical spans (wall-clock tracing of the four
// synthesis steps and the analyses), a metrics registry (counters,
// gauges, fixed-bucket histograms for solver, pool and cache
// statistics), and log/slog-based structured logging with per-stage
// levels.
//
// Telemetry never alters synthesis results: every instrumented code
// path only reads engine state, and the determinism tests run with
// telemetry on and off to prove bit-identical outputs (see
// OBSERVABILITY.md).
//
// The default state is everything off, and the off path is built to
// disappear inside hot loops: each subsystem is guarded by one atomic
// flag, a disabled Start returns the caller's context and a nil *Span
// whose methods are no-ops, and disabled Counter/Gauge/Histogram
// operations return before touching memory. The disabled fast path
// performs zero allocations (enforced by TestDisabledPathAllocs and the
// benchmarks in bench_test.go).
//
// Enablement is programmatic (EnableTracing, EnableMetrics, SetLogSpec)
// — the CLIs wire -trace/-metrics/-v/-log-level to these — or via the
// XRING_OBS environment variable, a comma-separated subset of
// {trace, metrics, all}, which CI uses to run the existing test suite
// with telemetry enabled.
package obs

import (
	"os"
	"strings"
	"sync/atomic"
)

var (
	tracingOn atomic.Bool
	metricsOn atomic.Bool
)

// EnableTracing switches span collection on or off. Spans started
// while tracing was disabled stay no-ops.
func EnableTracing(on bool) { tracingOn.Store(on) }

// EnableMetrics switches the metrics registry on or off. Disabled
// instruments drop updates without synchronization.
func EnableMetrics(on bool) { metricsOn.Store(on) }

// TracingEnabled reports whether spans are being collected.
func TracingEnabled() bool { return tracingOn.Load() }

// MetricsEnabled reports whether metric updates are being recorded.
func MetricsEnabled() bool { return metricsOn.Load() }

func init() {
	// XRING_OBS=trace,metrics | all enables subsystems for runs that
	// cannot reach the programmatic switches (CI re-runs the determinism
	// suite under XRING_OBS=all).
	for _, part := range strings.Split(os.Getenv("XRING_OBS"), ",") {
		switch strings.TrimSpace(part) {
		case "trace":
			EnableTracing(true)
		case "metrics":
			EnableMetrics(true)
		case "all":
			EnableTracing(true)
			EnableMetrics(true)
		}
	}
	if spec := os.Getenv("XRING_LOG"); spec != "" {
		_ = SetLogSpec(os.Stderr, spec)
	}
}
