package obs_test

import (
	"context"
	"fmt"
	"testing"

	"xring/internal/obs"
	"xring/internal/parallel"
)

// withTelemetry puts the global switches into a known state for the
// test and restores the previous state afterwards, so the suite passes
// whether or not XRING_OBS pre-enabled telemetry (the CI run does).
func withTelemetry(t *testing.T, trace, metrics bool) {
	t.Helper()
	prevT, prevM := obs.TracingEnabled(), obs.MetricsEnabled()
	obs.EnableTracing(trace)
	obs.EnableMetrics(metrics)
	obs.ResetTrace()
	obs.ResetMetrics()
	t.Cleanup(func() {
		obs.EnableTracing(prevT)
		obs.EnableMetrics(prevM)
		obs.ResetTrace()
		obs.ResetMetrics()
	})
}

// attrInt extracts an integer attribute from a span record.
func attrInt(s obs.SpanRecord, key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && a.Kind == obs.KindInt {
			return a.Int, true
		}
	}
	return 0, false
}

// TestSpanTreeConcurrentFanOut checks that parent links survive a
// concurrent fan-out: every task span must point at the root span and
// every leaf span at its own task span, regardless of how many workers
// the pool interleaves.
func TestSpanTreeConcurrentFanOut(t *testing.T) {
	const tasks = 16
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			withTelemetry(t, true, false)
			parallel.SetWorkers(workers)
			t.Cleanup(func() { parallel.SetWorkers(0) })

			ctx, root := obs.Start(context.Background(), "root")
			err := parallel.ForEach(ctx, tasks, func(i int) error {
				cctx, task := obs.Start(ctx, "task", obs.Int("i", i))
				_, leaf := obs.Start(cctx, "leaf", obs.Int("i", i))
				leaf.End()
				task.End()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			root.End()

			snap := obs.TraceSnapshot()
			if len(snap) != 1+2*tasks {
				t.Fatalf("got %d spans, want %d", len(snap), 1+2*tasks)
			}
			var rootID uint64
			taskByI := map[int64]obs.SpanRecord{}
			for _, s := range snap {
				if s.Name == "root" {
					if rootID != 0 {
						t.Fatal("duplicate root span")
					}
					rootID = s.ID
				}
			}
			if rootID == 0 {
				t.Fatal("root span missing")
			}
			for _, s := range snap {
				if s.Name != "task" {
					continue
				}
				if s.Parent != rootID {
					t.Fatalf("task span %d has parent %d, want root %d", s.ID, s.Parent, rootID)
				}
				i, ok := attrInt(s, "i")
				if !ok {
					t.Fatalf("task span %d lost its i attribute", s.ID)
				}
				if _, dup := taskByI[i]; dup {
					t.Fatalf("two task spans for i=%d", i)
				}
				taskByI[i] = s
			}
			if len(taskByI) != tasks {
				t.Fatalf("got %d task spans, want %d", len(taskByI), tasks)
			}
			leaves := 0
			for _, s := range snap {
				if s.Name != "leaf" {
					continue
				}
				leaves++
				i, ok := attrInt(s, "i")
				if !ok {
					t.Fatalf("leaf span %d lost its i attribute", s.ID)
				}
				if want := taskByI[i].ID; s.Parent != want {
					t.Fatalf("leaf for i=%d has parent %d, want its task %d", i, s.Parent, want)
				}
				if s.Goroutine != taskByI[i].Goroutine {
					t.Fatalf("leaf for i=%d ran on goroutine %d, its task on %d",
						i, s.Goroutine, taskByI[i].Goroutine)
				}
			}
			if leaves != tasks {
				t.Fatalf("got %d leaf spans, want %d", leaves, tasks)
			}
		})
	}
}

func TestSpanDurations(t *testing.T) {
	withTelemetry(t, true, false)
	ctx, outer := obs.Start(context.Background(), "outer")
	_, inner := obs.Start(ctx, "inner")
	inner.End()
	outer.End()
	snap := obs.TraceSnapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap))
	}
	// Snapshot order is by start time: outer first.
	if snap[0].Name != "outer" || snap[1].Name != "inner" {
		t.Fatalf("snapshot order %q, %q", snap[0].Name, snap[1].Name)
	}
	if snap[0].DurNS < snap[1].DurNS {
		t.Fatalf("outer (%d ns) shorter than nested inner (%d ns)", snap[0].DurNS, snap[1].DurNS)
	}
	if snap[1].StartNS < snap[0].StartNS {
		t.Fatal("inner started before outer")
	}
}

// TestDisabledSpansCollectNothing pins the contract the hot paths rely
// on: with tracing off, Start returns the caller's context unchanged
// and a nil span, and nothing reaches the collector.
func TestDisabledSpansCollectNothing(t *testing.T) {
	withTelemetry(t, false, false)
	ctx := context.Background()
	ctx2, s := obs.Start(ctx, "off", obs.Int("i", 1))
	if ctx2 != ctx {
		t.Fatal("disabled Start must return the caller's context unchanged")
	}
	if s != nil {
		t.Fatal("disabled Start must return a nil span")
	}
	s.Set(obs.Float("f", 1))
	s.End()
	if got := obs.FromContext(ctx2); got != nil {
		t.Fatalf("FromContext = %v, want nil", got)
	}
	if snap := obs.TraceSnapshot(); len(snap) != 0 {
		t.Fatalf("collector has %d spans, want 0", len(snap))
	}
}

// TestDisabledPathAllocs proves the acceptance criterion: the disabled
// telemetry path performs zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	withTelemetry(t, false, false)
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		sctx, s := obs.Start(ctx, "hot", obs.Int("i", 3), obs.Float("f", 1.5))
		_ = sctx
		s.Set(obs.Bool("ok", true))
		s.End()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		allocCounter.Inc()
		allocGauge.Add(1)
		allocGauge.Add(-1)
		allocHist.Observe(3.5)
	}); n != 0 {
		t.Fatalf("disabled metrics path allocates %.1f objects/op, want 0", n)
	}
}

// Instruments for the allocation and benchmark tests; registered once
// at package init (duplicate registration panics).
var (
	allocCounter = obs.NewCounter("obstest.alloc.counter")
	allocGauge   = obs.NewGauge("obstest.alloc.gauge")
	allocHist    = obs.NewHistogram("obstest.alloc.hist", "ms", []float64{1, 2, 4, 8})
)
