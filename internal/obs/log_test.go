package obs_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"xring/internal/obs"
)

func init() {
	// Synthetic stages used by these tests; SetLogSpec rejects names it
	// has never seen.
	for _, s := range []string{"logtest", "logother", "lglate", "lgsilent"} {
		obs.RegisterLogStage(s)
	}
}

func TestLogSpecStageLevels(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.SetLogSpec(&buf, "warn,logtest=debug"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = obs.SetLogSpec(io.Discard, "off,logtest=off,logother=off")
	})

	obs.Logger("logtest").Debug("chatty stage", "k", 1)
	obs.Logger("logother").Info("suppressed below warn")
	obs.Logger("logother").Error("loud failure")

	out := buf.String()
	if !strings.Contains(out, "chatty stage") || !strings.Contains(out, "stage=logtest") {
		t.Fatalf("per-stage debug override missing from output:\n%s", out)
	}
	if strings.Contains(out, "suppressed below warn") {
		t.Fatalf("info record leaked through warn default:\n%s", out)
	}
	if !strings.Contains(out, "loud failure") {
		t.Fatalf("error record missing from output:\n%s", out)
	}
}

func TestLogSpecLateLevelChange(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.SetLogSpec(&buf, "lglate=off"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obs.SetLogSpec(io.Discard, "off,lglate=off") })

	log := obs.Logger("lglate") // cached before the level flips
	log.Info("before")
	if err := obs.SetLogSpec(nil, "lglate=info"); err != nil {
		t.Fatal(err)
	}
	log.Info("after")

	out := buf.String()
	if strings.Contains(out, "before") {
		t.Fatalf("record emitted while the stage was off:\n%s", out)
	}
	if !strings.Contains(out, "after") {
		t.Fatalf("level change did not reach the cached logger:\n%s", out)
	}
}

func TestLogSpecDefaultSilent(t *testing.T) {
	// Without any spec (and after resetting to off), loggers must drop
	// everything.
	var buf bytes.Buffer
	if err := obs.SetLogSpec(&buf, "off"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = obs.SetLogSpec(io.Discard, "off") })
	obs.Logger("lgsilent").Error("should vanish")
	if buf.Len() != 0 {
		t.Fatalf("default-silent logger wrote %q", buf.String())
	}
}

func TestLogSpecErrors(t *testing.T) {
	if err := obs.SetLogSpec(nil, "nope"); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := obs.SetLogSpec(nil, "core=nope"); err == nil {
		t.Fatal("bad per-stage level accepted")
	}
}

// TestLogSpecUnknownStage: a misspelled stage name fails with a typed
// error that lists the valid stages.
func TestLogSpecUnknownStage(t *testing.T) {
	err := obs.SetLogSpec(nil, "mappign=debug")
	if err == nil {
		t.Fatal("unknown stage accepted")
	}
	var use *obs.UnknownStageError
	if !errors.As(err, &use) {
		t.Fatalf("error is %T, want *obs.UnknownStageError", err)
	}
	if use.Stage != "mappign" {
		t.Errorf("Stage = %q, want mappign", use.Stage)
	}
	if len(use.Valid) == 0 {
		t.Fatal("Valid stage list is empty")
	}
	msg := err.Error()
	for _, want := range []string{"mapping", "core", "service"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid stage %q", msg, want)
		}
	}
	// The known-stage path still works, including mixed specs.
	if err := obs.SetLogSpec(nil, "off,mapping=off"); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
