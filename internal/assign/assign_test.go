package assign

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce enumerates all permutations to find the optimal assignment.
func bruteForce(cost [][]float64) (best float64, feasible bool) {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best = math.Inf(1)
	var rec func(k int, acc float64)
	rec = func(k int, acc float64) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			c := cost[k][perm[k]]
			if c != Forbidden {
				rec(k+1, acc+c)
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best, !math.IsInf(best, 1)
}

func TestSolveTrivial(t *testing.T) {
	got, total, err := Solve([][]float64{{7}})
	if err != nil || total != 7 || got[0] != 0 {
		t.Fatalf("Solve 1x1 = %v %v %v", got, total, err)
	}
	if r, total, err := Solve(nil); err != nil || total != 0 || r != nil {
		t.Fatalf("Solve empty = %v %v %v", r, total, err)
	}
}

func TestSolveKnown(t *testing.T) {
	// Classic example: optimal value 5 (0->1:1, 1->0:2, 2->2:2).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rc, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Fatalf("total = %v, want 5 (assignment %v)", total, rc)
	}
	seen := map[int]bool{}
	for _, c := range rc {
		if seen[c] {
			t.Fatalf("column %d assigned twice", c)
		}
		seen[c] = true
	}
}

func TestSolveNonSquare(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged matrix")
	}
}

func TestSolveForbiddenDiagonal(t *testing.T) {
	// Successor-matrix shape: diagonal forbidden.
	n := 5
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = Forbidden
			} else {
				cost[i][j] = float64((i*7+j*3)%11) + 1
			}
		}
	}
	rc, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range rc {
		if i == j {
			t.Fatalf("diagonal cell chosen at %d", i)
		}
	}
	want, _ := bruteForce(cost)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total = %v, want %v", total, want)
	}
}

func TestSolveInfeasible(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{1, Forbidden},
	}
	if _, _, err := Solve(cost); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6) // up to 7x7
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				if rng.Float64() < 0.15 {
					cost[i][j] = Forbidden
				} else {
					cost[i][j] = float64(rng.Intn(50))
				}
			}
		}
		want, feasible := bruteForce(cost)
		rc, total, err := Solve(cost)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: expected infeasible, got assignment %v cost %v", trial, rc, total)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: unexpected error %v (brute force found %v)", trial, err, want)
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: total %v != brute force %v", trial, total, want)
		}
		// Validate the assignment is a permutation avoiding forbidden cells.
		seen := make([]bool, n)
		sum := 0.0
		for i, j := range rc {
			if seen[j] {
				t.Fatalf("trial %d: duplicate column %d", trial, j)
			}
			seen[j] = true
			if cost[i][j] == Forbidden {
				t.Fatalf("trial %d: forbidden cell (%d,%d) used", trial, i, j)
			}
			sum += cost[i][j]
		}
		if math.Abs(sum-total) > 1e-9 {
			t.Fatalf("trial %d: reported total %v != recomputed %v", trial, total, sum)
		}
	}
}

func TestLowerBound(t *testing.T) {
	cost := [][]float64{{1, 9}, {9, 1}}
	if lb := LowerBound(cost); lb != 2 {
		t.Fatalf("LowerBound = %v, want 2", lb)
	}
	bad := [][]float64{{Forbidden, Forbidden}, {Forbidden, Forbidden}}
	if lb := LowerBound(bad); !math.IsInf(lb, 1) {
		t.Fatalf("LowerBound infeasible = %v, want +Inf", lb)
	}
}

func TestClone(t *testing.T) {
	orig := [][]float64{{1, 2}, {3, 4}}
	cp := Clone(orig)
	cp[0][0] = 99
	if orig[0][0] != 1 {
		t.Fatal("Clone did not deep-copy")
	}
}

func BenchmarkSolve32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 32
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = Forbidden
			} else {
				cost[i][j] = rng.Float64() * 100
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
