// Package assign implements the Hungarian algorithm for the linear
// assignment problem. It is the bounding engine behind the exact ring
// waveguide constructor: the paper's MILP (Sec. III-A) is an assignment
// problem (every node picks exactly one successor) with side constraints,
// and the assignment relaxation yields the strong lower bound used by
// branch-and-bound.
//
// Costs are float64; Forbidden marks cells that must not be chosen
// (for example the diagonal of a successor matrix, banned edges during
// branching, or conflict-eliminated edges).
package assign

import (
	"errors"
	"math"
)

// Forbidden is the cost value that marks an inadmissible assignment cell.
const Forbidden = math.MaxFloat64

// ErrInfeasible is returned when no perfect assignment avoids all
// forbidden cells.
var ErrInfeasible = errors.New("assign: no feasible perfect assignment")

// Solve computes a minimum-cost perfect assignment on an n-by-n cost
// matrix using the O(n^3) shortest-augmenting-path formulation of the
// Hungarian algorithm (Jonker-Volgenant style with row/column
// potentials).
//
// It returns rowToCol where rowToCol[i] is the column assigned to row i,
// along with the total cost. Cells with cost Forbidden are never chosen;
// if they cannot be avoided, ErrInfeasible is returned.
func Solve(cost [][]float64) (rowToCol []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, 0, errors.New("assign: cost matrix is not square")
		}
		_ = i
	}

	inf := math.Inf(1)
	// Internally 1-indexed, following the classic formulation.
	u := make([]float64, n+1) // row potentials
	v := make([]float64, n+1) // column potentials
	p := make([]int, n+1)     // p[j] = row assigned to column j (0 = none)
	way := make([]int, n+1)

	at := func(i, j int) float64 {
		c := cost[i-1][j-1]
		if c == Forbidden {
			return inf
		}
		return c
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := at(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				return nil, 0, ErrInfeasible
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the alternating path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] == 0 {
			return nil, 0, ErrInfeasible
		}
		rowToCol[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		c := cost[i][rowToCol[i]]
		if c == Forbidden {
			return nil, 0, ErrInfeasible
		}
		total += c
	}
	return rowToCol, total, nil
}

// LowerBound returns the optimal assignment cost, or +Inf when the
// matrix is infeasible. It is a convenience wrapper used as a
// branch-and-bound bound function.
func LowerBound(cost [][]float64) float64 {
	_, total, err := Solve(cost)
	if err != nil {
		return math.Inf(1)
	}
	return total
}

// Clone returns a deep copy of a cost matrix. Branch-and-bound uses it
// to apply edge bans/forces without disturbing the parent node.
func Clone(cost [][]float64) [][]float64 {
	out := make([][]float64, len(cost))
	for i, row := range cost {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
