package inventory

import (
	"math"
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
)

func TestTakeFullDesign(t *testing.T) {
	net := noc.Floorplan16()
	res, err := core.Synthesize(net, core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Take(res.Design, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	// One modulator and one receiver per signal.
	if c.Modulators != 240 || c.ReceiverMRRs != 240 {
		t.Fatalf("modulators/receivers = %d/%d, want 240/240", c.Modulators, c.ReceiverMRRs)
	}
	if c.TerminatorMRRs != c.ReceiverMRRs {
		t.Fatal("one terminator per receiver")
	}
	if c.TotalMRRs != c.Modulators+c.ReceiverMRRs+c.TerminatorMRRs+c.CSEMRRs {
		t.Fatal("MRR total inconsistent")
	}
	if c.Splitters <= 0 {
		t.Fatal("PDN splitters missing")
	}
	// Waveguide accounting.
	if c.RingWaveguideMM < res.Design.Perimeter()*float64(len(res.Design.Waveguides)) {
		t.Fatal("ring waveguide length below unscaled total")
	}
	if math.Abs(c.TotalWaveguideMM-(c.RingWaveguideMM+c.ShortcutMM+c.PDNWireMM)) > 1e-9 {
		t.Fatal("waveguide total inconsistent")
	}
	// XRing: zero crossings (tree PDN, no CSE pairs on the grid).
	if c.Crossings != res.Design.TotalCrossings() {
		t.Fatalf("crossings = %d, want %d", c.Crossings, res.Design.TotalCrossings())
	}
	// Tuning power = rings x per-ring power.
	want := float64(c.TotalMRRs) * res.Design.Par.TuningMWPerMRR
	if math.Abs(c.TuningPowerMW-want) > 1e-12 {
		t.Fatalf("tuning power %v, want %v", c.TuningPowerMW, want)
	}
}

func TestTakeWithoutPlan(t *testing.T) {
	net := noc.Floorplan8()
	res, err := core.Synthesize(net, core.Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Take(res.Design, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Splitters != 0 || c.PDNWireMM != 0 {
		t.Fatal("no-PDN inventory should have no splitters/PDN wire")
	}
	if _, err := Take(nil, nil); err == nil {
		t.Fatal("want error for nil design")
	}
}

func TestCSECounted(t *testing.T) {
	net := noc.Irregular(10, 30, 30, 3, 8) // known CSE pair
	res, err := core.Synthesize(net, core.Options{MaxWL: 10, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Take(res.Design, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if c.CSEMRRs < 2 {
		t.Fatalf("CSE MRRs = %d, want >= 2", c.CSEMRRs)
	}
	if c.Crossings < 1 {
		t.Fatal("CSE crossing not counted")
	}
}

func TestCrossbarMRRComparison(t *testing.T) {
	// The paper's Sec. I claim: ring routers avoid the crossbar
	// switching fabric. For 16 nodes the λ-router fabric alone is 240
	// extra rings.
	lr, err := CrossbarMRRs("lambda-router", 16)
	if err != nil {
		t.Fatal(err)
	}
	if lr != 240 {
		t.Fatalf("λ-router fabric = %d rings, want 240", lr)
	}
	gw, _ := CrossbarMRRs("gwor", 16)
	li, _ := CrossbarMRRs("light", 16)
	if !(li < gw && li < lr) {
		t.Fatalf("Light should have the leanest fabric: %d %d %d", lr, gw, li)
	}
	if _, err := CrossbarMRRs("bogus", 16); err == nil {
		t.Fatal("want error for unknown kind")
	}
}
