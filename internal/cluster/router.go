package cluster

// The cluster router: a thin, stateless HTTP tier that places every
// key-addressed request on its owner shard (consistent hashing) and
// resolves ID-addressed requests by asking the likeliest shards in
// load order. Being deterministic over the membership list, any number
// of routers can run side by side without coordinating.
//
// Forwarding contract: requests are forwarded with their bodies and
// headers intact — including traceparent, so one trace ID follows a
// request across hops — with bounded failover. A forward retries on
// the next candidate only while nothing has been written to the
// client: transport errors and gateway-ish statuses (502/503/504)
// fail over; everything else streams through verbatim, SSE included.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xring/internal/obs"
	"xring/internal/service"
	"xring/internal/service/client"
)

// DefaultRouteRetries is the default failover budget: one forward plus
// up to this many retries on other candidates.
const DefaultRouteRetries = 2

// maxRouteBody mirrors the service's own POST body bound.
const maxRouteBody = 8 << 20

// RouterConfig sizes a Router.
type RouterConfig struct {
	// Members is the shard fleet (base URLs).
	Members []string
	// VirtualNodes <= 0 selects DefaultVirtualNodes. Must match the
	// shards' own setting or routers and shards disagree on ownership.
	VirtualNodes int
	// MaxRetries bounds failover attempts after the first forward
	// (< 0: no retries; 0: DefaultRouteRetries).
	MaxRetries int
	// ProbeInterval tunes the health prober (<= 0: DefaultProbeInterval).
	ProbeInterval time.Duration
	// HTTPClient overrides the forwarding transport (tests). The
	// default has no overall timeout — forwards carry SSE streams —
	// and relies on the client's request context for cancellation.
	HTTPClient *http.Client
}

// Router forwards the service API across a shard fleet. Create with
// NewRouter, probe with Start, serve Handler.
type Router struct {
	ring     *Ring
	health   *Health
	hc       *http.Client
	breakers *client.BreakerGroup
	retries  int
	mux      *http.ServeMux
}

// NewRouter builds a router over the fleet.
func NewRouter(cfg RouterConfig) (*Router, error) {
	r, err := NewRing(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = DefaultRouteRetries
	}
	if retries < 0 {
		retries = 0
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{} // no Timeout: forwards include SSE streams
	}
	rt := &Router{
		ring:     r,
		health:   NewHealth(r.Members(), cfg.ProbeInterval, nil),
		hc:       hc,
		breakers: client.NewBreakerGroup(),
		retries:  retries,
	}
	rt.mux = rt.routes()
	return rt, nil
}

// Start launches health probing; Stop ends it.
func (rt *Router) Start() { rt.health.Start() }
func (rt *Router) Stop()  { rt.health.Stop() }

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/synthesize", rt.routeSynthesize)
	mux.HandleFunc("POST /v1/whatif", rt.routeWhatif)
	mux.HandleFunc("POST /v1/explore", rt.routeExplore)
	mux.HandleFunc("GET /v1/designs/{key}", func(w http.ResponseWriter, r *http.Request) {
		rt.forward(w, r, nil, rt.candidates(r.PathValue("key")))
	})
	// ID-addressed state lives on whichever shard admitted the job;
	// resolve by asking shards in load order until one answers non-404.
	for _, pat := range []string{
		"GET /v1/jobs/{id}", "GET /v1/jobs/{id}/events", "GET /v1/jobs/{id}/design",
		"GET /v1/explore/{id}", "GET /v1/explore/{id}/events", "GET /v1/explore/{id}/frontier",
		"GET /v1/whatif/{id}", "GET /v1/whatif/{id}/events",
	} {
		mux.HandleFunc(pat, rt.fanout)
	}
	mux.HandleFunc("GET /v1/cluster", rt.handleClusterInfo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteMetrics(w)
			return
		}
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		_ = obs.WritePrometheus(w)
	})
	return mux
}

// routeSynthesize decodes just enough of the body to compute the
// request's content key — the same canonicalization the shard will
// apply — and forwards to the key's owner. Requests the shard would
// reject (unresolvable) are rejected here with the same error.
func (rt *Router) routeSynthesize(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeRouterError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key, err := service.CanonicalKey(&req)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	rt.forward(w, r, body, rt.candidates(key))
}

// routeWhatif routes by the replayed design's content key, which is
// the whole body's addressing field.
func (rt *Router) routeWhatif(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Key == "" {
		writeRouterError(w, http.StatusBadRequest, errors.New("whatif request needs a design key"))
		return
	}
	rt.forward(w, r, body, rt.candidates(req.Key))
}

// routeExplore routes a whole study by a digest of its raw body:
// identical study submissions land on one shard and dedup there, and
// the per-cell synthesis work is then spread by the shards' own
// construct delegation and peer-fill.
func (rt *Router) routeExplore(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, err)
		return
	}
	sum := sha256.Sum256(body)
	rt.forward(w, r, body, rt.candidates("explore!"+hex.EncodeToString(sum[:])))
}

// candidates returns the full failover order for key: owner first.
func (rt *Router) candidates(key string) []string {
	return rt.ring.Owners(key, rt.ring.Size())
}

// errPeerMiss marks a shard that answered 404 during an ID fan-out:
// not a failure, just "not my job" — keep asking.
var errPeerMiss = errors.New("cluster: shard does not hold the id")

// fanout resolves an ID-addressed read by trying shards healthiest-
// first until one answers something other than 404. Unlike key-routed
// forwards this must be willing to ask every shard — the ID gives no
// ownership hint — so the attempt budget is the whole fleet.
func (rt *Router) fanout(w http.ResponseWriter, r *http.Request) {
	mRouteFanouts.Inc()
	candidates := rt.health.ByLoad()
	rt.forwardEx(w, r, nil, candidates, len(candidates), true)
}

// forward proxies a key-routed request to the first candidate that
// answers, with bounded failover.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, candidates []string) {
	rt.forwardEx(w, r, body, candidates, rt.retries+1, false)
}

// forwardEx is the shared forwarding core. Candidate order is
// preference order; tripped or unhealthy peers move to the back rather
// than being dropped — when the whole fleet looks down, trying is
// still better than failing. resolve404 makes a shard's 404 a "try the
// next one" signal (ID fan-out) instead of a final answer.
func (rt *Router) forwardEx(w http.ResponseWriter, r *http.Request, body []byte, candidates []string, maxAttempts int, resolve404 bool) {
	traceID := routeTraceID(r)
	w.Header().Set("X-Trace-Id", traceID)

	var ordered []string
	var demoted []string
	for _, c := range candidates {
		if rt.health.Healthy(c) && !rt.breakers.Open(c) {
			ordered = append(ordered, c)
		} else {
			demoted = append(demoted, c)
		}
	}
	ordered = append(ordered, demoted...)
	if maxAttempts > len(ordered) {
		maxAttempts = len(ordered)
	}

	var lastErr error
	for i := 0; i < maxAttempts; i++ {
		peer := ordered[i]
		if i > 0 {
			mRouteRetries.Inc()
		}
		retryable, err := rt.proxyTo(w, r, body, peer, traceID, resolve404)
		if err == nil {
			mRouteForwards.Inc()
			return
		}
		lastErr = err
		if !retryable {
			return // response already streaming; nothing we can do
		}
	}
	if errors.Is(lastErr, errPeerMiss) {
		// Every shard answered 404: the ID is genuinely unknown.
		writeRouterError(w, http.StatusNotFound, errors.New("unknown id on every shard"))
		return
	}
	mRouteErrors.Inc()
	if lastErr == nil {
		lastErr = errors.New("no shard available")
	}
	writeRouterError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: no shard could serve the request: %w", lastErr))
}

// proxyTo forwards once. The returned bool says whether failing over
// is still safe (nothing written to the client yet). Gateway-ish
// responses (502/503/504) are treated as failed forwards so a draining
// or dying shard fails over instead of bouncing the client.
func (rt *Router) proxyTo(w http.ResponseWriter, r *http.Request, body []byte, peer, traceID string, resolve404 bool) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	preq, err := http.NewRequestWithContext(r.Context(), r.Method, peer+r.URL.RequestURI(), rd)
	if err != nil {
		return true, err
	}
	copyHeaders(preq.Header, r.Header)
	// Cross-hop trace propagation: the shard sees the same trace ID the
	// router answered with, whether the client sent one or not.
	preq.Header.Set("traceparent", obs.TraceID(traceID).Traceparent())

	br := rt.breakers
	resp, err := rt.hc.Do(preq)
	if err != nil {
		br.Report(peer, false)
		return true, err
	}
	defer resp.Body.Close()
	br.Report(peer, resp.StatusCode < 500)
	if resolve404 && resp.StatusCode == http.StatusNotFound {
		return true, errPeerMiss
	}
	if resp.StatusCode == http.StatusBadGateway ||
		resp.StatusCode == http.StatusServiceUnavailable ||
		resp.StatusCode == http.StatusGatewayTimeout {
		return true, fmt.Errorf("%s answered HTTP %d", peer, resp.StatusCode)
	}

	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Cluster-Shard", peer)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return false, nil
}

// readBody slurps a bounded POST body for re-sending on failover.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouteBody))
}

// routeTraceID extracts or mints the request's trace identity.
func routeTraceID(r *http.Request) string {
	if tid, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		return string(tid)
	}
	return string(obs.NewTraceID())
}

// copyHeaders copies all header values from src to dst.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// flushCopy streams src to w, flushing after every chunk so SSE events
// pass through the router without buffering delays.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleReadyz: the router is ready while at least one shard is.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := rt.health.HealthyCount()
	body := map[string]any{
		"ready":        healthy > 0,
		"role":         "router",
		"healthyPeers": healthy,
		"peers":        rt.health.Snapshot(),
	}
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	writeRouterJSON(w, status, body)
}

// handleClusterInfo serves the router's membership and ownership view.
func (rt *Router) handleClusterInfo(w http.ResponseWriter, _ *http.Request) {
	writeRouterJSON(w, http.StatusOK, map[string]any{
		"role":    "router",
		"members": rt.ring.Members(),
		"shares":  rt.ring.Shares(),
		"peers":   rt.health.Snapshot(),
	})
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeRouterError(w http.ResponseWriter, status int, err error) {
	writeRouterJSON(w, status, map[string]string{"error": err.Error()})
}
