package cluster

// Per-peer health tracking, built on the service /readyz contract: a
// 200 with a JSON load signal means serving, a 503 means draining, and
// anything else (transport error, bad body) means gone. The prober
// keeps the latest status per peer so the router can weigh shards by
// queue depth and skip unhealthy ones without probing inline.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"xring/internal/service"
)

// DefaultProbeInterval is the background probe cadence; short enough
// that a killed shard stops receiving forwards within a few seconds.
const DefaultProbeInterval = 2 * time.Second

// probeTimeout bounds one readiness probe.
const probeTimeout = 3 * time.Second

// PeerStatus is the latest probed view of one shard.
type PeerStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Draining distinguishes a graceful 503 from a dead peer.
	Draining bool `json:"draining"`
	// QueueDepth and Inflight mirror the shard's /readyz load signal;
	// the router prefers the least-loaded shard on fan-out reads.
	QueueDepth int `json:"queueDepth"`
	Inflight   int `json:"inflight"`
	// Failures counts consecutive failed probes (reset on success).
	Failures  int       `json:"consecutiveFailures,omitempty"`
	LastProbe time.Time `json:"lastProbe"`
	LastError string    `json:"lastError,omitempty"`
}

// Health probes a fixed peer set and serves the latest status. Create
// with NewHealth, prime with ProbeAll, run with Start, stop with Stop.
type Health struct {
	hc       *http.Client
	interval time.Duration

	mu    sync.Mutex
	peers map[string]*PeerStatus
	order []string // stable listing order

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealth builds a prober over the given peer base URLs. A nil
// httpClient gets a probe-timeout client; interval <= 0 selects
// DefaultProbeInterval. Peers start unhealthy until the first probe.
func NewHealth(peers []string, interval time.Duration, httpClient *http.Client) *Health {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: probeTimeout}
	}
	h := &Health{
		hc:       httpClient,
		interval: interval,
		peers:    map[string]*PeerStatus{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range peers {
		if _, dup := h.peers[p]; dup {
			continue
		}
		h.peers[p] = &PeerStatus{URL: p}
		h.order = append(h.order, p)
	}
	return h
}

// Start launches the background probe loop (after one synchronous
// sweep, so callers see real state immediately).
func (h *Health) Start() {
	h.ProbeAll(context.Background())
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.ProbeAll(context.Background())
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call
// multiple times; a Health that was never started must not be stopped.
func (h *Health) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// ProbeAll sweeps every peer once, concurrently.
func (h *Health) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, url := range h.order {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			h.probe(ctx, url)
		}(url)
	}
	wg.Wait()
	mPeersHealthy.Set(int64(h.HealthyCount()))
}

// probe refreshes one peer's status from its /readyz.
func (h *Health) probe(ctx context.Context, url string) {
	st := PeerStatus{URL: url, LastProbe: time.Now()}
	rd, err := probeReadyz(ctx, h.hc, url)
	switch {
	case err != nil:
		st.LastError = err.Error()
	case rd.Ready:
		st.Healthy = true
		st.QueueDepth = rd.QueueDepth
		st.Inflight = rd.Inflight
	default:
		st.Draining = rd.Draining
	}

	h.mu.Lock()
	prev := h.peers[url]
	if !st.Healthy {
		st.Failures = prev.Failures + 1
	}
	h.peers[url] = &st
	h.mu.Unlock()
	if !st.Healthy {
		mProbeFailures.Inc()
	}
}

// probeReadyz performs one GET /readyz and decodes the JSON load
// signal. A 503 with a parseable body is a valid "draining" answer,
// not an error.
func probeReadyz(ctx context.Context, hc *http.Client, url string) (*service.Readiness, error) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	var rd service.Readiness
	// Pre-JSON readyz bodies ("ready\n") fail to parse; fall back to
	// the status code alone so mixed-version fleets stay probe-able.
	if jerr := json.Unmarshal(data, &rd); jerr != nil {
		rd = service.Readiness{}
	}
	rd.Ready = resp.StatusCode == http.StatusOK
	if resp.StatusCode == http.StatusServiceUnavailable && !rd.Draining {
		rd.Draining = true
	}
	return &rd, nil
}

// Healthy reports the latest probe verdict for url (false for unknown
// peers).
func (h *Health) Healthy(url string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[url]
	return ok && st.Healthy
}

// HealthyCount returns the number of currently healthy peers.
func (h *Health) HealthyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.peers {
		if st.Healthy {
			n++
		}
	}
	return n
}

// Status returns the latest status for url.
func (h *Health) Status(url string) (PeerStatus, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.peers[url]
	if !ok {
		return PeerStatus{}, false
	}
	return *st, true
}

// Snapshot returns every peer's latest status in listing order.
func (h *Health) Snapshot() []PeerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PeerStatus, 0, len(h.order))
	for _, url := range h.order {
		out = append(out, *h.peers[url])
	}
	return out
}

// ByLoad returns the peer URLs ordered healthiest-first: healthy peers
// by ascending queue depth + in-flight jobs, then draining, then dead —
// the fan-out order for ID-addressed reads that could live anywhere.
func (h *Health) ByLoad() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	urls := append([]string(nil), h.order...)
	rank := func(u string) (int, int) {
		st := h.peers[u]
		switch {
		case st.Healthy:
			return 0, st.QueueDepth + st.Inflight
		case st.Draining:
			return 1, 0
		default:
			return 2, 0
		}
	}
	sort.SliceStable(urls, func(i, j int) bool {
		ci, li := rank(urls[i])
		cj, lj := rank(urls[j])
		if ci != cj {
			return ci < cj
		}
		return li < lj
	})
	return urls
}
