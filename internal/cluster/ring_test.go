package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i)
	}
	return keys
}

// The ring must place every key identically regardless of the order
// the membership list arrives in — routers and shards each build their
// own ring from flags and must agree byte-for-byte.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://s3", "http://s1", "http://s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %q vs %q across member orderings", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(30000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(keys))
		// Perfect balance is 1/3; 64 vnodes keeps every shard within a
		// loose band. A shard below 15% or above 55% means the vnode
		// spreading is broken, not just unlucky.
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys, outside [15%%, 55%%]", m, 100*frac)
		}
	}
	shares := r.Shares()
	if len(shares) != 3 {
		t.Fatalf("Shares returned %d members, want 3", len(shares))
	}
	var total float64
	for _, s := range shares {
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %f, want 1", total)
	}
}

func TestRingOwnersDistinctFailoverOrder(t *testing.T) {
	r, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) returned %d members", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s) repeats %q", k, o)
			}
			seen[o] = true
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners over-asks: got %d, want all 3", len(got))
	}
}

// Adding one member must only move keys TO the new member — the
// consistent-hashing property peer-fill's previous-topology lookup
// depends on — and only about 1/N of them.
func TestRingMinimalRemapOnGrowth(t *testing.T) {
	old, err := NewRing([]string{"http://s1", "http://s2", "http://s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"http://s1", "http://s2", "http://s3", "http://s4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		was, is := old.Owner(k), grown.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != "http://s4" {
			t.Fatalf("key %s moved %s -> %s: growth may only move keys to the new member", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("growth remapped %.1f%% of keys, want roughly 1/4 (10%%-45%%)", 100*frac)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"http://s1", ""}, 0); err == nil {
		t.Error("blank member accepted")
	}
	r, err := NewRing([]string{"http://s1", "http://s1/"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 {
		t.Errorf("duplicate members (modulo trailing slash) not collapsed: size %d", r.Size())
	}
}
