package cluster

// Shard-side cluster client: what one xringd instance uses to talk to
// its peers. Peers bundles the consistent-hash view (current and,
// across a topology change, previous), per-peer health, and per-peer
// HTTP clients with endpoint-scoped circuit breakers, and exposes the
// two hooks the service and engine take:
//
//   - Fetch       -> service.Config.PeerFetch (cache peer-fill)
//   - Delegate    -> core.SetRingDelegate (cross-instance batching of
//                    Step-1 ring constructions on the floorplan owner)
//   - Info        -> service.Config.ClusterInfo (GET /v1/cluster)

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"xring/internal/noc"
	"xring/internal/ring"
	"xring/internal/service"
	"xring/internal/service/client"
)

// fetchTimeout bounds one peer-fill fetch: an envelope is a cached
// read on the peer, so anything slow means we should just solve.
const fetchTimeout = 5 * time.Second

// PeersConfig wires one shard into the cluster.
type PeersConfig struct {
	// Self is this shard's own advertised base URL; keys it owns are
	// never fetched or delegated (it IS the owner).
	Self string
	// Members is the full membership, including Self.
	Members []string
	// Previous, when non-empty, is the membership before the last
	// topology change: peer-fill also asks a key's previous owner, so a
	// rebalance never triggers a re-solve storm for designs that moved.
	Previous []string
	// VirtualNodes <= 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// HTTPClient overrides the transport (tests); nil gets a default.
	HTTPClient *http.Client
	// ProbeInterval tunes the health prober (<= 0: DefaultProbeInterval).
	ProbeInterval time.Duration
}

// Peers is a shard's view of its cluster.
type Peers struct {
	self    string
	vnodes  int
	ring    *Ring
	prev    *Ring // nil without a previous topology
	health  *Health
	clients map[string]*client.Client
}

// NewPeers builds the shard-side cluster view. Start launches health
// probing; the hooks work before Start too (peers just look unhealthy
// until the first probe, so fills fall back to solving).
func NewPeers(cfg PeersConfig) (*Peers, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: peers need a self URL")
	}
	r, err := NewRing(cfg.Members, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, m := range r.Members() {
		if m == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the member list", cfg.Self)
	}
	vnodes := cfg.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	p := &Peers{self: cfg.Self, vnodes: vnodes, ring: r, clients: map[string]*client.Client{}}
	if len(cfg.Previous) > 0 {
		if p.prev, err = NewRing(cfg.Previous, cfg.VirtualNodes); err != nil {
			return nil, fmt.Errorf("cluster: previous topology: %w", err)
		}
	}
	var others []string
	group := client.NewBreakerGroup()
	for _, m := range allMembers(p.ring, p.prev) {
		if m == cfg.Self {
			continue
		}
		others = append(others, m)
		p.clients[m] = client.NewWithBreakers(m, cfg.HTTPClient, group)
	}
	p.health = NewHealth(others, cfg.ProbeInterval, cfg.HTTPClient)
	return p, nil
}

// allMembers merges current and previous membership, current first.
func allMembers(cur, prev *Ring) []string {
	out := cur.Members()
	if prev == nil {
		return out
	}
	seen := map[string]bool{}
	for _, m := range out {
		seen[m] = true
	}
	for _, m := range prev.Members() {
		if !seen[m] {
			out = append(out, m)
		}
	}
	return out
}

// Start launches background health probing; Stop ends it.
func (p *Peers) Start() { p.health.Start() }
func (p *Peers) Stop()  { p.health.Stop() }

// Ring returns the current consistent-hash view.
func (p *Peers) Ring() *Ring { return p.ring }

// Health returns the peer health tracker.
func (p *Peers) Health() *Health { return p.health }

// Fetch is the service.Config.PeerFetch hook: it asks the key's owner
// (and, across a topology change, the previous owner) for the persist
// envelope. Any error means "solve locally"; validation of the bytes is
// entirely the service's job.
func (p *Peers) Fetch(ctx context.Context, key string) ([]byte, error) {
	var lastErr error
	tried := false
	for _, peer := range p.fillCandidates(key) {
		if !p.health.Healthy(peer) {
			continue
		}
		tried = true
		mFillFetches.Inc()
		fctx, cancel := context.WithTimeout(ctx, fetchTimeout)
		data, err := p.clients[peer].ClusterEntry(fctx, key)
		cancel()
		if err == nil {
			mFillServed.Inc()
			return data, nil
		}
		lastErr = err
	}
	if !tried {
		return nil, fmt.Errorf("cluster: no live peer owns %s", key)
	}
	return nil, lastErr
}

// fillCandidates returns the distinct peers worth asking for key: its
// current owner, then its owner under the previous topology.
func (p *Peers) fillCandidates(key string) []string {
	var out []string
	if owner := p.ring.Owner(key); owner != p.self {
		out = append(out, owner)
	}
	if p.prev != nil {
		if prevOwner := p.prev.Owner(key); prevOwner != p.self && (len(out) == 0 || out[0] != prevOwner) {
			out = append(out, prevOwner)
		}
	}
	return out
}

// Delegate is the core.SetRingDelegate hook: a ring-cache miss for a
// floorplan another shard owns is forwarded there, so N shards racing
// on one floorplan produce one solve cluster-wide (the owner's ring
// cache + singleflight coalesce every forwarded call). Declines —
// self-owned floorplans, unhealthy owner, any RPC failure — mean
// "solve locally".
func (p *Peers) Delegate(ctx context.Context, net *noc.Network, opt ring.Options, fkey string) (*ring.Result, bool) {
	// Floorplan keys get their own placement domain so the construct
	// load spreads independently of the design-key placement.
	owner := p.ring.Owner("construct!" + fkey)
	if owner == p.self || !p.health.Healthy(owner) {
		return nil, false
	}
	req := &service.ConstructRequest{
		DieW:             net.DieW,
		DieH:             net.DieH,
		MaxNodes:         opt.MaxNodes,
		DisableConflicts: opt.DisableConflicts,
	}
	for _, n := range net.Nodes {
		req.Nodes = append(req.Nodes, service.NodeSpec{Name: n.Name, X: n.Pos.X, Y: n.Pos.Y})
	}
	resp, err := p.clients[owner].Construct(ctx, req)
	if err != nil || resp.Result == nil {
		mConstructFallback.Inc()
		return nil, false
	}
	mConstructDelegated.Inc()
	return resp.Result, true
}

// Info is the service.Config.ClusterInfo hook: this shard's membership
// and ownership view for GET /v1/cluster.
func (p *Peers) Info() any {
	info := map[string]any{
		"self":     p.self,
		"members":  p.ring.Members(),
		"vnodes":   p.vnodes,
		"shares":   p.ring.Shares(),
		"peers":    p.health.Snapshot(),
		"topology": "current",
	}
	if p.prev != nil {
		info["previousMembers"] = p.prev.Members()
	}
	return info
}
