// Package cluster is the distributed layer of xringd: a deterministic
// consistent-hash ring that maps content keys to owner shards, per-peer
// health tracking built on the /readyz readiness contract, an HTTP
// router that forwards key-addressed requests to their owners with
// bounded retries, a cache peer-fill client that lets a shard adopt a
// neighbor's persisted design instead of re-solving it, and a
// ring-construction delegate that coalesces Step-1 solves for one
// floorplan onto its owner cluster-wide.
//
// Every piece is deterministic given the membership list: the ring
// seeds virtual-node placement from the member names alone, so every
// router and every shard — across processes and restarts — agrees on
// who owns which key without any coordination service.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 vnodes
// keep the key-space share of a 3-16 member ring within a few percent
// of uniform while the ring stays small enough to rebuild on every
// membership change.
const DefaultVirtualNodes = 64

// Ring is a deterministic consistent-hash ring: Members are placed at
// VirtualNodes seeded positions each, and a key is owned by the first
// virtual node clockwise from the key's hash. Construction is pure —
// two Rings built from the same member list (in any order) are
// identical, which is what lets routers and shards agree on ownership
// without talking to each other.
type Ring struct {
	members []string // sorted, deduplicated
	points  []point  // sorted by hash
}

type point struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over the given members (base URLs or names —
// any non-empty strings; order and duplicates are irrelevant). vnodes
// <= 0 selects DefaultVirtualNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	var ms []string
	for _, m := range members {
		// Normalize so "http://s1" and "http://s1/" are one member no
		// matter which spelling each process was configured with.
		m = strings.TrimRight(strings.TrimSpace(m), "/")
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ms)
	r := &Ring{members: ms}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: placementHash(m, v), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically unlikely) break by member name so
		// placement stays deterministic regardless of input order.
		return r.members[r.points[a].member] < r.members[r.points[b].member]
	})
	return r, nil
}

// placementHash seeds a member's virtual node v onto the ring. The
// seed is the member name plus the vnode ordinal — no process-local
// state — so placement is identical in every process.
func placementHash(member string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte("xring-cluster-vnode"))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(member)))
	h.Write(b[:])
	h.Write([]byte(member))
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// keyHash places a content key on the ring. Keys are hashed with a
// distinct domain prefix so a key can never collide with a vnode
// placement by construction.
func keyHash(key string) uint64 {
	h := sha256.New()
	h.Write([]byte("xring-cluster-key"))
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// Members returns the sorted member list.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.locate(keyHash(key))].member]
}

// Owners returns up to n distinct members in preference order for key:
// the owner first, then the distinct members of the following virtual
// nodes — the failover sequence a router walks when the owner is
// unhealthy.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := map[int]bool{}
	for i, start := 0, r.locate(keyHash(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// locate returns the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) locate(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Shares returns each member's fraction of the key space — the sum of
// the arc lengths its virtual nodes own — primarily for /v1/cluster
// introspection and the balance test.
func (r *Ring) Shares() map[string]float64 {
	shares := map[string]float64{}
	if len(r.points) == 0 {
		return shares
	}
	const whole = float64(1<<63) * 2 // 2^64 as float
	for i, p := range r.points {
		prev := r.points[(i-1+len(r.points))%len(r.points)].hash
		arc := p.hash - prev // uint64 wraparound handles the seam point
		shares[r.members[p.member]] += float64(arc) / whole
	}
	return shares
}
