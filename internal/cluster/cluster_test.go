package cluster

// Integration tests for the distributed layer: a real router over real
// shards (full synthesis engine on tiny 4-node floorplans), per-peer
// health, peer-fill, and construct delegation. External stubbing of
// synthesis is impossible from here (the service's SynthFunc takes an
// unexported type), which these tests turn into a feature: everything
// below exercises the genuine end-to-end path.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/ring"
	"xring/internal/service"
)

func intp(v int) *int { return &v }

// quadReq is a tiny 4-node synthesis request; variant perturbs the
// floorplan so distinct variants get distinct content keys.
func quadReq(variant int) *service.Request {
	dx := 0.25 * float64(variant+1)
	return &service.Request{
		Network: service.NetworkSpec{Nodes: []service.NodeSpec{
			{ID: intp(0), X: 0, Y: 0},
			{ID: intp(1), X: 2.5, Y: 0},
			{ID: intp(2), X: 0, Y: 2.5},
			{ID: intp(3), X: 2.5 + dx, Y: 2.5},
		}},
		Options: service.OptionsSpec{MaxWL: 4},
	}
}

// newShard starts one real service shard; cfg is optional extras.
func newShard(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func postSynthesize(t *testing.T, baseURL string, req *service.Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST synthesize: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeSynth(t *testing.T, data []byte) *service.Response {
	t.Helper()
	var r service.Response
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decoding response %q: %v", data, err)
	}
	return &r
}

// startRouter builds a router over the shard URLs with an initial
// synchronous probe sweep; the background loop stays off so tests
// control probe timing explicitly via rt.health.ProbeAll.
func startRouter(t *testing.T, urls []string) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	rt.health.ProbeAll(context.Background())
	return rt
}

func TestRouterRoutesByKeyDeterministically(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := newShard(t, service.Config{})
		urls = append(urls, ts.URL)
	}
	rt := startRouter(t, urls)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	req := quadReq(0)
	resp, data := postSynthesize(t, front.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed synthesize: HTTP %d: %s", resp.StatusCode, data)
	}
	r := decodeSynth(t, data)
	shard := resp.Header.Get("X-Cluster-Shard")
	if want := rt.ring.Owner(r.Key); shard != want {
		t.Errorf("request landed on %s, ring says owner is %s", shard, want)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("router response missing X-Trace-Id")
	}

	// Same request again: same shard, now a cache hit there.
	resp2, data2 := postSynthesize(t, front.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second routed synthesize: HTTP %d", resp2.StatusCode)
	}
	r2 := decodeSynth(t, data2)
	if got := resp2.Header.Get("X-Cluster-Shard"); got != shard {
		t.Errorf("repeat request landed on %s, first went to %s", got, shard)
	}
	if r2.Source != "cache" {
		t.Errorf("repeat source %q, want cache (keys must route stably)", r2.Source)
	}
	if !bytes.Equal(r.Design, r2.Design) {
		t.Error("repeat design differs")
	}

	// The design is fetchable through the router by key, from the shard
	// that has it.
	dresp, err := http.Get(front.URL + "/v1/designs/" + r.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("GET design via router: HTTP %d", dresp.StatusCode)
	}

	// GET /v1/cluster reports membership and shares.
	cresp, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var info struct {
		Role    string             `json:"role"`
		Members []string           `json:"members"`
		Shares  map[string]float64 `json:"shares"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Role != "router" || len(info.Members) != 3 || len(info.Shares) != 3 {
		t.Errorf("cluster info %+v, want router role with 3 members and shares", info)
	}
}

func TestRouterFanoutResolvesJobAnywhere(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := newShard(t, service.Config{})
		urls = append(urls, ts.URL)
	}
	rt := startRouter(t, urls)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, data := postSynthesize(t, front.URL, quadReq(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: HTTP %d: %s", resp.StatusCode, data)
	}
	jobID := decodeSynth(t, data).JobID
	if jobID == "" {
		t.Fatal("no job ID")
	}

	// The job lives on exactly one shard; the router must find it.
	jresp, err := http.Get(front.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(jresp.Body)
		t.Fatalf("GET job via router: HTTP %d: %s", jresp.StatusCode, body)
	}

	// An ID no shard holds 404s cleanly after the full sweep.
	missing, err := http.Get(front.URL + "/v1/jobs/job-nope")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job via router: HTTP %d, want 404", missing.StatusCode)
	}
}

func TestRouterFailsOverWhenOwnerDies(t *testing.T) {
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := newShard(t, service.Config{})
		urls = append(urls, ts.URL)
		servers = append(servers, ts)
	}
	rt := startRouter(t, urls)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Find a request owned by shard 0 so killing it exercises failover.
	victim := urls[0]
	var req *service.Request
	for v := 0; v < 64; v++ {
		cand := quadReq(v)
		key, err := service.CanonicalKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if rt.ring.Owner(key) == victim {
			req = cand
			break
		}
	}
	if req == nil {
		t.Fatal("no variant hashed to the victim shard in 64 tries")
	}

	servers[0].Close()
	rt.health.ProbeAll(context.Background())
	if rt.health.Healthy(victim) {
		t.Fatal("probe still thinks the closed shard is healthy")
	}

	resp, data := postSynthesize(t, front.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover synthesize: HTTP %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Cluster-Shard"); got == victim || got == "" {
		t.Errorf("request served by %q, want a live non-owner shard", got)
	}

	// The router stays ready while any shard lives, and reports the
	// dead peer in its JSON body.
	rresp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("router /readyz: HTTP %d with 2 live shards", rresp.StatusCode)
	}
	var rd struct {
		Ready        bool         `json:"ready"`
		HealthyPeers int          `json:"healthyPeers"`
		Peers        []PeerStatus `json:"peers"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	if !rd.Ready || rd.HealthyPeers != 2 {
		t.Errorf("router readiness %+v, want ready with 2 healthy peers", rd)
	}
}

// listenerShard starts a shard whose URL is known BEFORE the service is
// built, so cluster hooks (which need the membership up front) can be
// wired in. Returns the base URL.
func listenerShard(t *testing.T, build func(self string) service.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	s, err := service.New(build(self))
	if err != nil {
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return self
}

// Two shards wired as a real cluster: a design solved on its owner is
// adopted byte-identically by the other shard via peer-fill, and both
// report cluster info. Run under -race in CI.
func TestTwoShardClusterPeerFillByteIdentical(t *testing.T) {
	// Build both listeners first so each shard knows the full membership.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{"http://" + ln1.Addr().String(), "http://" + ln2.Addr().String()}

	var fleets []*Peers
	for i, ln := range []net.Listener{ln1, ln2} {
		peers, err := NewPeers(PeersConfig{Self: urls[i], Members: urls})
		if err != nil {
			t.Fatal(err)
		}
		fleets = append(fleets, peers)
		s, err := service.New(service.Config{
			Workers:     2,
			PeerFetch:   peers.Fetch,
			ClusterInfo: peers.Info,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
		})
	}
	for _, p := range fleets {
		p.health.ProbeAll(context.Background())
	}

	// Pick a request owned by shard 0 under the shared ring, solve it
	// there, then ask shard 1 for the design by key: it must peer-fill.
	var req *service.Request
	var key string
	for v := 0; v < 64; v++ {
		cand := quadReq(v)
		k, err := service.CanonicalKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if fleets[0].Ring().Owner(k) == urls[0] {
			req, key = cand, k
			break
		}
	}
	if req == nil {
		t.Fatal("no variant hashed to shard 0 in 64 tries")
	}

	resp, data := postSynthesize(t, urls[0], req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner synthesize: HTTP %d: %s", resp.StatusCode, data)
	}
	ownerDesign := fetchRaw(t, urls[0]+"/v1/designs/"+key)
	otherDesign := fetchRaw(t, urls[1]+"/v1/designs/"+key)
	if !bytes.Equal(ownerDesign, otherDesign) {
		t.Error("peer-filled design differs between shards — byte identity broken")
	}

	// And cluster info is live on the shard API.
	var info map[string]any
	if err := json.Unmarshal(fetchRaw(t, urls[1]+"/v1/cluster"), &info); err != nil {
		t.Fatal(err)
	}
	if info["self"] != urls[1] {
		t.Errorf("cluster info self = %v, want %s", info["self"], urls[1])
	}
}

func fetchRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// The construct delegate forwards a ring construction to the floorplan
// owner and the answer matches a local solve exactly.
func TestDelegateMatchesLocalConstruct(t *testing.T) {
	_, ts := newShard(t, service.Config{})

	self := "http://self.invalid"
	peers, err := NewPeers(PeersConfig{Self: self, Members: []string{self, ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	peers.health.ProbeAll(context.Background())
	if !peers.health.Healthy(ts.URL) {
		t.Fatal("live shard probed unhealthy")
	}

	nw := &noc.Network{
		DieW: 4, DieH: 4,
		Nodes: []noc.Node{
			{ID: 0, Name: "n0", Pos: geom.Point{X: 0, Y: 0}},
			{ID: 1, Name: "n1", Pos: geom.Point{X: 2.5, Y: 0}},
			{ID: 2, Name: "n2", Pos: geom.Point{X: 0, Y: 2.5}},
			{ID: 3, Name: "n3", Pos: geom.Point{X: 2.75, Y: 2.5}},
		},
	}
	opt := ring.Options{}

	// Find a floorplan key the live shard owns; the delegate declines
	// self-owned keys by design.
	var fkey string
	for v := 0; v < 64; v++ {
		cand := fmt.Sprintf("fkey-%d", v)
		if peers.Ring().Owner("construct!"+cand) == ts.URL {
			fkey = cand
			break
		}
	}
	if fkey == "" {
		t.Fatal("no floorplan key hashed to the live shard")
	}

	got, ok := peers.Delegate(context.Background(), nw, opt, fkey)
	if !ok || got == nil {
		t.Fatal("delegate declined a remote-owned floorplan with a healthy owner")
	}
	want, err := ring.ConstructCtx(context.Background(), nw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("delegated construct differs from local solve:\n got %+v\nwant %+v", got, want)
	}

	// A floorplan the shard itself owns is declined (solve locally).
	var selfKey string
	for v := 0; v < 64; v++ {
		cand := fmt.Sprintf("self-%d", v)
		if peers.Ring().Owner("construct!"+cand) == self {
			selfKey = cand
			break
		}
	}
	if selfKey == "" {
		t.Fatal("no floorplan key hashed to self")
	}
	if _, ok := peers.Delegate(context.Background(), nw, opt, selfKey); ok {
		t.Error("delegate forwarded a self-owned floorplan")
	}
}

func TestPeersFetchAsksOwner(t *testing.T) {
	_, ts := newShard(t, service.Config{})
	self := "http://self.invalid"
	peers, err := NewPeers(PeersConfig{Self: self, Members: []string{self, ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	peers.health.ProbeAll(context.Background())

	// Solve a request the LIVE shard owns, then fetch its envelope.
	var key string
	var req *service.Request
	for v := 0; v < 64; v++ {
		cand := quadReq(v)
		k, err := service.CanonicalKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if peers.Ring().Owner(k) == ts.URL {
			req, key = cand, k
			break
		}
	}
	if req == nil {
		t.Fatal("no variant owned by the live shard")
	}
	if resp, data := postSynthesize(t, ts.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: HTTP %d: %s", resp.StatusCode, data)
	}

	data, err := peers.Fetch(context.Background(), key)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	var envelope struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Key != key {
		t.Errorf("fetched envelope key %q (err %v), want %q", envelope.Key, err, key)
	}

	// A key owned by self has no one to ask.
	var selfOwned string
	for v := 0; v < 256; v++ {
		k := fmt.Sprintf("sha256:%064x", v)
		if peers.Ring().Owner(k) == self {
			selfOwned = k
			break
		}
	}
	if selfOwned == "" {
		t.Fatal("no key hashed to self")
	}
	if _, err := peers.Fetch(context.Background(), selfOwned); err == nil {
		t.Error("Fetch of a self-owned key should fail (nobody to ask)")
	}
}
