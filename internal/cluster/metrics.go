package cluster

// Cluster telemetry, following the repo-wide obs conventions
// (OBSERVABILITY.md). Router-side counters cover forwarding and
// failover; shard-side counters cover the peer-fill and construct
// delegation amplifiers. The service layer's own cluster counters
// (entries served, fills adopted) live in internal/service.

import "xring/internal/obs"

var (
	// Router: requests forwarded to owner shards, failover retries after
	// a forward error, forwards that exhausted every candidate shard,
	// and ID-addressed requests resolved by fanning out across shards.
	mRouteForwards = obs.NewCounter("cluster.route.forwards")
	mRouteRetries  = obs.NewCounter("cluster.route.retries")
	mRouteErrors   = obs.NewCounter("cluster.route.errors")
	mRouteFanouts  = obs.NewCounter("cluster.route.fanouts")

	// Health prober: readiness probes that failed, and the current
	// healthy-member count.
	mProbeFailures = obs.NewCounter("cluster.probe.failures")
	mPeersHealthy  = obs.NewGauge("cluster.peers.healthy")

	// Peer-fill client: fetches attempted against owner/previous-owner
	// shards and fetches that returned an entry (adoption and validation
	// are counted by the service as cluster.peerfill.*).
	mFillFetches = obs.NewCounter("cluster.fill.fetches")
	mFillServed  = obs.NewCounter("cluster.fill.served")

	// Construct delegation: ring-construction solves forwarded to the
	// floorplan's owner shard instead of solved locally, and delegations
	// that failed over to the local solver.
	mConstructDelegated = obs.NewCounter("cluster.construct.delegated")
	mConstructFallback  = obs.NewCounter("cluster.construct.fallback")
)
