package spectral

import (
	"math"
	"testing"
	"testing/quick"

	"xring/internal/core"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

func TestLorentzianProperties(t *testing.T) {
	m := MRR{FWHMGHz: 20}
	// Peak at zero detuning.
	if m.Drop(0) != 1 {
		t.Fatalf("Drop(0) = %v, want 1", m.Drop(0))
	}
	// Half power at half the FWHM.
	if math.Abs(m.Drop(10)-0.5) > 1e-12 {
		t.Fatalf("Drop(FWHM/2) = %v, want 0.5", m.Drop(10))
	}
	// Through + Drop = 1.
	f := func(det float64) bool {
		det = math.Mod(math.Abs(det), 1000)
		return math.Abs(m.Drop(det)+m.Through(det)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Monotone decreasing in |detuning|.
	prev := 1.1
	for det := 0.0; det <= 500; det += 7 {
		d := m.Drop(det)
		if d >= prev {
			t.Fatalf("Drop not monotone at %v", det)
		}
		prev = d
	}
	// Symmetric via DetuningGHz.
	g := Grid{CenterTHz: 193.4, SpacingGHz: 100}
	if g.DetuningGHz(3, 5) != g.DetuningGHz(5, 3) {
		t.Fatal("detuning not symmetric")
	}
	if g.DetuningGHz(2, 2) != 0 {
		t.Fatal("zero detuning for equal channels")
	}
}

func TestMRRForQ(t *testing.T) {
	g := Grid{CenterTHz: 193.4, SpacingGHz: 100}
	m := MRRForQ(9670, g) // FWHM = 193400/9670 = 20 GHz
	if math.Abs(m.FWHMGHz-20) > 1e-9 {
		t.Fatalf("FWHM = %v, want 20", m.FWHMGHz)
	}
	// Higher Q -> narrower ring -> better adjacent isolation.
	lo := MRRForQ(3000, g).Drop(100)
	hi := MRRForQ(20000, g).Drop(100)
	if hi >= lo {
		t.Fatalf("higher Q should isolate better: %v vs %v", hi, lo)
	}
}

// manualDesign builds a one-waveguide design with two co-propagating
// channels on adjacent wavelengths.
func manualDesign(t *testing.T) (*router.Design, *loss.Report) {
	t.Helper()
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := noc.Signal{Src: 0, Dst: 3}
	s2 := noc.Signal{Src: 1, Dst: 7} // passes node 3 (s1's receiver)
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1, Channels: []router.Channel{
		{Sig: s1, WL: 0},
		{Sig: s2, WL: 1},
	}}}
	d.Routes[s1] = &router.Route{Sig: s1, Kind: router.OnRing, WG: 0, WL: 0}
	d.Routes[s2] = &router.Route{Sig: s2, Kind: router.OnRing, WG: 0, WL: 1}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	lrep, err := loss.Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, lrep
}

func TestAnalyzeAdjacentChannelLeak(t *testing.T) {
	d, lrep := manualDesign(t)
	rep, err := Analyze(d, lrep, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s1 := noc.Signal{Src: 0, Dst: 3}
	s2 := noc.Signal{Src: 1, Dst: 7}
	// s2 passes s1's receiver: s1 suffers adjacent-channel leakage.
	if rep.Signals[s1].Contributors != 1 {
		t.Fatalf("s1 contributors = %d, want 1", rep.Signals[s1].Contributors)
	}
	if rep.Signals[s1].InterChannelMW <= 0 {
		t.Fatal("s1 should collect inter-channel noise")
	}
	// s1 does NOT pass s2's receiver (node 7 is beyond node 3).
	if rep.Signals[s2].Contributors != 0 {
		t.Fatalf("s2 contributors = %d, want 0", rep.Signals[s2].Contributors)
	}
	if !math.IsInf(rep.Signals[s2].SNRdB, 1) {
		t.Fatal("s2 spectral SNR should be +Inf")
	}
	// SNR close to the single-contributor isolation (powers are similar).
	iso := -rep.AdjacentIsolationDB
	if math.Abs(rep.Signals[s1].SNRdB-iso) > 3 {
		t.Fatalf("s1 SNR %v should be within 3 dB of isolation %v", rep.Signals[s1].SNRdB, iso)
	}
	if rep.WorstSNR != rep.Signals[s1].SNRdB || rep.Worst != s1 {
		t.Fatal("worst bookkeeping wrong")
	}
}

func TestAnalyzeSpacingSweep(t *testing.T) {
	d, lrep := manualDesign(t)
	// Wider spacing -> better worst SNR.
	prev := -math.MaxFloat64
	for _, spacing := range []float64{25, 50, 100, 200, 400} {
		rep, err := Analyze(d, lrep, Params{Q: 9000, Grid: Grid{CenterTHz: 193.4, SpacingGHz: spacing}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.WorstSNR <= prev {
			t.Fatalf("worst SNR should improve with spacing: %v at %v GHz", rep.WorstSNR, spacing)
		}
		prev = rep.WorstSNR
	}
}

func TestMinSpacingForSNR(t *testing.T) {
	d, lrep := manualDesign(t)
	sp, err := MinSpacingForSNR(d, lrep, 9000, 25, 25, 1600)
	if err != nil {
		t.Fatal(err)
	}
	// The found spacing achieves the target; one step tighter does not.
	rep, err := Analyze(d, lrep, Params{Q: 9000, Grid: Grid{CenterTHz: 193.4, SpacingGHz: sp}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstSNR < 25 {
		t.Fatalf("spacing %v misses target: %v dB", sp, rep.WorstSNR)
	}
	if sp > 25 {
		tight, err := Analyze(d, lrep, Params{Q: 9000, Grid: Grid{CenterTHz: 193.4, SpacingGHz: sp - 25}})
		if err != nil {
			t.Fatal(err)
		}
		if tight.WorstSNR >= 25 {
			t.Fatalf("spacing %v is not minimal", sp)
		}
	}
	// Unreachable target errors.
	if _, err := MinSpacingForSNR(d, lrep, 9000, 500, 25, 100); err == nil {
		t.Fatal("want error for unreachable target")
	}
}

func TestAnalyzeFullSynthesizedDesign(t *testing.T) {
	net := noc.Floorplan16()
	res, err := core.Synthesize(net, core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(res.Design, res.Loss, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Signals) != len(res.Design.Routes) {
		t.Fatalf("spectral entries %d != routes %d", len(rep.Signals), len(res.Design.Routes))
	}
	// A Q=9000 / 100 GHz design point keeps spectral SNR above ~12 dB
	// for the standard 16-node router (many co-propagating channels sum
	// their Lorentzian tails at the busiest receivers).
	if rep.WorstSNR < 12 {
		t.Fatalf("spectral worst SNR %v dB implausibly low", rep.WorstSNR)
	}
	if rep.AdjacentIsolationDB >= 0 || rep.AdjacentIsolationDB < -60 {
		t.Fatalf("adjacent isolation %v dB implausible", rep.AdjacentIsolationDB)
	}
}

func TestDriftZeroMatchesAnalyze(t *testing.T) {
	d, lrep := manualDesign(t)
	a, err := Analyze(d, lrep, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeWithDrift(d, lrep, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.WorstSNR != b.WorstSNR {
		t.Fatalf("drift=0 mismatch: %v vs %v", a.WorstSNR, b.WorstSNR)
	}
}

func TestDriftDegradesSNR(t *testing.T) {
	d, lrep := manualDesign(t)
	p := DefaultParams()
	prev := math.Inf(1)
	for _, drift := range []float64{0, 5, 10, 20, 40} {
		rep, err := AnalyzeWithDrift(d, lrep, p, drift)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WorstSNR >= prev && drift > 0 {
			t.Fatalf("SNR should degrade with drift: %v dB at %v GHz", rep.WorstSNR, drift)
		}
		prev = rep.WorstSNR
	}
	if _, err := AnalyzeWithDrift(d, lrep, p, -1); err == nil {
		t.Fatal("want error for negative drift")
	}
}

func TestMaxDriftForSNR(t *testing.T) {
	d, lrep := manualDesign(t)
	p := DefaultParams()
	base, err := Analyze(d, lrep, p)
	if err != nil {
		t.Fatal(err)
	}
	target := base.WorstSNR - 3 // allow a 3 dB penalty
	budget, err := MaxDriftForSNR(d, lrep, p, target, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if budget <= 0 {
		t.Fatalf("thermal budget %v should be positive", budget)
	}
	// One step beyond the budget violates the target.
	over, err := AnalyzeWithDrift(d, lrep, p, budget+1)
	if err != nil {
		t.Fatal(err)
	}
	if over.WorstSNR >= target {
		t.Fatalf("budget %v is not maximal", budget)
	}
	// An unreachable target errors.
	if _, err := MaxDriftForSNR(d, lrep, p, base.WorstSNR+10, 1, 100); err == nil {
		t.Fatal("want error for unreachable target")
	}
}

func TestFSRAndCapacity(t *testing.T) {
	// A 30 µm ring with n_g = 4.2: FSR ≈ 2379 GHz -> 23 channels at
	// 100 GHz.
	fsr := FSRGHz(30, 4.2)
	if math.Abs(fsr-2379.3) > 1 {
		t.Fatalf("FSR = %v GHz, want ~2379", fsr)
	}
	if got := MaxChannels(fsr, 100); got != 23 {
		t.Fatalf("MaxChannels = %d, want 23", got)
	}
	// Bigger rings have smaller FSRs.
	if FSRGHz(60, 4.2) >= fsr {
		t.Fatal("FSR must shrink with circumference")
	}
	if FSRGHz(0, 4.2) != 0 || MaxChannels(100, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCheckWavelengthCapacity(t *testing.T) {
	net := noc.Floorplan16()
	res, err := core.Synthesize(net, core.Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	// 30 µm rings hold 23 channels: a 14-wavelength design fits.
	capOK, err := CheckWavelengthCapacity(res.Design, DefaultParams(), 30, 4.2)
	if err != nil {
		t.Fatalf("capacity %d: %v", capOK, err)
	}
	// 200 µm rings hold only ~3 channels: the design must be rejected.
	if _, err := CheckWavelengthCapacity(res.Design, DefaultParams(), 200, 4.2); err == nil {
		t.Fatal("want capacity violation for large rings")
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	d, lrep := manualDesign(t)
	if _, err := Analyze(d, nil, DefaultParams()); err == nil {
		t.Fatal("want error without loss report")
	}
	if _, err := Analyze(d, lrep, Params{}); err == nil {
		t.Fatal("want error for zero params")
	}
}
