// Package spectral extends the paper's first-order crosstalk model with
// the wavelength-resolved (inter-channel) analysis of its reference
// [14] (Nikdast et al.): microring resonators are not ideal filters —
// they are Lorentzian — so a signal on wavelength λj passing a receiver
// MRR tuned to the *adjacent* channel λi partially couples into that
// receiver's photodetector. Photodetectors are broadband, so this
// incoherent leakage degrades the received signal even though it lives
// on a different wavelength. The paper's SNR definition deliberately
// excludes it (only same-wavelength noise is counted); this package
// quantifies how much margin that exclusion hides, and lets users pick
// a channel spacing and ring quality factor where it is justified.
//
// Model: an add-drop MRR with quality factor Q at centre frequency f0
// has a full-width-half-maximum FWHM = f0/Q and a Lorentzian drop-port
// power response
//
//	D(δ) = (FWHM/2)² / (δ² + (FWHM/2)²)
//
// for detuning δ from resonance; the through port carries 1 − D(δ)
// (loss handled separately by the loss engine). Channels sit on a
// regular grid around 193.4 THz (1550 nm).
package spectral

import (
	"fmt"
	"math"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

// Grid is a regular wavelength (frequency) grid.
type Grid struct {
	// CenterTHz is the grid centre frequency (1550 nm band ≈ 193.4).
	CenterTHz float64
	// SpacingGHz is the channel spacing (DWDM standard: 100 or 50).
	SpacingGHz float64
}

// DetuningGHz returns the frequency distance between channels i and j.
func (g Grid) DetuningGHz(i, j int) float64 {
	return math.Abs(float64(i-j)) * g.SpacingGHz
}

// MRR is a microring resonator filter.
type MRR struct {
	// FWHMGHz is the full-width-half-maximum of the Lorentzian.
	FWHMGHz float64
}

// MRRForQ builds the filter for a ring with quality factor q on grid g.
func MRRForQ(q float64, g Grid) MRR {
	return MRR{FWHMGHz: g.CenterTHz * 1000 / q}
}

// Drop returns the power fraction coupled to the drop port at the given
// detuning.
func (m MRR) Drop(detuningGHz float64) float64 {
	h := m.FWHMGHz / 2
	return h * h / (detuningGHz*detuningGHz + h*h)
}

// Through returns the power fraction continuing on the bus waveguide.
func (m MRR) Through(detuningGHz float64) float64 {
	return 1 - m.Drop(detuningGHz)
}

// Params configures the spectral analysis.
type Params struct {
	// Q is the loaded quality factor of the receiver rings.
	Q float64
	// Grid is the channel grid.
	Grid Grid
}

// DefaultParams returns a typical silicon-photonics operating point:
// Q = 9000 rings on a 100 GHz DWDM grid.
func DefaultParams() Params {
	return Params{
		Q:    9000,
		Grid: Grid{CenterTHz: 193.4, SpacingGHz: 100},
	}
}

// SignalNoise is the spectral-noise breakdown for one signal.
type SignalNoise struct {
	Sig noc.Signal
	// InterChannelMW is the incoherent power from OTHER channels
	// coupled into this signal's photodetector (mW).
	InterChannelMW float64
	// SelfMW is this signal's received power (mW), after its own MRR's
	// finite drop efficiency at zero detuning (= 1 for a Lorentzian).
	SelfMW float64
	// SNRdB = 10 log10(SelfMW / InterChannelMW).
	SNRdB float64
	// Contributors counts the channels that leak into this detector.
	Contributors int
}

// Report is the spectral crosstalk analysis result.
type Report struct {
	Signals map[noc.Signal]*SignalNoise
	// WorstSNR is the minimum spectral SNR across all signals (dB).
	WorstSNR float64
	Worst    noc.Signal
	// MeanSNR averages the per-signal SNRs (dB) for signals with any
	// contributor.
	MeanSNR float64
	// FWHMGHz echoes the ring linewidth used.
	FWHMGHz float64
	// AdjacentIsolationDB is the drop-port suppression of the nearest
	// neighbouring channel: 10 log10 D(spacing).
	AdjacentIsolationDB float64
}

// Analyze computes inter-channel crosstalk for every ring signal of a
// design. lrep must come from loss.Analyze on the same design. Shortcut
// channels have dedicated waveguides with at most a handful of
// wavelengths and are treated the same way.
func Analyze(d *router.Design, lrep *loss.Report, p Params) (*Report, error) {
	return AnalyzeWithDrift(d, lrep, p, 0)
}

// AnalyzeWithDrift evaluates the design under a worst-case thermal
// detuning between every receiver ring and its channel: silicon rings
// red-shift by roughly 10 GHz/K, so uncompensated temperature gradients
// detune receivers from their own channel (reducing received power by
// D(drift)) and toward neighbouring channels (raising their leakage,
// modelled worst-case as |k·spacing| − drift). driftGHz = 0 reduces to
// Analyze.
func AnalyzeWithDrift(d *router.Design, lrep *loss.Report, p Params, driftGHz float64) (*Report, error) {
	if driftGHz < 0 {
		return nil, fmt.Errorf("spectral: negative drift %v", driftGHz)
	}
	if lrep == nil || len(lrep.Signals) == 0 {
		return nil, fmt.Errorf("spectral: loss report required")
	}
	if p.Q <= 0 || p.Grid.SpacingGHz <= 0 || p.Grid.CenterTHz <= 0 {
		return nil, fmt.Errorf("spectral: invalid parameters %+v", p)
	}
	mrr := MRRForQ(p.Q, p.Grid)
	rep := &Report{
		Signals:             map[noc.Signal]*SignalNoise{},
		WorstSNR:            math.Inf(1),
		FWHMGHz:             mrr.FWHMGHz,
		AdjacentIsolationDB: phys.LinearToDB(mrr.Drop(p.Grid.SpacingGHz)),
	}

	// Arrival power of a channel at any point near the end of its path:
	// conservatively its power just before the final drop.
	arrival := func(sig noc.Signal) float64 {
		sl := lrep.Signals[sig]
		return lrep.WavelengthPower[sl.WL] * phys.DBToLinear(-(sl.PDNLoss + sl.ILBeforeDrop))
	}
	// Worst-case thermal shift: the receiver moves toward the
	// interferer (and away from its own channel).
	effDet := func(det float64) float64 {
		e := det - driftGHz
		if e < 0 {
			e = -e
		}
		return e
	}

	// Ring waveguides: every channel whose arc passes (or ends at) a
	// node traverses that node's receiver bank.
	for _, w := range d.Waveguides {
		for _, rc := range w.Channels { // rc: the receiving channel
			sn := rep.Signals[rc.Sig]
			if sn == nil {
				sn = &SignalNoise{Sig: rc.Sig, SelfMW: arrival(rc.Sig) * mrr.Drop(driftGHz)}
				rep.Signals[rc.Sig] = sn
			}
			for _, oc := range w.Channels { // oc: a passing channel
				if oc.Sig == rc.Sig {
					continue
				}
				passes := d.PassesNode(oc.Sig.Src, oc.Sig.Dst, rc.Sig.Dst, w.Dir) ||
					oc.Sig.Dst == rc.Sig.Dst
				if !passes {
					continue
				}
				det := p.Grid.DetuningGHz(rc.WL, oc.WL)
				if det == 0 {
					// Same wavelength: the paper's first-order engine
					// (package xtalk) owns this case.
					continue
				}
				sn.InterChannelMW += arrival(oc.Sig) * mrr.Drop(effDet(det))
				sn.Contributors++
			}
		}
	}
	// Shortcut channels: all channels of a shortcut pair share two
	// waveguide ends; receivers see the other channels' leakage.
	for si, s := range d.Shortcuts {
		group := s.Channels
		if s.Partner > si {
			group = append(append([]router.ShortcutChannel{}, group...),
				d.Shortcuts[s.Partner].Channels...)
		}
		for _, rc := range s.Channels {
			sn := rep.Signals[rc.Sig]
			if sn == nil {
				sn = &SignalNoise{Sig: rc.Sig, SelfMW: arrival(rc.Sig) * mrr.Drop(driftGHz)}
				rep.Signals[rc.Sig] = sn
			}
			for _, oc := range group {
				if oc.Sig == rc.Sig {
					continue
				}
				det := p.Grid.DetuningGHz(rc.WL, oc.WL)
				if det == 0 {
					continue
				}
				sn.InterChannelMW += arrival(oc.Sig) * mrr.Drop(effDet(det))
				sn.Contributors++
			}
		}
	}

	// Summaries.
	sum, cnt := 0.0, 0
	for sig, sn := range rep.Signals {
		sn.SNRdB = phys.SNRdB(sn.SelfMW, sn.InterChannelMW)
		if sn.Contributors > 0 {
			sum += sn.SNRdB
			cnt++
		}
		if sn.SNRdB < rep.WorstSNR {
			rep.WorstSNR = sn.SNRdB
			rep.Worst = sig
		}
	}
	if cnt > 0 {
		rep.MeanSNR = sum / float64(cnt)
	} else {
		rep.MeanSNR = math.Inf(1)
	}
	return rep, nil
}

// MinSpacingForSNR returns the smallest channel spacing (GHz, in whole
// grid steps of `stepGHz`) at which the design achieves the target
// worst-case spectral SNR, or an error when even `maxGHz` is not
// enough. It re-runs Analyze over a spacing sweep — a design-space
// exploration helper for choosing the DWDM grid.
func MinSpacingForSNR(d *router.Design, lrep *loss.Report, q, targetDB, stepGHz, maxGHz float64) (float64, error) {
	for spacing := stepGHz; spacing <= maxGHz+1e-9; spacing += stepGHz {
		p := Params{Q: q, Grid: Grid{CenterTHz: 193.4, SpacingGHz: spacing}}
		rep, err := Analyze(d, lrep, p)
		if err != nil {
			return 0, err
		}
		if rep.WorstSNR >= targetDB {
			return spacing, nil
		}
	}
	return 0, fmt.Errorf("spectral: target %0.1f dB unreachable within %.0f GHz spacing", targetDB, maxGHz)
}

// FSRGHz returns the free spectral range of a ring resonator with the
// given circumference (µm): FSR = c / (n_g · L). All wavelength
// channels routed by one physical ring must fit inside one FSR, or the
// ring resonates with more than one of them.
func FSRGHz(circumferenceUM, groupIndex float64) float64 {
	if circumferenceUM <= 0 || groupIndex <= 0 {
		return 0
	}
	const cUMGHz = 299792458e-3 // speed of light in µm·GHz
	return cUMGHz / (groupIndex * circumferenceUM)
}

// MaxChannels returns how many grid channels fit in one FSR.
func MaxChannels(fsrGHz, spacingGHz float64) int {
	if spacingGHz <= 0 {
		return 0
	}
	return int(fsrGHz / spacingGHz)
}

// CheckWavelengthCapacity verifies that the design's wavelength count
// fits inside the FSR of rings with the given circumference (µm) and
// group index. It returns the capacity and an error when the design
// exceeds it — the physical feasibility check for the #wl setting.
func CheckWavelengthCapacity(d *router.Design, p Params, circumferenceUM, groupIndex float64) (int, error) {
	capacity := MaxChannels(FSRGHz(circumferenceUM, groupIndex), p.Grid.SpacingGHz)
	used := d.WavelengthsUsed()
	if used > capacity {
		return capacity, fmt.Errorf("spectral: %d wavelengths used but only %d fit in the %.0f GHz FSR of a %.0f µm ring",
			used, capacity, FSRGHz(circumferenceUM, groupIndex), circumferenceUM)
	}
	return capacity, nil
}

// MaxDriftForSNR returns the largest thermal detuning (GHz, in steps of
// stepGHz) the design tolerates while keeping the target worst-case
// spectral SNR — its thermal budget. Divide by ~10 GHz/K for a
// temperature budget.
func MaxDriftForSNR(d *router.Design, lrep *loss.Report, p Params, targetDB, stepGHz, maxGHz float64) (float64, error) {
	ok := -1.0
	for drift := 0.0; drift <= maxGHz+1e-9; drift += stepGHz {
		rep, err := AnalyzeWithDrift(d, lrep, p, drift)
		if err != nil {
			return 0, err
		}
		if rep.WorstSNR < targetDB {
			break
		}
		ok = drift
	}
	if ok < 0 {
		return 0, fmt.Errorf("spectral: target %.1f dB unmet even without drift", targetDB)
	}
	return ok, nil
}
