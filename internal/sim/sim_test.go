package sim

import (
	"math"
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
)

func synth(t *testing.T) *core.Result {
	t.Helper()
	res, err := core.Synthesize(noc.Floorplan8(), core.Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWRONoCMatchesMD1(t *testing.T) {
	res := synth(t)
	cfg := DefaultConfig(0.5)
	cfg.SimNS = 2_000_000
	cfg.WarmupNS = 100_000
	out, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Saturated {
		t.Fatal("50% load must not saturate dedicated channels")
	}
	want := TheoreticalMD1WaitNS(cfg) // ρS/(2(1-ρ)) = 25.6 ns at ρ=0.5, S=51.2
	// Average the measured mean queue over all flows.
	sum, n := 0.0, 0
	for _, fs := range out.Flows {
		if fs.Delivered > 100 {
			sum += fs.MeanQueueNS
			n++
		}
	}
	got := sum / float64(n)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("mean M/D/1 wait %v ns, closed form %v ns", got, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	res := synth(t)
	cfg := DefaultConfig(0.3)
	a, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTotalNS != b.MeanTotalNS || a.DeliveredGbps != b.DeliveredGbps {
		t.Fatal("same seed must reproduce exactly")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := Run(res.Design, res.Loss, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanTotalNS == a.MeanTotalNS {
		t.Fatal("different seeds should differ")
	}
}

func TestArbitrationCostsLatency(t *testing.T) {
	// The paper's motivating claim: design-time channel reservation
	// beats arbitration. Same traffic, same channel count.
	res := synth(t)
	cfg := DefaultConfig(0.4)
	ded, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := cfg
	cfgA.Mode = ModeArbitrated
	cfgA.SharedChannels = res.Loss.WavelengthCount
	arb, err := Run(res.Design, res.Loss, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	// 56 flows at 40% load over ~8 shared channels is far beyond their
	// capacity: the arbitrated fabric saturates while WRONoC cruises.
	if !arb.Saturated {
		t.Fatal("arbitrated fabric should saturate at this load")
	}
	if ded.Saturated {
		t.Fatal("WRONoC must not saturate")
	}
	if arb.MeanTotalNS <= ded.MeanTotalNS {
		t.Fatalf("arbitrated latency %v ns should exceed WRONoC %v ns",
			arb.MeanTotalNS, ded.MeanTotalNS)
	}
	if arb.DeliveredGbps >= ded.DeliveredGbps {
		t.Fatalf("arbitrated goodput %v should fall below WRONoC %v",
			arb.DeliveredGbps, ded.DeliveredGbps)
	}
}

func TestArbitratedWithAmpleChannels(t *testing.T) {
	// Give the arbitrated fabric one channel per flow: only the
	// arbitration overhead separates it from WRONoC.
	res := synth(t)
	cfg := DefaultConfig(0.3)
	ded, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := cfg
	cfgA.Mode = ModeArbitrated
	cfgA.SharedChannels = 56
	arb, err := Run(res.Design, res.Loss, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if arb.Saturated {
		t.Fatal("56 channels for 56 flows must not saturate")
	}
	// With one channel per flow, channel POOLING (any packet may grab
	// any free channel) can offset the arbitration overhead — a fair
	// outcome; the means must stay within one M/D/1 wait plus the
	// overhead of each other.
	bound := TheoreticalMD1WaitNS(cfg) + 2*cfgA.ArbitrationNS
	if math.Abs(arb.MeanTotalNS-ded.MeanTotalNS) > bound {
		t.Fatalf("gap too large: %v vs %v (bound %v)", arb.MeanTotalNS, ded.MeanTotalNS, bound)
	}
}

func TestThroughputMatchesOfferedLoad(t *testing.T) {
	res := synth(t)
	cfg := DefaultConfig(0.25)
	cfg.SimNS = 1_000_000
	cfg.WarmupNS = 100_000
	out, err := Run(res.Design, res.Loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.DeliveredGbps-out.OfferedGbps)/out.OfferedGbps > 0.1 {
		t.Fatalf("delivered %v Gb/s vs offered %v Gb/s", out.DeliveredGbps, out.OfferedGbps)
	}
}

func TestLatencyLoadCurveMonotone(t *testing.T) {
	// The classic NoC latency-load curve: monotone increasing.
	res := synth(t)
	prev := 0.0
	for _, load := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := DefaultConfig(load)
		out, err := Run(res.Design, res.Loss, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.MeanTotalNS <= prev {
			t.Fatalf("latency should grow with load: %v ns at %v", out.MeanTotalNS, load)
		}
		prev = out.MeanTotalNS
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	res := synth(t)
	for _, cfg := range []Config{
		{Load: 0, LineRateGbps: 10, PacketBits: 512, SimNS: 1000},
		{Load: 1.2, LineRateGbps: 10, PacketBits: 512, SimNS: 1000},
		{Load: 0.5, LineRateGbps: 0, PacketBits: 512, SimNS: 1000},
		{Load: 0.5, LineRateGbps: 10, PacketBits: 512, SimNS: 1000, WarmupNS: 2000},
	} {
		if _, err := Run(res.Design, res.Loss, cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	if _, err := Run(res.Design, nil, DefaultConfig(0.5)); err == nil {
		t.Fatal("want error without loss report")
	}
}
