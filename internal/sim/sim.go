// Package sim is a discrete-event transmission simulator for
// synthesized routers. It quantifies the paper's core motivation
// (Sec. I): WRONoCs reserve collision-free wavelength channels at
// design time, so "communications between different network nodes can
// happen simultaneously without wasting energy and time on
// arbitration".
//
// Two service models share one traffic generator:
//
//   - ModeWRONoC: every signal owns its (waveguide, wavelength) channel.
//     Packets queue only behind their own flow's modulator (an M/D/1
//     queue per flow) and then fly to the receiver at the speed of
//     light in the waveguide. No arbitration, no interaction between
//     flows — which is exactly what the synthesized design guarantees
//     (the router validator proves the static channel exclusivity).
//
//   - ModeArbitrated: the same traffic contends for a pool of K shared
//     channels (an electrical-NoC-like arbitrated fabric, or an optical
//     bus with K wavelengths and central arbitration). Packets wait in
//     a global FIFO for a free channel; per-grant arbitration overhead
//     applies. This is the baseline the paper's introduction argues
//     against.
//
// Traffic is Poisson per flow with deterministic packet service times,
// so the WRONoC mode can be validated against the closed-form M/D/1
// waiting time Wq = ρ·S / (2(1−ρ)).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/perf"
	"xring/internal/router"
)

// Mode selects the service model.
type Mode int

const (
	// ModeWRONoC uses the design's dedicated wavelength channels.
	ModeWRONoC Mode = iota
	// ModeArbitrated contends for a shared channel pool.
	ModeArbitrated
)

func (m Mode) String() string {
	if m == ModeWRONoC {
		return "wronoc"
	}
	return "arbitrated"
}

// Config parameterizes a simulation run.
type Config struct {
	Mode Mode
	// Seed drives the traffic generator (deterministic runs).
	Seed int64
	// LineRateGbps is the per-channel modulation rate.
	LineRateGbps float64
	// PacketBits is the fixed packet size.
	PacketBits int
	// Load is the offered load per flow as a fraction of one channel's
	// line rate (0, 1).
	Load float64
	// SimNS is the simulated time horizon in nanoseconds.
	SimNS float64
	// WarmupNS discards the initial transient from the statistics.
	WarmupNS float64
	// SharedChannels is the channel-pool size for ModeArbitrated
	// (default: the design's wavelength count).
	SharedChannels int
	// ArbitrationNS is the per-grant arbitration overhead for
	// ModeArbitrated.
	ArbitrationNS float64
	// Perf supplies the flight-latency model.
	Perf perf.Params
}

// DefaultConfig returns a 10 Gb/s, 512-bit-packet configuration at the
// given per-flow load.
func DefaultConfig(load float64) Config {
	return Config{
		Seed:          1,
		LineRateGbps:  10,
		PacketBits:    512,
		Load:          load,
		SimNS:         200_000,
		WarmupNS:      20_000,
		ArbitrationNS: 5,
		Perf:          perf.DefaultParams(),
	}
}

// FlowStats aggregates one flow's results.
type FlowStats struct {
	Sig       noc.Signal
	Sent      int
	Delivered int
	// MeanQueueNS is the average wait before the modulator (or the
	// shared-channel grant), MeanTotalNS the full packet latency
	// (queue + serialization + flight).
	MeanQueueNS float64
	MeanTotalNS float64
	// P99TotalNS is the 99th-percentile total latency.
	P99TotalNS float64
	// ThroughputGbps is the delivered goodput after warmup.
	ThroughputGbps float64
}

// Result is a simulation outcome.
type Result struct {
	Mode  Mode
	Flows map[noc.Signal]*FlowStats
	// MeanTotalNS / P99TotalNS aggregate over all delivered packets.
	MeanTotalNS float64
	P99TotalNS  float64
	// DeliveredGbps is the network goodput after warmup.
	DeliveredGbps float64
	// OfferedGbps is the total offered load.
	OfferedGbps float64
	// Saturated reports whether any queue was still growing at the end
	// (offered load above capacity).
	Saturated bool
}

// Run simulates the design under the configuration.
func Run(d *router.Design, lrep *loss.Report, cfg Config) (*Result, error) {
	if lrep == nil || len(lrep.Signals) == 0 {
		return nil, fmt.Errorf("sim: loss report required (run the analyses first)")
	}
	if cfg.Load <= 0 || cfg.Load >= 1 {
		return nil, fmt.Errorf("sim: load %v out of (0,1)", cfg.Load)
	}
	if cfg.LineRateGbps <= 0 || cfg.PacketBits <= 0 || cfg.SimNS <= 0 {
		return nil, fmt.Errorf("sim: invalid config %+v", cfg)
	}
	if cfg.WarmupNS >= cfg.SimNS {
		return nil, fmt.Errorf("sim: warmup %v >= horizon %v", cfg.WarmupNS, cfg.SimNS)
	}

	serviceNS := float64(cfg.PacketBits) / cfg.LineRateGbps // bits / (bits/ns)
	meanInterNS := serviceNS / cfg.Load
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Flight latency per flow from the loss report's exact path lengths.
	flight := map[noc.Signal]float64{}
	speedPSPerMM := cfg.Perf.GroupIndex / 0.299792458
	for sig, sl := range lrep.Signals {
		flight[sig] = (sl.PathLen*speedPSPerMM + cfg.Perf.ConversionPS) / 1000 // ps -> ns
	}

	flows := make([]noc.Signal, 0, len(lrep.Signals))
	for sig := range lrep.Signals {
		flows = append(flows, sig)
	}
	noc.SortSignals(flows)

	switch cfg.Mode {
	case ModeWRONoC:
		return runDedicated(flows, flight, serviceNS, meanInterNS, rng, cfg)
	case ModeArbitrated:
		return runArbitrated(d, flows, flight, serviceNS, meanInterNS, rng, cfg)
	default:
		return nil, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
}

// runDedicated simulates independent M/D/1 queues: WRONoC's dedicated
// channels decouple every flow.
func runDedicated(flows []noc.Signal, flight map[noc.Signal]float64,
	serviceNS, meanInterNS float64, rng *rand.Rand, cfg Config) (*Result, error) {
	res := &Result{Mode: ModeWRONoC, Flows: map[noc.Signal]*FlowStats{}}
	var allTotals []float64
	deliveredBits := 0.0
	for _, sig := range flows {
		fs := &FlowStats{Sig: sig}
		res.Flows[sig] = fs
		var totals []float64
		queueSum := 0.0
		t := 0.0          // arrival clock
		serverFree := 0.0 // modulator free time
		for {
			t += rng.ExpFloat64() * meanInterNS
			if t > cfg.SimNS {
				break
			}
			fs.Sent++
			start := math.Max(t, serverFree)
			serverFree = start + serviceNS
			done := serverFree + flight[sig]
			if t >= cfg.WarmupNS && done <= cfg.SimNS {
				fs.Delivered++
				queueSum += start - t
				totals = append(totals, done-t)
				deliveredBits += float64(cfg.PacketBits)
			}
		}
		if serverFree > cfg.SimNS+10*serviceNS {
			res.Saturated = true
		}
		finalize(fs, totals, queueSum, cfg)
		allTotals = append(allTotals, totals...)
	}
	summarize(res, allTotals, deliveredBits, float64(len(flows)), cfg)
	return res, nil
}

// grantHeap orders pending shared-channel grants by request time.
type event struct {
	at  float64
	idx int // flow index
}
type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// runArbitrated simulates the shared-channel baseline: all arrivals
// join one FIFO served by K channels with per-grant arbitration
// overhead.
func runArbitrated(d *router.Design, flows []noc.Signal, flight map[noc.Signal]float64,
	serviceNS, meanInterNS float64, rng *rand.Rand, cfg Config) (*Result, error) {
	k := cfg.SharedChannels
	if k <= 0 {
		k = d.WavelengthsUsed()
	}
	if k <= 0 {
		return nil, fmt.Errorf("sim: no shared channels")
	}

	// Generate all arrivals up front (per-flow Poisson), then merge.
	arrivals := &eventHeap{}
	heap.Init(arrivals)
	for i := range flows {
		t := rng.ExpFloat64() * meanInterNS
		for t <= cfg.SimNS {
			heap.Push(arrivals, event{at: t, idx: i})
			t += rng.ExpFloat64() * meanInterNS
		}
	}

	res := &Result{Mode: ModeArbitrated, Flows: map[noc.Signal]*FlowStats{}}
	perFlowTotals := make([][]float64, len(flows))
	perFlowQueue := make([]float64, len(flows))
	for i, sig := range flows {
		res.Flows[sig] = &FlowStats{Sig: sig}
		_ = i
	}

	channelFree := make([]float64, k) // next-free time per channel
	var allTotals []float64
	deliveredBits := 0.0
	for arrivals.Len() > 0 {
		ev := heap.Pop(arrivals).(event)
		sig := flows[ev.idx]
		fs := res.Flows[sig]
		fs.Sent++
		// Earliest-free channel.
		ch := 0
		for c := 1; c < k; c++ {
			if channelFree[c] < channelFree[ch] {
				ch = c
			}
		}
		start := math.Max(ev.at, channelFree[ch]) + cfg.ArbitrationNS
		channelFree[ch] = start + serviceNS
		done := channelFree[ch] + flight[sig]
		if ev.at >= cfg.WarmupNS && done <= cfg.SimNS {
			fs.Delivered++
			perFlowQueue[ev.idx] += start - ev.at
			perFlowTotals[ev.idx] = append(perFlowTotals[ev.idx], done-ev.at)
			allTotals = append(allTotals, done-ev.at)
			deliveredBits += float64(cfg.PacketBits)
		}
	}
	for c := 0; c < k; c++ {
		if channelFree[c] > cfg.SimNS+10*serviceNS {
			res.Saturated = true
		}
	}
	for i, sig := range flows {
		finalize(res.Flows[sig], perFlowTotals[i], perFlowQueue[i], cfg)
	}
	summarize(res, allTotals, deliveredBits, float64(len(flows)), cfg)
	return res, nil
}

func finalize(fs *FlowStats, totals []float64, queueSum float64, cfg Config) {
	if fs.Delivered == 0 {
		return
	}
	sum := 0.0
	for _, v := range totals {
		sum += v
	}
	fs.MeanTotalNS = sum / float64(len(totals))
	fs.MeanQueueNS = queueSum / float64(fs.Delivered)
	fs.P99TotalNS = percentile(totals, 0.99)
	window := cfg.SimNS - cfg.WarmupNS
	fs.ThroughputGbps = float64(fs.Delivered) * float64(cfg.PacketBits) / window
}

func summarize(res *Result, allTotals []float64, deliveredBits, nFlows float64, cfg Config) {
	if len(allTotals) > 0 {
		sum := 0.0
		for _, v := range allTotals {
			sum += v
		}
		res.MeanTotalNS = sum / float64(len(allTotals))
		res.P99TotalNS = percentile(allTotals, 0.99)
	}
	window := cfg.SimNS - cfg.WarmupNS
	res.DeliveredGbps = deliveredBits / window
	res.OfferedGbps = nFlows * cfg.Load * cfg.LineRateGbps
}

func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// TheoreticalMD1WaitNS returns the closed-form M/D/1 mean waiting time
// for the configuration: Wq = ρ·S / (2(1−ρ)).
func TheoreticalMD1WaitNS(cfg Config) float64 {
	s := float64(cfg.PacketBits) / cfg.LineRateGbps
	return cfg.Load * s / (2 * (1 - cfg.Load))
}
