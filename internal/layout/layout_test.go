package layout

import (
	"math"
	"strings"
	"testing"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/noc"
)

func build(t *testing.T, opt core.Options) (*core.Result, *Layout) {
	t.Helper()
	res, err := core.Synthesize(noc.Floorplan8(), opt)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Build(res.Design)
	if err != nil {
		t.Fatal(err)
	}
	return res, l
}

func TestBuildTreeDesign(t *testing.T) {
	res, l := build(t, core.Options{MaxWL: 8, WithPDN: true})
	if len(l.Waveguides) != len(res.Design.Waveguides) {
		t.Fatalf("realized %d of %d waveguides", len(l.Waveguides), len(res.Design.Waveguides))
	}
	for i, w := range l.Waveguides {
		dw := res.Design.Waveguides[i]
		if w.ID != dw.ID || w.Radial != dw.Radial {
			t.Fatalf("waveguide %d metadata mismatch", i)
		}
		// Tree designs have openings: every path is open and shorter
		// than the full (scaled) ring by exactly the gap.
		if !w.Open {
			t.Fatalf("waveguide %d should carry an opening gap", w.ID)
		}
		off := res.Design.Par.RingSpacingMM(8)*float64(w.Radial/2) +
			IntraPairPitchMM*float64(w.Radial%2)
		full := res.Design.Perimeter() + 8*off
		if math.Abs(w.Length-(full-l.GapMM)) > 1e-6 {
			t.Fatalf("waveguide %d length %.6f, want %.6f", w.ID, w.Length, full-l.GapMM)
		}
		// The path is rectilinear.
		for _, s := range w.Path.Segments() {
			if !s.AxisAligned() {
				t.Fatalf("waveguide %d has a diagonal segment %v", w.ID, s)
			}
		}
	}
	if len(l.Shortcuts) != len(res.Design.Shortcuts) {
		t.Fatal("shortcut count mismatch")
	}
	if len(l.Taps) == 0 {
		t.Fatal("no taps realized")
	}
	// Every tap sits on (or extremely near) its waveguide's path.
	byID := map[int]*Waveguide{}
	for _, w := range l.Waveguides {
		byID[w.ID] = w
	}
	for _, tap := range l.Taps {
		w := byID[tap.WG]
		on := false
		for _, s := range w.Path.Segments() {
			if s.ContainsPoint(tap.Pos) {
				on = true
				break
			}
		}
		if !on {
			// The tap may fall inside the opening gap; allow proximity
			// to either gap endpoint then.
			if geom.Euclid(tap.Pos, w.Path.Start()) > l.GapMM &&
				geom.Euclid(tap.Pos, w.Path.End()) > l.GapMM {
				t.Fatalf("tap %+v not on waveguide %d", tap, tap.WG)
			}
		}
	}
}

func TestBuildClosedWithoutOpenings(t *testing.T) {
	res, l := build(t, core.Options{MaxWL: 8}) // no PDN: no openings
	for _, w := range l.Waveguides {
		if w.Open {
			t.Fatalf("waveguide %d unexpectedly open", w.ID)
		}
		if !w.Path.Start().Eq(w.Path.End()) {
			t.Fatalf("closed waveguide %d does not close", w.ID)
		}
		// Exact identity with the analytical model.
		want := res.Design.Perimeter()*res.Design.RadialScale(res.Design.Waveguides[w.ID]) +
			8*IntraPairPitchMM*float64(w.Radial%2)
		if math.Abs(w.Length-want) > 1e-6 {
			t.Fatalf("waveguide %d length %.6f, want %.6f", w.ID, w.Length, want)
		}
	}
}

func TestNetlistFormat(t *testing.T) {
	_, l := build(t, core.Options{MaxWL: 8, WithPDN: true})
	nl := l.Netlist()
	if strings.Count(nl, "WAVEGUIDE ") != len(l.Waveguides) {
		t.Fatal("WAVEGUIDE lines mismatch")
	}
	if strings.Count(nl, "TAP ") != len(l.Taps) {
		t.Fatal("TAP lines mismatch")
	}
	if strings.Count(nl, "SHORTCUT") != len(l.Shortcuts) {
		t.Fatal("SHORTCUT lines mismatch")
	}
	if !strings.Contains(nl, " open ") {
		t.Fatal("open waveguides not marked")
	}
}

func TestCutGapGeometry(t *testing.T) {
	square := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}
	// Gap centred mid-bottom.
	path, err := cutGap(square, geom.Point{X: 2, Y: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(path.Length()-15) > 1e-9 {
		t.Fatalf("gapped length %.6f, want 15", path.Length())
	}
	if !path.Start().Eq(geom.Point{X: 2.5, Y: 0}) || !path.End().Eq(geom.Point{X: 1.5, Y: 0}) {
		t.Fatalf("gap edges %v .. %v", path.Start(), path.End())
	}
	// Gap spanning a corner.
	path, err = cutGap(square, geom.Point{X: 4, Y: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(path.Length()-14) > 1e-9 {
		t.Fatalf("corner-gapped length %.6f, want 14", path.Length())
	}
	// Oversized gap fails.
	if _, err := cutGap(square, geom.Point{X: 2, Y: 0}, 99); err == nil {
		t.Fatal("want error for oversized gap")
	}
}

func TestNearestOnPolygon(t *testing.T) {
	square := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}
	if p := nearestOnPolygon(square, geom.Point{X: 2, Y: -1}); !p.Eq(geom.Point{X: 2, Y: 0}) {
		t.Fatalf("projection = %v", p)
	}
	if p := nearestOnPolygon(square, geom.Point{X: 5, Y: 5}); !p.Eq(geom.Point{X: 4, Y: 4}) {
		t.Fatalf("corner projection = %v", p)
	}
	// Interior points project to the boundary.
	p := nearestOnPolygon(square, geom.Point{X: 1, Y: 2})
	if !p.Eq(geom.Point{X: 0, Y: 2}) {
		t.Fatalf("interior projection = %v", p)
	}
}
