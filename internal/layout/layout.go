// Package layout produces the physical realization of a synthesized
// design: every ring waveguide as a concrete rectilinear path at its
// radial offset — with the Step-3 opening cut out of it — plus the tap
// point where each node's sender/receiver bank couples to each
// waveguide, and the shortcut paths. The result can be rendered
// (detailed SVG) or exported as a simple text netlist for downstream
// mask tooling.
//
// Geometry: waveguide pair k sits at outward offset k·s from the base
// tour (s = the Sec. III-D corridor spacing), the two pair members
// separated by a small intra-pair pitch. Rectilinear outward offsets
// grow the perimeter by exactly 8·offset (convex minus reflex corners
// is always 4), which is the identity the analytical model
// (router.Design.RadialScale) relies on — Build asserts it.
package layout

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"xring/internal/geom"
	"xring/internal/router"
)

// IntraPairPitchMM separates the two waveguides of a radial pair.
const IntraPairPitchMM = 0.01

// Waveguide is one physically realized ring waveguide.
type Waveguide struct {
	ID     int
	Dir    router.Direction
	Radial int
	// Path is the realized waveguide: an open polyline when an opening
	// gap was cut, a closed one (first point repeated) otherwise.
	Path geom.Polyline
	// Open reports whether the path has an opening gap.
	Open bool
	// Length is the realized waveguide length (excluding the gap).
	Length float64
}

// Tap is a node's coupling point on a waveguide.
type Tap struct {
	Node int
	WG   int
	Pos  geom.Point
}

// Layout is the physical realization of a design.
type Layout struct {
	Waveguides []*Waveguide
	Taps       []Tap
	Shortcuts  []geom.Polyline
	// GapMM is the opening gap width used.
	GapMM float64
}

// Build realizes the design. It fails when a radial offset is not
// constructible (deeply notched tours limit the stack) — the same
// physical limit the waveguide cap models.
func Build(d *router.Design) (*Layout, error) {
	ringPl := d.RingPolyline()
	base := geom.CompactRectilinear(ringPl[:len(ringPl)-1])
	if len(base) < 4 {
		return nil, fmt.Errorf("layout: degenerate base ring")
	}
	spacing := d.Par.RingSpacingMM(d.N())
	gap := 2 * d.Par.ModulatorWidthMM
	out := &Layout{GapMM: gap}

	for _, w := range d.Waveguides {
		off := spacing*float64(w.Radial/2) + IntraPairPitchMM*float64(w.Radial%2)
		poly := base
		if off > 0 {
			var err error
			poly, err = geom.OffsetRectilinear(base, off)
			if err != nil {
				return nil, fmt.Errorf("layout: waveguide %d (radial %d): %w", w.ID, w.Radial, err)
			}
		}
		// Identity check against the analytical model (the intra-pair
		// pitch is a modelling epsilon).
		wantLen := d.Perimeter() + 8*off
		if math.Abs(geom.PolygonPerimeter(poly)-wantLen) > 1e-6 {
			return nil, fmt.Errorf("layout: waveguide %d perimeter %.6f != identity %.6f",
				w.ID, geom.PolygonPerimeter(poly), wantLen)
		}

		lw := &Waveguide{ID: w.ID, Dir: w.Dir, Radial: w.Radial}
		if w.Opening >= 0 {
			tap := nearestOnPolygon(poly, d.Net.Nodes[w.Opening].Pos)
			path, err := cutGap(poly, tap, gap)
			if err != nil {
				return nil, fmt.Errorf("layout: waveguide %d: %w", w.ID, err)
			}
			lw.Path = path
			lw.Open = true
			lw.Length = path.Length()
		} else {
			closed := append(geom.Polyline{}, poly...)
			closed = append(closed, poly[0])
			lw.Path = closed
			lw.Length = closed.Length()
		}
		out.Waveguides = append(out.Waveguides, lw)

		// Taps: every node with a sender or receiver on this waveguide.
		touched := map[int]bool{}
		for _, c := range w.Channels {
			touched[c.Sig.Src] = true
			touched[c.Sig.Dst] = true
		}
		for _, node := range d.Tour {
			if touched[node] {
				out.Taps = append(out.Taps, Tap{
					Node: node, WG: w.ID,
					Pos: nearestOnPolygon(poly, d.Net.Nodes[node].Pos),
				})
			}
		}
	}
	for _, s := range d.Shortcuts {
		out.Shortcuts = append(out.Shortcuts, s.PathAB)
	}
	return out, nil
}

// nearestOnPolygon projects a point onto the closest point of the
// polygon boundary.
func nearestOnPolygon(poly []geom.Point, p geom.Point) geom.Point {
	best := poly[0]
	bestD := math.Inf(1)
	n := len(poly)
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		q := projectOnSegment(a, b, p)
		if d := geom.Euclid(p, q); d < bestD {
			bestD = d
			best = q
		}
	}
	return best
}

// projectOnSegment clamps the perpendicular projection of p onto the
// axis-aligned segment a-b.
func projectOnSegment(a, b, p geom.Point) geom.Point {
	if math.Abs(a.Y-b.Y) <= geom.Eps { // horizontal
		x := math.Max(math.Min(a.X, b.X), math.Min(math.Max(a.X, b.X), p.X))
		return geom.Point{X: x, Y: a.Y}
	}
	y := math.Max(math.Min(a.Y, b.Y), math.Min(math.Max(a.Y, b.Y), p.Y))
	return geom.Point{X: a.X, Y: y}
}

// cutGap removes a gap of the given width centred at the tap point and
// returns the remaining open polyline, walked from one gap edge around
// to the other.
func cutGap(poly []geom.Point, tap geom.Point, gapMM float64) (geom.Polyline, error) {
	per := geom.PolygonPerimeter(poly)
	if gapMM >= per {
		return nil, fmt.Errorf("gap %.3f mm exceeds the ring perimeter %.3f mm", gapMM, per)
	}
	// Cumulative walk coordinates.
	n := len(poly)
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + geom.Manhattan(poly[i], poly[(i+1)%n])
	}
	tapC := coordOf(poly, cum, tap)
	start := math.Mod(tapC+gapMM/2, per)
	end := math.Mod(tapC-gapMM/2+per, per)

	span := end - start
	if span <= 0 {
		span += per
	}
	// Collect the polygon vertices strictly inside (start, start+span),
	// ordered by their walk offset from start.
	type vtx struct {
		off float64
		p   geom.Point
	}
	var inside []vtx
	for j := 0; j < n; j++ {
		off := math.Mod(cum[j]-start+per, per)
		if off > geom.Eps && off < span-geom.Eps {
			inside = append(inside, vtx{off, poly[j]})
		}
	}
	sort.Slice(inside, func(a, b int) bool { return inside[a].off < inside[b].off })

	var path geom.Polyline
	path = append(path, pointAt(poly, cum, start))
	for _, v := range inside {
		path = append(path, v.p)
	}
	path = append(path, pointAt(poly, cum, end))
	return path, nil
}

// coordOf returns the walk coordinate of a point on the polygon.
func coordOf(poly []geom.Point, cum []float64, p geom.Point) float64 {
	n := len(poly)
	for i := 0; i < n; i++ {
		s := geom.Segment{A: poly[i], B: poly[(i+1)%n]}
		if s.ContainsPoint(p) {
			return cum[i] + geom.Manhattan(poly[i], p)
		}
	}
	return 0
}

// pointAt returns the point at walk coordinate c.
func pointAt(poly []geom.Point, cum []float64, c float64) geom.Point {
	n := len(poly)
	per := cum[n]
	c = math.Mod(c+per, per)
	for i := 0; i < n; i++ {
		if c <= cum[i+1]+geom.Eps {
			rem := c - cum[i]
			a, b := poly[i], poly[(i+1)%n]
			if math.Abs(a.Y-b.Y) <= geom.Eps { // horizontal
				dir := 1.0
				if b.X < a.X {
					dir = -1
				}
				return geom.Point{X: a.X + dir*rem, Y: a.Y}
			}
			dir := 1.0
			if b.Y < a.Y {
				dir = -1
			}
			return geom.Point{X: a.X, Y: a.Y + dir*rem}
		}
	}
	return poly[0]
}

// Netlist exports the layout in a simple line-oriented text format:
//
//	WAVEGUIDE <id> <dir> <open|closed> <len-mm> x1,y1 x2,y2 ...
//	TAP <node> <wg> x,y
//	SHORTCUT x1,y1 x2,y2 ...
func (l *Layout) Netlist() string {
	var b strings.Builder
	for _, w := range l.Waveguides {
		state := "closed"
		if w.Open {
			state = "open"
		}
		fmt.Fprintf(&b, "WAVEGUIDE %d %s %s %.4f", w.ID, w.Dir, state, w.Length)
		for _, p := range w.Path {
			fmt.Fprintf(&b, " %.4f,%.4f", p.X, p.Y)
		}
		b.WriteByte('\n')
	}
	for _, t := range l.Taps {
		fmt.Fprintf(&b, "TAP %d %d %.4f,%.4f\n", t.Node, t.WG, t.Pos.X, t.Pos.Y)
	}
	for _, s := range l.Shortcuts {
		b.WriteString("SHORTCUT")
		for _, p := range s {
			fmt.Fprintf(&b, " %.4f,%.4f", p.X, p.Y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
