// Package placement closes the loop the paper's reference [20]
// (PSION+) opens: when the floorplanner still has slack, the node
// positions themselves are a design variable. Optimize perturbs node
// positions inside their allowed region and re-runs the XRing flow,
// keeping moves that improve the chosen objective — combining logical
// topology and physical layout optimization on top of the Step 1-4
// synthesis.
//
// The optimizer is a deterministic hill climber with per-node move
// proposals: simple, reproducible, and effective at the scale of
// WRONoC floorplans (tens of nodes). Each accepted move is recorded in
// a trace for inspection.
package placement

import (
	"fmt"
	"math"
	"math/rand"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/noc"
)

// Objective selects what the optimizer minimizes.
type Objective int

const (
	// MinWorstIL minimizes the worst-case insertion loss.
	MinWorstIL Objective = iota
	// MinPower minimizes the total laser power.
	MinPower
)

func (o Objective) String() string {
	if o == MinWorstIL {
		return "min-il"
	}
	return "min-power"
}

// Options tunes the optimizer.
type Options struct {
	// Objective to minimize.
	Objective Objective
	// Synth configures the inner synthesis runs (MaxWL etc.).
	Synth core.Options
	// Iterations is the number of move proposals (default 100).
	Iterations int
	// StepMM is the maximum per-axis perturbation per move (default 1).
	StepMM float64
	// MinSpacingMM is the minimum pairwise node distance to respect
	// (default 1).
	MinSpacingMM float64
	// MarginMM keeps nodes away from the die edge (default 0.5).
	MarginMM float64
	// Seed drives the proposal sequence.
	Seed int64
}

// Move records one accepted improvement.
type Move struct {
	Iteration int
	Node      int
	From, To  geom.Point
	Score     float64
}

// Trace is the optimization history.
type Trace struct {
	Initial float64
	Final   float64
	Moves   []Move
	// Evaluated counts synthesis runs (accepted + rejected proposals).
	Evaluated int
}

// Optimize hill-climbs the node placement. It returns the improved
// network (a copy — the input is untouched), the synthesis result at
// the final placement, and the trace.
func Optimize(net *noc.Network, opt Options) (*noc.Network, *core.Result, *Trace, error) {
	if opt.Iterations == 0 {
		opt.Iterations = 100
	}
	if opt.StepMM == 0 {
		opt.StepMM = 1
	}
	if opt.MinSpacingMM == 0 {
		opt.MinSpacingMM = 1
	}
	if opt.MarginMM == 0 {
		opt.MarginMM = 0.5
	}
	cur := cloneNetwork(net)
	rng := rand.New(rand.NewSource(opt.Seed))

	best, err := core.Synthesize(cur, opt.Synth)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("placement: initial synthesis: %w", err)
	}
	score := objective(best, opt.Objective)
	trace := &Trace{Initial: score, Evaluated: 1}

	for it := 0; it < opt.Iterations; it++ {
		node := rng.Intn(cur.N())
		dx := (rng.Float64()*2 - 1) * opt.StepMM
		dy := (rng.Float64()*2 - 1) * opt.StepMM
		cand := cloneNetwork(cur)
		p := cand.Nodes[node].Pos
		p.X = clamp(p.X+dx, opt.MarginMM, cand.DieW-opt.MarginMM)
		p.Y = clamp(p.Y+dy, opt.MarginMM, cand.DieH-opt.MarginMM)
		cand.Nodes[node].Pos = p
		if !spacedEnough(cand, node, opt.MinSpacingMM) {
			continue
		}
		res, err := core.Synthesize(cand, opt.Synth)
		trace.Evaluated++
		if err != nil {
			continue
		}
		s := objective(res, opt.Objective)
		if s < score-1e-12 {
			trace.Moves = append(trace.Moves, Move{
				Iteration: it, Node: node,
				From: cur.Nodes[node].Pos, To: p, Score: s,
			})
			cur = cand
			best = res
			score = s
		}
	}
	trace.Final = score
	return cur, best, trace, nil
}

func objective(res *core.Result, o Objective) float64 {
	if o == MinPower {
		return res.Loss.TotalPowerMW
	}
	return res.Loss.WorstIL
}

func cloneNetwork(net *noc.Network) *noc.Network {
	out := &noc.Network{DieW: net.DieW, DieH: net.DieH}
	out.Nodes = append([]noc.Node(nil), net.Nodes...)
	return out
}

func spacedEnough(net *noc.Network, moved int, minSpacing float64) bool {
	p := net.Nodes[moved].Pos
	for i, n := range net.Nodes {
		if i == moved {
			continue
		}
		if geom.Manhattan(p, n.Pos) < minSpacing {
			return false
		}
	}
	return true
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
