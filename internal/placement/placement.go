// Package placement closes the loop the paper's reference [20]
// (PSION+) opens: when the floorplanner still has slack, the node
// positions themselves are a design variable. Optimize perturbs node
// positions inside their allowed region and re-runs the XRing flow,
// keeping moves that improve the chosen objective — combining logical
// topology and physical layout optimization on top of the Step 1-4
// synthesis.
//
// The optimizer is a deterministic round-based hill climber: every
// round draws a batch of per-node move proposals from the seeded
// generator, evaluates all of them against the incumbent placement —
// concurrently on the shared worker pool unless Options.Serial is set —
// and applies the best improving move, with ties broken by proposal
// index. The proposal sequence depends only on Seed and the option
// values, never on worker count or completion order, so serial and
// parallel runs walk the identical trajectory. Each accepted move is
// recorded in a trace for inspection.
package placement

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"xring/internal/core"
	"xring/internal/delta"
	"xring/internal/geom"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
)

// Search telemetry: proposals drawn and evaluated, moves accepted, and
// proposals rejected by the spacing check before evaluation.
var (
	mProposals      = obs.NewCounter("placement.proposals")
	mAccepted       = obs.NewCounter("placement.accepted")
	mSpacingRejects = obs.NewCounter("placement.spacing_rejects")
)

// Objective selects what the optimizer minimizes.
type Objective int

const (
	// MinWorstIL minimizes the worst-case insertion loss.
	MinWorstIL Objective = iota
	// MinPower minimizes the total laser power.
	MinPower
)

func (o Objective) String() string {
	if o == MinWorstIL {
		return "min-il"
	}
	return "min-power"
}

// Options tunes the optimizer.
type Options struct {
	// Objective to minimize.
	Objective Objective
	// Synth configures the inner synthesis runs (MaxWL etc.). Its
	// Serial flag also forces this optimizer to evaluate each round's
	// proposals sequentially.
	Synth core.Options
	// Iterations is the total number of move proposals (default 100).
	Iterations int
	// ProposalsPerRound is how many proposals each round draws and
	// evaluates against the same incumbent placement (default 8). The
	// trajectory depends on this value, but not on worker count.
	ProposalsPerRound int
	// StepMM is the maximum per-axis perturbation per move (default 1).
	StepMM float64
	// MinSpacingMM is the minimum pairwise node distance to respect
	// (default 1).
	MinSpacingMM float64
	// MarginMM keeps nodes away from the die edge (default 0.5).
	MarginMM float64
	// Seed drives the proposal sequence.
	Seed int64
	// Delta scores proposals with the incremental evaluation engine
	// (internal/delta) instead of a full re-synthesis per proposal: the
	// structure synthesized at the initial placement is held fixed while
	// the search moves nodes, and only the move's dirty subset of the
	// loss/crosstalk analyses is recomputed. The returned Result is a
	// fresh full synthesis at the final placement. The search trajectory
	// can differ from full mode, which re-synthesizes (and may therefore
	// restructure) at every proposal.
	Delta bool
	// DeltaCrossCheckEvery sets the evaluator's full-recompute
	// cross-check cadence (0 = the delta package default, negative
	// disables). Only meaningful with Delta.
	DeltaCrossCheckEvery int
}

// Move records one accepted improvement.
type Move struct {
	Iteration int
	Node      int
	From, To  geom.Point
	Score     float64
}

// Trace is the optimization history.
type Trace struct {
	Initial float64
	Final   float64
	Moves   []Move
	// Evaluated counts scoring runs: the initial synthesis, every
	// proposal evaluation (full synthesis or delta evaluation), and in
	// delta mode the final synthesis.
	Evaluated int
	// ProposalsEvaluated counts proposal evaluations only — the hot
	// loop the benchmarks track.
	ProposalsEvaluated int
	// EvalTime is the wall time spent evaluating proposals.
	EvalTime time.Duration
}

// EvalRate returns the proposal-evaluation throughput in proposals per
// second (0 when nothing was evaluated).
func (t *Trace) EvalRate() float64 {
	if t.EvalTime <= 0 || t.ProposalsEvaluated == 0 {
		return 0
	}
	return float64(t.ProposalsEvaluated) / t.EvalTime.Seconds()
}

// proposal is one candidate move, drawn before a round is evaluated.
type proposal struct {
	node int
	to   geom.Point
}

// Optimize hill-climbs the node placement. It returns the improved
// network (a copy — the input is untouched), the synthesis result at
// the final placement, and the trace.
func Optimize(net *noc.Network, opt Options) (*noc.Network, *core.Result, *Trace, error) {
	return OptimizeCtx(context.Background(), net, opt)
}

// OptimizeCtx is Optimize under a context: trace spans nest beneath the
// caller's span, cancellation stops the search between rounds (the
// incumbent so far is abandoned and the context error returned), and
// the context propagates into every inner synthesis.
func OptimizeCtx(ctx context.Context, net *noc.Network, opt Options) (*noc.Network, *core.Result, *Trace, error) {
	if opt.Iterations == 0 {
		opt.Iterations = 100
	}
	if opt.ProposalsPerRound == 0 {
		opt.ProposalsPerRound = 8
	}
	if opt.StepMM == 0 {
		opt.StepMM = 1
	}
	if opt.MinSpacingMM == 0 {
		opt.MinSpacingMM = 1
	}
	if opt.MarginMM == 0 {
		opt.MarginMM = 0.5
	}
	cur := cloneNetwork(net)
	rng := rand.New(rand.NewSource(opt.Seed))

	ctx, span := obs.Start(ctx, "placement.optimize",
		obs.Int("nodes", net.N()), obs.Int("iterations", opt.Iterations),
		obs.String("objective", opt.Objective.String()))
	defer span.End()

	t0 := time.Now()
	best, err := core.SynthesizeCtx(ctx, cur, opt.Synth)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("placement: initial synthesis: %w", err)
	}
	synthDur := time.Since(t0)
	score := objective(best, opt.Objective)
	trace := &Trace{Initial: score, Evaluated: 1}

	var ev *delta.Evaluator
	if opt.Delta {
		ev, err = delta.Attach(best, delta.Options{CrossCheckEvery: opt.DeltaCrossCheckEvery})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("placement: delta attach: %w", err)
		}
	}
	// Fanning a round out to the worker pool only pays when there is
	// real work to hide behind the dispatch overhead: with one effective
	// worker, or with proposals cheaper than the overhead itself (the
	// initial synthesis duration is the per-proposal cost estimate),
	// evaluate rounds serially on the calling goroutine. Either path
	// walks the identical trajectory.
	serialRounds := opt.Synth.Serial || parallel.Workers() == 1 || synthDur < serialEvalThreshold

	for it := 0; it < opt.Iterations; {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		round := opt.ProposalsPerRound
		if it+round > opt.Iterations {
			round = opt.Iterations - it
		}
		// Draw the round's proposals up front; the generator consumes
		// the same variates per proposal regardless of what earlier
		// rounds accepted, and spacing is checked here (against the
		// incumbent) so the evaluation set is fixed before any worker
		// starts.
		props := make([]proposal, 0, round)
		for k := 0; k < round; k++ {
			node := rng.Intn(cur.N())
			dx := (rng.Float64()*2 - 1) * opt.StepMM
			dy := (rng.Float64()*2 - 1) * opt.StepMM
			p := cur.Nodes[node].Pos
			p.X = clamp(p.X+dx, opt.MarginMM, cur.DieW-opt.MarginMM)
			p.Y = clamp(p.Y+dy, opt.MarginMM, cur.DieH-opt.MarginMM)
			if !spacedEnoughAt(cur, node, p, opt.MinSpacingMM) {
				mSpacingRejects.Inc()
				continue
			}
			props = append(props, proposal{node: node, to: p})
		}
		trace.Evaluated += len(props)
		trace.ProposalsEvaluated += len(props)
		mProposals.Add(int64(len(props)))

		rctx, rspan := obs.Start(ctx, "placement.round",
			obs.Int("iteration", it), obs.Int("proposals", len(props)))
		tEval := time.Now()

		// Score the round. Delta mode holds the synthesized structure
		// fixed and evaluates moves incrementally (apply → dirty-subset
		// recompute → revert), which is inherently serial and cheap;
		// full mode re-synthesizes per proposal. Ties break toward the
		// lowest proposal index either way, so the pick is independent
		// of worker count.
		bestK := -1
		bestS := score
		var evals []*core.Result
		if opt.Delta {
			for k := range props {
				rep, err := ev.EvalMove(props[k].node, props[k].to)
				if err != nil {
					continue // infeasible move; reject it
				}
				if s := objectiveLoss(rep.Loss, opt.Objective); s < bestS-1e-12 {
					bestK, bestS = k, s
				}
			}
		} else {
			evalOne := func(k int) *core.Result {
				cand := cloneNetwork(cur)
				cand.Nodes[props[k].node].Pos = props[k].to
				res, err := core.SynthesizeCtx(rctx, cand, opt.Synth)
				if err != nil {
					return nil // infeasible placement; reject the move
				}
				return res
			}
			evals = make([]*core.Result, len(props))
			if serialRounds || len(props) < 2 {
				for k := range props {
					evals[k] = evalOne(k)
				}
			} else {
				_ = parallel.ForEach(rctx, len(props), func(k int) error {
					evals[k] = evalOne(k)
					return nil
				})
			}
			for k, res := range evals {
				if res == nil {
					continue
				}
				if s := objective(res, opt.Objective); s < bestS-1e-12 {
					bestK, bestS = k, s
				}
			}
		}
		trace.EvalTime += time.Since(tEval)

		if bestK >= 0 {
			pr := props[bestK]
			trace.Moves = append(trace.Moves, Move{
				Iteration: it + bestK, Node: pr.node,
				From: cur.Nodes[pr.node].Pos, To: pr.to, Score: bestS,
			})
			next := cloneNetwork(cur)
			next.Nodes[pr.node].Pos = pr.to
			cur = next
			if opt.Delta {
				if _, err := ev.Commit(pr.node, pr.to); err != nil {
					return nil, nil, nil, fmt.Errorf("placement: delta commit: %w", err)
				}
			} else {
				best = evals[bestK]
			}
			score = bestS
			mAccepted.Inc()
		}
		rspan.Set(obs.Bool("accepted", bestK >= 0), obs.Float("score", score))
		rspan.End()
		it += round
	}
	if opt.Delta {
		// The search scored moves against the structure synthesized at
		// the initial placement; the returned result is a fresh full
		// synthesis (which may restructure) at the final placement.
		best, err = core.SynthesizeCtx(ctx, cur, opt.Synth)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("placement: final synthesis: %w", err)
		}
		trace.Evaluated++
	}
	trace.Final = score
	span.Set(obs.Float("initial", trace.Initial), obs.Float("final", trace.Final),
		obs.Int("moves", len(trace.Moves)))
	return cur, best, trace, nil
}

// serialEvalThreshold is the per-proposal cost below which a round is
// evaluated serially: dispatching to the pool costs on the order of
// tens of microseconds per task, so synthesis runs cheaper than this
// lose more to fan-out overhead than they gain from overlap.
const serialEvalThreshold = 500 * time.Microsecond

func objective(res *core.Result, o Objective) float64 {
	return objectiveLoss(res.Loss, o)
}

func objectiveLoss(l *loss.Report, o Objective) float64 {
	if o == MinPower {
		return l.TotalPowerMW
	}
	return l.WorstIL
}

func cloneNetwork(net *noc.Network) *noc.Network {
	out := &noc.Network{DieW: net.DieW, DieH: net.DieH}
	out.Nodes = append([]noc.Node(nil), net.Nodes...)
	return out
}

// spacedEnoughAt reports whether node moved placed at p keeps the
// minimum pairwise distance to every other node of net.
func spacedEnoughAt(net *noc.Network, moved int, p geom.Point, minSpacing float64) bool {
	for i, n := range net.Nodes {
		if i == moved {
			continue
		}
		if geom.Manhattan(p, n.Pos) < minSpacing {
			return false
		}
	}
	return true
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
