package placement

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
)

// pollCancelCtx cancels itself after a fixed number of Err polls,
// stopping the search at a reproducible point without timing races.
type pollCancelCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func (c *pollCancelCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestOptimizeCancelledWithinOneRound: a context cancelled during a
// round must surface at the next round boundary — the search returns
// the context error having evaluated at most the initial synthesis
// plus one round of proposals, not the full iteration budget.
func TestOptimizeCancelledWithinOneRound(t *testing.T) {
	prevM := obs.MetricsEnabled()
	obs.EnableMetrics(true)
	obs.ResetMetrics()
	t.Cleanup(func() {
		obs.EnableMetrics(prevM)
		obs.ResetMetrics()
	})
	parallel.SetWorkers(1) // deterministic poll sequence
	t.Cleanup(func() { parallel.SetWorkers(0) })

	net := noc.Floorplan8()
	opt := Options{
		Objective:         MinWorstIL,
		Synth:             core.Options{MaxWL: 8, Serial: true},
		Iterations:        64,
		ProposalsPerRound: 4,
		StepMM:            1,
		Seed:              7,
	}

	// Probe: poll count of the initial synthesis alone (warm ring cache
	// first so the counts line up with the run below).
	if _, err := core.Synthesize(net, opt.Synth); err != nil {
		t.Fatal(err)
	}
	probe := &pollCancelCtx{Context: context.Background(), limit: 1 << 62}
	if _, err := core.SynthesizeCtx(probe, net, opt.Synth); err != nil {
		t.Fatal(err)
	}
	initialPolls := probe.polls.Load()

	// Cancel just after the initial synthesis completes: the first
	// round may start, but no second round is allowed.
	synthCalls := obs.SnapshotMetrics().Counters["core.synthesize.calls"]
	cctx := &pollCancelCtx{Context: context.Background(), limit: initialPolls + 1}
	_, _, _, err := OptimizeCtx(cctx, net, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled optimize returned err = %v, want context.Canceled", err)
	}
	evaluated := obs.SnapshotMetrics().Counters["core.synthesize.calls"] - synthCalls
	maxOneRound := int64(1 + opt.ProposalsPerRound)
	if evaluated > maxOneRound {
		t.Fatalf("cancelled optimize ran %d synthesis calls, want <= %d (initial + one round)",
			evaluated, maxOneRound)
	}
}
