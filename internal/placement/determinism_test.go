package placement

import (
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
	"xring/internal/parallel"
)

// TestOptimizeParallelMatchesSerial checks that the round-based search
// walks the identical trajectory whether proposals are evaluated
// sequentially or on the worker pool: same moves, same scores, same
// final placement.
func TestOptimizeParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	for _, seed := range []int64{1, 3} {
		net := noc.Irregular(8, 12, 12, 1.5, seed)
		base := Options{
			Objective:  MinWorstIL,
			Synth:      core.Options{MaxWL: 8},
			Iterations: 40,
			StepMM:     1.5,
			Seed:       seed,
		}

		parallel.SetWorkers(1)
		serialOpt := base
		serialOpt.Synth.Serial = true
		core.ResetRingCache()
		netS, resS, traceS, err := Optimize(net, serialOpt)
		if err != nil {
			t.Fatal(err)
		}

		parallel.SetWorkers(8)
		core.ResetRingCache()
		netP, resP, traceP, err := Optimize(net, base)
		if err != nil {
			t.Fatal(err)
		}

		if traceS.Evaluated != traceP.Evaluated {
			t.Fatalf("seed %d: evaluated %d serially vs %d in parallel", seed, traceS.Evaluated, traceP.Evaluated)
		}
		if len(traceS.Moves) != len(traceP.Moves) {
			t.Fatalf("seed %d: %d moves serially vs %d in parallel", seed, len(traceS.Moves), len(traceP.Moves))
		}
		for i := range traceS.Moves {
			a, b := traceS.Moves[i], traceP.Moves[i]
			if a != b {
				t.Fatalf("seed %d: move %d differs: %+v vs %+v", seed, i, a, b)
			}
		}
		if traceS.Final != traceP.Final {
			t.Fatalf("seed %d: final score %v serially vs %v in parallel", seed, traceS.Final, traceP.Final)
		}
		for i := range netS.Nodes {
			if !netS.Nodes[i].Pos.Eq(netP.Nodes[i].Pos) {
				t.Fatalf("seed %d: node %d placed at %v serially vs %v in parallel",
					seed, i, netS.Nodes[i].Pos, netP.Nodes[i].Pos)
			}
		}
		if resS.Loss.WorstIL != resP.Loss.WorstIL || resS.Loss.TotalPowerMW != resP.Loss.TotalPowerMW {
			t.Fatalf("seed %d: final analyses differ", seed)
		}
	}
}
