package placement

import (
	"testing"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/noc"
)

func TestOptimizeImprovesIrregularPlacement(t *testing.T) {
	net := noc.Irregular(8, 12, 12, 1.5, 4)
	opt := Options{
		Objective:  MinWorstIL,
		Synth:      core.Options{MaxWL: 8},
		Iterations: 60,
		StepMM:     1.5,
		Seed:       1,
	}
	improved, res, trace, err := Optimize(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Final > trace.Initial+1e-12 {
		t.Fatalf("optimization worsened: %v -> %v", trace.Initial, trace.Final)
	}
	if len(trace.Moves) == 0 {
		t.Fatal("expected at least one accepted move on an irregular placement")
	}
	if trace.Final >= trace.Initial {
		t.Fatalf("expected strict improvement, got %v -> %v", trace.Initial, trace.Final)
	}
	// The final result corresponds to the improved network.
	direct, err := core.Synthesize(improved, opt.Synth)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Loss.WorstIL != res.Loss.WorstIL {
		t.Fatal("returned result does not match the returned network")
	}
	// The input network must be untouched.
	orig := noc.Irregular(8, 12, 12, 1.5, 4)
	for i := range net.Nodes {
		if !net.Nodes[i].Pos.Eq(orig.Nodes[i].Pos) {
			t.Fatal("Optimize mutated its input")
		}
	}
}

func TestOptimizeRespectsConstraints(t *testing.T) {
	net := noc.Irregular(8, 10, 10, 1.5, 9)
	opt := Options{
		Objective:    MinPower,
		Synth:        core.Options{MaxWL: 8, WithPDN: true},
		Iterations:   40,
		StepMM:       2,
		MinSpacingMM: 1.5,
		MarginMM:     1,
		Seed:         2,
	}
	improved, _, _, err := Optimize(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range improved.Nodes {
		p := improved.Nodes[i].Pos
		if p.X < 1-1e-9 || p.X > 9+1e-9 || p.Y < 1-1e-9 || p.Y > 9+1e-9 {
			t.Fatalf("node %d outside margins: %v", i, p)
		}
		for j := i + 1; j < len(improved.Nodes); j++ {
			if geom.Manhattan(p, improved.Nodes[j].Pos) < 1.5-1e-9 {
				t.Fatalf("nodes %d,%d too close", i, j)
			}
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	net := noc.Irregular(6, 10, 10, 1.5, 3)
	opt := Options{Objective: MinWorstIL, Synth: core.Options{MaxWL: 6},
		Iterations: 30, Seed: 7}
	_, a, ta, err := Optimize(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	_, b, tb, err := Optimize(net, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss.WorstIL != b.Loss.WorstIL || ta.Final != tb.Final || len(ta.Moves) != len(tb.Moves) {
		t.Fatal("same seed must reproduce the same optimization")
	}
}

func TestObjectiveStrings(t *testing.T) {
	if MinWorstIL.String() != "min-il" || MinPower.String() != "min-power" {
		t.Fatal("Objective.String")
	}
}
