package placement

import (
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
	"xring/internal/parallel"
)

// TestOptimizeDeltaDeterministic asserts the delta-mode search walks
// the identical trajectory regardless of worker-pool width: the
// proposal sequence depends only on the seed, delta evaluation is
// serial by construction, and the full-recompute cross-checks are
// deterministic under any pool configuration.
func TestOptimizeDeltaDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		net := noc.Irregular(8, 12, 12, 1.5, seed)
		opt := Options{
			Objective:            MinWorstIL,
			Synth:                core.Options{MaxWL: 8, WithPDN: true},
			Iterations:           40,
			StepMM:               1.5,
			Seed:                 seed,
			Delta:                true,
			DeltaCrossCheckEvery: 2,
		}
		parallel.SetWorkers(1)
		net1, _, trace1, err := Optimize(net, opt)
		if err != nil {
			t.Fatalf("seed %d serial pool: %v", seed, err)
		}
		parallel.SetWorkers(0)
		net2, _, trace2, err := Optimize(net, opt)
		if err != nil {
			t.Fatalf("seed %d parallel pool: %v", seed, err)
		}
		if len(trace1.Moves) != len(trace2.Moves) {
			t.Fatalf("seed %d: %d vs %d moves", seed, len(trace1.Moves), len(trace2.Moves))
		}
		for i := range trace1.Moves {
			if trace1.Moves[i] != trace2.Moves[i] {
				t.Fatalf("seed %d move %d: %+v vs %+v", seed, i, trace1.Moves[i], trace2.Moves[i])
			}
		}
		if trace1.Final != trace2.Final || trace1.Initial != trace2.Initial {
			t.Fatalf("seed %d: scores diverged: %v/%v vs %v/%v",
				seed, trace1.Initial, trace1.Final, trace2.Initial, trace2.Final)
		}
		for i := range net1.Nodes {
			if !net1.Nodes[i].Pos.Eq(net2.Nodes[i].Pos) {
				t.Fatalf("seed %d node %d: %v vs %v", seed, i, net1.Nodes[i].Pos, net2.Nodes[i].Pos)
			}
		}
	}
}

// TestOptimizeDeltaImproves sanity-checks the delta search end to end:
// moves are accepted, the search never worsens its incumbent score, the
// returned result is a fresh synthesis at the final placement, and the
// trace records the hot-loop throughput.
func TestOptimizeDeltaImproves(t *testing.T) {
	net := noc.Irregular(8, 12, 12, 1.5, 2)
	outNet, res, trace, err := Optimize(net, Options{
		Objective:  MinWorstIL,
		Synth:      core.Options{MaxWL: 8, WithPDN: true},
		Iterations: 60,
		StepMM:     1.5,
		Seed:       2,
		Delta:      true,
	})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if trace.Final > trace.Initial {
		t.Fatalf("search worsened: %v -> %v", trace.Initial, trace.Final)
	}
	if res == nil || res.Loss == nil || res.Xtalk == nil {
		t.Fatal("final result not fully analyzed")
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatalf("final design invalid: %v", err)
	}
	// The returned result must be synthesized at the returned placement.
	for i, n := range outNet.Nodes {
		if !res.Design.Net.Nodes[i].Pos.Eq(n.Pos) {
			t.Fatalf("node %d: result synthesized at %v, placement says %v",
				i, res.Design.Net.Nodes[i].Pos, n.Pos)
		}
	}
	if trace.ProposalsEvaluated == 0 || trace.EvalRate() <= 0 {
		t.Fatalf("throughput not recorded: %d proposals, rate %v",
			trace.ProposalsEvaluated, trace.EvalRate())
	}
}
