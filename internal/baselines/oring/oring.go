// Package oring implements the ORing baseline [17] used in the paper's
// Tables I and III: a well-designed manual ring router with a
// per-waveguide wavelength budget and shortest-direction mapping with
// wavelength reuse, but without XRing's shortcuts or ring openings. Its
// PDN is the comb design whose feeds must cross ring waveguides to
// reach the senders — the property that costs ORing crossing loss and
// first-order crosstalk in Table III.
package oring

import (
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
)

// Result bundles the synthesized baseline.
type Result struct {
	Design   *router.Design
	Plan     *pdn.Plan // nil without a PDN
	Ring     *ring.Result
	MapStats *mapping.Stats
}

// Synthesize builds the ORing baseline for a network with the given
// per-ring wavelength budget. withPDN attaches the comb PDN
// (Table III); without it the router matches the Table I configuration.
func Synthesize(net *noc.Network, par phys.Params, maxWL int, withPDN bool) (*Result, error) {
	rres, err := ring.Construct(net, ring.Options{})
	if err != nil {
		return nil, err
	}
	return SynthesizeOnRing(net, par, rres, maxWL, withPDN)
}

// SynthesizeOnRing is Synthesize with a precomputed Step-1 result, so
// sweeps over #wl share the ring construction.
func SynthesizeOnRing(net *noc.Network, par phys.Params, rres *ring.Result, maxWL int, withPDN bool) (*Result, error) {
	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		return nil, err
	}
	stats, err := mapping.Run(d, mapping.Options{
		MaxWL:         maxWL,
		NoOpenings:    true,
		MaxWaveguides: mapping.WaveguideCap(net, par),
		PreferSharing: true,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, Ring: rres, MapStats: stats}
	if withPDN {
		plan, err := pdn.BuildComb(d)
		if err != nil {
			return nil, err
		}
		res.Plan = plan
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}
