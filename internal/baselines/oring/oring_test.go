package oring

import (
	"testing"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/phys"
)

func TestSynthesizeValid(t *testing.T) {
	net := noc.Floorplan16()
	res, err := Synthesize(net, phys.Default(), 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Routes) != 240 {
		t.Fatalf("routes = %d", len(res.Design.Routes))
	}
	if len(res.Design.Shortcuts) != 0 {
		t.Fatal("ORing has no shortcuts")
	}
	if res.Plan == nil || res.Plan.CrossingsAdded == 0 {
		t.Fatal("ORing's comb PDN should cross ring waveguides")
	}
}

func TestShortestDirectionKept(t *testing.T) {
	// Unlike ORNoC, ORing maps every signal in its shortest direction.
	net := noc.Floorplan16()
	res, err := Synthesize(net, phys.Default(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for sig, r := range res.Design.Routes {
		dir := res.Design.Waveguides[r.WG].Dir
		if res.Design.ArcLen(sig.Src, sig.Dst, dir) >
			res.Design.ArcLen(sig.Src, sig.Dst, 1-dir)+1e-9 {
			t.Fatalf("signal %v detoured in an ORing design", sig)
		}
	}
}

func TestNoPDNVariant(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, phys.Default(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Fatal("plan should be nil without PDN")
	}
	lr, err := loss.Analyze(res.Design, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lr.WorstCrossings != 0 {
		t.Fatal("without PDN a ring router has no crossings")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	small := noc.Grid(2, 1, 2, 1)
	if _, err := Synthesize(small, phys.Default(), 4, false); err == nil {
		t.Fatal("want error for 2-node network")
	}
	if _, err := Synthesize(noc.Floorplan8(), phys.Default(), 0, false); err == nil {
		t.Fatal("want error for #wl = 0")
	}
}
