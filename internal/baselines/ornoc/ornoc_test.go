package ornoc

import (
	"testing"

	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

func TestSynthesizeValid(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, phys.Default(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Routes) != 56 {
		t.Fatalf("routes = %d", len(res.Design.Routes))
	}
	if len(res.Design.Shortcuts) != 0 {
		t.Fatal("ORNoC has no shortcuts")
	}
	for _, w := range res.Design.Waveguides {
		if w.Opening != -1 {
			t.Fatal("ORNoC has no ring openings")
		}
	}
	if res.Plan == nil || res.Plan.Kind.String() != "comb" {
		t.Fatal("ORNoC uses the comb PDN")
	}
}

func TestAggressiveReuseUsesFewerWaveguides(t *testing.T) {
	// ORNoC's defining property versus ORing-style mapping: with the
	// same #wl budget it needs no more (usually fewer) waveguides.
	net := noc.Floorplan16()
	on, err := Synthesize(net, phys.Default(), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	// All signals fit; reuse means waveguide count stays modest.
	perDir := map[router.Direction]int{}
	for _, w := range on.Design.Waveguides {
		perDir[w.Dir]++
	}
	if len(on.Design.Waveguides) > 2*16 {
		t.Fatalf("implausibly many waveguides: %d", len(on.Design.Waveguides))
	}
}

func TestDetoursAppear(t *testing.T) {
	// With a tight budget some signals must ride the longer direction.
	net := noc.Floorplan16()
	res, err := Synthesize(net, phys.Default(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := loss.Analyze(res.Design, nil)
	if err != nil {
		t.Fatal(err)
	}
	detours := 0
	for sig, r := range res.Design.Routes {
		dir := res.Design.Waveguides[r.WG].Dir
		if res.Design.ArcLen(sig.Src, sig.Dst, dir) >
			res.Design.ArcLen(sig.Src, sig.Dst, 1-dir)+1e-9 {
			detours++
		}
	}
	if detours == 0 {
		t.Fatal("tight ORNoC budgets should produce detoured signals")
	}
	if lr.WorstLen <= res.Design.Perimeter()/2 {
		t.Fatalf("worst path %v should exceed half the perimeter %v",
			lr.WorstLen, res.Design.Perimeter()/2)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	// Too-small network: ring construction fails.
	small := noc.Grid(2, 1, 2, 1)
	if _, err := Synthesize(small, phys.Default(), 4, false); err == nil {
		t.Fatal("want error for 2-node network")
	}
	// Zero wavelength budget: mapping fails.
	if _, err := Synthesize(noc.Floorplan8(), phys.Default(), 0, false); err == nil {
		t.Fatal("want error for #wl = 0")
	}
}
