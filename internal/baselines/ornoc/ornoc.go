// Package ornoc implements the ORNoC baseline [10] used in the paper's
// Tables I and II. As in the paper's own evaluation (Sec. IV-B), ORNoC
// contributes its wavelength-assignment algorithm — aggressive
// wavelength reuse on as few ring waveguides as possible, detouring
// signals through the longer ring direction rather than adding
// waveguides — while the ring construction comes from XRing's Step 1
// (ORNoC never proposed one) and the PDN is the comb design of ORing
// [17], whose feeds cross the ring waveguides.
package ornoc

import (
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
)

// Result bundles the synthesized baseline.
type Result struct {
	Design   *router.Design
	Plan     *pdn.Plan // nil without a PDN
	Ring     *ring.Result
	MapStats *mapping.Stats
}

// Synthesize builds the ORNoC baseline for a network with the given
// per-ring wavelength budget. withPDN attaches the comb PDN (Table II);
// without it the router matches the Table I configuration.
func Synthesize(net *noc.Network, par phys.Params, maxWL int, withPDN bool) (*Result, error) {
	rres, err := ring.Construct(net, ring.Options{})
	if err != nil {
		return nil, err
	}
	return SynthesizeOnRing(net, par, rres, maxWL, withPDN)
}

// SynthesizeOnRing is Synthesize with a precomputed Step-1 result, so
// sweeps over #wl share the ring construction.
func SynthesizeOnRing(net *noc.Network, par phys.Params, rres *ring.Result, maxWL int, withPDN bool) (*Result, error) {
	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		return nil, err
	}
	stats, err := mapping.Run(d, mapping.Options{
		MaxWL:         maxWL,
		NoOpenings:    true,
		MaxWaveguides: mapping.WaveguideCap(net, par),
		PreferSharing: true,
		AllowDetour:   true,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Design: d, Ring: rres, MapStats: stats}
	if withPDN {
		plan, err := pdn.BuildComb(d)
		if err != nil {
			return nil, err
		}
		res.Plan = plan
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}
