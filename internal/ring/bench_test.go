package ring

import (
	"testing"

	"xring/internal/noc"
	"xring/internal/parallel"
)

// TestBuildConflictsWorkerInvariant pins the sharded conflict scan to
// the single-worker result: the table is a set, so any stripe count and
// completion order must produce the identical map.
func TestBuildConflictsWorkerInvariant(t *testing.T) {
	defer parallel.SetWorkers(4)
	for _, net := range []*noc.Network{
		noc.Floorplan16(),
		noc.Irregular(20, 20, 20, 1.5, 11),
	} {
		parallel.SetWorkers(1)
		serial := buildConflicts(net)
		parallel.SetWorkers(8)
		par := buildConflicts(net)
		if len(serial.conflict) != len(par.conflict) {
			t.Fatalf("conflict count differs: %d serial vs %d parallel",
				len(serial.conflict), len(par.conflict))
		}
		for k := range serial.conflict {
			if !par.conflict[k] {
				t.Fatalf("parallel table missing conflict %v", k)
			}
		}
	}
}

// BenchmarkBuildConflicts16 measures the Step-1 conflict scan on the
// standard 16-node floorplan (the bounding-box rejection in
// geom.EdgesConflict is the main lever at this size).
func BenchmarkBuildConflicts16(b *testing.B) {
	net := noc.Floorplan16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ct := buildConflicts(net); ct == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkBuildConflicts32 is the 32-node variant: ~496 edges, ~123k
// edge pairs.
func BenchmarkBuildConflicts32(b *testing.B) {
	net := noc.Floorplan32()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ct := buildConflicts(net); ct == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkBuildConflictsIrregular48 stresses the scan on a large
// irregular floorplan where few pairs are rejected trivially.
func BenchmarkBuildConflictsIrregular48(b *testing.B) {
	net := noc.Irregular(48, 40, 40, 1.5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ct := buildConflicts(net); ct == nil {
			b.Fatal("nil table")
		}
	}
}
