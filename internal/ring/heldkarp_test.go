package ring

import (
	"math"
	"testing"

	"xring/internal/noc"
)

func TestHeldKarpGrid8(t *testing.T) {
	// The 4x2 grid's optimal cycle is 16 mm; Construct achieves it.
	net := noc.Floorplan8()
	hk, err := HeldKarp(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hk-16) > 1e-9 {
		t.Fatalf("Held-Karp = %v, want 16", hk)
	}
	res, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Length-hk) > 1e-9 {
		t.Fatalf("Construct %v != Held-Karp optimum %v on the grid", res.Length, hk)
	}
}

func TestHeldKarpGrid16(t *testing.T) {
	net := noc.Floorplan16()
	hk, err := HeldKarp(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hk-32) > 1e-9 {
		t.Fatalf("Held-Karp = %v, want 32", hk)
	}
}

func TestHeldKarpBoundsConstruct(t *testing.T) {
	// On irregular instances: model objective <= Construct length, and
	// Held-Karp (conflict-free lower bound) <= Construct length. The
	// gap between them brackets the true constrained optimum.
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		net := noc.Irregular(9, 12, 12, 1.5, seed)
		hk, err := HeldKarp(net)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Construct(net, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Length < hk-1e-9 {
			t.Fatalf("seed %d: tour %v beats the Held-Karp optimum %v (impossible)",
				seed, res.Length, hk)
		}
		if res.ModelObjective > res.Length+1e-9 {
			t.Fatalf("seed %d: model objective above tour length", seed)
		}
		// The heuristic merge usually stays close to optimal; alert on
		// gross regressions.
		if res.Length > hk*1.5 {
			t.Fatalf("seed %d: tour %v more than 1.5x the TSP optimum %v",
				seed, res.Length, hk)
		}
	}
}

func TestHeldKarpLimits(t *testing.T) {
	if _, err := HeldKarp(noc.Grid(2, 1, 2, 1)); err == nil {
		t.Fatal("want error below 3 nodes")
	}
	if _, err := HeldKarp(noc.Floorplan32()); err == nil {
		t.Fatal("want error above 18 nodes")
	}
}
