package ring

import (
	"context"
	"errors"
	"math"
	"testing"

	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

// checkTour validates that a result is a permutation tour with a
// crossing-free embedding, via the router validator.
func checkTour(t *testing.T, net *noc.Network, res *Result) {
	t.Helper()
	if len(res.Tour) != net.N() {
		t.Fatalf("tour has %d entries for %d nodes", len(res.Tour), net.N())
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("synthesized tour invalid: %v", err)
	}
	if math.Abs(d.Perimeter()-res.Length) > 1e-9 {
		t.Fatalf("reported length %v != perimeter %v", res.Length, d.Perimeter())
	}
}

func TestConstructGrid8(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkTour(t, net, res)
	// The optimal 4x2 grid tour has length 16 (8 edges of one pitch).
	if math.Abs(res.Length-16) > 1e-9 {
		t.Fatalf("tour length = %v, want 16", res.Length)
	}
	if !res.Optimal {
		t.Fatal("grid-8 should be solved to optimality")
	}
}

func TestConstructGrid16(t *testing.T) {
	net := noc.Floorplan16()
	res, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkTour(t, net, res)
	if math.Abs(res.Length-32) > 1e-9 {
		t.Fatalf("tour length = %v, want 32", res.Length)
	}
}

func TestConstructGrid32(t *testing.T) {
	net := noc.Floorplan32()
	res, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkTour(t, net, res)
	if math.Abs(res.Length-64) > 1e-9 {
		t.Fatalf("tour length = %v, want 64", res.Length)
	}
}

func TestConstructTooSmall(t *testing.T) {
	net := noc.Grid(2, 1, 2, 1)
	if _, err := Construct(net, Options{}); err == nil {
		t.Fatal("want error for 2-node network")
	}
}

func TestConstructIrregular(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		net := noc.Irregular(9, 10, 10, 1.5, seed)
		res, err := Construct(net, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkTour(t, net, res)
	}
}

func TestConstructMatchesMILPModel(t *testing.T) {
	// On small irregular instances the assignment B&B and the literal
	// Eq. (1)-(4) model must agree on the model optimum.
	for _, seed := range []int64{10, 11, 12} {
		net := noc.Irregular(6, 8, 8, 1.5, seed)
		exact, err := Construct(net, Options{})
		if err != nil {
			t.Fatalf("seed %d construct: %v", seed, err)
		}
		ref, err := ConstructMILP(net, Options{})
		if err != nil {
			t.Fatalf("seed %d milp: %v", seed, err)
		}
		if math.Abs(exact.ModelObjective-ref.ModelObjective) > 1e-6 {
			t.Fatalf("seed %d: assignment B&B objective %v != MILP %v",
				seed, exact.ModelObjective, ref.ModelObjective)
		}
		checkTour(t, net, exact)
		checkTour(t, net, ref)
	}
}

func TestModelObjectiveIsLowerBound(t *testing.T) {
	// The model ignores connectivity, so its optimum can only be below
	// (or equal to) the final merged tour length.
	for _, seed := range []int64{21, 22, 23, 24} {
		net := noc.Irregular(8, 10, 10, 1.5, seed)
		res, err := Construct(net, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.ModelObjective > res.Length+1e-9 {
			t.Fatalf("seed %d: model objective %v exceeds tour length %v",
				seed, res.ModelObjective, res.Length)
		}
	}
}

func TestDisableConflictsAblation(t *testing.T) {
	// Without Eq. (3) the model optimum can only improve (fewer
	// constraints), but the merged tour may no longer embed planar.
	net := noc.Irregular(8, 10, 10, 1.5, 31)
	with, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Construct(net, Options{DisableConflicts: true})
	if err != nil {
		// Acceptable: the unconstrained tour may admit no embedding.
		t.Logf("conflict-free ablation failed to embed (expected sometimes): %v", err)
		return
	}
	if without.ModelObjective > with.ModelObjective+1e-9 {
		t.Fatalf("dropping constraints must not worsen the relaxation: %v > %v",
			without.ModelObjective, with.ModelObjective)
	}
}

func TestExtractCycles(t *testing.T) {
	succ := []int{1, 0, 3, 4, 2} // cycles (0,1) and (2,3,4)
	cycles := extractCycles(succ)
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles, want 2", len(cycles))
	}
	total := 0
	for _, c := range cycles {
		total += len(c)
	}
	if total != 5 {
		t.Fatalf("cycles cover %d nodes, want 5", total)
	}
}

func TestSpliceCycles(t *testing.T) {
	a := []int{0, 1, 2}
	b := []int{3, 4, 5}
	// Remove edge (2,0) from a (xi=2) and (5,3) from b (yj=2), forward:
	// 2 -> 3 expected: tour ...0,1,2,3,4,5.
	out := spliceCycles(a, b, 2, 2, false)
	if len(out) != 6 {
		t.Fatalf("splice length %d", len(out))
	}
	// Must contain all six nodes exactly once.
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate %d in %v", v, out)
		}
		seen[v] = true
	}
	// Check adjacency 2->3 exists in forward splice.
	adj := false
	for i := range out {
		if out[i] == 2 && out[(i+1)%len(out)] == 3 {
			adj = true
		}
	}
	if !adj {
		t.Fatalf("expected edge 2->3 in %v", out)
	}

	rev := spliceCycles(a, b, 2, 2, true)
	seen = map[int]bool{}
	for _, v := range rev {
		if seen[v] {
			t.Fatalf("duplicate %d in reversed splice %v", v, rev)
		}
		seen[v] = true
	}
	if len(rev) != 6 {
		t.Fatalf("reversed splice length %d", len(rev))
	}
}

func TestHeuristicTour(t *testing.T) {
	net := noc.Floorplan16()
	ct := buildConflicts(net)
	tour, err := HeuristicTour(net, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(tour) != 16 {
		t.Fatalf("tour length %d", len(tour))
	}
	seen := map[int]bool{}
	for _, v := range tour {
		if seen[v] {
			t.Fatalf("duplicate node %d", v)
		}
		seen[v] = true
	}
}

func TestBuildConflictsSymmetricAndIrreflexive(t *testing.T) {
	net := noc.Floorplan8()
	ct := buildConflicts(net)
	for pair := range ct.conflict {
		if pair[0] == pair[1] {
			t.Fatal("edge conflicts with itself")
		}
		if !ct.conflicts(pair[1], pair[0]) {
			t.Fatal("conflict table not symmetric")
		}
	}
}

func TestChooseOrdersOnKnownTour(t *testing.T) {
	net := noc.Floorplan8()
	tour := []int{0, 1, 2, 3, 7, 6, 5, 4}
	orders, err := chooseOrders(net, tour)
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), tour, orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("orders do not embed: %v", err)
	}
}

func BenchmarkConstruct16(b *testing.B) {
	net := noc.Floorplan16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(net, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstruct32(b *testing.B) {
	net := noc.Floorplan32()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Construct(net, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConstructHeuristic(t *testing.T) {
	for _, net := range []*noc.Network{noc.Floorplan8(), noc.Floorplan16(), noc.Floorplan32()} {
		res, err := ConstructHeuristic(context.Background(), net, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", net.N(), err)
		}
		checkTour(t, net, res)
		if res.Optimal {
			t.Errorf("n=%d: heuristic result claims optimality", net.N())
		}
		if res.Subcycles != 1 || res.Nodes != 0 {
			t.Errorf("n=%d: got Subcycles=%d Nodes=%d, want 1 and 0", net.N(), res.Subcycles, res.Nodes)
		}
	}
}

func TestBudgetExhaustionWrapsErrBudget(t *testing.T) {
	// Poison the conflict table so every pair of candidate edges
	// conflicts: the heuristic warm start cannot produce a feasible
	// assignment, and a 1-node budget exhausts before the B&B proves
	// anything — the error must match milp.ErrBudget via errors.Is.
	net := noc.Floorplan8()
	ct := buildConflicts(net)
	n := net.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := k + 1; l < n; l++ {
					e, f := edgeKey{i, j}, edgeKey{k, l}
					if e != f {
						ct.conflict[[2]edgeKey{e, f}] = true
					}
				}
			}
		}
	}
	_, _, _, _, _, err := solveAssignmentBB(net, ct, Options{MaxNodes: 1})
	if !errors.Is(err, milp.ErrBudget) {
		t.Fatalf("err = %v, want errors.Is(err, milp.ErrBudget)", err)
	}
}
