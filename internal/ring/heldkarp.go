package ring

import (
	"fmt"
	"math"

	"xring/internal/geom"
	"xring/internal/noc"
)

// HeldKarp computes the exact minimum Hamiltonian-cycle length over the
// network's Manhattan distances via the Held-Karp dynamic program
// (O(2^n n^2), practical to n ≈ 18). It ignores the paper's conflict
// constraints, so it lower-bounds the length of any crossing-free tour:
//
//	model objective (subtours allowed)  ≤  constrained optimum
//	Held-Karp (no conflict constraints) ≤  constrained optimum
//	constrained optimum                 ≤  Construct(...).Length
//
// It exists purely as an independent verification oracle for the
// Step-1 machinery.
func HeldKarp(net *noc.Network) (float64, error) {
	n := net.N()
	if n < 3 {
		return 0, fmt.Errorf("ring: Held-Karp needs at least 3 nodes, have %d", n)
	}
	if n > 18 {
		return 0, fmt.Errorf("ring: Held-Karp limited to 18 nodes, have %d", n)
	}
	pos := net.Positions()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = geom.Manhattan(pos[i], pos[j])
		}
	}

	// dp[mask][j]: shortest path visiting exactly the set mask, starting
	// at node 0 and ending at j (0 always in mask).
	size := 1 << n
	dp := make([][]float64, size)
	for mask := range dp {
		if mask&1 == 0 {
			continue
		}
		dp[mask] = make([]float64, n)
		for j := range dp[mask] {
			dp[mask][j] = math.Inf(1)
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < size; mask += 2 {
		for j := 0; j < n; j++ {
			cur := dp[mask][j]
			if math.IsInf(cur, 1) || mask&(1<<j) == 0 {
				continue
			}
			for k := 1; k < n; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				next := mask | 1<<k
				if c := cur + dist[j][k]; c < dp[next][k] {
					dp[next][k] = c
				}
			}
		}
	}
	best := math.Inf(1)
	full := size - 1
	for j := 1; j < n; j++ {
		if c := dp[full][j] + dist[j][0]; c < best {
			best = c
		}
	}
	return best, nil
}
