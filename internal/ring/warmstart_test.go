package ring

import (
	"testing"

	"xring/internal/noc"
)

// TestExternalHintWarmStartsBB: feeding a previously constructed tour
// back in as IncumbentHint must be accepted (WarmStarted) and must not
// change the optimum.
func TestExternalHintWarmStartsBB(t *testing.T) {
	net := noc.Irregular(7, 9, 9, 1.5, 41)
	base, err := Construct(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.WarmStarted {
		t.Fatal("hint-less construct must not report a warm start")
	}
	again, err := Construct(net, Options{IncumbentHint: base.Tour})
	if err != nil {
		t.Fatal(err)
	}
	if !again.WarmStarted {
		t.Fatal("valid tour hint not reported as warm start")
	}
	if again.ModelObjective != base.ModelObjective {
		t.Fatalf("warm start changed the optimum: %v != %v", again.ModelObjective, base.ModelObjective)
	}
}

// TestInvalidHintIgnored: garbage hints are silently dropped rather than
// rejected — the solve still succeeds, just without the warm start.
func TestInvalidHintIgnored(t *testing.T) {
	net := noc.Irregular(6, 8, 8, 1.5, 42)
	for _, hint := range [][]int{
		{0, 0, 0, 0, 0, 0}, // not a permutation
		{0, 1, 2},          // wrong length
		{9, 8, 7, 6, 5, 4}, // out of range
	} {
		res, err := Construct(net, Options{IncumbentHint: hint})
		if err != nil {
			t.Fatalf("hint %v: %v", hint, err)
		}
		if res.WarmStarted {
			t.Fatalf("hint %v reported as warm start", hint)
		}
	}
}

// TestMILPInstanceRoundTrip: the exported instance must carry a feasible
// heuristic hint (respecting the symmetry break) and decode solver
// solutions back into a full successor assignment.
func TestMILPInstanceRoundTrip(t *testing.T) {
	net := noc.Irregular(6, 8, 8, 1.5, 43)
	inst, err := NewMILPInstance(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Hint == nil {
		t.Fatal("heuristic hint missing on a feasible instance")
	}
	if _, ok := inst.Model.Check(inst.Hint); !ok {
		t.Fatal("encoded hint violates the model (symmetry break orientation?)")
	}
	res, err := ConstructMILP(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Fatal("heuristic warm start must not be reported as external")
	}
	checkTour(t, net, res)
}

// TestConstructMILPExternalHint: ConstructMILP prefers a valid external
// tour hint and reports it via Result.WarmStarted.
func TestConstructMILPExternalHint(t *testing.T) {
	net := noc.Irregular(6, 8, 8, 1.5, 44)
	base, err := ConstructMILP(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ConstructMILP(net, Options{IncumbentHint: base.Tour})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("valid external hint not reported by ConstructMILP")
	}
	if warm.ModelObjective != base.ModelObjective {
		t.Fatalf("warm start changed the optimum: %v != %v", warm.ModelObjective, base.ModelObjective)
	}
}
