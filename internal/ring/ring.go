// Package ring implements Step 1 of the XRing flow (Sec. III-A): ring
// waveguide construction. All network nodes must be connected into a
// single cycle of minimum total Manhattan length whose edges can be
// implemented as L-shaped waveguides without crossings.
//
// The paper models this as a modified travelling-salesman problem:
// an assignment structure (each node has exactly one incoming and one
// outgoing selected edge, Eq. 1), no 2-cycles (Eq. 2), and pairwise
// conflict constraints between edges whose four L-shaped implementation
// option pairs all cross (Eq. 3, Fig. 6), minimizing total Manhattan
// length (Eq. 4). Sub-tours are *not* excluded in the model; the
// optimizer's sub-cycles are merged afterwards by a heuristic
// (Fig. 6(f)).
//
// Two exact solvers are provided:
//
//   - Construct: a branch-and-bound around the Hungarian assignment
//     relaxation (the production path, replacing Gurobi);
//   - ConstructMILP: the literal Eq. (1)-(4) model on the generic
//     internal/milp solver (used for cross-validation and small cases).
package ring

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"xring/internal/assign"
	"xring/internal/geom"
	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
)

// Step-1 telemetry: branch-and-bound nodes visited and pruned (bound
// cuts plus infeasible relaxations), incumbent improvements, and the
// Eq. (3) conflict-pair count per instance. The B&B counts accumulate
// in the solver state and post once per solve, so the recursion itself
// carries no atomics.
var (
	mBBNodes       = obs.NewCounter("ring.bb.nodes")
	mBBPruned      = obs.NewCounter("ring.bb.pruned")
	mBBIncumbents  = obs.NewCounter("ring.bb.incumbents")
	mConflictPairs = obs.NewCounter("ring.conflict.pairs")
	mWarmAccepted  = obs.NewCounter("ring.warmstart.accepted")
)

// Result is the outcome of ring construction.
type Result struct {
	// Tour is the synthesized cyclic node order (node IDs).
	Tour []int
	// Orders is the chosen L-routing option per tour edge
	// (edge i = Tour[i] -> Tour[(i+1)%N]).
	Orders []geom.LOrder
	// Length is the total tour length in mm.
	Length float64
	// ModelObjective is the optimum of the Eq. (1)-(4) model before
	// sub-cycle merging (equals Length when no merging was needed).
	ModelObjective float64
	// Subcycles is the number of independent cycles the optimizer
	// produced before merging.
	Subcycles int
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Optimal reports whether the model was solved to proven optimality.
	Optimal bool
	// WarmStarted reports whether an external Options.IncumbentHint was
	// valid, conflict-free and primed the incumbent. The always-on
	// internal heuristic warm start does not count.
	WarmStarted bool
}

// Options tunes the constructors.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (default 500000).
	MaxNodes int
	// DisableConflicts drops Eq. (3), for ablation studies.
	DisableConflicts bool
	// IncumbentHint, when non-nil, is a previously known feasible tour
	// (a permutation of the node IDs) used to prime the incumbent — e.g.
	// a prior degraded result on a retry. Invalid or conflicting hints
	// are ignored rather than rejected.
	IncumbentHint []int
}

type edgeKey struct{ a, b int } // undirected, a < b

func mkEdge(i, j int) edgeKey {
	if i > j {
		i, j = j, i
	}
	return edgeKey{i, j}
}

// conflictTable precomputes, for all undirected node pairs, which pairs
// conflict per the paper's four-option test.
type conflictTable struct {
	n        int
	conflict map[[2]edgeKey]bool
}

// buildConflicts runs the paper's four-option conflict test over every
// pair of candidate edges. The O(N⁴) pair scan is sharded by stripes of
// the first edge index and fanned out over the shared worker pool; each
// stripe collects hits locally and the stripes merge into the table
// afterwards, so the result is the same set for any worker count.
func buildConflicts(net *noc.Network) *conflictTable {
	n := net.N()
	ct := &conflictTable{n: n, conflict: map[[2]edgeKey]bool{}}
	var edges []edgeKey
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edgeKey{i, j})
		}
	}
	pos := net.Positions()
	stripes := parallel.Workers() * 4
	if stripes > len(edges) {
		stripes = len(edges)
	}
	if stripes == 0 {
		return ct
	}
	found, ferr := parallel.Map(nil, stripes, func(s int) ([][2]edgeKey, error) {
		var local [][2]edgeKey
		// Stripe s owns first-edge indices x ≡ s (mod stripes), which
		// balances the triangular workload across stripes.
		for x := s; x < len(edges); x += stripes {
			for y := x + 1; y < len(edges); y++ {
				e, f := edges[x], edges[y]
				if geom.EdgesConflict(pos[e.a], pos[e.b], pos[f.a], pos[f.b]) {
					local = append(local, [2]edgeKey{e, f})
				}
			}
		}
		return local, nil
	})
	if ferr != nil {
		// The stripes never return errors, so this can only be a panic
		// the pool contained; an empty conflict table would silently
		// produce wrong rings, so fail loudly instead.
		panic(ferr)
	}
	pairs := 0
	for _, local := range found {
		pairs += len(local)
		for _, p := range local {
			ct.conflict[[2]edgeKey{p[0], p[1]}] = true
			ct.conflict[[2]edgeKey{p[1], p[0]}] = true
		}
	}
	mConflictPairs.Add(int64(pairs))
	return ct
}

func (ct *conflictTable) conflicts(e, f edgeKey) bool {
	return ct.conflict[[2]edgeKey{e, f}]
}

// Construct synthesizes the ring for a network using the assignment
// branch-and-bound. It returns the merged single tour, the per-edge
// L-orders, and solve statistics.
func Construct(net *noc.Network, opt Options) (*Result, error) {
	return ConstructCtx(context.Background(), net, opt)
}

// ConstructCtx is Construct under a context: spans nest beneath the
// caller's trace (ctx is otherwise unused — the solve itself is not
// cancellable mid-search, MaxNodes bounds it instead).
func ConstructCtx(ctx context.Context, net *noc.Network, opt Options) (*Result, error) {
	n := net.N()
	if n < 3 {
		return nil, fmt.Errorf("ring: need at least 3 nodes, have %d", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "ring.construct", obs.Int("nodes", n))
	defer span.End()

	_, cspan := obs.Start(ctx, "ring.conflicts")
	ct := buildConflicts(net)
	cspan.Set(obs.Int("pairs", len(ct.conflict)/2))
	cspan.End()
	if opt.DisableConflicts {
		ct.conflict = map[[2]edgeKey]bool{}
	}

	_, sspan := obs.Start(ctx, "ring.solve")
	succ, objective, nodes, optimal, warm, err := solveAssignmentBB(net, ct, opt)
	sspan.Set(obs.Int("bb_nodes", nodes), obs.Bool("optimal", optimal))
	sspan.End()
	if err != nil {
		return nil, err
	}
	_, mspan := obs.Start(ctx, "ring.merge")
	cycles := extractCycles(succ)
	tour, err := mergeCycles(net, ct, cycles)
	mspan.Set(obs.Int("subcycles", len(cycles)))
	mspan.End()
	if err != nil {
		return nil, err
	}
	orders, err := chooseOrders(net, tour)
	if err != nil {
		return nil, err
	}
	span.Set(obs.Int("bb_nodes", nodes), obs.Int("subcycles", len(cycles)),
		obs.Bool("optimal", optimal))
	return &Result{
		Tour:           tour,
		Orders:         orders,
		Length:         tourLength(net, tour),
		ModelObjective: objective,
		Subcycles:      len(cycles),
		Nodes:          nodes,
		Optimal:        optimal,
		WarmStarted:    warm,
	}, nil
}

// ConstructHeuristic synthesizes a ring using only the paper's
// heuristic machinery: nearest-neighbour + 2-opt tour construction
// (HeuristicTour) followed by the same L-order embedding as the exact
// path. It never branches, so it completes in polynomial time
// regardless of MaxNodes — the degraded-mode fallback when the exact
// solver exhausts its budget or the deadline is nearly spent. The
// result is marked non-optimal.
func ConstructHeuristic(ctx context.Context, net *noc.Network, opt Options) (*Result, error) {
	n := net.N()
	if n < 3 {
		return nil, fmt.Errorf("ring: need at least 3 nodes, have %d", n)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "ring.construct.heuristic", obs.Int("nodes", n))
	defer span.End()

	_, cspan := obs.Start(ctx, "ring.conflicts")
	ct := buildConflicts(net)
	cspan.Set(obs.Int("pairs", len(ct.conflict)/2))
	cspan.End()
	if opt.DisableConflicts {
		ct.conflict = map[[2]edgeKey]bool{}
	}
	tour, err := HeuristicTour(net, ct)
	if err != nil {
		return nil, err
	}
	orders, err := chooseOrders(net, tour)
	if err != nil {
		return nil, err
	}
	length := tourLength(net, tour)
	span.Set(obs.Bool("optimal", false))
	return &Result{
		Tour:           tour,
		Orders:         orders,
		Length:         length,
		ModelObjective: length,
		Subcycles:      1,
		Nodes:          0,
		Optimal:        false,
	}, nil
}

// dedge is a directed edge i→j in the Eq. (1)-(4) assignment model.
type dedge struct{ from, to int }

// MILPInstance is a compiled Eq. (1)-(4) model for one network, ready to
// hand to milp.Solve. Hint carries the warm-start incumbent (from the
// construction heuristic, or the caller's Options.IncumbentHint when it
// is a valid conflict-free tour); nil when no feasible tour is known.
type MILPInstance struct {
	Model *milp.Model
	Hint  []bool

	n            int
	vars         map[dedge]milp.Var
	ct           *conflictTable
	externalHint bool // Hint derived from Options.IncumbentHint
}

// NewMILPInstance builds the literal paper model: Eq. (1) degree rows,
// Eq. (2) 2-cycle bans, Eq. (3) conflict pairs, Eq. (4) Manhattan
// objective — plus one symmetry-breaking row. Every directed tour has a
// reversed twin with identical objective (Manhattan costs are symmetric
// and conflicts are on undirected edges), so we keep only the
// orientation with succ(0) < pred(0):
//
//	sum_j j·b_0j − sum_j j·b_j0 ≤ 0
//
// Equality is impossible (2-cycles are banned and n ≥ 3), so exactly one
// orientation of each tour survives and the search space halves without
// losing any optimum. Warm-start tours are reversed as needed to respect
// the same orientation before being encoded as a hint.
func NewMILPInstance(net *noc.Network, opt Options) (*MILPInstance, error) {
	n := net.N()
	if n < 3 {
		return nil, fmt.Errorf("ring: need at least 3 nodes, have %d", n)
	}
	ct := buildConflicts(net)
	if opt.DisableConflicts {
		ct.conflict = map[[2]edgeKey]bool{}
	}
	pos := net.Positions()

	m := milp.NewModel()
	vars := map[dedge]milp.Var{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.Binary(fmt.Sprintf("b_%d_%d", i, j))
			m.SetObjectiveCoef(v, geom.Manhattan(pos[i], pos[j])) // Eq. (4)
			vars[dedge{i, j}] = v
		}
	}
	// Eq. (1): in/out degree one.
	for i := 0; i < n; i++ {
		var out, in []milp.Var
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			out = append(out, vars[dedge{i, j}])
			in = append(in, vars[dedge{j, i}])
		}
		m.ExactlyOne(fmt.Sprintf("out_%d", i), out...)
		m.ExactlyOne(fmt.Sprintf("in_%d", i), in...)
	}
	// Eq. (2): no 2-cycles.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.AtMostOne(fmt.Sprintf("no2cyc_%d_%d", i, j), vars[dedge{i, j}], vars[dedge{j, i}])
		}
	}
	// Eq. (3): conflicting edge pairs (undirected conflicts expanded to
	// all four directed combinations).
	for pair := range ct.conflict {
		e, f := pair[0], pair[1]
		if e.a > f.a || (e.a == f.a && e.b > f.b) {
			continue // each unordered pair once
		}
		for _, de := range []dedge{{e.a, e.b}, {e.b, e.a}} {
			for _, df := range []dedge{{f.a, f.b}, {f.b, f.a}} {
				m.AtMostOne("conflict", vars[de], vars[df])
			}
		}
	}
	// Tour-direction symmetry break: succ(0) < pred(0).
	var symb []milp.Term
	for j := 1; j < n; j++ {
		symb = append(symb,
			milp.Term{Var: vars[dedge{0, j}], Coef: float64(j)},
			milp.Term{Var: vars[dedge{j, 0}], Coef: -float64(j)})
	}
	m.AddConstraint("symbreak", symb, milp.LE, 0)

	inst := &MILPInstance{Model: m, n: n, vars: vars, ct: ct}
	// Prefer the caller's hint when it is a valid conflict-free tour;
	// otherwise fall back to the construction heuristic.
	chk := &bbState{net: net, ct: ct, n: n}
	if hint := opt.IncumbentHint; len(hint) > 0 && isPermutation(hint, n) && chk.feasible(tourSucc(hint)) {
		inst.Hint = inst.encodeTour(hint)
		inst.externalHint = true
		mWarmAccepted.Inc()
	} else if tour, err := HeuristicTour(net, ct); err == nil && chk.feasible(tourSucc(tour)) {
		inst.Hint = inst.encodeTour(tour)
	}
	return inst, nil
}

// encodeTour converts a node tour into a model incumbent, reversing the
// tour first when its orientation violates the symmetry-break row.
func (inst *MILPInstance) encodeTour(tour []int) []bool {
	t := append([]int(nil), tour...)
	succ := tourSucc(t)
	pred := make([]int, inst.n)
	for i, j := range succ {
		pred[j] = i
	}
	if succ[0] > pred[0] {
		for i, j := 0, len(t)-1; i < j; i, j = i+1, j-1 {
			t[i], t[j] = t[j], t[i]
		}
		succ = tourSucc(t)
	}
	hint := make([]bool, inst.Model.NumVars())
	for i, j := range succ {
		hint[inst.vars[dedge{i, j}]] = true
	}
	return hint
}

// Successors decodes a solver solution back into the succ array of the
// selected directed Hamiltonian structure (-1 for unassigned rows).
func (inst *MILPInstance) Successors(sol *milp.Solution) []int {
	succ := make([]int, inst.n)
	for i := range succ {
		succ[i] = -1
	}
	for de, v := range inst.vars {
		if sol.Value(v) {
			succ[de.from] = de.to
		}
	}
	return succ
}

// ConstructMILP builds and solves the literal Eq. (1)-(4) model with the
// generic 0/1 solver, then applies the same merging. It is exponential
// in the worst case and intended for N ≲ 10 and cross-validation. The
// solve is warm-started from the construction heuristic (or the caller's
// Options.IncumbentHint) and runs the deterministic parallel mode.
func ConstructMILP(net *noc.Network, opt Options) (*Result, error) {
	inst, err := NewMILPInstance(net, opt)
	if err != nil {
		return nil, err
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 2_000_000
	}
	sol, err := milp.Solve(inst.Model, milp.Options{
		MaxNodes:      maxNodes,
		IncumbentHint: inst.Hint,
		Parallel:      true,
	})
	if err != nil {
		return nil, fmt.Errorf("ring: MILP solve: %w", err)
	}
	ct := inst.ct
	succ := inst.Successors(sol)
	cycles := extractCycles(succ)
	tour, err := mergeCycles(net, ct, cycles)
	if err != nil {
		return nil, err
	}
	orders, err := chooseOrders(net, tour)
	if err != nil {
		return nil, err
	}
	return &Result{
		Tour:           tour,
		Orders:         orders,
		Length:         tourLength(net, tour),
		ModelObjective: sol.Objective,
		Subcycles:      len(cycles),
		Nodes:          int(sol.Nodes),
		Optimal:        sol.Optimal,
		WarmStarted:    inst.externalHint && sol.WarmStarted,
	}, nil
}

func tourLength(net *noc.Network, tour []int) float64 {
	pos := net.Positions()
	total := 0.0
	for i := range tour {
		total += geom.Manhattan(pos[tour[i]], pos[tour[(i+1)%len(tour)]])
	}
	return total
}

// ---------------------------------------------------------------------
// Assignment branch-and-bound (production solver)
// ---------------------------------------------------------------------

type bbState struct {
	net      *noc.Network
	ct       *conflictTable
	n        int
	best     float64
	bestSucc []int
	nodes    int
	maxNodes int
	// Telemetry tallies (posted to the obs registry once per solve).
	pruned     int // bound cuts + infeasible relaxations
	incumbents int // times a new best assignment was adopted
}

// isPermutation reports whether tour is a permutation of 0..n-1.
func isPermutation(tour []int, n int) bool {
	if len(tour) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range tour {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// tourSucc converts a cyclic tour into a successor function.
func tourSucc(tour []int) []int {
	succ := make([]int, len(tour))
	for i := range tour {
		succ[tour[i]] = tour[(i+1)%len(tour)]
	}
	return succ
}

func solveAssignmentBB(net *noc.Network, ct *conflictTable, opt Options) (succ []int, objective float64, nodes int, optimal, warmStarted bool, err error) {
	n := net.N()
	pos := net.Positions()
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = assign.Forbidden
			} else {
				cost[i][j] = geom.Manhattan(pos[i], pos[j])
			}
		}
	}
	st := &bbState{net: net, ct: ct, n: n, best: math.Inf(1), maxNodes: opt.MaxNodes}
	if st.maxNodes == 0 {
		st.maxNodes = 500_000
	}
	// Warm start from the merge-friendly heuristic: a feasible
	// conflict-free tour is also a feasible assignment.
	if warm, werr := HeuristicTour(net, ct); werr == nil {
		wsucc := make([]int, n)
		for i := range warm {
			wsucc[warm[i]] = warm[(i+1)%n]
		}
		if st.feasible(wsucc) {
			st.best = succCost(cost, wsucc)
			st.bestSucc = wsucc
		}
	}
	// External tour hint (e.g. a prior degraded result): adopt if it is a
	// valid, conflict-free permutation. It counts as a warm start even
	// when the internal heuristic found something better — the caller
	// only cares that its hint was usable.
	if hint := opt.IncumbentHint; len(hint) > 0 && isPermutation(hint, n) {
		hsucc := tourSucc(hint)
		if st.feasible(hsucc) {
			warmStarted = true
			mWarmAccepted.Inc()
			if c := succCost(cost, hsucc); c < st.best {
				st.best = c
				st.bestSucc = hsucc
			}
		}
	}
	st.search(cost)
	mBBNodes.Add(int64(st.nodes))
	mBBPruned.Add(int64(st.pruned))
	mBBIncumbents.Add(int64(st.incumbents))
	if st.bestSucc == nil {
		if st.nodes >= st.maxNodes {
			// The search stopped on the node budget, not on a proof of
			// infeasibility: report it as a budget exhaustion so callers
			// can fall back to the heuristic constructor (errors.Is
			// against milp.ErrBudget).
			return nil, 0, st.nodes, false, warmStarted,
				fmt.Errorf("ring: %w (assignment B&B explored %d of %d nodes)", milp.ErrBudget, st.nodes, st.maxNodes)
		}
		return nil, 0, st.nodes, false, warmStarted, errors.New("ring: no feasible assignment found (conflict constraints unsatisfiable)")
	}
	return st.bestSucc, st.best, st.nodes, st.nodes < st.maxNodes, warmStarted, nil
}

func succCost(cost [][]float64, succ []int) float64 {
	total := 0.0
	for i, j := range succ {
		total += cost[i][j]
	}
	return total
}

// feasible checks the side constraints (2-cycles and conflicts) on a
// complete assignment.
func (st *bbState) feasible(succ []int) bool {
	_, _, ok := st.firstViolation(succ)
	return ok
}

// firstViolation returns the most useful violated constraint of an
// assignment: a 2-cycle (kind 0, pair of node indices) or a conflicting
// selected edge pair (kind 1). ok is true when no violation exists.
func (st *bbState) firstViolation(succ []int) (kind int, data [4]int, ok bool) {
	if st.n > 2 {
		for i, j := range succ {
			if j >= 0 && i < j && succ[j] == i {
				return 0, [4]int{i, j}, false
			}
		}
	}
	selected := make([]edgeKey, 0, st.n)
	for i, j := range succ {
		if j >= 0 {
			selected = append(selected, mkEdge(i, j))
		}
	}
	for x := 0; x < len(selected); x++ {
		for y := x + 1; y < len(selected); y++ {
			if selected[x] != selected[y] && st.ct.conflicts(selected[x], selected[y]) {
				return 1, [4]int{selected[x].a, selected[x].b, selected[y].a, selected[y].b}, false
			}
		}
	}
	return 0, [4]int{}, true
}

func banDirected(cost [][]float64, i, j int) { cost[i][j] = assign.Forbidden }

func banUndirected(cost [][]float64, e edgeKey) {
	cost[e.a][e.b] = assign.Forbidden
	cost[e.b][e.a] = assign.Forbidden
}

func (st *bbState) search(cost [][]float64) {
	st.nodes++
	if st.nodes >= st.maxNodes {
		return
	}
	succ, total, err := assign.Solve(cost)
	if err != nil {
		st.pruned++
		return // infeasible branch
	}
	if total >= st.best-milp.Eps {
		st.pruned++
		return // bound
	}
	kind, data, ok := st.firstViolation(succ)
	if ok {
		st.best = total
		st.bestSucc = append([]int(nil), succ...)
		st.incumbents++
		return
	}
	switch kind {
	case 0: // 2-cycle between data[0] and data[1]
		i, j := data[0], data[1]
		c1 := assign.Clone(cost)
		banDirected(c1, i, j)
		st.search(c1)
		c2 := assign.Clone(cost)
		banDirected(c2, j, i)
		st.search(c2)
	case 1: // conflict between undirected edges
		e := edgeKey{data[0], data[1]}
		f := edgeKey{data[2], data[3]}
		c1 := assign.Clone(cost)
		banUndirected(c1, e)
		st.search(c1)
		c2 := assign.Clone(cost)
		banUndirected(c2, f)
		st.search(c2)
	}
}

// ---------------------------------------------------------------------
// Sub-cycle extraction and merging (Fig. 6(e)-(f))
// ---------------------------------------------------------------------

// extractCycles decomposes a successor function into its cycles.
func extractCycles(succ []int) [][]int {
	n := len(succ)
	seen := make([]bool, n)
	var cycles [][]int
	for s := 0; s < n; s++ {
		if seen[s] || succ[s] < 0 {
			continue
		}
		var cyc []int
		for v := s; !seen[v]; v = succ[v] {
			seen[v] = true
			cyc = append(cyc, v)
		}
		cycles = append(cycles, cyc)
	}
	return cycles
}

// mergeCycles combines sub-cycles into one tour. For every pair of
// cycles it examines every pair of edges (one per cycle) and both
// reconnection orientations, requiring the two new edges to be
// conflict-free with each other and with all surviving edges, and picks
// the reconnection with the minimum added length. If no conflict-free
// reconnection exists for the best pair, conflict checking against
// surviving edges is relaxed (the paper's heuristic only requires the
// pair itself to be conflict-free).
func mergeCycles(net *noc.Network, ct *conflictTable, cycles [][]int) ([]int, error) {
	pos := net.Positions()
	cur := make([][]int, len(cycles))
	copy(cur, cycles)

	dist := func(i, j int) float64 { return geom.Manhattan(pos[i], pos[j]) }

	for len(cur) > 1 {
		type merge struct {
			ci, cj   int // cycle indices
			xi, yj   int // edge start offsets within the cycles
			reversed bool
			delta    float64
		}
		bestStrict := merge{delta: math.Inf(1)}  // conflict-free vs all surviving edges
		bestRelaxed := merge{delta: math.Inf(1)} // only the new pair is conflict-free

		// Collect all surviving undirected edges for strict checking.
		allEdges := func(skipCi, skipXi, skipCj, skipYj int) []edgeKey {
			var out []edgeKey
			for c, cyc := range cur {
				for k := range cyc {
					if (c == skipCi && k == skipXi) || (c == skipCj && k == skipYj) {
						continue
					}
					out = append(out, mkEdge(cyc[k], cyc[(k+1)%len(cyc)]))
				}
			}
			return out
		}

		for ci := 0; ci < len(cur); ci++ {
			for cj := ci + 1; cj < len(cur); cj++ {
				a, b := cur[ci], cur[cj]
				for xi := range a {
					ax, axn := a[xi], a[(xi+1)%len(a)]
					removed1 := dist(ax, axn)
					for yj := range b {
						by, byn := b[yj], b[(yj+1)%len(b)]
						removed2 := dist(by, byn)
						for _, rev := range [2]bool{false, true} {
							var e1, e2 edgeKey
							var added float64
							if !rev {
								// a: ..ax -> byn.. (b forward), ..by -> axn..
								e1, e2 = mkEdge(ax, byn), mkEdge(by, axn)
								added = dist(ax, byn) + dist(by, axn)
							} else {
								// a: ..ax -> by.. (b reversed), ..byn -> axn..
								e1, e2 = mkEdge(ax, by), mkEdge(byn, axn)
								added = dist(ax, by) + dist(byn, axn)
							}
							delta := added - removed1 - removed2
							if ct.conflicts(e1, e2) {
								continue
							}
							if delta >= bestRelaxed.delta && delta >= bestStrict.delta {
								continue
							}
							strict := true
							for _, other := range allEdges(ci, xi, cj, yj) {
								if ct.conflicts(e1, other) || ct.conflicts(e2, other) {
									strict = false
									break
								}
							}
							if strict && delta < bestStrict.delta {
								bestStrict = merge{ci, cj, xi, yj, rev, delta}
							}
							if delta < bestRelaxed.delta {
								bestRelaxed = merge{ci, cj, xi, yj, rev, delta}
							}
						}
					}
				}
			}
		}
		best := bestStrict
		if math.IsInf(best.delta, 1) {
			best = bestRelaxed
		}
		if math.IsInf(best.delta, 1) {
			return nil, errors.New("ring: cannot merge sub-cycles without conflicts")
		}
		merged := spliceCycles(cur[best.ci], cur[best.cj], best.xi, best.yj, best.reversed)
		var next [][]int
		for c := range cur {
			if c != best.ci && c != best.cj {
				next = append(next, cur[c])
			}
		}
		next = append(next, merged)
		cur = next
	}
	return cur[0], nil
}

// spliceCycles joins cycle b into cycle a by removing edge (a[xi],
// a[xi+1]) and (b[yj], b[yj+1]) and reconnecting.
func spliceCycles(a, b []int, xi, yj int, reversed bool) []int {
	out := make([]int, 0, len(a)+len(b))
	// Walk a from xi+1 around to xi (inclusive): ends at a[xi].
	for k := 1; k <= len(a); k++ {
		out = append(out, a[(xi+k)%len(a)])
	}
	// out ends with a[xi]; append b starting appropriately.
	if !reversed {
		// a[xi] -> b[yj+1] ... b[yj]
		for k := 1; k <= len(b); k++ {
			out = append(out, b[(yj+k)%len(b)])
		}
	} else {
		// a[xi] -> b[yj] ... b[yj+1] (b reversed)
		for k := 0; k < len(b); k++ {
			out = append(out, b[(yj-k+len(b)*2)%len(b)])
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Heuristic warm start
// ---------------------------------------------------------------------

// HeuristicTour builds a conflict-aware tour with nearest-neighbour
// construction followed by 2-opt improvement. It is used to warm-start
// the branch-and-bound and as a fallback for very large networks.
func HeuristicTour(net *noc.Network, ct *conflictTable) ([]int, error) {
	n := net.N()
	pos := net.Positions()
	dist := func(i, j int) float64 { return geom.Manhattan(pos[i], pos[j]) }

	// Nearest neighbour from node 0.
	tour := []int{0}
	used := make([]bool, n)
	used[0] = true
	for len(tour) < n {
		last := tour[len(tour)-1]
		bestJ, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !used[j] && dist(last, j) < bestD {
				bestD = dist(last, j)
				bestJ = j
			}
		}
		tour = append(tour, bestJ)
		used[bestJ] = true
	}

	// 2-opt: reverse segments while it shortens the tour or removes
	// conflicts between tour edges.
	improved := true
	for iter := 0; improved && iter < 200; iter++ {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				a, b := tour[i], tour[(i+1)%n]
				c, d := tour[j], tour[(j+1)%n]
				if a == c || b == d || a == d {
					continue
				}
				delta := dist(a, c) + dist(b, d) - dist(a, b) - dist(c, d)
				conflictNow := ct != nil && ct.conflicts(mkEdge(a, b), mkEdge(c, d))
				conflictAfter := ct != nil && ct.conflicts(mkEdge(a, c), mkEdge(b, d))
				if delta < -milp.Eps || (conflictNow && !conflictAfter && delta <= milp.Eps) {
					// Reverse tour[i+1..j].
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						tour[lo], tour[hi] = tour[hi], tour[lo]
					}
					improved = true
				}
			}
		}
	}
	// Validate conflict-freedom.
	if ct != nil {
		for i := 0; i < n; i++ {
			ei := mkEdge(tour[i], tour[(i+1)%n])
			for j := i + 1; j < n; j++ {
				ej := mkEdge(tour[j], tour[(j+1)%n])
				if ei != ej && ct.conflicts(ei, ej) {
					return nil, errors.New("ring: heuristic tour has conflicting edges")
				}
			}
		}
	}
	return tour, nil
}

// ---------------------------------------------------------------------
// L-order assignment
// ---------------------------------------------------------------------

// OrdersFor finds a crossing-free L-order assignment for an arbitrary
// tour, or an error when no planar embedding exists. It lets callers
// evaluate externally supplied tours (e.g. manual designs).
func OrdersFor(net *noc.Network, tour []int) ([]geom.LOrder, error) {
	return chooseOrders(net, tour)
}

// chooseOrders assigns an L-routing option to every tour edge so that no
// two non-adjacent edges cross, via backtracking over the two options
// per edge (most-constrained-first).
func chooseOrders(net *noc.Network, tour []int) ([]geom.LOrder, error) {
	n := len(tour)
	pos := net.Positions()
	type edge struct{ a, b geom.Point }
	edges := make([]edge, n)
	for i := range edges {
		edges[i] = edge{pos[tour[i]], pos[tour[(i+1)%n]]}
	}
	// allowed[i][j] for i<j non-adjacent: set of (oi, oj) pairs.
	type optPair [2]geom.LOrder
	allowed := make(map[[2]int][]optPair)
	adjacent := func(i, j int) bool {
		return j == i+1 || (i == 0 && j == n-1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if adjacent(i, j) {
				continue
			}
			var ok []optPair
			for _, oi := range [2]geom.LOrder{geom.VH, geom.HV} {
				pi := geom.LPath(edges[i].a, edges[i].b, oi)
				for _, oj := range [2]geom.LOrder{geom.VH, geom.HV} {
					pj := geom.LPath(edges[j].a, edges[j].b, oj)
					if !geom.PathsCross(pi, pj) {
						ok = append(ok, optPair{oi, oj})
					}
				}
			}
			if len(ok) == 0 {
				return nil, fmt.Errorf("ring: tour edges %d and %d cannot be embedded without crossing", i, j)
			}
			if len(ok) < 4 {
				allowed[[2]int{i, j}] = ok
			}
		}
	}
	orders := make([]geom.LOrder, n)
	set := make([]bool, n)

	// Order edges by number of constraints (most-constrained first).
	degree := make([]int, n)
	for key := range allowed {
		degree[key[0]]++
		degree[key[1]]++
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	sort.Slice(seq, func(x, y int) bool { return degree[seq[x]] > degree[seq[y]] })

	compatible := func(i int, oi geom.LOrder) bool {
		for j := 0; j < n; j++ {
			if !set[j] || j == i {
				continue
			}
			lo, hi := i, j
			swap := false
			if lo > hi {
				lo, hi = hi, lo
				swap = true
			}
			pairs, has := allowed[[2]int{lo, hi}]
			if !has {
				continue
			}
			match := false
			for _, p := range pairs {
				a, b := p[0], p[1]
				if swap {
					a, b = b, a
				}
				if a == oi && b == orders[j] {
					match = true
					break
				}
			}
			if !match {
				return false
			}
		}
		return true
	}

	var backtrack func(k int) bool
	backtrack = func(k int) bool {
		if k == n {
			return true
		}
		i := seq[k]
		for _, o := range [2]geom.LOrder{geom.VH, geom.HV} {
			if compatible(i, o) {
				orders[i] = o
				set[i] = true
				if backtrack(k + 1) {
					return true
				}
				set[i] = false
			}
		}
		return false
	}
	if !backtrack(0) {
		return nil, errors.New("ring: no globally consistent L-order assignment exists")
	}
	return orders, nil
}
