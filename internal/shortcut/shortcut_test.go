package shortcut

import (
	"math"
	"testing"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
)

// grid8Design builds the 4x2 floorplan with the boustrophedon tour.
func grid8Design(t *testing.T) *router.Design {
	t.Helper()
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// uShapeDesign builds an 8-node non-convex (U-shaped) ring whose notch
// admits exactly one high-gain shortcut bridging the mouth.
func uShapeDesign(t *testing.T) *router.Design {
	t.Helper()
	pos := []geom.Point{
		{X: 0, Y: 0}, {X: 6, Y: 0}, // bottom
		{X: 6, Y: 4},               // right top
		{X: 4, Y: 4}, {X: 4, Y: 2}, // notch right wall
		{X: 2, Y: 2}, {X: 2, Y: 4}, // notch left wall
		{X: 0, Y: 4}, // left top
	}
	net := &noc.Network{DieW: 6, DieH: 4}
	for i, p := range pos {
		net.Nodes = append(net.Nodes, noc.Node{ID: i, Name: "n", Pos: p})
	}
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 4, 5, 6, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFeasiblePaths(t *testing.T) {
	d := grid8Design(t)
	// 1<->5 is a straight vertical chord: feasible.
	if paths := feasiblePaths(d, 1, 5); len(paths) != 1 {
		t.Fatalf("feasiblePaths(1,5) = %d paths, want 1", len(paths))
	}
	// 1<->6 must route through node 2's or node 5's position: infeasible.
	if paths := feasiblePaths(d, 1, 6); len(paths) != 0 {
		t.Fatalf("feasiblePaths(1,6) = %d paths, want 0", len(paths))
	}
}

func TestCollectGrid8(t *testing.T) {
	d := grid8Design(t)
	cands := Collect(d, nil)
	// Exactly the two vertical chords 1<->5 and 2<->6 have positive gain
	// and a feasible path on the 4x2 grid.
	if len(cands) != 2 {
		t.Fatalf("got %d candidates: %+v", len(cands), cands)
	}
	for _, c := range cands {
		if !(c.A == 1 && c.B == 5 || c.A == 2 && c.B == 6) {
			t.Fatalf("unexpected candidate %d-%d", c.A, c.B)
		}
		if math.Abs(c.Gain-4) > 1e-9 {
			t.Fatalf("candidate %d-%d gain = %v, want 4", c.A, c.B, c.Gain)
		}
	}
}

func TestConstructGrid8(t *testing.T) {
	d := grid8Design(t)
	if err := Construct(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if len(d.Shortcuts) != 2 {
		t.Fatalf("selected %d shortcuts, want 2", len(d.Shortcuts))
	}
	for _, s := range d.Shortcuts {
		if s.Partner != -1 {
			t.Fatalf("parallel shortcuts must not be partners")
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("design with shortcuts invalid: %v", err)
	}
}

func TestConstructDisabled(t *testing.T) {
	d := grid8Design(t)
	if err := Construct(d, Options{Disable: true}); err != nil {
		t.Fatal(err)
	}
	if len(d.Shortcuts) != 0 {
		t.Fatal("Disable must produce no shortcuts")
	}
}

func TestConstructUShape(t *testing.T) {
	d := uShapeDesign(t)
	if err := Construct(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// The notch-mouth chord 3<->6 is the only viable shortcut.
	if len(d.Shortcuts) != 1 {
		t.Fatalf("selected %d shortcuts, want 1 (%+v)", len(d.Shortcuts), d.Shortcuts)
	}
	s := d.Shortcuts[0]
	if !(s.A == 3 && s.B == 6) {
		t.Fatalf("selected %d-%d, want 3-6", s.A, s.B)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sup, err := SupportedSignals(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 2 {
		t.Fatalf("supported %d signals, want 2 (both directions)", len(sup))
	}
	for _, s := range sup {
		if math.Abs(s.Length-2) > 1e-9 || s.ViaCSE || s.PassesCrossing {
			t.Fatalf("unexpected supported signal %+v", s)
		}
	}
}

func TestOnePerNodeRule(t *testing.T) {
	// On any design, after Construct no node may appear in two shortcuts
	// (Validate enforces it, so Validate passing suffices); check a few
	// irregular instances end-to-end.
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		net := noc.Irregular(10, 12, 12, 1.5, seed)
		res, err := ring.Construct(net, ring.Options{})
		if err != nil {
			t.Fatalf("seed %d ring: %v", seed, err)
		}
		d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := Construct(d, Options{}); err != nil {
			t.Fatalf("seed %d shortcut: %v", seed, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGainPositivity(t *testing.T) {
	// All selected shortcuts must strictly beat the ring.
	d := grid8Design(t)
	if err := Construct(d, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Shortcuts {
		cw := d.ArcLen(s.A, s.B, router.CW)
		ccw := d.ArcLen(s.A, s.B, router.CCW)
		if s.Length() >= math.Min(cw, ccw) {
			t.Fatalf("shortcut %d-%d has non-positive gain", s.A, s.B)
		}
	}
}

func TestSupportedSignalsCSEMechanics(t *testing.T) {
	// Synthetic crossing pair on a wide boundary ring: verify the CSE
	// bookkeeping (entry shortcut, lengths through the crossing point).
	pos := []geom.Point{
		{X: 1, Y: 0}, {X: 3, Y: 0}, // bottom
		{X: 4, Y: 1}, {X: 4, Y: 3}, // right
		{X: 3, Y: 4}, {X: 1, Y: 4}, // top
		{X: 0, Y: 3}, {X: 0, Y: 1}, // left
	}
	net := &noc.Network{DieW: 4, DieH: 4}
	for i, p := range pos {
		net.Nodes = append(net.Nodes, noc.Node{ID: i, Name: "n", Pos: p})
	}
	orders := []geom.LOrder{
		geom.VH, geom.HV, geom.VH, geom.VH, geom.VH, geom.HV, geom.VH, geom.VH,
	}
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 4, 5, 6, 7}, orders)
	if err != nil {
		t.Fatal(err)
	}
	s1 := &router.Shortcut{A: 1, B: 4, Partner: 1,
		PathAB: geom.Polyline{pos[1], pos[4]}} // x=3 vertical
	s2 := &router.Shortcut{A: 2, B: 7, Partner: 0,
		PathAB: geom.Polyline{pos[2], pos[7]}} // y=1 horizontal
	d.Shortcuts = []*router.Shortcut{s1, s2}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sup, err := SupportedSignals(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 direct signals; CSE candidates only when they beat the ring.
	direct, cse := 0, 0
	for _, s := range sup {
		if s.ViaCSE {
			cse++
			// CSE paths run through the crossing at (3,1).
			if s.Length <= 0 {
				t.Fatalf("CSE length %v", s.Length)
			}
		} else {
			direct++
			if !s.PassesCrossing {
				t.Fatal("direct signals on merged shortcuts pass the CSE crossing")
			}
		}
	}
	if direct != 4 {
		t.Fatalf("direct signals = %d, want 4", direct)
	}
	if cse%2 != 0 {
		t.Fatalf("CSE signals must come in direction pairs, got %d", cse)
	}
}

func TestDistAlong(t *testing.T) {
	p := geom.Polyline{{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 3, Y: 4}}
	if got := distAlong(p, geom.Point{X: 0, Y: 0}, geom.Point{X: 0, Y: 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("distAlong = %v, want 4", got)
	}
	if got := distAlong(p, geom.Point{X: 0, Y: 2}, geom.Point{X: 2, Y: 4}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("distAlong = %v, want 4", got)
	}
	if got := distAlong(p, geom.Point{X: 3, Y: 4}, geom.Point{X: 0, Y: 0}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("distAlong = %v, want 7", got)
	}
}

func TestCrossingPointHelper(t *testing.T) {
	a := geom.Polyline{{X: 0, Y: 1}, {X: 4, Y: 1}}
	b := geom.Polyline{{X: 2, Y: 0}, {X: 2, Y: 2}}
	pt, err := crossingPoint(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Eq(geom.Point{X: 2, Y: 1}) {
		t.Fatalf("crossing at %v", pt)
	}
	// No crossing is an error.
	c := geom.Polyline{{X: 0, Y: 5}, {X: 4, Y: 5}}
	if _, err := crossingPoint(a, c); err == nil {
		t.Fatal("want error for non-crossing paths")
	}
}

func TestNaturalCSEPair(t *testing.T) {
	// Regression: this irregular instance (a large die, so length gains
	// outweigh the extra CSE drop loss) is known to produce a CSE-merged
	// crossing pair with supported swapped signals.
	net := noc.Irregular(10, 30, 30, 3, 8)
	res, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := Construct(d, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	partnered := 0
	for _, s := range d.Shortcuts {
		if s.Partner != -1 {
			partnered++
		}
	}
	if partnered != 2 {
		t.Fatalf("partnered shortcuts = %d, want 2", partnered)
	}
	sup, err := SupportedSignals(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	cse := 0
	extraDropLen := d.Par.DropDB / d.Par.PropagationDBPerMM
	for _, s := range sup {
		if s.ViaCSE {
			cse++
			// A CSE route must beat the best ring route by more than the
			// length equivalent of its extra drop loss.
			best := math.Min(d.ArcLen(s.Sig.Src, s.Sig.Dst, router.CW),
				d.ArcLen(s.Sig.Src, s.Sig.Dst, router.CCW))
			if s.Length >= best-extraDropLen {
				t.Fatalf("CSE signal %v gain too small (%v vs %v - %v)", s.Sig, s.Length, best, extraDropLen)
			}
		}
	}
	if cse != 4 {
		t.Fatalf("CSE signals = %d, want 4", cse)
	}
}

func TestNoCSEOption(t *testing.T) {
	// With NoCSE, Construct must never produce partners.
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		net := noc.Irregular(12, 14, 14, 1.5, seed)
		res, err := ring.Construct(net, ring.Options{})
		if err != nil {
			continue
		}
		d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := Construct(d, Options{NoCSE: true}); err != nil {
			t.Fatal(err)
		}
		for _, s := range d.Shortcuts {
			if s.Partner != -1 {
				t.Fatalf("seed %d: NoCSE produced partners", seed)
			}
		}
	}
}
