// Package shortcut implements Step 2 of the XRing flow (Sec. III-B):
// shortcut construction. Nodes that are physically close but far apart
// along the ring in both directions receive a dedicated waveguide pair,
// and shortcuts that would cross each other are merged with crossing
// switching elements (CSEs, Fig. 7) instead of being rejected.
//
// The rules, verbatim from the paper:
//
//   - a shortcut between two nodes is feasible when their senders and
//     receivers can be connected by additional waveguides without
//     crossing any existing ring waveguide;
//   - the gain of mapping the signal (i,j) onto its shortcut is
//     g(i,j) = min(len(cw path), len(ccw path)) - len(shortcut);
//     non-positive gains invalidate the shortcut;
//   - shortcuts are selected greedily by decreasing gain;
//   - a node participates in at most one shortcut;
//   - a shortcut crosses at most one other shortcut; crossing pairs are
//     merged with CSEs, which additionally route the "swapped" node
//     pairs along the two physical shortcuts.
package shortcut

import (
	"fmt"
	"math"
	"sort"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/router"
)

// Step-2 telemetry: candidate gains offered vs accepted under the
// one-per-node and one-crossing rules, CSE merges, and the distribution
// of accepted gains (mm of ring path saved per shortcut).
var (
	mCandidates = obs.NewCounter("shortcut.candidates")
	mAccepted   = obs.NewCounter("shortcut.accepted")
	mRejected   = obs.NewCounter("shortcut.rejected")
	mCSEMerged  = obs.NewCounter("shortcut.cse_merged")
	mGainMM     = obs.NewHistogram("shortcut.gain_mm", "mm",
		[]float64{0.5, 1, 2, 4, 8, 16, 32, 64})
)

// Candidate is a feasible shortcut option between two nodes.
type Candidate struct {
	A, B int
	// Paths holds the feasible physical routes (up to two L-options).
	Paths []geom.Polyline
	// Gain is g(A,B) per the paper's gain function.
	Gain float64
}

// Options tunes Step 2.
type Options struct {
	// Disable turns Step 2 off entirely (ablation: no shortcuts).
	Disable bool
	// NoCSE forbids crossing shortcuts (ablation: skip CSE merging).
	NoCSE bool
	// Traffic restricts the signals the router must support; nil means
	// all-to-all. Shortcuts are only built between node pairs that
	// actually communicate.
	Traffic []noc.Signal
}

// trafficSet normalizes a traffic slice into a lookup set; nil yields
// the all-to-all pattern for n nodes.
func trafficSet(traffic []noc.Signal, n int) map[noc.Signal]bool {
	if traffic == nil {
		traffic = noc.AllToAll(n)
	}
	set := make(map[noc.Signal]bool, len(traffic))
	for _, s := range traffic {
		set[s] = true
	}
	return set
}

// feasiblePaths returns the L-shaped routes between nodes a and b that
// cross no ring edge. Routes through a third node's position are
// rejected by the crossing test, because the ring waveguide passes
// through every node.
func feasiblePaths(d *router.Design, a, b int) []geom.Polyline {
	pa := d.Net.Nodes[a].Pos
	pb := d.Net.Nodes[b].Pos
	n := d.N()
	ringEdges := make([]geom.Polyline, n)
	for i := range ringEdges {
		ringEdges[i] = d.EdgePath(i)
	}
	var out []geom.Polyline
	seen := map[string]bool{}
	for _, order := range [2]geom.LOrder{geom.VH, geom.HV} {
		p := geom.LPath(pa, pb, order)
		key := fmt.Sprint(p)
		if seen[key] {
			continue // straight paths produce the same polyline twice
		}
		seen[key] = true
		ok := true
		for _, re := range ringEdges {
			if geom.PathsCross(p, re) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// ringGain returns min(cw, ccw) ring path length minus the shortcut
// length for the pair (a, b).
func ringGain(d *router.Design, a, b int) float64 {
	cw := d.ArcLen(a, b, router.CW)
	ccw := d.ArcLen(a, b, router.CCW)
	sc := geom.Manhattan(d.Net.Nodes[a].Pos, d.Net.Nodes[b].Pos)
	return math.Min(cw, ccw) - sc
}

// Collect gathers all feasible shortcut candidates with positive gain,
// sorted by decreasing gain (ties broken by node IDs for determinism).
// Only node pairs present in the traffic (either direction) are
// considered; a nil traffic means all-to-all.
func Collect(d *router.Design, traffic []noc.Signal) []Candidate {
	n := d.N()
	want := trafficSet(traffic, n)
	var out []Candidate
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !want[noc.Signal{Src: a, Dst: b}] && !want[noc.Signal{Src: b, Dst: a}] {
				continue
			}
			gain := ringGain(d, a, b)
			if gain <= 1e-9 {
				continue
			}
			paths := feasiblePaths(d, a, b)
			if len(paths) == 0 {
				continue
			}
			out = append(out, Candidate{A: a, B: b, Paths: paths, Gain: gain})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gain != out[j].Gain {
			return out[i].Gain > out[j].Gain
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Construct runs Step 2 on a design: it selects shortcuts greedily by
// gain under the one-per-node and one-crossing rules, merges crossing
// pairs with CSEs, and attaches the result to d.Shortcuts.
func Construct(d *router.Design, opt Options) error {
	if opt.Disable {
		return nil
	}
	cands := Collect(d, opt.Traffic)
	mCandidates.Add(int64(len(cands)))
	used := map[int]bool{} // node -> has a shortcut
	var selected []*router.Shortcut

	for _, c := range cands {
		if used[c.A] || used[c.B] {
			mRejected.Inc()
			continue
		}
		// Choose the orientation that crosses the fewest selected
		// shortcuts; zero preferred, exactly one (with a partner-free
		// shortcut) acceptable.
		bestPath := geom.Polyline(nil)
		bestPartner := -1
		bestCrossings := math.MaxInt
		for _, p := range c.Paths {
			partner := -1
			crossCount := 0
			ok := true
			for si, s := range selected {
				x := geom.CrossingsBetween(p, s.PathAB)
				if x == 0 {
					continue
				}
				crossCount += x
				if x > 1 || partner != -1 || s.Partner != -1 || opt.NoCSE {
					ok = false
					break
				}
				partner = si
			}
			if !ok {
				continue
			}
			if crossCount < bestCrossings {
				bestCrossings = crossCount
				bestPath = p
				bestPartner = partner
			}
		}
		if bestPath == nil {
			mRejected.Inc()
			continue
		}
		sc := &router.Shortcut{A: c.A, B: c.B, PathAB: bestPath, Partner: bestPartner}
		if bestPartner != -1 {
			selected[bestPartner].Partner = len(selected)
			mCSEMerged.Inc()
		}
		selected = append(selected, sc)
		used[c.A], used[c.B] = true, true
		mAccepted.Inc()
		mGainMM.Observe(c.Gain)
	}
	d.Shortcuts = selected
	return nil
}

// Supported describes one signal that Step 3 should map onto a shortcut
// rather than the ring, together with the physical metrics the loss
// engine needs.
type Supported struct {
	Sig    noc.Signal
	SC     int  // index of the shortcut the signal ENTERS
	ViaCSE bool // true when the signal exits on the partner shortcut
	// Length is the travelled waveguide length in mm.
	Length float64
	// Bends is the 90-degree bend count along the route.
	Bends int
	// PassesCrossing reports whether the route passes straight through
	// the CSE crossing (direct signals on merged shortcuts do).
	PassesCrossing bool
}

// SupportedSignals enumerates the signals carried by the design's
// shortcuts: the direct pair per shortcut, plus the swapped pairs of
// each CSE-merged crossing pair when riding the CSE still beats the
// ring after the extra CSE drop loss. traffic restricts the emitted
// signals (nil = all-to-all).
func SupportedSignals(d *router.Design, traffic []noc.Signal) ([]Supported, error) {
	want := trafficSet(traffic, d.N())
	var out []Supported
	for si, s := range d.Shortcuts {
		length := s.Length()
		passes := s.Partner != -1 // direct traffic passes the CSE crossing
		bends := s.PathAB.Bends()
		for _, sig := range [2]noc.Signal{{Src: s.A, Dst: s.B}, {Src: s.B, Dst: s.A}} {
			if want[sig] {
				out = append(out, Supported{Sig: sig, SC: si, Length: length, Bends: bends, PassesCrossing: passes})
			}
		}
		if s.Partner > si { // handle each merged pair once
			p := d.Shortcuts[s.Partner]
			x, err := crossingPoint(s.PathAB, p.PathAB)
			if err != nil {
				return nil, fmt.Errorf("shortcut: partners %d/%d: %w", si, s.Partner, err)
			}
			// Two possible endpoint pairings; pick the one with larger
			// total CSE gain (Sec. III-B merges the swapped pairs).
			type pairing struct {
				sigs [2]noc.Signal
				lens [2]float64
				gain float64
			}
			mk := func(a1, d1, a2, d2 int) pairing {
				l1 := distAlong(s.PathAB, d.Net.Nodes[a1].Pos, x) + distAlong(p.PathAB, x, d.Net.Nodes[d1].Pos)
				l2 := distAlong(s.PathAB, d.Net.Nodes[a2].Pos, x) + distAlong(p.PathAB, x, d.Net.Nodes[d2].Pos)
				g1 := math.Min(d.ArcLen(a1, d1, router.CW), d.ArcLen(a1, d1, router.CCW)) - l1
				g2 := math.Min(d.ArcLen(a2, d2, router.CW), d.ArcLen(a2, d2, router.CCW)) - l2
				return pairing{
					sigs: [2]noc.Signal{{Src: a1, Dst: d1}, {Src: a2, Dst: d2}},
					lens: [2]float64{l1, l2},
					gain: g1 + g2,
				}
			}
			p1 := mk(s.A, p.B, s.B, p.A)
			p2 := mk(s.A, p.A, s.B, p.B)
			bestP := p1
			if p2.gain > p1.gain {
				bestP = p2
			}
			// A CSE route couples into one extra on-resonance MRR (the
			// CSE itself, Fig. 7(b)), so a pure length gain is not
			// enough: the saved propagation must also pay for the extra
			// drop loss, or the "shortcut" would raise the signal's
			// insertion loss.
			extraDropLen := d.Par.DropDB / d.Par.PropagationDBPerMM
			for k := 0; k < 2; k++ {
				sig := bestP.sigs[k]
				gain := math.Min(d.ArcLen(sig.Src, sig.Dst, router.CW),
					d.ArcLen(sig.Src, sig.Dst, router.CCW)) - bestP.lens[k]
				if gain <= extraDropLen {
					continue // the ring route is at least as good
				}
				// Forward and reverse directions of the swapped pair.
				if want[sig] {
					out = append(out, Supported{Sig: sig, SC: si, ViaCSE: true, Length: bestP.lens[k],
						Bends: s.PathAB.Bends() + p.PathAB.Bends() + 1})
				}
				rev := noc.Signal{Src: sig.Dst, Dst: sig.Src}
				if want[rev] {
					out = append(out, Supported{Sig: rev, SC: s.Partner, ViaCSE: true,
						Length: bestP.lens[k], Bends: s.PathAB.Bends() + p.PathAB.Bends() + 1})
				}
			}
		}
	}
	return out, nil
}

// crossingPoint finds the unique crossing point between two polylines.
func crossingPoint(a, b geom.Polyline) (geom.Point, error) {
	pt, ok := geom.PolylineCrossingPoint(a, b)
	if !ok {
		return geom.Point{}, fmt.Errorf("expected exactly one crossing between %v and %v", a, b)
	}
	return pt, nil
}

// distAlong measures the walk distance between two on-path points.
func distAlong(p geom.Polyline, from, to geom.Point) float64 {
	return geom.DistAlong(p, from, to)
}
