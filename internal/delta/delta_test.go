package delta

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/parallel"
)

// synthesize builds the attachment point for the tests: a synthesized
// irregular floorplan (irregular placements are what the placement
// optimizer perturbs).
func synthesize(t *testing.T, n int, seed int64, opt core.Options) *core.Result {
	t.Helper()
	net := noc.Irregular(n, float64(n), float64(n), 2.0, seed)
	res, err := core.Synthesize(net, opt)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return res
}

// randomMove draws a spacing-respecting proposal for one node, like the
// placement optimizer does.
func randomMove(rng *rand.Rand, net *noc.Network, stepMM float64) (int, geom.Point) {
	for {
		node := rng.Intn(net.N())
		p := net.Nodes[node].Pos
		p.X += (rng.Float64()*2 - 1) * stepMM
		p.Y += (rng.Float64()*2 - 1) * stepMM
		ok := true
		for i, other := range net.Nodes {
			if i != node && geom.Manhattan(p, other.Pos) < 0.5 {
				ok = false
				break
			}
		}
		if ok {
			return node, p
		}
	}
}

// TestRandomMovesBitIdentical is the core property test: random move
// sequences with accept/reject mixes, asserting every delta-evaluated
// report is bit-identical (eps 0) to a full recompute of the same
// structure at the same geometry. The full-recompute reference uses the
// shared worker pool, so the property runs under both the serial and
// the parallel pool configuration.
func TestRandomMovesBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		opt  core.Options
	}{
		{"nopdn", core.Options{MaxWL: 8}},
		{"tree", core.Options{MaxWL: 8, WithPDN: true}},
		{"comb", core.Options{MaxWL: 8, WithPDN: true, NoOpenings: true}},
	}
	for _, workers := range []int{1, 0} { // serial pool, then default width
		parallel.SetWorkers(workers)
		for _, tc := range cases {
			tc := tc
			t.Run(fmt.Sprintf("%s-workers%d", tc.name, workers), func(t *testing.T) {
				for _, seed := range []int64{1, 2, 3} {
					res := synthesize(t, 8, seed, tc.opt)
					ev, err := Attach(res, Options{CrossCheckEvery: 8})
					if err != nil {
						t.Fatalf("seed %d: attach: %v", seed, err)
					}
					rng := rand.New(rand.NewSource(seed))
					for move := 0; move < 60; move++ {
						node, p := randomMove(rng, ev.Network(), 1.0)
						if rng.Float64() < 0.4 {
							// Accepted move: commit (periodic cross-check
							// fires inside), then verify the committed state.
							if _, err := ev.Commit(node, p); err != nil {
								t.Fatalf("seed %d move %d: commit: %v", seed, move, err)
							}
							full, err := ev.FullRecompute()
							if err != nil {
								t.Fatalf("seed %d move %d: full: %v", seed, move, err)
							}
							if err := CompareReports(ev.Reports(), full, 0); err != nil {
								t.Fatalf("seed %d move %d: committed state diverged: %v", seed, move, err)
							}
						} else {
							// Rejected move: CheckMove compares delta vs full
							// at the tentative geometry and reverts.
							if _, err := ev.CheckMove(node, p); err != nil {
								t.Fatalf("seed %d move %d: check: %v", seed, move, err)
							}
							// The revert must restore the committed reports
							// bit for bit.
							full, err := ev.FullRecompute()
							if err != nil {
								t.Fatalf("seed %d move %d: full after revert: %v", seed, move, err)
							}
							if err := CompareReports(ev.Reports(), full, 0); err != nil {
								t.Fatalf("seed %d move %d: revert diverged: %v", seed, move, err)
							}
						}
					}
				}
			})
		}
	}
}

// TestEvalMoveMatchesCommit asserts a scratch evaluation of a move
// produces the exact reports committing the same move produces.
func TestEvalMoveMatchesCommit(t *testing.T) {
	res := synthesize(t, 8, 5, core.Options{MaxWL: 8, WithPDN: true})
	ev, err := Attach(res, Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for move := 0; move < 20; move++ {
		node, p := randomMove(rng, ev.Network(), 1.2)
		scratch, err := ev.EvalMove(node, p)
		if err != nil {
			t.Fatalf("move %d: eval: %v", move, err)
		}
		committed, err := ev.Commit(node, p)
		if err != nil {
			t.Fatalf("move %d: commit: %v", move, err)
		}
		if err := CompareReports(scratch, committed, 0); err != nil {
			t.Fatalf("move %d: scratch vs committed: %v", move, err)
		}
	}
}

// TestAttachMatchesSynthesis asserts the evaluator's initial reports
// equal the attached result's analyses (same structure, same geometry).
func TestAttachMatchesSynthesis(t *testing.T) {
	res := synthesize(t, 8, 1, core.Options{MaxWL: 8, WithPDN: true})
	ev, err := Attach(res, Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := CompareReports(ev.Reports(), &Reports{Loss: res.Loss, Xtalk: res.Xtalk}, 0); err != nil {
		t.Fatalf("attach reports differ from synthesis: %v", err)
	}
}

// TestEvaluatorIsolation asserts moves never leak into the caller's
// network or design.
func TestEvaluatorIsolation(t *testing.T) {
	res := synthesize(t, 8, 2, core.Options{MaxWL: 8, WithPDN: true})
	before := append([]noc.Node(nil), res.Design.Net.Nodes...)
	ev, err := Attach(res, Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	for move := 0; move < 10; move++ {
		node, p := randomMove(rng, ev.Network(), 1.0)
		if _, err := ev.Commit(node, p); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	for i, n := range res.Design.Net.Nodes {
		if !n.Pos.Eq(before[i].Pos) {
			t.Fatalf("node %d of the caller's network moved: %v -> %v", i, before[i].Pos, n.Pos)
		}
	}
}

// TestCrossCheckCatchesCorruption corrupts a cached structural count
// and asserts the periodic cross-check hard-fails instead of silently
// drifting.
func TestCrossCheckCatchesCorruption(t *testing.T) {
	res := synthesize(t, 8, 3, core.Options{MaxWL: 8, WithPDN: true})
	ev, err := Attach(res, Options{CrossCheckEvery: 1})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if len(ev.entries) == 0 {
		t.Fatal("no cached entries")
	}
	ev.entries[0].throughs += 3 // simulate a stale structural cache
	rng := rand.New(rand.NewSource(4))
	node, p := randomMove(rng, ev.Network(), 1.0)
	_, err = ev.Commit(node, p)
	if err == nil {
		t.Fatal("commit with corrupted cache passed its cross-check")
	}
	if !strings.Contains(err.Error(), "cross-check failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWorstSNRInfinity exercises the ±Inf comparison path: a design
// with no noise has WorstSNR = +Inf in both reports.
func TestWorstSNRInfinity(t *testing.T) {
	res := synthesize(t, 8, 1, core.Options{MaxWL: 8}) // no PDN: no noise mechanisms
	if !math.IsInf(res.Xtalk.WorstSNR, 1) {
		t.Skip("fixture unexpectedly noisy")
	}
	ev, err := Attach(res, Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	full, err := ev.FullRecompute()
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if err := CompareReports(ev.Reports(), full, 0); err != nil {
		t.Fatalf("infinite-SNR reports differ: %v", err)
	}
}
