// Package delta implements the incremental (delta) evaluation engine
// for the placement and sweep hot loops. A placement proposal moves one
// node; re-synthesizing the whole design to score it repeats work that
// the move cannot have changed. The Evaluator attaches to a synthesized
// design, caches every contribution keyed by the structural facts it
// depends on, and on a move recomputes only the dirty subset:
//
//   - structural counts (through MRRs, drops, the CSE crossing, MRR bank
//     sizes, the crosstalk walker's node orders and receiver maps) depend
//     only on the tour order and the channel assignment — they are never
//     dirty across node moves and are cached once at attach;
//   - a ring signal's bend count depends on the L-paths of the tour edges
//     its arc covers — it is dirty only when the move touches one of the
//     two tour edges adjacent to the moved node AND that edge lies inside
//     the signal's covered interval;
//   - a shortcut signal's path length and bends depend on its shortcut
//     endpoints (plus the CSE partner's for merged traffic) — dirty only
//     when the moved node is one of them;
//   - everything else that is floating-point and position-derived (arc
//     lengths, the perimeter-dependent radial scale, PDN feed losses,
//     ring-crossing positions) shifts at the last bit whenever *any* node
//     moves, so it is deliberately NOT cached: those inputs are cheap
//     O(1) expressions recomputed from fresh geometry on every
//     evaluation. Caching only exact integers and recomputing every
//     float from the same expressions the full analysis uses is what
//     makes a delta evaluation bit-identical to a full recompute.
//
// The synthesized structure (tour, waveguides, channels, routes,
// shortcut pairings) is held fixed for the lifetime of an Evaluator;
// "full recompute" means re-running the loss and crosstalk analyses on
// that structure with refreshed geometry, which is exactly what the
// placement search compares proposals with. A configurable periodic
// cross-check (every K commits, default on) re-runs the full analyses
// and hard-fails if any delta-maintained aggregate drifts beyond
// milp.Eps — mirroring the serial-vs-parallel determinism gate in CI.
package delta

import (
	"context"
	"fmt"
	"math"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/loss"
	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/pdn"
	"xring/internal/router"
	"xring/internal/xtalk"
)

// Metrics: evaluation counts and dirty-set sizes. delta.signals.clean /
// delta.signals.dirty expose the cache economics (a healthy placement
// run is overwhelmingly clean); delta.dirty_signals is the per-move
// dirty-set size distribution.
var (
	mEvals       = obs.NewCounter("delta.evals")
	mCommits     = obs.NewCounter("delta.commits")
	mCrossChecks = obs.NewCounter("delta.crosschecks")
	mClean       = obs.NewCounter("delta.signals.clean")
	mDirty       = obs.NewCounter("delta.signals.dirty")
	hDirty       = obs.NewHistogram("delta.dirty_signals", "signals",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
)

// DefaultCrossCheckEvery is the default cross-check cadence: one full
// recompute per this many committed moves.
const DefaultCrossCheckEvery = 16

// Options configures an Evaluator.
type Options struct {
	// CrossCheckEvery runs a full-recompute cross-check every K
	// committed moves. Zero selects DefaultCrossCheckEvery; negative
	// disables periodic cross-checking.
	CrossCheckEvery int
	// Xtalk selects the crosstalk mechanism set; must match what the
	// attached result was analyzed with (core uses the zero value).
	Xtalk xtalk.Options
}

// Reports bundles the two analysis reports a proposal is scored with.
type Reports struct {
	Loss  *loss.Report
	Xtalk *xtalk.Report
}

// pdnKind says how to rebuild the PDN after a geometry change.
type pdnKind int

const (
	pdnNone pdnKind = iota
	pdnTree
	pdnComb
)

// sigEntry is the per-signal cache line.
type sigEntry struct {
	sig noc.Signal
	r   *router.Route
	// Structural counts — never dirty across node moves.
	throughs  int
	drops     int
	crossings int // shortcut CSE crossing; ring crossings are recomputed
	// Geometry-derived, dirty-tracked.
	bends int     // ring: bends on the arc; shortcut: path bends
	scLen float64 // shortcut only: travelled length
	// Ring covered-edge interval [lo, lo+span) in tour-edge indices:
	// the move of node m dirties tour edges (tm-1) and tm; the bends
	// cache is stale iff one of them lies inside this interval.
	lo, span int
	// Shortcut dependency nodes (endpoint set, plus the CSE partner's
	// endpoints for merged traffic). Empty for ring signals.
	deps []int
}

// Evaluator incrementally evaluates single-node moves against a fixed
// synthesized structure. It owns a private clone of the network, so
// moves never touch the caller's data. Not safe for concurrent use.
type Evaluator struct {
	opt  Options
	net  *noc.Network
	d    *router.Design
	kind pdnKind
	plan *pdn.Plan

	engine  *xtalk.Engine
	sigs    []noc.Signal
	entries []sigEntry
	// scOrders[i] is the L-routing order shortcut i's PathAB was built
	// with, so the path can be rebuilt when an endpoint moves.
	scOrders []geom.LOrder

	last    *Reports
	commits int
}

// Attach builds an Evaluator over a synthesized result. The result's
// structure (tour, channel assignment, routes, shortcut pairings) is
// frozen; its geometry is cloned so the evaluator can move nodes freely.
// The initial evaluation is cross-checked against a full recompute
// unless cross-checking is disabled.
func Attach(res *core.Result, opt Options) (*Evaluator, error) {
	if res == nil || res.Design == nil {
		return nil, fmt.Errorf("delta: nil result")
	}
	if opt.CrossCheckEvery == 0 {
		opt.CrossCheckEvery = DefaultCrossCheckEvery
	}
	src := res.Design
	net := &noc.Network{DieW: src.Net.DieW, DieH: src.Net.DieH}
	net.Nodes = append([]noc.Node(nil), src.Net.Nodes...)

	d, err := router.NewDesign(net, src.Par, src.Tour, src.EdgeOrders)
	if err != nil {
		return nil, err
	}
	d.MaxWL = src.MaxWL
	// Own waveguide structs (the comb PDN rebuild mutates Crossings);
	// channel slices are read-only and shared.
	d.Waveguides = make([]*router.Waveguide, len(src.Waveguides))
	for i, w := range src.Waveguides {
		cp := *w
		cp.Crossings = append([]router.Crossing(nil), w.Crossings...)
		d.Waveguides[i] = &cp
	}
	// Own shortcut structs (moves rebuild PathAB); channels shared.
	d.Shortcuts = make([]*router.Shortcut, len(src.Shortcuts))
	orders := make([]geom.LOrder, len(src.Shortcuts))
	for i, s := range src.Shortcuts {
		cp := *s
		cp.PathAB = append(geom.Polyline(nil), s.PathAB...)
		d.Shortcuts[i] = &cp
		orders[i] = geom.LOrderOf(s.PathAB)
	}
	d.Routes = src.Routes // read-only

	e := &Evaluator{opt: opt, net: net, d: d, scOrders: orders}
	switch {
	case res.Plan == nil:
		e.kind = pdnNone
	case res.Plan.Kind == pdn.Tree:
		e.kind = pdnTree
	default:
		e.kind = pdnComb
	}
	if err := e.rebuildPlan(); err != nil {
		return nil, err
	}
	e.engine = xtalk.NewEngine(d)
	if err := e.index(); err != nil {
		return nil, err
	}
	rep, err := e.evaluate(-1, true)
	if err != nil {
		return nil, err
	}
	e.last = rep
	if opt.CrossCheckEvery > 0 {
		if err := e.CrossCheck(); err != nil {
			return nil, fmt.Errorf("delta: attach cross-check: %w", err)
		}
	}
	return e, nil
}

// index builds the per-signal cache lines. Structural counts are filled
// here; geometry-derived fields are filled by the first evaluation.
func (e *Evaluator) index() error {
	d := e.d
	banks := loss.NewBanks(d)
	e.sigs = loss.CanonicalSignals(d)
	e.entries = make([]sigEntry, len(e.sigs))
	n := d.N()
	for i, sig := range e.sigs {
		r := d.Routes[sig]
		ent := sigEntry{sig: sig, r: r}
		switch r.Kind {
		case router.OnRing:
			w := d.Waveguides[r.WG]
			ent.throughs = loss.RingThroughs(d, banks, sig, r)
			ent.drops = 1
			si, di := d.TourPos(sig.Src), d.TourPos(sig.Dst)
			if w.Dir == router.CW {
				ent.lo, ent.span = si, (di-si+n)%n
			} else {
				ent.lo, ent.span = di, (si-di+n)%n
			}
		case router.OnShortcut:
			ent.throughs, ent.drops, ent.crossings = loss.ShortcutStructural(d, sig, r)
			sc := d.Shortcuts[r.SC]
			ent.deps = []int{sc.A, sc.B}
			if r.ViaCSE {
				p := d.Shortcuts[sc.Partner]
				ent.deps = append(ent.deps, p.A, p.B)
			}
		default:
			return fmt.Errorf("delta: unknown route kind for %v", sig)
		}
		e.entries[i] = ent
	}
	return nil
}

// rebuildPlan re-synthesizes the PDN from the current geometry. Both
// builders are deterministic pure functions of structure and geometry,
// so rebuilding after a revert restores the plan bit for bit.
func (e *Evaluator) rebuildPlan() error {
	var err error
	switch e.kind {
	case pdnNone:
		e.plan = nil
	case pdnTree:
		e.plan, err = pdn.BuildTree(e.d)
	case pdnComb:
		e.plan, err = pdn.BuildComb(e.d)
	}
	return err
}

// applyGeometry moves one node and refreshes everything derived from
// positions: the tour geometry, the paths of shortcuts ending at the
// node, and the PDN plan. Pure recomputation — applying a position and
// applying it again (as a revert does) produces identical state.
func (e *Evaluator) applyGeometry(node int, p geom.Point) error {
	e.net.Nodes[node].Pos = p
	if err := e.d.RefreshGeometry(); err != nil {
		return err
	}
	for si, s := range e.d.Shortcuts {
		if s.A == node || s.B == node {
			s.PathAB = geom.LPath(e.net.Nodes[s.A].Pos, e.net.Nodes[s.B].Pos, e.scOrders[si])
		}
	}
	return e.rebuildPlan()
}

// ringDirty reports whether the move of node moved invalidates a ring
// signal's cached bend count: one of the two tour edges adjacent to the
// moved node lies inside the signal's covered interval.
func (e *Evaluator) ringDirty(ent *sigEntry, moved int) bool {
	n := e.d.N()
	tm := e.d.TourPos(moved)
	for _, edge := range [2]int{(tm + n - 1) % n, tm} {
		if (edge-ent.lo+n)%n < ent.span {
			return true
		}
	}
	return false
}

// scDirty reports whether the move invalidates a shortcut signal's
// cached geometry: the moved node is one of its dependency endpoints.
func scDirty(ent *sigEntry, moved int) bool {
	for _, dep := range ent.deps {
		if dep == moved {
			return true
		}
	}
	return false
}

// evaluate produces the analysis reports for the current geometry.
// moved identifies the node whose position differs from the cached
// state (-1 treats every signal as dirty, as the initial evaluation
// must). With commit set, recomputed geometry facts are written back to
// the cache; a scratch evaluation (a proposal that may be rejected)
// leaves the cache at the pre-move state.
func (e *Evaluator) evaluate(moved int, commit bool) (*Reports, error) {
	d, par := e.d, e.d.Par
	losses := make([]*loss.SignalLoss, len(e.entries))
	dirtyCount := 0
	for i := range e.entries {
		ent := &e.entries[i]
		sig, r := ent.sig, ent.r
		var c loss.Counts
		switch r.Kind {
		case router.OnRing:
			bends := ent.bends
			if moved < 0 || e.ringDirty(ent, moved) {
				dirtyCount++
				bends = d.BendsOnArc(sig.Src, sig.Dst, d.Waveguides[r.WG].Dir)
				if commit {
					ent.bends = bends
				}
			}
			w := d.Waveguides[r.WG]
			crossings := 0
			if len(w.Crossings) > 0 {
				// Crossing positions are arc coordinates — geometry, not
				// structure — so a ring that has any (comb PDN baselines
				// only; the XRing flow produces none) is recounted from
				// the fresh interval every time.
				crossings = d.CrossingsOnArc(w, sig.Src, sig.Dst)
			}
			c = loss.Counts{
				PathLen:   loss.RingPathLen(d, sig, r),
				Throughs:  ent.throughs,
				Drops:     ent.drops,
				Crossings: crossings,
				Bends:     bends,
			}
		case router.OnShortcut:
			scLen, bends := ent.scLen, ent.bends
			if moved < 0 || scDirty(ent, moved) {
				dirtyCount++
				scLen, bends = loss.ShortcutGeometry(d, sig, r)
				if commit {
					ent.scLen, ent.bends = scLen, bends
				}
			}
			c = loss.Counts{
				PathLen:   scLen,
				Throughs:  ent.throughs,
				Drops:     ent.drops,
				Crossings: ent.crossings,
				Bends:     bends,
			}
		}
		sl := loss.FromCounts(par, sig, r, c)
		if e.plan != nil {
			pl, err := e.plan.SenderLossDB(par, loss.FeedKeyFor(sig, r))
			if err != nil {
				return nil, err
			}
			sl.PDNLoss = pl
		}
		losses[i] = sl
	}
	lrep := loss.Summarize(d, e.sigs, losses)
	xrep, err := e.engine.Analyze(e.plan, lrep, e.opt.Xtalk)
	if err != nil {
		return nil, err
	}
	mEvals.Inc()
	mDirty.Add(int64(dirtyCount))
	mClean.Add(int64(len(e.entries) - dirtyCount))
	hDirty.Observe(float64(dirtyCount))
	return &Reports{Loss: lrep, Xtalk: xrep}, nil
}

// EvalMove scores moving node to position p without committing: the
// move is applied, the dirty subset evaluated, and the geometry
// reverted. The revert is a pure recomputation from the restored
// positions, so the evaluator state afterwards is bit-identical to the
// state before.
func (e *Evaluator) EvalMove(node int, p geom.Point) (*Reports, error) {
	if node < 0 || node >= e.net.N() {
		return nil, fmt.Errorf("delta: node %d out of range", node)
	}
	old := e.net.Nodes[node].Pos
	if err := e.applyGeometry(node, p); err != nil {
		return nil, err
	}
	rep, evalErr := e.evaluate(node, false)
	if err := e.applyGeometry(node, old); err != nil {
		return nil, err
	}
	return rep, evalErr
}

// Commit applies a move permanently: geometry is updated, the dirty
// cache lines are rewritten, and the committed reports become the
// evaluator's current reports. Every CrossCheckEvery commits, a full
// recompute verifies the delta-maintained reports.
func (e *Evaluator) Commit(node int, p geom.Point) (*Reports, error) {
	if node < 0 || node >= e.net.N() {
		return nil, fmt.Errorf("delta: node %d out of range", node)
	}
	if err := e.applyGeometry(node, p); err != nil {
		return nil, err
	}
	rep, err := e.evaluate(node, true)
	if err != nil {
		return nil, err
	}
	e.last = rep
	e.commits++
	mCommits.Inc()
	if e.opt.CrossCheckEvery > 0 && e.commits%e.opt.CrossCheckEvery == 0 {
		if err := e.CrossCheck(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// CheckMove is EvalMove plus an immediate full-recompute equivalence
// check at the proposed geometry, for tests and the xbench gate. The
// move is reverted either way; a non-nil error means the delta engine
// and the full analysis disagree.
func (e *Evaluator) CheckMove(node int, p geom.Point) (*Reports, error) {
	if node < 0 || node >= e.net.N() {
		return nil, fmt.Errorf("delta: node %d out of range", node)
	}
	old := e.net.Nodes[node].Pos
	if err := e.applyGeometry(node, p); err != nil {
		return nil, err
	}
	rep, evalErr := e.evaluate(node, false)
	var checkErr error
	if evalErr == nil {
		var full *Reports
		full, checkErr = e.FullRecompute()
		if checkErr == nil {
			checkErr = CompareReports(rep, full, 0)
		}
	}
	if err := e.applyGeometry(node, old); err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return rep, checkErr
}

// FullRecompute runs the full loss and crosstalk analyses on the
// evaluator's structure at its current geometry — the reference every
// delta evaluation must match bit for bit.
func (e *Evaluator) FullRecompute() (*Reports, error) {
	ctx := context.Background()
	lrep, err := loss.AnalyzeCtx(ctx, e.d, e.plan)
	if err != nil {
		return nil, err
	}
	xrep, err := xtalk.AnalyzeOptsCtx(ctx, e.d, e.plan, lrep, e.opt.Xtalk)
	if err != nil {
		return nil, err
	}
	return &Reports{Loss: lrep, Xtalk: xrep}, nil
}

// CrossCheck verifies the current delta-maintained reports against a
// full recompute, hard-failing on any mismatch beyond milp.Eps.
func (e *Evaluator) CrossCheck() error {
	mCrossChecks.Inc()
	full, err := e.FullRecompute()
	if err != nil {
		return err
	}
	if err := CompareReports(e.last, full, milp.Eps); err != nil {
		return fmt.Errorf("delta: cross-check failed after %d commits: %w", e.commits, err)
	}
	return nil
}

// Reports returns the evaluator's current (last committed) reports.
func (e *Evaluator) Reports() *Reports { return e.last }

// Network returns the evaluator's private network. Callers must treat
// it as read-only; positions change through EvalMove/Commit only.
func (e *Evaluator) Network() *noc.Network { return e.net }

// Design returns the evaluator's private design (read-only).
func (e *Evaluator) Design() *router.Design { return e.d }

// Commits returns the number of committed moves.
func (e *Evaluator) Commits() int { return e.commits }

// CompareReports checks two report bundles for equality within eps
// (eps 0 demands bit-identity). It compares every per-signal loss
// field, the report aggregates, and the crosstalk noise maps.
func CompareReports(a, b *Reports, eps float64) error {
	if a == nil || b == nil {
		return fmt.Errorf("delta: nil reports")
	}
	if err := compareLoss(a.Loss, b.Loss, eps); err != nil {
		return err
	}
	return compareXtalk(a.Xtalk, b.Xtalk, eps)
}

func compareLoss(a, b *loss.Report, eps float64) error {
	if len(a.Signals) != len(b.Signals) {
		return fmt.Errorf("signal count %d vs %d", len(a.Signals), len(b.Signals))
	}
	for sig, sa := range a.Signals {
		sb := b.Signals[sig]
		if sb == nil {
			return fmt.Errorf("signal %v missing from reference", sig)
		}
		if sa.Throughs != sb.Throughs || sa.Drops != sb.Drops ||
			sa.Crossings != sb.Crossings || sa.Bends != sb.Bends || sa.WL != sb.WL {
			return fmt.Errorf("signal %v counts %+v vs %+v", sig, *sa, *sb)
		}
		if !closeEnough(sa.IL, sb.IL, eps) {
			return fmt.Errorf("signal %v IL %v vs %v", sig, sa.IL, sb.IL)
		}
		if !closeEnough(sa.ILBeforeDrop, sb.ILBeforeDrop, eps) {
			return fmt.Errorf("signal %v ILBeforeDrop %v vs %v", sig, sa.ILBeforeDrop, sb.ILBeforeDrop)
		}
		if !closeEnough(sa.PDNLoss, sb.PDNLoss, eps) {
			return fmt.Errorf("signal %v PDNLoss %v vs %v", sig, sa.PDNLoss, sb.PDNLoss)
		}
		if !closeEnough(sa.PathLen, sb.PathLen, eps) {
			return fmt.Errorf("signal %v PathLen %v vs %v", sig, sa.PathLen, sb.PathLen)
		}
	}
	if a.Worst != b.Worst || a.WorstCrossings != b.WorstCrossings ||
		a.WavelengthCount != b.WavelengthCount {
		return fmt.Errorf("worst/aggregate mismatch: %v/%d/%d vs %v/%d/%d",
			a.Worst, a.WorstCrossings, a.WavelengthCount,
			b.Worst, b.WorstCrossings, b.WavelengthCount)
	}
	if !closeEnough(a.WorstIL, b.WorstIL, eps) {
		return fmt.Errorf("WorstIL %v vs %v", a.WorstIL, b.WorstIL)
	}
	if !closeEnough(a.WorstLen, b.WorstLen, eps) {
		return fmt.Errorf("WorstLen %v vs %v", a.WorstLen, b.WorstLen)
	}
	if !closeEnough(a.TotalPowerMW, b.TotalPowerMW, eps) {
		return fmt.Errorf("TotalPowerMW %v vs %v", a.TotalPowerMW, b.TotalPowerMW)
	}
	if len(a.WavelengthPower) != len(b.WavelengthPower) {
		return fmt.Errorf("wavelength count %d vs %d", len(a.WavelengthPower), len(b.WavelengthPower))
	}
	for wl, pa := range a.WavelengthPower {
		if !closeEnough(pa, b.WavelengthPower[wl], eps) {
			return fmt.Errorf("wavelength %d power %v vs %v", wl, pa, b.WavelengthPower[wl])
		}
	}
	return nil
}

func compareXtalk(a, b *xtalk.Report, eps float64) error {
	if a.NumNoisy != b.NumNoisy || a.WorstSNRSignal != b.WorstSNRSignal {
		return fmt.Errorf("noisy %d/%v vs %d/%v",
			a.NumNoisy, a.WorstSNRSignal, b.NumNoisy, b.WorstSNRSignal)
	}
	if !closeEnough(a.WorstSNR, b.WorstSNR, eps) {
		return fmt.Errorf("WorstSNR %v vs %v", a.WorstSNR, b.WorstSNR)
	}
	if !closeEnough(a.NoiseFreeFrac, b.NoiseFreeFrac, eps) {
		return fmt.Errorf("NoiseFreeFrac %v vs %v", a.NoiseFreeFrac, b.NoiseFreeFrac)
	}
	if len(a.NoiseMW) != len(b.NoiseMW) || len(a.SignalMW) != len(b.SignalMW) {
		return fmt.Errorf("noise/signal map sizes %d/%d vs %d/%d",
			len(a.NoiseMW), len(a.SignalMW), len(b.NoiseMW), len(b.SignalMW))
	}
	for sig, na := range a.NoiseMW {
		if !closeEnough(na, b.NoiseMW[sig], eps) {
			return fmt.Errorf("noise for %v: %v vs %v", sig, na, b.NoiseMW[sig])
		}
	}
	for sig, sa := range a.SignalMW {
		if !closeEnough(sa, b.SignalMW[sig], eps) {
			return fmt.Errorf("signal power for %v: %v vs %v", sig, sa, b.SignalMW[sig])
		}
	}
	return nil
}

// closeEnough compares within eps; infinities must match exactly (a
// noise-free design has WorstSNR = +Inf in both reports).
func closeEnough(a, b, eps float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps
}
