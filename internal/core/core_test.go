package core

import (
	"math"
	"testing"
	"time"

	"xring/internal/baselines/oring"
	"xring/internal/baselines/ornoc"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
	"xring/internal/xtalk"
)

func TestSynthesizeFullFlow8(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.CrossingsAdded != 0 {
		t.Fatal("XRing PDN must exist and be crossing-free")
	}
	if len(res.Design.Routes) != 56 {
		t.Fatalf("routes = %d", len(res.Design.Routes))
	}
	if res.Loss == nil || res.Xtalk == nil {
		t.Fatal("analyses missing")
	}
	if res.SynthTime <= 0 || res.SynthTime > 10*time.Second {
		t.Fatalf("implausible synthesis time %v", res.SynthTime)
	}
	// The paper's computational-efficiency claim: a 16-node router with
	// PDN synthesizes within one second. Our 8-node case must be far
	// under that.
	if res.SynthTime > time.Second {
		t.Fatalf("synthesis took %v, want < 1s", res.SynthTime)
	}
}

func TestSynthesizeWithoutPDN(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Fatal("no PDN requested")
	}
	for _, w := range res.Design.Waveguides {
		if w.Opening != -1 {
			t.Fatal("Table I configuration must not open waveguides")
		}
	}
}

func TestAblationFlags(t *testing.T) {
	net := noc.Floorplan8()
	noSC, err := Synthesize(net, Options{MaxWL: 8, DisableShortcuts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(noSC.Design.Shortcuts) != 0 {
		t.Fatal("DisableShortcuts leaked shortcuts")
	}
	combPDN, err := Synthesize(net, Options{MaxWL: 8, WithPDN: true, NoOpenings: true})
	if err != nil {
		t.Fatal(err)
	}
	if combPDN.Plan == nil || combPDN.Plan.Kind.String() != "comb" {
		t.Fatal("NoOpenings+WithPDN should fall back to the comb PDN")
	}
}

func TestSweepObjectives(t *testing.T) {
	net := noc.Floorplan8()
	minP, wlP, err := Sweep(net, Options{WithPDN: true}, MinPower, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	maxS, wlS, err := Sweep(net, Options{WithPDN: true}, MaxSNR, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if wlP < 2 || wlP > 8 || wlS < 2 || wlS > 8 {
		t.Fatalf("selected #wl out of candidate range: %d %d", wlP, wlS)
	}
	// The min-power pick must not have more power than the max-SNR pick.
	if minP.Loss.TotalPowerMW > maxS.Loss.TotalPowerMW+1e-12 {
		t.Fatalf("min-power sweep picked higher power (%v) than max-SNR pick (%v)",
			minP.Loss.TotalPowerMW, maxS.Loss.TotalPowerMW)
	}
	// The max-SNR pick must not have worse SNR than the min-power pick.
	if maxS.Xtalk.WorstSNR < minP.Xtalk.WorstSNR-1e-9 {
		t.Fatalf("max-SNR sweep picked lower SNR")
	}
}

func TestSweepMinIL(t *testing.T) {
	net := noc.Floorplan8()
	best, _, err := Sweep(net, Options{}, MinWorstIL, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify dominance over all candidates re-synthesized directly.
	for _, wl := range []int{1, 2, 4, 8} {
		r, err := Synthesize(net, Options{MaxWL: wl})
		if err != nil {
			continue
		}
		if r.Loss.WorstIL < best.Loss.WorstIL-1e-9 {
			t.Fatalf("sweep missed better #wl=%d (%v < %v)", wl, r.Loss.WorstIL, best.Loss.WorstIL)
		}
	}
}

// TestPaperShapeTable2 checks the defining Table II orderings on the
// 16-node network: XRing beats ORNoC on worst IL, power, crossings on
// the worst path, noisy-signal count and worst SNR.
func TestPaperShapeTable2(t *testing.T) {
	net := noc.Floorplan16()
	xr, _, err := Sweep(net, Options{WithPDN: true}, MinPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	var onBest *ornoc.Result
	var onLoss *loss.Report
	var onX *xtalk.Report
	bestP := math.Inf(1)
	for _, wl := range []int{8, 12, 14, 16} {
		on, err := ornoc.Synthesize(net, phys.Default(), wl, true)
		if err != nil {
			continue
		}
		lr, err := loss.Analyze(on.Design, on.Plan)
		if err != nil {
			continue
		}
		if lr.TotalPowerMW < bestP {
			bestP = lr.TotalPowerMW
			onBest = on
			onLoss = lr
			xr2, err := xtalk.Analyze(on.Design, on.Plan, lr)
			if err != nil {
				t.Fatal(err)
			}
			onX = xr2
		}
	}
	if onBest == nil {
		t.Fatal("no feasible ORNoC setting")
	}
	if xr.Loss.WorstIL >= onLoss.WorstIL {
		t.Fatalf("XRing il_w* %v should beat ORNoC %v", xr.Loss.WorstIL, onLoss.WorstIL)
	}
	if xr.Loss.TotalPowerMW >= onLoss.TotalPowerMW {
		t.Fatalf("XRing power %v should beat ORNoC %v", xr.Loss.TotalPowerMW, onLoss.TotalPowerMW)
	}
	if xr.Loss.WorstCrossings != 0 {
		t.Fatalf("XRing C = %d, want 0", xr.Loss.WorstCrossings)
	}
	if onLoss.WorstCrossings == 0 {
		t.Fatal("ORNoC worst path should pass crossings")
	}
	if xr.Xtalk.NumNoisy >= onX.NumNoisy {
		t.Fatalf("XRing #s %d should be far below ORNoC %d", xr.Xtalk.NumNoisy, onX.NumNoisy)
	}
	if xr.Xtalk.NoiseFreeFrac < 0.98 {
		t.Fatalf("XRing noise-free fraction %.3f < 0.98", xr.Xtalk.NoiseFreeFrac)
	}
	if !math.IsInf(xr.Xtalk.WorstSNR, 1) && xr.Xtalk.WorstSNR <= onX.WorstSNR {
		t.Fatalf("XRing SNR_w %v should beat ORNoC %v", xr.Xtalk.WorstSNR, onX.WorstSNR)
	}
}

// TestPaperShapeTable3 checks the Table III orderings against ORing on
// the 16-node network.
func TestPaperShapeTable3(t *testing.T) {
	net := noc.Floorplan16()
	xr, _, err := Sweep(net, Options{WithPDN: true}, MinPower, []int{10, 12, 14, 16})
	if err != nil {
		t.Fatal(err)
	}
	var bestLoss *loss.Report
	var bestX *xtalk.Report
	bestP := math.Inf(1)
	for _, wl := range []int{10, 12, 14, 16} {
		or, err := oring.Synthesize(net, phys.Default(), wl, true)
		if err != nil {
			continue
		}
		lr, err := loss.Analyze(or.Design, or.Plan)
		if err != nil {
			continue
		}
		if lr.TotalPowerMW < bestP {
			bestP = lr.TotalPowerMW
			bestLoss = lr
			bestX, err = xtalk.Analyze(or.Design, or.Plan, lr)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if bestLoss == nil {
		t.Fatal("no feasible ORing setting")
	}
	if xr.Loss.TotalPowerMW >= bestLoss.TotalPowerMW {
		t.Fatalf("XRing power %v should beat ORing %v", xr.Loss.TotalPowerMW, bestLoss.TotalPowerMW)
	}
	if xr.Xtalk.NumNoisy >= bestX.NumNoisy {
		t.Fatalf("XRing #s %d should beat ORing %d", xr.Xtalk.NumNoisy, bestX.NumNoisy)
	}
	// ORing's comb PDN leaves the majority of signals noisy (87% in the
	// paper); require at least half here.
	if frac := float64(bestX.NumNoisy) / 240; frac < 0.5 {
		t.Fatalf("ORing noisy fraction %.2f implausibly low", frac)
	}
}

func TestObjectiveStrings(t *testing.T) {
	if MinWorstIL.String() != "min-il" || MinPower.String() != "min-power" || MaxSNR.String() != "max-snr" {
		t.Fatal("Objective.String")
	}
}

func TestSynthesize32(t *testing.T) {
	net := noc.Floorplan32()
	res, err := Synthesize(net, Options{MaxWL: 30, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Routes) != 32*31 {
		t.Fatalf("routes = %d", len(res.Design.Routes))
	}
	if res.Xtalk.NoiseFreeFrac < 0.98 {
		t.Fatalf("32-node noise-free fraction %.3f", res.Xtalk.NoiseFreeFrac)
	}
}

func TestCustomTraffic(t *testing.T) {
	net := noc.Floorplan16()
	// Hotspot pattern: everyone talks to node 0 and back.
	var traffic []noc.Signal
	for i := 1; i < 16; i++ {
		traffic = append(traffic, noc.Signal{Src: i, Dst: 0}, noc.Signal{Src: 0, Dst: i})
	}
	res, err := Synthesize(net, Options{MaxWL: 8, WithPDN: true, Traffic: traffic})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Routes) != 30 {
		t.Fatalf("routes = %d, want 30", len(res.Design.Routes))
	}
	for _, sig := range traffic {
		if _, ok := res.Design.Routes[sig]; !ok {
			t.Fatalf("signal %v unrouted", sig)
		}
	}
	// A hotspot needs far fewer resources than all-to-all.
	full, err := Synthesize(net, Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Waveguides) >= len(full.Design.Waveguides) {
		t.Fatalf("hotspot should need fewer waveguides: %d vs %d",
			len(res.Design.Waveguides), len(full.Design.Waveguides))
	}
	if res.Loss.TotalPowerMW >= full.Loss.TotalPowerMW {
		t.Fatal("hotspot should need less laser power than all-to-all")
	}
}

func TestCustomTrafficRejectsBadInput(t *testing.T) {
	net := noc.Floorplan8()
	if _, err := Synthesize(net, Options{MaxWL: 8,
		Traffic: []noc.Signal{{Src: 1, Dst: 1}}}); err == nil {
		t.Fatal("want error for self-signal traffic")
	}
	if _, err := Synthesize(net, Options{MaxWL: 8,
		Traffic: []noc.Signal{{Src: 1, Dst: 2}, {Src: 1, Dst: 2}}}); err == nil {
		t.Fatal("want error for duplicate traffic")
	}
}

func TestNeighborTrafficUsesShortArcs(t *testing.T) {
	net := noc.Floorplan8()
	// Ring-neighbour traffic only.
	res0, err := Synthesize(net, Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	tour := res0.Design.Tour
	var traffic []noc.Signal
	for i := range tour {
		traffic = append(traffic, noc.Signal{Src: tour[i], Dst: tour[(i+1)%len(tour)]})
	}
	res, err := Synthesize(net, Options{MaxWL: 8, Traffic: traffic})
	if err != nil {
		t.Fatal(err)
	}
	// Every signal rides a single tour edge: worst path = max edge.
	maxEdge := 0.0
	for i := range tour {
		l := res.Design.ArcLen(tour[i], tour[(i+1)%len(tour)], router.CW)
		if l > maxEdge {
			maxEdge = l
		}
	}
	if res.Loss.WorstLen > maxEdge+1e-9 {
		t.Fatalf("neighbour traffic worst path %v exceeds max edge %v",
			res.Loss.WorstLen, maxEdge)
	}
}

func TestDirectionsBalanced(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	cw := len(res.Design.WaveguidesByDir(router.CW))
	ccw := len(res.Design.WaveguidesByDir(router.CCW))
	if cw == 0 || ccw == 0 {
		t.Fatalf("both directions should be used: cw=%d ccw=%d", cw, ccw)
	}
}
