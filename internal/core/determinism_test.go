package core

import (
	"math/rand"
	"testing"

	"xring/internal/noc"
	"xring/internal/parallel"
)

// sameWinner fails the test unless a and b are the same sweep winner:
// identical candidate identity and identical analysis numbers.
func sameWinner(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Opt.MaxWL != b.Opt.MaxWL || a.Opt.ShareWavelengths != b.Opt.ShareWavelengths {
		t.Fatalf("%s: winners differ: (#wl=%d share=%v) vs (#wl=%d share=%v)",
			label, a.Opt.MaxWL, a.Opt.ShareWavelengths, b.Opt.MaxWL, b.Opt.ShareWavelengths)
	}
	if a.Loss.TotalPowerMW != b.Loss.TotalPowerMW {
		t.Fatalf("%s: power differs: %v vs %v", label, a.Loss.TotalPowerMW, b.Loss.TotalPowerMW)
	}
	if a.Loss.WorstIL != b.Loss.WorstIL {
		t.Fatalf("%s: worst IL differs: %v vs %v", label, a.Loss.WorstIL, b.Loss.WorstIL)
	}
	if a.Xtalk.WorstSNR != b.Xtalk.WorstSNR {
		t.Fatalf("%s: worst SNR differs: %v vs %v", label, a.Xtalk.WorstSNR, b.Xtalk.WorstSNR)
	}
}

// TestSweepParallelMatchesSerial is the tentpole's acceptance check:
// the parallel sweep must return the identical winner as the serial
// sweep, on every tested floorplan and objective, for any worker count.
func TestSweepParallelMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	nets := map[string]*noc.Network{
		"fp8":  noc.Floorplan8(),
		"fp16": noc.Floorplan16(),
	}
	for name, net := range nets {
		for _, objective := range []Objective{MinWorstIL, MinPower, MaxSNR} {
			parallel.SetWorkers(1)
			ResetRingCache()
			serial, wlS, err := Sweep(net, Options{WithPDN: true, Serial: true}, objective, nil)
			if err != nil {
				t.Fatalf("%s/%v serial: %v", name, objective, err)
			}
			for _, workers := range []int{2, 8} {
				parallel.SetWorkers(workers)
				ResetRingCache()
				par, wlP, err := Sweep(net, Options{WithPDN: true}, objective, nil)
				if err != nil {
					t.Fatalf("%s/%v parallel(%d): %v", name, objective, workers, err)
				}
				if wlS != wlP {
					t.Fatalf("%s/%v: serial picked #wl=%d, parallel(%d) picked #wl=%d",
						name, objective, wlS, workers, wlP)
				}
				sameWinner(t, name+"/"+objective.String(), serial, par)
			}
		}
	}
}

// TestSweepTieBreakShuffledCandidates pins satellite (a): the winner
// must not depend on the order of the caller's candidate list, and
// duplicates must be harmless.
func TestSweepTieBreakShuffledCandidates(t *testing.T) {
	net := noc.Floorplan8()
	canonical := []int{1, 2, 3, 4, 5, 6, 7, 8}
	ref, refWL, err := Sweep(net, Options{WithPDN: true, Serial: true}, MinPower, canonical)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]int(nil), canonical...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Inject a duplicate to exercise deduplication.
		shuffled = append(shuffled, shuffled[0])
		got, gotWL, err := Sweep(net, Options{WithPDN: true}, MinPower, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if gotWL != refWL {
			t.Fatalf("trial %d: shuffled candidates %v picked #wl=%d, want %d", trial, shuffled, gotWL, refWL)
		}
		sameWinner(t, "shuffled", ref, got)
	}
}

// TestSweepTieBreakPrefersLowerPower constructs two results with equal
// scores and checks the documented chain: power, then #wl, then fresh
// wavelengths first.
func TestSweepTieBreakPrefersLowerPower(t *testing.T) {
	net := noc.Floorplan8()
	res, err := Synthesize(net, Options{WithPDN: true, MaxWL: 4})
	if err != nil {
		t.Fatal(err)
	}
	lower := *res
	lowerLoss := *res.Loss
	lowerLoss.TotalPowerMW = res.Loss.TotalPowerMW / 2
	lower.Loss = &lowerLoss

	// Same MinWorstIL score, lower power: lower must win either way.
	if !betterResult(MinWorstIL, &lower, res) {
		t.Fatal("equal score: lower power must win")
	}
	if betterResult(MinWorstIL, res, &lower) {
		t.Fatal("equal score: higher power must lose")
	}

	// Equal score and power: lower #wl wins.
	lowWL := *res
	lowWL.Opt.MaxWL = res.Opt.MaxWL - 1
	if !betterResult(MinWorstIL, &lowWL, res) || betterResult(MinWorstIL, res, &lowWL) {
		t.Fatal("equal score and power: lower #wl must win")
	}

	// Equal score, power and #wl: fresh wavelengths beat sharing.
	share := *res
	share.Opt.ShareWavelengths = true
	if !betterResult(MinWorstIL, res, &share) || betterResult(MinWorstIL, &share, res) {
		t.Fatal("full tie: fresh wavelength policy must win")
	}
}

// TestRingCacheHit checks that a second synthesis of the same floorplan
// reuses the Step-1 result (pointer identity of the cached ring).
func TestRingCacheHit(t *testing.T) {
	ResetRingCache()
	net := noc.Floorplan8()
	a, err := Synthesize(net, Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(net, Options{MaxWL: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ring != b.Ring {
		t.Fatal("expected the second synthesis to reuse the cached Step-1 result")
	}
	// A different geometry must miss.
	other := noc.Irregular(8, 12, 12, 1.5, 4)
	c, err := Synthesize(other, Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Ring == a.Ring {
		t.Fatal("different floorplan must not hit the cache")
	}
}
