package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"xring/internal/noc"
	"xring/internal/parallel"
)

// TestSynthesizeCancelsAtEveryStageBoundary: the pipeline polls the
// context between Steps 2-4 and before each analysis, so wherever a
// service deadline fires, the run aborts at the next boundary instead
// of completing the remaining stages. The test counts the Err polls of
// a full serial run, then replays it cancelling at every possible poll
// and requires the context error back each time.
func TestSynthesizeCancelsAtEveryStageBoundary(t *testing.T) {
	parallel.SetWorkers(1) // deterministic poll sequence
	t.Cleanup(func() { parallel.SetWorkers(0) })
	net := noc.Floorplan8()
	opt := Options{MaxWL: 8, WithPDN: true}

	// Warm the Step-1 cache so every pass below hits it and the poll
	// sequences line up.
	if _, err := Synthesize(net, opt); err != nil {
		t.Fatal(err)
	}
	probe := &countingCtx{Context: context.Background(), limit: math.MaxInt64}
	if _, err := SynthesizeCtx(probe, net, opt); err != nil {
		t.Fatal(err)
	}
	full := probe.polls.Load()
	// Step boundaries alone contribute >= 5 polls (entry, post-shortcut,
	// post-mapping, pre-loss, pre-xtalk); the analysis fan-outs add more.
	if full < 5 {
		t.Fatalf("full pipeline polled ctx.Err %d times, want >= 5 stage boundaries", full)
	}
	for limit := int64(0); limit < full; limit++ {
		cctx := &countingCtx{Context: context.Background(), limit: limit}
		res, err := SynthesizeCtx(cctx, net, opt)
		if errors.Is(err, context.Canceled) {
			if res != nil {
				t.Fatalf("cancel at poll %d returned both a result and an error", limit)
			}
			continue
		}
		// A poll made by a fan-out after its last task completed is
		// benignly swallowed; that can only be a trailing poll of the
		// final analysis, never a stage boundary.
		if err == nil && res != nil && limit >= full-2 {
			continue
		}
		t.Fatalf("cancel at poll %d/%d: err = %v, want context.Canceled", limit, full, err)
	}
}
