// Package core orchestrates the complete XRing synthesis flow
// (Sec. III): Step 1 ring waveguide construction, Step 2 shortcut
// construction, Step 3 signal mapping and ring opening, Step 4 PDN
// design, followed by the insertion-loss and crosstalk analyses. It
// also provides the #wl sweep the paper's evaluation uses ("we vary the
// settings of #wl and pick the one with the minimum power and maximum
// SNR").
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"xring/internal/resilience"

	"xring/internal/geom"
	"xring/internal/loss"
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
	"xring/internal/xtalk"
)

// Sweep telemetry: candidates evaluated (feasible + infeasible) and the
// chosen winner's #wl, for correlating a sweep's cost with its outcome.
var (
	mSweepCandidates  = obs.NewCounter("core.sweep.candidates")
	mSweepInfeasible  = obs.NewCounter("core.sweep.infeasible")
	mSweepWinnerWL    = obs.NewGauge("core.sweep.winner.wl")
	mSynthesizeCalls  = obs.NewCounter("core.synthesize.calls")
	mSynthesizeErrors = obs.NewCounter("core.synthesize.errors")
	// Degraded-mode fallbacks: Step-1 requests that fell back to the
	// heuristic ring constructor, split by trigger.
	mFallbackBudget   = obs.NewCounter("core.fallback.budget")
	mFallbackDeadline = obs.NewCounter("core.fallback.deadline")
)

// Options configures a synthesis run.
type Options struct {
	// Par supplies the technology parameters; the zero value selects
	// phys.Default().
	Par *phys.Params
	// MaxWL is the per-ring wavelength budget #wl. Zero selects N.
	MaxWL int
	// WithPDN synthesizes the Step-4 tree PDN and enables the power and
	// crosstalk analyses to include it (Tables II/III configuration).
	// Without it the router matches Table I ("we do not perform PDN
	// design for XRing" there).
	WithPDN bool

	// Traffic restricts the signals the router must support; nil means
	// all-to-all (the paper's evaluation pattern). Application-specific
	// communication graphs go here.
	Traffic []noc.Signal

	// ShareWavelengths maps signals with ORing-style wavelength reuse
	// (Sec. III-C inherits the method of [17]): fewer ring waveguides at
	// the price of drop-leakage noise along reuse chains. The default
	// policy gives every signal a fresh (waveguide, wavelength) slot.
	// Sweep explores both.
	ShareWavelengths bool

	// Serial forces Sweep (and the placement optimizer consuming these
	// options) to evaluate candidates sequentially on the calling
	// goroutine instead of fanning out over the worker pool. The
	// parallel path reduces in canonical candidate order and returns
	// the identical winner; Serial exists as the cross-check in tests
	// and as a debugging aid.
	Serial bool

	// Ablation switches.
	DisableShortcuts bool // skip Step 2 entirely
	NoCSE            bool // Step 2 without CSE merging of crossing shortcuts
	NoOpenings       bool // Step 3 without ring openings (implies no tree PDN)
	DisableConflicts bool // Step 1 without the Eq. (3) conflict constraints

	// RingMaxNodes caps the Step-1 branch and bound (0 = default).
	RingMaxNodes int

	// NoFallback disables degraded-mode synthesis: when the Step-1
	// exact solver exhausts its budget (milp.ErrBudget) or the deadline
	// is nearly spent, the flow normally falls back to the heuristic
	// ring constructor and marks the result Degraded. With NoFallback
	// the original error is returned instead — for callers that would
	// rather fail than serve a non-optimal ring.
	NoFallback bool

	// FaultTolerance requests a k-fault-tolerant design: Step 3
	// additionally maps a cold-standby spare route per signal onto
	// dedicated protection waveguides (see mapping.Options.FaultTolerance),
	// so the full signal set survives any single MRR failure or
	// ring-segment cut. Supported values: 0 (off, the nominal flow —
	// byte-identical results to builds without this field) and 1.
	FaultTolerance int
}

// Result is a fully synthesized and analyzed XRing router.
type Result struct {
	Design   *router.Design
	Ring     *ring.Result
	MapStats *mapping.Stats
	Plan     *pdn.Plan // nil without PDN
	Loss     *loss.Report
	Xtalk    *xtalk.Report
	// Opt records the options the design was synthesized with (sweeps
	// vary MaxWL and ShareWavelengths).
	Opt Options
	// SynthTime covers synthesis only (Steps 1-4), excluding analyses,
	// matching the paper's T column.
	SynthTime time.Duration
	// Degraded marks a result produced through a fallback path (the
	// heuristic ring constructor stood in for the exact solver);
	// DegradedReason says why. The design is still fully routed and
	// validated — only Step-1 optimality is forfeited.
	Degraded       bool
	DegradedReason string
}

// Synthesize runs the full flow on a network. Step 1 results are
// served from the floorplan-keyed ring cache when the same geometry
// was synthesized before.
func Synthesize(net *noc.Network, opt Options) (*Result, error) {
	return SynthesizeCtx(context.Background(), net, opt)
}

// SynthesizeCtx is Synthesize under a context: trace spans nest beneath
// the caller's span, and cancellation is honoured between the pipeline
// stages and inside the analysis fan-outs.
func SynthesizeCtx(ctx context.Context, net *noc.Network, opt Options) (*Result, error) {
	ctx, span := obs.Start(ctx, "core.synthesize",
		obs.Int("nodes", net.N()), obs.Int("max_wl", opt.MaxWL),
		obs.Bool("share", opt.ShareWavelengths), obs.Bool("pdn", opt.WithPDN))
	defer span.End()
	t0 := time.Now()
	rres, degradedReason, err := constructRingResilient(ctx, net, ring.Options{
		MaxNodes:         opt.RingMaxNodes,
		DisableConflicts: opt.DisableConflicts,
	}, opt.NoFallback)
	ringTime := time.Since(t0)
	if err != nil {
		return nil, err
	}
	res, err := SynthesizeOnRingCtx(ctx, net, rres, opt)
	if err != nil {
		return nil, err
	}
	res.SynthTime += ringTime
	res.Degraded = degradedReason != ""
	res.DegradedReason = degradedReason
	return res, nil
}

// SynthesizeOnRing runs Steps 2-4 and the analyses on a precomputed
// Step-1 result, so #wl sweeps share the ring construction.
func SynthesizeOnRing(net *noc.Network, rres *ring.Result, opt Options) (*Result, error) {
	return SynthesizeOnRingCtx(context.Background(), net, rres, opt)
}

// ctxErr polls a possibly-nil context for cancellation; the pipeline
// calls it between stages so a service deadline aborts at the next
// stage boundary instead of running the remaining steps and analyses.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func init() {
	resilience.RegisterFaultPoint("core.ring",
		"core.stage.entry", "core.stage.mapping", "core.stage.pdn",
		"core.stage.loss", "core.stage.xtalk")
}

// stageGate is the per-stage boundary check: cancellation first (so
// deadlines keep their stage-boundary promptness), then the named
// "core.stage.<stage>" fault point, which lets tests force failures,
// panics, or latency at any boundary of the pipeline.
func stageGate(ctx context.Context, stage string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return resilience.Fire(ctx, "core.stage."+stage)
}

// SynthesizeOnRingCtx is SynthesizeOnRing under a context (cancellation
// between stages and before each analysis, nested trace spans).
func SynthesizeOnRingCtx(ctx context.Context, net *noc.Network, rres *ring.Result, opt Options) (*Result, error) {
	return synthesizeOnRing(ctx, net, rres, opt, nil)
}

// shortcutSkeleton is a precomputed Step-2 result: the selected
// shortcuts before any channel is mapped onto them. Step 2 depends only
// on the geometry, the traffic and the shortcut ablation switches —
// never on the #wl budget or the sharing policy a sweep varies — so a
// sweep constructs it once and hands every candidate a private clone.
type shortcutSkeleton struct {
	shortcuts []*router.Shortcut
}

// clone returns candidate-private shortcut structs: mapping appends
// channels and must not see a sibling candidate's assignment.
func (s *shortcutSkeleton) clone() []*router.Shortcut {
	if s.shortcuts == nil {
		return nil
	}
	out := make([]*router.Shortcut, len(s.shortcuts))
	for i, sc := range s.shortcuts {
		cp := *sc
		cp.PathAB = append([]geom.Point(nil), sc.PathAB...)
		cp.Channels = nil
		out[i] = &cp
	}
	return out
}

// synthesizeOnRing runs Steps 2-4 and the analyses. With a non-nil
// skeleton, Step 2 is skipped and the skeleton's shortcut clones are
// installed instead (the sweep's shared-prefix path).
func synthesizeOnRing(ctx context.Context, net *noc.Network, rres *ring.Result, opt Options, skel *shortcutSkeleton) (*Result, error) {
	mSynthesizeCalls.Inc()
	if err := stageGate(ctx, "entry"); err != nil {
		return nil, err
	}
	par := phys.Default()
	if opt.Par != nil {
		par = *opt.Par
	}
	maxWL := opt.MaxWL
	if maxWL == 0 {
		maxWL = net.N()
	}
	start := time.Now()

	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		mSynthesizeErrors.Inc()
		return nil, err
	}
	if skel != nil {
		d.Shortcuts = skel.clone()
	} else {
		_, scSpan := obs.Start(ctx, "shortcut.construct")
		err = shortcut.Construct(d, shortcut.Options{
			Disable: opt.DisableShortcuts,
			NoCSE:   opt.NoCSE,
			Traffic: opt.Traffic,
		})
		scSpan.Set(obs.Int("shortcuts", len(d.Shortcuts)))
		scSpan.End()
		if err != nil {
			mSynthesizeErrors.Inc()
			return nil, err
		}
	}
	if err := stageGate(ctx, "mapping"); err != nil {
		return nil, err
	}
	noOpenings := opt.NoOpenings || !opt.WithPDN
	_, mapSpan := obs.Start(ctx, "mapping.run", obs.Int("max_wl", maxWL))
	stats, err := mapping.Run(d, mapping.Options{
		MaxWL:          maxWL,
		NoOpenings:     noOpenings,
		AlignOpenings:  true,
		PreferSharing:  opt.ShareWavelengths,
		MaxWaveguides:  mapping.WaveguideCap(net, par),
		Traffic:        opt.Traffic,
		FaultTolerance: opt.FaultTolerance,
	})
	if stats != nil {
		mapSpan.Set(obs.Int("waveguides", len(d.Waveguides)),
			obs.Int("ring_signals", stats.RingSignals),
			obs.Int("shortcut_signals", stats.ShortcutSignals))
	}
	mapSpan.End()
	if err != nil {
		mSynthesizeErrors.Inc()
		return nil, err
	}
	if err := stageGate(ctx, "pdn"); err != nil {
		return nil, err
	}
	// Step 4 always gets a span so a trace shows the decision even when
	// PDN design is skipped (Table-I configurations).
	var plan *pdn.Plan
	_, pdnSpan := obs.Start(ctx, "pdn.design")
	if opt.WithPDN {
		if opt.NoOpenings {
			// Ablation: XRing mapping but a comb PDN (no openings to
			// thread a tree through).
			plan, err = pdn.BuildComb(d)
		} else {
			plan, err = pdn.BuildTree(d)
		}
	}
	if plan != nil {
		pdnSpan.Set(obs.String("kind", plan.Kind.String()),
			obs.Int("crossings", plan.CrossingsAdded))
	} else {
		pdnSpan.Set(obs.String("kind", "none"))
	}
	pdnSpan.End()
	if err != nil {
		mSynthesizeErrors.Inc()
		return nil, err
	}
	synthTime := time.Since(start)

	if err := d.Validate(); err != nil {
		mSynthesizeErrors.Inc()
		return nil, fmt.Errorf("core: synthesized design invalid: %w", err)
	}
	// Poll before each analysis as well: loss and crosstalk dominate the
	// per-candidate cost at larger N, so a deadline that fires during
	// Step 4 must not pay for them.
	if err := stageGate(ctx, "loss"); err != nil {
		return nil, err
	}
	lrep, err := loss.AnalyzeCtx(ctx, d, plan)
	if err != nil {
		mSynthesizeErrors.Inc()
		return nil, err
	}
	if err := stageGate(ctx, "xtalk"); err != nil {
		return nil, err
	}
	xrep, err := xtalk.AnalyzeCtx(ctx, d, plan, lrep)
	if err != nil {
		mSynthesizeErrors.Inc()
		return nil, err
	}
	return &Result{
		Design:    d,
		Ring:      rres,
		MapStats:  stats,
		Plan:      plan,
		Loss:      lrep,
		Xtalk:     xrep,
		Opt:       opt,
		SynthTime: synthTime,
	}, nil
}

// buildShortcutSkeleton runs Step 2 once for a sweep: a throwaway
// design carries the construction, and its shortcuts become the shared
// skeleton every candidate clones.
func buildShortcutSkeleton(ctx context.Context, net *noc.Network, rres *ring.Result, opt Options) (*shortcutSkeleton, error) {
	par := phys.Default()
	if opt.Par != nil {
		par = *opt.Par
	}
	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		return nil, err
	}
	_, scSpan := obs.Start(ctx, "shortcut.construct")
	err = shortcut.Construct(d, shortcut.Options{
		Disable: opt.DisableShortcuts,
		NoCSE:   opt.NoCSE,
		Traffic: opt.Traffic,
	})
	scSpan.Set(obs.Int("shortcuts", len(d.Shortcuts)))
	scSpan.End()
	if err != nil {
		return nil, err
	}
	return &shortcutSkeleton{shortcuts: d.Shortcuts}, nil
}

// Objective selects what a #wl sweep optimizes.
type Objective int

// Sweep objectives, matching the paper's selection rules.
const (
	// MinWorstIL picks the setting with the minimum worst-case
	// insertion loss (Table I).
	MinWorstIL Objective = iota
	// MinPower picks the setting with the minimum total laser power
	// (Tables II/III "setting for min. power").
	MinPower
	// MaxSNR picks the setting with the maximum worst-case SNR, breaking
	// ties toward lower power (Tables II/III "setting for max. SNR").
	MaxSNR
)

func (o Objective) String() string {
	switch o {
	case MinWorstIL:
		return "min-il"
	case MinPower:
		return "min-power"
	default:
		return "max-snr"
	}
}

// Score returns the value the objective minimizes for a result.
func (o Objective) Score(r *Result) float64 {
	switch o {
	case MinWorstIL:
		return r.Loss.WorstIL
	case MinPower:
		return r.Loss.TotalPowerMW
	default:
		// Maximize worst SNR: minimize its negation. Noise-free designs
		// (SNR = +Inf) score best; ties resolved by power below.
		return -r.Xtalk.WorstSNR
	}
}

// sweepCandidate is one point of the sweep's design space.
type sweepCandidate struct {
	WL    int
	Share bool
}

// sweepCandidates expands a #wl candidate list (nil = 1..N) into the
// canonical candidate order: ascending #wl, deduplicated, the fresh
// wavelength policy before the sharing policy. The reduction walks
// this order, so the winner does not depend on how the caller ordered
// the input or on which worker finished first.
func sweepCandidates(net *noc.Network, candidates []int) []sweepCandidate {
	if candidates == nil {
		for wl := 1; wl <= net.N(); wl++ {
			candidates = append(candidates, wl)
		}
	}
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	out := make([]sweepCandidate, 0, 2*len(sorted))
	for i, wl := range sorted {
		if i > 0 && wl == sorted[i-1] {
			continue
		}
		out = append(out, sweepCandidate{WL: wl, Share: false}, sweepCandidate{WL: wl, Share: true})
	}
	return out
}

// betterResult reports whether a beats b under the objective, applying
// the documented tie-breaks in order: better score, then lower laser
// power, then lower #wl, then the fresh-wavelength policy. The chain
// is total over distinct sweep candidates, which is what makes the
// winner independent of evaluation order.
func betterResult(objective Objective, a, b *Result) bool {
	better, _ := compareResults(objective, a, b)
	return better
}

// compareResults is betterResult plus the decisive criterion: which
// level of the tie-break chain ("score", "power", "#wl", "policy")
// separated the two results. Sweeps record it so a trace explains why
// the winner won.
func compareResults(objective Objective, a, b *Result) (better bool, decidedBy string) {
	if b == nil {
		return a != nil, "score"
	}
	if a == nil {
		return false, "score"
	}
	sa, sb := objective.Score(a), objective.Score(b)
	if sa < sb-1e-12 {
		return true, "score"
	}
	if sb < sa-1e-12 {
		return false, "score"
	}
	pa, pb := a.Loss.TotalPowerMW, b.Loss.TotalPowerMW
	if pa < pb-1e-15 {
		return true, "power"
	}
	if pb < pa-1e-15 {
		return false, "power"
	}
	if a.Opt.MaxWL != b.Opt.MaxWL {
		return a.Opt.MaxWL < b.Opt.MaxWL, "#wl"
	}
	return !a.Opt.ShareWavelengths && b.Opt.ShareWavelengths, "policy"
}

// Sweep synthesizes the network once per (#wl, sharing-policy)
// candidate and returns the best result under the objective, with ties
// broken by lower laser power, then lower #wl, then the fresh
// wavelength policy. Candidates may be nil, selecting 1..N; the list
// is deduplicated and evaluated in canonical order, so shuffled or
// repeated candidate lists select the same winner.
//
// Candidates are dispatched to the shared worker pool and reduced
// deterministically; Options.Serial keeps the sequential path, which
// returns the identical winner.
func Sweep(net *noc.Network, opt Options, objective Objective, candidates []int) (*Result, int, error) {
	return SweepCtx(context.Background(), net, opt, objective, candidates)
}

// SweepCtx is Sweep under a context. Cancellation stops the sweep
// between candidates (no new candidate starts once ctx is done; the
// context error is returned) and propagates into each candidate's
// analysis fan-outs.
func SweepCtx(ctx context.Context, net *noc.Network, opt Options, objective Objective, candidates []int) (*Result, int, error) {
	cands := sweepCandidates(net, candidates)
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("core: empty #wl candidate list")
	}
	ctx, span := obs.Start(ctx, "core.sweep",
		obs.String("objective", objective.String()), obs.Int("candidates", len(cands)))
	defer span.End()
	rres, degradedReason, err := constructRingResilient(ctx, net, ring.Options{
		MaxNodes:         opt.RingMaxNodes,
		DisableConflicts: opt.DisableConflicts,
	}, opt.NoFallback)
	if err != nil {
		return nil, 0, err
	}
	// Shared Step-2 prefix: shortcut construction depends only on the
	// geometry and traffic, not on the (#wl, policy) point a candidate
	// sits at, so it runs once per sweep; every candidate maps onto a
	// private clone of the skeleton. A construction failure fails every
	// candidate identically, so it fails the sweep.
	skel, err := buildShortcutSkeleton(ctx, net, rres, opt)
	if err != nil {
		return nil, 0, err
	}
	synth := func(i int) *Result {
		o := opt
		o.MaxWL = cands[i].WL
		o.ShareWavelengths = cands[i].Share
		cctx, cspan := obs.Start(ctx, "sweep.candidate",
			obs.Int("wl", cands[i].WL), obs.Bool("share", cands[i].Share))
		r, err := synthesizeOnRing(cctx, net, rres, o, skel)
		mSweepCandidates.Inc()
		if err != nil {
			mSweepInfeasible.Inc()
			cspan.Set(obs.Bool("feasible", false))
			cspan.End()
			return nil // a setting may be infeasible; skip it
		}
		cspan.Set(obs.Bool("feasible", true),
			obs.Float("score", objective.Score(r)),
			obs.Float("power_mw", r.Loss.TotalPowerMW))
		cspan.End()
		return r
	}
	results := make([]*Result, len(cands))
	if opt.Serial {
		for i := range cands {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			results[i] = synth(i)
		}
	} else {
		if err := parallel.ForEach(ctx, len(cands), func(i int) error {
			results[i] = synth(i)
			return nil
		}); err != nil {
			// A context error, an injected parallel.task fault, or a
			// contained candidate panic: synth itself never fails the
			// fan-out.
			return nil, 0, err
		}
	}
	// Reduce in canonical candidate order, then explain the winner: the
	// decisive tie-break level is judged against the runner-up (the best
	// of the remaining candidates under the same total order).
	var best, runnerUp *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if betterResult(objective, r, best) {
			runnerUp = best
			best = r
		} else if betterResult(objective, r, runnerUp) {
			runnerUp = r
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("core: no feasible #wl setting among %v", candidates)
	}
	// A degraded ring degrades every candidate equally; stamp the winner.
	best.Degraded = degradedReason != ""
	best.DegradedReason = degradedReason
	_, decidedBy := compareResults(objective, best, runnerUp)
	if runnerUp == nil {
		decidedBy = "only-feasible"
	}
	mSweepWinnerWL.Set(int64(best.Opt.MaxWL))
	span.Set(obs.Int("winner_wl", best.Opt.MaxWL),
		obs.Bool("winner_share", best.Opt.ShareWavelengths),
		obs.String("decided_by", decidedBy))
	if log := obs.Logger("core"); log.Enabled(ctx, obs.LevelInfo) {
		attrs := []any{
			"objective", objective.String(),
			"winner_wl", best.Opt.MaxWL,
			"winner_policy", policyName(best.Opt.ShareWavelengths),
			"score", objective.Score(best),
			"power_mw", best.Loss.TotalPowerMW,
			"decided_by", decidedBy,
		}
		if runnerUp != nil {
			attrs = append(attrs,
				"runner_up_wl", runnerUp.Opt.MaxWL,
				"runner_up_policy", policyName(runnerUp.Opt.ShareWavelengths),
				"runner_up_score", objective.Score(runnerUp))
		}
		log.Info("sweep winner", attrs...)
	}
	return best, best.Opt.MaxWL, nil
}

func policyName(share bool) string {
	if share {
		return "share"
	}
	return "fresh"
}
