// Package core orchestrates the complete XRing synthesis flow
// (Sec. III): Step 1 ring waveguide construction, Step 2 shortcut
// construction, Step 3 signal mapping and ring opening, Step 4 PDN
// design, followed by the insertion-loss and crosstalk analyses. It
// also provides the #wl sweep the paper's evaluation uses ("we vary the
// settings of #wl and pick the one with the minimum power and maximum
// SNR").
package core

import (
	"fmt"
	"sort"
	"time"

	"xring/internal/loss"
	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/parallel"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
	"xring/internal/xtalk"
)

// Options configures a synthesis run.
type Options struct {
	// Par supplies the technology parameters; the zero value selects
	// phys.Default().
	Par *phys.Params
	// MaxWL is the per-ring wavelength budget #wl. Zero selects N.
	MaxWL int
	// WithPDN synthesizes the Step-4 tree PDN and enables the power and
	// crosstalk analyses to include it (Tables II/III configuration).
	// Without it the router matches Table I ("we do not perform PDN
	// design for XRing" there).
	WithPDN bool

	// Traffic restricts the signals the router must support; nil means
	// all-to-all (the paper's evaluation pattern). Application-specific
	// communication graphs go here.
	Traffic []noc.Signal

	// ShareWavelengths maps signals with ORing-style wavelength reuse
	// (Sec. III-C inherits the method of [17]): fewer ring waveguides at
	// the price of drop-leakage noise along reuse chains. The default
	// policy gives every signal a fresh (waveguide, wavelength) slot.
	// Sweep explores both.
	ShareWavelengths bool

	// Serial forces Sweep (and the placement optimizer consuming these
	// options) to evaluate candidates sequentially on the calling
	// goroutine instead of fanning out over the worker pool. The
	// parallel path reduces in canonical candidate order and returns
	// the identical winner; Serial exists as the cross-check in tests
	// and as a debugging aid.
	Serial bool

	// Ablation switches.
	DisableShortcuts bool // skip Step 2 entirely
	NoCSE            bool // Step 2 without CSE merging of crossing shortcuts
	NoOpenings       bool // Step 3 without ring openings (implies no tree PDN)
	DisableConflicts bool // Step 1 without the Eq. (3) conflict constraints

	// RingMaxNodes caps the Step-1 branch and bound (0 = default).
	RingMaxNodes int
}

// Result is a fully synthesized and analyzed XRing router.
type Result struct {
	Design   *router.Design
	Ring     *ring.Result
	MapStats *mapping.Stats
	Plan     *pdn.Plan // nil without PDN
	Loss     *loss.Report
	Xtalk    *xtalk.Report
	// Opt records the options the design was synthesized with (sweeps
	// vary MaxWL and ShareWavelengths).
	Opt Options
	// SynthTime covers synthesis only (Steps 1-4), excluding analyses,
	// matching the paper's T column.
	SynthTime time.Duration
}

// Synthesize runs the full flow on a network. Step 1 results are
// served from the floorplan-keyed ring cache when the same geometry
// was synthesized before.
func Synthesize(net *noc.Network, opt Options) (*Result, error) {
	t0 := time.Now()
	rres, err := constructRing(net, ring.Options{
		MaxNodes:         opt.RingMaxNodes,
		DisableConflicts: opt.DisableConflicts,
	})
	ringTime := time.Since(t0)
	if err != nil {
		return nil, err
	}
	res, err := SynthesizeOnRing(net, rres, opt)
	if err != nil {
		return nil, err
	}
	res.SynthTime += ringTime
	return res, nil
}

// SynthesizeOnRing runs Steps 2-4 and the analyses on a precomputed
// Step-1 result, so #wl sweeps share the ring construction.
func SynthesizeOnRing(net *noc.Network, rres *ring.Result, opt Options) (*Result, error) {
	par := phys.Default()
	if opt.Par != nil {
		par = *opt.Par
	}
	maxWL := opt.MaxWL
	if maxWL == 0 {
		maxWL = net.N()
	}
	start := time.Now()

	d, err := router.NewDesign(net, par, rres.Tour, rres.Orders)
	if err != nil {
		return nil, err
	}
	if err := shortcut.Construct(d, shortcut.Options{
		Disable: opt.DisableShortcuts,
		NoCSE:   opt.NoCSE,
		Traffic: opt.Traffic,
	}); err != nil {
		return nil, err
	}
	noOpenings := opt.NoOpenings || !opt.WithPDN
	stats, err := mapping.Run(d, mapping.Options{
		MaxWL:         maxWL,
		NoOpenings:    noOpenings,
		AlignOpenings: true,
		PreferSharing: opt.ShareWavelengths,
		MaxWaveguides: mapping.WaveguideCap(net, par),
		Traffic:       opt.Traffic,
	})
	if err != nil {
		return nil, err
	}
	var plan *pdn.Plan
	if opt.WithPDN {
		if opt.NoOpenings {
			// Ablation: XRing mapping but a comb PDN (no openings to
			// thread a tree through).
			plan, err = pdn.BuildComb(d)
		} else {
			plan, err = pdn.BuildTree(d)
		}
		if err != nil {
			return nil, err
		}
	}
	synthTime := time.Since(start)

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: synthesized design invalid: %w", err)
	}
	lrep, err := loss.Analyze(d, plan)
	if err != nil {
		return nil, err
	}
	xrep, err := xtalk.Analyze(d, plan, lrep)
	if err != nil {
		return nil, err
	}
	return &Result{
		Design:    d,
		Ring:      rres,
		MapStats:  stats,
		Plan:      plan,
		Loss:      lrep,
		Xtalk:     xrep,
		Opt:       opt,
		SynthTime: synthTime,
	}, nil
}

// Objective selects what a #wl sweep optimizes.
type Objective int

// Sweep objectives, matching the paper's selection rules.
const (
	// MinWorstIL picks the setting with the minimum worst-case
	// insertion loss (Table I).
	MinWorstIL Objective = iota
	// MinPower picks the setting with the minimum total laser power
	// (Tables II/III "setting for min. power").
	MinPower
	// MaxSNR picks the setting with the maximum worst-case SNR, breaking
	// ties toward lower power (Tables II/III "setting for max. SNR").
	MaxSNR
)

func (o Objective) String() string {
	switch o {
	case MinWorstIL:
		return "min-il"
	case MinPower:
		return "min-power"
	default:
		return "max-snr"
	}
}

// Score returns the value the objective minimizes for a result.
func (o Objective) Score(r *Result) float64 {
	switch o {
	case MinWorstIL:
		return r.Loss.WorstIL
	case MinPower:
		return r.Loss.TotalPowerMW
	default:
		// Maximize worst SNR: minimize its negation. Noise-free designs
		// (SNR = +Inf) score best; ties resolved by power below.
		return -r.Xtalk.WorstSNR
	}
}

// sweepCandidate is one point of the sweep's design space.
type sweepCandidate struct {
	WL    int
	Share bool
}

// sweepCandidates expands a #wl candidate list (nil = 1..N) into the
// canonical candidate order: ascending #wl, deduplicated, the fresh
// wavelength policy before the sharing policy. The reduction walks
// this order, so the winner does not depend on how the caller ordered
// the input or on which worker finished first.
func sweepCandidates(net *noc.Network, candidates []int) []sweepCandidate {
	if candidates == nil {
		for wl := 1; wl <= net.N(); wl++ {
			candidates = append(candidates, wl)
		}
	}
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	out := make([]sweepCandidate, 0, 2*len(sorted))
	for i, wl := range sorted {
		if i > 0 && wl == sorted[i-1] {
			continue
		}
		out = append(out, sweepCandidate{WL: wl, Share: false}, sweepCandidate{WL: wl, Share: true})
	}
	return out
}

// betterResult reports whether a beats b under the objective, applying
// the documented tie-breaks in order: better score, then lower laser
// power, then lower #wl, then the fresh-wavelength policy. The chain
// is total over distinct sweep candidates, which is what makes the
// winner independent of evaluation order.
func betterResult(objective Objective, a, b *Result) bool {
	if b == nil {
		return a != nil
	}
	if a == nil {
		return false
	}
	sa, sb := objective.Score(a), objective.Score(b)
	if sa < sb-1e-12 {
		return true
	}
	if sb < sa-1e-12 {
		return false
	}
	pa, pb := a.Loss.TotalPowerMW, b.Loss.TotalPowerMW
	if pa < pb-1e-15 {
		return true
	}
	if pb < pa-1e-15 {
		return false
	}
	if a.Opt.MaxWL != b.Opt.MaxWL {
		return a.Opt.MaxWL < b.Opt.MaxWL
	}
	return !a.Opt.ShareWavelengths && b.Opt.ShareWavelengths
}

// Sweep synthesizes the network once per (#wl, sharing-policy)
// candidate and returns the best result under the objective, with ties
// broken by lower laser power, then lower #wl, then the fresh
// wavelength policy. Candidates may be nil, selecting 1..N; the list
// is deduplicated and evaluated in canonical order, so shuffled or
// repeated candidate lists select the same winner.
//
// Candidates are dispatched to the shared worker pool and reduced
// deterministically; Options.Serial keeps the sequential path, which
// returns the identical winner.
func Sweep(net *noc.Network, opt Options, objective Objective, candidates []int) (*Result, int, error) {
	cands := sweepCandidates(net, candidates)
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("core: empty #wl candidate list")
	}
	rres, err := constructRing(net, ring.Options{
		MaxNodes:         opt.RingMaxNodes,
		DisableConflicts: opt.DisableConflicts,
	})
	if err != nil {
		return nil, 0, err
	}
	synth := func(i int) *Result {
		o := opt
		o.MaxWL = cands[i].WL
		o.ShareWavelengths = cands[i].Share
		r, err := SynthesizeOnRing(net, rres, o)
		if err != nil {
			return nil // a setting may be infeasible; skip it
		}
		return r
	}
	results := make([]*Result, len(cands))
	if opt.Serial {
		for i := range cands {
			results[i] = synth(i)
		}
	} else {
		_ = parallel.ForEach(nil, len(cands), func(i int) error {
			results[i] = synth(i)
			return nil
		})
	}
	var best *Result
	for _, r := range results {
		if r != nil && betterResult(objective, r, best) {
			best = r
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("core: no feasible #wl setting among %v", candidates)
	}
	return best, best.Opt.MaxWL, nil
}
