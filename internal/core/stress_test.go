package core

import (
	"math"
	"math/rand"
	"testing"

	"xring/internal/noc"
	"xring/internal/router"
)

// TestStressRandomInstances synthesizes a spread of random
// configurations and checks the structural invariants that must hold
// for every valid design, whatever the inputs.
func TestStressRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	ran := 0
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(9) // 6..14 nodes
		die := 10 + rng.Float64()*12
		seed := rng.Int63n(1000)
		net := noc.Irregular(n, die, die, 1.5, seed)
		opt := Options{
			MaxWL:            1 + rng.Intn(n),
			WithPDN:          rng.Intn(2) == 0,
			ShareWavelengths: rng.Intn(2) == 0,
			DisableShortcuts: rng.Intn(4) == 0,
			NoCSE:            rng.Intn(4) == 0,
		}
		res, err := Synthesize(net, opt)
		if err != nil {
			// Infeasible settings (tiny #wl on a full die) are allowed
			// to fail — but only with a clean error.
			continue
		}
		ran++
		d := res.Design

		// Invariant 1: the validator accepts the design.
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d (n=%d seed=%d %+v): %v", trial, n, seed, opt, err)
		}
		// Invariant 2: exactly the all-to-all traffic is routed.
		if len(d.Routes) != n*(n-1) {
			t.Fatalf("trial %d: %d routes for %d nodes", trial, len(d.Routes), n)
		}
		// Invariant 3: loss entries for every route; worst-case columns
		// consistent.
		if len(res.Loss.Signals) != len(d.Routes) {
			t.Fatalf("trial %d: loss entries mismatch", trial)
		}
		w := res.Loss.Signals[res.Loss.Worst]
		if w == nil || w.IL != res.Loss.WorstIL {
			t.Fatalf("trial %d: worst-signal bookkeeping", trial)
		}
		// Invariant 4: laser power covers every signal's requirement.
		for sig, sl := range res.Loss.Signals {
			req := sl.IL + sl.PDNLoss
			p := res.Loss.WavelengthPower[sl.WL]
			if math.Pow(10, (req+d.Par.ReceiverSensitivityDBm)/10) > p+1e-12 {
				t.Fatalf("trial %d: laser underpowered for %v", trial, sig)
			}
		}
		// Invariant 5: with a tree PDN, zero crossings and all openings.
		if opt.WithPDN && res.Plan != nil && res.Plan.Kind.String() == "tree" {
			if res.Plan.CrossingsAdded != 0 {
				t.Fatalf("trial %d: tree PDN crossings", trial)
			}
			for _, wgd := range d.Waveguides {
				if wgd.Opening < 0 {
					t.Fatalf("trial %d: missing opening", trial)
				}
			}
		}
		// Invariant 6: ring signals do not exceed the perimeter.
		for sig, r := range d.Routes {
			if r.Kind != router.OnRing {
				continue
			}
			l := d.ArcLen(sig.Src, sig.Dst, d.Waveguides[r.WG].Dir)
			if l <= 0 || l >= d.Perimeter() {
				t.Fatalf("trial %d: arc length %v out of range", trial, l)
			}
		}
	}
	if ran < 20 {
		t.Fatalf("only %d of 40 stress trials were feasible; generator too strict", ran)
	}
}

// TestStressSweepAgreesWithDirect re-synthesizes the sweep winner
// directly and expects identical metrics (determinism across paths).
func TestStressSweepAgreesWithDirect(t *testing.T) {
	net := noc.Floorplan8()
	best, wl, err := Sweep(net, Options{WithPDN: true}, MinPower, []int{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Synthesize(net, Options{
		MaxWL:            wl,
		WithPDN:          true,
		ShareWavelengths: best.Opt.ShareWavelengths,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Loss.TotalPowerMW-best.Loss.TotalPowerMW) > 1e-12 {
		t.Fatalf("sweep %v vs direct %v", best.Loss.TotalPowerMW, direct.Loss.TotalPowerMW)
	}
	if direct.Loss.WorstIL != best.Loss.WorstIL {
		t.Fatal("worst IL differs between sweep and direct synthesis")
	}
}
