package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
	"xring/internal/ring"
)

// withMetrics enables the metrics registry for one test and restores
// the previous global state afterwards.
func withMetrics(t *testing.T) {
	t.Helper()
	prevT, prevM := obs.TracingEnabled(), obs.MetricsEnabled()
	obs.EnableTracing(false)
	obs.EnableMetrics(true)
	obs.ResetMetrics()
	t.Cleanup(func() {
		obs.EnableTracing(prevT)
		obs.EnableMetrics(prevM)
		obs.ResetMetrics()
	})
}

// countingCtx cancels itself after a fixed number of Err polls, which
// lets the test stop a serial sweep at a reproducible point without
// timing races.
type countingCtx struct {
	context.Context
	polls atomic.Int64
	limit int64 // cancel once polls exceed this; MaxInt64 = never
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestSweepStopsOnCancelledContext: satellite check that context
// cancellation stops a sweep between candidates — the context error
// comes back and strictly fewer candidates than the full design space
// were evaluated.
func TestSweepStopsOnCancelledContext(t *testing.T) {
	withMetrics(t)
	parallel.SetWorkers(1) // deterministic poll sequence
	t.Cleanup(func() { parallel.SetWorkers(0) })
	net := noc.Floorplan8()
	opt := Options{WithPDN: true, Serial: true}
	wls := []int{2, 4, 6, 8}
	totalCands := int64(2 * len(wls)) // each #wl × {fresh, share}

	// Warm the Step-1 cache so both passes below hit it and the poll
	// sequence of the second pass matches the first.
	if _, _, err := Sweep(net, opt, MinPower, wls); err != nil {
		t.Fatal(err)
	}

	// Pass 1: count the Err polls of a full serial sweep.
	probe := &countingCtx{Context: context.Background(), limit: math.MaxInt64}
	mSweepCandidates.Add(-mSweepCandidates.Value())
	if _, _, err := SweepCtx(probe, net, opt, MinPower, wls); err != nil {
		t.Fatal(err)
	}
	if got := mSweepCandidates.Value(); got != totalCands {
		t.Fatalf("full sweep evaluated %d candidates, want %d", got, totalCands)
	}
	fullPolls := probe.polls.Load()
	if fullPolls < totalCands {
		t.Fatalf("full sweep polled ctx.Err only %d times over %d candidates", fullPolls, totalCands)
	}

	// Pass 2: cancel midway. The sweep must return the context error
	// having evaluated some, but not all, candidates.
	cctx := &countingCtx{Context: context.Background(), limit: fullPolls / 2}
	mSweepCandidates.Add(-mSweepCandidates.Value())
	res, _, err := SweepCtx(cctx, net, opt, MinPower, wls)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled sweep returned a result")
	}
	evaluated := mSweepCandidates.Value()
	if evaluated <= 0 || evaluated >= totalCands {
		t.Fatalf("cancelled sweep evaluated %d candidates, want strictly between 0 and %d",
			evaluated, totalCands)
	}
}

// TestSynthesizeCancelledContext: an already-cancelled context stops
// the pipeline before any stage runs.
func TestSynthesizeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := noc.Floorplan8()
	if _, err := SynthesizeCtx(ctx, net, Options{MaxWL: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRingCacheLRUTouch: a Step-1 cache hit must move the entry to the
// LRU front, changing which entry the next insert evicts.
func TestRingCacheLRUTouch(t *testing.T) {
	withMetrics(t)
	ResetRingCache()
	t.Cleanup(ResetRingCache)
	key := func(i int) string { return fmt.Sprintf("lru-test-%04d", i) }
	res := &ring.Result{}

	for i := 0; i < ringCacheCap; i++ {
		cacheInsert(key(i), res)
	}
	hits0, misses0, evicts0 := mRingCacheHits.Value(), mRingCacheMisses.Value(), mRingCacheEvicts.Value()

	// key(0) is at the LRU back; a hit must move it to the front...
	if _, ok := cacheLookup(key(0)); !ok {
		t.Fatal("key 0 missing from a full cache")
	}
	// ...so the insert at the cap evicts key(1), the new LRU victim.
	cacheInsert(key(ringCacheCap), res)
	if _, ok := cacheLookup(key(0)); !ok {
		t.Fatal("touched entry was evicted: hit did not refresh LRU position")
	}
	if _, ok := cacheLookup(key(1)); ok {
		t.Fatal("untouched LRU victim survived the eviction")
	}
	if _, ok := cacheLookup(key(ringCacheCap)); !ok {
		t.Fatal("entry inserted at the cap is missing")
	}

	if hits := mRingCacheHits.Value() - hits0; hits != 3 {
		t.Fatalf("hit counter delta = %d, want 3", hits)
	}
	if misses := mRingCacheMisses.Value() - misses0; misses != 1 {
		t.Fatalf("miss counter delta = %d, want 1 (the evicted victim)", misses)
	}
	if evicts := mRingCacheEvicts.Value() - evicts0; evicts != 1 {
		t.Fatalf("eviction counter delta = %d, want 1", evicts)
	}
	if size := mRingCacheSize.Value(); size != ringCacheCap {
		t.Fatalf("size gauge = %d, want %d", size, ringCacheCap)
	}
}

// benchmarkSynthesize16 times the full 16-node flow with a cold Step-1
// cache; the Off/On pair quantifies the telemetry overhead (compare
// also against BENCH_parallel.json across commits — the disabled path
// must stay within noise of the pre-instrumentation engine).
func benchmarkSynthesize16(b *testing.B, trace, metrics bool) {
	prevT, prevM := obs.TracingEnabled(), obs.MetricsEnabled()
	obs.EnableTracing(trace)
	obs.EnableMetrics(metrics)
	b.Cleanup(func() {
		obs.EnableTracing(prevT)
		obs.EnableMetrics(prevM)
		obs.ResetTrace()
		obs.ResetMetrics()
	})
	net := noc.Floorplan16()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResetRingCache()
		obs.ResetTrace()
		if _, err := Synthesize(net, Options{MaxWL: 16, WithPDN: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesize16TelemetryOff(b *testing.B) { benchmarkSynthesize16(b, false, false) }
func BenchmarkSynthesize16TelemetryOn(b *testing.B)  { benchmarkSynthesize16(b, true, true) }

// TestTelemetryDoesNotAlterResults runs the same sweep with telemetry
// fully off and fully on and requires the identical winner — the
// documented guarantee that observation never changes synthesis.
func TestTelemetryDoesNotAlterResults(t *testing.T) {
	prevT, prevM := obs.TracingEnabled(), obs.MetricsEnabled()
	t.Cleanup(func() {
		obs.EnableTracing(prevT)
		obs.EnableMetrics(prevM)
		obs.ResetTrace()
		obs.ResetMetrics()
	})
	net := noc.Floorplan8()
	run := func() *Result {
		ResetRingCache()
		res, _, err := Sweep(net, Options{WithPDN: true}, MinPower, []int{2, 4, 6, 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	obs.EnableTracing(false)
	obs.EnableMetrics(false)
	off := run()
	obs.EnableTracing(true)
	obs.EnableMetrics(true)
	on := run()
	sameWinner(t, "telemetry on vs off", off, on)
	if len(off.Design.Routes) != len(on.Design.Routes) ||
		len(off.Design.Waveguides) != len(on.Design.Waveguides) ||
		len(off.Design.Shortcuts) != len(on.Design.Shortcuts) {
		t.Fatal("designs differ between telemetry on and off")
	}
	if obs.TracingEnabled() {
		if snap := obs.TraceSnapshot(); len(snap) == 0 {
			t.Fatal("telemetry-on run collected no spans")
		}
	}
}
