package core

// Ring-cache singleflight tests: concurrent misses on one floorplan
// key collapse to a single Step-1 solve (the exploration grid's
// cross-cell sharing), a failed leader does not poison its waiters,
// and waiter cancellation is honored.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"xring/internal/noc"
	"xring/internal/ring"
)

func TestConstructRingCoalescesConcurrentMisses(t *testing.T) {
	ResetRingCache()
	net := noc.Irregular(8, 12, 12, 2.0, 11)
	before := mRingCacheMisses.Value()

	const callers = 8
	results := make([]*ring.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := constructRing(context.Background(), net, ring.Options{})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *ring.Result than caller 0", i)
		}
	}
	// Every caller that did not lead either waited on the flight or hit
	// the cache the leader filled; only the leader's lookup plus any
	// pre-flight-registration races count as misses, and after the
	// leader lands there can be no further ones.
	if after, err := constructRing(context.Background(), net, ring.Options{}); err != nil || after != results[0] {
		t.Fatalf("post-flight lookup: %v (shared=%v)", err, after == results[0])
	}
	t.Logf("misses during coalesced burst: %d", mRingCacheMisses.Value()-before)
}

func TestConstructRingLeaderFailureDoesNotPoisonWaiters(t *testing.T) {
	ResetRingCache()
	ResetHintCache()
	net := noc.Irregular(8, 12, 12, 2.0, 13)

	// One caller runs with an already-cancelled context: if it leads, its
	// solve fails and fills nothing; the others must retry on their own
	// and succeed — a failed flight must not poison identical requests
	// that still have budget.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	var failures atomic.Int64
	const callers = 4
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		ctx := context.Background()
		if i == 0 {
			ctx = cancelled
		}
		go func(ctx context.Context) {
			defer wg.Done()
			if _, err := constructRing(ctx, net, ring.Options{}); err != nil {
				failures.Add(1)
			}
		}(ctx)
	}
	wg.Wait()
	// At most the cancelled caller fails; everyone else must have either
	// adopted a successful solve or re-led after the failed flight.
	if n := failures.Load(); n > 1 {
		t.Errorf("%d callers failed, want at most the cancelled one", n)
	}
	if _, err := constructRing(context.Background(), net, ring.Options{}); err != nil {
		t.Errorf("post-failure solve: %v", err)
	}
}

func TestConstructRingWaiterHonorsCancellation(t *testing.T) {
	ResetRingCache()
	net := noc.Floorplan8()
	key := floorplanKey(net, ring.Options{})

	// Occupy the flight slot so the caller becomes a waiter, then cancel it.
	ringFlights.Lock()
	ch := make(chan struct{})
	ringFlights.m[key] = ch
	ringFlights.Unlock()
	defer func() {
		ringFlights.Lock()
		delete(ringFlights.m, key)
		ringFlights.Unlock()
		close(ch)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := constructRing(ctx, net, ring.Options{})
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
}
