package core

import (
	"context"
	"testing"

	"xring/internal/noc"
	"xring/internal/ring"
)

// TestSkeletonMatchesFreshConstruction asserts the sweep's shared
// Step-2 prefix is invisible in the results: every (#wl, policy)
// candidate synthesized from a skeleton clone is bit-identical to one
// that runs shortcut construction itself.
func TestSkeletonMatchesFreshConstruction(t *testing.T) {
	for _, net := range []*noc.Network{
		noc.Floorplan8(),
		noc.Irregular(8, 10, 10, 2.0, 4),
	} {
		rres, err := ring.Construct(net, ring.Options{})
		if err != nil {
			t.Fatalf("ring: %v", err)
		}
		base := Options{WithPDN: true}
		skel, err := buildShortcutSkeleton(context.Background(), net, rres, base)
		if err != nil {
			t.Fatalf("skeleton: %v", err)
		}
		for wl := 1; wl <= net.N(); wl++ {
			for _, share := range []bool{false, true} {
				opt := base
				opt.MaxWL = wl
				opt.ShareWavelengths = share
				fresh, freshErr := SynthesizeOnRing(net, rres, opt)
				shared, sharedErr := synthesizeOnRing(context.Background(), net, rres, opt, skel)
				if (freshErr == nil) != (sharedErr == nil) {
					t.Fatalf("wl=%d share=%v: feasibility diverged: %v vs %v", wl, share, freshErr, sharedErr)
				}
				if freshErr != nil {
					continue
				}
				if fresh.Loss.WorstIL != shared.Loss.WorstIL ||
					fresh.Loss.TotalPowerMW != shared.Loss.TotalPowerMW ||
					fresh.Loss.WavelengthCount != shared.Loss.WavelengthCount ||
					fresh.Xtalk.WorstSNR != shared.Xtalk.WorstSNR ||
					fresh.Xtalk.NumNoisy != shared.Xtalk.NumNoisy {
					t.Fatalf("wl=%d share=%v: reports diverged: IL %v/%v P %v/%v SNR %v/%v",
						wl, share,
						fresh.Loss.WorstIL, shared.Loss.WorstIL,
						fresh.Loss.TotalPowerMW, shared.Loss.TotalPowerMW,
						fresh.Xtalk.WorstSNR, shared.Xtalk.WorstSNR)
				}
				if len(fresh.Design.Shortcuts) != len(shared.Design.Shortcuts) {
					t.Fatalf("wl=%d share=%v: %d vs %d shortcuts", wl, share,
						len(fresh.Design.Shortcuts), len(shared.Design.Shortcuts))
				}
			}
		}
		// Skeleton clones must stay channel-free across candidates: a
		// candidate's mapping must never leak into the shared skeleton.
		for i, sc := range skel.shortcuts {
			if len(sc.Channels) != 0 {
				t.Fatalf("skeleton shortcut %d picked up %d channels", i, len(sc.Channels))
			}
		}
	}
}
