package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/resilience"
)

// degradedCtx returns a context whose Step-1 exact solve fails with an
// injected milp.ErrBudget, forcing the heuristic fallback.
func degradedCtx() context.Context {
	in := resilience.NewInjector(1, resilience.Rule{Point: "core.ring", Err: milp.ErrBudget})
	return resilience.WithInjector(context.Background(), in)
}

func TestSynthesizeFallsBackOnBudget(t *testing.T) {
	net := noc.Floorplan16()
	res, err := SynthesizeCtx(degradedCtx(), net, Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatalf("degraded synthesis failed outright: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked degraded")
	}
	if !strings.Contains(res.DegradedReason, "budget") {
		t.Errorf("DegradedReason = %q, want a budget-exhaustion reason", res.DegradedReason)
	}
	if res.Ring.Optimal {
		t.Error("heuristic ring claims optimality")
	}
	if err := res.Design.Validate(); err != nil {
		t.Errorf("degraded design invalid: %v", err)
	}

	// The fallback must not have poisoned the ring cache: the same
	// floorplan without injection gets the exact solve again.
	clean, err := SynthesizeCtx(context.Background(), net, Options{MaxWL: 14, WithPDN: true})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded || !clean.Ring.Optimal {
		t.Errorf("clean re-run degraded=%v optimal=%v; fallback leaked into the ring cache",
			clean.Degraded, clean.Ring.Optimal)
	}
}

// TestDegradedRetryWarmStarts pins the retry-amnesty loop: a synthesis
// that degrades on budget exhaustion stores its heuristic tour in the
// hint cache, and the next request for the same floorplan hands that
// tour to the exact solver as an incumbent hint. The retry must come
// back un-degraded AND report the warm start — the degraded rate across
// the two runs drops from 1/1 to 1/2.
func TestDegradedRetryWarmStarts(t *testing.T) {
	ResetRingCache()
	ResetHintCache()
	net := noc.Floorplan8()
	in := resilience.NewInjector(1,
		resilience.Rule{Point: "core.ring", Err: milp.ErrBudget, Times: 1})
	ctx := resilience.WithInjector(context.Background(), in)

	first, err := SynthesizeCtx(ctx, net, Options{MaxWL: 7})
	if err != nil {
		t.Fatalf("first (degraded) synthesis failed: %v", err)
	}
	if !first.Degraded {
		t.Fatal("first run not degraded — injection missed")
	}
	if first.Ring.WarmStarted {
		t.Error("heuristic fallback must not claim a warm start")
	}

	// Same injector context, but the rule is spent (Times: 1): the exact
	// solver runs this time, seeded with the stored heuristic tour.
	second, err := SynthesizeCtx(ctx, net, Options{MaxWL: 7})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if second.Degraded {
		t.Fatal("retry still degraded; hint cache did not help")
	}
	if !second.Ring.WarmStarted {
		t.Fatal("retry did not warm-start from the stored degraded tour")
	}
	if !second.Ring.Optimal {
		t.Error("warm-started retry should prove optimality")
	}
}

func TestNoFallbackSurfacesBudgetError(t *testing.T) {
	net := noc.Floorplan16()
	_, err := SynthesizeCtx(degradedCtx(), net, Options{MaxWL: 14, NoFallback: true})
	if !errors.Is(err, milp.ErrBudget) {
		t.Fatalf("err = %v, want errors.Is(err, milp.ErrBudget)", err)
	}
	if !errors.Is(err, resilience.ErrInjected) {
		t.Errorf("err = %v should still be recognizable as injected", err)
	}
}

func TestSynthesizeFallsBackNearDeadline(t *testing.T) {
	ResetRingCache() // a warm exact entry would (correctly) dodge the fallback
	net := noc.Floorplan8()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := SynthesizeCtx(ctx, net, Options{MaxWL: 7})
	if err != nil {
		t.Fatalf("near-deadline synthesis failed: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "deadline") {
		t.Fatalf("degraded=%v reason=%q, want a deadline fallback", res.Degraded, res.DegradedReason)
	}
	if err := res.Design.Validate(); err != nil {
		t.Errorf("degraded design invalid: %v", err)
	}
}

func TestSweepStampsDegradedWinner(t *testing.T) {
	net := noc.Floorplan8()
	res, wl, err := SweepCtx(degradedCtx(), net, Options{}, MinWorstIL, []int{7, 8})
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if wl < 1 {
		t.Errorf("winner #wl = %d", wl)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "budget") {
		t.Errorf("sweep winner degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
}

func TestStageFaultPointsCoverPipeline(t *testing.T) {
	// An injector with no rules records hit counts: every stage gate of
	// the full PDN-enabled flow must be exercised.
	in := resilience.NewInjector(1)
	ctx := resilience.WithInjector(context.Background(), in)
	if _, err := SynthesizeCtx(ctx, noc.Floorplan8(), Options{MaxWL: 7, WithPDN: true}); err != nil {
		t.Fatal(err)
	}
	for _, point := range []string{
		"core.ring",
		"core.stage.entry",
		"core.stage.mapping",
		"core.stage.pdn",
		"core.stage.loss",
		"core.stage.xtalk",
	} {
		if in.Hits(point) == 0 {
			t.Errorf("fault point %q never reached", point)
		}
	}
}

func TestStageFaultAbortsPipeline(t *testing.T) {
	in := resilience.NewInjector(1, resilience.Rule{Point: "core.stage.loss", Err: resilience.ErrInjected})
	ctx := resilience.WithInjector(context.Background(), in)
	_, err := SynthesizeCtx(ctx, noc.Floorplan8(), Options{MaxWL: 7})
	if !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want the injected stage fault", err)
	}
}
