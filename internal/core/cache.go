package core

// Ring-construction cache: Step 1 depends only on the floorplan and
// the ring options, so #wl sweeps, ablation variants and placement
// moves that revisit a geometry can skip the branch-and-bound. The key
// is the exact serialized floorplan (positions, die, options) — a
// perfect hash, so a hit can never return the wrong tour. Entries are
// shared read-only: SynthesizeOnRing copies the tour and orders into
// every design it builds.
//
// Eviction is least-recently-used: placement searches stream hundreds
// of one-off geometries through the cache while revisiting a small
// working set of incumbents, so a hit touches its entry to the front
// and the entry that has gone unused longest is evicted at the cap.
// Hit/miss/evict counts are exported through the obs metrics registry.

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"xring/internal/milp"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/resilience"
	"xring/internal/ring"
)

// ringCacheCap bounds the cache.
const ringCacheCap = 256

var (
	mRingCacheHits      = obs.NewCounter("core.ringcache.hits")
	mRingCacheMisses    = obs.NewCounter("core.ringcache.misses")
	mRingCacheEvicts    = obs.NewCounter("core.ringcache.evictions")
	mRingCacheSize      = obs.NewGauge("core.ringcache.size")
	mRingCacheCoalesced = obs.NewCounter("core.ringcache.coalesced")
	mHintStored         = obs.NewCounter("core.ringhint.stored")
	mHintUsed           = obs.NewCounter("core.ringhint.used")
)

type ringCacheEntry struct {
	key string
	res *ring.Result
}

var ringCache = struct {
	sync.Mutex
	m   map[string]*list.Element // value: *ringCacheEntry
	lru *list.List               // front = most recently used
}{m: map[string]*list.Element{}, lru: list.New()}

// floorplanKey serializes everything ring.Construct reads — except
// Options.IncumbentHint, deliberately: a warm-start hint only narrows
// the search, it cannot change the optimum, so hinted and hint-less
// solves of the same floorplan must share one cache slot (and the hint
// cache below must be addressable by the key of the retry it serves).
func floorplanKey(net *noc.Network, opt ring.Options) string {
	buf := make([]byte, 0, 16*(len(net.Nodes)+2))
	put := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	put(net.DieW)
	put(net.DieH)
	for _, n := range net.Nodes {
		put(n.Pos.X)
		put(n.Pos.Y)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(opt.MaxNodes)))
	buf = append(buf, b[:]...)
	if opt.DisableConflicts {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return string(buf)
}

// cacheLookup returns the cached Step-1 result for key, touching the
// entry to the LRU front on a hit.
func cacheLookup(key string) (*ring.Result, bool) {
	ringCache.Lock()
	el, ok := ringCache.m[key]
	if !ok {
		ringCache.Unlock()
		mRingCacheMisses.Inc()
		return nil, false
	}
	ringCache.lru.MoveToFront(el) // LRU touch
	r := el.Value.(*ringCacheEntry).res
	ringCache.Unlock()
	mRingCacheHits.Inc()
	return r, true
}

// cacheInsert stores r under key, evicting from the LRU back at the
// cap. If a concurrent miss already inserted the key, its (identical)
// result is adopted and returned instead.
func cacheInsert(key string, r *ring.Result) *ring.Result {
	ringCache.Lock()
	if el, ok := ringCache.m[key]; ok {
		ringCache.lru.MoveToFront(el)
		r = el.Value.(*ringCacheEntry).res
	} else {
		for ringCache.lru.Len() >= ringCacheCap {
			back := ringCache.lru.Back()
			ringCache.lru.Remove(back)
			delete(ringCache.m, back.Value.(*ringCacheEntry).key)
			mRingCacheEvicts.Inc()
		}
		ringCache.m[key] = ringCache.lru.PushFront(&ringCacheEntry{key: key, res: r})
	}
	mRingCacheSize.Set(int64(ringCache.lru.Len()))
	ringCache.Unlock()
	return r
}

// ringFlights coalesces concurrent misses on the same floorplan key:
// the first miss becomes the leader and solves; later misses wait for
// the leader's flight to land and then re-check the cache. Exploration
// grids fan many cells over one floorplan concurrently, so without
// this every cell would pay the same branch-and-bound.
var ringFlights = struct {
	sync.Mutex
	m map[string]chan struct{}
}{m: map[string]chan struct{}{}}

// RingDelegateFunc lets a cluster layer take over a ring-construction
// miss: given the floorplan and its cache key, it may return the
// Step-1 result computed elsewhere (the shard owning this floorplan
// cluster-wide). Returning ok=false means "solve locally" — the
// delegate declines for floorplans it owns itself and on any transport
// failure, so delegation can only ever add reuse, never a new failure
// mode. The solve is deterministic, so a delegated result is identical
// to a local one.
type RingDelegateFunc func(ctx context.Context, net *noc.Network, opt ring.Options, key string) (*ring.Result, bool)

var ringDelegate struct {
	sync.RWMutex
	fn RingDelegateFunc
}

// SetRingDelegate installs (or, with nil, removes) the cluster
// delegate consulted by singleflight leaders on a ring-cache miss.
func SetRingDelegate(fn RingDelegateFunc) {
	ringDelegate.Lock()
	ringDelegate.fn = fn
	ringDelegate.Unlock()
}

func loadRingDelegate() RingDelegateFunc {
	ringDelegate.RLock()
	defer ringDelegate.RUnlock()
	return ringDelegate.fn
}

// constructRing is ring.Construct behind the cache, with singleflight
// miss coalescing. The solve is deterministic, so an adopted leader
// result is bit-identical to a private solve. A leader that fails
// (cancellation, solver budget) fills nothing; each waiter then retries
// on its own — one request's deadline must not poison identical
// requests that still have budget.
func constructRing(ctx context.Context, net *noc.Network, opt ring.Options) (*ring.Result, error) {
	return constructRingShared(ctx, net, opt, true)
}

// ConstructRingShared runs Step-1 ring construction through the
// process-wide cache and singleflight WITHOUT consulting the cluster
// delegate: the entry point for a shard serving a construct RPC, where
// delegating again could ping-pong between shards that disagree about
// ownership during a topology change. Concurrent identical requests
// (local or forwarded by every other shard) coalesce onto one solve.
func ConstructRingShared(ctx context.Context, net *noc.Network, opt ring.Options) (*ring.Result, error) {
	return constructRingShared(ctx, net, opt, false)
}

// cacheIsolation, when set, makes Step-1 construction bypass the
// process-global ring cache, hint cache, singleflight and delegate
// entirely. In-process multi-instance benchmarks flip it on so three
// "independent daemons" sharing one process behave like the three
// separate processes they model — without it, instance B would warm-hit
// the rings instance A constructed, which no real deployment of
// independent daemons ever does.
var cacheIsolation atomic.Bool

// SetCacheIsolation toggles benchmark cache isolation (see
// cacheIsolation). Production never sets this.
func SetCacheIsolation(v bool) { cacheIsolation.Store(v) }

func constructRingShared(ctx context.Context, net *noc.Network, opt ring.Options, delegate bool) (*ring.Result, error) {
	if cacheIsolation.Load() {
		return ring.ConstructCtx(ctx, net, opt)
	}
	key := floorplanKey(net, opt)
	for {
		if r, ok := cacheLookup(key); ok {
			return r, nil
		}
		ringFlights.Lock()
		ch, inFlight := ringFlights.m[key]
		if !inFlight {
			ch = make(chan struct{})
			ringFlights.m[key] = ch
		}
		ringFlights.Unlock()
		if inFlight {
			mRingCacheCoalesced.Inc()
			if ctx == nil {
				<-ch
				continue
			}
			select {
			case <-ch:
				continue // leader landed; re-check the cache
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// This goroutine is the leader. The cluster delegate (when
		// installed) gets the first shot: the floorplan's owner shard
		// solves once for the whole fleet, and the local singleflight
		// above makes this process send at most one RPC per floorplan.
		var r *ring.Result
		var err error
		if d := loadRingDelegate(); delegate && d != nil {
			if dr, ok := d(ctx, net, opt, key); ok {
				r = dr
			}
		}
		if r == nil {
			r, err = ring.ConstructCtx(ctx, net, opt)
		}
		ringFlights.Lock()
		delete(ringFlights.m, key)
		ringFlights.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		return cacheInsert(key, r), nil
	}
}

// ringDeadlineSlack is the remaining-deadline threshold below which
// constructRingResilient skips the exact branch-and-bound entirely:
// with less budget than this left, spending it on a search that will
// be cancelled mid-way serves nobody, while the polynomial heuristic
// still fits.
const ringDeadlineSlack = 250 * time.Millisecond

// The two degraded-mode reasons, exported so service surfaces can match
// them exactly (Result.DegradedReason carries one of these verbatim).
const (
	// DegradedReasonBudget: the exact Step-1 solve exhausted its
	// branch-and-bound budget and the heuristic constructor served.
	DegradedReasonBudget = "ring solver budget exhausted; heuristic constructor used"
	// DegradedReasonDeadline: the request deadline was nearly expired, so
	// the heuristic constructor served without attempting the exact solve.
	DegradedReasonDeadline = "deadline nearly expired; heuristic ring constructor used"
)

// constructRingResilient is constructRing with degraded-mode fallback.
// It fires the "core.ring" fault point (before the cache, so injection
// beats a warm entry), then: on a near-expired deadline or a solver
// budget exhaustion (errors.Is milp.ErrBudget), it falls back to the
// paper's heuristic ring constructor and returns a non-empty reason.
// Heuristic results are NOT inserted into the ring cache — a later
// un-degraded request for the same floorplan must still get the exact
// tour. With noFallback set the original error is returned instead.
func constructRingResilient(ctx context.Context, net *noc.Network, opt ring.Options, noFallback bool) (*ring.Result, string, error) {
	key := floorplanKey(net, opt)
	// Retry amnesty: if a previous request for this floorplan degraded,
	// its heuristic tour warm-starts this attempt at the exact solve.
	if len(opt.IncumbentHint) == 0 {
		if tour, ok := hintLookup(key); ok {
			opt.IncumbentHint = tour
			mHintUsed.Inc()
		}
	}
	if err := resilience.Fire(ctx, "core.ring"); err != nil {
		if noFallback || !errors.Is(err, milp.ErrBudget) {
			return nil, "", err
		}
		mFallbackBudget.Inc()
		res, herr := ring.ConstructHeuristic(ctx, net, opt)
		if herr != nil {
			return nil, "", fmt.Errorf("core: heuristic fallback after %v: %w", err, herr)
		}
		hintStore(key, res.Tour)
		return res, DegradedReasonBudget, nil
	}
	if !noFallback && ctx != nil {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < ringDeadlineSlack {
			// Serve what the remaining budget can afford. A warm cache
			// entry is still preferred: it is both exact and free.
			if r, ok := cacheLookup(key); ok {
				return r, "", nil
			}
			mFallbackDeadline.Inc()
			res, herr := ring.ConstructHeuristic(ctx, net, opt)
			if herr != nil {
				return nil, "", herr
			}
			hintStore(key, res.Tour)
			return res, DegradedReasonDeadline, nil
		}
	}
	res, err := constructRing(ctx, net, opt)
	if err == nil {
		return res, "", nil
	}
	if noFallback || !errors.Is(err, milp.ErrBudget) {
		return nil, "", err
	}
	mFallbackBudget.Inc()
	hres, herr := ring.ConstructHeuristic(ctx, net, opt)
	if herr != nil {
		return nil, "", fmt.Errorf("core: heuristic fallback after %v: %w", err, herr)
	}
	hintStore(key, hres.Tour)
	return hres, DegradedReasonBudget, nil
}

// ResetRingCache empties the Step-1 result cache. Benchmarks call it
// between timed passes so a warm cache cannot masquerade as a speedup.
func ResetRingCache() {
	ringCache.Lock()
	ringCache.m = map[string]*list.Element{}
	ringCache.lru = list.New()
	mRingCacheSize.Set(0)
	ringCache.Unlock()
}

// ---------------------------------------------------------------------
// Warm-start hint cache
// ---------------------------------------------------------------------

// hintCacheCap bounds the warm-start hint cache. Hints are tiny (one
// []int tour per degraded floorplan) but the set of floorplans that ever
// degrade is also small, so a modest cap suffices.
const hintCacheCap = 128

// hintCache remembers the heuristic tour served for a floorplan whose
// exact solve fell back (budget or deadline). A later exact attempt on
// the same floorplan passes the tour as ring.Options.IncumbentHint: the
// solver starts with a proven-feasible incumbent instead of an infinite
// bound, which prunes harder and often turns a formerly budget-exhausted
// solve into a completed one. Only fallback tours are stored — exact
// results live in the ring cache and never need re-solving.
var hintCache = struct {
	sync.Mutex
	m   map[string]*list.Element // value: *hintCacheEntry
	lru *list.List
}{m: map[string]*list.Element{}, lru: list.New()}

type hintCacheEntry struct {
	key  string
	tour []int
}

func hintStore(key string, tour []int) {
	if cacheIsolation.Load() {
		return
	}
	if len(tour) == 0 {
		return
	}
	cp := append([]int(nil), tour...)
	hintCache.Lock()
	if el, ok := hintCache.m[key]; ok {
		el.Value.(*hintCacheEntry).tour = cp
		hintCache.lru.MoveToFront(el)
	} else {
		for hintCache.lru.Len() >= hintCacheCap {
			back := hintCache.lru.Back()
			hintCache.lru.Remove(back)
			delete(hintCache.m, back.Value.(*hintCacheEntry).key)
		}
		hintCache.m[key] = hintCache.lru.PushFront(&hintCacheEntry{key: key, tour: cp})
	}
	hintCache.Unlock()
	mHintStored.Inc()
}

func hintLookup(key string) ([]int, bool) {
	if cacheIsolation.Load() {
		return nil, false
	}
	hintCache.Lock()
	defer hintCache.Unlock()
	el, ok := hintCache.m[key]
	if !ok {
		return nil, false
	}
	hintCache.lru.MoveToFront(el)
	return el.Value.(*hintCacheEntry).tour, true
}

// ResetHintCache empties the warm-start hint cache (tests and
// benchmarks, alongside ResetRingCache).
func ResetHintCache() {
	hintCache.Lock()
	hintCache.m = map[string]*list.Element{}
	hintCache.lru = list.New()
	hintCache.Unlock()
}
