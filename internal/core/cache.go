package core

// Ring-construction cache: Step 1 depends only on the floorplan and
// the ring options, so #wl sweeps, ablation variants and placement
// moves that revisit a geometry can skip the branch-and-bound. The key
// is the exact serialized floorplan (positions, die, options) — a
// perfect hash, so a hit can never return the wrong tour. Entries are
// shared read-only: SynthesizeOnRing copies the tour and orders into
// every design it builds.

import (
	"encoding/binary"
	"math"
	"sync"

	"xring/internal/noc"
	"xring/internal/ring"
)

// ringCacheCap bounds the cache; placement searches stream hundreds of
// one-off geometries through it, so stale entries are evicted
// arbitrarily once the cap is reached.
const ringCacheCap = 256

var ringCache = struct {
	sync.Mutex
	m map[string]*ring.Result
}{m: map[string]*ring.Result{}}

// floorplanKey serializes everything ring.Construct reads.
func floorplanKey(net *noc.Network, opt ring.Options) string {
	buf := make([]byte, 0, 16*(len(net.Nodes)+2))
	put := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}
	put(net.DieW)
	put(net.DieH)
	for _, n := range net.Nodes {
		put(n.Pos.X)
		put(n.Pos.Y)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(opt.MaxNodes)))
	buf = append(buf, b[:]...)
	if opt.DisableConflicts {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return string(buf)
}

// constructRing is ring.Construct behind the cache. Concurrent misses
// on the same key may both construct; the solve is deterministic, so
// whichever result lands in the cache is interchangeable.
func constructRing(net *noc.Network, opt ring.Options) (*ring.Result, error) {
	key := floorplanKey(net, opt)
	ringCache.Lock()
	r, ok := ringCache.m[key]
	ringCache.Unlock()
	if ok {
		return r, nil
	}
	r, err := ring.Construct(net, opt)
	if err != nil {
		return nil, err
	}
	ringCache.Lock()
	if len(ringCache.m) >= ringCacheCap {
		for k := range ringCache.m {
			delete(ringCache.m, k)
			if len(ringCache.m) < ringCacheCap {
				break
			}
		}
	}
	ringCache.m[key] = r
	ringCache.Unlock()
	return r, nil
}

// ResetRingCache empties the Step-1 result cache. Benchmarks call it
// between timed passes so a warm cache cannot masquerade as a speedup.
func ResetRingCache() {
	ringCache.Lock()
	ringCache.m = map[string]*ring.Result{}
	ringCache.Unlock()
}
