package router

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
)

// square4 builds a 2x2 grid with the non-crossing tour 0,1,3,2.
func square4(t *testing.T) *Design {
	t.Helper()
	net := noc.Grid(2, 2, 2, 1)
	d, err := NewDesign(net, phys.Default(), []int{0, 1, 3, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// grid8 builds the 4x2 floorplan with the boustrophedon tour.
func grid8(t *testing.T) *Design {
	t.Helper()
	net := noc.Floorplan8()
	d, err := NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// octagon8 builds an 8-node ring whose nodes sit on a square boundary,
// supporting interior shortcuts that cross each other.
func octagon8(t *testing.T) *Design {
	t.Helper()
	pos := []geom.Point{
		{X: 1, Y: 0}, {X: 3, Y: 0}, // bottom
		{X: 4, Y: 1}, {X: 4, Y: 3}, // right
		{X: 3, Y: 4}, {X: 1, Y: 4}, // top
		{X: 0, Y: 3}, {X: 0, Y: 1}, // left
	}
	net := &noc.Network{DieW: 4, DieH: 4}
	for i, p := range pos {
		net.Nodes = append(net.Nodes, noc.Node{ID: i, Name: "n", Pos: p})
	}
	orders := []geom.LOrder{
		geom.VH, // 0->1 straight
		geom.HV, // 1->2 via (4,0)
		geom.VH, // 2->3 straight
		geom.VH, // 3->4 via (4,4)
		geom.VH, // 4->5 straight
		geom.HV, // 5->6 via (0,4)
		geom.VH, // 6->7 straight
		geom.VH, // 7->0 via (0,0)
	}
	d, err := NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 4, 5, 6, 7}, orders)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDesignErrors(t *testing.T) {
	net := noc.Grid(2, 2, 2, 1)
	if _, err := NewDesign(net, phys.Default(), []int{0, 1, 2}, nil); err == nil {
		t.Fatal("want error for short tour")
	}
	if _, err := NewDesign(net, phys.Default(), []int{0, 1, 1, 2}, nil); err == nil {
		t.Fatal("want error for duplicate tour entry")
	}
	if _, err := NewDesign(net, phys.Default(), []int{0, 1, 2, 9}, nil); err == nil {
		t.Fatal("want error for out-of-range tour entry")
	}
	if _, err := NewDesign(net, phys.Default(), []int{0, 1, 3, 2}, []geom.LOrder{geom.VH}); err == nil {
		t.Fatal("want error for wrong edge-order count")
	}
}

func TestPerimeterAndArcLen(t *testing.T) {
	d := square4(t)
	if math.Abs(d.Perimeter()-8) > geom.Eps {
		t.Fatalf("perimeter = %v, want 8", d.Perimeter())
	}
	// CW from 0 to 3 covers edges 0->1->3 = 4mm; CCW = 4mm too.
	if l := d.ArcLen(0, 3, CW); math.Abs(l-4) > geom.Eps {
		t.Fatalf("ArcLen(0,3,CW) = %v", l)
	}
	if l := d.ArcLen(0, 1, CCW); math.Abs(l-6) > geom.Eps {
		t.Fatalf("ArcLen(0,1,CCW) = %v, want 6", l)
	}
	if l := d.ArcLen(2, 2, CW); l != 0 {
		t.Fatalf("ArcLen same node = %v", l)
	}
	// CW + CCW spans the full perimeter.
	if s := d.ArcLen(1, 2, CW) + d.ArcLen(1, 2, CCW); math.Abs(s-8) > geom.Eps {
		t.Fatalf("CW+CCW = %v, want perimeter", s)
	}
}

func TestGapNodesAndPasses(t *testing.T) {
	d := grid8(t) // tour 0,1,2,3,7,6,5,4
	gaps := d.GapNodes(1, 7, CW)
	want := []int{2, 3}
	if len(gaps) != 2 || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Fatalf("GapNodes(1,7,CW) = %v, want %v", gaps, want)
	}
	gapsR := d.GapNodes(1, 7, CCW)
	wantR := []int{0, 4, 5, 6}
	if len(gapsR) != len(wantR) {
		t.Fatalf("GapNodes(1,7,CCW) = %v, want %v", gapsR, wantR)
	}
	for i := range wantR {
		if gapsR[i] != wantR[i] {
			t.Fatalf("GapNodes(1,7,CCW) = %v, want %v", gapsR, wantR)
		}
	}
	if !d.PassesNode(1, 7, 3, CW) {
		t.Fatal("1->7 CW should pass node 3")
	}
	if d.PassesNode(1, 7, 1, CW) || d.PassesNode(1, 7, 7, CW) {
		t.Fatal("arc endpoints are not passed")
	}
	if d.PassesNode(1, 7, 6, CW) {
		t.Fatal("1->7 CW should not pass node 6")
	}
}

func TestCoordInArcAndCrossings(t *testing.T) {
	d := grid8(t) // perimeter 16, nodes every 2mm
	w := &Waveguide{ID: 0, Dir: CW, Opening: -1}
	// A crossing at arc coordinate 3 (between nodes 1 and 2).
	w.Crossings = append(w.Crossings, Crossing{Pos: 3, AtNode: 1, Source: "pdn"})
	if got := d.CrossingsOnArc(w, 0, 3); got != 1 {
		t.Fatalf("CrossingsOnArc(0->3) = %d, want 1", got)
	}
	if got := d.CrossingsOnArc(w, 3, 0); got != 0 {
		t.Fatalf("CrossingsOnArc(3->0 CW wraps) = %d, want 0", got)
	}
	wr := &Waveguide{ID: 1, Dir: CCW, Opening: -1,
		Crossings: []Crossing{{Pos: 3, AtNode: 1, Source: "pdn"}}}
	if got := d.CrossingsOnArc(wr, 3, 0); got != 1 {
		t.Fatalf("CCW CrossingsOnArc(3->0) = %d, want 1", got)
	}
}

func TestBendsOnArc(t *testing.T) {
	d := square4(t)
	// 0->1 horizontal then 1->3 vertical: one joint bend.
	if got := d.BendsOnArc(0, 3, CW); got != 1 {
		t.Fatalf("BendsOnArc(0,3,CW) = %d, want 1", got)
	}
	if got := d.BendsOnArc(0, 1, CW); got != 0 {
		t.Fatalf("BendsOnArc(0,1,CW) = %d, want 0", got)
	}
	// Full horseshoe 0->2 CW: bends at 1 and 3.
	if got := d.BendsOnArc(0, 2, CW); got != 2 {
		t.Fatalf("BendsOnArc(0,2,CW) = %d, want 2", got)
	}
	// CCW single edge 0->2 (edge 3 backwards): no bends.
	if got := d.BendsOnArc(0, 2, CCW); got != 0 {
		t.Fatalf("BendsOnArc(0,2,CCW) = %d, want 0", got)
	}
}

func TestValidateTourGeometryCatchesCrossing(t *testing.T) {
	net := noc.Grid(2, 2, 2, 1)
	// Tour 0,1,2,3 has crossing diagonals on a 2x2 grid.
	d, err := NewDesign(net, phys.Default(), []int{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cross") {
		t.Fatalf("Validate = %v, want tour-crossing error", err)
	}
	if err := square4(t).Validate(); err != nil {
		t.Fatalf("valid square tour rejected: %v", err)
	}
}

func TestChannelsCollide(t *testing.T) {
	d := grid8(t)
	c := func(src, dst, wl int) Channel {
		return Channel{Sig: noc.Signal{Src: src, Dst: dst}, WL: wl}
	}
	// Different wavelengths never collide.
	if d.ChannelsCollide(CW, c(0, 3, 0), c(1, 7, 1)) {
		t.Fatal("different λ should not collide")
	}
	// Overlapping arcs on the same wavelength collide.
	if !d.ChannelsCollide(CW, c(0, 3, 0), c(1, 7, 0)) {
		t.Fatal("overlapping arcs on same λ must collide")
	}
	// Head-to-tail reuse is legal.
	if d.ChannelsCollide(CW, c(0, 3, 0), c(3, 6, 0)) {
		t.Fatal("head-to-tail reuse must not collide")
	}
	// Same destination, same wavelength collides.
	if !d.ChannelsCollide(CW, c(0, 3, 0), c(2, 3, 0)) {
		t.Fatal("same destination on same λ must collide")
	}
	// Disjoint arcs on same λ are fine.
	if d.ChannelsCollide(CW, c(0, 2, 0), c(3, 6, 0)) {
		t.Fatal("disjoint arcs must not collide")
	}
}

func TestValidateWaveguides(t *testing.T) {
	d := grid8(t)
	sig := noc.Signal{Src: 0, Dst: 3}
	d.Waveguides = []*Waveguide{{ID: 0, Dir: CW, Opening: -1,
		Channels: []Channel{{Sig: sig, WL: 0}}}}
	d.Routes[sig] = &Route{Sig: sig, Kind: OnRing, WG: 0, WL: 0}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid design rejected: %v", err)
	}

	// Channel passing the opening.
	d.Waveguides[0].Opening = 1
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "opening") {
		t.Fatalf("want opening violation, got %v", err)
	}
	d.Waveguides[0].Opening = 6 // not on the 0->3 CW arc
	if err := d.Validate(); err != nil {
		t.Fatalf("opening off-arc rejected: %v", err)
	}

	// Wavelength budget.
	d.MaxWL = 1
	d.Waveguides[0].Channels[0].WL = 1
	d.Routes[sig].WL = 1
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "#wl") {
		t.Fatalf("want #wl violation, got %v", err)
	}
	d.MaxWL = 0
	d.Waveguides[0].Channels[0].WL = 0
	d.Routes[sig].WL = 0

	// Colliding channel.
	sig2 := noc.Signal{Src: 1, Dst: 7}
	d.Waveguides[0].Channels = append(d.Waveguides[0].Channels, Channel{Sig: sig2, WL: 0})
	d.Routes[sig2] = &Route{Sig: sig2, Kind: OnRing, WG: 0, WL: 0}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("want collision violation, got %v", err)
	}
}

func TestValidateShortcuts(t *testing.T) {
	d := octagon8(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("octagon ring invalid: %v", err)
	}
	// Feasible crossing pair: 1<->3 (VH) and 2<->7 (straight).
	s1 := &Shortcut{A: 1, B: 3, Partner: 1,
		PathAB: geom.LPath(d.Net.Nodes[1].Pos, d.Net.Nodes[3].Pos, geom.VH)}
	s2 := &Shortcut{A: 2, B: 7, Partner: 0,
		PathAB: geom.Polyline{d.Net.Nodes[2].Pos, d.Net.Nodes[7].Pos}}
	d.Shortcuts = []*Shortcut{s1, s2}
	if err := d.Validate(); err != nil {
		t.Fatalf("crossing shortcut pair rejected: %v", err)
	}

	// Asymmetric partner.
	s2.Partner = -1
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "partner") {
		t.Fatalf("want partner error, got %v", err)
	}
	s2.Partner = 0

	// Crossing shortcuts without partnership.
	s1.Partner, s2.Partner = -1, -1
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "CSE") {
		t.Fatalf("want CSE error, got %v", err)
	}
	s1.Partner, s2.Partner = 1, 0

	// Shortcut crossing the ring: 0 -> 4 via HV runs along the bottom.
	bad := &Shortcut{A: 0, B: 4, Partner: -1,
		PathAB: geom.LPath(d.Net.Nodes[0].Pos, d.Net.Nodes[4].Pos, geom.HV)}
	d.Shortcuts = []*Shortcut{bad}
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "ring edge") {
		t.Fatalf("want ring-crossing error, got %v", err)
	}

	// Two shortcuts at one node.
	a := &Shortcut{A: 1, B: 3, Partner: -1,
		PathAB: geom.LPath(d.Net.Nodes[1].Pos, d.Net.Nodes[3].Pos, geom.VH)}
	b := &Shortcut{A: 1, B: 3, Partner: -1,
		PathAB: geom.LPath(d.Net.Nodes[1].Pos, d.Net.Nodes[3].Pos, geom.VH)}
	d.Shortcuts = []*Shortcut{a, b}
	err := d.Validate()
	if err == nil {
		t.Fatal("want violation for duplicate shortcuts")
	}
}

func TestValidateShortcutChannels(t *testing.T) {
	d := octagon8(t)
	s1 := &Shortcut{A: 1, B: 3, Partner: 1,
		PathAB: geom.LPath(d.Net.Nodes[1].Pos, d.Net.Nodes[3].Pos, geom.VH)}
	s2 := &Shortcut{A: 2, B: 7, Partner: 0,
		PathAB: geom.Polyline{d.Net.Nodes[2].Pos, d.Net.Nodes[7].Pos}}
	d.Shortcuts = []*Shortcut{s1, s2}

	sigDirect := noc.Signal{Src: 1, Dst: 3}
	sigCSE := noc.Signal{Src: 1, Dst: 7}
	s1.Channels = []ShortcutChannel{
		{Sig: sigDirect, WL: 0},
		{Sig: sigCSE, WL: 2, ViaCSE: true},
	}
	d.Routes[sigDirect] = &Route{Sig: sigDirect, Kind: OnShortcut, SC: 0, WL: 0}
	d.Routes[sigCSE] = &Route{Sig: sigCSE, Kind: OnShortcut, SC: 0, WL: 2, ViaCSE: true}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid shortcut channels rejected: %v", err)
	}

	// CSE channel endpoints must join the partner.
	badCSE := noc.Signal{Src: 1, Dst: 4}
	s1.Channels = append(s1.Channels, ShortcutChannel{Sig: badCSE, WL: 3, ViaCSE: true})
	d.Routes[badCSE] = &Route{Sig: badCSE, Kind: OnShortcut, SC: 0, WL: 3, ViaCSE: true}
	if err := d.Validate(); err == nil {
		t.Fatal("want error for CSE channel to a non-partner node")
	}
	s1.Channels = s1.Channels[:2]
	delete(d.Routes, badCSE)

	// Duplicate (entry node, λ) on one shortcut.
	s1.Channels = append(s1.Channels, ShortcutChannel{Sig: noc.Signal{Src: 1, Dst: 2}, WL: 0, ViaCSE: true})
	d.Routes[noc.Signal{Src: 1, Dst: 2}] = &Route{Sig: noc.Signal{Src: 1, Dst: 2}, Kind: OnShortcut, SC: 0, WL: 0, ViaCSE: true}
	if err := d.Validate(); err == nil {
		t.Fatal("want error for duplicate entry wavelength")
	}
}

func TestValidateRoutes(t *testing.T) {
	d := grid8(t)
	sig := noc.Signal{Src: 0, Dst: 3}
	d.Waveguides = []*Waveguide{{ID: 0, Dir: CW, Opening: -1,
		Channels: []Channel{{Sig: sig, WL: 0}}}}
	// Missing route: channel count mismatch.
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "routes") {
		t.Fatalf("want route-count error, got %v", err)
	}
	// Route pointing at the wrong waveguide.
	d.Routes[sig] = &Route{Sig: sig, Kind: OnRing, WG: 0, WL: 5}
	if err := d.Validate(); err == nil {
		t.Fatal("want error for wavelength mismatch in route")
	}
	d.Routes[sig] = &Route{Sig: sig, Kind: OnRing, WG: 0, WL: 0}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid routes rejected: %v", err)
	}
}

func TestDesignAccessors(t *testing.T) {
	d := grid8(t)
	if d.N() != 8 {
		t.Fatal("N")
	}
	if d.TourPos(7) != 4 {
		t.Fatalf("TourPos(7) = %d", d.TourPos(7))
	}
	if math.Abs(d.NodeCoord(1)-2) > geom.Eps {
		t.Fatalf("NodeCoord(1) = %v", d.NodeCoord(1))
	}
	pl := d.RingPolyline()
	if math.Abs(pl.Length()-d.Perimeter()) > geom.Eps {
		t.Fatalf("RingPolyline length %v != perimeter %v", pl.Length(), d.Perimeter())
	}
	sig := noc.Signal{Src: 0, Dst: 3}
	d.Waveguides = []*Waveguide{
		{ID: 0, Dir: CW, Opening: -1, Channels: []Channel{{Sig: sig, WL: 2}}},
		{ID: 1, Dir: CCW, Opening: -1},
	}
	if got := len(d.WaveguidesByDir(CW)); got != 1 {
		t.Fatalf("WaveguidesByDir(CW) = %d", got)
	}
	if got := d.WavelengthsUsed(); got != 1 {
		t.Fatalf("WavelengthsUsed = %d", got)
	}
	senders := d.SendersOn(d.Waveguides[0])
	if len(senders) != 1 || senders[0] != 0 {
		t.Fatalf("SendersOn = %v", senders)
	}
	if i, s := d.ShortcutFor(1, 2); i != -1 || s != nil {
		t.Fatal("ShortcutFor on empty design")
	}
	if CW.String() != "cw" || CCW.String() != "ccw" {
		t.Fatal("Direction.String")
	}
}

func TestRadialScaleMatchesGeometricOffset(t *testing.T) {
	// RadialScale assumes pair k's perimeter is the base plus 8·k·s —
	// exact for simple rectilinear polygons (convex − reflex corners
	// = 4). Verify against the actual offset geometry.
	for _, build := range []func(t *testing.T) *Design{grid8, octagon8} {
		d := build(t)
		ring := d.RingPolyline()
		cycle := geom.CompactRectilinear(ring[:len(ring)-1])
		s := d.Par.RingSpacingMM(d.N())
		for pair := 1; pair <= 2; pair++ {
			off, err := geom.OffsetRectilinear(cycle, s*float64(pair))
			if err != nil {
				t.Fatalf("offset pair %d: %v", pair, err)
			}
			w := &Waveguide{Radial: 2 * pair}
			got := d.Perimeter() * d.RadialScale(w)
			want := geom.PolygonPerimeter(off)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("pair %d: RadialScale perimeter %v != geometric %v", pair, got, want)
			}
		}
	}
}

func TestTotalCrossings(t *testing.T) {
	d := octagon8(t)
	d.Waveguides = []*Waveguide{{ID: 0, Dir: CW, Opening: -1,
		Crossings: []Crossing{{Pos: 1}, {Pos: 2}}}}
	s1 := &Shortcut{A: 1, B: 3, Partner: 1,
		PathAB: geom.LPath(d.Net.Nodes[1].Pos, d.Net.Nodes[3].Pos, geom.VH)}
	s2 := &Shortcut{A: 2, B: 7, Partner: 0,
		PathAB: geom.Polyline{d.Net.Nodes[2].Pos, d.Net.Nodes[7].Pos}}
	d.Shortcuts = []*Shortcut{s1, s2}
	if got := d.TotalCrossings(); got != 3 {
		t.Fatalf("TotalCrossings = %d, want 3 (2 ring + 1 CSE)", got)
	}
}

func TestArcArithmeticProperties(t *testing.T) {
	// Property suite over random node pairs on a random irregular tour.
	net := noc.Irregular(11, 14, 14, 1.5, 21)
	tour := make([]int, 11)
	for i := range tour {
		tour[i] = i
	}
	// Any permutation works for arc arithmetic; use identity order.
	d, err := NewDesign(net, phys.Default(), tour, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		src := int(a) % 11
		dst := int(b) % 11
		if src == dst {
			return d.ArcLen(src, dst, CW) == 0 && d.ArcLen(src, dst, CCW) == 0
		}
		cw := d.ArcLen(src, dst, CW)
		ccw := d.ArcLen(src, dst, CCW)
		// Complementary directions cover the perimeter.
		if math.Abs(cw+ccw-d.Perimeter()) > 1e-9 {
			return false
		}
		// Reversing endpoints swaps directions.
		if math.Abs(cw-d.ArcLen(dst, src, CCW)) > 1e-9 {
			return false
		}
		// Gap node counts match index distance - 1, and both directions
		// partition the other nodes.
		g1 := len(d.GapNodes(src, dst, CW))
		g2 := len(d.GapNodes(src, dst, CCW))
		if g1+g2 != 11-2 {
			return false
		}
		// A node is passed in exactly one direction.
		for k := 0; k < 11; k++ {
			if k == src || k == dst {
				continue
			}
			p1 := d.PassesNode(src, dst, k, CW)
			p2 := d.PassesNode(src, dst, k, CCW)
			if p1 == p2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoordInArcProperties(t *testing.T) {
	d := grid8(t)
	f := func(a, b uint8, frac float64) bool {
		src := int(a) % 8
		dst := int(b) % 8
		if src == dst {
			return true
		}
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			frac = 0.5
		}
		frac = math.Abs(math.Mod(frac, 1))
		from, to := d.ArcInterval(src, dst, CW)
		span := to - from
		if span < 0 {
			span += d.Perimeter()
		}
		// A point strictly inside the span is in the arc; the endpoints
		// are not.
		inside := math.Mod(from+span*0.5, d.Perimeter())
		if span > 1e-6 && !d.CoordInArc(inside, from, to) {
			return false
		}
		if d.CoordInArc(from, from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
