// Package router defines the synthesized-design representation shared by
// every stage of the flow: the ring tour and its geometry, ring waveguide
// replicas with their channels (signal-to-wavelength assignments),
// shortcuts, per-signal routes, and the structural invariants that a
// valid wavelength-routed ring router must satisfy.
//
// Terminology follows the paper:
//
//   - the *tour* is the cyclic node order found in Step 1 (Sec. III-A);
//   - a *ring waveguide* is one replica of the tour, carrying signals in
//     one direction (clockwise = tour order, counter-clockwise = reverse);
//   - a *channel* is one signal mapped onto a ring waveguide with a
//     wavelength; its *arc* is the tour span from source to destination
//     in the waveguide's direction;
//   - an *opening* (Sec. III-C, Fig. 8) is the removed segment between a
//     node's receiver and sender, through which PDN waveguides enter;
//   - a *shortcut* (Sec. III-B) is a dedicated waveguide pair between two
//     nodes, optionally merged with a crossing shortcut by CSEs.
package router

import (
	"fmt"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
)

// Direction is the travel direction of a ring waveguide.
type Direction int

const (
	// CW carries signals in tour order ("clockwise").
	CW Direction = iota
	// CCW carries signals against tour order.
	CCW
)

func (d Direction) String() string {
	if d == CW {
		return "cw"
	}
	return "ccw"
}

// Channel is one signal assigned to a ring waveguide with a wavelength.
type Channel struct {
	Sig noc.Signal
	WL  int
}

// Crossing is a waveguide crossing on a ring waveguide at a fixed arc
// coordinate (used by baseline designs whose PDN crosses the rings; the
// XRing flow produces none). Source describes what crosses here.
type Crossing struct {
	// Pos is the arc coordinate (mm along the tour, in CW orientation).
	Pos float64
	// AtNode is the node whose sender the crossing serves, for reports.
	AtNode int
	// FedWG is the waveguide whose sender the crossing PDN feed serves
	// (the crosstalk engine sizes injected laser leakage from that
	// feed); -1 when unknown.
	FedWG int
	// Source labels the origin, e.g. "pdn".
	Source string
}

// Waveguide is one ring waveguide replica.
type Waveguide struct {
	ID  int
	Dir Direction
	// Radial is the replica's radial position (0 = innermost). Waveguides
	// are laid out in pairs; Radial/2 is the pair index.
	Radial int
	// Opening is the node at which this waveguide is opened (Sec. III-C),
	// or -1 if it has no opening.
	Opening int
	// Channels are the signals mapped onto this waveguide.
	Channels []Channel
	// Crossings lists waveguide crossings on this ring (baselines only).
	Crossings []Crossing
}

// ShortcutChannel is one signal assigned to a shortcut.
type ShortcutChannel struct {
	Sig noc.Signal
	WL  int
	// ViaCSE marks signals that enter on one shortcut and leave on its
	// crossing partner through a crossing switching element (Fig. 7(b)).
	ViaCSE bool
}

// Shortcut is a dedicated waveguide pair between nodes A and B
// (Sec. III-B). PathAB is the physical route; B→A traffic uses the
// mirrored route alongside it.
type Shortcut struct {
	A, B   int
	PathAB geom.Polyline
	// Partner is the index of the shortcut this one crosses (merged with
	// CSEs), or -1. Crossing is mutual: Shortcuts[Partner].Partner points
	// back. A shortcut crosses at most one other (paper constraint).
	Partner int
	// Channels lists signals riding this shortcut. CSE channels appear
	// on the shortcut where they *enter*.
	Channels []ShortcutChannel
}

// Length returns the shortcut's waveguide length.
func (s *Shortcut) Length() float64 { return s.PathAB.Length() }

// RouteKind says which medium carries a signal.
type RouteKind int

const (
	// OnRing routes the signal along a ring waveguide.
	OnRing RouteKind = iota
	// OnShortcut routes the signal along a shortcut (direct or via CSE).
	OnShortcut
)

// Route records where a signal ended up after Step 3.
type Route struct {
	Sig    noc.Signal
	Kind   RouteKind
	WG     int // waveguide index when Kind == OnRing
	SC     int // shortcut index when Kind == OnShortcut
	ViaCSE bool
	WL     int
}

// Design is the complete synthesized router.
type Design struct {
	Net *noc.Network
	Par phys.Params

	// Tour is the cyclic node order from Step 1; Tour[i] is a node ID.
	Tour []int
	// EdgeOrders[i] is the L-routing choice for tour edge i
	// (Tour[i] -> Tour[(i+1)%N]).
	EdgeOrders []geom.LOrder

	Waveguides []*Waveguide
	Shortcuts  []*Shortcut

	// Routes maps every signal to its realized route (filled in Step 3).
	Routes map[noc.Signal]*Route

	// SpareRoutes maps signals to cold-standby protection routes added
	// by fault-tolerant mapping (Options.FaultTolerance). A spare lives
	// on a dedicated protection waveguide that carries no primary
	// channel, so any single MRR failure (or ring-segment cut) kills at
	// most one of {primary, spare} and the signal stays routable. Spares
	// are dark in nominal operation: analyses iterate Routes only, while
	// spare MRRs still contribute their passive through loss via the
	// waveguide channel lists. Nil or empty for nominal designs.
	SpareRoutes map[noc.Signal]*Route

	// MaxWL is the per-waveguide wavelength budget #wl used by Step 3.
	MaxWL int

	// cached geometry
	tourIndex []int     // node ID -> position in Tour
	cum       []float64 // cum[i] = arc coordinate of Tour[i] (CW)
	perimeter float64
}

// NewDesign creates a design skeleton for a network and tour.
// EdgeOrders defaults to VH for every edge if nil.
func NewDesign(net *noc.Network, par phys.Params, tour []int, orders []geom.LOrder) (*Design, error) {
	n := net.N()
	if len(tour) != n {
		return nil, fmt.Errorf("router: tour has %d entries for %d nodes", len(tour), n)
	}
	if orders == nil {
		orders = make([]geom.LOrder, n)
	}
	if len(orders) != n {
		return nil, fmt.Errorf("router: %d edge orders for %d edges", len(orders), n)
	}
	d := &Design{
		Net:        net,
		Par:        par,
		Tour:       append([]int(nil), tour...),
		EdgeOrders: append([]geom.LOrder(nil), orders...),
		Routes:     map[noc.Signal]*Route{},
	}
	if err := d.indexTour(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Design) indexTour() error {
	n := d.Net.N()
	d.tourIndex = make([]int, n)
	for i := range d.tourIndex {
		d.tourIndex[i] = -1
	}
	for i, v := range d.Tour {
		if v < 0 || v >= n {
			return fmt.Errorf("router: tour entry %d out of range", v)
		}
		if d.tourIndex[v] != -1 {
			return fmt.Errorf("router: node %d appears twice in tour", v)
		}
		d.tourIndex[v] = i
	}
	d.cum = make([]float64, n+1)
	for i := 0; i < n; i++ {
		a := d.Net.Nodes[d.Tour[i]].Pos
		b := d.Net.Nodes[d.Tour[(i+1)%n]].Pos
		d.cum[i+1] = d.cum[i] + geom.Manhattan(a, b)
	}
	d.perimeter = d.cum[n]
	return nil
}

// RefreshGeometry recomputes the cached tour geometry (arc coordinates
// and perimeter) from the current node positions. The incremental
// evaluator calls it after perturbing a node position: the tour and all
// routed structure stay fixed, only the derived coordinates move.
func (d *Design) RefreshGeometry() error { return d.indexTour() }

// N returns the node count.
func (d *Design) N() int { return d.Net.N() }

// Perimeter returns the total tour length in mm.
func (d *Design) Perimeter() float64 { return d.perimeter }

// TourPos returns the position of node id within the tour.
func (d *Design) TourPos(id int) int { return d.tourIndex[id] }

// NodeCoord returns the arc coordinate (mm, CW orientation) of a node.
func (d *Design) NodeCoord(id int) float64 { return d.cum[d.tourIndex[id]] }

// EdgePath returns the physical polyline of tour edge i.
func (d *Design) EdgePath(i int) geom.Polyline {
	n := d.N()
	a := d.Net.Nodes[d.Tour[i]].Pos
	b := d.Net.Nodes[d.Tour[(i+1)%n]].Pos
	return geom.LPath(a, b, d.EdgeOrders[i])
}

// RingPolyline returns the closed physical route of the base ring.
func (d *Design) RingPolyline() geom.Polyline {
	var pl geom.Polyline
	for i := 0; i < d.N(); i++ {
		p := d.EdgePath(i)
		if i == 0 {
			pl = append(pl, p...)
		} else {
			pl = append(pl, p[1:]...)
		}
	}
	return pl
}

// RadialScale returns the length multiplier for a waveguide replica:
// waveguide pairs are stacked concentrically with the Sec. III-D
// corridor spacing between them, so the perimeter of pair k exceeds the
// base tour by roughly 8*k*spacing (a rectilinear ring offset outward
// by s grows by 8s). All arc lengths on the waveguide scale
// accordingly.
func (d *Design) RadialScale(w *Waveguide) float64 {
	pair := w.Radial / 2
	if pair <= 0 || d.perimeter <= 0 {
		return 1
	}
	extra := 8 * d.Par.RingSpacingMM(d.N()) * float64(pair)
	return (d.perimeter + extra) / d.perimeter
}

// ArcLen returns the travel distance from src to dst in direction dir.
func (d *Design) ArcLen(src, dst int, dir Direction) float64 {
	si, di := d.tourIndex[src], d.tourIndex[dst]
	if si == di {
		return 0
	}
	cwLen := d.cum[di] - d.cum[si]
	if cwLen < 0 {
		cwLen += d.perimeter
	}
	if dir == CW {
		return cwLen
	}
	return d.perimeter - cwLen
}

// GapNodes returns the node IDs whose sender/receiver gap a signal
// src->dst traverses in direction dir: the nodes strictly between src
// and dst along the travel direction.
func (d *Design) GapNodes(src, dst int, dir Direction) []int {
	n := d.N()
	si, di := d.tourIndex[src], d.tourIndex[dst]
	var out []int
	step := 1
	if dir == CCW {
		step = n - 1 // -1 mod n
	}
	for i := (si + step) % n; i != di; i = (i + step) % n {
		out = append(out, d.Tour[i])
	}
	return out
}

// PassesNode reports whether signal src->dst in direction dir traverses
// the sender/receiver gap of node k.
func (d *Design) PassesNode(src, dst, k int, dir Direction) bool {
	if k == src || k == dst {
		return false
	}
	for _, g := range d.GapNodes(src, dst, dir) {
		if g == k {
			return true
		}
	}
	return false
}

// ArcInterval returns the [from, to) arc coordinates (CW orientation) a
// channel occupies. For CCW waveguides the physical span is the same set
// of tour edges walked backwards, so the interval is given from dst to
// src in CW coordinates.
func (d *Design) ArcInterval(src, dst int, dir Direction) (from, to float64) {
	if dir == CW {
		return d.NodeCoord(src), d.NodeCoord(dst)
	}
	return d.NodeCoord(dst), d.NodeCoord(src)
}

// CoordInArc reports whether CW arc coordinate x lies strictly inside
// the interval [from, to) measured cyclically.
func (d *Design) CoordInArc(x, from, to float64) bool {
	span := to - from
	if span < 0 {
		span += d.perimeter
	}
	off := x - from
	if off < 0 {
		off += d.perimeter
	}
	return off > geom.Eps && off < span-geom.Eps
}

// CrossingsOnArc counts the ring crossings a channel traverses.
func (d *Design) CrossingsOnArc(w *Waveguide, src, dst int) int {
	from, to := d.ArcInterval(src, dst, w.Dir)
	n := 0
	for _, c := range w.Crossings {
		if d.CoordInArc(c.Pos, from, to) {
			n++
		}
	}
	return n
}

// BendsOnArc counts 90-degree bends traversed by a channel from src to
// dst in direction dir.
func (d *Design) BendsOnArc(src, dst int, dir Direction) int {
	// Walk tour edges covered by the arc; each edge contributes its own
	// bends plus one bend at each intermediate node joint where the
	// incoming and outgoing directions differ. For simplicity each
	// intermediate joint counts as one bend when orientation changes.
	n := d.N()
	si, di := d.tourIndex[src], d.tourIndex[dst]
	step := 1
	if dir == CCW {
		step = n - 1
	}
	bends := 0
	var prev geom.Polyline
	for i := si; i != di; i = (i + step) % n {
		ei := i
		if dir == CCW {
			ei = (i + n - 1) % n
		}
		p := d.EdgePath(ei)
		bends += p.Bends()
		if prev != nil {
			a := prev.Segments()
			b := p.Segments()
			if len(a) > 0 && len(b) > 0 {
				lastH := a[len(a)-1].Horizontal()
				firstH := b[0].Horizontal()
				if dir == CCW {
					lastH = a[0].Horizontal()
					firstH = b[len(b)-1].Horizontal()
				}
				if lastH != firstH {
					bends++
				}
			}
		}
		prev = p
	}
	return bends
}

// WaveguidesByDir returns the design's waveguides with the given
// direction, in ID order.
func (d *Design) WaveguidesByDir(dir Direction) []*Waveguide {
	var out []*Waveguide
	for _, w := range d.Waveguides {
		if w.Dir == dir {
			out = append(out, w)
		}
	}
	return out
}

// SendersOn returns the node IDs that have at least one sender
// (modulator) on waveguide w, in tour order starting at the tour origin.
func (d *Design) SendersOn(w *Waveguide) []int {
	has := map[int]bool{}
	for _, c := range w.Channels {
		has[c.Sig.Src] = true
	}
	var out []int
	for _, id := range d.Tour {
		if has[id] {
			out = append(out, id)
		}
	}
	return out
}

// WavelengthsUsed returns the distinct wavelength count across the
// design (ring channels and shortcut channels).
func (d *Design) WavelengthsUsed() int {
	used := map[int]bool{}
	for _, w := range d.Waveguides {
		for _, c := range w.Channels {
			used[c.WL] = true
		}
	}
	for _, s := range d.Shortcuts {
		for _, c := range s.Channels {
			used[c.WL] = true
		}
	}
	return len(used)
}

// TotalCrossings returns the number of waveguide crossings in the whole
// design: ring crossings (from baseline PDNs) plus one CSE crossing per
// merged shortcut pair.
func (d *Design) TotalCrossings() int {
	n := 0
	for _, w := range d.Waveguides {
		n += len(w.Crossings)
	}
	for i, s := range d.Shortcuts {
		if s.Partner > i {
			n++
		}
	}
	return n
}

// shortcutFor returns the shortcut connecting a and b, if any.
func (d *Design) shortcutFor(a, b int) (int, *Shortcut) {
	for i, s := range d.Shortcuts {
		if (s.A == a && s.B == b) || (s.A == b && s.B == a) {
			return i, s
		}
	}
	return -1, nil
}

// ShortcutFor is the exported lookup used by analyses and tests.
func (d *Design) ShortcutFor(a, b int) (int, *Shortcut) { return d.shortcutFor(a, b) }
