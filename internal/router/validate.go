package router

import (
	"fmt"

	"xring/internal/geom"
	"xring/internal/noc"
)

// ChannelsCollide reports whether two channels cannot share a waveguide
// because wavelength routing would misdeliver one of them.
//
// Two channels on the same ring waveguide with the same wavelength
// collide when either arc passes (or ends at) the other's receiver: an
// on-resonance receiver MRR drops *any* passing signal on its
// wavelength. Head-to-tail reuse (one arc ending exactly where the
// other starts) is legal — that is the wavelength-reuse trick of
// ORNoC/ORing that Step 3 inherits.
func (d *Design) ChannelsCollide(dir Direction, c1, c2 Channel) bool {
	if c1.WL != c2.WL {
		return false
	}
	if c1.Sig.Dst == c2.Sig.Dst {
		return true // two receivers for the same wavelength at one site
	}
	if d.PassesNode(c1.Sig.Src, c1.Sig.Dst, c2.Sig.Dst, dir) {
		return true // c1 would drop at c2's receiver
	}
	if d.PassesNode(c2.Sig.Src, c2.Sig.Dst, c1.Sig.Dst, dir) {
		return true
	}
	// A signal arriving at its destination has, by the site ordering
	// (receiver bank before sender bank), already been dropped before
	// reaching any modulator, so sharing src or dst==src is legal.
	return false
}

// Validate checks every structural invariant of a synthesized design.
// It returns the first violation found, or nil for a valid design.
func (d *Design) Validate() error {
	if err := d.validateTourGeometry(); err != nil {
		return err
	}
	if err := d.validateWaveguides(); err != nil {
		return err
	}
	if err := d.validateShortcuts(); err != nil {
		return err
	}
	return d.validateRoutes()
}

// validateTourGeometry checks that the chosen L-orders implement the
// tour without any crossing between non-adjacent edges.
func (d *Design) validateTourGeometry() error {
	n := d.N()
	if n < 3 {
		return fmt.Errorf("router: need at least 3 nodes, have %d", n)
	}
	paths := make([]geom.Polyline, n)
	for i := range paths {
		paths[i] = d.EdgePath(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if adjacent {
				continue
			}
			if geom.PathsCross(paths[i], paths[j]) {
				return fmt.Errorf("router: tour edges %d and %d cross (%v vs %v)",
					i, j, paths[i], paths[j])
			}
		}
	}
	return nil
}

func (d *Design) validateWaveguides() error {
	for wi, w := range d.Waveguides {
		if w.ID != wi {
			return fmt.Errorf("router: waveguide %d has ID %d", wi, w.ID)
		}
		if w.Opening != -1 && (w.Opening < 0 || w.Opening >= d.N()) {
			return fmt.Errorf("router: waveguide %d opening %d out of range", wi, w.Opening)
		}
		for ci, c := range w.Channels {
			if c.Sig.Src == c.Sig.Dst {
				return fmt.Errorf("router: waveguide %d has self-signal %v", wi, c.Sig)
			}
			if c.WL < 0 {
				return fmt.Errorf("router: waveguide %d channel %v has negative wavelength", wi, c.Sig)
			}
			if d.MaxWL > 0 && c.WL >= d.MaxWL {
				return fmt.Errorf("router: waveguide %d channel %v wavelength %d exceeds #wl=%d",
					wi, c.Sig, c.WL, d.MaxWL)
			}
			if w.Opening >= 0 && d.PassesNode(c.Sig.Src, c.Sig.Dst, w.Opening, w.Dir) {
				return fmt.Errorf("router: waveguide %d channel %v passes its opening at node %d",
					wi, c.Sig, w.Opening)
			}
			for cj := ci + 1; cj < len(w.Channels); cj++ {
				c2 := w.Channels[cj]
				if c.Sig == c2.Sig {
					return fmt.Errorf("router: waveguide %d carries %v twice", wi, c.Sig)
				}
				if d.ChannelsCollide(w.Dir, c, c2) {
					return fmt.Errorf("router: waveguide %d wavelength collision between %v and %v on λ%d",
						wi, c.Sig, c2.Sig, c.WL)
				}
			}
		}
	}
	return nil
}

func (d *Design) validateShortcuts() error {
	perNode := map[int]int{}
	ringEdges := make([]geom.Polyline, d.N())
	for i := range ringEdges {
		ringEdges[i] = d.EdgePath(i)
	}
	for si, s := range d.Shortcuts {
		if s.A == s.B {
			return fmt.Errorf("router: shortcut %d connects node %d to itself", si, s.A)
		}
		perNode[s.A]++
		perNode[s.B]++
		if len(s.PathAB) < 2 {
			return fmt.Errorf("router: shortcut %d has no physical path", si)
		}
		if !s.PathAB.Start().Eq(d.Net.Nodes[s.A].Pos) || !s.PathAB.End().Eq(d.Net.Nodes[s.B].Pos) {
			return fmt.Errorf("router: shortcut %d path does not join node positions", si)
		}
		// Crossing-freedom versus the ring (Sec. III-B feasibility).
		for ei, ep := range ringEdges {
			if geom.PathsCross(s.PathAB, ep) {
				return fmt.Errorf("router: shortcut %d (%d-%d) crosses ring edge %d", si, s.A, s.B, ei)
			}
		}
		// Partner symmetry and the at-most-one-crossing rule.
		if s.Partner != -1 {
			if s.Partner < 0 || s.Partner >= len(d.Shortcuts) || s.Partner == si {
				return fmt.Errorf("router: shortcut %d has invalid partner %d", si, s.Partner)
			}
			if d.Shortcuts[s.Partner].Partner != si {
				return fmt.Errorf("router: shortcut partnership %d<->%d not symmetric", si, s.Partner)
			}
			if geom.CrossingsBetween(s.PathAB, d.Shortcuts[s.Partner].PathAB) == 0 {
				return fmt.Errorf("router: shortcuts %d and %d are partners but do not cross", si, s.Partner)
			}
		}
		// Geometric crossings with non-partner shortcuts are forbidden.
		for sj := si + 1; sj < len(d.Shortcuts); sj++ {
			if sj == s.Partner {
				continue
			}
			if geom.PathsCross(s.PathAB, d.Shortcuts[sj].PathAB) {
				return fmt.Errorf("router: shortcuts %d and %d cross without being CSE partners", si, sj)
			}
		}
		if err := d.validateShortcutChannels(si, s); err != nil {
			return err
		}
	}
	for node, cnt := range perNode {
		if cnt > 1 {
			return fmt.Errorf("router: node %d participates in %d shortcuts (max 1)", node, cnt)
		}
	}
	return nil
}

func (d *Design) validateShortcutChannels(si int, s *Shortcut) error {
	ends := func(sig noc.Signal, a, b int) bool {
		return (sig.Src == a && sig.Dst == b) || (sig.Src == b && sig.Dst == a)
	}
	seenWL := map[[2]interface{}]bool{} // (direction entry node, wl)
	for _, c := range s.Channels {
		if c.ViaCSE {
			if s.Partner == -1 {
				return fmt.Errorf("router: shortcut %d has CSE channel %v but no partner", si, c.Sig)
			}
			p := d.Shortcuts[s.Partner]
			// A CSE channel enters on s at one of s's endpoints and exits
			// at one of the partner's endpoints.
			okSrc := c.Sig.Src == s.A || c.Sig.Src == s.B
			okDst := c.Sig.Dst == p.A || c.Sig.Dst == p.B
			if !okSrc || !okDst {
				return fmt.Errorf("router: CSE channel %v does not join shortcut %d to partner %d",
					c.Sig, si, s.Partner)
			}
		} else if !ends(c.Sig, s.A, s.B) {
			return fmt.Errorf("router: channel %v does not match shortcut %d endpoints (%d,%d)",
				c.Sig, si, s.A, s.B)
		}
		key := [2]interface{}{c.Sig.Src, c.WL}
		if seenWL[key] {
			return fmt.Errorf("router: shortcut %d carries two λ%d channels entering at node %d",
				si, c.WL, c.Sig.Src)
		}
		seenWL[key] = true
	}
	return nil
}

func (d *Design) validateRoutes() error {
	if d.Routes == nil {
		return nil // mapping not run yet: nothing to check
	}
	for sig, r := range d.Routes {
		if r.Sig != sig {
			return fmt.Errorf("router: route table key %v holds route for %v", sig, r.Sig)
		}
		switch r.Kind {
		case OnRing:
			if r.WG < 0 || r.WG >= len(d.Waveguides) {
				return fmt.Errorf("router: route %v references waveguide %d", sig, r.WG)
			}
			found := false
			for _, c := range d.Waveguides[r.WG].Channels {
				if c.Sig == sig && c.WL == r.WL {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("router: route %v not present as channel on waveguide %d", sig, r.WG)
			}
		case OnShortcut:
			if r.SC < 0 || r.SC >= len(d.Shortcuts) {
				return fmt.Errorf("router: route %v references shortcut %d", sig, r.SC)
			}
			found := false
			for _, c := range d.Shortcuts[r.SC].Channels {
				if c.Sig == sig && c.WL == r.WL && c.ViaCSE == r.ViaCSE {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("router: route %v not present as channel on shortcut %d", sig, r.SC)
			}
		default:
			return fmt.Errorf("router: route %v has unknown kind %d", sig, r.Kind)
		}
	}
	if err := d.validateSpareRoutes(); err != nil {
		return err
	}
	// Every channel in the design must be reachable from the route table
	// (primary or spare) exactly once.
	count := 0
	for _, w := range d.Waveguides {
		count += len(w.Channels)
	}
	for _, s := range d.Shortcuts {
		count += len(s.Channels)
	}
	if count != len(d.Routes)+len(d.SpareRoutes) {
		return fmt.Errorf("router: %d channels in design but %d routes and %d spares",
			count, len(d.Routes), len(d.SpareRoutes))
	}
	return nil
}

// validateSpareRoutes checks the protection invariants of fault-tolerant
// designs: every spare backs a primary signal, is realized as a ring
// channel, and sits on a dedicated protection waveguide that carries no
// primary traffic (the waveguide-disjointness that makes single-element
// failures survivable).
func (d *Design) validateSpareRoutes() error {
	if len(d.SpareRoutes) == 0 {
		return nil
	}
	primaryWG := map[int]bool{}
	for _, r := range d.Routes {
		if r.Kind == OnRing {
			primaryWG[r.WG] = true
		}
	}
	for sig, r := range d.SpareRoutes {
		if r.Sig != sig {
			return fmt.Errorf("router: spare table key %v holds route for %v", sig, r.Sig)
		}
		if d.Routes[sig] == nil {
			return fmt.Errorf("router: spare route %v has no primary route", sig)
		}
		if r.Kind != OnRing {
			return fmt.Errorf("router: spare route %v must ride a ring waveguide", sig)
		}
		if r.WG < 0 || r.WG >= len(d.Waveguides) {
			return fmt.Errorf("router: spare route %v references waveguide %d", sig, r.WG)
		}
		if primaryWG[r.WG] {
			return fmt.Errorf("router: spare route %v shares waveguide %d with primary traffic", sig, r.WG)
		}
		found := false
		for _, c := range d.Waveguides[r.WG].Channels {
			if c.Sig == sig && c.WL == r.WL {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("router: spare route %v not present as channel on waveguide %d", sig, r.WG)
		}
	}
	return nil
}
