package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		SetWorkers(workers)
		out, err := Map(context.Background(), 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	SetWorkers(4)
}

func TestForEachFirstErrorInTaskOrder(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(4)
	errAt := func(bad map[int]bool) error {
		return ForEach(nil, 50, func(i int) error {
			if bad[i] {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
	}
	err := errAt(map[int]bool{7: true, 3: true, 40: true})
	if err == nil || err.Error() != "task 3" {
		t.Fatalf("want first error in task order (task 3), got %v", err)
	}
}

func TestForEachStopsIssuingAfterError(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(4)
	var ran atomic.Int64
	_ = ForEach(nil, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	// With 2 workers at most a handful of tasks can have started before
	// the error is observed.
	if n := ran.Load(); n > 10 {
		t.Fatalf("%d tasks ran after early error", n)
	}
}

func TestForEachCancellationDrainsPromptly(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan error, 1)
	release := make(chan struct{})
	go func() {
		done <- ForEach(ctx, 10000, func(i int) error {
			started.Add(1)
			if i < 4 {
				<-release // first wave blocks until released
			}
			return nil
		})
	}()
	// Let the first wave start, then cancel.
	for started.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not drain after cancel")
	}
	// Far fewer than n tasks must have started.
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks started despite prompt cancel", n)
	}
}

func TestNestedForEachNoDeadlock(t *testing.T) {
	SetWorkers(2) // tight budget: inner fan-outs find no spare tokens
	defer SetWorkers(4)
	var sum atomic.Int64
	err := ForEach(nil, 8, func(i int) error {
		return ForEach(nil, 8, func(j int) error {
			sum.Add(int64(i*8 + j))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 64*63/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkersFloor(t *testing.T) {
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
	SetWorkers(4)
	if Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", Workers())
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(nil, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatal("want error and nil slice")
	}
}
