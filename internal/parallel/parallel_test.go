package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"xring/internal/resilience"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		SetWorkers(workers)
		out, err := Map(context.Background(), 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	SetWorkers(4)
}

func TestForEachFirstErrorInTaskOrder(t *testing.T) {
	SetWorkers(8)
	defer SetWorkers(4)
	errAt := func(bad map[int]bool) error {
		return ForEach(nil, 50, func(i int) error {
			if bad[i] {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
	}
	err := errAt(map[int]bool{7: true, 3: true, 40: true})
	if err == nil || err.Error() != "task 3" {
		t.Fatalf("want first error in task order (task 3), got %v", err)
	}
}

func TestForEachStopsIssuingAfterError(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(4)
	var ran atomic.Int64
	_ = ForEach(nil, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	// With 2 workers at most a handful of tasks can have started before
	// the error is observed.
	if n := ran.Load(); n > 10 {
		t.Fatalf("%d tasks ran after early error", n)
	}
}

func TestForEachCancellationDrainsPromptly(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan error, 1)
	release := make(chan struct{})
	go func() {
		done <- ForEach(ctx, 10000, func(i int) error {
			started.Add(1)
			if i < 4 {
				<-release // first wave blocks until released
			}
			return nil
		})
	}()
	// Let the first wave start, then cancel.
	for started.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not drain after cancel")
	}
	// Far fewer than n tasks must have started.
	if n := started.Load(); n > 100 {
		t.Fatalf("%d tasks started despite prompt cancel", n)
	}
}

func TestNestedForEachNoDeadlock(t *testing.T) {
	SetWorkers(2) // tight budget: inner fan-outs find no spare tokens
	defer SetWorkers(4)
	var sum atomic.Int64
	err := ForEach(nil, 8, func(i int) error {
		return ForEach(nil, 8, func(j int) error {
			sum.Add(int64(i*8 + j))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 64*63/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkersFloor(t *testing.T) {
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
	SetWorkers(4)
	if Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", Workers())
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(nil, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatal("want error and nil slice")
	}
}

func TestForEachContainsPanics(t *testing.T) {
	// A panicking task must surface as a *resilience.PanicError task
	// failure — never unwind through the pool — and the remaining
	// in-flight tasks must drain.
	var ran atomic.Int64
	err := ForEach(nil, 64, func(i int) error {
		ran.Add(1)
		if i == 7 {
			panic("task 7 exploded")
		}
		return nil
	})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *resilience.PanicError", err, err)
	}
	if pe.Value != "task 7 exploded" || pe.Point != "parallel.task" {
		t.Errorf("PanicError = {Point: %q, Value: %v}", pe.Point, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if ran.Load() == 0 {
		t.Error("no tasks ran")
	}
}

func TestForEachPanicDoesNotLeakTokens(t *testing.T) {
	// Borrowed workers must return their tokens even when tasks panic:
	// after many panicking fan-outs the budget still allows a full
	// complement of borrows.
	for round := 0; round < 20; round++ {
		_ = ForEach(nil, 8, func(i int) error { panic(i) })
	}
	if got, want := Workers(), Workers(); got != want {
		t.Fatalf("Workers() inconsistent: %d != %d", got, want)
	}
	var maxBusy atomic.Int64
	var busy atomic.Int64
	_ = ForEach(nil, 1024, func(i int) error {
		b := busy.Add(1)
		defer busy.Add(-1)
		for {
			m := maxBusy.Load()
			if b <= m || maxBusy.CompareAndSwap(m, b) {
				break
			}
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if w := Workers(); w > 1 && maxBusy.Load() < 2 {
		t.Errorf("after panicking rounds parallelism collapsed: max busy %d with %d workers", maxBusy.Load(), w)
	}
}

func TestForEachMapPanic(t *testing.T) {
	out, err := Map(nil, 4, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatal("want contained panic error and nil slice")
	}
}

func TestForEachFaultPoint(t *testing.T) {
	// The parallel.task fault point injects task failures and panics
	// through the context, deterministically.
	sentinel := errors.New("injected task failure")
	in := resilience.NewInjector(1, resilience.Rule{Point: "parallel.task", Err: sentinel, After: 3, Times: 1})
	ctx := resilience.WithInjector(context.Background(), in)
	err := ForEach(ctx, 16, func(i int) error { return nil })
	if !errors.Is(err, sentinel) || !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want the injected sentinel", err)
	}
	if in.Hits("parallel.task") < 4 {
		t.Errorf("fault point hit %d times, want >= 4", in.Hits("parallel.task"))
	}

	pin := resilience.NewInjector(1, resilience.Rule{Point: "parallel.task", Panic: true, Times: 1})
	pctx := resilience.WithInjector(context.Background(), pin)
	perr := ForEach(pctx, 16, func(i int) error { return nil })
	var pe *resilience.PanicError
	if !errors.As(perr, &pe) {
		t.Fatalf("injected panic surfaced as %v (%T), want *resilience.PanicError", perr, perr)
	}
}
