// Package parallel is the concurrency substrate of the synthesis
// engine: a bounded, shared worker budget with ordered fan-out/fan-in
// helpers. Every hot loop of the flow — the #wl sweep, placement move
// rounds, the per-signal loss walks, per-waveguide crosstalk
// propagation and the Step-1 conflict-table stripes — funnels through
// this package, so total CPU oversubscription stays bounded no matter
// how the loops nest.
//
// Design rules:
//
//   - The global budget holds GOMAXPROCS-1 borrowable worker tokens;
//     the calling goroutine always participates in its own fan-out, so
//     a fan-out issued from inside another fan-out's worker can always
//     make progress without a token (no nested-pool deadlock) and a
//     single-CPU machine degrades to plain serial loops with near-zero
//     overhead.
//   - Results are reduced in input order: Map writes slot i of its
//     result slice from task i, so callers observe a deterministic
//     ordering regardless of which worker finished first.
//   - Cancellation is prompt: no new task starts after the context is
//     cancelled or a task has failed; ForEach then waits for in-flight
//     tasks to drain and reports the first error in task order.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"xring/internal/obs"
	"xring/internal/resilience"
)

// Pool telemetry (all updates gated on the obs metrics flag):
// fan-outs issued, tasks executed, worker-token borrows, the number of
// goroutines concurrently inside a fan-out (caller + borrowed workers;
// the Max is the pool's realized parallelism), and the free-token level
// (the "queue depth" of the token budget — 0 free means further nested
// fan-outs degrade to serial).
var (
	mFanouts    = obs.NewCounter("parallel.fanouts")
	mTasks      = obs.NewCounter("parallel.tasks")
	mBorrows    = obs.NewCounter("parallel.borrows")
	mBusy       = obs.NewGauge("parallel.workers.busy")
	mTokensFree = obs.NewGauge("parallel.tokens.free")
	mPanics     = obs.NewCounter("parallel.panics")
)

// tokens is the global borrowable-worker budget. A fan-out borrows
// tokens non-blockingly: if none are free the caller simply does the
// work itself, which bounds the total number of running workers at
// roughly GOMAXPROCS across all concurrent and nested fan-outs.
var (
	tokenMu sync.Mutex
	tokens  chan struct{}
)

func init() {
	SetWorkers(runtime.GOMAXPROCS(0))
	resilience.RegisterFaultPoint("parallel.task")
}

// SetWorkers resizes the shared worker budget to n; n == 1 means no
// extra workers (every fan-out runs serially on its caller) and n <= 0
// restores the GOMAXPROCS-sized default pool. It is intended for
// benchmarks and tests that compare serial and parallel execution;
// flipping it while fan-outs are in flight only affects future borrows.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	c := make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		c <- struct{}{}
	}
	tokenMu.Lock()
	tokens = c
	tokenMu.Unlock()
}

// Workers returns the current worker budget (callers + borrowable
// workers), i.e. the maximum parallelism of one fan-out.
func Workers() int {
	tokenMu.Lock()
	defer tokenMu.Unlock()
	return cap(tokens) + 1
}

// borrow tries to take one worker token; release must be called iff it
// returns a non-nil channel.
func borrow() chan struct{} {
	tokenMu.Lock()
	c := tokens
	tokenMu.Unlock()
	select {
	case <-c:
		mBorrows.Inc()
		mTokensFree.Set(int64(len(c)))
		return c
	default:
		return nil
	}
}

// ForEach runs fn(i) for every i in [0, n) with bounded parallelism and
// returns the first error in task order (not completion order). The
// calling goroutine participates; extra workers are borrowed from the
// shared budget. After a cancellation or error no further task starts,
// but in-flight tasks run to completion before ForEach returns.
//
// A panicking task never unwinds through the pool: the panic is
// recovered into a *resilience.PanicError task failure carrying the
// panic value and stack, borrowed tokens are returned, and the fan-out
// reports it like any other error. Callers that rely on panics for
// fail-loudly semantics must check the returned error and re-panic.
//
// ctx may be nil, meaning no cancellation.
func ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	mFanouts.Inc()
	var (
		next    atomic.Int64 // next task index to claim
		stopped atomic.Bool  // set on error or cancellation
		mu      sync.Mutex
		firstI  = n // task index of the lowest-index error
		firstE  error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	// call isolates one task: a panicking fn surfaces as a
	// *resilience.PanicError task failure (stack captured) instead of
	// unwinding through the pool and killing the process, and the
	// "parallel.task" fault point lets tests force failures, panics, or
	// latency into arbitrary tasks.
	call := func(i int) (err error) {
		defer resilience.RecoverTo(&err, "parallel.task")
		if err := resilience.Fire(ctx, "parallel.task"); err != nil {
			return err
		}
		return fn(i)
	}
	run := func() {
		mBusy.Add(1)
		defer mBusy.Add(-1)
		for {
			if stopped.Load() {
				return
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					fail(int(next.Load()), err)
					return
				}
			}
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			mTasks.Inc()
			if err := call(i); err != nil {
				var pe *resilience.PanicError
				if errors.As(err, &pe) {
					mPanics.Inc()
				}
				fail(i, err)
				return
			}
		}
	}

	// Borrow up to n-1 extra workers (never more than the budget).
	var wg sync.WaitGroup
	for extra := 0; extra < n-1; extra++ {
		c := borrow()
		if c == nil {
			break
		}
		wg.Add(1)
		go func(c chan struct{}) {
			defer wg.Done()
			defer func() {
				c <- struct{}{}
				mTokensFree.Set(int64(len(c)))
			}()
			run()
		}(c)
	}
	run() // the caller always works too
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return firstE
}

// Map runs fn(i) for every i in [0, n) with bounded parallelism and
// returns the results in input order. On error the first error in task
// order is returned and the result slice is nil.
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
