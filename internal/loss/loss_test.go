package loss

import (
	"math"
	"testing"

	"xring/internal/mapping"
	"xring/internal/noc"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/ring"
	"xring/internal/router"
	"xring/internal/shortcut"
)

// synth builds a full XRing design (Steps 1-3) for a network.
func synth(t *testing.T, net *noc.Network, withShortcuts, withOpenings bool) *router.Design {
	t.Helper()
	res, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if err := shortcut.Construct(d, shortcut.Options{Disable: !withShortcuts}); err != nil {
		t.Fatal(err)
	}
	if _, err := mapping.Run(d, mapping.Options{MaxWL: net.N(), NoOpenings: !withOpenings, AlignOpenings: true}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeRequiresRoutes(t *testing.T) {
	net := noc.Floorplan8()
	res, err := ring.Construct(net, ring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(d, nil); err == nil {
		t.Fatal("want error for unmapped design")
	}
}

func TestAnalyzeGrid8NoPDN(t *testing.T) {
	d := synth(t, noc.Floorplan8(), true, false)
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Signals) != 56 {
		t.Fatalf("analyzed %d signals, want 56", len(rep.Signals))
	}
	par := d.Par
	for sig, sl := range rep.Signals {
		if sl.IL <= 0 {
			t.Fatalf("signal %v has non-positive IL", sig)
		}
		// IL must include at least one drop + photodetector.
		if sl.IL < par.DropDB+par.PhotodetectorDB {
			t.Fatalf("signal %v IL=%v below floor", sig, sl.IL)
		}
		if sl.PDNLoss != 0 {
			t.Fatalf("no-PDN analysis must have zero PDN loss")
		}
		// No crossings exist in an XRing ring without a comb PDN.
		if sl.Crossings != 0 && d.Routes[sig].Kind == router.OnRing {
			t.Fatalf("ring signal %v passes %d crossings, want 0", sig, sl.Crossings)
		}
	}
	if rep.WorstIL <= 0 || rep.WorstLen <= 0 {
		t.Fatalf("worst-case columns: il=%v L=%v", rep.WorstIL, rep.WorstLen)
	}
	// Worst signal's breakdown matches the report columns.
	w := rep.Signals[rep.Worst]
	if w.IL != rep.WorstIL || w.PathLen != rep.WorstLen || w.Crossings != rep.WorstCrossings {
		t.Fatal("worst-signal columns inconsistent")
	}
}

func TestShortcutsImproveSupportedSignals(t *testing.T) {
	// On a regular grid every lattice point hosts a node, so chords for
	// the ring-opposite pairs are blocked and il_w barely moves; the
	// supported signals themselves, however, must improve strictly.
	dNo := synth(t, noc.Floorplan8(), false, false)
	dYes := synth(t, noc.Floorplan8(), true, false)
	repNo, err := Analyze(dNo, nil)
	if err != nil {
		t.Fatal(err)
	}
	repYes, err := Analyze(dYes, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig := noc.Signal{Src: 1, Dst: 5}
	if r := dYes.Routes[sig]; r.Kind != router.OnShortcut {
		t.Fatalf("1->5 should ride a shortcut")
	}
	sl := repYes.Signals[sig]
	if math.Abs(sl.PathLen-2) > 1e-9 {
		t.Fatalf("shortcut path length = %v, want 2", sl.PathLen)
	}
	if sl.IL >= repNo.Signals[sig].IL {
		t.Fatalf("shortcut should cut 1->5 IL: %v >= %v", sl.IL, repNo.Signals[sig].IL)
	}
	// And il_w must not regress beyond one through-loss of packing noise.
	if repYes.WorstIL > repNo.WorstIL+2*dNo.Par.ThroughDB {
		t.Fatalf("il_w regressed with shortcuts: %v vs %v", repYes.WorstIL, repNo.WorstIL)
	}
}

func TestShortcutsReduceWorstILIrregular(t *testing.T) {
	// On irregular floorplans (the paper's motivating case, Fig. 2),
	// physically-close ring-opposite nodes get shortcuts and il_w drops.
	improved := false
	for _, seed := range []int64{7, 8, 11, 14, 22, 25} {
		net := noc.Irregular(10, 14, 14, 1.5, seed)
		dNo := synth(t, net, false, false)
		dYes := synth(t, net, true, false)
		repNo, err := Analyze(dNo, nil)
		if err != nil {
			t.Fatal(err)
		}
		repYes, err := Analyze(dYes, nil)
		if err != nil {
			t.Fatal(err)
		}
		if repYes.WorstIL < repNo.WorstIL-1e-9 {
			improved = true
		}
	}
	if !improved {
		t.Fatal("shortcuts reduced il_w on none of the irregular instances")
	}
}

func TestRingLossFormula(t *testing.T) {
	// Hand-check one signal on a manually built design.
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := noc.Signal{Src: 0, Dst: 2}
	s2 := noc.Signal{Src: 1, Dst: 3}
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1, Channels: []router.Channel{
		{Sig: s1, WL: 0},
		{Sig: s2, WL: 1},
	}}}
	d.Routes[s1] = &router.Route{Sig: s1, Kind: router.OnRing, WG: 0, WL: 0}
	d.Routes[s2] = &router.Route{Sig: s2, Kind: router.OnRing, WG: 0, WL: 1}
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := d.Par
	// Signal 0->2 travels 4mm, passes node 1 (one sender MRR for s2,
	// no receivers), no other senders at node 0, no other receivers at 2.
	sl := rep.Signals[s1]
	wantThroughs := 1
	if sl.Throughs != wantThroughs {
		t.Fatalf("throughs = %d, want %d", sl.Throughs, wantThroughs)
	}
	want := 4*par.PropagationDBPerMM + float64(wantThroughs)*par.ThroughDB +
		par.DropDB + par.PhotodetectorDB
	if math.Abs(sl.IL-want) > 1e-9 {
		t.Fatalf("IL = %v, want %v", sl.IL, want)
	}
	// Signal 1->3 passes node 2 (one receiver MRR for s1).
	sl2 := rep.Signals[s2]
	if sl2.Throughs != 1 {
		t.Fatalf("s2 throughs = %d, want 1", sl2.Throughs)
	}
}

func TestCrossingLossCounted(t *testing.T) {
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig := noc.Signal{Src: 0, Dst: 3}
	d.Waveguides = []*router.Waveguide{{ID: 0, Dir: router.CW, Opening: -1,
		Channels:  []router.Channel{{Sig: sig, WL: 0}},
		Crossings: []router.Crossing{{Pos: 1, AtNode: 0, Source: "pdn"}, {Pos: 3, AtNode: 1, Source: "pdn"}},
	}}
	d.Routes[sig] = &router.Route{Sig: sig, Kind: router.OnRing, WG: 0, WL: 0}
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Signals[sig].Crossings != 2 {
		t.Fatalf("crossings = %d, want 2", rep.Signals[sig].Crossings)
	}
}

func TestPDNLossIncluded(t *testing.T) {
	d := synth(t, noc.Floorplan8(), true, true)
	plan, err := pdn.BuildTree(d)
	if err != nil {
		t.Fatal(err)
	}
	repNoPDN, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	repPDN, err := Analyze(d, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Signal-path IL (il_w*) is the same; power grows with PDN losses.
	if math.Abs(repNoPDN.WorstIL-repPDN.WorstIL) > 1e-9 {
		t.Fatalf("il_w* changed with PDN: %v vs %v", repNoPDN.WorstIL, repPDN.WorstIL)
	}
	if repPDN.TotalPowerMW <= repNoPDN.TotalPowerMW {
		t.Fatalf("PDN must increase required laser power: %v <= %v",
			repPDN.TotalPowerMW, repNoPDN.TotalPowerMW)
	}
	for sig, sl := range repPDN.Signals {
		if sl.PDNLoss <= 0 {
			t.Fatalf("signal %v has no PDN loss", sig)
		}
	}
}

func TestCombPDNCostsMoreThanTree(t *testing.T) {
	// Same mapping, two PDN styles: the comb's crossings make both the
	// worst IL (crossing loss on signals) and power worse.
	dTree := synth(t, noc.Floorplan16(), true, true)
	planTree, err := pdn.BuildTree(dTree)
	if err != nil {
		t.Fatal(err)
	}
	repTree, err := Analyze(dTree, planTree)
	if err != nil {
		t.Fatal(err)
	}

	dComb := synth(t, noc.Floorplan16(), true, false)
	planComb, err := pdn.BuildComb(dComb)
	if err != nil {
		t.Fatal(err)
	}
	repComb, err := Analyze(dComb, planComb)
	if err != nil {
		t.Fatal(err)
	}
	if repComb.WorstIL <= repTree.WorstIL {
		t.Fatalf("comb PDN should raise il_w: %v <= %v", repComb.WorstIL, repTree.WorstIL)
	}
	if repComb.WorstCrossings == 0 {
		t.Fatal("comb worst signal should pass crossings")
	}
	if repTree.WorstCrossings != 0 {
		t.Fatal("tree worst signal passes crossings")
	}
	if repComb.TotalPowerMW <= repTree.TotalPowerMW {
		t.Fatalf("comb power should exceed tree power: %v <= %v",
			repComb.TotalPowerMW, repTree.TotalPowerMW)
	}
}

func TestWavelengthPowerDominatedByWorstSignal(t *testing.T) {
	d := synth(t, noc.Floorplan8(), false, false)
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for sig, sl := range rep.Signals {
		p := phys.LaserPowerMW(sl.IL+sl.PDNLoss, d.Par.ReceiverSensitivityDBm)
		if p > rep.WavelengthPower[sl.WL]+1e-15 {
			t.Fatalf("wavelength power below requirement of %v", sig)
		}
	}
	sum := 0.0
	for _, p := range rep.WavelengthPower {
		sum += p
	}
	if math.Abs(sum-rep.TotalPowerMW) > 1e-12 {
		t.Fatal("total power != sum of per-wavelength lasers")
	}
	// One laser per wavelength.
	if len(rep.WavelengthPower) != rep.WavelengthCount {
		t.Fatalf("lasers %d != wavelengths %d", len(rep.WavelengthPower), rep.WavelengthCount)
	}
}

func TestWavelengthCountColumn(t *testing.T) {
	d := synth(t, noc.Floorplan8(), false, false)
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WavelengthCount != d.WavelengthsUsed() {
		t.Fatal("wavelength count mismatch")
	}
	if rep.WavelengthCount < 1 || rep.WavelengthCount > 8 {
		t.Fatalf("implausible #wl = %d", rep.WavelengthCount)
	}
}

func TestCSERouteLoss(t *testing.T) {
	// The known CSE instance: CSE-routed signals pay two drops (the CSE
	// MRR and the receiver) and report the through-crossing path length.
	net := noc.Irregular(10, 30, 30, 3, 8)
	d := func() *router.Design {
		res, err := ring.Construct(net, ring.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dd, err := router.NewDesign(net, phys.Default(), res.Tour, res.Orders)
		if err != nil {
			t.Fatal(err)
		}
		if err := shortcut.Construct(dd, shortcut.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := mapping.Run(dd, mapping.Options{MaxWL: 10, NoOpenings: true}); err != nil {
			t.Fatal(err)
		}
		return dd
	}()
	rep, err := Analyze(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	cse := 0
	for sig, r := range d.Routes {
		if r.Kind != router.OnShortcut || !r.ViaCSE {
			continue
		}
		cse++
		sl := rep.Signals[sig]
		if sl.Drops != 2 {
			t.Fatalf("CSE signal %v drops = %d, want 2", sig, sl.Drops)
		}
		if sl.PathLen <= 0 {
			t.Fatalf("CSE signal %v path length %v", sig, sl.PathLen)
		}
		// CSE route still beats the best ring route in IL (the selection
		// criterion pays for the extra drop).
		best := math.Min(d.ArcLen(sig.Src, sig.Dst, router.CW), d.ArcLen(sig.Src, sig.Dst, router.CCW))
		ringIL := best*d.Par.PropagationDBPerMM + d.Par.DropDB + d.Par.PhotodetectorDB
		if sl.IL >= ringIL+2*d.Par.ThroughDB+4*d.Par.BendDB+0.2 {
			t.Fatalf("CSE signal %v IL %v not competitive with ring %v", sig, sl.IL, ringIL)
		}
	}
	if cse == 0 {
		t.Fatal("expected CSE-routed signals in this instance")
	}
	// Direct signals on merged shortcuts pass the CSE crossing.
	for sig, r := range d.Routes {
		if r.Kind == router.OnShortcut && !r.ViaCSE && d.Shortcuts[r.SC].Partner != -1 {
			if rep.Signals[sig].Crossings != 1 {
				t.Fatalf("direct merged-shortcut signal %v crossings = %d, want 1",
					sig, rep.Signals[sig].Crossings)
			}
		}
	}
}
