// Package loss implements the insertion-loss and laser-power analysis
// (Sec. II-B). For every signal it walks the physical route and sums
// propagation loss, through loss at every off-resonance MRR passed,
// drop loss at the destination MRR, crossing loss, bend loss and the
// photodetector loss. Laser power follows the paper's model
// P^λ = 10^((il_w^λ + S)/10) — one off-chip laser per wavelength, sized
// by the worst-case requirement among the wavelength's signals — with
// PDN losses (splits, excess, feed crossings, PDN propagation) added on
// top when a PDN plan is supplied.
//
// MRR inventory convention: along a ring waveguide, every node site
// carries one receiver MRR per channel terminating there and one
// modulator per channel originating there, ordered
// [receiver bank | sender-receiver gap | sender bank] in the travel
// direction. A passing signal traverses both banks of every
// intermediate node; at its source it passes the other modulators of
// its own bank, and at its destination the other receiver MRRs, both
// counted worst-case.
package loss

import (
	"context"
	"fmt"
	"math"
	"sort"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/obs"
	"xring/internal/parallel"
	"xring/internal/pdn"
	"xring/internal/phys"
	"xring/internal/router"
)

// mSignals counts per-signal loss walks across all analyses.
var mSignals = obs.NewCounter("loss.signals")

// A laser group is one wavelength: following the paper's power model
// (Sec. II-B), each wavelength has one off-chip laser whose power is set
// by the worst-case total loss among the signals modulated on it,
// P^λ = 10^((il_w^λ + S)/10); the PDN distributes that wavelength to
// every sender.

// SignalLoss is the per-signal breakdown.
type SignalLoss struct {
	Sig noc.Signal
	// IL is the total signal-path insertion loss in dB, excluding PDN
	// losses (the paper's il and il_w* columns).
	IL float64
	// ILBeforeDrop excludes the final drop and photodetector terms; the
	// crosstalk engine uses it to size drop-leakage noise.
	ILBeforeDrop float64
	// PDNLoss is the laser-to-sender loss in dB (0 without a PDN).
	PDNLoss float64
	// PathLen is the travelled waveguide length in mm (the L column).
	PathLen float64
	// Crossings, Throughs, Drops, Bends are element counts on the path.
	Crossings int
	Throughs  int
	Drops     int
	Bends     int
	// WL is the wavelength carrying this signal.
	WL int
}

// Report is the analysis result for a design.
type Report struct {
	Signals map[noc.Signal]*SignalLoss
	// WorstIL is il_w (dB) and Worst identifies the worst signal.
	WorstIL float64
	Worst   noc.Signal
	// WorstLen and WorstCrossings are the L and C columns: path length
	// and crossing count of the worst-loss signal.
	WorstLen       float64
	WorstCrossings int
	// WavelengthPower is the required laser power per wavelength in mW.
	WavelengthPower map[int]float64
	// TotalPowerMW is the summed laser power (the P column, mW).
	TotalPowerMW float64
	// WavelengthCount is the #wl column: distinct wavelengths used.
	WavelengthCount int
}

// Analyze computes the loss report. plan may be nil for the no-PDN
// comparisons (Table I); PDN losses are then zero.
func Analyze(d *router.Design, plan *pdn.Plan) (*Report, error) {
	return AnalyzeCtx(context.Background(), d, plan)
}

// Banks is the per-waveguide MRR inventory: how many modulators
// (senders) and receiver MRRs each node carries on each ring waveguide.
// The counts are structural — they depend on the channel assignment
// only, never on node positions — so the incremental evaluator caches
// one Banks across a whole placement search.
type Banks struct {
	Senders   []map[int]int
	Receivers []map[int]int
}

// NewBanks tallies the MRR inventory of a design.
func NewBanks(d *router.Design) *Banks {
	b := &Banks{
		Senders:   make([]map[int]int, len(d.Waveguides)),
		Receivers: make([]map[int]int, len(d.Waveguides)),
	}
	for i, w := range d.Waveguides {
		b.Senders[i] = map[int]int{}
		b.Receivers[i] = map[int]int{}
		for _, c := range w.Channels {
			b.Senders[i][c.Sig.Src]++
			b.Receivers[i][c.Sig.Dst]++
		}
	}
	return b
}

// CanonicalSignals returns the design's routed signals in canonical
// (Src, Dst) order — the order every deterministic reduction uses.
func CanonicalSignals(d *router.Design) []noc.Signal {
	sigs := make([]noc.Signal, 0, len(d.Routes))
	for sig := range d.Routes {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].Src != sigs[j].Src {
			return sigs[i].Src < sigs[j].Src
		}
		return sigs[i].Dst < sigs[j].Dst
	})
	return sigs
}

// AnalyzeCtx is Analyze under a context: the per-signal fan-out stops
// promptly on cancellation (returning the context error) and the
// analysis records a trace span.
func AnalyzeCtx(ctx context.Context, d *router.Design, plan *pdn.Plan) (*Report, error) {
	if len(d.Routes) == 0 {
		return nil, fmt.Errorf("loss: design has no routed signals; run the mapping step first")
	}
	ctx, span := obs.Start(ctx, "loss.analyze", obs.Int("signals", len(d.Routes)))
	defer span.End()
	par := d.Par
	banks := NewBanks(d)

	// The per-signal walks are independent: fan them out over the shared
	// worker pool, then reduce in canonical (Src, Dst) order so worst-
	// signal selection and the power sums are deterministic regardless
	// of worker count and completion order.
	sigs := CanonicalSignals(d)
	losses, err := parallel.Map(ctx, len(sigs), func(i int) (*SignalLoss, error) {
		sig := sigs[i]
		r := d.Routes[sig]
		var sl *SignalLoss
		switch r.Kind {
		case router.OnRing:
			sl = ringSignalLoss(d, par, banks, sig, r)
		case router.OnShortcut:
			sl = shortcutSignalLoss(d, par, sig, r)
		default:
			return nil, fmt.Errorf("loss: unknown route kind for %v", sig)
		}
		if plan != nil {
			pl, err := plan.SenderLossDB(par, FeedKeyFor(sig, r))
			if err != nil {
				return nil, err
			}
			sl.PDNLoss = pl
		}
		return sl, nil
	})
	if err != nil {
		return nil, err
	}
	rep := Summarize(d, sigs, losses)
	mSignals.Add(int64(len(sigs)))
	span.Set(obs.Float("worst_il_db", rep.WorstIL),
		obs.Float("power_mw", rep.TotalPowerMW),
		obs.Int("wavelengths", rep.WavelengthCount))
	return rep, nil
}

// ForRoute computes one signal's loss over a specific route with the
// exact expressions of the full analysis. The survivability replay
// engine uses it to delta-evaluate signals promoted onto spare routes
// without re-walking the unchanged ones; banks must be NewBanks of the
// same design, and plan may be nil.
func ForRoute(d *router.Design, banks *Banks, plan *pdn.Plan, sig noc.Signal, r *router.Route) (*SignalLoss, error) {
	var sl *SignalLoss
	switch r.Kind {
	case router.OnRing:
		sl = ringSignalLoss(d, d.Par, banks, sig, r)
	case router.OnShortcut:
		sl = shortcutSignalLoss(d, d.Par, sig, r)
	default:
		return nil, fmt.Errorf("loss: unknown route kind for %v", sig)
	}
	if plan != nil {
		pl, err := plan.SenderLossDB(d.Par, FeedKeyFor(sig, r))
		if err != nil {
			return nil, err
		}
		sl.PDNLoss = pl
	}
	return sl, nil
}

// FeedKeyFor returns the PDN feed key powering a signal's sender.
func FeedKeyFor(sig noc.Signal, r *router.Route) pdn.FeedKey {
	key := pdn.FeedKey{OnShortcut: r.Kind == router.OnShortcut, Node: sig.Src}
	if r.Kind == router.OnShortcut {
		key.Index = r.SC
	} else {
		key.Index = r.WG
	}
	return key
}

// Summarize folds per-signal losses — losses[i] belongs to sigs[i],
// which must be in canonical (Src, Dst) order — into a Report: worst
// signal selection, per-wavelength laser power and the total power sum,
// all walked in fixed order so the folds are bit-reproducible.
func Summarize(d *router.Design, sigs []noc.Signal, losses []*SignalLoss) *Report {
	par := d.Par
	rep := &Report{
		Signals:         map[noc.Signal]*SignalLoss{},
		WavelengthPower: map[int]float64{},
		WorstIL:         math.Inf(-1),
		WavelengthCount: d.WavelengthsUsed(),
	}
	for i, sig := range sigs {
		sl := losses[i]
		rep.Signals[sig] = sl
		if sl.IL > rep.WorstIL {
			rep.WorstIL = sl.IL
			rep.Worst = sig
			rep.WorstLen = sl.PathLen
			rep.WorstCrossings = sl.Crossings
		}
	}

	// Laser power per wavelength: the worst total requirement among the
	// wavelength's signals sets its laser.
	for _, sl := range losses {
		req := sl.IL + sl.PDNLoss
		power := phys.LaserPowerMW(req, par.ReceiverSensitivityDBm)
		if power > rep.WavelengthPower[sl.WL] {
			rep.WavelengthPower[sl.WL] = power
		}
	}
	wls := make([]int, 0, len(rep.WavelengthPower))
	for wl := range rep.WavelengthPower {
		wls = append(wls, wl)
	}
	sort.Ints(wls)
	for _, wl := range wls {
		rep.TotalPowerMW += rep.WavelengthPower[wl]
	}
	return rep
}

// Counts are the walk-derived inputs a signal's insertion loss is
// assembled from. The integer element counts are exact (immune to
// floating-point drift), which is what lets the incremental evaluator
// cache them across node moves and still reproduce a full analysis
// bit for bit; PathLen is recomputed from fresh geometry every time.
type Counts struct {
	PathLen   float64
	Throughs  int
	Drops     int
	Crossings int
	Bends     int
}

// FromCounts assembles a SignalLoss from precomputed counts using the
// exact floating-point expressions of the full analysis, so a cached
// evaluation is bit-identical to a recomputed one. PDNLoss is left
// zero for the caller to fill.
func FromCounts(par phys.Params, sig noc.Signal, r *router.Route, c Counts) *SignalLoss {
	sl := &SignalLoss{
		Sig: sig, WL: r.WL,
		PathLen: c.PathLen, Throughs: c.Throughs,
		Drops: c.Drops, Crossings: c.Crossings, Bends: c.Bends,
	}
	sl.ILBeforeDrop = sl.PathLen*par.PropagationDBPerMM +
		float64(sl.Throughs)*par.ThroughDB +
		float64(sl.Crossings)*par.CrossingDB +
		float64(sl.Bends)*par.BendDB
	// The CSE drop happens before the receiver drop; both are DropDB.
	sl.IL = sl.ILBeforeDrop + float64(sl.Drops)*par.DropDB + par.PhotodetectorDB
	// ILBeforeDrop must include the CSE drop for leakage accounting.
	if r.ViaCSE {
		sl.ILBeforeDrop += par.DropDB
	}
	return sl
}

// RingPathLen returns a ring signal's travelled length: the arc in the
// waveguide's direction scaled by the replica's radial offset. Both
// factors shift whenever any node moves (the perimeter is global), so
// this is recomputed from fresh geometry on every evaluation.
func RingPathLen(d *router.Design, sig noc.Signal, r *router.Route) float64 {
	w := d.Waveguides[r.WG]
	return d.ArcLen(sig.Src, sig.Dst, w.Dir) * d.RadialScale(w)
}

// RingThroughs counts the off-resonance MRRs a ring signal passes:
// the other modulators of its source bank, both banks of every gap
// node, and the other receivers at its destination. The count depends
// only on the tour order and the channel assignment — never on node
// positions — so it is cacheable across placement moves.
func RingThroughs(d *router.Design, b *Banks, sig noc.Signal, r *router.Route) int {
	w := d.Waveguides[r.WG]
	senders, receivers := b.Senders[r.WG], b.Receivers[r.WG]
	throughs := senders[sig.Src] - 1 // other modulators of the source bank
	for _, k := range d.GapNodes(sig.Src, sig.Dst, w.Dir) {
		throughs += senders[k] + receivers[k]
	}
	throughs += receivers[sig.Dst] - 1 // other receivers at the destination
	return throughs
}

func ringSignalLoss(d *router.Design, par phys.Params, banks *Banks, sig noc.Signal, r *router.Route) *SignalLoss {
	w := d.Waveguides[r.WG]
	return FromCounts(par, sig, r, Counts{
		PathLen:   RingPathLen(d, sig, r),
		Throughs:  RingThroughs(d, banks, sig, r),
		Drops:     1,
		Crossings: d.CrossingsOnArc(w, sig.Src, sig.Dst),
		Bends:     d.BendsOnArc(sig.Src, sig.Dst, w.Dir),
	})
}

// ShortcutStructural returns the position-independent element counts of
// a shortcut signal: through MRRs at the entry/exit banks (plus the two
// CSE MRRs for direct traffic on a merged pair), drops, and the CSE
// crossing passed straight through. All derive from the channel lists.
func ShortcutStructural(d *router.Design, sig noc.Signal, r *router.Route) (throughs, drops, crossings int) {
	sc := d.Shortcuts[r.SC]
	// Entry-bank through losses: other channels entering at the same
	// node of this shortcut.
	entryBank := 0
	for _, c := range sc.Channels {
		if c.Sig.Src == sig.Src {
			entryBank++
		}
	}
	throughs = entryBank - 1

	if r.ViaCSE {
		p := d.Shortcuts[sc.Partner]
		drops = 2 // CSE MRR + receiver MRR
		// Exit bank at the partner's receiver end.
		exitBank := 0
		for _, c := range p.Channels {
			if c.Sig.Dst == sig.Dst {
				exitBank++
			}
		}
		for _, c := range sc.Channels {
			if c.Sig.Dst == sig.Dst {
				exitBank++
			}
		}
		throughs += maxInt(exitBank-1, 0)
	} else {
		drops = 1
		if sc.Partner != -1 {
			crossings = 1 // passes the CSE crossing straight through
			throughs += 2 // the two CSE MRRs sit at the crossing
		}
		exitBank := 0
		for _, c := range sc.Channels {
			if c.Sig.Dst == sig.Dst {
				exitBank++
			}
		}
		throughs += maxInt(exitBank-1, 0)
	}
	return maxInt(throughs, 0), drops, crossings
}

// ShortcutGeometry returns the position-dependent pieces of a shortcut
// signal's loss — travelled length and bend count — recomputed from the
// current shortcut paths. For CSE traffic the length walks the entry
// shortcut to the crossing point, then the partner to the destination.
func ShortcutGeometry(d *router.Design, sig noc.Signal, r *router.Route) (pathLen float64, bends int) {
	sc := d.Shortcuts[r.SC]
	if r.ViaCSE {
		p := d.Shortcuts[sc.Partner]
		return cseLength(d, sc, p, sig), sc.PathAB.Bends() + p.PathAB.Bends() + 1
	}
	return sc.Length(), sc.PathAB.Bends()
}

func shortcutSignalLoss(d *router.Design, par phys.Params, sig noc.Signal, r *router.Route) *SignalLoss {
	throughs, drops, crossings := ShortcutStructural(d, sig, r)
	pathLen, bends := ShortcutGeometry(d, sig, r)
	return FromCounts(par, sig, r, Counts{
		PathLen: pathLen, Throughs: throughs,
		Drops: drops, Crossings: crossings, Bends: bends,
	})
}

// cseLength computes the travelled length of a CSE-routed signal:
// entry shortcut from the source to the crossing, then the partner from
// the crossing to the destination.
func cseLength(d *router.Design, entry, exit *router.Shortcut, sig noc.Signal) float64 {
	x, ok := geom.PolylineCrossingPoint(entry.PathAB, exit.PathAB)
	if !ok {
		// Partners always cross exactly once (validated); fall back to
		// half lengths defensively.
		return entry.Length()/2 + exit.Length()/2
	}
	return geom.DistAlong(entry.PathAB, d.Net.Nodes[sig.Src].Pos, x) +
		geom.DistAlong(exit.PathAB, x, d.Net.Nodes[sig.Dst].Pos)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
