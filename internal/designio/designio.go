// Package designio serializes synthesized designs to a stable JSON
// format and loads them back, so routers can be stored, diffed,
// re-analyzed and exchanged with other tools. The PDN plan is not
// stored: it derives deterministically from the design (pdn.BuildTree /
// BuildComb), so loaders re-run Step 4 as needed.
package designio

import (
	"encoding/json"
	"fmt"
	"sort"

	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

// FormatVersion identifies the on-disk schema. Every Save stamps it
// into the payload's explicit "version" field; Load refuses any other
// value with an UnsupportedVersionError, so cached or service-returned
// designs stay forward-compatible: a newer producer's payload fails
// loudly and typed instead of half-parsing.
const FormatVersion = 1

// UnsupportedVersionError reports a payload whose format version this
// build cannot parse. Callers distinguish it from corrupt input with
// errors.As, e.g. to evict a stale cache entry rather than fail the
// request.
type UnsupportedVersionError struct {
	// Got is the version stamped in the payload; Want is this build's
	// FormatVersion.
	Got, Want int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("designio: unsupported format version %d (want %d)", e.Got, e.Want)
}

type fileNode struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type fileChannel struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	WL  int `json:"wl"`
}

type fileCrossing struct {
	Pos    float64 `json:"pos"`
	AtNode int     `json:"atNode"`
	FedWG  int     `json:"fedWG"`
	Source string  `json:"source"`
}

type fileWaveguide struct {
	ID        int            `json:"id"`
	Dir       string         `json:"dir"`
	Radial    int            `json:"radial"`
	Opening   int            `json:"opening"`
	Channels  []fileChannel  `json:"channels"`
	Crossings []fileCrossing `json:"crossings,omitempty"`
}

type fileShortcutChannel struct {
	Src    int  `json:"src"`
	Dst    int  `json:"dst"`
	WL     int  `json:"wl"`
	ViaCSE bool `json:"viaCSE,omitempty"`
}

type fileShortcut struct {
	A        int                   `json:"a"`
	B        int                   `json:"b"`
	Path     [][2]float64          `json:"path"`
	Partner  int                   `json:"partner"`
	Channels []fileShortcutChannel `json:"channels"`
}

type fileRoute struct {
	Src    int  `json:"src"`
	Dst    int  `json:"dst"`
	Kind   int  `json:"kind"`
	WG     int  `json:"wg,omitempty"`
	SC     int  `json:"sc,omitempty"`
	ViaCSE bool `json:"viaCSE,omitempty"`
	WL     int  `json:"wl"`
}

type file struct {
	Version    int             `json:"version"`
	DieW       float64         `json:"dieW"`
	DieH       float64         `json:"dieH"`
	Nodes      []fileNode      `json:"nodes"`
	Par        phys.Params     `json:"params"`
	Tour       []int           `json:"tour"`
	Orders     []int           `json:"orders"`
	MaxWL      int             `json:"maxWL"`
	Waveguides []fileWaveguide `json:"waveguides"`
	Shortcuts  []fileShortcut  `json:"shortcuts"`
	Routes     []fileRoute     `json:"routes"`
	// SpareRoutes holds cold-standby protection routes from
	// fault-tolerant synthesis. omitempty keeps nominal payloads
	// byte-identical to pre-fault-tolerance builds, so FormatVersion
	// stays 1.
	SpareRoutes []fileRoute `json:"spareRoutes,omitempty"`
}

// sortRoutes orders serialized routes by (src, dst) so Save is
// byte-deterministic — equal designs serialize to equal bytes, the
// property content-addressed caches and diff tooling rely on.
func sortRoutes(rs []fileRoute) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Src != rs[j].Src {
			return rs[i].Src < rs[j].Src
		}
		return rs[i].Dst < rs[j].Dst
	})
}

// Save serializes a design.
func Save(d *router.Design) ([]byte, error) {
	f := file{
		Version: FormatVersion,
		DieW:    d.Net.DieW,
		DieH:    d.Net.DieH,
		Par:     d.Par,
		Tour:    d.Tour,
		MaxWL:   d.MaxWL,
	}
	for _, n := range d.Net.Nodes {
		f.Nodes = append(f.Nodes, fileNode{ID: n.ID, Name: n.Name, X: n.Pos.X, Y: n.Pos.Y})
	}
	for _, o := range d.EdgeOrders {
		f.Orders = append(f.Orders, int(o))
	}
	for _, w := range d.Waveguides {
		fw := fileWaveguide{ID: w.ID, Dir: w.Dir.String(), Radial: w.Radial, Opening: w.Opening}
		for _, c := range w.Channels {
			fw.Channels = append(fw.Channels, fileChannel{Src: c.Sig.Src, Dst: c.Sig.Dst, WL: c.WL})
		}
		for _, x := range w.Crossings {
			fw.Crossings = append(fw.Crossings, fileCrossing{Pos: x.Pos, AtNode: x.AtNode, FedWG: x.FedWG, Source: x.Source})
		}
		f.Waveguides = append(f.Waveguides, fw)
	}
	for _, s := range d.Shortcuts {
		fs := fileShortcut{A: s.A, B: s.B, Partner: s.Partner}
		for _, p := range s.PathAB {
			fs.Path = append(fs.Path, [2]float64{p.X, p.Y})
		}
		for _, c := range s.Channels {
			fs.Channels = append(fs.Channels, fileShortcutChannel{
				Src: c.Sig.Src, Dst: c.Sig.Dst, WL: c.WL, ViaCSE: c.ViaCSE})
		}
		f.Shortcuts = append(f.Shortcuts, fs)
	}
	// Route maps are emitted in (src, dst) order; see sortRoutes.
	for _, r := range d.Routes {
		f.Routes = append(f.Routes, fileRoute{
			Src: r.Sig.Src, Dst: r.Sig.Dst, Kind: int(r.Kind),
			WG: r.WG, SC: r.SC, ViaCSE: r.ViaCSE, WL: r.WL,
		})
	}
	sortRoutes(f.Routes)
	for _, r := range d.SpareRoutes {
		f.SpareRoutes = append(f.SpareRoutes, fileRoute{
			Src: r.Sig.Src, Dst: r.Sig.Dst, Kind: int(r.Kind),
			WG: r.WG, SC: r.SC, ViaCSE: r.ViaCSE, WL: r.WL,
		})
	}
	sortRoutes(f.SpareRoutes)
	return json.MarshalIndent(f, "", " ")
}

// PayloadVersion reports the format version stamped into a serialized
// design without rebuilding it. The service's persistent cache uses it
// during crash recovery to discard version-stale entries cheaply — a
// payload that does not even parse reports an error, which recovery
// treats the same as a stale version.
func PayloadVersion(data []byte) (int, error) {
	var v struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return 0, fmt.Errorf("designio: %w", err)
	}
	return v.Version, nil
}

// Load rebuilds a design from its serialized form and validates it.
func Load(data []byte) (*router.Design, error) {
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, &UnsupportedVersionError{Got: f.Version, Want: FormatVersion}
	}
	net := &noc.Network{DieW: f.DieW, DieH: f.DieH}
	for _, n := range f.Nodes {
		net.Nodes = append(net.Nodes, noc.Node{ID: n.ID, Name: n.Name, Pos: geom.Point{X: n.X, Y: n.Y}})
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	orders := make([]geom.LOrder, len(f.Orders))
	for i, o := range f.Orders {
		orders[i] = geom.LOrder(o)
	}
	d, err := router.NewDesign(net, f.Par, f.Tour, orders)
	if err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	d.MaxWL = f.MaxWL
	for _, fw := range f.Waveguides {
		dir := router.CW
		if fw.Dir == router.CCW.String() {
			dir = router.CCW
		} else if fw.Dir != router.CW.String() {
			return nil, fmt.Errorf("designio: unknown direction %q", fw.Dir)
		}
		w := &router.Waveguide{ID: fw.ID, Dir: dir, Radial: fw.Radial, Opening: fw.Opening}
		for _, c := range fw.Channels {
			w.Channels = append(w.Channels, router.Channel{
				Sig: noc.Signal{Src: c.Src, Dst: c.Dst}, WL: c.WL})
		}
		for _, x := range fw.Crossings {
			w.Crossings = append(w.Crossings, router.Crossing{
				Pos: x.Pos, AtNode: x.AtNode, FedWG: x.FedWG, Source: x.Source})
		}
		d.Waveguides = append(d.Waveguides, w)
	}
	for _, fs := range f.Shortcuts {
		s := &router.Shortcut{A: fs.A, B: fs.B, Partner: fs.Partner}
		for _, p := range fs.Path {
			s.PathAB = append(s.PathAB, geom.Point{X: p[0], Y: p[1]})
		}
		for _, c := range fs.Channels {
			s.Channels = append(s.Channels, router.ShortcutChannel{
				Sig: noc.Signal{Src: c.Src, Dst: c.Dst}, WL: c.WL, ViaCSE: c.ViaCSE})
		}
		d.Shortcuts = append(d.Shortcuts, s)
	}
	for _, fr := range f.Routes {
		sig := noc.Signal{Src: fr.Src, Dst: fr.Dst}
		d.Routes[sig] = &router.Route{
			Sig: sig, Kind: router.RouteKind(fr.Kind),
			WG: fr.WG, SC: fr.SC, ViaCSE: fr.ViaCSE, WL: fr.WL,
		}
	}
	if len(f.SpareRoutes) > 0 {
		d.SpareRoutes = map[noc.Signal]*router.Route{}
		for _, fr := range f.SpareRoutes {
			sig := noc.Signal{Src: fr.Src, Dst: fr.Dst}
			d.SpareRoutes[sig] = &router.Route{
				Sig: sig, Kind: router.RouteKind(fr.Kind),
				WG: fr.WG, SC: fr.SC, ViaCSE: fr.ViaCSE, WL: fr.WL,
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("designio: loaded design invalid: %w", err)
	}
	return d, nil
}
