package designio

import (
	"testing"

	"xring/internal/core"
	"xring/internal/noc"
)

// FuzzLoad ensures arbitrary (including corrupted) design files never
// panic the loader: they either load a valid design or return an error.
func FuzzLoad(f *testing.F) {
	res, err := core.Synthesize(noc.Floorplan8(), core.Options{MaxWL: 8, WithPDN: true})
	if err != nil {
		f.Fatal(err)
	}
	blob, err := Save(res.Design)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"nodes":[],"tour":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(data)
		if err == nil {
			// A successfully loaded design must re-validate.
			if verr := d.Validate(); verr != nil {
				t.Fatalf("Load returned an invalid design: %v", verr)
			}
		}
	})
}
