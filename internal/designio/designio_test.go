package designio

import (
	"math"
	"strings"
	"testing"

	"xring/internal/core"
	"xring/internal/loss"
	"xring/internal/noc"
	"xring/internal/pdn"
)

func TestRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"grid8-pdn", core.Options{MaxWL: 8, WithPDN: true}},
		{"grid16-nopdn", core.Options{MaxWL: 14}},
		{"grid8-comb", core.Options{MaxWL: 6, WithPDN: true, NoOpenings: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			net := noc.Floorplan8()
			if strings.Contains(cfg.name, "16") {
				net = noc.Floorplan16()
			}
			res, err := core.Synthesize(net, cfg.opt)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := Save(res.Design)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(blob)
			if err != nil {
				t.Fatal(err)
			}

			// Structural equality.
			if loaded.N() != res.Design.N() ||
				len(loaded.Waveguides) != len(res.Design.Waveguides) ||
				len(loaded.Shortcuts) != len(res.Design.Shortcuts) ||
				len(loaded.Routes) != len(res.Design.Routes) ||
				loaded.MaxWL != res.Design.MaxWL {
				t.Fatal("structure changed across round trip")
			}
			if math.Abs(loaded.Perimeter()-res.Design.Perimeter()) > 1e-12 {
				t.Fatal("perimeter changed")
			}

			// Analysis equality: the loss report must be identical.
			var plan *pdn.Plan
			if cfg.opt.WithPDN {
				if cfg.opt.NoOpenings {
					plan, err = pdn.BuildComb(loaded)
				} else {
					plan, err = pdn.BuildTree(loaded)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			lr, err := loss.Analyze(loaded, plan)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(lr.WorstIL-res.Loss.WorstIL) > 1e-9 {
				t.Fatalf("worst IL changed: %v vs %v", lr.WorstIL, res.Loss.WorstIL)
			}
			if math.Abs(lr.TotalPowerMW-res.Loss.TotalPowerMW) > 1e-9 {
				t.Fatalf("power changed: %v vs %v", lr.TotalPowerMW, res.Loss.TotalPowerMW)
			}
			for sig, sl := range res.Loss.Signals {
				if math.Abs(lr.Signals[sig].IL-sl.IL) > 1e-9 {
					t.Fatalf("signal %v IL changed", sig)
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not json")); err == nil {
		t.Fatal("want error for invalid JSON")
	}
	if _, err := Load([]byte(`{"version": 99}`)); err == nil {
		t.Fatal("want error for unknown version")
	}
	// Valid JSON, inconsistent design: a route pointing nowhere.
	net := noc.Floorplan8()
	res, err := core.Synthesize(net, core.Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Save(res.Design)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(blob), `"tour": [`, `"tour": [99, `, 1)
	if _, err := Load([]byte(corrupted)); err == nil {
		t.Fatal("want error for corrupted tour")
	}
}

func TestSaveIsDeterministicEnough(t *testing.T) {
	// Routes serialize from a map, so byte equality is not guaranteed;
	// loading two saves of the same design must agree though.
	net := noc.Floorplan8()
	res, err := core.Synthesize(net, core.Options{MaxWL: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := Save(res.Design)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Save(res.Design)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Load(b1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Load(b2)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Perimeter() != d2.Perimeter() || len(d1.Routes) != len(d2.Routes) {
		t.Fatal("two saves disagree")
	}
}
