package designio

import (
	"encoding/json"
	"errors"
	"testing"

	"xring/internal/noc"
	"xring/internal/phys"
	"xring/internal/router"
)

// TestSaveStampsFormatVersion: every payload carries the explicit
// version field, so future readers can dispatch on it.
func TestSaveStampsFormatVersion(t *testing.T) {
	net := noc.Floorplan8()
	d, err := router.NewDesign(net, phys.Default(), []int{0, 1, 2, 3, 7, 6, 5, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Save(d)
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Version == nil {
		t.Fatal("saved payload has no version field")
	}
	if *probe.Version != FormatVersion {
		t.Fatalf("saved version = %d, want %d", *probe.Version, FormatVersion)
	}
}

// TestLoadUnknownVersionTypedError: an unknown version yields an
// UnsupportedVersionError carrying both versions, distinguishable from
// corrupt input via errors.As.
func TestLoadUnknownVersionTypedError(t *testing.T) {
	for _, v := range []int{0, FormatVersion + 1, 99} {
		_, err := Load([]byte(`{"version": ` + itoa(v) + `}`))
		var ve *UnsupportedVersionError
		if !errors.As(err, &ve) {
			t.Fatalf("version %d: err = %v (%T), want *UnsupportedVersionError", v, err, err)
		}
		if ve.Got != v || ve.Want != FormatVersion {
			t.Fatalf("version %d: error fields Got=%d Want=%d", v, ve.Got, ve.Want)
		}
	}
	// Corrupt input is NOT a version error.
	_, err := Load([]byte(`{not json`))
	var ve *UnsupportedVersionError
	if errors.As(err, &ve) {
		t.Fatal("corrupt input reported as a version error")
	}
	if err == nil {
		t.Fatal("corrupt input loaded without error")
	}
}

func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
