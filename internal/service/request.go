package service

import (
	"fmt"
	"sort"

	"xring/internal/core"
	"xring/internal/geom"
	"xring/internal/noc"
	"xring/internal/phys"
)

// NodeSpec is one node of a request floorplan. ID is optional: absent
// IDs are assigned by listing order, while explicit IDs let clients
// list nodes in any order (the canonical key sorts by ID, so the order
// never changes the key). Name defaults to "n<id>".
type NodeSpec struct {
	ID   *int    `json:"id,omitempty"`
	Name string  `json:"name,omitempty"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// NetworkSpec is a request floorplan. Either Nodes or Standard must be
// set: Standard selects a built-in floorplan by node count (8/16/32).
type NetworkSpec struct {
	Standard int        `json:"standard,omitempty"`
	DieW     float64    `json:"dieW,omitempty"`
	DieH     float64    `json:"dieH,omitempty"`
	Nodes    []NodeSpec `json:"nodes,omitempty"`
}

// SignalSpec is one traffic demand.
type SignalSpec struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// OptionsSpec mirrors core.Options over the wire, plus the sweep mode.
// MaxWL == 0 (or Sweep == true) runs a #wl sweep under Objective;
// otherwise a single synthesis at MaxWL.
type OptionsSpec struct {
	MaxWL            int          `json:"maxWL,omitempty"`
	WithPDN          bool         `json:"withPDN,omitempty"`
	ShareWavelengths bool         `json:"shareWavelengths,omitempty"`
	Params           string       `json:"params,omitempty"` // "default" (or empty) | "tableI"
	Traffic          []SignalSpec `json:"traffic,omitempty"`

	Sweep      bool   `json:"sweep,omitempty"`
	Objective  string `json:"objective,omitempty"` // min-il | min-power | max-snr
	Candidates []int  `json:"candidates,omitempty"`

	// Ablation switches, for parity with the library surface.
	DisableShortcuts bool `json:"disableShortcuts,omitempty"`
	NoCSE            bool `json:"noCSE,omitempty"`
	NoOpenings       bool `json:"noOpenings,omitempty"`
	DisableConflicts bool `json:"disableConflicts,omitempty"`

	// NoFallback disables degraded-mode synthesis: instead of falling
	// back to the heuristic ring constructor on solver budget
	// exhaustion, the request fails with the solver's error.
	NoFallback bool `json:"noFallback,omitempty"`

	// FaultTolerance requests k-fault-tolerant synthesis: the mapper adds
	// a spare-route protection layer so the design survives any single
	// MRR failure (only k=1 is supported). It is part of the content key:
	// protected and unprotected designs never alias.
	FaultTolerance *FaultToleranceSpec `json:"fault_tolerance,omitempty"`
}

// FaultToleranceSpec selects the synthesis protection level.
type FaultToleranceSpec struct {
	K int `json:"k"`
}

// Request is the POST /v1/synthesize body.
type Request struct {
	Network NetworkSpec `json:"network"`
	Options OptionsSpec `json:"options"`
	// DeadlineMS bounds the synthesis run; expiry cancels the engine
	// context and fails the job with 504. Zero uses the server default.
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
	// Async returns 202 + job id immediately instead of waiting for the
	// result; poll GET /v1/jobs/{id} or stream /v1/jobs/{id}/events.
	Async bool `json:"async,omitempty"`
}

// resolved is a validated request in engine terms, ready to hash and
// run: node specs became a noc.Network (nodes sorted by ID), options
// became core.Options plus the sweep mode.
type resolved struct {
	net       *noc.Network
	opt       core.Options
	sweep     bool
	objective core.Objective
	cands     []int
}

// resolve validates the request and normalizes it into engine terms.
// All normalization that must not affect the cache key — node listing
// order, float formatting, duplicate traffic entries, candidate order —
// happens here, before the key is computed.
func (r *Request) resolve() (*resolved, error) {
	out := &resolved{}
	net, err := r.Network.toNetwork()
	if err != nil {
		return nil, err
	}
	out.net = net

	o := r.Options
	switch o.Params {
	case "", "default":
		// core defaults to phys.Default()
	case "tableI":
		p := phys.TableI()
		out.opt.Par = &p
	default:
		return nil, fmt.Errorf("unknown params preset %q (default or tableI)", o.Params)
	}
	if o.MaxWL < 0 || o.MaxWL > net.N() {
		return nil, fmt.Errorf("maxWL %d out of range [0, %d]", o.MaxWL, net.N())
	}
	out.opt.MaxWL = o.MaxWL
	out.opt.WithPDN = o.WithPDN
	out.opt.ShareWavelengths = o.ShareWavelengths
	out.opt.DisableShortcuts = o.DisableShortcuts
	out.opt.NoCSE = o.NoCSE
	out.opt.NoOpenings = o.NoOpenings
	out.opt.DisableConflicts = o.DisableConflicts
	out.opt.NoFallback = o.NoFallback
	if o.FaultTolerance != nil {
		if o.FaultTolerance.K < 0 || o.FaultTolerance.K > 1 {
			return nil, fmt.Errorf("fault_tolerance.k %d out of range [0, 1]", o.FaultTolerance.K)
		}
		out.opt.FaultTolerance = o.FaultTolerance.K
	}

	if len(o.Traffic) > 0 {
		seen := map[noc.Signal]bool{}
		for _, s := range o.Traffic {
			if s.Src < 0 || s.Src >= net.N() || s.Dst < 0 || s.Dst >= net.N() || s.Src == s.Dst {
				return nil, fmt.Errorf("invalid traffic signal %d->%d for %d nodes", s.Src, s.Dst, net.N())
			}
			sig := noc.Signal{Src: s.Src, Dst: s.Dst}
			if !seen[sig] {
				seen[sig] = true
				out.opt.Traffic = append(out.opt.Traffic, sig)
			}
		}
		noc.SortSignals(out.opt.Traffic)
	}

	out.sweep = o.Sweep || o.MaxWL == 0
	if out.sweep {
		switch o.Objective {
		case "min-il":
			out.objective = core.MinWorstIL
		case "", "min-power":
			out.objective = core.MinPower
		case "max-snr":
			out.objective = core.MaxSNR
		default:
			return nil, fmt.Errorf("unknown objective %q (min-il, min-power or max-snr)", o.Objective)
		}
		if len(o.Candidates) > 0 {
			cands := append([]int(nil), o.Candidates...)
			sort.Ints(cands)
			dedup := cands[:0]
			for i, wl := range cands {
				if wl < 1 || wl > net.N() {
					return nil, fmt.Errorf("candidate #wl %d out of range [1, %d]", wl, net.N())
				}
				if i > 0 && wl == cands[i-1] {
					continue
				}
				dedup = append(dedup, wl)
			}
			out.cands = dedup
		}
	}
	return out, nil
}

// toNetwork builds the validated floorplan. Nodes are sorted by ID, so
// listing order never matters.
func (ns *NetworkSpec) toNetwork() (*noc.Network, error) {
	if ns.Standard != 0 {
		if len(ns.Nodes) > 0 {
			return nil, fmt.Errorf("network: standard and nodes are mutually exclusive")
		}
		return noc.FloorplanFor(ns.Standard)
	}
	if len(ns.Nodes) == 0 {
		return nil, fmt.Errorf("network: no nodes (set standard or nodes)")
	}
	net := &noc.Network{DieW: ns.DieW, DieH: ns.DieH}
	for i, n := range ns.Nodes {
		id := i
		if n.ID != nil {
			id = *n.ID
		}
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", id)
		}
		net.Nodes = append(net.Nodes, noc.Node{ID: id, Name: name, Pos: geom.Point{X: n.X, Y: n.Y}})
	}
	sort.Slice(net.Nodes, func(i, j int) bool { return net.Nodes[i].ID < net.Nodes[j].ID })
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
