package service

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: Go toolchain, main module
// and, when the binary was built inside a VCS checkout, the revision
// stamped by the toolchain (debug.ReadBuildInfo). Served in
// GET /v1/stats and logged once at daemon startup, so an operator can
// always tell which build produced an answer.
type BuildInfo struct {
	GoVersion string `json:"goVersion"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcsRevision,omitempty"`
	Modified  bool   `json:"vcsModified,omitempty"`
	VCSTime   string `json:"vcsTime,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo returns the binary's build identity. The result is
// computed once; `go test` binaries and builds outside a checkout
// simply lack the VCS fields.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			}
		}
	})
	return buildInfo
}
