package service

// The /v1/explore workload: one POST submits a whole design-space grid,
// the server expands it into cells, converts each cell into exactly the
// request it would have accepted on /v1/synthesize (so per-cell content
// keys are byte-identical to standalone requests and every cache tier —
// memory LRU, persisted designs, singleflight dedup, the engine's
// floorplan-keyed ring cache — amplifies the grid for free), fans the
// cells over the exploration runner with per-cell isolation (one
// infeasible cell degrades or fails alone; the study always completes),
// and streams incremental Pareto-frontier updates over the same SSE
// machinery as job progress.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"xring/internal/explore"
)

// ExploreRequest is the POST /v1/explore body.
type ExploreRequest struct {
	Grid explore.Grid `json:"grid"`
	// CellDeadlineMS bounds each cell's synthesis (an expired cell is
	// recorded as a timeout; its siblings continue). Zero uses the
	// server's default deadline.
	CellDeadlineMS int64 `json:"cellDeadlineMS,omitempty"`
	// Async returns 202 + study id immediately; poll GET /v1/explore/{id}
	// or stream /v1/explore/{id}/events.
	Async bool `json:"async,omitempty"`
}

// CellStatus is one cell's record in the study status.
type CellStatus struct {
	Index int    `json:"index"`
	ID    string `json:"id"`
	// Key is the cell's canonical content key — the same key the
	// equivalent /v1/synthesize request would get, usable directly
	// against GET /v1/designs/{key}.
	Key   string `json:"key"`
	JobID string `json:"jobID,omitempty"`
	// Source says how the cell was served: synthesized, cache (memory),
	// persist (disk tier) or dedup (attached to an in-flight job).
	Source string `json:"source,omitempty"`
	// Outcome classifies the completed cell: ok, degraded, timeout, error.
	Outcome string  `json:"outcome,omitempty"`
	DurMS   float64 `json:"durMS,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// ExploreStatus is the GET /v1/explore/{id} body (and the synchronous
// POST response).
type ExploreStatus struct {
	ID      string   `json:"id"`
	TraceID string   `json:"traceID,omitempty"`
	State   JobState `json:"state"`
	Cells   int      `json:"cells"`
	// Completed = OK + Degraded + Failed; Failed counts error and
	// timeout outcomes (degraded cells completed with a valid design).
	Completed int `json:"completed"`
	OK        int `json:"ok"`
	Degraded  int `json:"degraded"`
	Failed    int `json:"failed"`
	// CacheHits counts cells served from the memory or persist tier;
	// DedupHits counts cells that attached to an in-flight identical job.
	CacheHits    int             `json:"cacheHits"`
	DedupHits    int             `json:"dedupHits"`
	Events       int             `json:"events"`
	ElapsedMS    float64         `json:"elapsedMS,omitempty"`
	CellStatuses []CellStatus    `json:"cellStatuses"`
	Frontier     []explore.Point `json:"frontier,omitempty"`
}

// FrontierBody is the GET /v1/explore/{id}/frontier JSON body.
type FrontierBody struct {
	ID     string          `json:"id"`
	Size   int             `json:"size"`
	Points []explore.Point `json:"points"`
}

// exploration is the server-side record of one grid study.
type exploration struct {
	id      string
	traceID string
	started time.Time
	log     eventLog
	done    chan struct{}

	frontier *explore.Frontier

	mu        sync.Mutex
	state     JobState
	cells     []CellStatus
	completed int
	ok        int
	degraded  int
	failed    int
	cacheHits int
	dedupHits int
	elapsedMS float64
}

// status snapshots the study for the HTTP surface. withFrontier adds
// the canonically sorted frontier points.
func (x *exploration) status(withFrontier bool) *ExploreStatus {
	events := x.log.count()
	x.mu.Lock()
	st := &ExploreStatus{
		ID: x.id, TraceID: x.traceID, State: x.state,
		Cells: len(x.cells), Completed: x.completed,
		OK: x.ok, Degraded: x.degraded, Failed: x.failed,
		CacheHits: x.cacheHits, DedupHits: x.dedupHits,
		Events: events, ElapsedMS: x.elapsedMS,
		CellStatuses: append([]CellStatus(nil), x.cells...),
	}
	x.mu.Unlock()
	if withFrontier {
		st.Frontier = x.frontier.Points()
	}
	return st
}

func (x *exploration) terminal() bool {
	select {
	case <-x.done:
		return true
	default:
		return false
	}
}

// exploreID builds a stable study identifier: an admission sequence
// number plus a digest of the expanded cell keys (the study's content
// identity — the same grid yields the same digest).
func exploreID(seq uint64, keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("x%d-%s", seq, hex.EncodeToString(h.Sum(nil))[:12])
}

// cellRequest converts one expanded cell into the /v1/synthesize
// request it is equivalent to. The floorplan's network spec is decoded
// through the same strict schema as a standalone request, and the
// resulting Request goes through the same resolve() + canonicalKey()
// path — which is what makes cell keys byte-identical to standalone
// keys by construction.
func cellRequest(g *explore.Grid, c explore.Cell) (*Request, error) {
	var net NetworkSpec
	dec := json.NewDecoder(bytes.NewReader(g.Floorplans[c.Floorplan].Network))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&net); err != nil {
		return nil, fmt.Errorf("floorplan %d: decoding network: %w", c.Floorplan, err)
	}
	req := &Request{Network: net}
	o := &req.Options
	o.WithPDN = g.WithPDN
	o.Params = g.Params
	o.ShareWavelengths = c.Share
	o.DisableShortcuts = c.Policy.DisableShortcuts
	o.NoCSE = c.Policy.NoCSE
	o.NoOpenings = c.Policy.NoOpenings
	o.DisableConflicts = c.Policy.DisableConflicts
	if c.Sweep {
		o.Sweep = true
		o.Objective = c.Objective
	} else {
		o.MaxWL = c.Budget
	}
	return req, nil
}

// pointFor projects a cell's summary onto the frontier's objective
// space.
func pointFor(cellID, key string, sum *Summary) explore.Point {
	return explore.Point{
		CellID:      cellID,
		Key:         key,
		Degraded:    sum.Degraded,
		WorstILdB:   sum.WorstILdB,
		WorstSNRdB:  sum.WorstSNRdB,
		PowerMW:     sum.PowerMW,
		Wavelengths: sum.Wavelengths,
		MRRs:        sum.MRRs,
	}
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	s.st.exploreStudies.Add(1)
	mExploreStudies.Inc()
	traceID := string(requestTraceID(r))
	w.Header().Set("X-Trace-Id", traceID)
	var req ExploreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		mRequestsInvalid.Inc()
		writeErrorTraced(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), traceID)
		return
	}
	cells, err := req.Grid.Expand()
	if err != nil {
		mRequestsInvalid.Inc()
		writeErrorTraced(w, http.StatusBadRequest, err, traceID)
		return
	}
	if len(cells) > maxExploreCells {
		mRequestsInvalid.Inc()
		writeErrorTraced(w, http.StatusBadRequest,
			fmt.Errorf("grid expands to %d cells (max %d)", len(cells), maxExploreCells), traceID)
		return
	}
	// Resolve every cell up front: an invalid axis value fails the whole
	// study with a 400 naming the cell, before anything runs.
	rrs := make([]*resolved, len(cells))
	keys := make([]string, len(cells))
	for i, c := range cells {
		creq, cerr := cellRequest(&req.Grid, c)
		if cerr == nil {
			rrs[i], cerr = creq.resolve()
		}
		if cerr != nil {
			mRequestsInvalid.Inc()
			writeErrorTraced(w, http.StatusBadRequest, fmt.Errorf("cell %s: %w", c.ID, cerr), traceID)
			return
		}
		keys[i] = canonicalKey(rrs[i])
	}
	if s.draining.Load() {
		s.st.drained.Add(1)
		mRejectedDrain.Inc()
		w.Header().Set("Retry-After", "5")
		writeErrorTraced(w, http.StatusServiceUnavailable, errors.New("server is draining"), traceID)
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.CellDeadlineMS > 0 {
		deadline = time.Duration(req.CellDeadlineMS) * time.Millisecond
	}

	x := &exploration{
		id:       exploreID(s.exploreSeq.Add(1), keys),
		traceID:  traceID,
		started:  time.Now(),
		log:      eventLog{traceID: traceID},
		done:     make(chan struct{}),
		frontier: explore.NewFrontier(),
		state:    StateQueued,
	}
	x.cells = make([]CellStatus, len(cells))
	for i, c := range cells {
		x.cells[i] = CellStatus{Index: c.Index, ID: c.ID, Key: keys[i]}
	}
	x.log.publish(Event{Type: "queued", Attrs: map[string]any{"cells": len(cells)}})

	s.mu.Lock()
	s.retainExplorationLocked(x)
	s.mu.Unlock()
	s.st.exploreCells.Add(int64(len(cells)))
	mExploreCells.Add(int64(len(cells)))
	s.wg.Add(1)
	go s.runExploration(x, cells, rrs, keys, deadline)

	if req.Async {
		w.Header().Set("Location", "/v1/explore/"+x.id)
		writeJSON(w, http.StatusAccepted, x.status(false))
		return
	}
	select {
	case <-x.done:
	case <-r.Context().Done():
		// Client gone; the study keeps running and fills the caches.
		return
	}
	writeJSON(w, http.StatusOK, x.status(true))
}

// maxExploreCells bounds one study's expansion (a typo'd axis must not
// mint a million-cell grid).
const maxExploreCells = 4096

// runExploration is the study controller, on its own goroutine
// (accounted in s.wg, so Drain waits for running studies like it waits
// for jobs).
func (s *Server) runExploration(x *exploration, cells []explore.Cell, rrs []*resolved, keys []string, deadline time.Duration) {
	defer s.wg.Done()
	x.mu.Lock()
	x.state = StateRunning
	x.mu.Unlock()
	x.log.publish(Event{Type: "started"})

	runner := &explore.Runner{
		Concurrency: s.cfg.ExploreCellConcurrency,
		Run: func(_ context.Context, c explore.Cell) {
			s.runCell(x, c, rrs[c.Index], keys[c.Index], deadline)
		},
	}
	// The runner contains cell panics (each cell is additionally
	// isolated inside run); a study never fails as a whole.
	_ = runner.RunAll(context.Background(), cells)

	elapsed := time.Since(x.started)
	x.mu.Lock()
	x.state = StateDone
	x.elapsedMS = float64(elapsed.Microseconds()) / 1000
	x.mu.Unlock()
	mExploreStudyMS.Observe(float64(elapsed.Microseconds()) / 1000)
	x.log.publish(Event{Type: "done", Attrs: map[string]any{"frontier": x.frontier.Size()}})
	close(x.done)
}

// runCell executes one cell: cache tiers first, then singleflight
// attach, then a direct engine run on the controller's goroutine
// (bypassing the admission queue — a study must not be able to wedge
// itself by filling the queue it is also draining). The completed
// cell's summary is offered to the frontier; errors and timeouts are
// recorded on the cell and the study continues.
func (s *Server) runCell(x *exploration, c explore.Cell, rr *resolved, key string, deadline time.Duration) {
	t0 := time.Now()
	var (
		summary *Summary
		cellErr error
		jobid   string
		source  string
	)
	if hit, tier, ok := s.cacheGet(key); ok {
		s.countCacheServe(tier)
		source = "cache"
		if tier == tierPersist {
			source = "persist"
		}
		summary, jobid = hit.summary, hit.jobID
	} else {
		s.mu.Lock()
		j, attached := s.inflight[key]
		attached = attached && !j.terminal()
		if attached {
			j.attach()
			s.mu.Unlock()
			s.st.dedupHits.Add(1)
			mDedupHits.Inc()
			source = "dedup"
			<-j.done
		} else {
			mCacheMisses.Inc()
			j = newJob(jobID(s.seq.Add(1), key), key, x.traceID, rr, deadline)
			s.inflight[key] = j
			s.retainJobLocked(j)
			s.mu.Unlock()
			source = "synthesized"
			s.run(j)
		}
		jobid = j.id
		if _, _, sum, jerr := j.snapshot(); jerr != nil {
			cellErr = jerr
		} else {
			summary = sum
		}
	}
	durMS := float64(time.Since(t0).Microseconds()) / 1000
	outcome := classifyOutcome(summary, cellErr)
	mExploreCellMS.Observe(durMS)

	// Frontier insertion and the frontier event are atomic under x.mu,
	// so each streamed "frontier" event carries the exact frontier the
	// insertion produced — and the last one always equals the final,
	// order-independent frontier.
	x.mu.Lock()
	if summary != nil {
		if added, evicted := x.frontier.Insert(pointFor(c.ID, key, summary)); added {
			x.log.publish(Event{Type: "frontier", Attrs: map[string]any{
				"cell":    c.ID,
				"evicted": evicted,
				"size":    x.frontier.Size(),
				"points":  x.frontier.Points(),
			}})
		}
	}
	cs := &x.cells[c.Index]
	cs.JobID = jobid
	cs.Source = source
	cs.Outcome = outcome
	cs.DurMS = durMS
	x.completed++
	switch outcome {
	case outcomeOK:
		x.ok++
	case outcomeDegraded:
		x.degraded++
	default:
		x.failed++
	}
	switch source {
	case "cache", "persist":
		x.cacheHits++
	case "dedup":
		x.dedupHits++
	}
	if cellErr != nil {
		cs.Error = cellErr.Error()
	}
	x.mu.Unlock()

	switch outcome {
	case outcomeDegraded:
		mExploreCellsDegraded.Inc()
	case outcomeTimeout, outcomeError:
		mExploreCellsFailed.Inc()
		s.st.exploreCellsFailed.Add(1)
	}
	ev := Event{Type: "cell", Stage: c.ID, DurMS: durMS, Attrs: map[string]any{
		"key":     key,
		"source":  source,
		"outcome": outcome,
	}}
	if cellErr != nil {
		ev.Error = cellErr.Error()
	}
	x.log.publish(ev)
}

// retainExplorationLocked registers a study and evicts the oldest
// finished studies beyond the retention cap. Callers hold s.mu.
func (s *Server) retainExplorationLocked(x *exploration) {
	s.explorations[x.id] = x
	s.exploreOrder = append(s.exploreOrder, x.id)
	for len(s.exploreOrder) > s.cfg.MaxExplorations {
		evicted := false
		for i, id := range s.exploreOrder {
			if old, ok := s.explorations[id]; ok && old.terminal() {
				delete(s.explorations, id)
				s.exploreOrder = append(s.exploreOrder[:i], s.exploreOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every retained study is still live; retain them all
		}
	}
}

func (s *Server) lookupExploration(id string) *exploration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.explorations[id]
}

func (s *Server) handleExploreStatus(w http.ResponseWriter, r *http.Request) {
	x := s.lookupExploration(r.PathValue("id"))
	if x == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown exploration"))
		return
	}
	writeJSON(w, http.StatusOK, x.status(true))
}

func (s *Server) handleExploreEvents(w http.ResponseWriter, r *http.Request) {
	x := s.lookupExploration(r.PathValue("id"))
	if x == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown exploration"))
		return
	}
	streamLog(w, r, &x.log)
}

// handleExploreFrontier serves the study's current Pareto frontier —
// canonically sorted and byte-deterministic for a given set of
// completed cells. ?format=csv renders the CSV export.
func (s *Server) handleExploreFrontier(w http.ResponseWriter, r *http.Request) {
	x := s.lookupExploration(r.PathValue("id"))
	if x == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown exploration"))
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := x.frontier.WriteCSV(w); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	pts := x.frontier.Points()
	writeJSON(w, http.StatusOK, &FrontierBody{ID: x.id, Size: len(pts), Points: pts})
}
