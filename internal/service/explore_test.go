package service

// /v1/explore tests: cell/standalone content-key equivalence, grid
// studies end to end over the real engine (cache amplification,
// per-cell failure isolation, degraded-cell injection), frontier
// byte-determinism across servers and cell orderings, SSE frontier
// events, and the one-tier-per-serve cache accounting pin.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xring/internal/explore"
)

// exploreGrid is a 2-floorplan grid whose floorplans reuse the
// quadRequest geometry (variant-perturbed so the two get distinct
// keys). The "copy" policy carries the same switches as "base" under a
// different name: its cells share content keys with base's, so every
// study over this grid measures cache/dedup amplification.
func exploreGrid(budgets ...int) explore.Grid {
	return explore.Grid{
		Floorplans: []explore.Floorplan{
			{Name: "quadA", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 2.75, "y": 2.5}]}`)},
			{Name: "quadB", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 3, "y": 2.5}]}`)},
		},
		Budgets:  budgets,
		Policies: []explore.Policy{{Name: "base"}, {Name: "copy"}},
	}
}

func postExplore(t *testing.T, url string, req *ExploreRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explore: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

func decodeExplore(t *testing.T, data []byte) *ExploreStatus {
	t.Helper()
	var st ExploreStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decode explore status %s: %v", data, err)
	}
	return &st
}

// TestExploreCellKeysMatchStandalone pins the tentpole's cache-sharing
// contract: every grid cell's canonical content key is byte-identical
// to the key of the equivalent standalone /v1/synthesize request —
// including when the standalone request lists nodes in another order
// or spells coordinates with different float literals.
func TestExploreCellKeysMatchStandalone(t *testing.T) {
	g := explore.Grid{
		Floorplans: []explore.Floorplan{
			{Name: "quad", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 2.75, "y": 2.5}]}`)},
		},
		Budgets:    []int{4, 0},
		Objectives: []string{"min-power", "min-il"},
		Policies:   []explore.Policy{{Name: "base"}, {Name: "nocse", NoCSE: true}},
		Share:      []bool{false, true},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Standalone body template: nodes shuffled relative to the floorplan
	// listing, coordinates spelled as 2.50 / 25e-1 / 0.275e1.
	for _, c := range cells {
		req, err := cellRequest(&g, c)
		if err != nil {
			t.Fatalf("cell %s: %v", c.ID, err)
		}
		cellKey := keyOf(t, req)

		opts := fmt.Sprintf(`"shareWavelengths": %t, "noCSE": %t`, c.Share, c.Policy.NoCSE)
		if c.Sweep {
			opts += fmt.Sprintf(`, "sweep": true, "objective": %q`, c.Objective)
		} else {
			opts += fmt.Sprintf(`, "maxWL": %d`, c.Budget)
		}
		standalone := fmt.Sprintf(`{
			"network": {"nodes": [
				{"id": 3, "x": 0.275e1, "y": 2.50},
				{"id": 0, "x": 0.0, "y": 0},
				{"id": 2, "x": 0, "y": 25e-1},
				{"id": 1, "x": 2.500, "y": 0}
			]},
			"options": {%s}
		}`, opts)
		if saKey := keyOfJSON(t, standalone); saKey != cellKey {
			t.Errorf("cell %s: key %s != standalone key %s", c.ID, cellKey, saKey)
		}
	}
	// And the copy policy really does alias base's keys (the grid's
	// cache-amplification premise).
	gv := exploreGrid(4)
	cells, err = gv.Expand()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]string{}
	for _, c := range cells {
		req, err := cellRequest(&gv, c)
		if err != nil {
			t.Fatal(err)
		}
		byID[c.ID] = keyOf(t, req)
	}
	if byID["quadA/wl4/base/fresh"] != byID["quadA/wl4/copy/fresh"] {
		t.Error("identical policies under different names got different keys")
	}
	if byID["quadA/wl4/base/fresh"] == byID["quadB/wl4/base/fresh"] {
		t.Error("different floorplans share a key")
	}
}

func TestExploreEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: exploreGrid(4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d, body %s", resp.StatusCode, data)
	}
	st := decodeExplore(t, data)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Cells != 4 || st.Completed != 4 || st.OK != 4 || st.Failed != 0 {
		t.Fatalf("cells=%d completed=%d ok=%d failed=%d, want 4/4/4/0", st.Cells, st.Completed, st.OK, st.Failed)
	}
	// The copy-policy cells alias the base cells: exactly 2 distinct
	// keys, so 2 of the 4 cells were served without synthesis.
	if st.CacheHits+st.DedupHits != 2 {
		t.Errorf("cacheHits=%d dedupHits=%d, want 2 amplified cells", st.CacheHits, st.DedupHits)
	}
	if len(st.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("no X-Trace-Id on the explore response")
	}

	// Every frontier point's design is fetchable by its content key.
	for _, p := range st.Frontier {
		if body := getDesign(t, ts.URL, p.Key); len(body) == 0 {
			t.Errorf("frontier point %s: empty design", p.CellID)
		}
	}

	// Status and frontier endpoints agree with the sync response.
	hresp, err := http.Get(ts.URL + "/v1/explore/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	again := decodeExplore(t, readAll(t, hresp))
	if again.Completed != 4 || len(again.Frontier) != len(st.Frontier) {
		t.Errorf("status endpoint disagrees: %+v", again)
	}
	fresp, err := http.Get(ts.URL + "/v1/explore/" + st.ID + "/frontier")
	if err != nil {
		t.Fatal(err)
	}
	var fb FrontierBody
	if err := json.Unmarshal(readAll(t, fresp), &fb); err != nil {
		t.Fatal(err)
	}
	if fb.ID != st.ID || fb.Size != len(st.Frontier) {
		t.Errorf("frontier body = %+v", fb)
	}
	if got := s.Stats(); got.ExploreStudies != 1 || got.ExploreCells != 4 || got.ExploreCellsFailed != 0 {
		t.Errorf("stats = %+v", got)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, err %v", resp.StatusCode, err)
	}
	return data
}

// TestExploreIsolatesFailingCells: one infeasible floorplan (the exact
// square admits no crossing-free ring) fails its cells; the study
// still completes and the healthy cells land on the frontier.
func TestExploreIsolatesFailingCells(t *testing.T) {
	g := explore.Grid{
		Floorplans: []explore.Floorplan{
			{Name: "good", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 2.75, "y": 2.5}]}`)},
			{Name: "square", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 2.5, "y": 2.5}]}`)},
		},
		Budgets: []int{4},
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: g})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d, body %s", resp.StatusCode, data)
	}
	st := decodeExplore(t, data)
	if st.State != StateDone || st.Completed != 2 {
		t.Fatalf("state=%s completed=%d, want done/2", st.State, st.Completed)
	}
	if st.OK != 1 || st.Failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 1/1", st.OK, st.Failed)
	}
	for _, cs := range st.CellStatuses {
		switch {
		case strings.HasPrefix(cs.ID, "square/") && (cs.Outcome != outcomeError || cs.Error == ""):
			t.Errorf("infeasible cell %s: outcome=%s error=%q", cs.ID, cs.Outcome, cs.Error)
		case strings.HasPrefix(cs.ID, "good/") && cs.Outcome != outcomeOK:
			t.Errorf("healthy cell %s: outcome=%s (%s)", cs.ID, cs.Outcome, cs.Error)
		}
	}
	if len(st.Frontier) != 1 || !strings.HasPrefix(st.Frontier[0].CellID, "good/") {
		t.Errorf("frontier = %+v, want the one healthy cell", st.Frontier)
	}
}

// TestExploreDegradedCellJoinsFrontier: an injected solver-budget fault
// degrades one cell (heuristic fallback); the study reports it degraded
// and its point carries the flag.
func TestExploreDegradedCellJoinsFrontier(t *testing.T) {
	g := explore.Grid{
		Floorplans: []explore.Floorplan{
			{Name: "quad", Network: json.RawMessage(`{"nodes": [
				{"id": 0, "x": 0, "y": 0}, {"id": 1, "x": 2.5, "y": 0},
				{"id": 2, "x": 0, "y": 2.5}, {"id": 3, "x": 2.875, "y": 2.5}]}`)},
		},
		Budgets: []int{4},
	}
	_, ts := newTestServer(t, Config{Workers: 1, FaultSpec: "core.ring=error:budget,times=1"})
	resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: g})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d, body %s", resp.StatusCode, data)
	}
	st := decodeExplore(t, data)
	if st.State != StateDone || st.Degraded != 1 || st.Failed != 0 {
		t.Fatalf("state=%s degraded=%d failed=%d, want done/1/0", st.State, st.Degraded, st.Failed)
	}
	if len(st.Frontier) != 1 || !st.Frontier[0].Degraded {
		t.Errorf("frontier = %+v, want one degraded point", st.Frontier)
	}
}

// TestExploreFrontierDeterministic runs one grid on two fresh servers
// with different cell concurrency (hence different completion
// interleavings) and requires byte-identical frontier CSV.
func TestExploreFrontierDeterministic(t *testing.T) {
	run := func(conc int) ([]byte, string) {
		_, ts := newTestServer(t, Config{Workers: 2, ExploreCellConcurrency: conc})
		resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: exploreGrid(4, 3)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explore: status %d, body %s", resp.StatusCode, data)
		}
		st := decodeExplore(t, data)
		fresp, err := http.Get(ts.URL + "/v1/explore/" + st.ID + "/frontier?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		if ct := fresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("frontier CSV content type = %q", ct)
		}
		return readAll(t, fresp), st.ID
	}
	csv1, id1 := run(1)
	csv2, id2 := run(4)
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("frontier CSV differs across runs:\n%s\nvs\n%s", csv1, csv2)
	}
	// Same grid, same cell keys: the study's content digest matches too
	// (only the admission sequence number differs).
	if d1, d2 := id1[strings.Index(id1, "-"):], id2[strings.Index(id2, "-"):]; d1 != d2 {
		t.Errorf("study content digests differ: %s vs %s", id1, id2)
	}
}

// TestExploreEventsStream replays a finished study's SSE stream and
// checks the event grammar — and that the last frontier event carries
// the final frontier.
func TestExploreEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: exploreGrid(4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d, body %s", resp.StatusCode, data)
	}
	st := decodeExplore(t, data)

	eresp, err := http.Get(ts.URL + "/v1/explore/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", eresp.StatusCode)
	}
	var types []string
	cellEvents := 0
	var lastFrontierPoints int
	sc := bufio.NewScanner(eresp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.TraceID != st.TraceID {
			t.Errorf("event %s has trace %q, study has %q", ev.Type, ev.TraceID, st.TraceID)
		}
		types = append(types, ev.Type)
		switch ev.Type {
		case "cell":
			cellEvents++
			if ev.Attrs["source"] == nil || ev.Attrs["outcome"] == nil {
				t.Errorf("cell event without source/outcome: %+v", ev)
			}
		case "frontier":
			pts, ok := ev.Attrs["points"].([]any)
			if !ok {
				t.Fatalf("frontier event without points: %+v", ev)
			}
			lastFrontierPoints = len(pts)
		}
		if ev.Type == "done" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Fatalf("event stream %v, want queued ... done", types)
	}
	if cellEvents != st.Cells {
		t.Errorf("%d cell events for %d cells", cellEvents, st.Cells)
	}
	if lastFrontierPoints != len(st.Frontier) {
		t.Errorf("last frontier event carried %d points, final frontier has %d", lastFrontierPoints, len(st.Frontier))
	}
}

func TestExploreAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postExplore(t, ts.URL, &ExploreRequest{Grid: exploreGrid(4), Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async explore: status %d, body %s", resp.StatusCode, data)
	}
	st := decodeExplore(t, data)
	if loc := resp.Header.Get("Location"); loc != "/v1/explore/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		hresp, err := http.Get(ts.URL + "/v1/explore/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		cur := decodeExplore(t, readAll(t, hresp))
		if cur.State == StateDone {
			if cur.Completed != cur.Cells {
				t.Errorf("done with %d/%d cells", cur.Completed, cur.Cells)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("study never finished: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExploreRejectsBadGrids(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]string{
		"not json":      `{not json`,
		"unknown field": `{"grid": {"floorplans": [], "budgets": [4]}, "bogus": 1}`,
		"no floorplans": `{"grid": {"budgets": [4]}}`,
		"bad network":   `{"grid": {"floorplans": [{"network": {"nope": 1}}], "budgets": [4]}}`,
		"bad budget":    `{"grid": {"floorplans": [{"network": {"standard": 8}}], "budgets": [99]}}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/explore", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/explore/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown study: status %d, want 404", resp.StatusCode)
	}
}

// TestCacheServeCountsOneTier pins the cache-accounting fix: a serve
// from the persist tier counts as exactly one persist hit (previously
// it also incremented the memory-tier counter), and a memory serve
// counts as exactly one cache hit.
func TestCacheServeCountsOneTier(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp, data := postSynth(t, ts1.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status %d, body %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key

	// Memory-tier serve on the same server.
	getDesign(t, ts1.URL, key)
	if st := s1.Stats(); st.CacheHits != 1 || st.PersistHits != 0 {
		t.Errorf("memory serve: cacheHits=%d persistHits=%d, want 1/0", st.CacheHits, st.PersistHits)
	}
	drainServer(t, s1)

	// Persist-tier serve: memory cache disabled, so the design comes off
	// disk — one persist hit, zero memory hits.
	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheEntries: -1, PersistDir: dir, Synth: noSynth})
	getDesign(t, ts2.URL, key)
	if st := s2.Stats(); st.PersistHits != 1 || st.CacheHits != 0 {
		t.Errorf("persist serve: persistHits=%d cacheHits=%d, want 1/0", st.PersistHits, st.CacheHits)
	}
}
