package service

// Disk tier of the result cache: every completed synthesis is spilled
// to PersistDir as one checksummed JSON file named by its content key,
// so a restarted daemon serves warm designs byte-identical to the run
// that produced them (ROADMAP: "persistent cache backend").
//
// Crash safety: entries are written to a temp file in the same
// directory, fsynced, renamed over the final name, and the directory
// is fsynced — a kill -9 at any instant leaves either the old state or
// the complete new entry, never a torn file. Startup recovery scans
// the directory, silently removes temp leftovers and every entry that
// fails validation (unparsable JSON, checksum mismatch, key/filename
// mismatch, stale canonical-key schema, or a designio format version
// this build does not write), and rebuilds the in-memory LRU from the
// survivors, oldest first.
//
// The design payload is stored as a base64 []byte field — NOT as an
// embedded json.RawMessage — because designio.Save returns indented
// JSON and re-marshaling a RawMessage would compact it, silently
// breaking the byte-identity contract the e2e tests pin.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"xring/internal/designio"
	"xring/internal/resilience"
)

// persistPayloadVersion versions the envelope payload shape —
// independently of the key schema, which versions request addressing.
// Bump it whenever Summary gains a field, so recovery discards entries
// whose stored summaries would deserialize with zero values for data
// this build relies on.
// v2: Summary carries mrrs (the exploration frontier's MRR objective).
const persistPayloadVersion = 2

// persistEntry is the on-disk envelope of one cached result.
type persistEntry struct {
	// Schema is the canonical-key schema the entry was written under; a
	// mismatch means the key no longer addresses the same request space.
	Schema string `json:"schema"`
	// Payload is persistPayloadVersion at write time; entries written
	// before it existed deserialize as 0 and are discarded.
	Payload int `json:"payload"`
	// DesignVersion is designio.FormatVersion at write time.
	DesignVersion int      `json:"designVersion"`
	Key           string   `json:"key"`
	JobID         string   `json:"jobID"`
	Summary       *Summary `json:"summary"`
	// Design is the exact designio.Save payload (base64 in JSON).
	Design []byte `json:"design"`
	// Checksum is the SHA-256 of Design, hex-encoded: the corruption
	// check for entries that survived the atomic-write protocol but not
	// the disk underneath it.
	Checksum string `json:"checksum"`
}

// keyFile maps a content key to its filename (and back). Keys look
// like "sha256:<64 hex>"; the file drops the prefix.
var keyFileRe = regexp.MustCompile(`^[0-9a-f]{64}\.json$`)

func fileForKey(key string) (string, bool) {
	hexpart, ok := strings.CutPrefix(key, "sha256:")
	if !ok || !keyFileRe.MatchString(hexpart+".json") {
		return "", false
	}
	return hexpart + ".json", true
}

func keyForFile(name string) (string, bool) {
	if !keyFileRe.MatchString(name) {
		return "", false
	}
	return "sha256:" + strings.TrimSuffix(name, ".json"), true
}

// persistStore is the disk tier. All methods are safe for concurrent
// use; the mutex serializes writes and evictions (reads only take it
// for the bookkeeping map).
type persistStore struct {
	dir string
	cap int
	inj *resilience.Injector
	st  *stats // server's always-on counters (may be nil in direct tests)

	mu   sync.Mutex
	seq  int64
	ages map[string]int64 // key -> logical write age, for eviction
}

// newPersistStore opens (creating if needed) the disk tier rooted at
// dir and runs crash recovery. It returns the store plus the surviving
// entries oldest-first, ready to replay into the memory LRU.
func newPersistStore(dir string, capacity int, inj *resilience.Injector, st *stats) (*persistStore, []*cached, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: persist dir: %w", err)
	}
	p := &persistStore{dir: dir, cap: capacity, inj: inj, st: st, ages: map[string]int64{}}
	entries, err := p.recover()
	if err != nil {
		return nil, nil, err
	}
	return p, entries, nil
}

// recover scans the directory: temp leftovers and invalid entries are
// removed, valid ones returned oldest-first (by file mtime).
func (p *persistStore) recover() ([]*cached, error) {
	names, err := os.ReadDir(p.dir)
	if err != nil {
		return nil, fmt.Errorf("service: persist recovery: %w", err)
	}
	type aged struct {
		c   *cached
		key string
		mod int64
	}
	var out []aged
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		path := filepath.Join(p.dir, name)
		key, ok := keyForFile(name)
		if !ok {
			// Temp files from a crashed write, or foreign junk: a temp
			// leftover is expected debris, anything else is discarded
			// noisily enough for the counter but silently for requests.
			_ = os.Remove(path)
			p.discarded()
			continue
		}
		c, ok := p.load(path, key)
		if !ok {
			_ = os.Remove(path)
			p.discarded()
			continue
		}
		info, ierr := de.Info()
		mod := int64(0)
		if ierr == nil {
			mod = info.ModTime().UnixNano()
		}
		out = append(out, aged{c: c, key: key, mod: mod})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].mod != out[j].mod {
			return out[i].mod < out[j].mod
		}
		return out[i].key < out[j].key // stable tie-break for equal mtimes
	})
	entries := make([]*cached, len(out))
	for i, a := range out {
		p.seq++
		p.ages[a.key] = p.seq
		entries[i] = a.c
		mPersistRecovered.Inc()
		if p.st != nil {
			p.st.persistRecovered.Add(1)
		}
	}
	return entries, nil
}

// discarded counts one corrupt/stale/foreign entry removed from disk.
func (p *persistStore) discarded() {
	mPersistDiscarded.Inc()
	if p.st != nil {
		p.st.persistDiscarded.Add(1)
	}
}

// Entry-rejection verdicts from decodeEntry. The split matters to the
// cluster peer-fill metrics: a stale entry (written by a different key
// schema, payload or designio version) is an expected consequence of a
// mixed-version fleet, while a corrupt one (checksum, key mismatch,
// unparsable JSON) means bytes were damaged in storage or transit.
const (
	rejectStale   = "stale"
	rejectCorrupt = "corrupt"
)

// decodeEntry validates one persist envelope — read from disk or
// fetched from a cluster peer; the validation is identical, so a peer
// can never smuggle in an entry that local crash recovery would have
// discarded. It returns the cached result and "" on success, or nil
// and a rejection verdict.
func decodeEntry(data []byte, wantKey string) (*cached, string) {
	var e persistEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, rejectCorrupt
	}
	if e.Schema != keySchema || e.Payload != persistPayloadVersion || e.DesignVersion != designio.FormatVersion {
		return nil, rejectStale
	}
	if e.Key != wantKey || e.Summary == nil || len(e.Design) == 0 {
		return nil, rejectCorrupt
	}
	sum := sha256.Sum256(e.Design)
	if e.Checksum != hex.EncodeToString(sum[:]) {
		return nil, rejectCorrupt
	}
	// The checksum guards the envelope; the version stamp inside the
	// payload must agree too (a forged or half-migrated entry fails here).
	if v, err := designio.PayloadVersion(e.Design); err != nil || v != designio.FormatVersion {
		return nil, rejectCorrupt
	}
	return &cached{key: e.Key, jobID: e.JobID, summary: e.Summary, design: e.Design}, ""
}

// encodeEntry serializes one cached result into the persist envelope —
// the disk-tier format, also served verbatim to cluster peers at
// GET /v1/cluster/entry/{key}.
func encodeEntry(c *cached) ([]byte, error) {
	sum := sha256.Sum256(c.design)
	return json.Marshal(&persistEntry{
		Schema:        keySchema,
		Payload:       persistPayloadVersion,
		DesignVersion: designio.FormatVersion,
		Key:           c.key,
		JobID:         c.jobID,
		Summary:       c.summary,
		Design:        c.design,
		Checksum:      hex.EncodeToString(sum[:]),
	})
}

// load reads and validates one entry file. Invalid in any way -> not ok.
func (p *persistStore) load(path, wantKey string) (*cached, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	c, reject := decodeEntry(data, wantKey)
	return c, reject == ""
}

// write spills one completed result to disk atomically: temp file in
// the same directory, fsync, rename, directory fsync. Past the cap the
// oldest entries are deleted first.
func (p *persistStore) write(c *cached) error {
	if err := p.inj.Fire("service.cache.write"); err != nil {
		return err
	}
	name, ok := fileForKey(c.key)
	if !ok {
		return fmt.Errorf("service: unpersistable key %q", c.key)
	}
	data, err := encodeEntry(c)
	if err != nil {
		return err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	tmp, err := os.CreateTemp(p.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(p.dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(p.dir)

	p.seq++
	p.ages[c.key] = p.seq
	for p.cap > 0 && len(p.ages) > p.cap {
		oldKey, oldAge := "", int64(0)
		for k, a := range p.ages {
			if oldKey == "" || a < oldAge {
				oldKey, oldAge = k, a
			}
		}
		delete(p.ages, oldKey)
		if n, ok := fileForKey(oldKey); ok {
			_ = os.Remove(filepath.Join(p.dir, n))
		}
		mPersistEvicts.Inc()
	}
	mPersistWrites.Inc()
	return nil
}

// read fetches one entry by key, for memory-tier misses. A corrupt
// entry found on the read path is removed, same policy as recovery.
func (p *persistStore) read(key string) (*cached, bool) {
	if err := p.inj.Fire("service.cache.read"); err != nil {
		return nil, false
	}
	name, ok := fileForKey(key)
	if !ok {
		return nil, false // also rejects traversal attempts in user-supplied keys
	}
	path := filepath.Join(p.dir, name)
	c, ok := p.load(path, key)
	if !ok {
		if _, err := os.Stat(path); err == nil {
			_ = os.Remove(path)
			p.discarded()
		}
		return nil, false
	}
	return c, true
}

// syncDir fsyncs a directory so a completed rename survives power
// loss. Errors are swallowed: some filesystems reject directory fsync,
// and the entry checksum catches whatever slips through.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
