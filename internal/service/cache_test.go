package service

import (
	"fmt"
	"testing"
)

func entry(key string) *cached {
	return &cached{key: key, jobID: "j-" + key, design: []byte(key)}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(entry(fmt.Sprintf("k%d", i)))
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put(entry("k3"))
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}
	if n := c.len(); n != 3 {
		t.Errorf("len = %d, want 3", n)
	}
}

func TestResultCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.put(entry("k"))
	updated := &cached{key: "k", jobID: "j2", design: []byte("v2")}
	c.put(updated)
	if n := c.len(); n != 1 {
		t.Fatalf("len = %d after re-put, want 1", n)
	}
	got, ok := c.get("k")
	if !ok || string(got.design) != "v2" {
		t.Errorf("get after re-put = %+v, want updated entry", got)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put(entry("k"))
	if _, ok := c.get("k"); ok {
		t.Error("disabled cache stored an entry")
	}
	if n := c.len(); n != 0 {
		t.Errorf("len = %d, want 0", n)
	}
}
