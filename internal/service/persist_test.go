package service

// Persistent-cache tier tests: restart byte-identity, crash recovery
// with corrupt/foreign/stale entries, disk-tier promotion on memory
// misses, traversal-proof key handling, bounded on-disk growth, and
// write-fault injection.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xring/internal/core"
	"xring/internal/designio"
	"xring/internal/resilience"
)

// drainServer shuts a directly-built server down with a test deadline.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func getDesign(t *testing.T, base, key string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/designs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET design %s: status %d, err %v", key, resp.StatusCode, err)
	}
	return data
}

// noSynth fails any job that reaches the engine — for asserting that a
// request was served entirely from cache.
func noSynth(ctx context.Context, r *resolved) (*core.Result, error) {
	return nil, errors.New("engine must not run")
}

func TestPersistSurvivesRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()

	s1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp, data := postSynth(t, ts1.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status %d, body %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key
	want := getDesign(t, ts1.URL, key)
	if s1.Stats().PersistRecovered != 0 {
		t.Errorf("fresh dir recovered %d entries", s1.Stats().PersistRecovered)
	}
	drainServer(t, s1)

	// A second daemon over the same directory serves the design without
	// ever running the engine — byte-identical to the first run.
	s2, ts2 := newTestServer(t, Config{Workers: 1, PersistDir: dir, Synth: noSynth})
	if got := s2.Stats().PersistRecovered; got != 1 {
		t.Errorf("PersistRecovered = %d, want 1", got)
	}
	if got := getDesign(t, ts2.URL, key); !bytes.Equal(got, want) {
		t.Error("design bytes differ across restart")
	}
	resp2, data2 := postSynth(t, ts2.URL, quadRequest(0))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted synthesize: status %d, body %s", resp2.StatusCode, data2)
	}
	if r2 := decodeResponse(t, data2); r2.Source != "cache" || r2.Key != key {
		t.Errorf("restarted request source=%q key=%q, want cache hit on %q", r2.Source, r2.Key, key)
	}
}

func TestPersistRecoveryDiscardsCorruptAndForeign(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp, data := postSynth(t, ts1.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status %d, body %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key
	want := getDesign(t, ts1.URL, key)
	drainServer(t, s1)

	// Sabotage the directory: a bit-flipped copy of the valid entry
	// under a different (well-formed) name, a truncated entry, a torn
	// temp file, and a schema-stale entry.
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly 1 entry on disk, got %d (err %v)", len(files), err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	fakeName := hex.EncodeToString(bytes.Repeat([]byte{0xab}, 32)) + ".json"
	if err := os.WriteFile(filepath.Join(dir, fakeName), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	truncName := hex.EncodeToString(bytes.Repeat([]byte{0xcd}, 32)) + ".json"
	if err := os.WriteFile(filepath.Join(dir, truncName), valid[:len(valid)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "entry-12345.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleKeyHex := hex.EncodeToString(bytes.Repeat([]byte{0xef}, 32))
	stale := persistEntry{Schema: "xring-service-key-v1", DesignVersion: 1,
		Key: "sha256:" + staleKeyHex, JobID: "j0", Summary: &Summary{}, Design: []byte("x")}
	sum := sha256.Sum256(stale.Design)
	stale.Checksum = hex.EncodeToString(sum[:])
	staleData, err := json.Marshal(&stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, staleKeyHex+".json"), staleData, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1, PersistDir: dir, Synth: noSynth})
	st := s2.Stats()
	if st.PersistRecovered != 1 || st.PersistDiscarded != 4 {
		t.Errorf("recovered=%d discarded=%d, want 1 recovered, 4 discarded", st.PersistRecovered, st.PersistDiscarded)
	}
	if got := getDesign(t, ts2.URL, key); !bytes.Equal(got, want) {
		t.Error("surviving entry differs from pre-crash bytes")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Errorf("%d files left on disk after recovery, want 1", len(left))
	}
}

func TestPersistDiskHitPromotesOnMemoryMiss(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp, data := postSynth(t, ts1.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status %d, body %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key
	want := getDesign(t, ts1.URL, key)
	drainServer(t, s1)

	// Memory cache disabled: every lookup must fall through to disk.
	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheEntries: -1, PersistDir: dir, Synth: noSynth})
	if got := getDesign(t, ts2.URL, key); !bytes.Equal(got, want) {
		t.Error("disk-tier design differs")
	}
	if st := s2.Stats(); st.PersistHits == 0 {
		t.Errorf("PersistHits = %d, want > 0", st.PersistHits)
	}
}

func TestPersistRejectsTraversalKeys(t *testing.T) {
	dir := t.TempDir()
	p, _, err := newPersistStore(dir, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"sha256:../../../../etc/passwd",
		"sha256:..%2f..%2fetc%2fpasswd",
		"../" + strings.Repeat("a", 64),
		"sha256:" + strings.Repeat("A", 64), // uppercase hex is not canonical
		"sha256:" + strings.Repeat("a", 63),
		"",
	} {
		if _, ok := p.read(key); ok {
			t.Errorf("read(%q) succeeded", key)
		}
		if err := p.write(&cached{key: key, summary: &Summary{}, design: []byte("x")}); err == nil {
			t.Errorf("write(%q) succeeded", key)
		}
	}

	// Over HTTP: a hostile path value must 404, not touch the disk.
	_, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir})
	resp, err := http.Get(ts.URL + "/v1/designs/sha256:%2e%2e%2fescape")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("traversal key: status %d, want 404", resp.StatusCode)
	}
}

func TestPersistEvictsOldestPastCap(t *testing.T) {
	dir := t.TempDir()
	p, _, err := newPersistStore(dir, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A minimal payload that passes the embedded version check.
	design := []byte(fmt.Sprintf(`{"version": %d}`, designio.FormatVersion))
	keys := make([]string, 3)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("entry-%d", i)))
		keys[i] = "sha256:" + hex.EncodeToString(sum[:])
		if err := p.write(&cached{key: keys[i], jobID: "j", summary: &Summary{}, design: design}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.read(keys[0]); ok {
		t.Error("oldest entry survived past the cap")
	}
	for _, k := range keys[1:] {
		if _, ok := p.read(k); !ok {
			t.Errorf("entry %s evicted although within cap", k)
		}
	}
}

func TestPersistWriteFaultLeavesRequestIntact(t *testing.T) {
	dir := t.TempDir()
	inj := resilience.NewInjector(1, resilience.Rule{Point: "service.cache.write", Err: errors.New("disk on fire")})
	_, ts := newTestServer(t, Config{Workers: 1, PersistDir: dir, Injector: inj})
	resp, data := postSynth(t, ts.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize with failing persistence: status %d, body %s", resp.StatusCode, data)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("%d files on disk despite injected write fault", len(files))
	}
}
