package service

// Service-boundary tests of the /v1/whatif fault-replay surface:
// request validation, degraded-provenance propagation (headers on the
// design endpoint, fields on replay statuses), and content-key
// separation of fault-tolerant requests.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"xring/internal/faults"
	"xring/internal/milp"
	"xring/internal/resilience"
)

func postWhatif(t *testing.T, url string, req *WhatifRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/whatif: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func decodeWhatif(t *testing.T, data []byte) *WhatifStatus {
	t.Helper()
	var st WhatifStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decode whatif status %s: %v", data, err)
	}
	return &st
}

func TestWhatifRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postSynth(t, ts.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key

	intp := func(v int) *int { return &v }
	cases := map[string]struct {
		req  *WhatifRequest
		want int
	}{
		"unknown key": {&WhatifRequest{Key: "sha256:nope"}, http.StatusNotFound},
		"unknown kind": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Kinds: []string{"gremlin"}}}, http.StatusBadRequest},
		"unknown mode": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Mode: "guess"}}, http.StatusBadRequest},
		"k too large": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{K: 9999}}, http.StatusBadRequest},
		"inject needs element": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "mrr"}}}}, http.StatusBadRequest},
		"inject both elements": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "mrr", WG: intp(0), SC: intp(0)}}}}, http.StatusBadRequest},
		"inject wg range": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "segment", WG: intp(99), Edge: intp(0)}}}}, http.StatusBadRequest},
		"inject missing edge": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "segment", WG: intp(0)}}}}, http.StatusBadRequest},
		"inject unknown channel": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "mrr", WG: intp(0), Src: 0, Dst: 0}}}}, http.StatusBadRequest},
		"inject bad role": {&WhatifRequest{Key: key,
			Faults: WhatifFaults{Inject: []FaultSpec{{Kind: "mrr", WG: intp(0), Src: 0, Dst: 1, Role: "mid"}}}}, http.StatusBadRequest},
	}
	for name, tc := range cases {
		resp, data := postWhatif(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (body %s)", name, resp.StatusCode, tc.want, data)
		}
	}

	// Combinatorial blowups are rejected from the binomial count alone,
	// before any scenario is materialized: probe the real universe size,
	// pick the smallest k whose C(n, k) exceeds the cap, and expect a
	// 400 that points at sample mode.
	resp, data = postWhatif(t, ts.URL, &WhatifRequest{Key: key})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("universe probe: %d %s", resp.StatusCode, data)
	}
	n := decodeWhatif(t, data).Universe
	blowK := 2
	for blowK < n && faults.Combinations(n, blowK, maxWhatifScenarios) <= maxWhatifScenarios {
		blowK++
	}
	if faults.Combinations(n, blowK, maxWhatifScenarios) > maxWhatifScenarios {
		resp, data = postWhatif(t, ts.URL, &WhatifRequest{Key: key,
			Faults: WhatifFaults{K: blowK}})
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "sample") {
			t.Errorf("k=%d enumerate: status %d body %s, want 400 suggesting sample mode",
				blowK, resp.StatusCode, data)
		}
	}

	// Unknown replay ids 404 on both the status and event endpoints.
	for _, path := range []string{"/v1/whatif/nope", "/v1/whatif/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestWhatifReplaysCachedDesign exercises the synchronous happy path
// over raw HTTP: an exhaustive single-MRR universe on an unprotected
// design loses exactly one signal per scenario.
func TestWhatifReplaysCachedDesign(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postSynth(t, ts.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key

	resp, data = postWhatif(t, ts.URL, &WhatifRequest{
		Key: key, Faults: WhatifFaults{Kinds: []string{"mrr"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif: %d %s", resp.StatusCode, data)
	}
	st := decodeWhatif(t, data)
	if st.State != StateDone || st.Report == nil {
		t.Fatalf("status = %+v, want done with report", st)
	}
	if st.Report.FullSetSurvives || st.Report.MaxLost != 1 {
		t.Errorf("unprotected design report: %+v, want maxLost 1", st.Report)
	}
	if st.Degraded {
		t.Error("healthy design marked degraded")
	}
	if got := s.Stats(); got.WhatifRuns != 1 || got.WhatifScenarios != int64(st.Scenarios) {
		t.Errorf("stats = runs %d scenarios %d, want 1/%d", got.WhatifRuns, got.WhatifScenarios, st.Scenarios)
	}
}

// TestDegradedProvenancePropagates pins satellite provenance plumbing:
// the design endpoint carries machine-readable degraded headers, and a
// whatif over that design repeats the verdict in its status.
func TestDegradedProvenancePropagates(t *testing.T) {
	inj := resilience.NewInjector(1, resilience.Rule{Point: "core.ring", Err: milp.ErrBudget})
	_, ts := newTestServer(t, Config{Workers: 1, Injector: inj})

	resp, data := postSynth(t, ts.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded synthesize: %d %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key

	dresp, err := http.Get(ts.URL + "/v1/designs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if got := dresp.Header.Get("X-Design-Degraded"); got != "true" {
		t.Errorf("X-Design-Degraded = %q, want true", got)
	}
	if got := dresp.Header.Get("X-Design-Degraded-Reason"); got != "solver-budget-exhausted" {
		t.Errorf("X-Design-Degraded-Reason = %q, want solver-budget-exhausted", got)
	}

	resp, data = postWhatif(t, ts.URL, &WhatifRequest{
		Key: key, Faults: WhatifFaults{Kinds: []string{"mrr"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif: %d %s", resp.StatusCode, data)
	}
	st := decodeWhatif(t, data)
	if !st.Degraded || !strings.Contains(st.DegradedReason, "budget") {
		t.Errorf("whatif status degraded=%v reason=%q, want the budget provenance", st.Degraded, st.DegradedReason)
	}
}

// TestHealthyDesignHasNoDegradedHeaders is the negative of the above.
func TestHealthyDesignHasNoDegradedHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, data := postSynth(t, ts.URL, quadRequest(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d %s", resp.StatusCode, data)
	}
	key := decodeResponse(t, data).Key
	dresp, err := http.Get(ts.URL + "/v1/designs/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.Header.Get("X-Design-Degraded") != "" || dresp.Header.Get("X-Design-Degraded-Reason") != "" {
		t.Errorf("healthy design carries degraded headers: %v", dresp.Header)
	}
}

// TestFaultToleranceSeparatesContentKeys: the k=1 option must flow into
// the canonical key, or protected and unprotected results would collide
// in the cache.
func TestFaultToleranceSeparatesContentKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	plain := &Request{Network: NetworkSpec{Standard: 8}, Options: OptionsSpec{MaxWL: 8}}
	resp, data := postSynth(t, ts.URL, plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: %d %s", resp.StatusCode, data)
	}
	plainKey := decodeResponse(t, data).Key

	ft := &Request{Network: NetworkSpec{Standard: 8},
		Options: OptionsSpec{MaxWL: 8, FaultTolerance: &FaultToleranceSpec{K: 1}}}
	resp, data = postSynth(t, ts.URL, ft)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault-tolerant synthesize: %d %s", resp.StatusCode, data)
	}
	ftKey := decodeResponse(t, data).Key

	if plainKey == ftKey {
		t.Fatalf("fault_tolerance did not change the content key: %s", plainKey)
	}

	// Out-of-range k is rejected at validation.
	bad := &Request{Network: NetworkSpec{Standard: 8},
		Options: OptionsSpec{MaxWL: 8, FaultTolerance: &FaultToleranceSpec{K: 7}}}
	if resp, _ := postSynth(t, ts.URL, bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=7 accepted: status %d", resp.StatusCode)
	}
}
