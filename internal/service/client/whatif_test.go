package client

import (
	"context"
	"errors"
	"testing"

	"xring/internal/service"
)

// faultTolerantRequest asks for k=1 spare protection, so an exhaustive
// single-MRR replay of the result must lose nothing. The spare layer
// needs wavelength and die headroom the 4-node testRequest cannot
// offer, so it uses the standard 8-node floorplan.
func faultTolerantRequest() *service.Request {
	return &service.Request{
		Network: service.NetworkSpec{Standard: 8},
		Options: service.OptionsSpec{
			MaxWL:          8,
			FaultTolerance: &service.FaultToleranceSpec{K: 1},
		},
	}
}

func TestClientWhatifRoundTrip(t *testing.T) {
	c := newClientServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	resp, err := c.Synthesize(ctx, faultTolerantRequest())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}

	st, err := c.Whatif(ctx, &service.WhatifRequest{
		Key:    resp.Key,
		Faults: service.WhatifFaults{Kinds: []string{"mrr"}},
	})
	if err != nil {
		t.Fatalf("whatif: %v", err)
	}
	if st.State != service.StateDone {
		t.Fatalf("state = %s, want done (error: %s)", st.State, st.Error)
	}
	if st.Report == nil {
		t.Fatal("sync whatif returned no report")
	}
	if !st.Report.FullSetSurvives || st.Report.MaxLost != 0 {
		t.Errorf("k=1 design lost signals under single-MRR replay: %+v", st.Report)
	}
	if st.Scenarios != st.Universe || st.Completed != st.Scenarios {
		t.Errorf("exhaustive replay incomplete: %d/%d of universe %d",
			st.Completed, st.Scenarios, st.Universe)
	}

	again, err := c.WhatifStatus(ctx, st.ID)
	if err != nil {
		t.Fatalf("whatif status: %v", err)
	}
	if again.State != service.StateDone || again.Completed != st.Completed {
		t.Errorf("status disagrees with sync response: %+v", again)
	}

	var types []string
	faultEvents := 0
	if err := c.WhatifEvents(ctx, st.ID, func(ev service.Event) {
		types = append(types, ev.Type)
		if ev.Type == "fault" {
			faultEvents++
		}
	}); err != nil {
		t.Fatalf("whatif events: %v", err)
	}
	if len(types) == 0 || types[0] != "queued" || types[len(types)-1] != "done" {
		t.Errorf("event stream %v, want queued ... done", types)
	}
	if faultEvents != st.Scenarios {
		t.Errorf("%d fault events for %d scenarios", faultEvents, st.Scenarios)
	}
}

func TestClientWhatifAsync(t *testing.T) {
	c := newClientServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	resp, err := c.Synthesize(ctx, testRequest())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	st, err := c.Whatif(ctx, &service.WhatifRequest{
		Key:    resp.Key,
		Faults: service.WhatifFaults{Inject: []service.FaultSpec{{Kind: "segment", WG: intp(0), Edge: intp(0)}}},
		Async:  true,
	})
	if err != nil {
		t.Fatalf("async whatif: %v", err)
	}
	// Streaming the events waits out the replay: the stream ends at the
	// terminal event, after which the status must carry the report.
	if err := c.WhatifEvents(ctx, st.ID, func(service.Event) {}); err != nil {
		t.Fatalf("whatif events: %v", err)
	}
	final, err := c.WhatifStatus(ctx, st.ID)
	if err != nil {
		t.Fatalf("whatif status: %v", err)
	}
	if final.State != service.StateDone || final.Report == nil {
		t.Fatalf("async replay not done after stream end: %+v", final)
	}
	if final.Universe != 0 || final.Scenarios != 1 {
		t.Errorf("inject mode universe/scenarios = %d/%d, want 0/1", final.Universe, final.Scenarios)
	}
}

func TestClientWhatifNotFound(t *testing.T) {
	c := newClientServer(t, service.Config{Workers: 1})
	ctx := context.Background()
	cases := map[string]func() error{
		"unknown design key": func() error {
			_, err := c.Whatif(ctx, &service.WhatifRequest{Key: "sha256:nope"})
			return err
		},
		"unknown replay id": func() error { _, err := c.WhatifStatus(ctx, "nope"); return err },
		"unknown replay stream": func() error {
			return c.WhatifEvents(ctx, "nope", func(service.Event) {})
		},
	}
	for name, call := range cases {
		err := call()
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("%s: error %v is not ErrNotFound", name, err)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 404 {
			t.Errorf("%s: error %v is not a 404 APIError", name, err)
		}
	}
}
