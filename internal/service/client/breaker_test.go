package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("failure %d: acquire: %v", i, err)
		}
		b.report(false)
	}
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-threshold acquire err = %v, want ErrCircuitOpen", err)
	}

	// Cooldown passes: exactly one probe is admitted at a time.
	clock = clock.Add(time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("probe acquire: %v", err)
	}
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe err = %v, want ErrCircuitOpen", err)
	}

	// A failed probe re-opens for a full cooldown.
	b.report(false)
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("circuit closed after failed probe")
	}
	clock = clock.Add(time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("second probe acquire: %v", err)
	}
	b.report(true)

	// Closed again: successes flow, and the failure count restarted.
	for i := 0; i < 2; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("closed acquire: %v", err)
		}
		b.report(false)
	}
	if err := b.acquire(); err != nil {
		t.Errorf("2 failures after recovery tripped a threshold-3 breaker: %v", err)
	}
	b.report(true)
}

func TestBreakerIgnoresDeliberateRejections(t *testing.T) {
	b := newBreaker(2, time.Second)
	for i := 0; i < 10; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		b.report(true) // what do() reports for any status < 500
	}
}

func TestClientFailsFastWhenServerDown(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := New(ts.URL, nil)
	c.br = newBreaker(2, time.Hour) // trip fast, never cool down in-test

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Stats(ctx); err == nil {
			t.Fatal("500 response produced no error")
		}
	}
	before := hits.Load()
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Error("open circuit still sent a request")
	}
}

func TestRetryDelayBoundsAndFloor(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		d := retryDelay(attempt, 0)
		if d <= 0 || d > backoffMax {
			t.Errorf("attempt %d: delay %v out of (0, %v]", attempt, d, backoffMax)
		}
	}
	// Growth: late attempts are never shorter than the early minimum.
	if d := retryDelay(6, 0); d < backoffBase {
		t.Errorf("attempt 6 delay %v below base %v", d, backoffBase)
	}
	// The server's Retry-After hint is a floor.
	if d := retryDelay(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("delay %v below the 3s Retry-After floor", d)
	}
	// Overflow-prone attempts still cap at backoffMax.
	if d := retryDelay(200, 0); d > backoffMax {
		t.Errorf("attempt 200 delay %v above cap", d)
	}
}

// A BreakerGroup keeps one circuit per endpoint: tripping one shard's
// breaker must not affect any other shard in the fleet.
func TestBreakerGroupIsolatesEndpoints(t *testing.T) {
	clock := time.Unix(0, 0)
	g := NewBreakerGroup()
	// Pin the clock on both endpoints' breakers (created closed).
	for _, ep := range []string{"http://bad", "http://good"} {
		g.forEndpoint(ep).now = func() time.Time { return clock }
	}

	for i := 0; i < breakerThreshold; i++ {
		g.Report("http://bad", false)
	}
	if !g.Open("http://bad") {
		t.Fatal("bad endpoint's circuit did not open after threshold failures")
	}
	if g.Open("http://good") {
		t.Fatal("good endpoint's circuit opened from the bad endpoint's failures")
	}
	if g.Open("http://never-seen") {
		t.Fatal("an endpoint never reported on is open")
	}

	// After the cooldown, a raw-transport success report closes the
	// circuit via the half-open transition Report performs itself.
	clock = clock.Add(breakerCooldown + time.Millisecond)
	if g.Open("http://bad") {
		t.Fatal("circuit still refusing after cooldown elapsed")
	}
	g.Report("http://bad", true)
	if g.Open("http://bad") {
		t.Fatal("circuit did not close after a successful post-cooldown probe")
	}
	// And a failure while half-open re-opens for another full cooldown.
	for i := 0; i < breakerThreshold; i++ {
		g.Report("http://bad", false)
	}
	clock = clock.Add(breakerCooldown + time.Millisecond)
	g.Report("http://bad", false)
	if !g.Open("http://bad") {
		t.Fatal("failed post-cooldown probe did not re-open the circuit")
	}
}

// Two clients built over one group share per-endpoint breaker state:
// a dead shard fails fast for every client pointed at it, while the
// live shard keeps serving through the same group.
func TestBreakerGroupSharedAcrossClients(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ready":true}`))
	}))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()

	g := NewBreakerGroup()
	cLive := NewWithBreakers(live.URL, nil, g)
	cDead := NewWithBreakers(dead.URL, nil, g)

	ctx := context.Background()
	for i := 0; i < breakerThreshold; i++ {
		if _, err := cDead.Readiness(ctx); err == nil {
			t.Fatal("dead shard's 500 did not error")
		}
	}
	if _, err := cDead.Readiness(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("dead shard err = %v, want ErrCircuitOpen", err)
	}
	if _, err := cLive.Readiness(ctx); err != nil {
		t.Fatalf("live shard tripped by dead shard's breaker: %v", err)
	}
	// A second client to the SAME dead endpoint shares the open circuit.
	cDead2 := NewWithBreakers(dead.URL, nil, g)
	if _, err := cDead2.Readiness(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second client to dead shard err = %v, want shared ErrCircuitOpen", err)
	}
}
