package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("failure %d: acquire: %v", i, err)
		}
		b.report(false)
	}
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-threshold acquire err = %v, want ErrCircuitOpen", err)
	}

	// Cooldown passes: exactly one probe is admitted at a time.
	clock = clock.Add(time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("probe acquire: %v", err)
	}
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe err = %v, want ErrCircuitOpen", err)
	}

	// A failed probe re-opens for a full cooldown.
	b.report(false)
	if err := b.acquire(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("circuit closed after failed probe")
	}
	clock = clock.Add(time.Second)
	if err := b.acquire(); err != nil {
		t.Fatalf("second probe acquire: %v", err)
	}
	b.report(true)

	// Closed again: successes flow, and the failure count restarted.
	for i := 0; i < 2; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("closed acquire: %v", err)
		}
		b.report(false)
	}
	if err := b.acquire(); err != nil {
		t.Errorf("2 failures after recovery tripped a threshold-3 breaker: %v", err)
	}
	b.report(true)
}

func TestBreakerIgnoresDeliberateRejections(t *testing.T) {
	b := newBreaker(2, time.Second)
	for i := 0; i < 10; i++ {
		if err := b.acquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		b.report(true) // what do() reports for any status < 500
	}
}

func TestClientFailsFastWhenServerDown(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := New(ts.URL, nil)
	c.br = newBreaker(2, time.Hour) // trip fast, never cool down in-test

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Stats(ctx); err == nil {
			t.Fatal("500 response produced no error")
		}
	}
	before := hits.Load()
	if _, err := c.Stats(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Error("open circuit still sent a request")
	}
}

func TestRetryDelayBoundsAndFloor(t *testing.T) {
	for attempt := 0; attempt < 12; attempt++ {
		d := retryDelay(attempt, 0)
		if d <= 0 || d > backoffMax {
			t.Errorf("attempt %d: delay %v out of (0, %v]", attempt, d, backoffMax)
		}
	}
	// Growth: late attempts are never shorter than the early minimum.
	if d := retryDelay(6, 0); d < backoffBase {
		t.Errorf("attempt 6 delay %v below base %v", d, backoffBase)
	}
	// The server's Retry-After hint is a floor.
	if d := retryDelay(0, 3*time.Second); d < 3*time.Second {
		t.Errorf("delay %v below the 3s Retry-After floor", d)
	}
	// Overflow-prone attempts still cap at backoffMax.
	if d := retryDelay(200, 0); d > backoffMax {
		t.Errorf("attempt 200 delay %v above cap", d)
	}
}
